package repro

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/dataval"
	"repro/internal/gmm"
	"repro/internal/highway"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/train"
	"repro/pkg/vnn"
)

// TestEndToEndCaseStudy is the cross-package contract test: simulate →
// validate → train → verify, with every hand-off checked. It is the
// repository's executable summary of the paper's case study.
func TestEndToEndCaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end case study in -short mode")
	}
	// 1. Data.
	cfg := highway.DefaultDatasetConfig()
	cfg.Episodes = 2
	cfg.StepsPerEpisode = 100
	data, err := highway.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	clean, _ := dataval.Sanitize(data, core.SafetyRules(1e-9))
	if len(clean) < 500 {
		t.Fatalf("only %d samples", len(clean))
	}

	// 2. Train.
	pred := core.NewPredictorNet(2, 6, 2, 99)
	trainer := &train.Trainer{
		Net: pred.Net, Loss: train.MDN{K: 2}, Opt: train.NewAdam(0.003),
		BatchSize: 64, Rng: rand.New(rand.NewSource(99)), ClipNorm: 20,
	}
	first := trainer.Epoch(clean)
	var last float64
	for i := 0; i < 7; i++ {
		last = trainer.Epoch(clean)
	}
	if last >= first {
		t.Fatalf("training did not reduce loss: %g -> %g", first, last)
	}

	// 3. The trained model produces valid mixtures on real scenes.
	sim, err := highway.NewSim(highway.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sim.Run(100, 0.25)
	mix := pred.Predict(sim.Observe(sim.Vehicles[0]).Encode())
	if err := mix.Validate(); err != nil {
		t.Fatal(err)
	}

	// 4. Attack lower bound vs verified maximum.
	region := core.LeftOccupiedRegion()
	atkBest := math.Inf(-1)
	rng := rand.New(rand.NewSource(5))
	for _, out := range pred.MuLatOutputs() {
		r, err := attack.Maximize(pred.Net, region, out, rng, attack.Options{Restarts: 4, Steps: 30})
		if err != nil {
			t.Fatal(err)
		}
		atkBest = math.Max(atkBest, r.Value)
	}
	ver, err := pred.VerifySafety(itCtx(t, 5*time.Minute), vnn.Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !ver.Exact {
		t.Fatal("verification did not finish")
	}
	if atkBest > ver.Value+1e-5 {
		t.Fatalf("attack %g beats complete verifier %g", atkBest, ver.Value)
	}
	// The witness is a genuine left-occupied scene and replays exactly.
	if !highway.LeftOccupiedInFeatures(ver.Witness) {
		t.Fatal("witness lost the left-occupied precondition")
	}
	raw := pred.Net.Forward(ver.Witness)
	replay := math.Inf(-1)
	for _, out := range pred.MuLatOutputs() {
		replay = math.Max(replay, raw[out])
	}
	if math.Abs(replay-ver.Value) > 1e-5 {
		t.Fatalf("witness replay %g != verified %g", replay, ver.Value)
	}

	// 5. Quantized model verifies with the same machinery and lands near
	// the float bound.
	qnet, _, err := quant.Quantize(pred.Net, 8)
	if err != nil {
		t.Fatal(err)
	}
	qpred := &core.Predictor{Net: qnet, K: pred.K}
	qver, err := qpred.VerifySafety(itCtx(t, 5*time.Minute), vnn.Options{Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qver.Value-ver.Value) > 1.0 {
		t.Fatalf("8-bit quantization moved the verified bound from %g to %g", ver.Value, qver.Value)
	}
}

// TestSerializationAcrossPipeline round-trips a trained network through
// JSON and confirms verification answers survive byte-for-byte.
func TestSerializationAcrossPipeline(t *testing.T) {
	pred := core.NewPredictorNet(1, 5, 2, 7)
	path := t.TempDir() + "/net.json"
	if err := pred.Net.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := nn.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	pred2 := &core.Predictor{Net: back, K: back.OutputDim() / gmm.RawPerComponent}
	a, err := pred.VerifySafety(context.Background(), vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := pred2.VerifySafety(context.Background(), vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Value-b.Value) > 1e-9 {
		t.Fatalf("serialization changed the verified bound: %g vs %g", a.Value, b.Value)
	}
}

// itCtx builds a context with a deadline cleaned up with the test.
func itCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}
