// Package attack implements gradient-guided falsification of safety
// properties: projected gradient ascent (PGD) on an output neuron over an
// input region. It is the incomplete-but-fast counterpart to the complete
// MILP verifier in package verify — attacks can only find counterexamples,
// never prove their absence, which is exactly the testing-vs-formal-methods
// gap the paper's Sec. II (B) describes. The certification pipeline uses it
// as a cheap pre-pass: a found violation skips the expensive proof attempt.
package attack

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/nn"
	"repro/internal/train"
	"repro/internal/verify"
)

// Options tune the attack.
type Options struct {
	// Restarts is the number of random starting points; 0 means 8.
	Restarts int
	// Steps per restart; 0 means 60.
	Steps int
	// StepSize as a fraction of each coordinate's box width; 0 means 0.05.
	StepSize float64
	// Cancel, when non-nil, is polled at every restart boundary; returning
	// true stops the attack early with the best input found so far (the
	// anytime counterpart of the verifier's context cancellation).
	Cancel func() bool
}

// Result reports the strongest input found.
type Result struct {
	// Best is the input maximizing the output (nil when the region's box
	// is empty).
	Best []float64
	// Value is the output at Best.
	Value float64
	// Evaluations counts forward/backward passes used.
	Evaluations int
}

// Maximize runs PGD ascent on output outIndex of net over the region's box
// (linear constraints are respected by rejection at the starting points and
// projection is box-only; callers needing exact linear-constraint handling
// should verify with MILP). rng must be non-nil.
func Maximize(net *nn.Network, region *verify.InputRegion, outIndex int, rng *rand.Rand, opts Options) (*Result, error) {
	if err := region.Validate(net); err != nil {
		return nil, err
	}
	if outIndex < 0 || outIndex >= net.OutputDim() {
		return nil, fmt.Errorf("attack: output index %d of %d", outIndex, net.OutputDim())
	}
	if rng == nil {
		return nil, fmt.Errorf("attack: rng must be non-nil")
	}
	restarts := opts.Restarts
	if restarts <= 0 {
		restarts = 8
	}
	steps := opts.Steps
	if steps <= 0 {
		steps = 60
	}
	frac := opts.StepSize
	if frac <= 0 {
		frac = 0.05
	}

	res := &Result{Value: math.Inf(-1)}
	dRaw := make([]float64, net.OutputDim())
	cancelled := false
	for r := 0; r < restarts; r++ {
		if opts.Cancel != nil && opts.Cancel() {
			cancelled = true
			break
		}
		x := samplePoint(region, rng)
		if x == nil {
			continue
		}
		for s := 0; s < steps; s++ {
			tr := net.ForwardTrace(x)
			res.Evaluations++
			v := tr.Output()[outIndex]
			if v > res.Value {
				res.Value = v
				res.Best = append(res.Best[:0], x...)
			}
			// Ascend the output gradient, projected onto the box.
			for i := range dRaw {
				dRaw[i] = 0
			}
			dRaw[outIndex] = 1
			g := train.InputGradient(net, tr, dRaw)
			moved := false
			for i := range x {
				iv := region.Box[i]
				step := frac * (iv.Hi - iv.Lo)
				if step == 0 || g[i] == 0 {
					continue
				}
				nx := x[i] + step*sign(g[i])
				nx = math.Max(iv.Lo, math.Min(iv.Hi, nx))
				if nx != x[i] {
					x[i] = nx
					moved = true
				}
			}
			if !moved {
				break // stuck at a corner; restart
			}
		}
		// Final evaluation of the last iterate.
		v := net.Forward(x)[outIndex]
		res.Evaluations++
		if v > res.Value {
			res.Value = v
			res.Best = append(res.Best[:0], x...)
		}
	}
	if res.Best == nil {
		if cancelled {
			return res, nil // stopped before any evaluation: empty anytime answer
		}
		return nil, fmt.Errorf("attack: no starting point satisfied the region's linear constraints")
	}
	return res, nil
}

// Falsify searches for an input whose output exceeds the threshold. It
// returns (counterexample, true) on success and (nil, false) when the
// attack budget found nothing — which proves nothing.
func Falsify(net *nn.Network, region *verify.InputRegion, outIndex int, threshold float64, rng *rand.Rand, opts Options) ([]float64, bool, error) {
	res, err := Maximize(net, region, outIndex, rng, opts)
	if err != nil {
		return nil, false, err
	}
	if res.Value > threshold {
		return res.Best, true, nil
	}
	return nil, false, nil
}

// samplePoint rejection-samples a box point satisfying the region's linear
// constraints (up to a fixed budget; nil when the budget runs out).
func samplePoint(region *verify.InputRegion, rng *rand.Rand) []float64 {
	for tries := 0; tries < 200; tries++ {
		x := make([]float64, len(region.Box))
		for i, iv := range region.Box {
			x[i] = iv.Lo + rng.Float64()*(iv.Hi-iv.Lo)
		}
		if region.Contains(x, 1e-12) {
			return x
		}
	}
	return nil
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}
