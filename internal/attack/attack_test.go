package attack

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/lp"
	"repro/internal/nn"
	"repro/internal/verify"
)

func unitRegion(n int) *verify.InputRegion {
	box := make([]bounds.Interval, n)
	for i := range box {
		box[i] = bounds.Interval{Lo: -1, Hi: 1}
	}
	return &verify.InputRegion{Box: box}
}

func randomNet(seed int64, in int, hidden []int) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	return nn.New(nn.Config{
		Name: "a", InputDim: in, Hidden: hidden, OutputDim: 1,
		HiddenAct: nn.ReLU, OutputAct: nn.Identity,
	}, rng)
}

func TestMaximizeFindsLinearOptimum(t *testing.T) {
	// y = 2x0 - x1 on [-1,1]^2: max 3 at (1,-1); PGD must land there.
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{2, -1}}, B: []float64{0}, Act: nn.Identity},
	}}
	res, err := Maximize(net, unitRegion(2), 0, rand.New(rand.NewSource(1)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-3) > 1e-9 {
		t.Fatalf("attack value %g, want 3", res.Value)
	}
	if math.Abs(res.Best[0]-1) > 1e-9 || math.Abs(res.Best[1]+1) > 1e-9 {
		t.Fatalf("attack point %v, want (1,-1)", res.Best)
	}
}

// TestAttackNeverBeatsVerifier is the soundness relation between the
// incomplete attack and the complete MILP: the attack's best value is a
// lower bound on the verified maximum.
func TestAttackNeverBeatsVerifier(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		net := randomNet(seed, 3, []int{6, 5})
		region := unitRegion(3)
		atk, err := Maximize(net, region, 0, rand.New(rand.NewSource(seed+50)), Options{Restarts: 10, Steps: 80})
		if err != nil {
			t.Fatal(err)
		}
		ver, err := verify.MaxOutput(net, region, 0, verify.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if atk.Value > ver.Value+1e-5 {
			t.Fatalf("seed %d: attack %g beats verified max %g (verifier unsound or attack out of region)",
				seed, atk.Value, ver.Value)
		}
		// The attack point must replay and stay inside the region.
		if !region.Contains(atk.Best, 1e-9) {
			t.Fatalf("seed %d: attack point escaped the region", seed)
		}
		if v := net.Forward(atk.Best)[0]; math.Abs(v-atk.Value) > 1e-9 {
			t.Fatalf("seed %d: attack value does not replay: %g vs %g", seed, v, atk.Value)
		}
	}
}

func TestAttackUsuallyNearVerifiedMax(t *testing.T) {
	// On small nets PGD with restarts should get within 20% of the optimum
	// most of the time; we assert it for a fixed seed set.
	close := 0
	for seed := int64(0); seed < 5; seed++ {
		net := randomNet(seed+100, 2, []int{5})
		region := unitRegion(2)
		atk, err := Maximize(net, region, 0, rand.New(rand.NewSource(seed)), Options{Restarts: 12, Steps: 100})
		if err != nil {
			t.Fatal(err)
		}
		ver, err := verify.MaxOutput(net, region, 0, verify.Options{})
		if err != nil {
			t.Fatal(err)
		}
		span := math.Max(1e-9, math.Abs(ver.Value))
		if (ver.Value-atk.Value)/span < 0.2 {
			close++
		}
	}
	if close < 3 {
		t.Fatalf("attack close to optimum only %d/5 times", close)
	}
}

func TestFalsify(t *testing.T) {
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}}, B: []float64{0}, Act: nn.Identity},
	}}
	region := unitRegion(1)
	cx, found, err := Falsify(net, region, 0, 0.5, rand.New(rand.NewSource(2)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatal("violation of y<=0.5 exists (y can reach 1) but was not found")
	}
	if net.Forward(cx)[0] <= 0.5 {
		t.Fatal("counterexample does not violate the threshold")
	}
	_, found, err = Falsify(net, region, 0, 2.0, rand.New(rand.NewSource(2)), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("claimed violation of an unviolable bound")
	}
}

func TestRegionWithLinearConstraintSampling(t *testing.T) {
	region := unitRegion(2)
	region.Linear = []verify.LinearConstraint{{
		Coeffs: map[int]float64{0: 1, 1: 1}, Sense: lp.LE, RHS: 0, Name: "half",
	}}
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
	}}
	res, err := Maximize(net, region, 0, rand.New(rand.NewSource(3)), Options{Restarts: 20, Steps: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Starting points respect the constraint; box-projected PGD may walk
	// out of the halfspace, but the reported best must have been evaluated,
	// and for this aligned objective the best stays feasible only if the
	// implementation tracks values correctly. Just assert it replays.
	if v := net.Forward(res.Best)[0]; math.Abs(v-res.Value) > 1e-9 {
		t.Fatal("best does not replay")
	}
}

func TestValidationErrors(t *testing.T) {
	net := randomNet(1, 2, []int{3})
	if _, err := Maximize(net, unitRegion(3), 0, rand.New(rand.NewSource(1)), Options{}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := Maximize(net, unitRegion(2), 7, rand.New(rand.NewSource(1)), Options{}); err == nil {
		t.Fatal("bad output index accepted")
	}
	if _, err := Maximize(net, unitRegion(2), 0, nil, Options{}); err == nil {
		t.Fatal("nil rng accepted")
	}
	impossible := unitRegion(2)
	impossible.Linear = []verify.LinearConstraint{{
		Coeffs: map[int]float64{0: 1}, Sense: lp.GE, RHS: 5, Name: "no",
	}}
	if _, err := Maximize(net, impossible, 0, rand.New(rand.NewSource(1)), Options{}); err == nil {
		t.Fatal("empty region accepted")
	}
}
