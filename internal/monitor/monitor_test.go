package monitor

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/bounds"
	"repro/internal/nn"
)

// signNet is the canonical two-pattern toy: input 1 → hidden ReLU pair
// computing (x, −x) → sum output. Positive inputs exercise pattern 10,
// negative inputs 01, zero 00; 11 is unrealizable.
func signNet() *nn.Network {
	return &nn.Network{Name: "sign", Layers: []*nn.Layer{
		{W: [][]float64{{1}, {-1}}, B: []float64{0, 0}, Act: nn.ReLU},
		{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
	}}
}

func mustBuild(t *testing.T, net *nn.Network, data [][]float64, pre [][]bounds.Interval, opts Options) *Monitor {
	t.Helper()
	m, err := Build(net, data, pre, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestExactMatchAndGammaRelaxation(t *testing.T) {
	net := signNet()
	m := mustBuild(t, net, [][]float64{{2}}, nil, Options{}) // remembers 10 only
	if v := m.Check([]float64{3}); !v.OK || v.Distance != 0 {
		t.Fatalf("in-pattern input: %v", v)
	}
	// x = 0 has pattern 00: distance 1 from 10.
	if v := m.Check([]float64{0}); v.OK || v.Distance != 1 || v.Layer != 0 {
		t.Fatalf("gamma 0 must flag distance-1 pattern: %v", v)
	}
	// x = -2 has pattern 01: distance 2 from 10.
	if v := m.Check([]float64{-2}); v.OK || v.Distance != 2 {
		t.Fatalf("distance-2 pattern: %v", v)
	}
	relaxed := mustBuild(t, net, [][]float64{{2}}, nil, Options{Gamma: 1})
	if v := relaxed.Check([]float64{0}); !v.OK || v.Distance != 1 {
		t.Fatalf("gamma 1 must accept distance-1 pattern: %v", v)
	}
	if v := relaxed.Check([]float64{-2}); v.OK {
		t.Fatalf("gamma 1 must still flag distance-2 pattern: %v", v)
	}
}

func TestStaticCrossCheckRejectsUnreachablePattern(t *testing.T) {
	net := signNet()
	// Proven bounds for the region x ∈ [1, 3]: neuron 0 stably active
	// (pre ∈ [1, 3]), neuron 1 stably inactive (pre ∈ [−3, −1]).
	pre := [][]bounds.Interval{{{Lo: 1, Hi: 3}, {Lo: -3, Hi: -1}}}
	// The dataset smuggles in x = −2, an input outside the region whose
	// pattern 01 activates the provably-inactive neuron.
	m := mustBuild(t, net, [][]float64{{2}, {-2}, {2.5}}, pre, Options{})
	st := m.Stats()
	if st.Rejected != 1 {
		t.Fatalf("Rejected = %d, want 1 (the statically-unreachable 01 pattern)", st.Rejected)
	}
	if st.Inputs != 3 || m.PatternCount() != 1 {
		t.Fatalf("stats %+v, patterns %d; want 3 inputs, 1 stored pattern", st, m.PatternCount())
	}
	// The rejected pattern must not have been learned: x = −2 stays flagged.
	if v := m.Check([]float64{-2}); v.OK {
		t.Fatalf("monitor accepted the rejected pattern: %v", v)
	}
	// An all-rejected build fails loudly instead of yielding a monitor
	// that flags everything.
	if _, err := Build(net, [][]float64{{-2}}, pre, Options{}); err == nil {
		t.Fatal("build with every pattern rejected must error")
	}
}

func TestBuildDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := nn.New(nn.Config{Name: "d", InputDim: 4, Hidden: []int{9, 7}, OutputDim: 2, HiddenAct: nn.ReLU, OutputAct: nn.Identity}, rng)
	data := make([][]float64, 64)
	for i := range data {
		row := make([]float64, 4)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		data[i] = row
	}
	a := mustBuild(t, net, data, nil, Options{Gamma: 1})
	b := mustBuild(t, net, data, nil, Options{Gamma: 1})
	am, err := a.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	bm, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(am, bm) {
		t.Fatal("same dataset produced different marshals")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same dataset produced different fingerprints")
	}
	// Any content difference must change the fingerprint.
	c := mustBuild(t, net, data[:63], nil, Options{Gamma: 1})
	if c.PatternCount() != a.PatternCount() && c.Fingerprint() == a.Fingerprint() {
		t.Fatal("different pattern sets share a fingerprint")
	}
	g := mustBuild(t, net, data, nil, Options{Gamma: 2})
	if g.Fingerprint() == a.Fingerprint() {
		t.Fatal("gamma change did not change the fingerprint")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := nn.New(nn.Config{Name: "r", InputDim: 3, Hidden: []int{8, 5}, OutputDim: 1, HiddenAct: nn.ReLU, OutputAct: nn.Identity}, rng)
	data := make([][]float64, 40)
	for i := range data {
		data[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	m := mustBuild(t, net, data, nil, Options{Gamma: 1})
	doc, err := m.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(doc, net)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != m.Fingerprint() {
		t.Fatal("round trip changed the fingerprint")
	}
	if back.Gamma() != m.Gamma() || back.PatternCount() != m.PatternCount() {
		t.Fatal("round trip changed gamma or pattern count")
	}
	for i := 0; i < 20; i++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if m.Check(x) != back.Check(x) {
			t.Fatalf("round-trip monitor disagrees at %v", x)
		}
	}
	if _, err := Unmarshal([]byte(`{"version":99}`), net); err == nil {
		t.Fatal("unknown version must be rejected")
	}
	if _, err := Unmarshal([]byte(`not json`), net); err == nil {
		t.Fatal("garbage must be rejected")
	}
}

func TestUnmarshalRejectsPaddingBits(t *testing.T) {
	// Layer 0 of signNet has 2 neurons (1 byte, 6 padding bits). "f0"
	// sets bits 4-7 — phantom bits that would inflate every whole-byte
	// Hamming scan.
	net := signNet()
	doc := []byte(`{"version":1,"gamma":0,"inputs":1,"rejected":0,` +
		`"layers":[{"layer":0,"neurons":2,"patterns":["f0"]}]}`)
	if _, err := Unmarshal(doc, net); err == nil {
		t.Fatal("pattern with bits beyond its neuron count must be rejected")
	}
	ok := []byte(`{"version":1,"gamma":0,"inputs":1,"rejected":0,` +
		`"layers":[{"layer":0,"neurons":2,"patterns":["01"]}]}`)
	if _, err := Unmarshal(ok, net); err != nil {
		t.Fatalf("clean pattern rejected: %v", err)
	}
}

func TestEmptyLayersMeansAllLayers(t *testing.T) {
	// Wire decoders produce empty non-nil slices for "layers": []; the
	// build must treat them exactly like nil (monitor everything), so a
	// request's behaviour never depends on which form the client sent.
	net := signNet()
	a := mustBuild(t, net, [][]float64{{2}}, nil, Options{Layers: nil})
	b := mustBuild(t, net, [][]float64{{2}}, nil, Options{Layers: []int{}})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("nil and empty Layers built different monitors")
	}
}

func TestCheckIntoZeroAllocsAndBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := nn.New(nn.Config{Name: "z", InputDim: 6, Hidden: []int{16, 16}, OutputDim: 3, HiddenAct: nn.ReLU, OutputAct: nn.Identity}, rng)
	data := make([][]float64, 32)
	for i := range data {
		row := make([]float64, 6)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		data[i] = row
	}
	m := mustBuild(t, net, data, nil, Options{Gamma: 2})
	sc := m.NewScratch()
	dst := make([]float64, net.OutputDim())
	x := data[0]
	allocs := testing.AllocsPerRun(200, func() {
		m.CheckInto(dst, sc, x)
	})
	if allocs != 0 {
		t.Fatalf("CheckInto allocates %v per op, want 0", allocs)
	}
	fwdSc := net.NewScratch()
	serving := make([]float64, net.OutputDim())
	for _, x := range data {
		m.CheckInto(dst, sc, x)
		net.ForwardInto(serving, fwdSc, x)
		for i := range serving {
			// Bit-identical to the serving forward; the reference
			// nn.Forward may differ by kernel-order ULPs.
			if dst[i] != serving[i] {
				t.Fatal("CheckInto prediction differs from nn.ForwardInto")
			}
		}
		ref := net.Forward(x)
		for i := range ref {
			if d := dst[i] - ref[i]; d > 1e-10 || d < -1e-10 {
				t.Fatalf("CheckInto prediction outside tolerance of nn.Forward: %v vs %v", dst[i], ref[i])
			}
		}
	}
}

// TestCheckBatchIntoMatchesSingle pins the batched serving path: every
// batch verdict and prediction row is bit-identical to CheckInto on that
// input, for batch sizes spanning the blocking factors, and steady-state
// batches allocate nothing.
func TestCheckBatchIntoMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net := nn.New(nn.Config{Name: "b", InputDim: 6, Hidden: []int{16, 16}, OutputDim: 3, HiddenAct: nn.ReLU, OutputAct: nn.Identity}, rng)
	data := make([][]float64, 32)
	for i := range data {
		row := make([]float64, 6)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		data[i] = row
	}
	m := mustBuild(t, net, data, nil, Options{Gamma: 2})
	single := m.NewScratch()
	singleDst := make([]float64, net.OutputDim())
	bsc := m.NewBatchScratch()
	for _, batch := range []int{1, 2, 3, 4, 5, 7, 8, 17} {
		xs := make([][]float64, batch)
		dst := make([][]float64, batch)
		verdicts := make([]Verdict, batch)
		for i := range xs {
			row := make([]float64, 6)
			for j := range row {
				row[j] = rng.NormFloat64() * 1.5
			}
			xs[i] = row
			dst[i] = make([]float64, net.OutputDim())
		}
		m.CheckBatchInto(dst, bsc, xs, verdicts)
		for i, x := range xs {
			want := m.CheckInto(singleDst, single, x)
			if verdicts[i] != want {
				t.Fatalf("batch %d input %d: verdict %v, single %v", batch, i, verdicts[i], want)
			}
			for j := range singleDst {
				if dst[i][j] != singleDst[j] {
					t.Fatalf("batch %d input %d: prediction differs from CheckInto", batch, i)
				}
			}
		}
	}
	// Steady state: re-running the largest batch allocates nothing.
	xs := make([][]float64, 17)
	dst := make([][]float64, 17)
	verdicts := make([]Verdict, 17)
	for i := range xs {
		xs[i] = data[i%len(data)]
		dst[i] = make([]float64, net.OutputDim())
	}
	m.CheckBatchInto(dst, bsc, xs, verdicts)
	allocs := testing.AllocsPerRun(50, func() {
		m.CheckBatchInto(dst, bsc, xs, verdicts)
	})
	if allocs != 0 {
		t.Fatalf("CheckBatchInto allocates %v per batch, want 0", allocs)
	}
	// Wrong-monitor and mismatched-length panics.
	other := mustBuild(t, net, data, nil, Options{Gamma: 1})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("foreign BatchScratch must panic")
			}
		}()
		other.CheckBatchInto(dst, bsc, xs, verdicts)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("mismatched verdict length must panic")
			}
		}()
		m.CheckBatchInto(dst, bsc, xs, verdicts[:3])
	}()
}

func TestConcurrentChecksAreDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	net := nn.New(nn.Config{Name: "c", InputDim: 5, Hidden: []int{12, 12}, OutputDim: 2, HiddenAct: nn.ReLU, OutputAct: nn.Identity}, rng)
	data := make([][]float64, 48)
	for i := range data {
		row := make([]float64, 5)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		data[i] = row
	}
	m := mustBuild(t, net, data, nil, Options{Gamma: 1})
	probes := make([][]float64, 64)
	for i := range probes {
		row := make([]float64, 5)
		for j := range row {
			row[j] = rng.NormFloat64() * 2
		}
		probes[i] = row
	}
	want := make([]Verdict, len(probes))
	for i, x := range probes {
		want[i] = m.Check(x)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := m.NewScratch()
			dst := make([]float64, net.OutputDim())
			for i, x := range probes {
				if got := m.CheckInto(dst, sc, x); got != want[i] {
					t.Errorf("probe %d: concurrent verdict %v, want %v", i, got, want[i])
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestBuildValidation(t *testing.T) {
	net := signNet()
	if _, err := Build(net, nil, nil, Options{}); err == nil {
		t.Fatal("empty dataset must error")
	}
	if _, err := Build(net, [][]float64{{1}}, nil, Options{Gamma: -1}); err == nil {
		t.Fatal("negative gamma must error")
	}
	if _, err := Build(net, [][]float64{{1, 2}}, nil, Options{}); err == nil {
		t.Fatal("wrong input dimension must error")
	}
	if _, err := Build(net, [][]float64{{1}}, nil, Options{Layers: []int{1}}); err == nil {
		t.Fatal("monitoring the output layer must error")
	}
	tanh := nn.New(nn.Config{Name: "t", InputDim: 2, Hidden: []int{4}, OutputDim: 1, HiddenAct: nn.Tanh, OutputAct: nn.Identity},
		rand.New(rand.NewSource(1)))
	if _, err := Build(tanh, [][]float64{{0, 0}}, nil, Options{}); err == nil {
		t.Fatal("network without hidden ReLU layers must error")
	}
}

func TestLayerSubsetMonitoring(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	net := nn.New(nn.Config{Name: "s", InputDim: 3, Hidden: []int{6, 6}, OutputDim: 1, HiddenAct: nn.ReLU, OutputAct: nn.Identity}, rng)
	data := [][]float64{{0.1, 0.2, 0.3}, {-0.4, 0.5, -0.6}}
	m := mustBuild(t, net, data, nil, Options{Layers: []int{1}})
	if got := m.Layers(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Layers = %v, want [1]", got)
	}
	if v := m.Check(data[0]); !v.OK || v.Layer != 1 {
		t.Fatalf("subset monitor verdict %v, want ok on layer 1", v)
	}
}
