// Package monitor implements runtime monitoring of neural networks via
// activation patterns — the paper's operation-time pillar: certification
// does not end when a property is proved, because a proof quantifies over
// the design domain while operation feeds the network whatever the world
// produces. The monitor closes that gap by remembering, per hidden ReLU
// layer, the set of activation patterns the training/coverage dataset
// exercised; at inference time an input whose pattern is farther than a
// Hamming relaxation γ from every remembered pattern is flagged as
// out-of-pattern before its prediction is trusted.
//
// Two properties make the monitor a certification artifact rather than a
// heuristic:
//
//   - Static cross-check: building against the verifier's proven
//     pre-activation bounds rejects any dataset pattern that interval
//     analysis proves unreachable over the certified input region (a
//     neuron recorded active although its pre-activation provably stays
//     ≤ 0, or vice versa). Such patterns come from inputs outside the
//     region — admitting them would teach the monitor behaviour the
//     certificate never covered.
//
//   - Bit-determinism: pattern sets are ordered by first insertion,
//     distances are exact integer Hamming distances, and verdicts depend
//     only on (network, dataset order, options) — the same build on two
//     machines yields byte-identical marshals and fingerprints, and the
//     same input always yields the same verdict.
//
// The hot path is allocation-free: CheckInto fuses the monitored forward
// pass with nn.ForwardObserved, so one pass produces both the prediction
// and the verdict using only caller-provided (poolable) scratch.
package monitor

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math/bits"

	"repro/internal/bounds"
	"repro/internal/linalg"
	"repro/internal/nn"
)

// Version tags the canonical marshal layout and fingerprint preimage.
const Version = 1

// Options tune a monitor build.
type Options struct {
	// Gamma is the Hamming relaxation: a pattern within distance Gamma of
	// any remembered pattern (per monitored layer) is accepted. 0 means
	// exact-match monitoring.
	Gamma int
	// Layers selects which hidden ReLU layers to monitor, by network
	// layer index; nil or empty means all of them (the two must behave
	// identically — wire decoders produce empty non-nil slices).
	Layers []int
}

// Verdict is the outcome of one runtime check. It is bit-deterministic:
// the same monitor and input always produce the same verdict.
type Verdict struct {
	// OK reports whether every monitored layer's pattern lies within the
	// monitor's Hamming relaxation of a remembered pattern.
	OK bool
	// Layer is the network layer index the Distance refers to: on
	// rejection, the first monitored layer whose distance exceeded γ; on
	// acceptance, the layer with the largest (still admissible) distance.
	Layer int
	// Distance is the Hamming distance from the observed pattern to the
	// nearest remembered pattern of Layer.
	Distance int
}

// String renders the verdict ("ok" or "out-of-pattern(layer=2, distance=5)").
func (v Verdict) String() string {
	if v.OK {
		return "ok"
	}
	return fmt.Sprintf("out-of-pattern(layer=%d, distance=%d)", v.Layer, v.Distance)
}

// BuildStats reports what a build did.
type BuildStats struct {
	// Inputs is the number of dataset rows scored.
	Inputs int
	// Rejected counts inputs whose activation pattern the static
	// cross-check proved unreachable over the compiled region.
	Rejected int
	// Patterns is the number of distinct stored patterns per monitored
	// layer, in Layers order.
	Patterns []int
}

// patternSet is the remembered pattern collection of one monitored layer.
// Patterns live twice: as bytes (canonical marshal form and exact-match
// map keys) and flattened into one contiguous []uint64 (the XOR/popcount
// distance scan reads 64 neurons per op, patterns packed back to back so
// the whole scan is one linear walk).
type patternSet struct {
	neurons int
	nbytes  int
	nwords  int
	index   map[string]int // exact-match lookup; value = insertion position
	pats    [][]byte       // insertion order (determinism + marshal)
	words   []uint64       // pattern p occupies words[p*nwords:(p+1)*nwords]
}

func newPatternSet(neurons int) *patternSet {
	return &patternSet{
		neurons: neurons,
		nbytes:  (neurons + 7) / 8,
		nwords:  (neurons + 63) / 64,
		index:   make(map[string]int),
	}
}

// wordsOf packs the byte bitset into dst (little-endian: neuron j is bit
// j%64 of word j/64, consistent with bit j%8 of byte j/8).
func wordsOf(dst []uint64, pat []byte) {
	for j := range dst {
		dst[j] = 0
	}
	for i, b := range pat {
		dst[i/8] |= uint64(b) << (8 * (i % 8))
	}
}

// add inserts the pattern unless present. The bytes are copied.
func (ps *patternSet) add(pat []byte) bool {
	if _, ok := ps.index[string(pat)]; ok {
		return false
	}
	cp := append([]byte(nil), pat...)
	ps.index[string(cp)] = len(ps.pats)
	ps.pats = append(ps.pats, cp)
	ps.words = append(ps.words, make([]uint64, ps.nwords)...)
	wordsOf(ps.words[len(ps.words)-ps.nwords:], cp)
	return true
}

// distance returns the Hamming distance from pat to the nearest stored
// pattern, or neurons+1 when the set is empty. Exact matches short-circuit
// through the index (the common case on in-distribution traffic) without
// allocating: a map lookup keyed by string(pat) does not copy. w is
// caller scratch for the word form of pat (filled only on an exact
// miss); the fallback scan XOR/popcounts it against the flattened stored
// words, eight words (512 neurons) per early-exit check.
func (ps *patternSet) distance(pat []byte, w []uint64) int {
	if _, ok := ps.index[string(pat)]; ok {
		return 0
	}
	wordsOf(w, pat)
	best := ps.neurons + 1
	nw := ps.nwords
	for p := 0; p < len(ps.pats); p++ {
		stored := ps.words[p*nw : (p+1)*nw]
		d, j := 0, 0
		for ; j+8 <= nw && d < best; j += 8 {
			s := stored[j : j+8 : j+8]
			q := w[j : j+8 : j+8]
			d += bits.OnesCount64(s[0]^q[0]) + bits.OnesCount64(s[1]^q[1]) +
				bits.OnesCount64(s[2]^q[2]) + bits.OnesCount64(s[3]^q[3]) +
				bits.OnesCount64(s[4]^q[4]) + bits.OnesCount64(s[5]^q[5]) +
				bits.OnesCount64(s[6]^q[6]) + bits.OnesCount64(s[7]^q[7])
		}
		if d < best {
			for ; j < nw; j++ {
				d += bits.OnesCount64(stored[j] ^ w[j])
			}
			if d < best {
				best = d
			}
		}
	}
	return best
}

// Monitor is an immutable activation-pattern monitor bound to one
// network. It is safe for concurrent use: Check and CheckInto only read
// the pattern sets (per-call state lives in the caller's Scratch).
type Monitor struct {
	net    *nn.Network
	gamma  int
	layers []int // monitored network layer indices, ascending
	slot   []int // layer index -> position in layers, -1 when unmonitored
	sets   []*patternSet
	stats  BuildStats
}

// Build constructs a monitor for net from the activation patterns the
// dataset exercises. preBounds, when non-nil, are the proven
// pre-activation intervals of every hidden layer (one row per hidden
// layer, e.g. a compiled network's PreActivationBounds); patterns they
// prove unreachable are rejected. A nil preBounds skips the static
// cross-check (no certificate to be consistent with).
//
// The build is deterministic: the same (net, data order, opts) produces
// identical pattern sets, marshals and fingerprints.
func Build(net *nn.Network, data [][]float64, preBounds [][]bounds.Interval, opts Options) (*Monitor, error) {
	if opts.Gamma < 0 {
		return nil, fmt.Errorf("monitor: gamma %d is negative", opts.Gamma)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("monitor: build needs at least one dataset input")
	}
	relu := net.ReLULayers()
	layers := opts.Layers
	if len(layers) == 0 {
		layers = relu
	}
	if len(layers) == 0 {
		return nil, fmt.Errorf("monitor: network %q has no hidden ReLU layer to monitor", net.Name)
	}
	isReLU := make(map[int]bool, len(relu))
	for _, li := range relu {
		isReLU[li] = true
	}
	m := &Monitor{
		net:    net,
		gamma:  opts.Gamma,
		layers: append([]int(nil), layers...),
		slot:   make([]int, len(net.Layers)),
	}
	for i := range m.slot {
		m.slot[i] = -1
	}
	prev := -1
	for s, li := range m.layers {
		if !isReLU[li] {
			return nil, fmt.Errorf("monitor: layer %d is not a hidden ReLU layer", li)
		}
		if li <= prev {
			return nil, fmt.Errorf("monitor: layers must be strictly ascending, got %v", m.layers)
		}
		prev = li
		m.slot[li] = s
		m.sets = append(m.sets, newPatternSet(net.Layers[li].OutDim()))
	}
	if preBounds != nil {
		for _, li := range m.layers {
			if li >= len(preBounds) || len(preBounds[li]) != net.Layers[li].OutDim() {
				return nil, fmt.Errorf("monitor: pre-activation bounds missing layer %d", li)
			}
		}
	}

	sc := m.NewScratch()
	dst := make([]float64, net.OutputDim())
	dim := net.InputDim()
	for i, x := range data {
		if len(x) != dim {
			return nil, fmt.Errorf("monitor: data row %d has dimension %d, network input %d", i, len(x), dim)
		}
		m.observeInto(sc, dst, x)
		m.stats.Inputs++
		if preBounds != nil && m.unreachable(sc, preBounds) {
			m.stats.Rejected++
			continue
		}
		for s := range m.sets {
			m.sets[s].add(sc.pat[s])
		}
	}
	m.stats.Patterns = make([]int, len(m.sets))
	total := 0
	for s, set := range m.sets {
		m.stats.Patterns[s] = len(set.pats)
		total += len(set.pats)
	}
	if total == 0 {
		return nil, fmt.Errorf("monitor: every dataset pattern was rejected as statically unreachable (%d inputs)", m.stats.Inputs)
	}
	return m, nil
}

// unreachable reports whether the pattern currently held in sc contradicts
// the proven pre-activation bounds: a neuron recorded active although its
// interval proves z ≤ 0 everywhere in the region, or recorded inactive
// although the interval proves z > 0.
func (m *Monitor) unreachable(sc *Scratch, preBounds [][]bounds.Interval) bool {
	for s, li := range m.layers {
		for j, iv := range preBounds[li] {
			active := sc.pat[s][j/8]&(1<<(j%8)) != 0
			if active && iv.Hi <= 0 {
				return true
			}
			if !active && iv.Lo > 0 {
				return true
			}
		}
	}
	return false
}

// Net returns the monitored network.
func (m *Monitor) Net() *nn.Network { return m.net }

// Gamma returns the Hamming relaxation.
func (m *Monitor) Gamma() int { return m.gamma }

// Layers returns the monitored network layer indices.
func (m *Monitor) Layers() []int { return append([]int(nil), m.layers...) }

// Stats returns the build statistics.
func (m *Monitor) Stats() BuildStats {
	st := m.stats
	st.Patterns = append([]int(nil), m.stats.Patterns...)
	return st
}

// PatternCount returns the total number of stored patterns across layers.
func (m *Monitor) PatternCount() int {
	n := 0
	for _, set := range m.sets {
		n += len(set.pats)
	}
	return n
}

// Scratch is the per-call state of one checking goroutine: the forward
// scratch, the observed pattern buffers, and the prebuilt observation
// hook. A Scratch must not be shared between concurrent calls; servers
// pool them.
type Scratch struct {
	m       *Monitor
	fwd     *nn.Scratch
	pat     [][]byte
	wpat    [][]uint64
	observe func(layer int, pre []float64)
}

// NewScratch allocates check state for this monitor.
func (m *Monitor) NewScratch() *Scratch {
	sc := &Scratch{
		m:    m,
		fwd:  m.net.NewScratch(),
		pat:  make([][]byte, len(m.sets)),
		wpat: make([][]uint64, len(m.sets)),
	}
	for s, set := range m.sets {
		sc.pat[s] = make([]byte, set.nbytes)
		sc.wpat[s] = make([]uint64, set.nwords)
	}
	sc.observe = func(layer int, pre []float64) {
		s := sc.m.slot[layer]
		if s < 0 {
			return
		}
		buf := sc.pat[s]
		for i := range buf {
			buf[i] = 0
		}
		for j, z := range pre {
			if z > 0 {
				buf[j/8] |= 1 << (j % 8)
			}
		}
	}
	return sc
}

// observeInto runs the fused forward pass, leaving the prediction in dst
// and the per-layer pattern in sc.pat. Zero allocations.
func (m *Monitor) observeInto(sc *Scratch, dst []float64, x []float64) {
	m.net.ForwardObserved(dst, sc.fwd, x, sc.observe)
}

// verdict classifies the pattern currently held in sc.
func (m *Monitor) verdict(sc *Scratch) Verdict {
	maxDist, maxLayer := 0, m.layers[0]
	for s, set := range m.sets {
		d := set.distance(sc.pat[s], sc.wpat[s])
		if d > m.gamma {
			return Verdict{OK: false, Layer: m.layers[s], Distance: d}
		}
		if d > maxDist {
			maxDist, maxLayer = d, m.layers[s]
		}
	}
	return Verdict{OK: true, Layer: maxLayer, Distance: maxDist}
}

// CheckInto is the allocation-free serving path: one fused forward pass
// writes the prediction into dst (length OutputDim) and returns the
// monitoring verdict, using only the state in sc. The prediction is
// bit-identical to nn.ForwardInto (the serving numerics; within
// documented tolerance of nn.Forward — see DESIGN.md "Kernel layer").
// sc must come from this monitor's NewScratch and must not be used
// concurrently.
func (m *Monitor) CheckInto(dst []float64, sc *Scratch, x []float64) Verdict {
	if sc.m != m {
		panic("monitor: CheckInto called with a Scratch from a different monitor")
	}
	m.observeInto(sc, dst, x)
	return m.verdict(sc)
}

// Check classifies one input, allocating its own transient state — the
// convenience form for tests and offline audits. Servers use CheckInto.
func (m *Monitor) Check(x []float64) Verdict {
	dst := make([]float64, m.net.OutputDim())
	return m.CheckInto(dst, m.NewScratch(), x)
}

// BatchScratch is the per-goroutine state of the batched serving path:
// the batched forward scratch plus per-layer pattern buffers for a whole
// batch. Buffers grow to the largest batch seen and are then reused, so
// steady-state batches allocate nothing. A BatchScratch must not be used
// by two goroutines at once.
type BatchScratch struct {
	m   *Monitor
	fwd *nn.Scratch
	// pat[s] holds the batch's patterns for monitored set s, input i at
	// [i*nbytes, (i+1)*nbytes); wbuf is the shared word-form scratch.
	pat   [][]byte
	wbuf  []uint64
	batch int
}

// NewBatchScratch allocates batched check state for this monitor.
func (m *Monitor) NewBatchScratch() *BatchScratch {
	sc := &BatchScratch{m: m, fwd: m.net.NewScratch(), pat: make([][]byte, len(m.sets))}
	maxWords := 0
	for _, set := range m.sets {
		if set.nwords > maxWords {
			maxWords = set.nwords
		}
	}
	sc.wbuf = make([]uint64, maxWords)
	return sc
}

// CheckBatchInto is the batched serving path: one layer-major forward
// pass (nn.ForwardBatchObserved) produces predictions for every input of
// the batch — each row bit-identical to CheckInto on that input — while
// the observation hook records all activation patterns; the verdicts are
// then classified in one tight pass over the pattern buffers, which
// amortizes the per-input exact-hit map lookups into a single
// cache-resident scan. dst and verdicts receive input i's prediction and
// verdict; all three slices must be len(xs) long, and each dst row
// OutputDim() long. sc must come from this monitor's NewBatchScratch and
// must not be used concurrently.
func (m *Monitor) CheckBatchInto(dst [][]float64, sc *BatchScratch, xs [][]float64, verdicts []Verdict) {
	if sc.m != m {
		panic("monitor: CheckBatchInto called with a BatchScratch from a different monitor")
	}
	if len(dst) != len(xs) || len(verdicts) != len(xs) {
		panic(fmt.Sprintf("monitor: CheckBatchInto %d outputs and %d verdicts for %d inputs", len(dst), len(verdicts), len(xs)))
	}
	batch := len(xs)
	if batch == 0 {
		return
	}
	if batch > sc.batch {
		for s, set := range m.sets {
			sc.pat[s] = make([]byte, batch*set.nbytes)
		}
		sc.batch = batch
	}
	m.net.ForwardBatchObserved(dst, sc.fwd, xs, func(layer int, pre *linalg.Dense) {
		s := m.slot[layer]
		if s < 0 {
			return
		}
		nb := m.sets[s].nbytes
		buf := sc.pat[s]
		for i := 0; i < batch*nb; i++ {
			buf[i] = 0
		}
		for i := 0; i < pre.Rows; i++ {
			row := pre.Row(i)
			bs := buf[i*nb : (i+1)*nb]
			for j, z := range row {
				if z > 0 {
					bs[j/8] |= 1 << (j % 8)
				}
			}
		}
	})
	for i := range xs {
		verdicts[i] = m.batchVerdict(sc, i)
	}
}

// batchVerdict classifies input i of the batch held in sc, with the same
// tie-breaking as the single-input verdict.
func (m *Monitor) batchVerdict(sc *BatchScratch, i int) Verdict {
	maxDist, maxLayer := 0, m.layers[0]
	for s, set := range m.sets {
		pat := sc.pat[s][i*set.nbytes : (i+1)*set.nbytes]
		d := set.distance(pat, sc.wbuf[:set.nwords])
		if d > m.gamma {
			return Verdict{OK: false, Layer: m.layers[s], Distance: d}
		}
		if d > maxDist {
			maxDist, maxLayer = d, m.layers[s]
		}
	}
	return Verdict{OK: true, Layer: maxLayer, Distance: maxDist}
}

// layerJSON is the wire form of one monitored layer's pattern set.
type layerJSON struct {
	Layer    int      `json:"layer"`
	Neurons  int      `json:"neurons"`
	Patterns []string `json:"patterns"` // hex bitsets, insertion order
}

// monitorJSON is the canonical wire form of a monitor.
type monitorJSON struct {
	Version  int         `json:"version"`
	Gamma    int         `json:"gamma"`
	Inputs   int         `json:"inputs"`
	Rejected int         `json:"rejected"`
	Layers   []layerJSON `json:"layers"`
}

// Marshal renders the monitor in its canonical JSON form: struct fields in
// declaration order, patterns hex-encoded in insertion order. Two builds
// from the same network, dataset order and options produce byte-identical
// marshals.
func (m *Monitor) Marshal() ([]byte, error) {
	doc := monitorJSON{
		Version:  Version,
		Gamma:    m.gamma,
		Inputs:   m.stats.Inputs,
		Rejected: m.stats.Rejected,
	}
	for s, li := range m.layers {
		lj := layerJSON{Layer: li, Neurons: m.sets[s].neurons, Patterns: make([]string, 0, len(m.sets[s].pats))}
		for _, pat := range m.sets[s].pats {
			lj.Patterns = append(lj.Patterns, hex.EncodeToString(pat))
		}
		doc.Layers = append(doc.Layers, lj)
	}
	return json.Marshal(doc)
}

// Unmarshal reconstructs a monitor from its canonical JSON form, bound to
// net (the marshal does not embed the network; callers pair it with the
// network fingerprint, as the vnn wire layer does).
func Unmarshal(data []byte, net *nn.Network) (*Monitor, error) {
	var doc monitorJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("monitor: unmarshal: %w", err)
	}
	if doc.Version != Version {
		return nil, fmt.Errorf("monitor: unsupported version %d", doc.Version)
	}
	if doc.Gamma < 0 {
		return nil, fmt.Errorf("monitor: gamma %d is negative", doc.Gamma)
	}
	if len(doc.Layers) == 0 {
		return nil, fmt.Errorf("monitor: document monitors no layers")
	}
	m := &Monitor{
		net:   net,
		gamma: doc.Gamma,
		slot:  make([]int, len(net.Layers)),
		stats: BuildStats{Inputs: doc.Inputs, Rejected: doc.Rejected},
	}
	for i := range m.slot {
		m.slot[i] = -1
	}
	relu := make(map[int]bool)
	for _, li := range net.ReLULayers() {
		relu[li] = true
	}
	prev := -1
	for _, lj := range doc.Layers {
		if !relu[lj.Layer] {
			return nil, fmt.Errorf("monitor: layer %d is not a hidden ReLU layer of %q", lj.Layer, net.Name)
		}
		if lj.Layer <= prev {
			return nil, fmt.Errorf("monitor: layers out of order at %d", lj.Layer)
		}
		prev = lj.Layer
		if want := net.Layers[lj.Layer].OutDim(); lj.Neurons != want {
			return nil, fmt.Errorf("monitor: layer %d has %d neurons, network %d", lj.Layer, lj.Neurons, want)
		}
		set := newPatternSet(lj.Neurons)
		// Bits beyond the neuron count must be zero: whole-byte XOR/popcount
		// distance scans would otherwise count phantom padding bits, and
		// padded variants of one pattern would dedup as distinct entries.
		var padMask byte
		if r := lj.Neurons % 8; r != 0 {
			padMask = ^byte(0) << r
		}
		for _, h := range lj.Patterns {
			pat, err := hex.DecodeString(h)
			if err != nil {
				return nil, fmt.Errorf("monitor: layer %d pattern %q: %w", lj.Layer, h, err)
			}
			if len(pat) != set.nbytes {
				return nil, fmt.Errorf("monitor: layer %d pattern has %d bytes, want %d", lj.Layer, len(pat), set.nbytes)
			}
			if padMask != 0 && pat[len(pat)-1]&padMask != 0 {
				return nil, fmt.Errorf("monitor: layer %d pattern %q sets bits beyond its %d neurons", lj.Layer, h, lj.Neurons)
			}
			set.add(pat)
		}
		m.slot[lj.Layer] = len(m.layers)
		m.layers = append(m.layers, lj.Layer)
		m.sets = append(m.sets, set)
		m.stats.Patterns = append(m.stats.Patterns, len(set.pats))
	}
	if m.PatternCount() == 0 {
		return nil, fmt.Errorf("monitor: document holds no patterns")
	}
	return m, nil
}

// Fingerprint returns a content hash of the monitor artifact: version,
// gamma, monitored layers, widths and every stored pattern in insertion
// order. Builds that differ in any admitted pattern — one extra dataset
// input, one γ change — hash differently; identical builds hash
// identically on every machine.
func (m *Monitor) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	u64(Version)
	u64(uint64(m.gamma))
	u64(uint64(len(m.layers)))
	for s, li := range m.layers {
		u64(uint64(li))
		u64(uint64(m.sets[s].neurons))
		u64(uint64(len(m.sets[s].pats)))
		for _, pat := range m.sets[s].pats {
			h.Write(pat)
		}
	}
	return "vnnm1-" + hex.EncodeToString(h.Sum(nil))
}
