package lp

import (
	"math"
	"math/rand"
	"testing"
)

// checkAgainstCold solves the model's current state both through the
// persistent solver (warm when possible) and through a fresh cold solve,
// and requires agreement in status and objective.
func checkAgainstCold(t *testing.T, s *Solver, tag string) {
	t.Helper()
	warm, err := s.Solve(Options{})
	if err != nil {
		t.Fatalf("%s: warm solve: %v", tag, err)
	}
	cold, err := Solve(s.Model(), Options{})
	if err != nil {
		t.Fatalf("%s: cold solve: %v", tag, err)
	}
	if warm.Status != cold.Status {
		t.Fatalf("%s: warm status %v, cold %v", tag, warm.Status, cold.Status)
	}
	if warm.Status == Optimal {
		if math.Abs(warm.Objective-cold.Objective) > 1e-6 {
			t.Fatalf("%s: warm objective %.12g, cold %.12g", tag, warm.Objective, cold.Objective)
		}
		if fe := s.Model().FeasibilityError(warm.X); fe > 1e-5 {
			t.Fatalf("%s: warm solution infeasible by %g", tag, fe)
		}
	}
}

// TestWarmObjectiveMutations re-solves one model under a stream of
// objective changes — the TightenLP access pattern, where the saved basis
// always stays primal feasible and phase 1 must never run again.
func TestWarmObjectiveMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		m := randomBoxLP(rng, 4+rng.Intn(6), 2+rng.Intn(5))
		s := NewSolver(m)
		for step := 0; step < 25; step++ {
			for v := 0; v < m.NumVariables(); v++ {
				m.SetObjective(v, rng.Float64()*4-2)
			}
			m.SetMaximize(step%2 == 0)
			checkAgainstCold(t, s, "objective-mutation")
		}
	}
}

// TestWarmBoundMutations re-solves under random bound tightenings and
// restorations, including mutations that make the model infeasible.
func TestWarmBoundMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(5)
		m := randomBoxLP(rng, n, 2+rng.Intn(4))
		orig := make([][2]float64, n)
		for v := 0; v < n; v++ {
			lo, hi := m.Bounds(v)
			orig[v] = [2]float64{lo, hi}
		}
		s := NewSolver(m)
		for step := 0; step < 30; step++ {
			v := rng.Intn(n)
			lo, hi := orig[v][0], orig[v][1]
			switch rng.Intn(3) {
			case 0: // tighten to a random sub-interval
				a := lo + rng.Float64()*(hi-lo)
				b := a + rng.Float64()*(hi-a)
				m.SetBounds(v, a, b)
			case 1: // fix at a point
				p := lo + rng.Float64()*(hi-lo)
				m.SetBounds(v, p, p)
			default: // restore
				m.SetBounds(v, lo, hi)
			}
			checkAgainstCold(t, s, "bound-mutation")
		}
	}
}

// TestWarmBinaryFixPattern drives the exact mutation sequence branch-and-
// bound performs on the verifier's big-M encodings: repeatedly fix an
// indicator to [0,0] or [1,1], re-solve, release it.
func TestWarmBinaryFixPattern(t *testing.T) {
	// y = relu(a) over a ∈ [-2, 3] via big-M with indicator d.
	m := NewModel()
	a := m.AddVariable(-2, 3, "a")
	y := m.AddVariable(0, 3, "y")
	d := m.AddVariable(0, 1, "d")
	m.SetObjective(y, 1)
	m.SetObjective(a, -0.1)
	m.SetMaximize(true)
	m.AddConstraint([]Term{{a, 1}, {y, -1}}, LE, 0, "y>=a")
	m.AddConstraint([]Term{{a, 1}, {y, -1}, {d, -2}}, GE, -2, "y<=a+2(1-d)")
	m.AddConstraint([]Term{{y, 1}, {d, -3}}, LE, 0, "y<=3d")

	s := NewSolver(m)
	fixes := [][2]float64{{0, 1}, {0, 0}, {0, 1}, {1, 1}, {0, 0}, {1, 1}, {0, 1}}
	for i, fx := range fixes {
		m.SetBounds(d, fx[0], fx[1])
		checkAgainstCold(t, s, "binary-fix")
		_ = i
	}
}

// TestSolveFromBasis checks that installing a snapshot basis from a
// structurally identical sibling solver reproduces the cold answer.
func TestSolveFromBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		m := randomBoxLP(rng, 5+rng.Intn(5), 3+rng.Intn(4))
		parent := NewSolver(m)
		if sol, err := parent.Solve(Options{}); err != nil || sol.Status != Optimal {
			t.Fatalf("parent solve: %v / %v", sol.Status, err)
		}
		snap := parent.SaveBasis()
		if snap == nil {
			t.Fatal("no basis after optimal solve")
		}

		// A sibling worker: same structure, mutated bounds (a binary-style fix).
		clone := m.Clone()
		v := rng.Intn(m.NumVariables())
		lo, hi := clone.Bounds(v)
		mid := lo + rng.Float64()*(hi-lo)
		clone.SetBounds(v, mid, mid)
		sib := NewSolver(clone)
		// Prime the sibling with one solve so SolveFrom has a live tableau.
		if _, err := sib.Solve(Options{}); err != nil {
			t.Fatal(err)
		}
		warm, err := sib.SolveFrom(snap, Options{})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Solve(clone, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: SolveFrom status %v, cold %v", trial, warm.Status, cold.Status)
		}
		if warm.Status == Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-6 {
			t.Fatalf("trial %d: SolveFrom objective %.12g, cold %.12g", trial, warm.Objective, cold.Objective)
		}
	}
}

// TestSolverStructureChange verifies the solver survives a model that grows
// between solves (rebuild path).
func TestSolverStructureChange(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, 2, "x")
	m.SetObjective(x, 1)
	m.SetMaximize(true)
	s := NewSolver(m)
	sol, err := s.Solve(Options{})
	if err != nil || sol.Status != Optimal || math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("first solve: %+v err=%v", sol, err)
	}
	y := m.AddVariable(0, 3, "y")
	m.SetObjective(y, 1)
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 4, "cap")
	sol, err = s.Solve(Options{})
	if err != nil || sol.Status != Optimal || math.Abs(sol.Objective-4) > 1e-6 {
		t.Fatalf("post-growth solve: %+v err=%v", sol, err)
	}
}

// TestWarmAfterInfeasible makes sure an infeasible episode does not poison
// later warm solves.
func TestWarmAfterInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, 1, "x")
	y := m.AddVariable(0, 1, "y")
	m.SetObjective(x, 1)
	m.SetObjective(y, 1)
	m.SetMaximize(true)
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 1, "floor")
	s := NewSolver(m)
	for i := 0; i < 6; i++ {
		if i%2 == 1 {
			m.SetBounds(x, 0, 0.2)
			m.SetBounds(y, 0, 0.2) // 0.4 < 1: infeasible
		} else {
			m.SetBounds(x, 0, 1)
			m.SetBounds(y, 0, 1)
		}
		checkAgainstCold(t, s, "infeasible-cycle")
	}
}

// TestWarmManySolvesDriftGuard runs enough warm re-solves to cross the
// refactorization period several times and checks exactness throughout.
func TestWarmManySolvesDriftGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := randomBoxLP(rng, 12, 10)
	s := NewSolver(m)
	for step := 0; step < 300; step++ {
		v := rng.Intn(12)
		lo, hi := m.Bounds(v)
		if hi-lo > 0.2 && rng.Intn(2) == 0 {
			m.SetBounds(v, lo, lo+(hi-lo)*0.9)
		} else {
			for w := 0; w < 12; w++ {
				m.SetObjective(w, rng.Float64()*2-1)
			}
		}
		warm, err := s.Solve(Options{})
		if err != nil {
			t.Fatal(err)
		}
		if step%23 == 0 { // spot-check against cold (cold every step is slow)
			cold, err := Solve(m, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if warm.Status != cold.Status {
				t.Fatalf("step %d: status %v vs %v", step, warm.Status, cold.Status)
			}
			if warm.Status == Optimal && math.Abs(warm.Objective-cold.Objective) > 1e-6 {
				t.Fatalf("step %d: objective %.12g vs %.12g", step, warm.Objective, cold.Objective)
			}
		}
	}
}

// BenchmarkWarmResolve measures the persistent solver on the branch-and-
// bound access pattern (solve, fix a bound, re-solve) against the cold path
// BenchmarkColdResolve takes on the identical mutation stream.
func BenchmarkWarmResolve(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	m := randomBoxLP(rng, 60, 40)
	s := NewSolver(m)
	if _, err := s.Solve(Options{}); err != nil {
		b.Fatal(err)
	}
	orig := make([][2]float64, 60)
	for v := range orig {
		lo, hi := m.Bounds(v)
		orig[v] = [2]float64{lo, hi}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := i % 60
		if i%2 == 0 {
			m.SetBounds(v, orig[v][0], orig[v][0])
		} else {
			m.SetBounds(v, orig[v][0], orig[v][1])
		}
		if _, err := s.Solve(Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkColdResolve(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	m := randomBoxLP(rng, 60, 40)
	orig := make([][2]float64, 60)
	for v := range orig {
		lo, hi := m.Bounds(v)
		orig[v] = [2]float64{lo, hi}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := i % 60
		if i%2 == 0 {
			m.SetBounds(v, orig[v][0], orig[v][0])
		} else {
			m.SetBounds(v, orig[v][0], orig[v][1])
		}
		if _, err := Solve(m, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
