package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no point.
	Infeasible
	// Unbounded means the objective improves without limit.
	Unbounded
	// IterationLimit means the pivot budget was exhausted first.
	IterationLimit
)

// String returns a readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of a successful or unsuccessful solve.
type Solution struct {
	Status     Status
	Objective  float64   // objective value in the model's own direction
	X          []float64 // one value per model variable (valid when Optimal)
	Iterations int       // total simplex pivots across both phases
}

// Options tune the solver. The zero value selects sensible defaults.
type Options struct {
	// MaxIterations bounds total pivots; 0 means 400*(rows+cols)+20000.
	MaxIterations int
	// Tol is the feasibility/optimality tolerance; 0 means 1e-7.
	Tol float64
	// Cancel, when non-nil, is polled every cancelPeriod pivots; once it
	// reports true the solve stops and returns IterationLimit. This is how
	// context cancellation and deadlines reach into a running simplex
	// instead of waiting for the current solve to finish. A cancelled
	// answer is never trusted: callers treat IterationLimit as "unresolved".
	Cancel func() bool
}

// ErrBadModel is returned for structurally unusable models
// (e.g. a variable with lower > upper introduced via direct mutation).
var ErrBadModel = errors.New("lp: malformed model")

const (
	pivotTol      = 1e-9
	defaultTol    = 1e-7
	refreshPeriod = 512 // pivots between reduced-cost refreshes
	blandTrigger  = 4   // multiples of (m+n) before Bland's rule engages
	cancelPeriod  = 128 // pivots between Options.Cancel polls
)

type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	free
	basic
)

// tableau is the working state of a solve. Column layout:
// [0,nStruct) structural, [nStruct,nStruct+m) slacks,
// [nStruct+m, nTotal) artificials.
//
// width is the pricing/update extent: nTotal while phase-1 artificials are
// live, nStruct+m once they are retired. Columns at or beyond width are
// never priced and their tableau entries go stale; the artificials are
// pinned to [0,0] by then, so they can never re-enter the basis.
type tableau struct {
	m, nStruct, nTotal int
	width              int
	t                  [][]float64 // m × nTotal working tableau (B⁻¹A)
	backing            []float64   // t's backing storage, for fast cold resets
	lower, upper       []float64   // bounds per column
	cost               []float64   // current phase costs per column
	d                  []float64   // reduced costs per column
	x                  []float64   // current value per column
	status             []varStatus
	basis              []int     // column basic in each row
	rhsInv             []float64 // B⁻¹·b, maintained through pivots
	iters              int
	maxIters           int
	tol                float64
	cancel             func() bool // optional cooperative-cancellation poll
}

// cancelled polls the cancellation hook at most every cancelPeriod pivots.
func (tb *tableau) cancelled() bool {
	return tb.cancel != nil && tb.iters%cancelPeriod == 0 && tb.cancel()
}

// Solve optimizes the model and returns a solution.
// The model is not mutated. Each call builds and solves from scratch; use
// a Solver for repeated solves of one model under bound/objective changes.
func Solve(m *Model, opts Options) (*Solution, error) {
	return NewSolver(m).Solve(opts)
}

// phase1Objective sums the absolute values of artificial variables.
func (tb *tableau) phase1Objective() float64 {
	var s float64
	for j := tb.nStruct + tb.m; j < tb.nTotal; j++ {
		s += math.Abs(tb.x[j])
	}
	return s
}

// retireArtificials pins artificial columns at zero and pivots basic
// artificials out of the basis where a usable pivot exists. A row whose
// artificial cannot be pivoted out is redundant and stays inert.
// Must run while width still covers the artificial columns.
func (tb *tableau) retireArtificials() {
	artStart := tb.nStruct + tb.m
	for j := artStart; j < tb.nTotal; j++ {
		tb.lower[j], tb.upper[j] = 0, 0
		if tb.status[j] != basic {
			tb.status[j] = atLower
			tb.x[j] = 0
		}
	}
	for r := 0; r < tb.m; r++ {
		if tb.basis[r] < artStart {
			continue
		}
		// Degenerate pivot onto any non-artificial column with a stable pivot.
		best, bestAbs := -1, pivotTol
		for j := 0; j < artStart; j++ {
			if tb.status[j] == basic {
				continue
			}
			if a := math.Abs(tb.t[r][j]); a > bestAbs {
				best, bestAbs = j, a
			}
		}
		if best >= 0 {
			art := tb.basis[r]
			tb.status[art] = atLower
			tb.x[art] = 0
			tb.pivot(r, best, tb.x[best])
		}
	}
}

// refreshReducedCosts recomputes d = c − cᵦᵀT from scratch.
func (tb *tableau) refreshReducedCosts() {
	copy(tb.d, tb.cost)
	for i := 0; i < tb.m; i++ {
		cb := tb.cost[tb.basis[i]]
		if cb == 0 {
			continue
		}
		row := tb.t[i]
		for j := 0; j < tb.width; j++ {
			tb.d[j] -= cb * row[j]
		}
	}
	for i := 0; i < tb.m; i++ {
		tb.d[tb.basis[i]] = 0
	}
}

// entering selects an entering column and its movement direction, or (-1, 0)
// at optimality. Dantzig pricing normally, Bland's rule when bland is set.
// The scan stops at width, so retired artificial columns are never priced.
func (tb *tableau) entering(bland bool) (col int, dir float64) {
	bestScore := tb.tol
	col = -1
	for j := 0; j < tb.width; j++ {
		if tb.status[j] == basic || tb.lower[j] == tb.upper[j] {
			continue // fixed columns can never move
		}
		rc := tb.d[j]
		var cand float64
		switch tb.status[j] {
		case atLower:
			if rc < -bestScore {
				cand = 1
			}
		case atUpper:
			if rc > bestScore {
				cand = -1
			}
		case free:
			if math.Abs(rc) > bestScore {
				cand = 1
				if rc > 0 {
					cand = -1
				}
			}
		}
		if cand != 0 {
			if bland {
				return j, cand
			}
			bestScore = math.Abs(rc)
			col, dir = j, cand
		}
	}
	return col, dir
}

// iterate runs primal pivots until optimality, unboundedness, or the
// iteration budget is exhausted.
func (tb *tableau) iterate() Status {
	blandAfter := blandTrigger * (tb.m + tb.nTotal)
	sinceRefresh := 0
	for stall := 0; ; tb.iters++ {
		if tb.iters >= tb.maxIters || tb.cancelled() {
			return IterationLimit
		}
		if sinceRefresh >= refreshPeriod {
			tb.refreshReducedCosts()
			sinceRefresh = 0
		}
		j, dir := tb.entering(stall > blandAfter)
		if j < 0 {
			return Optimal
		}

		// Ratio test: how far can x_j move along dir before a basic
		// variable (or x_j's own opposite bound) hits a bound?
		tMax := math.Inf(1)
		if !math.IsInf(tb.lower[j], -1) && !math.IsInf(tb.upper[j], 1) {
			tMax = tb.upper[j] - tb.lower[j]
		}
		leaveRow, leaveAtUpper := -1, false
		bestPivot := 0.0
		for i := 0; i < tb.m; i++ {
			a := tb.t[i][j]
			if math.Abs(a) < pivotTol {
				continue
			}
			delta := -dir * a // change of basic i per unit t
			bi := tb.basis[i]
			var limit float64
			var hitsUpper bool
			if delta > 0 {
				if math.IsInf(tb.upper[bi], 1) {
					continue
				}
				limit = (tb.upper[bi] - tb.x[bi]) / delta
				hitsUpper = true
			} else {
				if math.IsInf(tb.lower[bi], -1) {
					continue
				}
				limit = (tb.x[bi] - tb.lower[bi]) / (-delta)
			}
			if limit < 0 {
				limit = 0 // tolerate slight infeasibility from roundoff
			}
			// Prefer strictly smaller limits; on near-ties take the
			// largest pivot magnitude for numerical stability.
			if limit < tMax-1e-12 || (leaveRow >= 0 && limit <= tMax+1e-12 && math.Abs(a) > bestPivot) {
				tMax = math.Min(tMax, limit)
				leaveRow, leaveAtUpper = i, hitsUpper
				bestPivot = math.Abs(a)
			}
		}

		if math.IsInf(tMax, 1) {
			return Unbounded
		}
		if tMax <= 1e-12 {
			stall++
		} else {
			stall = 0
		}

		// Move the entering variable and every basic variable.
		step := dir * tMax
		tb.x[j] += step
		for i := 0; i < tb.m; i++ {
			if a := tb.t[i][j]; a != 0 {
				tb.x[tb.basis[i]] -= step * a
			}
		}

		if leaveRow < 0 {
			// Bound flip: x_j traversed to its opposite bound.
			if dir > 0 {
				tb.status[j] = atUpper
				tb.x[j] = tb.upper[j]
			} else {
				tb.status[j] = atLower
				tb.x[j] = tb.lower[j]
			}
			sinceRefresh++
			continue
		}

		// Snap the leaving variable exactly onto the bound it reached.
		leaving := tb.basis[leaveRow]
		if leaveAtUpper {
			tb.status[leaving] = atUpper
			tb.x[leaving] = tb.upper[leaving]
		} else {
			tb.status[leaving] = atLower
			tb.x[leaving] = tb.lower[leaving]
		}
		tb.pivot(leaveRow, j, tb.x[j])
		sinceRefresh++
	}
}

// pivot makes column j basic in row r, keeping its current value xj.
// Row operations stop at width; columns beyond it are stale by design.
func (tb *tableau) pivot(r, j int, xj float64) {
	p := tb.t[r][j]
	row := tb.t[r]
	inv := 1 / p
	for k := 0; k < tb.width; k++ {
		row[k] *= inv
	}
	row[j] = 1
	tb.rhsInv[r] *= inv
	for i := 0; i < tb.m; i++ {
		if i == r {
			continue
		}
		f := tb.t[i][j]
		if f == 0 {
			continue
		}
		ti := tb.t[i]
		for k := 0; k < tb.width; k++ {
			ti[k] -= f * row[k]
		}
		ti[j] = 0
		tb.rhsInv[i] -= f * tb.rhsInv[r]
	}
	if f := tb.d[j]; f != 0 {
		for k := 0; k < tb.width; k++ {
			tb.d[k] -= f * row[k]
		}
	}
	tb.d[j] = 0
	tb.basis[r] = j
	tb.status[j] = basic
	tb.x[j] = xj
}

// computeBasics recomputes every basic variable's value from the invariant
// T·x = B⁻¹·b given the current nonbasic rest values.
func (tb *tableau) computeBasics() {
	for i := 0; i < tb.m; i++ {
		v := tb.rhsInv[i]
		row := tb.t[i]
		for j := 0; j < tb.width; j++ {
			if tb.status[j] != basic && tb.x[j] != 0 {
				v -= row[j] * tb.x[j]
			}
		}
		tb.x[tb.basis[i]] = v
	}
}

// firstInfeasibleRow returns the first row whose basic variable violates its
// bounds beyond tolerance, or -1 when the basis is primal feasible.
func (tb *tableau) firstInfeasibleRow() int {
	for i := 0; i < tb.m; i++ {
		bi := tb.basis[i]
		v := tb.x[bi]
		if lo := tb.lower[bi]; v < lo-tb.tol*(1+math.Abs(lo)) {
			return i
		}
		if hi := tb.upper[bi]; v > hi+tb.tol*(1+math.Abs(hi)) {
			return i
		}
	}
	return -1
}

// mostInfeasibleRow returns the row whose basic variable violates its bounds
// the most, or -1 when the basis is primal feasible.
func (tb *tableau) mostInfeasibleRow() int {
	row, worst := -1, 0.0
	for i := 0; i < tb.m; i++ {
		bi := tb.basis[i]
		v := tb.x[bi]
		if d := (tb.lower[bi] - v) - tb.tol*(1+math.Abs(tb.lower[bi])); d > worst {
			row, worst = i, d
		}
		if d := (v - tb.upper[bi]) - tb.tol*(1+math.Abs(tb.upper[bi])); d > worst {
			row, worst = i, d
		}
	}
	return row
}

// dualFeasible reports whether the current reduced costs satisfy the
// optimality sign conventions — the precondition for dual pivoting. True
// whenever the basis was optimal for the same objective (the branch-and-
// bound child case: only bounds changed). The threshold is deliberately
// loose: the dual simplex is only a pivot rule here — optimality is
// re-certified by the primal polish afterwards — so near-feasible reduced
// costs (pricing leaves residuals up to tol, and a fresh refresh can push
// them slightly past it) just cost a few extra primal pivots, while
// rejecting them would force a full cold solve.
func (tb *tableau) dualFeasible() bool {
	slack := 10 * tb.tol
	for j := 0; j < tb.width; j++ {
		if tb.status[j] == basic || tb.lower[j] == tb.upper[j] {
			continue
		}
		switch tb.status[j] {
		case atLower:
			if tb.d[j] < -slack {
				return false
			}
		case atUpper:
			if tb.d[j] > slack {
				return false
			}
		case free:
			if math.Abs(tb.d[j]) > slack {
				return false
			}
		}
	}
	return true
}

// rowProvesInfeasible checks whether row r certifies primal infeasibility
// directly from tableau data: the basic variable's extreme achievable value
// over the nonbasic box still violates its bound.
func (tb *tableau) rowProvesInfeasible(r int) bool {
	bi := tb.basis[r]
	row := tb.t[r]
	// x_bi = rhsInv[r] − Σ α_j x_j; maximize and minimize over the box.
	maxV, minV := tb.rhsInv[r], tb.rhsInv[r]
	for j := 0; j < tb.width; j++ {
		if tb.status[j] == basic {
			continue
		}
		a := row[j]
		if a == 0 {
			continue
		}
		lo, hi := tb.lower[j], tb.upper[j]
		if math.IsInf(lo, -1) || math.IsInf(hi, 1) {
			return false // unbounded box direction: no certificate here
		}
		if a > 0 {
			maxV -= a * lo
			minV -= a * hi
		} else {
			maxV -= a * hi
			minV -= a * lo
		}
	}
	slack := tb.tol * (1 + math.Abs(tb.lower[bi]) + math.Abs(tb.upper[bi]))
	return maxV < tb.lower[bi]-slack || minV > tb.upper[bi]+slack
}

// dualIterate runs bounded-variable dual simplex pivots until the basis is
// primal feasible (→ Optimal), certified primal infeasible (→ Infeasible),
// or the pivot budget runs out. It requires (near-)dual-feasible reduced
// costs on entry; the caller re-polishes with primal pivots, so mild sign
// drift costs extra primal work, never correctness. ok=false means the
// pass could not conclude and the caller must go cold.
//
// The ratio test is the long-step variant: a min-ratio column whose own
// bound range cannot absorb the leaving variable's residual is flipped to
// its opposite bound — an O(m) value update instead of an O(m·n) pivot —
// and the scan continues with the next candidate. Without flips, big-M
// verification LPs (full of boxed indicator columns with narrow ranges)
// degenerate into long chains of full pivots.
func (tb *tableau) dualIterate() (st Status, ok bool) {
	budget := 6*tb.m + 100 // dual steps, not counting flips
	for steps := 0; ; steps++ {
		if tb.iters >= tb.maxIters || tb.cancelled() {
			return IterationLimit, true
		}
		if steps > budget {
			return 0, false // stalling; let the cold path decide
		}
		r := tb.mostInfeasibleRow()
		if r < 0 {
			return Optimal, true
		}
		bi := tb.basis[r]
		below := tb.x[bi] < tb.lower[bi]
		var target float64
		var leaveAt varStatus
		if below {
			target, leaveAt = tb.lower[bi], atLower
		} else {
			target, leaveAt = tb.upper[bi], atUpper
		}
		row := tb.t[r]

		// Resolve row r: flip boxed min-ratio columns that cannot absorb
		// the residual, enter the first one that can.
		entered := false
		for tb.x[bi] != target {
			deltaB := target - tb.x[bi] // >0 when below, <0 when above

			// Dual ratio test: entering column must let x_bi move toward
			// its bound (sign condition) while keeping reduced-cost signs
			// valid — smallest |d|/|α|, largest |α| on near-ties.
			best, bestRatio, bestAbs := -1, math.Inf(1), 0.0
			for j := 0; j < tb.width; j++ {
				if tb.status[j] == basic || tb.lower[j] == tb.upper[j] {
					continue
				}
				a := row[j]
				if math.Abs(a) < pivotTol {
					continue
				}
				// x_bi changes by −α_j·Δx_j; Δx_j ≥ 0 from atLower, ≤ 0
				// from atUpper, either direction when free.
				switch tb.status[j] {
				case atLower:
					if (below && a >= 0) || (!below && a <= 0) {
						continue
					}
				case atUpper:
					if (below && a <= 0) || (!below && a >= 0) {
						continue
					}
				}
				ratio := math.Abs(tb.d[j]) / math.Abs(a)
				if ratio < bestRatio-1e-12 || (ratio <= bestRatio+1e-12 && math.Abs(a) > bestAbs) {
					best, bestRatio, bestAbs = j, ratio, math.Abs(a)
				}
			}
			if best < 0 {
				// No admissible entering column: either a genuine
				// infeasibility certificate or a numerical dead end.
				if tb.rowProvesInfeasible(r) {
					return Infeasible, true
				}
				return 0, false
			}

			deltaJ := deltaB / -row[best]
			rng := tb.upper[best] - tb.lower[best]
			if tb.status[best] != free && !math.IsInf(rng, 1) && math.Abs(deltaJ) > rng {
				// Bound flip: the column saturates before the row is whole.
				var step float64
				if tb.status[best] == atLower {
					step = rng
					tb.status[best] = atUpper
					tb.x[best] = tb.upper[best]
				} else {
					step = -rng
					tb.status[best] = atLower
					tb.x[best] = tb.lower[best]
				}
				for i := 0; i < tb.m; i++ {
					if a := tb.t[i][best]; a != 0 {
						tb.x[tb.basis[i]] -= step * a
					}
				}
				continue
			}

			newXj := tb.x[best] + deltaJ
			for i := 0; i < tb.m; i++ {
				if a := tb.t[i][best]; a != 0 {
					tb.x[tb.basis[i]] -= deltaJ * a
				}
			}
			tb.status[bi] = leaveAt
			tb.x[bi] = target
			tb.pivot(r, best, newXj)
			tb.iters++
			entered = true
			break
		}
		if !entered && tb.x[bi] == target {
			// Flips alone made the row feasible; the basic variable stays.
			continue
		}
	}
}
