package lp

import (
	"errors"
	"fmt"
	"math"
)

// Status reports the outcome of a solve.
type Status int

// Solve outcomes.
const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no point.
	Infeasible
	// Unbounded means the objective improves without limit.
	Unbounded
	// IterationLimit means the pivot budget was exhausted first.
	IterationLimit
)

// String returns a readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterationLimit:
		return "iteration-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Solution is the result of a successful or unsuccessful solve.
type Solution struct {
	Status     Status
	Objective  float64   // objective value in the model's own direction
	X          []float64 // one value per model variable (valid when Optimal)
	Iterations int       // total simplex pivots across both phases
}

// Options tune the solver. The zero value selects sensible defaults.
type Options struct {
	// MaxIterations bounds total pivots; 0 means 400*(rows+cols)+20000.
	MaxIterations int
	// Tol is the feasibility/optimality tolerance; 0 means 1e-7.
	Tol float64
}

// ErrBadModel is returned for structurally unusable models
// (e.g. a variable with lower > upper introduced via direct mutation).
var ErrBadModel = errors.New("lp: malformed model")

const (
	pivotTol       = 1e-9
	defaultTol     = 1e-7
	refreshPeriod  = 512 // pivots between reduced-cost refreshes
	blandTrigger   = 4   // multiples of (m+n) before Bland's rule engages
	artificialBase = "artificial"
)

type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	free
	basic
)

// tableau is the working state of a solve.
type tableau struct {
	m, nStruct, nTotal int
	t                  [][]float64 // m × nTotal working tableau (B⁻¹A)
	lower, upper       []float64   // bounds per column
	cost               []float64   // current phase costs per column
	d                  []float64   // reduced costs per column
	x                  []float64   // current value per column
	status             []varStatus
	basis              []int // column basic in each row
	iters              int
	maxIters           int
	tol                float64
}

// Solve optimizes the model and returns a solution.
// The model is not mutated.
func Solve(m *Model, opts Options) (*Solution, error) {
	tol := opts.Tol
	if tol <= 0 {
		tol = defaultTol
	}
	for _, v := range m.vars {
		if v.Lower > v.Upper || math.IsNaN(v.Lower) || math.IsNaN(v.Upper) {
			return nil, ErrBadModel
		}
	}

	nStruct := len(m.vars)
	rows := len(m.cons)
	nTotal := nStruct + 2*rows // slacks + artificials
	tb := &tableau{
		m:       rows,
		nStruct: nStruct,
		nTotal:  nTotal,
		lower:   make([]float64, nTotal),
		upper:   make([]float64, nTotal),
		cost:    make([]float64, nTotal),
		d:       make([]float64, nTotal),
		x:       make([]float64, nTotal),
		status:  make([]varStatus, nTotal),
		basis:   make([]int, rows),
		tol:     tol,
	}
	tb.maxIters = opts.MaxIterations
	if tb.maxIters <= 0 {
		tb.maxIters = 400*(rows+nTotal) + 20000
	}

	tb.t = make([][]float64, rows)
	backing := make([]float64, rows*nTotal)
	for i := range tb.t {
		tb.t[i], backing = backing[:nTotal:nTotal], backing[nTotal:]
	}

	// Column layout: [0,nStruct) structural, [nStruct,nStruct+m) slacks,
	// [nStruct+m, nTotal) artificials.
	for j, v := range m.vars {
		tb.lower[j], tb.upper[j] = v.Lower, v.Upper
	}
	for i, c := range m.cons {
		for _, term := range c.Terms {
			tb.t[i][term.Var] += term.Coeff
		}
		slack := nStruct + i
		tb.t[i][slack] = 1
		switch c.Sense {
		case LE:
			tb.lower[slack], tb.upper[slack] = 0, math.Inf(1)
		case GE:
			tb.lower[slack], tb.upper[slack] = math.Inf(-1), 0
		case EQ:
			tb.lower[slack], tb.upper[slack] = 0, 0
		}
	}

	// Rest every non-artificial at a finite bound (free vars at 0).
	for j := 0; j < nStruct+rows; j++ {
		switch {
		case !math.IsInf(tb.lower[j], -1):
			tb.status[j], tb.x[j] = atLower, tb.lower[j]
		case !math.IsInf(tb.upper[j], 1):
			tb.status[j], tb.x[j] = atUpper, tb.upper[j]
		default:
			tb.status[j], tb.x[j] = free, 0
		}
	}

	// Artificial variables absorb each row's residual and start basic.
	var phase1Needed bool
	for i, c := range m.cons {
		var lhs float64
		for j := 0; j < nStruct+rows; j++ {
			if tb.t[i][j] != 0 {
				lhs += tb.t[i][j] * tb.x[j]
			}
		}
		r := c.RHS - lhs
		art := nStruct + rows + i
		tb.t[i][art] = 1
		tb.basis[i] = art
		tb.status[art] = basic
		tb.x[art] = r
		if r >= 0 {
			tb.lower[art], tb.upper[art] = 0, math.Inf(1)
			tb.cost[art] = 1
		} else {
			tb.lower[art], tb.upper[art] = math.Inf(-1), 0
			tb.cost[art] = -1
		}
		if math.Abs(r) > tol {
			phase1Needed = true
		}
	}

	// Phase 1: minimize signed artificial mass.
	if phase1Needed {
		tb.refreshReducedCosts()
		st := tb.iterate()
		if st == IterationLimit {
			return &Solution{Status: IterationLimit, Iterations: tb.iters}, nil
		}
		if tb.phase1Objective() > 10*tol {
			return &Solution{Status: Infeasible, Iterations: tb.iters}, nil
		}
	}
	tb.retireArtificials()

	// Phase 2: the real objective.
	for j := range tb.cost {
		tb.cost[j] = 0
	}
	sign := 1.0
	if m.maximize {
		sign = -1
	}
	for j, v := range m.vars {
		tb.cost[j] = sign * v.Obj
	}
	tb.refreshReducedCosts()
	st := tb.iterate()

	sol := &Solution{Status: st, Iterations: tb.iters}
	switch st {
	case Optimal, IterationLimit:
		sol.X = make([]float64, nStruct)
		copy(sol.X, tb.x[:nStruct])
		sol.Objective = m.EvalObjective(sol.X)
	case Unbounded:
		// No finite solution to report.
	}
	return sol, nil
}

// phase1Objective sums the absolute values of artificial variables.
func (tb *tableau) phase1Objective() float64 {
	var s float64
	for j := tb.nStruct + tb.m; j < tb.nTotal; j++ {
		s += math.Abs(tb.x[j])
	}
	return s
}

// retireArtificials pins artificial columns at zero and pivots basic
// artificials out of the basis where a usable pivot exists. A row whose
// artificial cannot be pivoted out is redundant and stays inert.
func (tb *tableau) retireArtificials() {
	artStart := tb.nStruct + tb.m
	for j := artStart; j < tb.nTotal; j++ {
		tb.lower[j], tb.upper[j] = 0, 0
		if tb.status[j] != basic {
			tb.status[j] = atLower
			tb.x[j] = 0
		}
	}
	for r := 0; r < tb.m; r++ {
		if tb.basis[r] < artStart {
			continue
		}
		// Degenerate pivot onto any non-artificial column with a stable pivot.
		best, bestAbs := -1, pivotTol
		for j := 0; j < artStart; j++ {
			if tb.status[j] == basic {
				continue
			}
			if a := math.Abs(tb.t[r][j]); a > bestAbs {
				best, bestAbs = j, a
			}
		}
		if best >= 0 {
			art := tb.basis[r]
			tb.status[art] = atLower
			tb.x[art] = 0
			tb.pivot(r, best, tb.x[best])
		}
	}
}

// refreshReducedCosts recomputes d = c − cᵦᵀT from scratch.
func (tb *tableau) refreshReducedCosts() {
	copy(tb.d, tb.cost)
	for i := 0; i < tb.m; i++ {
		cb := tb.cost[tb.basis[i]]
		if cb == 0 {
			continue
		}
		row := tb.t[i]
		for j := 0; j < tb.nTotal; j++ {
			tb.d[j] -= cb * row[j]
		}
	}
	for i := 0; i < tb.m; i++ {
		tb.d[tb.basis[i]] = 0
	}
}

// entering selects an entering column and its movement direction, or (-1, 0)
// at optimality. Dantzig pricing normally, Bland's rule when bland is set.
func (tb *tableau) entering(bland bool) (col int, dir float64) {
	bestScore := tb.tol
	col = -1
	for j := 0; j < tb.nTotal; j++ {
		if tb.status[j] == basic || tb.lower[j] == tb.upper[j] {
			continue // fixed columns can never move
		}
		rc := tb.d[j]
		var cand float64
		switch tb.status[j] {
		case atLower:
			if rc < -bestScore {
				cand = 1
			}
		case atUpper:
			if rc > bestScore {
				cand = -1
			}
		case free:
			if math.Abs(rc) > bestScore {
				cand = 1
				if rc > 0 {
					cand = -1
				}
			}
		}
		if cand != 0 {
			if bland {
				return j, cand
			}
			bestScore = math.Abs(rc)
			col, dir = j, cand
		}
	}
	return col, dir
}

// iterate runs primal pivots until optimality, unboundedness, or the
// iteration budget is exhausted.
func (tb *tableau) iterate() Status {
	blandAfter := blandTrigger * (tb.m + tb.nTotal)
	sinceRefresh := 0
	for stall := 0; ; tb.iters++ {
		if tb.iters >= tb.maxIters {
			return IterationLimit
		}
		if sinceRefresh >= refreshPeriod {
			tb.refreshReducedCosts()
			sinceRefresh = 0
		}
		j, dir := tb.entering(stall > blandAfter)
		if j < 0 {
			return Optimal
		}

		// Ratio test: how far can x_j move along dir before a basic
		// variable (or x_j's own opposite bound) hits a bound?
		tMax := math.Inf(1)
		if !math.IsInf(tb.lower[j], -1) && !math.IsInf(tb.upper[j], 1) {
			tMax = tb.upper[j] - tb.lower[j]
		}
		leaveRow, leaveAtUpper := -1, false
		bestPivot := 0.0
		for i := 0; i < tb.m; i++ {
			a := tb.t[i][j]
			if math.Abs(a) < pivotTol {
				continue
			}
			delta := -dir * a // change of basic i per unit t
			bi := tb.basis[i]
			var limit float64
			var hitsUpper bool
			if delta > 0 {
				if math.IsInf(tb.upper[bi], 1) {
					continue
				}
				limit = (tb.upper[bi] - tb.x[bi]) / delta
				hitsUpper = true
			} else {
				if math.IsInf(tb.lower[bi], -1) {
					continue
				}
				limit = (tb.x[bi] - tb.lower[bi]) / (-delta)
			}
			if limit < 0 {
				limit = 0 // tolerate slight infeasibility from roundoff
			}
			// Prefer strictly smaller limits; on near-ties take the
			// largest pivot magnitude for numerical stability.
			if limit < tMax-1e-12 || (leaveRow >= 0 && limit <= tMax+1e-12 && math.Abs(a) > bestPivot) {
				tMax = math.Min(tMax, limit)
				leaveRow, leaveAtUpper = i, hitsUpper
				bestPivot = math.Abs(a)
			}
		}

		if math.IsInf(tMax, 1) {
			return Unbounded
		}
		if tMax <= 1e-12 {
			stall++
		} else {
			stall = 0
		}

		// Move the entering variable and every basic variable.
		step := dir * tMax
		tb.x[j] += step
		for i := 0; i < tb.m; i++ {
			if a := tb.t[i][j]; a != 0 {
				tb.x[tb.basis[i]] -= step * a
			}
		}

		if leaveRow < 0 {
			// Bound flip: x_j traversed to its opposite bound.
			if dir > 0 {
				tb.status[j] = atUpper
				tb.x[j] = tb.upper[j]
			} else {
				tb.status[j] = atLower
				tb.x[j] = tb.lower[j]
			}
			sinceRefresh++
			continue
		}

		// Snap the leaving variable exactly onto the bound it reached.
		leaving := tb.basis[leaveRow]
		if leaveAtUpper {
			tb.status[leaving] = atUpper
			tb.x[leaving] = tb.upper[leaving]
		} else {
			tb.status[leaving] = atLower
			tb.x[leaving] = tb.lower[leaving]
		}
		tb.pivot(leaveRow, j, tb.x[j])
		sinceRefresh++
	}
}

// pivot makes column j basic in row r, keeping its current value xj.
func (tb *tableau) pivot(r, j int, xj float64) {
	p := tb.t[r][j]
	row := tb.t[r]
	inv := 1 / p
	for k := 0; k < tb.nTotal; k++ {
		row[k] *= inv
	}
	row[j] = 1
	for i := 0; i < tb.m; i++ {
		if i == r {
			continue
		}
		f := tb.t[i][j]
		if f == 0 {
			continue
		}
		ti := tb.t[i]
		for k := 0; k < tb.nTotal; k++ {
			ti[k] -= f * row[k]
		}
		ti[j] = 0
	}
	if f := tb.d[j]; f != 0 {
		for k := 0; k < tb.nTotal; k++ {
			tb.d[k] -= f * row[k]
		}
	}
	tb.d[j] = 0
	tb.basis[r] = j
	tb.status[j] = basic
	tb.x[j] = xj
}
