// Package lp implements a linear-programming solver over continuous
// variables with lower/upper bounds:
//
//	minimize (or maximize)  cᵀx
//	subject to              aᵢᵀx {≤,=,≥} bᵢ   for every constraint i
//	                        l ≤ x ≤ u          (entries may be ±Inf)
//
// The solver is a two-phase primal simplex on the full tableau with
// bounded-variable pivoting rules (nonbasic variables rest at a finite
// bound; entering variables may "bound flip" without a basis change).
// It is written for the network-verification workloads in this repository:
// dense problems with a few thousand variables and rows.
package lp

import (
	"fmt"
	"math"
)

// Inf is a convenience alias for +infinity used in variable bounds.
var Inf = math.Inf(1)

// Sense is the relation of a linear constraint.
type Sense int

// Constraint senses.
const (
	LE Sense = iota // aᵀx ≤ b
	GE              // aᵀx ≥ b
	EQ              // aᵀx = b
)

// String returns the usual mathematical symbol for the sense.
func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return fmt.Sprintf("Sense(%d)", int(s))
}

// Term is one coefficient of a sparse linear expression.
type Term struct {
	Var   int     // variable index returned by AddVariable
	Coeff float64 // multiplier
}

// Constraint is one linear row of the model.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
	Name  string
}

// Variable describes one decision variable.
type Variable struct {
	Lower, Upper float64
	Obj          float64 // objective coefficient
	Name         string
}

// Model is a linear program under construction. The zero value is not
// usable; create models with NewModel.
type Model struct {
	vars     []Variable
	cons     []Constraint
	maximize bool
}

// NewModel returns an empty minimization model.
func NewModel() *Model {
	return &Model{}
}

// SetMaximize switches the objective direction. The default is minimize.
func (m *Model) SetMaximize(max bool) { m.maximize = max }

// Maximizing reports whether the model maximizes its objective.
func (m *Model) Maximizing() bool { return m.maximize }

// AddVariable adds a variable with the given bounds and returns its index.
// Bounds may be ±Inf. It panics if lower > upper.
func (m *Model) AddVariable(lower, upper float64, name string) int {
	if lower > upper {
		panic(fmt.Sprintf("lp: variable %q has lower %g > upper %g", name, lower, upper))
	}
	m.vars = append(m.vars, Variable{Lower: lower, Upper: upper, Name: name})
	return len(m.vars) - 1
}

// SetObjective sets the objective coefficient of variable v.
func (m *Model) SetObjective(v int, coeff float64) {
	m.vars[v].Obj = coeff
}

// Objective returns the objective coefficient of variable v.
func (m *Model) Objective(v int) float64 { return m.vars[v].Obj }

// SetBounds replaces the bounds of variable v.
// It panics if lower > upper.
func (m *Model) SetBounds(v int, lower, upper float64) {
	if lower > upper {
		panic(fmt.Sprintf("lp: SetBounds(%d) lower %g > upper %g", v, lower, upper))
	}
	m.vars[v].Lower, m.vars[v].Upper = lower, upper
}

// Bounds returns the bounds of variable v.
func (m *Model) Bounds(v int) (lower, upper float64) {
	return m.vars[v].Lower, m.vars[v].Upper
}

// VarName returns the name given to variable v at creation.
func (m *Model) VarName(v int) string { return m.vars[v].Name }

// NumVariables returns the number of variables added so far.
func (m *Model) NumVariables() int { return len(m.vars) }

// NumConstraints returns the number of constraints added so far.
func (m *Model) NumConstraints() int { return len(m.cons) }

// AddConstraint adds the row Σ terms {≤,=,≥} rhs and returns its index.
// Duplicate variable entries in terms are summed. It panics on a term that
// references an unknown variable.
func (m *Model) AddConstraint(terms []Term, sense Sense, rhs float64, name string) int {
	merged := make(map[int]float64, len(terms))
	for _, t := range terms {
		if t.Var < 0 || t.Var >= len(m.vars) {
			panic(fmt.Sprintf("lp: constraint %q references unknown variable %d", name, t.Var))
		}
		merged[t.Var] += t.Coeff
	}
	row := Constraint{Sense: sense, RHS: rhs, Name: name}
	for v, c := range merged {
		if c != 0 {
			row.Terms = append(row.Terms, Term{Var: v, Coeff: c})
		}
	}
	m.cons = append(m.cons, row)
	return len(m.cons) - 1
}

// Clone returns a deep copy of the model. Solving a clone never mutates the
// original, which lets branch-and-bound fork bound sets cheaply.
func (m *Model) Clone() *Model {
	out := &Model{
		vars:     make([]Variable, len(m.vars)),
		cons:     make([]Constraint, len(m.cons)),
		maximize: m.maximize,
	}
	copy(out.vars, m.vars)
	for i, c := range m.cons {
		terms := make([]Term, len(c.Terms))
		copy(terms, c.Terms)
		out.cons[i] = Constraint{Terms: terms, Sense: c.Sense, RHS: c.RHS, Name: c.Name}
	}
	return out
}

// EvalRow evaluates constraint row i at the point x.
func (m *Model) EvalRow(i int, x []float64) float64 {
	var s float64
	for _, t := range m.cons[i].Terms {
		s += t.Coeff * x[t.Var]
	}
	return s
}

// EvalObjective evaluates the objective at the point x.
func (m *Model) EvalObjective(x []float64) float64 {
	var s float64
	for i, v := range m.vars {
		if v.Obj != 0 {
			s += v.Obj * x[i]
		}
	}
	return s
}

// FeasibilityError returns the largest violation of any bound or constraint
// at x. A return of 0 means x is exactly feasible; values below a small
// tolerance mean feasible in the numerical sense.
func (m *Model) FeasibilityError(x []float64) float64 {
	var worst float64
	for i, v := range m.vars {
		if d := v.Lower - x[i]; d > worst {
			worst = d
		}
		if d := x[i] - v.Upper; d > worst {
			worst = d
		}
	}
	for i, c := range m.cons {
		lhs := m.EvalRow(i, x)
		switch c.Sense {
		case LE:
			if d := lhs - c.RHS; d > worst {
				worst = d
			}
		case GE:
			if d := c.RHS - lhs; d > worst {
				worst = d
			}
		case EQ:
			if d := math.Abs(lhs - c.RHS); d > worst {
				worst = d
			}
		}
	}
	return worst
}
