package lp

import "math"

// Basis is a snapshot of a simplex basis: the column basic in each row plus
// the bound status of every priced column. Snapshots are immutable once
// taken and safe to share between solvers bound to structurally identical
// models (branch-and-bound stores a parent's basis on each child node).
type Basis struct {
	rows   []int
	status []varStatus
}

const (
	// installPivotTol rejects unstable pivots while factorizing a basis.
	installPivotTol = 1e-8
	// warmFeasGuard is the absolute feasibility error above which a warm
	// solve is distrusted and redone cold.
	warmFeasGuard = 1e-6
	// refactorPeriod bounds pivots accumulated on one tableau before the
	// solver refactorizes it from pristine data (full-tableau updates lose
	// accuracy with every pivot; a periodic rebuild resets the drift).
	refactorPeriod = 1024
)

// Solver is a persistent simplex engine bound to one Model. It allocates
// the tableau once and re-solves after bound or objective mutations by
// restarting from the previous basis instead of rebuilding everything:
//
//   - objective-only changes keep the basis primal feasible, so phase 1 is
//     skipped outright and phase 2 re-optimizes from the previous vertex
//     (the bound-tightening access pattern);
//   - bound changes under an unchanged objective leave the basis dual
//     feasible, so dual simplex pivots restore primal feasibility without
//     a phase-1 restart (the branch-and-bound access pattern, where
//     children differ by one binary bound fix); an infeasibility signal
//     from the dual pass is always re-confirmed by a cold phase 1;
//   - anything the warm path cannot certify degrades to a cold solve; the
//     warm machinery can cost time, never correctness.
//
// The bound model's structure — its variables and constraints — must not
// change between solves; bounds and objective coefficients may. Adding
// variables or constraints is detected and triggers a full rebuild.
// A Solver is not safe for concurrent use; give each goroutine its own
// Solver over its own Model clone.
type Solver struct {
	model *Model
	tb    *tableau

	origRHS []float64
	slackLo []float64
	slackHi []float64

	hasBasis       bool // tableau holds a consistent phase-2 state
	dirty          bool // working tableau differs from the pristine copy
	pivotsSinceRef int  // pivots since the last pristine (re)factorization
}

// NewSolver builds a solver for the model. The model's constraint matrix is
// ingested once; subsequent Solve calls read only bounds and objective.
func NewSolver(m *Model) *Solver {
	s := &Solver{model: m}
	s.rebuild()
	return s
}

// Model returns the bound model, whose bounds/objective may be mutated
// between solves.
func (s *Solver) Model() *Model { return s.model }

// Invalidate discards the saved basis; the next solve starts cold.
func (s *Solver) Invalidate() { s.hasBasis = false }

// rebuild ingests the model structure into pristine tableau storage.
func (s *Solver) rebuild() {
	m := s.model
	nStruct := len(m.vars)
	rows := len(m.cons)
	nTotal := nStruct + 2*rows // slacks + artificials
	tb := &tableau{
		m:       rows,
		nStruct: nStruct,
		nTotal:  nTotal,
		width:   nTotal,
		lower:   make([]float64, nTotal),
		upper:   make([]float64, nTotal),
		cost:    make([]float64, nTotal),
		d:       make([]float64, nTotal),
		x:       make([]float64, nTotal),
		status:  make([]varStatus, nTotal),
		basis:   make([]int, rows),
		rhsInv:  make([]float64, rows),
	}
	tb.t = make([][]float64, rows)
	tb.backing = make([]float64, rows*nTotal)
	backing := tb.backing
	for i := range tb.t {
		tb.t[i], backing = backing[:nTotal:nTotal], backing[nTotal:]
	}

	s.origRHS = make([]float64, rows)
	s.slackLo = make([]float64, rows)
	s.slackHi = make([]float64, rows)
	for i, c := range m.cons {
		switch c.Sense {
		case LE:
			s.slackLo[i], s.slackHi[i] = 0, math.Inf(1)
		case GE:
			s.slackLo[i], s.slackHi[i] = math.Inf(-1), 0
		case EQ:
			s.slackLo[i], s.slackHi[i] = 0, 0
		}
		s.origRHS[i] = c.RHS
	}
	s.tb = tb
	s.resetTableau()
	s.dirty = false
	s.hasBasis = false
	s.pivotsSinceRef = 0
}

// resetTableau restores the working tableau to pristine data — A rows,
// slack unit columns, zeroed artificials, original RHS — straight from the
// model's (immutable) constraint structure, so no pristine mirror copy of
// the dense tableau needs to be kept around.
func (s *Solver) resetTableau() {
	tb := s.tb
	for i := range tb.backing {
		tb.backing[i] = 0
	}
	for i, c := range s.model.cons {
		row := tb.t[i]
		for _, term := range c.Terms {
			row[term.Var] += term.Coeff
		}
		row[tb.nStruct+i] = 1
	}
	copy(tb.rhsInv, s.origRHS)
}

// Solve optimizes the model under its current bounds and objective,
// warm-starting from the previous basis when one is available.
func (s *Solver) Solve(opts Options) (*Solution, error) {
	return s.SolveFrom(nil, opts)
}

// SolveFrom optimizes like Solve, additionally seeding a solver that has no
// live basis of its own from the given snapshot (typically a branch-and-
// bound parent's optimal basis) by factorizing that basis from pristine
// data. A solver with a live basis prefers its own: under an unchanged
// objective that basis is already dual feasible, so dual simplex reaches
// the new optimum directly. A nil snapshot is plain Solve; any warm path
// that cannot be certified degrades to a cold solve, never to a wrong
// answer.
func (s *Solver) SolveFrom(from *Basis, opts Options) (*Solution, error) {
	m := s.model
	for _, v := range m.vars {
		if v.Lower > v.Upper || math.IsNaN(v.Lower) || math.IsNaN(v.Upper) {
			return nil, ErrBadModel
		}
	}
	if len(m.vars) != s.tb.nStruct || len(m.cons) != s.tb.m {
		s.rebuild()
	}
	tb := s.tb
	tb.tol = opts.Tol
	if tb.tol <= 0 {
		tb.tol = defaultTol
	}
	tb.maxIters = opts.MaxIterations
	if tb.maxIters <= 0 {
		tb.maxIters = 400*(tb.m+tb.nTotal) + 20000
	}
	tb.cancel = opts.Cancel
	tb.iters = 0

	if s.hasBasis || from != nil {
		if sol, ok := s.warmSolve(from); ok {
			return sol, nil
		}
		tb.iters = 0 // discard pivots spent on the failed warm attempt
	}
	return s.coldSolve()
}

// SaveBasis snapshots the current basis for later SolveFrom calls, or nil
// when the solver holds no consistent basis.
func (s *Solver) SaveBasis() *Basis {
	if !s.hasBasis {
		return nil
	}
	tb := s.tb
	b := &Basis{
		rows:   make([]int, tb.m),
		status: make([]varStatus, tb.nStruct+tb.m),
	}
	copy(b.rows, tb.basis)
	copy(b.status, tb.status[:tb.nStruct+tb.m])
	return b
}

// loadPhase2Costs loads the model objective (in minimize direction).
func (s *Solver) loadPhase2Costs() {
	tb := s.tb
	for j := range tb.cost {
		tb.cost[j] = 0
	}
	sign := 1.0
	if s.model.maximize {
		sign = -1
	}
	for j, v := range s.model.vars {
		tb.cost[j] = sign * v.Obj
	}
}

// loadBounds refreshes working bounds: structural from the model, slacks
// from the ingested senses, artificials pinned to zero.
func (s *Solver) loadBounds() {
	tb := s.tb
	for j, v := range s.model.vars {
		tb.lower[j], tb.upper[j] = v.Lower, v.Upper
	}
	for i := 0; i < tb.m; i++ {
		tb.lower[tb.nStruct+i], tb.upper[tb.nStruct+i] = s.slackLo[i], s.slackHi[i]
	}
	for j := tb.nStruct + tb.m; j < tb.nTotal; j++ {
		tb.lower[j], tb.upper[j] = 0, 0
	}
}

// finishSolution assembles the caller-facing solution from tableau state.
func (s *Solver) finishSolution(st Status) *Solution {
	tb := s.tb
	sol := &Solution{Status: st, Iterations: tb.iters}
	switch st {
	case Optimal, IterationLimit:
		sol.X = make([]float64, tb.nStruct)
		copy(sol.X, tb.x[:tb.nStruct])
		sol.Objective = s.model.EvalObjective(sol.X)
	case Unbounded:
		// No finite solution to report.
	}
	return sol
}

// coldSolve rebuilds the working tableau from pristine data and runs the
// full two-phase simplex.
func (s *Solver) coldSolve() (*Solution, error) {
	tb := s.tb
	nStruct, rows := tb.nStruct, tb.m
	s.hasBasis = false
	s.pivotsSinceRef = 0

	// A one-shot solve on a fresh solver skips the pristine rebuild; any
	// solver that has pivoted (or factorized) restores the tableau first.
	if s.dirty {
		s.resetTableau()
	}
	s.dirty = true
	tb.width = tb.nTotal
	for j := range tb.cost {
		tb.cost[j] = 0
	}
	s.loadBounds()

	// Rest every non-artificial at a finite bound (free vars at 0).
	for j := 0; j < nStruct+rows; j++ {
		switch {
		case !math.IsInf(tb.lower[j], -1):
			tb.status[j], tb.x[j] = atLower, tb.lower[j]
		case !math.IsInf(tb.upper[j], 1):
			tb.status[j], tb.x[j] = atUpper, tb.upper[j]
		default:
			tb.status[j], tb.x[j] = free, 0
		}
	}

	// Artificial variables absorb each row's residual and start basic.
	var phase1Needed bool
	for i := 0; i < rows; i++ {
		var lhs float64
		for j := 0; j < nStruct+rows; j++ {
			if tb.t[i][j] != 0 {
				lhs += tb.t[i][j] * tb.x[j]
			}
		}
		r := s.origRHS[i] - lhs
		art := nStruct + rows + i
		tb.t[i][art] = 1
		tb.basis[i] = art
		tb.status[art] = basic
		tb.x[art] = r
		if r >= 0 {
			tb.lower[art], tb.upper[art] = 0, math.Inf(1)
			tb.cost[art] = 1
		} else {
			tb.lower[art], tb.upper[art] = math.Inf(-1), 0
			tb.cost[art] = -1
		}
		if math.Abs(r) > tb.tol {
			phase1Needed = true
		}
	}

	// Phase 1: minimize signed artificial mass.
	if phase1Needed {
		tb.refreshReducedCosts()
		st := tb.iterate()
		if st == IterationLimit {
			return &Solution{Status: IterationLimit, Iterations: tb.iters}, nil
		}
		if tb.phase1Objective() > 10*tb.tol {
			return &Solution{Status: Infeasible, Iterations: tb.iters}, nil
		}
	}
	tb.retireArtificials()
	tb.width = nStruct + rows

	// Phase 2: the real objective.
	s.loadPhase2Costs()
	tb.refreshReducedCosts()
	st := tb.iterate()
	s.hasBasis = true
	s.pivotsSinceRef = tb.iters
	return s.finishSolution(st), nil
}

// warmSolve re-solves from a live or seeded basis: refresh bounds and
// costs, restore primal feasibility if a bound change broke it (dual
// simplex when the reduced costs allow, heuristic bound repair otherwise),
// then run phase 2 only. Returns ok=false when the warm path cannot
// certify a trustworthy answer; the caller then solves cold.
func (s *Solver) warmSolve(from *Basis) (*Solution, bool) {
	tb := s.tb
	m := s.model
	artStart := tb.nStruct + tb.m

	// (Re)factorize when there is no live basis to continue from, or when
	// accumulated pivots call for a drift reset. A solver with a live basis
	// refactorizes onto its own basis — same vertex, fresh arithmetic.
	if !s.hasBasis || s.pivotsSinceRef >= refactorPeriod {
		b := from
		if s.hasBasis {
			b = s.SaveBasis()
		}
		if b == nil || !s.factorizeBasis(b) {
			return nil, false
		}
	}
	tb.width = artStart
	s.loadBounds()
	s.loadPhase2Costs()
	// Reduced costs depend only on the basis and objective, so compute them
	// before resting the nonbasic columns: a column whose bounds widened
	// (e.g. a released binary fix) is rested on the side its reduced cost
	// prefers, which preserves dual feasibility for the dual simplex below.
	tb.refreshReducedCosts()

	// Rest every nonbasic priced column on a bound valid under the new
	// bounds; free columns keep their value unless a bound now cuts it off.
	for j := 0; j < artStart; j++ {
		if tb.status[j] == basic {
			continue
		}
		lo, hi := tb.lower[j], tb.upper[j]
		switch tb.status[j] {
		case atLower, atUpper:
			switch {
			case !math.IsInf(lo, -1) && !math.IsInf(hi, 1):
				switch {
				case tb.d[j] > tb.tol:
					tb.status[j], tb.x[j] = atLower, lo
				case tb.d[j] < -tb.tol:
					tb.status[j], tb.x[j] = atUpper, hi
				case tb.status[j] == atUpper:
					tb.x[j] = hi
				default:
					tb.status[j], tb.x[j] = atLower, lo
				}
			case !math.IsInf(lo, -1):
				tb.status[j], tb.x[j] = atLower, lo
			case !math.IsInf(hi, 1):
				tb.status[j], tb.x[j] = atUpper, hi
			default:
				tb.status[j], tb.x[j] = free, 0
			}
		case free:
			if tb.x[j] < lo {
				tb.status[j], tb.x[j] = atLower, lo
			} else if tb.x[j] > hi {
				tb.status[j], tb.x[j] = atUpper, hi
			}
		}
	}
	for j := artStart; j < tb.nTotal; j++ {
		if tb.status[j] != basic {
			tb.status[j], tb.x[j] = atLower, 0
		}
	}

	tb.computeBasics()
	s.hasBasis = true
	installIters := tb.iters // factorization pivots, already in pivotsSinceRef

	if tb.firstInfeasibleRow() >= 0 {
		// A bound mutation broke primal feasibility. When the reduced costs
		// are still dual feasible — always true under an unchanged
		// objective, the branch-and-bound case — dual simplex restores
		// feasibility directly. Otherwise fall back to the heuristic bound
		// repair.
		if tb.dualFeasible() {
			st, ok := tb.dualIterate()
			if !ok || st == Infeasible || st == IterationLimit {
				// The dual infeasibility certificate reads drift-prone
				// tableau data, so it is treated as "probably infeasible"
				// only: the cold path re-derives the verdict from pristine
				// data. Warm answers may cost time, never correctness.
				return nil, false
			}
		} else if !s.repairBasis() {
			return nil, false
		}
	}

	st := tb.iterate()
	s.pivotsSinceRef += tb.iters - installIters
	if st == Unbounded {
		// Genuine unboundedness will be re-detected cold; a corrupted warm
		// state will not. Either way the cold answer is authoritative.
		return nil, false
	}
	sol := s.finishSolution(st)
	if st == Optimal && m.FeasibilityError(sol.X) > warmFeasGuard {
		return nil, false
	}
	return sol, true
}

// factorizeBasis rebuilds the working tableau from pristine data with the
// snapshot's basis installed: a fresh Gaussian factorization that pivots
// each target basic column into its row in greedy largest-pivot order.
// Rows whose target column cannot be pivoted stably keep their (pinned)
// artificial basic; the feasibility machinery absorbs the difference.
func (s *Solver) factorizeBasis(b *Basis) bool {
	tb := s.tb
	artStart := tb.nStruct + tb.m
	if len(b.rows) != tb.m || len(b.status) != artStart {
		return false
	}
	s.resetTableau()
	s.dirty = true
	tb.width = artStart
	for j := range tb.d {
		tb.d[j] = 0 // keep pivot's reduced-cost update inert during install
	}
	for i := 0; i < tb.m; i++ {
		art := artStart + i
		tb.basis[i] = art
		tb.status[art] = basic
		tb.x[art] = 0
	}
	for j := 0; j < artStart; j++ {
		if b.status[j] == basic {
			tb.status[j] = atLower // overwritten when the column pivots in
		} else {
			tb.status[j] = b.status[j]
		}
	}

	// The snapshot's basis is a set of columns; its row assignment is just
	// one valid pairing, so factorize column-by-column with row partial
	// pivoting: each basic column claims the free row where its current
	// tableau entry is largest. Columns whose entries are all tiny are
	// retried after the others have pivoted (which reshuffles the entries),
	// and only then abandoned to a pinned artificial.
	cols := make([]int, 0, tb.m)
	rowFree := make([]bool, tb.m)
	for r := 0; r < tb.m; r++ {
		if c := b.rows[r]; c < artStart {
			cols = append(cols, c)
			rowFree[r] = true // artificial-basic rows stay claimed by their artificial
		}
	}
	installed := 0
	for pass := 0; pass < 2 && len(cols) > 0; pass++ {
		deferred := cols[:0]
		for _, c := range cols {
			bestRow, bestAbs := -1, installPivotTol
			for r := 0; r < tb.m; r++ {
				if !rowFree[r] {
					continue
				}
				if a := math.Abs(tb.t[r][c]); a > bestAbs {
					bestRow, bestAbs = r, a
				}
			}
			if bestRow < 0 {
				deferred = append(deferred, c)
				continue
			}
			tb.pivot(bestRow, c, 0) // values are recomputed afterwards
			tb.iters++
			installed++
			rowFree[bestRow] = false
		}
		cols = deferred
	}
	s.pivotsSinceRef = installed
	return true
}

// repairBasis tries to restore primal feasibility after bound mutations by
// pivoting out-of-bounds basic variables onto their violated bound, letting
// a nonbasic column with a stable pivot absorb the residual. This is the
// fallback when the reduced costs do not admit dual pivoting (objective
// and bounds changed together). Reports whether the basis ended feasible.
func (s *Solver) repairBasis() bool {
	tb := s.tb
	for attempt := 0; attempt < 4; attempt++ {
		r := tb.firstInfeasibleRow()
		if r < 0 {
			return true
		}
		bi := tb.basis[r]
		target, stat := tb.lower[bi], atLower
		if tb.x[bi] > tb.upper[bi] {
			target, stat = tb.upper[bi], atUpper
		}
		// Entering column: prefer the largest stable pivot whose new value
		// stays inside its own bounds; fall back to the largest pivot.
		row := tb.t[r]
		deltaB := target - tb.x[bi]
		bestIn, bestInAbs := -1, installPivotTol
		bestAny, bestAnyAbs := -1, installPivotTol
		for j := 0; j < tb.width; j++ {
			if tb.status[j] == basic || tb.lower[j] == tb.upper[j] {
				continue
			}
			a := math.Abs(row[j])
			if a <= bestAnyAbs && a <= bestInAbs {
				continue
			}
			if a > bestAnyAbs {
				bestAny, bestAnyAbs = j, a
			}
			nx := tb.x[j] - deltaB/row[j]
			if nx >= tb.lower[j]-tb.tol && nx <= tb.upper[j]+tb.tol && a > bestInAbs {
				bestIn, bestInAbs = j, a
			}
		}
		j := bestIn
		if j < 0 {
			j = bestAny
		}
		if j < 0 {
			return false
		}
		newXj := tb.x[j] - deltaB/row[j]
		tb.status[bi] = stat
		tb.x[bi] = target
		tb.pivot(r, j, newXj)
		tb.iters++
		tb.computeBasics()
	}
	return tb.firstInfeasibleRow() < 0
}

