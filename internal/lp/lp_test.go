package lp

import (
	"math"
	"math/rand"
	"testing"
)

const testTol = 1e-6

func solveOK(t *testing.T, m *Model) *Solution {
	t.Helper()
	sol, err := Solve(m, Options{})
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return sol
}

func wantOptimal(t *testing.T, sol *Solution, obj float64) {
	t.Helper()
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	if math.Abs(sol.Objective-obj) > testTol {
		t.Fatalf("objective = %g, want %g", sol.Objective, obj)
	}
}

func TestMaximizeSimple2D(t *testing.T) {
	// max 3x + 2y s.t. x+y <= 4, x+3y <= 6, x,y >= 0. Optimum at (4,0): 12.
	m := NewModel()
	x := m.AddVariable(0, Inf, "x")
	y := m.AddVariable(0, Inf, "y")
	m.SetObjective(x, 3)
	m.SetObjective(y, 2)
	m.SetMaximize(true)
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 4, "c1")
	m.AddConstraint([]Term{{x, 1}, {y, 3}}, LE, 6, "c2")
	sol := solveOK(t, m)
	wantOptimal(t, sol, 12)
	if math.Abs(sol.X[x]-4) > testTol || math.Abs(sol.X[y]) > testTol {
		t.Fatalf("X = %v, want (4,0)", sol.X)
	}
}

func TestMinimizeWithGE(t *testing.T) {
	// min 2x + 3y s.t. x+y >= 10, x <= 6, y <= 8, x,y >= 0.
	// Optimum: x=6, y=4 -> 24.
	m := NewModel()
	x := m.AddVariable(0, 6, "x")
	y := m.AddVariable(0, 8, "y")
	m.SetObjective(x, 2)
	m.SetObjective(y, 3)
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 10, "cover")
	sol := solveOK(t, m)
	wantOptimal(t, sol, 24)
}

func TestEqualityConstraint(t *testing.T) {
	// min x + y s.t. x + 2y = 4, 0<=x<=10, 0<=y<=10. Optimum y=2, x=0 -> 2.
	m := NewModel()
	x := m.AddVariable(0, 10, "x")
	y := m.AddVariable(0, 10, "y")
	m.SetObjective(x, 1)
	m.SetObjective(y, 1)
	m.AddConstraint([]Term{{x, 1}, {y, 2}}, EQ, 4, "eq")
	sol := solveOK(t, m)
	wantOptimal(t, sol, 2)
	if got := m.EvalRow(0, sol.X); math.Abs(got-4) > testTol {
		t.Fatalf("equality row = %g, want 4", got)
	}
}

func TestInfeasible(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, 1, "x")
	m.AddConstraint([]Term{{x, 1}}, GE, 2, "impossible")
	sol := solveOK(t, m)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestInfeasibleConflictingRows(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(-Inf, Inf, "x")
	y := m.AddVariable(-Inf, Inf, "y")
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 1, "a")
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 3, "b")
	sol := solveOK(t, m)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, Inf, "x")
	m.SetObjective(x, 1)
	m.SetMaximize(true)
	m.AddConstraint([]Term{{x, -1}}, LE, 0, "loose")
	sol := solveOK(t, m)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x s.t. x >= -5 via a constraint on a free variable.
	m := NewModel()
	x := m.AddVariable(-Inf, Inf, "x")
	m.SetObjective(x, 1)
	m.AddConstraint([]Term{{x, 1}}, GE, -5, "floor")
	sol := solveOK(t, m)
	wantOptimal(t, sol, -5)
}

func TestFreeVariablePair(t *testing.T) {
	// min x + y s.t. x - y = 3, x + y >= 1, both free.
	// x=(3+t)/?; param: y = x-3; x + y = 2x-3 >= 1 -> x >= 2. obj = 2x-3, min at x=2 -> 1.
	m := NewModel()
	x := m.AddVariable(-Inf, Inf, "x")
	y := m.AddVariable(-Inf, Inf, "y")
	m.SetObjective(x, 1)
	m.SetObjective(y, 1)
	m.AddConstraint([]Term{{x, 1}, {y, -1}}, EQ, 3, "diff")
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, GE, 1, "sum")
	sol := solveOK(t, m)
	wantOptimal(t, sol, 1)
}

func TestBoundFlipOnly(t *testing.T) {
	// max x + y with only box bounds; no constraints at all.
	m := NewModel()
	x := m.AddVariable(-1, 2, "x")
	y := m.AddVariable(0, 5, "y")
	m.SetObjective(x, 1)
	m.SetObjective(y, 1)
	m.SetMaximize(true)
	sol := solveOK(t, m)
	wantOptimal(t, sol, 7)
}

func TestFixedVariable(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(3, 3, "x")
	y := m.AddVariable(0, 10, "y")
	m.SetObjective(y, 1)
	m.SetMaximize(true)
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 8, "cap")
	sol := solveOK(t, m)
	wantOptimal(t, sol, 5)
	if math.Abs(sol.X[x]-3) > testTol {
		t.Fatalf("fixed variable moved: %g", sol.X[x])
	}
}

func TestNegativeRHS(t *testing.T) {
	// min -x s.t. -x - y <= -2 (i.e. x + y >= 2), x <= 3, y <= 3.
	m := NewModel()
	x := m.AddVariable(0, 3, "x")
	y := m.AddVariable(0, 3, "y")
	m.SetObjective(x, -1)
	m.AddConstraint([]Term{{x, -1}, {y, -1}}, LE, -2, "neg")
	sol := solveOK(t, m)
	wantOptimal(t, sol, -3)
}

func TestDegenerateVertex(t *testing.T) {
	// Three constraints meeting at one point; classic degeneracy.
	m := NewModel()
	x := m.AddVariable(0, Inf, "x")
	y := m.AddVariable(0, Inf, "y")
	m.SetObjective(x, 1)
	m.SetObjective(y, 1)
	m.SetMaximize(true)
	m.AddConstraint([]Term{{x, 1}}, LE, 1, "a")
	m.AddConstraint([]Term{{y, 1}}, LE, 1, "b")
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 2, "c")
	m.AddConstraint([]Term{{x, 1}, {y, 2}}, LE, 3, "d")
	sol := solveOK(t, m)
	wantOptimal(t, sol, 2)
}

func TestDuplicateTermsMerged(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, Inf, "x")
	m.SetObjective(x, 1)
	m.SetMaximize(true)
	// 0.5x + 0.5x <= 4  ->  x <= 4
	m.AddConstraint([]Term{{x, 0.5}, {x, 0.5}}, LE, 4, "dup")
	sol := solveOK(t, m)
	wantOptimal(t, sol, 4)
}

func TestRedundantEqualityRows(t *testing.T) {
	// Duplicate equality rows should not break phase 1.
	m := NewModel()
	x := m.AddVariable(0, 10, "x")
	y := m.AddVariable(0, 10, "y")
	m.SetObjective(x, 2)
	m.SetObjective(y, 1)
	m.SetMaximize(true)
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, EQ, 5, "e1")
	m.AddConstraint([]Term{{x, 2}, {y, 2}}, EQ, 10, "e1-doubled")
	sol := solveOK(t, m)
	wantOptimal(t, sol, 10) // x=5, y=0
}

func TestCloneIndependence(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, 1, "x")
	m.SetObjective(x, 1)
	m.SetMaximize(true)
	c := m.Clone()
	c.SetBounds(x, 0, 0.25)
	solOrig := solveOK(t, m)
	solClone := solveOK(t, c)
	wantOptimal(t, solOrig, 1)
	wantOptimal(t, solClone, 0.25)
}

func TestEvalAndFeasibilityError(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, 1, "x")
	y := m.AddVariable(0, 1, "y")
	m.SetObjective(x, 2)
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 1, "c")
	pt := []float64{0.9, 0.9}
	if got := m.FeasibilityError(pt); math.Abs(got-0.8) > testTol {
		t.Fatalf("FeasibilityError = %g, want 0.8", got)
	}
	if got := m.EvalObjective(pt); math.Abs(got-1.8) > testTol {
		t.Fatalf("EvalObjective = %g, want 1.8", got)
	}
}

func TestMaximizeEqualsNegatedMinimize(t *testing.T) {
	build := func(max bool) *Model {
		m := NewModel()
		x := m.AddVariable(0, 4, "x")
		y := m.AddVariable(0, 4, "y")
		sign := 1.0
		if !max {
			sign = -1
		}
		m.SetObjective(x, sign*1)
		m.SetObjective(y, sign*2)
		m.SetMaximize(max)
		m.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 5, "c")
		return m
	}
	a := solveOK(t, build(true))
	b := solveOK(t, build(false))
	if a.Status != Optimal || b.Status != Optimal {
		t.Fatalf("statuses: %v %v", a.Status, b.Status)
	}
	if math.Abs(a.Objective+b.Objective) > testTol {
		t.Fatalf("max %g != -min %g", a.Objective, -b.Objective)
	}
}

// randomBoxLP builds a feasible random LP: box variables plus random LE rows
// that are guaranteed feasible at the box midpoint.
func randomBoxLP(rng *rand.Rand, nVars, nRows int) *Model {
	m := NewModel()
	mid := make([]float64, nVars)
	for i := 0; i < nVars; i++ {
		lo := rng.Float64()*4 - 2
		hi := lo + rng.Float64()*3 + 0.1
		m.AddVariable(lo, hi, "")
		m.SetObjective(i, rng.Float64()*2-1)
		mid[i] = (lo + hi) / 2
	}
	m.SetMaximize(rng.Intn(2) == 0)
	for r := 0; r < nRows; r++ {
		terms := make([]Term, 0, nVars)
		var lhsAtMid float64
		for i := 0; i < nVars; i++ {
			if rng.Float64() < 0.6 {
				c := rng.Float64()*2 - 1
				terms = append(terms, Term{i, c})
				lhsAtMid += c * mid[i]
			}
		}
		if len(terms) == 0 {
			continue
		}
		// Keep the midpoint feasible with positive slack.
		m.AddConstraint(terms, LE, lhsAtMid+rng.Float64()*2+0.05, "")
	}
	return m
}

// TestPropertyOptimalDominatesSamples checks, over random feasible LPs, that
// the reported optimum is feasible and at least as good as any random
// feasible point found by rejection sampling.
func TestPropertyOptimalDominatesSamples(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		nVars := 2 + rng.Intn(5)
		nRows := 1 + rng.Intn(6)
		m := randomBoxLP(rng, nVars, nRows)
		sol := solveOK(t, m)
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v (random box LP must be feasible and bounded)", trial, sol.Status)
		}
		if fe := m.FeasibilityError(sol.X); fe > 1e-5 {
			t.Fatalf("trial %d: solution infeasible by %g", trial, fe)
		}
		// Rejection-sample feasible points and compare.
		for s := 0; s < 300; s++ {
			pt := make([]float64, nVars)
			for i := 0; i < nVars; i++ {
				lo, hi := m.Bounds(i)
				pt[i] = lo + rng.Float64()*(hi-lo)
			}
			if m.FeasibilityError(pt) > 0 {
				continue
			}
			obj := m.EvalObjective(pt)
			if m.Maximizing() && obj > sol.Objective+1e-5 {
				t.Fatalf("trial %d: sampled point beats optimum: %g > %g", trial, obj, sol.Objective)
			}
			if !m.Maximizing() && obj < sol.Objective-1e-5 {
				t.Fatalf("trial %d: sampled point beats optimum: %g < %g", trial, obj, sol.Objective)
			}
		}
	}
}

// TestPropertyEqualityRowsHold solves random LPs with an equality row and
// verifies the row is satisfied exactly (within tolerance) at the optimum.
func TestPropertyEqualityRowsHold(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		nVars := 3 + rng.Intn(4)
		m := NewModel()
		target := 0.0
		terms := make([]Term, 0, nVars)
		for i := 0; i < nVars; i++ {
			m.AddVariable(0, 2, "")
			m.SetObjective(i, rng.Float64()*2-1)
			c := rng.Float64() + 0.2
			terms = append(terms, Term{i, c})
			target += c // equality achievable at all-ones
		}
		m.AddConstraint(terms, EQ, target, "eq")
		m.SetMaximize(trial%2 == 0)
		sol := solveOK(t, m)
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		if got := m.EvalRow(0, sol.X); math.Abs(got-target) > 1e-6 {
			t.Fatalf("trial %d: equality row %g != %g", trial, got, target)
		}
	}
}

func TestIterationLimit(t *testing.T) {
	m := NewModel()
	for i := 0; i < 10; i++ {
		m.AddVariable(0, 1, "")
		m.SetObjective(i, 1)
	}
	m.SetMaximize(true)
	sol, err := Solve(m, Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != IterationLimit && sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
}

func TestBadModelRejected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddVariable with inverted bounds should panic")
		}
	}()
	NewModel().AddVariable(2, 1, "bad")
}
