package lp

import (
	"math"
	"math/rand"
	"testing"
)

// TestBealeCycling solves Beale's classic cycling example; a simplex with
// Dantzig pricing and no anti-cycling safeguard loops forever on it.
//
//	min −0.75x4 + 150x5 − 0.02x6 + 6x7
//	s.t. 0.25x4 − 60x5 − 0.04x6 + 9x7 ≤ 0
//	     0.5 x4 − 90x5 − 0.02x6 + 3x7 ≤ 0
//	     x6 ≤ 1,  all xi ≥ 0.       Optimum: −0.05 at x6 = 1.
func TestBealeCycling(t *testing.T) {
	m := NewModel()
	x4 := m.AddVariable(0, Inf, "x4")
	x5 := m.AddVariable(0, Inf, "x5")
	x6 := m.AddVariable(0, Inf, "x6")
	x7 := m.AddVariable(0, Inf, "x7")
	m.SetObjective(x4, -0.75)
	m.SetObjective(x5, 150)
	m.SetObjective(x6, -0.02)
	m.SetObjective(x7, 6)
	m.AddConstraint([]Term{{x4, 0.25}, {x5, -60}, {x6, -0.04}, {x7, 9}}, LE, 0, "r1")
	m.AddConstraint([]Term{{x4, 0.5}, {x5, -90}, {x6, -0.02}, {x7, 3}}, LE, 0, "r2")
	m.AddConstraint([]Term{{x6, 1}}, LE, 1, "r3")
	sol := solveOK(t, m)
	wantOptimal(t, sol, -0.05)
}

// TestKleeMinty solves the 6-D Klee–Minty cube — worst case for Dantzig
// pricing (exponential pivots) but it must still terminate correctly.
func TestKleeMinty(t *testing.T) {
	const n = 6
	m := NewModel()
	vars := make([]int, n)
	for i := 0; i < n; i++ {
		vars[i] = m.AddVariable(0, Inf, "")
		m.SetObjective(vars[i], math.Pow(2, float64(n-1-i)))
	}
	m.SetMaximize(true)
	for i := 0; i < n; i++ {
		terms := []Term{{vars[i], 1}}
		for j := 0; j < i; j++ {
			terms = append(terms, Term{vars[j], math.Pow(2, float64(i-j+1))})
		}
		m.AddConstraint(terms, LE, math.Pow(5, float64(i+1)), "")
	}
	sol := solveOK(t, m)
	wantOptimal(t, sol, math.Pow(5, n)) // optimum is 5^n at the last vertex
}

// TestLargeDenseLP exercises scale: 120 variables, 80 dense rows.
func TestLargeDenseLP(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randomBoxLP(rng, 120, 80)
	sol := solveOK(t, m)
	if sol.Status != Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	if fe := m.FeasibilityError(sol.X); fe > 1e-5 {
		t.Fatalf("solution infeasible by %g", fe)
	}
}

// TestManyEqualities: a transport-like LP with only equality rows keeps
// phase 1 honest.
func TestManyEqualities(t *testing.T) {
	// Ship 10 units from 2 sources (capacities 6, 7) to 2 sinks
	// (demands 4, 6), cost matrix [[1,3],[2,1]]. Optimum: s0->d0 4, s0->d1 0,
	// s1->d1 6, s1->d0 0 -> cost 4*1 + 6*1 = 10.
	m := NewModel()
	x := make([]int, 4) // x[2i+j] = flow from source i to sink j
	costs := []float64{1, 3, 2, 1}
	for i := range x {
		x[i] = m.AddVariable(0, Inf, "")
		m.SetObjective(x[i], costs[i])
	}
	m.AddConstraint([]Term{{x[0], 1}, {x[1], 1}}, LE, 6, "cap0")
	m.AddConstraint([]Term{{x[2], 1}, {x[3], 1}}, LE, 7, "cap1")
	m.AddConstraint([]Term{{x[0], 1}, {x[2], 1}}, EQ, 4, "dem0")
	m.AddConstraint([]Term{{x[1], 1}, {x[3], 1}}, EQ, 6, "dem1")
	sol := solveOK(t, m)
	wantOptimal(t, sol, 10)
}

// TestWarmRepeatedSolves re-solves a model after bound mutations, the
// access pattern branch-and-bound uses constantly.
func TestWarmRepeatedSolves(t *testing.T) {
	m := NewModel()
	x := m.AddVariable(0, 1, "x")
	y := m.AddVariable(0, 1, "y")
	m.SetObjective(x, 1)
	m.SetObjective(y, 2)
	m.SetMaximize(true)
	m.AddConstraint([]Term{{x, 1}, {y, 1}}, LE, 1.5, "cap")
	for i := 0; i < 50; i++ {
		hi := float64(i%4) * 0.25
		m.SetBounds(y, 0, hi)
		sol := solveOK(t, m)
		want := math.Min(1, 1.5-hi) + 2*hi
		if sol.Status != Optimal || math.Abs(sol.Objective-want) > 1e-7 {
			t.Fatalf("iter %d: obj %g want %g", i, sol.Objective, want)
		}
	}
}
