package verify_test

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/nn"
	"repro/internal/verify"
)

// ExampleMaxOutput verifies a tiny hand-built network: the maximum of
// |x| = relu(x) + relu(−x) over [−1, 1] is 1.
func ExampleMaxOutput() {
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}, {-1}}, B: []float64{0, 0}, Act: nn.ReLU},
		{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
	}}
	region := &verify.InputRegion{Box: []bounds.Interval{{Lo: -1, Hi: 1}}}
	res, err := verify.MaxOutput(net, region, 0, verify.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("max=%.1f exact=%v\n", res.Value, res.Exact)
	// Output: max=1.0 exact=true
}

// ExampleProveUpperBound proves a bound and exhibits a counterexample for
// a bound that does not hold.
func ExampleProveUpperBound() {
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}}, B: []float64{0}, Act: nn.ReLU},
		{W: [][]float64{{2}}, B: []float64{0}, Act: nn.Identity},
	}}
	region := &verify.InputRegion{Box: []bounds.Interval{{Lo: -1, Hi: 1}}}
	holds, _ := verify.ProveUpperBound(net, region, 0, 2.5, verify.Options{})
	broken, _ := verify.ProveUpperBound(net, region, 0, 1.5, verify.Options{})
	fmt.Printf("<=2.5: %v, <=1.5: %v (counterexample value %.1f)\n",
		holds.Outcome, broken.Outcome, broken.CounterValue)
	// Output: <=2.5: proved, <=1.5: violated (counterexample value 2.0)
}
