package verify

import (
	"math"
	"testing"

	"repro/internal/nn"
)

// TestLadderOrdering verifies the precision ladder on random networks:
// interval ≥ relaxation ≥ exact maximum, and the exact maximum is
// achievable (witnessed).
func TestLadderOrdering(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		net := randomReLUNet(seed+200, 3, []int{6, 5}, 1)
		region := unitRegion(3)
		lad, err := Ladder(net, region, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !lad.ExactConclusive {
			t.Fatalf("seed %d: exact bound inconclusive", seed)
		}
		const tol = 1e-6
		if lad.Interval < lad.Relaxation-tol {
			t.Fatalf("seed %d: interval %g below relaxation %g (interval must be loosest)",
				seed, lad.Interval, lad.Relaxation)
		}
		if lad.Relaxation < lad.Exact-tol {
			t.Fatalf("seed %d: relaxation %g below exact %g (relaxation must over-approximate)",
				seed, lad.Relaxation, lad.Exact)
		}
	}
}

// TestLadderStrictGapExists finds at least one network where each rung is
// strictly tighter — otherwise the ladder would be pointless.
func TestLadderStrictGapExists(t *testing.T) {
	strictInterval, strictRelax := false, false
	for seed := int64(0); seed < 8; seed++ {
		net := randomReLUNet(seed+300, 3, []int{7, 6}, 1)
		lad, err := Ladder(net, unitRegion(3), 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if lad.Interval > lad.Relaxation+1e-4 {
			strictInterval = true
		}
		if lad.Relaxation > lad.Exact+1e-4 {
			strictRelax = true
		}
	}
	if !strictInterval {
		t.Fatal("interval bound never strictly looser than relaxation over 8 nets")
	}
	if !strictRelax {
		t.Fatal("relaxation never strictly looser than exact over 8 nets")
	}
}

func TestRelaxationBoundValidation(t *testing.T) {
	net := randomReLUNet(1, 2, []int{3}, 1)
	if _, err := RelaxationBound(net, unitRegion(2), 9, Options{}); err == nil {
		t.Fatal("bad output index accepted")
	}
}

func TestRelaxationTightWhenAllStable(t *testing.T) {
	// Every neuron stable on the region (biases push pre-activations away
	// from zero): no binaries exist, so relaxation == exact == interval-ish.
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}, {-1}}, B: []float64{10, -10}, Act: nn.ReLU},
		{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
	}}
	region := unitRegion(1)
	lad, err := Ladder(net, region, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Output = relu(x+10) + relu(-x-10) = x + 10 on [-1,1]: max 11.
	if math.Abs(lad.Exact-11) > 1e-6 {
		t.Fatalf("exact = %g, want 11", lad.Exact)
	}
	if math.Abs(lad.Relaxation-lad.Exact) > 1e-6 {
		t.Fatalf("relaxation %g should equal exact %g with no unstable neurons", lad.Relaxation, lad.Exact)
	}
}
