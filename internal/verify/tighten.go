package verify

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/lp"
	"repro/internal/nn"
)

// TightenLP refines interval pre-activation bounds with linear programming:
// for every unstable hidden neuron it maximizes and minimizes the neuron's
// affine pre-activation over the LP relaxation of everything encoded so far
// (input region, linear scenario constraints, relaxed ReLU envelopes of
// earlier layers). Layers are processed front to back and downstream
// intervals are re-propagated after each layer, so later layers profit from
// earlier tightening.
//
// The result is always sound: LP bounds are intersected with the interval
// bounds, never widened. This is the preprocessing ablation benchmarked in
// BenchmarkBigMAblation.
func TightenLP(net *nn.Network, region *InputRegion, nb *bounds.NetworkBounds) (*bounds.NetworkBounds, error) {
	hints := make([][]bounds.Interval, len(net.Layers))
	cur := nb
	for li := 0; li+1 < len(net.Layers); li++ {
		if net.Layers[li].Act != nn.ReLU {
			return nil, fmt.Errorf("verify: TightenLP hidden layer %d is %v, need relu", li, net.Layers[li].Act)
		}
		enc, err := encode(net, region, cur, encodeOptions{relaxBinaries: true, prefixLayers: li})
		if err != nil {
			return nil, err
		}
		prevVars := enc.inputs
		if li > 0 {
			prevVars = enc.posts[li-1]
		}
		layer := net.Layers[li]
		tightened := make([]bounds.Interval, layer.OutDim())
		copy(tightened, cur.Layers[li].Pre)
		for j, row := range layer.W {
			iv := cur.Layers[li].Pre[j]
			if !iv.StraddlesZero() {
				continue // stability already proven; LP cannot help encoding
			}
			for k, w := range row {
				enc.model.SetObjective(prevVars[k], w)
			}
			hi, err := solveDirection(enc.model, true)
			if err != nil {
				return nil, err
			}
			lo, err := solveDirection(enc.model, false)
			if err != nil {
				return nil, err
			}
			for k := range row {
				enc.model.SetObjective(prevVars[k], 0)
			}
			if hi.ok {
				if v := hi.val + layer.B[j]; v < iv.Hi {
					iv.Hi = v
				}
			}
			if lo.ok {
				if v := lo.val + layer.B[j]; v > iv.Lo {
					iv.Lo = v
				}
			}
			if iv.Lo > iv.Hi { // numerical crossing; keep the midpoint
				mid := (iv.Lo + iv.Hi) / 2
				iv = bounds.Interval{Lo: mid, Hi: mid}
			}
			tightened[j] = iv
		}
		hints[li] = tightened
		// Refresh all downstream intervals with the new knowledge.
		next, err := bounds.PropagateWithHints(net, region.Box, hints)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

type dirResult struct {
	ok  bool
	val float64
}

func solveDirection(m *lp.Model, maximize bool) (dirResult, error) {
	m.SetMaximize(maximize)
	sol, err := lp.Solve(m, lp.Options{})
	if err != nil {
		return dirResult{}, err
	}
	if sol.Status != lp.Optimal {
		// Unbounded or iteration-limited directions simply do not improve
		// the interval; infeasible regions are caught by the caller's later
		// full solve.
		return dirResult{}, nil
	}
	return dirResult{ok: true, val: sol.Objective}, nil
}
