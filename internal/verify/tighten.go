package verify

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/bounds"
	"repro/internal/lp"
	"repro/internal/nn"
)

// TightenLP refines interval pre-activation bounds with linear programming:
// for every unstable hidden neuron it maximizes and minimizes the neuron's
// affine pre-activation over the LP relaxation of everything encoded so far
// (input region, linear scenario constraints, relaxed ReLU envelopes of
// earlier layers). Layers are processed front to back and downstream
// intervals are re-propagated after each layer, so later layers profit from
// earlier tightening.
//
// The result is always sound: LP bounds are intersected with the interval
// bounds, never widened. This is the preprocessing ablation benchmarked in
// BenchmarkBigMAblation. TightenLP runs sequentially; TightenLPWorkers
// fans the per-neuron LPs out across workers; TightenLPCtx additionally
// honors a context deadline.
func TightenLP(net *nn.Network, region *InputRegion, nb *bounds.NetworkBounds) (*bounds.NetworkBounds, error) {
	return TightenLPCtx(context.Background(), net, region, nb, 1)
}

// neuronBounds is the LP answer for one neuron's pre-activation.
type neuronBounds struct {
	hi, lo dirResult
}

// TightenLPWorkers is TightenLP with the per-neuron bound LPs of each layer
// distributed over the given number of workers (0 means GOMAXPROCS). Every
// worker owns a clone of the layer encoding and a persistent warm-started
// lp.Solver: within a layer only the objective changes between solves, so
// the saved simplex basis stays primal feasible and phase 1 never reruns.
// Neurons are assigned to workers statically (round-robin by index), which
// keeps the result deterministic for a fixed worker count.
func TightenLPWorkers(net *nn.Network, region *InputRegion, nb *bounds.NetworkBounds, workers int) (*bounds.NetworkBounds, error) {
	return TightenLPCtx(context.Background(), net, region, nb, workers)
}

// TightenLPCtx is TightenLPWorkers under a context: the ctx deadline (or
// cancellation) bounds preprocessing too, not only the later MILP solve,
// so a user budget can no longer be consumed entirely by tightening. The
// poll reaches into each bound LP's pivot loop. Interruption is graceful
// and sound: tightening stops where it is and the bounds computed so far
// are returned (interval analysis alone is already sound; every completed
// LP only shrank it), with no error. Note an interrupted pass makes the
// resulting bounds depend on where the deadline fell — deterministic runs
// need either no deadline or one generous enough not to fire.
func TightenLPCtx(ctx context.Context, net *nn.Network, region *InputRegion, nb *bounds.NetworkBounds, workers int) (*bounds.NetworkBounds, error) {
	tightenPasses.Add(1)
	defer func(start time.Time) { tightenNanos.Add(int64(time.Since(start))) }(time.Now())
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cancelled := func() bool { return ctx.Err() != nil }
	hints := make([][]bounds.Interval, len(net.Layers))
	cur := nb
	for li := 0; li+1 < len(net.Layers); li++ {
		if net.Layers[li].Act != nn.ReLU {
			return nil, fmt.Errorf("verify: TightenLP hidden layer %d is %v, need relu", li, net.Layers[li].Act)
		}
		if cancelled() {
			return cur, nil // sound: every completed layer only tightened
		}
		enc, err := encode(net, region, cur, encodeOptions{relaxBinaries: true, prefixLayers: li})
		if err != nil {
			return nil, err
		}
		prevVars := enc.inputs
		if li > 0 {
			prevVars = enc.posts[li-1]
		}
		layer := net.Layers[li]
		tightened := make([]bounds.Interval, layer.OutDim())
		copy(tightened, cur.Layers[li].Pre)

		// The unstable neurons are the LP work items for this layer.
		jobs := make([]int, 0, layer.OutDim())
		for j := range layer.W {
			if cur.Layers[li].Pre[j].StraddlesZero() {
				jobs = append(jobs, j)
			}
		}
		if len(jobs) == 0 {
			hints[li] = tightened
			next, err := bounds.PropagateWithHints(net, region.Box, hints)
			if err != nil {
				return nil, err
			}
			cur = next
			continue
		}

		nw := workers
		if nw > len(jobs) {
			nw = len(jobs)
		}
		results := make([]neuronBounds, layer.OutDim())
		errs := make([]error, nw)
		run := func(slot int, model *lp.Model) {
			solver := lp.NewSolver(model)
			for idx := slot; idx < len(jobs); idx += nw {
				if cancelled() {
					return // remaining neurons keep their interval bounds
				}
				j := jobs[idx]
				row := layer.W[j]
				for k, w := range row {
					model.SetObjective(prevVars[k], w)
				}
				hi, err := solveDirection(solver, true, cancelled)
				if err != nil {
					errs[slot] = err
					return
				}
				lo, err := solveDirection(solver, false, cancelled)
				if err != nil {
					errs[slot] = err
					return
				}
				for k := range row {
					model.SetObjective(prevVars[k], 0)
				}
				results[j] = neuronBounds{hi: hi, lo: lo}
			}
		}
		if nw == 1 {
			run(0, enc.model)
		} else {
			var wg sync.WaitGroup
			for slot := 0; slot < nw; slot++ {
				wg.Add(1)
				go func(slot int, model *lp.Model) {
					defer wg.Done()
					run(slot, model)
				}(slot, enc.model.Clone())
			}
			wg.Wait()
		}
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}

		// Intersect in neuron order — deterministic regardless of scheduling.
		for _, j := range jobs {
			iv := cur.Layers[li].Pre[j]
			r := results[j]
			if r.hi.ok {
				if v := r.hi.val + layer.B[j]; v < iv.Hi {
					iv.Hi = v
				}
			}
			if r.lo.ok {
				if v := r.lo.val + layer.B[j]; v > iv.Lo {
					iv.Lo = v
				}
			}
			if iv.Lo > iv.Hi { // numerical crossing; keep the midpoint
				mid := (iv.Lo + iv.Hi) / 2
				iv = bounds.Interval{Lo: mid, Hi: mid}
			}
			tightened[j] = iv
		}
		hints[li] = tightened
		// Refresh all downstream intervals with the new knowledge.
		next, err := bounds.PropagateWithHints(net, region.Box, hints)
		if err != nil {
			return nil, err
		}
		cur = next
	}
	return cur, nil
}

type dirResult struct {
	ok  bool
	val float64
}

// solveDirection re-solves the worker's persistent model for one objective
// direction. Flipping the direction only changes costs, so every solve
// after the first warm-starts from the previous basis. A cancellation mid-
// solve surfaces as IterationLimit and leaves the interval untouched.
func solveDirection(s *lp.Solver, maximize bool, cancel func() bool) (dirResult, error) {
	s.Model().SetMaximize(maximize)
	sol, err := s.Solve(lp.Options{Cancel: cancel})
	if err != nil {
		return dirResult{}, err
	}
	if sol.Status != lp.Optimal {
		// Unbounded, cancelled, or iteration-limited directions simply do
		// not improve the interval; infeasible regions are caught by the
		// caller's later full solve.
		return dirResult{}, nil
	}
	return dirResult{ok: true, val: sol.Objective}, nil
}
