package verify

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bounds"
	"repro/internal/lp"
	"repro/internal/nn"
)

func unitRegion(n int) *InputRegion {
	box := make([]bounds.Interval, n)
	for i := range box {
		box[i] = bounds.Interval{Lo: -1, Hi: 1}
	}
	return &InputRegion{Box: box}
}

func randomReLUNet(seed int64, in int, hidden []int, out int) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	return nn.New(nn.Config{
		Name: "v", InputDim: in, Hidden: hidden, OutputDim: out,
		HiddenAct: nn.ReLU, OutputAct: nn.Identity,
	}, rng)
}

// gridMax brute-forces the maximum output over a dense grid (lower bound on
// the true maximum; for piecewise-linear nets with fine grids it is close).
func gridMax(net *nn.Network, region *InputRegion, outIndex, steps int) float64 {
	n := net.InputDim()
	best := math.Inf(-1)
	idx := make([]int, n)
	x := make([]float64, n)
	for {
		ok := true
		for i := range idx {
			iv := region.Box[i]
			x[i] = iv.Lo + (iv.Hi-iv.Lo)*float64(idx[i])/float64(steps-1)
		}
		if region.Contains(x, 1e-12) {
			if v := net.Forward(x)[outIndex]; v > best {
				best = v
			}
		}
		// Odometer increment.
		for i := 0; ; i++ {
			if i == n {
				ok = false
				break
			}
			idx[i]++
			if idx[i] < steps {
				break
			}
			idx[i] = 0
		}
		if !ok {
			break
		}
	}
	return best
}

func TestMaxOutputHandBuilt(t *testing.T) {
	// y = relu(x) + relu(-x) = |x| on [-1, 1]: max is 1 at x = ±1.
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}, {-1}}, B: []float64{0, 0}, Act: nn.ReLU},
		{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
	}}
	res, err := MaxOutput(net, unitRegion(1), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || math.Abs(res.Value-1) > 1e-6 {
		t.Fatalf("max = %g (exact=%v), want 1", res.Value, res.Exact)
	}
	if math.Abs(math.Abs(res.Witness[0])-1) > 1e-6 {
		t.Fatalf("witness = %v, want ±1", res.Witness)
	}
	// Witness replay must reproduce the reported value.
	if v := net.Forward(res.Witness)[0]; math.Abs(v-res.Value) > 1e-6 {
		t.Fatalf("witness replay %g != reported %g", v, res.Value)
	}
}

func TestMaxOutputAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		net := randomReLUNet(seed, 2, []int{5, 4}, 1)
		region := unitRegion(2)
		res, err := MaxOutput(net, region, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Exact {
			t.Fatalf("seed %d: not exact", seed)
		}
		bf := gridMax(net, region, 0, 81)
		if bf > res.Value+1e-5 {
			t.Fatalf("seed %d: grid point %g beats MILP max %g (unsound!)", seed, bf, res.Value)
		}
		if res.Value > bf+0.5 {
			t.Fatalf("seed %d: MILP max %g implausibly above grid %g", seed, res.Value, bf)
		}
		if v := net.Forward(res.Witness)[0]; math.Abs(v-res.Value) > 1e-5 {
			t.Fatalf("seed %d: witness replay %g != %g", seed, v, res.Value)
		}
		if !region.Contains(res.Witness, 1e-6) {
			t.Fatalf("seed %d: witness outside region", seed)
		}
	}
}

func TestMaxOutputRespectsLinearConstraint(t *testing.T) {
	// Maximize y = relu(x0) + relu(x1) on the unit box with x0 + x1 <= -0.5.
	// Both inputs positive is infeasible, so one term is zero and the other
	// is at most -0.5 - (-1) = 0.5.
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1, 0}, {0, 1}}, B: []float64{0, 0}, Act: nn.ReLU},
		{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
	}}
	region := unitRegion(2)
	region.Linear = []LinearConstraint{{
		Coeffs: map[int]float64{0: 1, 1: 1}, Sense: lp.LE, RHS: -0.5, Name: "cap",
	}}
	res, err := MaxOutput(net, region, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-0.5) > 1e-6 {
		t.Fatalf("max = %g, want 0.5", res.Value)
	}
	if !region.Contains(res.Witness, 1e-6) {
		t.Fatal("witness violates linear constraint")
	}
}

func TestProveUpperBoundProves(t *testing.T) {
	net := randomReLUNet(3, 2, []int{6}, 1)
	region := unitRegion(2)
	mx, err := MaxOutput(net, region, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := ProveUpperBound(net, region, 0, mx.Value+0.1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Outcome != Proved {
		t.Fatalf("outcome = %v, want proved (threshold above max %g)", pr.Outcome, mx.Value)
	}
}

func TestProveUpperBoundFindsCounterexample(t *testing.T) {
	net := randomReLUNet(4, 2, []int{6}, 1)
	region := unitRegion(2)
	mx, err := MaxOutput(net, region, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	thr := mx.Value - 0.2
	pr, err := ProveUpperBound(net, region, 0, thr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Outcome != Violated {
		t.Fatalf("outcome = %v, want violated (threshold %g below max %g)", pr.Outcome, thr, mx.Value)
	}
	if pr.CounterValue <= thr {
		t.Fatalf("counterexample value %g does not exceed threshold %g", pr.CounterValue, thr)
	}
	if !region.Contains(pr.CounterExample, 1e-6) {
		t.Fatal("counterexample outside region")
	}
	// The counterexample must be real: replay through the network.
	if v := net.Forward(pr.CounterExample)[0]; math.Abs(v-pr.CounterValue) > 1e-9 {
		t.Fatalf("counter value mismatch: %g vs %g", v, pr.CounterValue)
	}
}

func TestProveUpperBoundIntervalFastPath(t *testing.T) {
	net := randomReLUNet(5, 2, []int{4}, 1)
	region := unitRegion(2)
	nb, err := bounds.Propagate(net, region.Box)
	if err != nil {
		t.Fatal(err)
	}
	// Far above the interval bound: must prove without any MILP nodes.
	pr, err := ProveUpperBound(net, region, 0, nb.Output()[0].Hi+1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Outcome != Proved || pr.Stats.Nodes != 0 {
		t.Fatalf("fast path not taken: outcome=%v nodes=%d", pr.Outcome, pr.Stats.Nodes)
	}
}

func TestTightenLPPreservesAnswers(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		net := randomReLUNet(seed+10, 3, []int{6, 5}, 1)
		region := unitRegion(3)
		plain, err := MaxOutput(net, region, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		tight, err := MaxOutput(net, region, 0, Options{Tighten: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(plain.Value-tight.Value) > 1e-5 {
			t.Fatalf("seed %d: tightened answer %g != plain %g", seed, tight.Value, plain.Value)
		}
		if tight.Stats.StableNeurons < plain.Stats.StableNeurons {
			t.Fatalf("seed %d: tightening lost stability (%d < %d)", seed, tight.Stats.StableNeurons, plain.Stats.StableNeurons)
		}
	}
}

func TestTightenLPBoundsStillSound(t *testing.T) {
	net := randomReLUNet(22, 3, []int{6, 6}, 1)
	region := unitRegion(3)
	nb, err := bounds.Propagate(net, region.Box)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := TightenLP(net, region, nb)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for s := 0; s < 300; s++ {
		x := make([]float64, 3)
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		tr := net.ForwardTrace(x)
		for li := range net.Layers {
			for j, z := range tr.Pre[li] {
				iv := tight.Layers[li].Pre[j]
				if z < iv.Lo-1e-6 || z > iv.Hi+1e-6 {
					t.Fatalf("tightened bound unsound: layer %d neuron %d: %g outside [%g,%g]", li, j, z, iv.Lo, iv.Hi)
				}
			}
		}
	}
}

func TestTanhRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := nn.New(nn.Config{Name: "t", InputDim: 2, Hidden: []int{3}, OutputDim: 1, HiddenAct: nn.Tanh, OutputAct: nn.Identity}, rng)
	if _, err := MaxOutput(net, unitRegion(2), 0, Options{}); err == nil {
		t.Fatal("tanh network must be rejected")
	}
}

func TestBadOutputIndex(t *testing.T) {
	net := randomReLUNet(1, 2, []int{3}, 1)
	if _, err := MaxOutput(net, unitRegion(2), 5, Options{}); err == nil {
		t.Fatal("want error for bad output index")
	}
	if _, err := ProveUpperBound(net, unitRegion(2), -1, 0, Options{}); err == nil {
		t.Fatal("want error for negative output index")
	}
}

func TestEmptyRegionRejected(t *testing.T) {
	net := randomReLUNet(2, 2, []int{3}, 1)
	region := unitRegion(2)
	region.Linear = []LinearConstraint{
		{Coeffs: map[int]float64{0: 1}, Sense: lp.GE, RHS: 5, Name: "impossible"},
	}
	if _, err := MaxOutput(net, region, 0, Options{}); err == nil {
		t.Fatal("empty region should error")
	}
}

func TestTimeoutOutcome(t *testing.T) {
	net := randomReLUNet(6, 6, []int{14, 14, 14}, 1)
	region := unitRegion(6)
	res, err := MaxOutput(net, region, 0, Options{TimeLimit: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("microsecond budget should not produce an exact answer")
	}
	pr, err := ProveUpperBound(net, region, 0, 0.0001, Options{TimeLimit: time.Microsecond, MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Outcome == Proved {
		// Only acceptable if the interval fast path fired (possible but
		// unlikely for threshold barely above zero); verify that.
		nb, _ := bounds.Propagate(net, region.Box)
		if nb.Output()[0].Hi > 0.0001 {
			t.Fatalf("claimed proof without resources (interval hi=%g)", nb.Output()[0].Hi)
		}
	}
}

func TestMaxOverOutputs(t *testing.T) {
	// Two outputs: y0 = x, y1 = -x on [-1,1]; max over both should be 1.
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}, {-1}}, B: []float64{0, 0}, Act: nn.ReLU},
		{W: [][]float64{{1, 0}, {0, 1}}, B: []float64{0, 0}, Act: nn.Identity},
	}}
	res, err := MaxOverOutputs(net, unitRegion(1), []int{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-1) > 1e-6 {
		t.Fatalf("max over outputs = %g, want 1", res.Value)
	}
	if _, err := MaxOverOutputs(net, unitRegion(1), nil, Options{}); err == nil {
		t.Fatal("want error for empty output list")
	}
}

func TestRegionContains(t *testing.T) {
	region := unitRegion(2)
	region.Linear = []LinearConstraint{
		{Coeffs: map[int]float64{0: 1, 1: -1}, Sense: lp.EQ, RHS: 0, Name: "diag"},
	}
	if !region.Contains([]float64{0.5, 0.5}, 1e-9) {
		t.Fatal("diagonal point should be inside")
	}
	if region.Contains([]float64{0.5, 0.4}, 1e-9) {
		t.Fatal("off-diagonal point should be outside")
	}
	if region.Contains([]float64{2, 2}, 1e-9) {
		t.Fatal("outside box should be outside")
	}
}

func TestStatsPopulated(t *testing.T) {
	net := randomReLUNet(8, 2, []int{5}, 1)
	res, err := MaxOutput(net, unitRegion(2), 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.HiddenNeurons != 5 {
		t.Fatalf("hidden neurons = %d, want 5", res.Stats.HiddenNeurons)
	}
	if res.Stats.Binaries+res.Stats.StableNeurons != 5 {
		t.Fatalf("binaries %d + stable %d != 5", res.Stats.Binaries, res.Stats.StableNeurons)
	}
	if res.Stats.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}
