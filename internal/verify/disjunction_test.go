package verify

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// TestSingleMILPMatchesPerOutput cross-checks the disjunctive encoding
// against the per-output solves on random networks.
func TestSingleMILPMatchesPerOutput(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed + 400))
		net := nn.New(nn.Config{
			Name: "d", InputDim: 3, Hidden: []int{6, 5}, OutputDim: 4,
			HiddenAct: nn.ReLU, OutputAct: nn.Identity,
		}, rng)
		region := unitRegion(3)
		outs := []int{0, 1, 2, 3}
		per, err := MaxOverOutputs(net, region, outs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		single, err := MaxOverOutputsSingleMILP(net, region, outs, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !per.Exact || !single.Exact {
			t.Fatalf("seed %d: inexact answers", seed)
		}
		if math.Abs(per.Value-single.Value) > 1e-5 {
			t.Fatalf("seed %d: single-MILP %g != per-output %g", seed, single.Value, per.Value)
		}
		// The witness replays: max over outputs at the witness equals Value.
		raw := net.Forward(single.Witness)
		best := math.Inf(-1)
		for _, oi := range outs {
			best = math.Max(best, raw[oi])
		}
		if math.Abs(best-single.Value) > 1e-5 {
			t.Fatalf("seed %d: witness replay %g != %g", seed, best, single.Value)
		}
	}
}

func TestSingleMILPValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := nn.New(nn.Config{Name: "v", InputDim: 2, Hidden: []int{3}, OutputDim: 2, HiddenAct: nn.ReLU, OutputAct: nn.Identity}, rng)
	if _, err := MaxOverOutputsSingleMILP(net, unitRegion(2), nil, Options{}); err == nil {
		t.Fatal("empty output list accepted")
	}
	if _, err := MaxOverOutputsSingleMILP(net, unitRegion(2), []int{5}, Options{}); err == nil {
		t.Fatal("bad output index accepted")
	}
}

// TestSingleMILPSubset: restricting the output set can only lower (or keep)
// the maximum.
func TestSingleMILPSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := nn.New(nn.Config{Name: "s", InputDim: 2, Hidden: []int{5}, OutputDim: 3, HiddenAct: nn.ReLU, OutputAct: nn.Identity}, rng)
	region := unitRegion(2)
	all, err := MaxOverOutputsSingleMILP(net, region, []int{0, 1, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := MaxOverOutputsSingleMILP(net, region, []int{1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Value > all.Value+1e-6 {
		t.Fatalf("subset max %g exceeds full max %g", sub.Value, all.Value)
	}
}
