package verify

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// TestParallelMatchesSequential checks that concurrent MaxOverOutputs
// returns exactly the sequential answer (the MILPs are independent; only
// scheduling differs). Workers is pinned explicitly so the inner engines
// are identical regardless of the machine's core count — with the auto
// value, Parallel mode deliberately divides the core budget per query.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	net := nn.New(nn.Config{
		Name: "p", InputDim: 4, Hidden: []int{8, 6}, OutputDim: 5,
		HiddenAct: nn.ReLU, OutputAct: nn.Identity,
	}, rng)
	region := unitRegion(4)
	outs := []int{0, 1, 2, 3, 4}
	seq, err := MaxOverOutputs(net, region, outs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	par, err := MaxOverOutputs(net, region, outs, Options{Parallel: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Exact || !par.Exact {
		t.Fatalf("exactness differs or lost: seq=%v par=%v", seq.Exact, par.Exact)
	}
	if math.Abs(seq.Value-par.Value) > 1e-9 {
		t.Fatalf("parallel value %g != sequential %g", par.Value, seq.Value)
	}
	if seq.Stats.Nodes != par.Stats.Nodes {
		t.Fatalf("node counts differ: %d vs %d (solves should be deterministic)", seq.Stats.Nodes, par.Stats.Nodes)
	}
	// Both witnesses must replay to the same maximum.
	if v := net.Forward(par.Witness)[argBest(net, par.Witness, outs)]; math.Abs(v-par.Value) > 1e-6 {
		t.Fatalf("parallel witness does not replay: %g vs %g", v, par.Value)
	}
}

func argBest(net *nn.Network, x []float64, outs []int) int {
	raw := net.Forward(x)
	best := outs[0]
	for _, o := range outs {
		if raw[o] > raw[best] {
			best = o
		}
	}
	return best
}

// TestWorkersMatchSequentialVerify pins the parallel warm-started MILP
// engine against the sequential one on real verification queries: identical
// exactness and objectives, with and without LP bound tightening.
func TestWorkersMatchSequentialVerify(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	net := nn.New(nn.Config{
		Name: "w", InputDim: 4, Hidden: []int{8, 6}, OutputDim: 3,
		HiddenAct: nn.ReLU, OutputAct: nn.Identity,
	}, rng)
	region := unitRegion(4)
	for _, tighten := range []bool{false, true} {
		seq, err := MaxOutput(net, region, 0, Options{Workers: 1, Tighten: tighten})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3} {
			par, err := MaxOutput(net, region, 0, Options{Workers: w, Tighten: tighten})
			if err != nil {
				t.Fatal(err)
			}
			if !seq.Exact || !par.Exact {
				t.Fatalf("tighten=%v workers=%d: exactness lost: seq=%v par=%v", tighten, w, seq.Exact, par.Exact)
			}
			if math.Abs(seq.Value-par.Value) > 1e-9 {
				t.Fatalf("tighten=%v workers=%d: value %.12g != sequential %.12g", tighten, w, par.Value, seq.Value)
			}
			if v := net.Forward(par.Witness)[0]; math.Abs(v-par.Value) > 1e-6 {
				t.Fatalf("tighten=%v workers=%d: witness does not replay: %g vs %g", tighten, w, v, par.Value)
			}
		}
	}
}

// TestParallelRace runs the parallel path repeatedly; under `go test -race`
// this catches data races in the shared encoder/solver paths.
func TestParallelRace(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	net := nn.New(nn.Config{
		Name: "r", InputDim: 3, Hidden: []int{6}, OutputDim: 4,
		HiddenAct: nn.ReLU, OutputAct: nn.Identity,
	}, rng)
	region := unitRegion(3)
	for i := 0; i < 5; i++ {
		if _, err := MaxOverOutputs(net, region, []int{0, 1, 2, 3}, Options{Parallel: true}); err != nil {
			t.Fatal(err)
		}
	}
}
