package verify

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bounds"
	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/nn"
)

// Instrumentation counters: every full encoding pass and every LP
// bound-tightening pass bumps one of these. They exist so tests (and the
// public pkg/vnn API) can assert that a compiled network is actually
// reused — running several queries against one Compiled must not re-encode
// or re-tighten.
var (
	encodePasses  atomic.Int64
	tightenPasses atomic.Int64
	// encodeNanos/tightenNanos accumulate the wall time spent inside
	// those passes. The observability plane (internal/obs via
	// pkg/vnnserver) reads deltas around a compile to attribute its cost
	// to the tighten vs encode phase without this package knowing about
	// spans.
	encodeNanos  atomic.Int64
	tightenNanos atomic.Int64
)

// EncodePasses returns the total number of MILP encoding passes performed
// by this process (full or prefix encodings alike).
func EncodePasses() int64 { return encodePasses.Load() }

// TightenPasses returns the total number of LP bound-tightening passes
// performed by this process.
func TightenPasses() int64 { return tightenPasses.Load() }

// EncodeNanos returns the cumulative wall nanoseconds this process spent
// in MILP encoding passes.
func EncodeNanos() int64 { return encodeNanos.Load() }

// TightenNanos returns the cumulative wall nanoseconds this process
// spent in LP bound-tightening passes (including the prefix encodings
// tightening performs internally, which also count toward EncodeNanos).
func TightenNanos() int64 { return tightenNanos.Load() }

// Compiled is a network fixed to one input region whose bound analysis
// (interval propagation plus optional LP tightening) and MILP encoding
// have been performed exactly once. Any number of queries — max-objective,
// prove-threshold, linear functionals — run against the shared encoding by
// cloning its model, so a Compiled is safe for concurrent use and repeated
// queries never repeat the preprocessing.
type Compiled struct {
	net    *nn.Network
	region *InputRegion
	nb     *bounds.NetworkBounds
	enc    *encoding

	// CompileTime is the wall-clock cost of bound analysis plus encoding.
	CompileTime time.Duration
	// Tightened records whether LP bound tightening ran during compilation.
	Tightened bool
}

// Compile performs the one-time preprocessing for net over region: interval
// bound propagation, optional LP tightening (opts.Tighten, fanned across
// opts.Workers and bounded by ctx — see TightenLPCtx), and the MILP
// encoding. The ctx deadline covers the whole compilation; tightening
// stops early (soundly) when the budget runs out.
func Compile(ctx context.Context, net *nn.Network, region *InputRegion, opts Options) (*Compiled, error) {
	start := time.Now()
	nb, err := prepareBounds(ctx, net, region, opts)
	if err != nil {
		return nil, err
	}
	enc, err := encode(net, region, nb, encodeOptions{prefixLayers: -1})
	if err != nil {
		return nil, err
	}
	return &Compiled{
		net:         net,
		region:      region,
		nb:          nb,
		enc:         enc,
		CompileTime: time.Since(start),
		Tightened:   opts.Tighten,
	}, nil
}

// CompileWithBounds builds a Compiled from an externally supplied bound
// analysis: only the MILP encoding runs — no propagation and no LP
// tightening, which is what makes replicating a compiled artifact
// across a fleet cheap. The caller vouches for nb's soundness over
// region (pkg/vnn's import path verifies the bounds are contained in a
// fresh plain propagation before calling this); tightened records how
// nb was originally produced.
func CompileWithBounds(net *nn.Network, region *InputRegion, nb *bounds.NetworkBounds, tightened bool) (*Compiled, error) {
	start := time.Now()
	if err := region.Validate(net); err != nil {
		return nil, err
	}
	if len(nb.Layers) != len(net.Layers) || len(nb.Input) != net.InputDim() {
		return nil, fmt.Errorf("verify: bounds shape %d layers / %d inputs, network %d / %d",
			len(nb.Layers), len(nb.Input), len(net.Layers), net.InputDim())
	}
	enc, err := encode(net, region, nb, encodeOptions{prefixLayers: -1})
	if err != nil {
		return nil, err
	}
	return &Compiled{
		net:         net,
		region:      region,
		nb:          nb,
		enc:         enc,
		CompileTime: time.Since(start),
		Tightened:   tightened,
	}, nil
}

// Net returns the compiled network.
func (c *Compiled) Net() *nn.Network { return c.net }

// Bounds returns the compiled bound analysis. The value is shared
// compiled state: callers must treat it as read-only.
func (c *Compiled) Bounds() *bounds.NetworkBounds { return c.nb }

// Region returns the input region the compilation quantifies over.
func (c *Compiled) Region() *InputRegion { return c.region }

// OutputBounds returns the proven interval bounds on every output over the
// region — the zero-cost anytime answer available before any MILP runs.
func (c *Compiled) OutputBounds() []bounds.Interval { return c.nb.Output() }

// PreActivationBounds returns the proven pre-activation intervals of every
// hidden layer (one row per hidden layer), as computed — and, under
// opts.Tighten, LP-tightened — during compilation. The rows are views into
// the compiled state and must be treated as read-only. Analyses that need
// activation-phase information over the region (e.g. traceability interval
// conditions) consume these instead of re-running propagation.
func (c *Compiled) PreActivationBounds() [][]bounds.Interval {
	out := make([][]bounds.Interval, 0, len(c.nb.Layers)-1)
	for li := 0; li+1 < len(c.nb.Layers); li++ {
		out = append(out, c.nb.Layers[li].Pre)
	}
	return out
}

// checkOutputs validates output indices against the network.
func (c *Compiled) checkOutputs(outs ...int) error {
	for _, oi := range outs {
		if oi < 0 || oi >= c.net.OutputDim() {
			return fmt.Errorf("verify: output index %d of %d", oi, c.net.OutputDim())
		}
	}
	return nil
}

// MaxOutput computes the maximum of output neuron outIndex over the region
// on the shared encoding.
func (c *Compiled) MaxOutput(ctx context.Context, outIndex int, opts Options) (*MaxResult, error) {
	return c.MaxLinear(ctx, map[int]float64{outIndex: 1}, opts)
}

// MaxLinear computes the maximum of the linear functional
// Σ coeffs[k]·output[k] over the region. The empty functional is rejected.
func (c *Compiled) MaxLinear(ctx context.Context, coeffs map[int]float64, opts Options) (*MaxResult, error) {
	if len(coeffs) == 0 {
		return nil, fmt.Errorf("verify: MaxLinear needs at least one objective term")
	}
	for oi := range coeffs {
		if err := c.checkOutputs(oi); err != nil {
			return nil, err
		}
	}
	return maxWithEncoding(ctx, c.enc.withModelClone(), coeffs, opts)
}

// LinearIntervalBound returns the interval upper bound on
// Σ coeffs[k]·output[k] implied by the compiled output bounds alone.
func (c *Compiled) LinearIntervalBound(coeffs map[int]float64) float64 {
	return c.enc.intervalBound(coeffs)
}

// intervalBound is the proven interval upper bound on Σ coeffs·output over
// the encoding's bound analysis — the zero-cost anytime fallback.
func (e *encoding) intervalBound(coeffs map[int]float64) float64 {
	outB := e.nb.Output()
	var hi float64
	for oi, cf := range coeffs {
		if cf >= 0 {
			hi += cf * outB[oi].Hi
		} else {
			hi += cf * outB[oi].Lo
		}
	}
	return hi
}

// MaxOverOutputs returns the maximum over several output neurons (one MILP
// per output — a disjunction solved as independent problems, concurrently
// when opts.Parallel is set), sharing the compiled encoding. With Parallel,
// Stats.Elapsed sums per-query times and so exceeds wall-clock time.
//
// When opts.TimeLimit is set, it budgets each per-output MILP on its own
// clock (the historical semantics of the free MaxOverOutputs function); the
// ctx deadline, if any, bounds the whole call.
func (c *Compiled) MaxOverOutputs(ctx context.Context, outIndices []int, opts Options) (*MaxResult, error) {
	if len(outIndices) == 0 {
		return nil, fmt.Errorf("verify: MaxOverOutputs needs at least one output index")
	}
	if err := c.checkOutputs(outIndices...); err != nil {
		return nil, err
	}

	// With Parallel and the auto worker count, the core budget is divided
	// across the concurrent queries instead of letting each MILP claim all
	// of GOMAXPROCS (K queries × P workers would oversubscribe the CPU and
	// hold K×P dense tableaus). An explicit Workers value is honored as-is.
	innerOpts := opts
	if opts.Parallel && opts.Workers == 0 {
		innerOpts.Workers = runtime.GOMAXPROCS(0) / len(outIndices)
		if innerOpts.Workers < 1 {
			innerOpts.Workers = 1
		}
	}
	solveOne := func(out int) (*MaxResult, error) {
		qctx, cancel := perQueryContext(ctx, opts.TimeLimit)
		defer cancel()
		return maxWithEncoding(qctx, c.enc.withModelClone(), map[int]float64{out: 1}, innerOpts)
	}

	results := make([]*MaxResult, len(outIndices))
	errs := make([]error, len(outIndices))
	if opts.Parallel {
		var wg sync.WaitGroup
		for i, oi := range outIndices {
			wg.Add(1)
			go func(slot, out int) {
				defer wg.Done()
				results[slot], errs[slot] = solveOne(out)
			}(i, oi)
		}
		wg.Wait()
	} else {
		for i, oi := range outIndices {
			results[i], errs[i] = solveOne(oi)
		}
	}
	best := &MaxResult{Exact: true, Value: math.Inf(-1), UpperBound: math.Inf(-1)}
	for i, r := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		best.Stats.Elapsed += r.Stats.Elapsed
		best.Stats.Nodes += r.Stats.Nodes
		best.Stats.LPPivots += r.Stats.LPPivots
		best.Stats.Binaries = r.Stats.Binaries
		best.Stats.StableNeurons = r.Stats.StableNeurons
		best.Stats.HiddenNeurons = r.Stats.HiddenNeurons
		if r.Value > best.Value {
			best.Value = r.Value
			best.Witness = r.Witness
		}
		if r.UpperBound > best.UpperBound {
			best.UpperBound = r.UpperBound
		}
		if !r.Exact {
			best.Exact = false
		}
	}
	return best, nil
}

// ProveUpperBound proves output[outIndex] ≤ threshold over the region, or
// returns a counterexample, on the shared encoding. The result always
// carries BestBound — the tightest proven upper bound on the output at the
// moment the query ended — so an interrupted query still returns a usable
// anytime answer.
func (c *Compiled) ProveUpperBound(ctx context.Context, outIndex int, threshold float64, opts Options) (*ProveResult, error) {
	if err := c.checkOutputs(outIndex); err != nil {
		return nil, err
	}
	return c.ProveLinearUpperBound(ctx, map[int]float64{outIndex: 1}, threshold, opts)
}

// ProveLinearUpperBound proves Σ coeffs[k]·output[k] ≤ threshold over the
// region, or returns a counterexample. This is the general linear output
// inequality the property algebra in pkg/vnn compiles to.
//
// The query is encoded as a feasibility problem: the functional is
// constrained to exceed the threshold and branch-and-bound searches for any
// integer-feasible point; infeasibility proves the bound.
func (c *Compiled) ProveLinearUpperBound(ctx context.Context, coeffs map[int]float64, threshold float64, opts Options) (*ProveResult, error) {
	if len(coeffs) == 0 {
		return nil, fmt.Errorf("verify: ProveLinearUpperBound needs at least one term")
	}
	for oi := range coeffs {
		if err := c.checkOutputs(oi); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	intervalHi := c.LinearIntervalBound(coeffs)

	pr := &ProveResult{Threshold: threshold, BestBound: intervalHi}
	// Fast path: interval analysis alone may already prove the bound.
	if intervalHi <= threshold {
		pr.Outcome = Proved
		stable, total := c.nb.StableNeurons()
		pr.Stats = Stats{Elapsed: time.Since(start), StableNeurons: stable, HiddenNeurons: total}
		return pr, nil
	}

	enc := c.enc.withModelClone()
	// Feasibility of "functional strictly above threshold". For the single-
	// output case the output variable itself is bound-restricted to
	// [max(lo,thr), max(hi,thr)] (cheap: no extra row); a general functional
	// gains one constraint Σ c·y ≥ threshold.
	if len(coeffs) == 1 {
		for oi := range coeffs {
			cf := coeffs[oi]
			if cf == 1 {
				y := enc.outputs[oi]
				lo, hi := enc.model.Bounds(y)
				enc.model.SetBounds(y, math.Max(lo, threshold), math.Max(hi, threshold))
			} else {
				enc.addLinearFloor(coeffs, threshold)
			}
		}
	} else {
		enc.addLinearFloor(coeffs, threshold)
	}
	res, err := solveObjective(ctx, enc, coeffs, opts)
	if err != nil {
		return nil, err
	}
	pr.Stats = enc.stats(res, start)
	objective := func(x []float64) float64 {
		var v float64
		out := c.net.Forward(x)
		for oi, cf := range coeffs {
			v += cf * out[oi]
		}
		return v
	}
	switch {
	case res.Status == milp.Infeasible:
		pr.Outcome = Proved
		pr.BestBound = math.Min(intervalHi, threshold)
	case res.HasSolution && res.Objective > threshold+1e-7:
		pr.Outcome = Violated
		pr.CounterExample = extractWitness(enc, res.X)
		pr.CounterValue = objective(pr.CounterExample)
		pr.BestBound = math.Min(intervalHi, math.Max(res.Bound, threshold))
	case res.Status == milp.Optimal:
		// Optimum exists but does not exceed the threshold: the region
		// touches the threshold at most; that still proves ≤.
		pr.Outcome = Proved
		pr.BestBound = math.Min(intervalHi, math.Max(res.Objective, threshold))
	default:
		// Interrupted (deadline, cancellation, or node budget): no verdict,
		// but the branch-and-bound bound is still a sound anytime answer.
		pr.Outcome = Timeout
		pr.BestBound = math.Min(intervalHi, math.Max(res.Bound, threshold))
	}
	return pr, nil
}

// addLinearFloor adds the constraint Σ coeffs[k]·output[k] ≥ threshold to
// the encoding's model. (Term order within a constraint does not affect
// the ingested matrix, so map iteration order is harmless.)
func (e *encoding) addLinearFloor(coeffs map[int]float64, threshold float64) {
	terms := make([]lp.Term, 0, len(coeffs))
	for oi, cf := range coeffs {
		terms = append(terms, lp.Term{Var: e.outputs[oi], Coeff: cf})
	}
	e.model.AddConstraint(terms, lp.GE, threshold, "prove.floor")
}

// prepareBounds runs interval propagation (plus optional LP tightening,
// bounded by ctx) over the region box.
func prepareBounds(ctx context.Context, net *nn.Network, region *InputRegion, opts Options) (*bounds.NetworkBounds, error) {
	if err := region.Validate(net); err != nil {
		return nil, err
	}
	nb, err := bounds.Propagate(net, region.Box)
	if err != nil {
		return nil, err
	}
	if opts.Tighten {
		return TightenLPCtx(ctx, net, region, nb, opts.Workers)
	}
	return nb, nil
}

// perQueryContext derives the budget context for one inner MILP: the
// legacy per-query TimeLimit when set, under the caller's ctx either way.
func perQueryContext(parent context.Context, limit time.Duration) (context.Context, context.CancelFunc) {
	if limit > 0 {
		return context.WithTimeout(parent, limit)
	}
	return context.WithCancel(parent)
}
