// Package verify implements the paper's core experiment: formal
// verification of ReLU networks by encoding them as mixed-integer linear
// constraints (following Cheng, Nührenberg, Ruess — "Maximum Resilience of
// Artificial Neural Networks", ATVA 2017) and answering safety queries with
// the branch-and-bound solver from package milp.
//
// Supported queries (Table II of the paper):
//
//   - MaxOutput: the maximum value an output neuron can take while the
//     input stays inside a constrained region ("maximum lateral velocity
//     when a vehicle exists on the left");
//   - ProveUpperBound: proof, or counterexample, that an output stays
//     below a threshold ("the lateral velocity can never exceed 3 m/s").
//
// Only ReLU hidden layers and identity output layers are encodable; tanh
// networks are rejected (the paper's MC/DC discussion notes they need no
// branch analysis — and symmetrically, they admit no exact MILP encoding).
package verify

import (
	"fmt"
	"time"

	"repro/internal/bounds"
	"repro/internal/lp"
	"repro/internal/nn"
)

// LinearConstraint is Σ Coeffs[i]·x[i] {≤,=,≥} RHS over network inputs;
// it expresses scenario preconditions that a plain box cannot, e.g.
// "the left vehicle is closer than the front one".
type LinearConstraint struct {
	Coeffs map[int]float64
	Sense  lp.Sense
	RHS    float64
	Name   string
}

// InputRegion is the set of network inputs a property quantifies over:
// a box (required) intersected with optional linear constraints.
type InputRegion struct {
	Box    []bounds.Interval
	Linear []LinearConstraint
}

// Validate checks the region against a network's input dimension.
func (r *InputRegion) Validate(net *nn.Network) error {
	if len(r.Box) != net.InputDim() {
		return fmt.Errorf("verify: region box dim %d, network input %d", len(r.Box), net.InputDim())
	}
	for i, iv := range r.Box {
		if iv.Lo > iv.Hi {
			return fmt.Errorf("verify: region box[%d] empty: [%g, %g]", i, iv.Lo, iv.Hi)
		}
	}
	for _, lc := range r.Linear {
		for v := range lc.Coeffs {
			if v < 0 || v >= net.InputDim() {
				return fmt.Errorf("verify: constraint %q references input %d of %d", lc.Name, v, net.InputDim())
			}
		}
	}
	return nil
}

// Contains reports whether x satisfies the region (box and linear parts).
func (r *InputRegion) Contains(x []float64, tol float64) bool {
	for i, iv := range r.Box {
		if x[i] < iv.Lo-tol || x[i] > iv.Hi+tol {
			return false
		}
	}
	for _, lc := range r.Linear {
		var lhs float64
		for v, c := range lc.Coeffs {
			lhs += c * x[v]
		}
		switch lc.Sense {
		case lp.LE:
			if lhs > lc.RHS+tol {
				return false
			}
		case lp.GE:
			if lhs < lc.RHS-tol {
				return false
			}
		case lp.EQ:
			if lhs < lc.RHS-tol || lhs > lc.RHS+tol {
				return false
			}
		}
	}
	return true
}

// encoding holds the MILP image of a network over a region.
type encoding struct {
	model    *lp.Model
	inputs   []int   // model variable per network input
	posts    [][]int // model variable per neuron post-activation, per layer
	outputs  []int   // model variable per network output
	binaries []int   // ReLU phase indicators
	nb       *bounds.NetworkBounds
	stable   int // hidden neurons encoded without a binary
}

// withModelClone returns a copy of the encoding whose model is an
// independent clone, so several queries can mutate objectives and bounds
// concurrently while sharing one encoding pass. Variable indices carry over.
func (e *encoding) withModelClone() *encoding {
	out := *e
	out.model = e.model.Clone()
	return &out
}

// encodeOptions tune the encoding.
type encodeOptions struct {
	// relaxBinaries makes phase indicators continuous in [0,1]
	// (used for LP-based bound tightening and relaxation-only analysis).
	relaxBinaries bool
	// prefixLayers, when >= 0, encodes only the first prefixLayers layers
	// (0 encodes just the input region). -1 encodes the whole network.
	prefixLayers int
}

// encode builds the MILP for net restricted to region, using nb for big-M
// constants. nb must come from bounds.Propagate over the same region box
// (or a tightened refinement of it).
func encode(net *nn.Network, region *InputRegion, nb *bounds.NetworkBounds, opt encodeOptions) (*encoding, error) {
	encodePasses.Add(1)
	defer func(start time.Time) { encodeNanos.Add(int64(time.Since(start))) }(time.Now())
	if err := region.Validate(net); err != nil {
		return nil, err
	}
	lastLayer := len(net.Layers) - 1
	stopAt := lastLayer
	if opt.prefixLayers >= 0 && opt.prefixLayers <= lastLayer {
		stopAt = opt.prefixLayers - 1
	}
	for li := 0; li <= stopAt; li++ {
		act := net.Layers[li].Act
		if li == lastLayer {
			if act != nn.Identity {
				return nil, fmt.Errorf("verify: output layer activation %v not encodable (need identity)", act)
			}
		} else if act != nn.ReLU {
			return nil, fmt.Errorf("verify: hidden layer %d activation %v not encodable (need relu)", li, act)
		}
	}

	e := &encoding{model: lp.NewModel(), nb: nb}
	// Input variables bounded by the region box.
	for i, iv := range region.Box {
		e.inputs = append(e.inputs, e.model.AddVariable(iv.Lo, iv.Hi, fmt.Sprintf("x%d", i)))
	}
	// Linear scenario constraints.
	for _, lc := range region.Linear {
		terms := make([]lp.Term, 0, len(lc.Coeffs))
		for v, c := range lc.Coeffs {
			terms = append(terms, lp.Term{Var: e.inputs[v], Coeff: c})
		}
		e.model.AddConstraint(terms, lc.Sense, lc.RHS, lc.Name)
	}

	prev := e.inputs
	for li := 0; li <= stopAt; li++ {
		layer := net.Layers[li]
		lb := nb.Layers[li]
		isOutput := li == lastLayer
		vars := make([]int, layer.OutDim())
		for j, row := range layer.W {
			pre := lb.Pre[j]
			name := fmt.Sprintf("l%dn%d", li, j)
			// Affine expression terms: Σ w·prev + b.
			affine := func(extra ...lp.Term) []lp.Term {
				terms := make([]lp.Term, 0, len(row)+len(extra))
				for k, w := range row {
					if w != 0 {
						terms = append(terms, lp.Term{Var: prev[k], Coeff: w})
					}
				}
				return append(terms, extra...)
			}
			if isOutput {
				// y = Σ w·prev + b exactly.
				y := e.model.AddVariable(pre.Lo, pre.Hi, name)
				e.model.AddConstraint(affine(lp.Term{Var: y, Coeff: -1}), lp.EQ, -layer.B[j], name+"=aff")
				vars[j] = y
				continue
			}
			switch {
			case pre.Hi <= 0:
				// Dead neuron: post is identically zero.
				vars[j] = e.model.AddVariable(0, 0, name)
				e.stable++
			case pre.Lo >= 0:
				// Always-active neuron: post equals the affine form.
				p := e.model.AddVariable(pre.Lo, pre.Hi, name)
				e.model.AddConstraint(affine(lp.Term{Var: p, Coeff: -1}), lp.EQ, -layer.B[j], name+"=aff")
				vars[j] = p
				e.stable++
			default:
				// Unstable neuron: big-M encoding with indicator d.
				//   p ≥ aff               (p - aff ≥ 0)
				//   p ≤ aff − Lo·(1−d)    (p - aff - Lo·d ≤ -Lo)
				//   p ≤ Hi·d              (p - Hi·d ≤ 0)
				//   0 ≤ p ≤ max(0,Hi)
				p := e.model.AddVariable(0, pre.Hi, name)
				d := e.model.AddVariable(0, 1, name+".d")
				e.model.AddConstraint(affine(lp.Term{Var: p, Coeff: -1}), lp.LE, -layer.B[j], name+">=aff")
				e.model.AddConstraint(affine(lp.Term{Var: p, Coeff: -1}, lp.Term{Var: d, Coeff: pre.Lo}), lp.GE, -layer.B[j]+pre.Lo, name+"<=aff-L(1-d)")
				e.model.AddConstraint([]lp.Term{{Var: p, Coeff: 1}, {Var: d, Coeff: -pre.Hi}}, lp.LE, 0, name+"<=U*d")
				if !opt.relaxBinaries {
					e.binaries = append(e.binaries, d)
				}
				vars[j] = p
			}
		}
		if isOutput {
			e.outputs = vars
		} else {
			e.posts = append(e.posts, vars)
		}
		prev = vars
	}
	return e, nil
}
