package verify

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/bounds"
	"repro/internal/milp"
	"repro/internal/nn"
)

// Outcome classifies a verification result.
type Outcome int

// Possible outcomes.
const (
	// Proved means the property was established for the whole region.
	Proved Outcome = iota
	// Violated means a concrete counterexample input was found.
	Violated
	// Timeout means resources ran out before a conclusion — the paper's
	// "n.a. (unable to find maximum)" row.
	Timeout
)

// String returns a readable outcome name.
func (o Outcome) String() string {
	switch o {
	case Proved:
		return "proved"
	case Violated:
		return "violated"
	case Timeout:
		return "timeout"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Options tune a verification run.
type Options struct {
	// TimeLimit bounds the MILP solve; 0 means unlimited.
	TimeLimit time.Duration
	// MaxNodes bounds branch-and-bound nodes; 0 means unlimited.
	MaxNodes int
	// Tighten selects LP-based bound tightening before encoding
	// (slower preprocessing, smaller search trees).
	Tighten bool
	// Parallel lets MaxOverOutputs solve its per-output MILPs concurrently
	// (they are independent problems); single queries are unaffected.
	Parallel bool
	// Workers is the number of branch-and-bound workers inside each MILP
	// solve, and the fan-out of TightenLP's per-neuron LPs: 0 means
	// GOMAXPROCS, 1 forces the sequential engine. For any fixed value the
	// underlying search is deterministic.
	Workers int
}

// milpOptions assembles the branch-and-bound options for one solve.
func (o Options) milpOptions(start time.Time) milp.Options {
	return milp.Options{
		TimeLimit: remaining(o.TimeLimit, start),
		MaxNodes:  o.MaxNodes,
		Workers:   o.Workers,
	}
}

// Stats describes the effort a query took.
type Stats struct {
	Elapsed       time.Duration
	Nodes         int
	LPPivots      int
	Binaries      int // unstable neurons that required an indicator
	StableNeurons int // neurons encoded linearly thanks to interval bounds
	HiddenNeurons int
}

// MaxResult is the answer to a MaxOutput query.
type MaxResult struct {
	// Exact reports whether Value is the proven maximum (false on timeout).
	Exact bool
	// Value is the maximum output value found (a lower bound on the true
	// maximum when !Exact and a witness exists).
	Value float64
	// UpperBound is the proven upper bound from branch-and-bound
	// (equals Value when Exact).
	UpperBound float64
	// Witness is an input achieving Value, nil if none was found.
	Witness []float64
	Stats   Stats
}

// MaxOutput computes the maximum of output neuron outIndex over the region.
// This is the paper's "maximum lateral velocity when a vehicle exists on
// the left" query.
func MaxOutput(net *nn.Network, region *InputRegion, outIndex int, opts Options) (*MaxResult, error) {
	if outIndex < 0 || outIndex >= net.OutputDim() {
		return nil, fmt.Errorf("verify: output index %d of %d", outIndex, net.OutputDim())
	}
	start := time.Now()
	nb, err := prepareBounds(net, region, opts)
	if err != nil {
		return nil, err
	}
	enc, err := encode(net, region, nb, encodeOptions{prefixLayers: -1})
	if err != nil {
		return nil, err
	}
	return maxWithEncoding(enc, outIndex, opts, start)
}

// maxWithEncoding runs the MaxOutput MILP on an already-built encoding.
// The encoding's model is mutated (objective + direction) and solved.
func maxWithEncoding(enc *encoding, outIndex int, opts Options, start time.Time) (*MaxResult, error) {
	enc.model.SetObjective(enc.outputs[outIndex], 1)
	enc.model.SetMaximize(true)

	res, err := milp.Solve(milp.Problem{Model: enc.model, Integers: enc.binaries}, opts.milpOptions(start))
	if err != nil {
		return nil, err
	}
	out := &MaxResult{Stats: enc.stats(res, start)}
	switch res.Status {
	case milp.Optimal:
		out.Exact = true
		out.Value = res.Objective
		out.UpperBound = res.Objective
		out.Witness = extractWitness(enc, res.X)
	case milp.Infeasible:
		return nil, fmt.Errorf("verify: region is empty (MILP infeasible)")
	default: // time/node limits
		out.UpperBound = res.Bound
		if res.HasSolution {
			out.Value = res.Objective
			out.Witness = extractWitness(enc, res.X)
		} else {
			out.Value = math.Inf(-1)
		}
	}
	return out, nil
}

// ProveResult is the answer to a ProveUpperBound query.
type ProveResult struct {
	Outcome Outcome
	// Threshold echoes the bound that was checked.
	Threshold float64
	// CounterExample is an input with output > Threshold when Violated.
	CounterExample []float64
	// CounterValue is the network output at the counterexample.
	CounterValue float64
	Stats        Stats
}

// ProveUpperBound proves output[outIndex] ≤ threshold over the region, or
// returns a counterexample. This is Table II's last row: "prove that the
// lateral velocity can never be larger than 3 m/s".
//
// The query is encoded as a feasibility problem: the output is constrained
// to exceed the threshold and branch-and-bound searches for any integer-
// feasible point; infeasibility proves the bound.
func ProveUpperBound(net *nn.Network, region *InputRegion, outIndex int, threshold float64, opts Options) (*ProveResult, error) {
	if outIndex < 0 || outIndex >= net.OutputDim() {
		return nil, fmt.Errorf("verify: output index %d of %d", outIndex, net.OutputDim())
	}
	start := time.Now()
	nb, err := prepareBounds(net, region, opts)
	if err != nil {
		return nil, err
	}

	pr := &ProveResult{Threshold: threshold}
	// Fast path: interval analysis alone may already prove the bound.
	if nb.Output()[outIndex].Hi <= threshold {
		pr.Outcome = Proved
		stable, total := nb.StableNeurons()
		pr.Stats = Stats{Elapsed: time.Since(start), StableNeurons: stable, HiddenNeurons: total}
		return pr, nil
	}

	enc, err := encode(net, region, nb, encodeOptions{prefixLayers: -1})
	if err != nil {
		return nil, err
	}
	// Feasibility of "output strictly above threshold": maximize the output
	// subject to output ≥ threshold; any feasible point is a counterexample,
	// infeasibility is a proof.
	y := enc.outputs[outIndex]
	lo, hi := enc.model.Bounds(y)
	enc.model.SetBounds(y, math.Max(lo, threshold), math.Max(hi, threshold))
	enc.model.SetObjective(y, 1)
	enc.model.SetMaximize(true)

	res, err := milp.Solve(milp.Problem{Model: enc.model, Integers: enc.binaries}, opts.milpOptions(start))
	if err != nil {
		return nil, err
	}
	pr.Stats = enc.stats(res, start)
	switch {
	case res.Status == milp.Infeasible:
		pr.Outcome = Proved
	case res.HasSolution && res.Objective > threshold+1e-7:
		pr.Outcome = Violated
		pr.CounterExample = extractWitness(enc, res.X)
		pr.CounterValue = net.Forward(pr.CounterExample)[outIndex]
	case res.Status == milp.Optimal:
		// Optimum exists but does not exceed the threshold: the region
		// touches the threshold at most; that still proves ≤.
		pr.Outcome = Proved
	default:
		pr.Outcome = Timeout
	}
	return pr, nil
}

// MaxOverOutputs returns the maximum over several output neurons (one MILP
// per output — a disjunction solved as independent problems, concurrently
// when opts.Parallel is set). The verifier uses it to bound every mixture
// component's μ_lat, which soundly bounds the mixture mean (see package
// gmm). With Parallel, Stats.Elapsed sums per-query times and so exceeds
// wall-clock time.
//
// Bound preparation (interval propagation plus optional LP tightening) and
// the MILP encoding are shared across the outputs: the network is encoded
// once and each per-output solve only swaps the objective on a clone,
// instead of re-encoding the whole network per output.
func MaxOverOutputs(net *nn.Network, region *InputRegion, outIndices []int, opts Options) (*MaxResult, error) {
	if len(outIndices) == 0 {
		return nil, fmt.Errorf("verify: MaxOverOutputs needs at least one output index")
	}
	for _, oi := range outIndices {
		if oi < 0 || oi >= net.OutputDim() {
			return nil, fmt.Errorf("verify: output index %d of %d", oi, net.OutputDim())
		}
	}
	start := time.Now()
	nb, err := prepareBounds(net, region, opts)
	if err != nil {
		return nil, err
	}
	shared, err := encode(net, region, nb, encodeOptions{prefixLayers: -1})
	if err != nil {
		return nil, err
	}
	prepElapsed := time.Since(start)

	// Each per-output query runs against its own clock: the full TimeLimit
	// applies to every MILP (as it did when each output re-encoded from
	// scratch) and per-query Elapsed stats stay disjoint, so their sum
	// remains meaningful in sequential mode.
	//
	// With Parallel and the auto worker count, the core budget is divided
	// across the concurrent queries instead of letting each MILP claim all
	// of GOMAXPROCS (K queries × P workers would oversubscribe the CPU and
	// hold K×P dense tableaus). An explicit Workers value is honored as-is.
	innerOpts := opts
	if opts.Parallel && opts.Workers == 0 {
		innerOpts.Workers = runtime.GOMAXPROCS(0) / len(outIndices)
		if innerOpts.Workers < 1 {
			innerOpts.Workers = 1
		}
	}
	solveOne := func(out int) (*MaxResult, error) {
		enc := shared.withModelClone()
		return maxWithEncoding(enc, out, innerOpts, time.Now())
	}

	results := make([]*MaxResult, len(outIndices))
	errs := make([]error, len(outIndices))
	if opts.Parallel {
		var wg sync.WaitGroup
		for i, oi := range outIndices {
			wg.Add(1)
			go func(slot, out int) {
				defer wg.Done()
				results[slot], errs[slot] = solveOne(out)
			}(i, oi)
		}
		wg.Wait()
	} else {
		for i, oi := range outIndices {
			results[i], errs[i] = solveOne(oi)
		}
	}
	best := &MaxResult{Exact: true, Value: math.Inf(-1), UpperBound: math.Inf(-1)}
	best.Stats.Elapsed = prepElapsed // shared bound preparation + encoding, counted once
	for i, r := range results {
		if errs[i] != nil {
			return nil, errs[i]
		}
		best.Stats.Elapsed += r.Stats.Elapsed
		best.Stats.Nodes += r.Stats.Nodes
		best.Stats.LPPivots += r.Stats.LPPivots
		best.Stats.Binaries = r.Stats.Binaries
		best.Stats.StableNeurons = r.Stats.StableNeurons
		best.Stats.HiddenNeurons = r.Stats.HiddenNeurons
		if r.Value > best.Value {
			best.Value = r.Value
			best.Witness = r.Witness
		}
		if r.UpperBound > best.UpperBound {
			best.UpperBound = r.UpperBound
		}
		if !r.Exact {
			best.Exact = false
		}
	}
	return best, nil
}

// prepareBounds runs interval propagation (plus optional LP tightening)
// over the region box.
func prepareBounds(net *nn.Network, region *InputRegion, opts Options) (*bounds.NetworkBounds, error) {
	if err := region.Validate(net); err != nil {
		return nil, err
	}
	nb, err := bounds.Propagate(net, region.Box)
	if err != nil {
		return nil, err
	}
	if opts.Tighten {
		return TightenLPWorkers(net, region, nb, opts.Workers)
	}
	return nb, nil
}

func remaining(limit time.Duration, start time.Time) time.Duration {
	if limit <= 0 {
		return 0
	}
	rem := limit - time.Since(start)
	if rem <= 0 {
		return time.Nanosecond // already exhausted; force immediate timeout
	}
	return rem
}

func extractWitness(e *encoding, x []float64) []float64 {
	w := make([]float64, len(e.inputs))
	for i, v := range e.inputs {
		w[i] = x[v]
	}
	return w
}

// stats assembles query statistics from an encoding and a MILP result.
func (e *encoding) stats(res *milp.Result, start time.Time) Stats {
	stable, total := e.nb.StableNeurons()
	return Stats{
		Elapsed:       time.Since(start),
		Nodes:         res.Nodes,
		LPPivots:      res.LPPivots,
		Binaries:      len(e.binaries),
		StableNeurons: stable,
		HiddenNeurons: total,
	}
}
