package verify

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/milp"
	"repro/internal/nn"
)

// Outcome classifies a verification result.
type Outcome int

// Possible outcomes.
const (
	// Proved means the property was established for the whole region.
	Proved Outcome = iota
	// Violated means a concrete counterexample input was found.
	Violated
	// Timeout means resources ran out before a conclusion — the paper's
	// "n.a. (unable to find maximum)" row. The result still carries the
	// anytime bounds proven up to the interruption.
	Timeout
)

// String returns a readable outcome name.
func (o Outcome) String() string {
	switch o {
	case Proved:
		return "proved"
	case Violated:
		return "violated"
	case Timeout:
		return "timeout"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Options tune a verification run.
type Options struct {
	// TimeLimit bounds each MILP solve in the free query functions (and
	// each per-output MILP in MaxOverOutputs); 0 means unlimited. The
	// compiled API (Compile / Compiled methods, pkg/vnn) uses context
	// deadlines instead, which also cover bound tightening; TimeLimit is
	// kept for the convenience wrappers.
	TimeLimit time.Duration
	// MaxNodes bounds branch-and-bound nodes; 0 means unlimited.
	MaxNodes int
	// Tighten selects LP-based bound tightening before encoding
	// (slower preprocessing, smaller search trees).
	Tighten bool
	// Parallel lets MaxOverOutputs solve its per-output MILPs concurrently
	// (they are independent problems); single queries are unaffected.
	Parallel bool
	// Workers is the number of branch-and-bound workers inside each MILP
	// solve, and the fan-out of TightenLP's per-neuron LPs: 0 means
	// GOMAXPROCS, 1 forces the sequential engine. For any fixed value the
	// underlying search is deterministic.
	Workers int
	// Progress, when non-nil, streams incumbent/bound/node events from
	// every MILP solve the query runs (see milp.Options.Progress).
	Progress func(milp.Event)
}

// milpOptions assembles the branch-and-bound options for one solve.
// Deadlines and cancellation travel via context, not options.
func (o Options) milpOptions() milp.Options {
	return milp.Options{
		MaxNodes: o.MaxNodes,
		Workers:  o.Workers,
		Progress: o.Progress,
	}
}

// queryContext converts the legacy TimeLimit into a context deadline for
// the free query functions.
func (o Options) queryContext() (context.Context, context.CancelFunc) {
	return perQueryContext(context.Background(), o.TimeLimit)
}

// Stats describes the effort a query took.
type Stats struct {
	Elapsed       time.Duration
	Nodes         int
	LPPivots      int
	Binaries      int // unstable neurons that required an indicator
	StableNeurons int // neurons encoded linearly thanks to interval bounds
	HiddenNeurons int
}

// MaxResult is the answer to a MaxOutput query.
type MaxResult struct {
	// Exact reports whether Value is the proven maximum (false on timeout).
	Exact bool
	// Value is the maximum output value found (a lower bound on the true
	// maximum when !Exact and a witness exists).
	Value float64
	// UpperBound is the proven upper bound from branch-and-bound
	// (equals Value when Exact).
	UpperBound float64
	// Witness is an input achieving Value, nil if none was found.
	Witness []float64
	Stats   Stats
}

// MaxOutput computes the maximum of output neuron outIndex over the region.
// This is the paper's "maximum lateral velocity when a vehicle exists on
// the left" query. It is a convenience wrapper that compiles the network
// for one query; to run several queries, Compile once and use the
// Compiled methods (or the public pkg/vnn API).
func MaxOutput(net *nn.Network, region *InputRegion, outIndex int, opts Options) (*MaxResult, error) {
	start := time.Now()
	ctx, cancel := opts.queryContext()
	defer cancel()
	c, err := Compile(ctx, net, region, opts)
	if err != nil {
		return nil, err
	}
	res, err := c.MaxOutput(ctx, outIndex, opts)
	if err != nil {
		return nil, err
	}
	res.Stats.Elapsed = time.Since(start) // include compilation, as before
	return res, nil
}

// solveObjective sets Σ coeffs[k]·output[k] as the (maximized) objective on
// the encoding's model and runs the MILP under ctx. The encoding's model is
// mutated; callers pass a clone when the encoding is shared.
func solveObjective(ctx context.Context, enc *encoding, coeffs map[int]float64, opts Options) (*milp.Result, error) {
	for oi, cf := range coeffs {
		enc.model.SetObjective(enc.outputs[oi], cf)
	}
	enc.model.SetMaximize(true)
	return milp.SolveCtx(ctx, milp.Problem{Model: enc.model, Integers: enc.binaries}, opts.milpOptions())
}

// maxWithEncoding runs a max-objective MILP on an already-built encoding
// and shapes the result, including the anytime bounds on interruption.
func maxWithEncoding(ctx context.Context, enc *encoding, coeffs map[int]float64, opts Options) (*MaxResult, error) {
	start := time.Now()
	res, err := solveObjective(ctx, enc, coeffs, opts)
	if err != nil {
		return nil, err
	}
	out := &MaxResult{Stats: enc.stats(res, start)}
	switch res.Status {
	case milp.Optimal:
		out.Exact = true
		out.Value = res.Objective
		out.UpperBound = res.Objective
		out.Witness = extractWitness(enc, res.X)
	case milp.Infeasible:
		return nil, fmt.Errorf("verify: region is empty (MILP infeasible)")
	default: // deadline, cancellation, or node limits — the anytime answer
		out.UpperBound = res.Bound
		// The interval bound from compilation is always proven; a solve
		// interrupted before establishing anything better falls back to it
		// instead of reporting a vacuous +Inf.
		if ivb := enc.intervalBound(coeffs); ivb < out.UpperBound {
			out.UpperBound = ivb
		}
		if res.HasSolution {
			out.Value = res.Objective
			out.Witness = extractWitness(enc, res.X)
		} else {
			out.Value = math.Inf(-1)
		}
	}
	return out, nil
}

// ProveResult is the answer to a ProveUpperBound query.
type ProveResult struct {
	Outcome Outcome
	// Threshold echoes the bound that was checked.
	Threshold float64
	// CounterExample is an input with output > Threshold when Violated.
	CounterExample []float64
	// CounterValue is the network output at the counterexample.
	CounterValue float64
	// BestBound is the tightest proven upper bound on the queried output
	// (or functional) over the region when the query ended, whatever the
	// outcome — the anytime answer a Timeout still carries. When Proved,
	// BestBound ≤ Threshold.
	BestBound float64
	Stats     Stats
}

// ProveUpperBound proves output[outIndex] ≤ threshold over the region, or
// returns a counterexample. This is Table II's last row: "prove that the
// lateral velocity can never be larger than 3 m/s". It is a convenience
// wrapper that compiles the network for one query; to run several queries,
// Compile once and use the Compiled methods (or the public pkg/vnn API).
func ProveUpperBound(net *nn.Network, region *InputRegion, outIndex int, threshold float64, opts Options) (*ProveResult, error) {
	start := time.Now()
	ctx, cancel := opts.queryContext()
	defer cancel()
	c, err := Compile(ctx, net, region, opts)
	if err != nil {
		return nil, err
	}
	res, err := c.ProveUpperBound(ctx, outIndex, threshold, opts)
	if err != nil {
		return nil, err
	}
	res.Stats.Elapsed = time.Since(start) // include compilation, as before
	return res, nil
}

// MaxOverOutputs returns the maximum over several output neurons (one MILP
// per output — a disjunction solved as independent problems, concurrently
// when opts.Parallel is set). The verifier uses it to bound every mixture
// component's μ_lat, which soundly bounds the mixture mean (see package
// gmm). With Parallel, Stats.Elapsed sums per-query times and so exceeds
// wall-clock time.
//
// Bound preparation (interval propagation plus optional LP tightening) and
// the MILP encoding are shared across the outputs: the network is compiled
// once and each per-output solve only swaps the objective on a clone,
// instead of re-encoding the whole network per output.
func MaxOverOutputs(net *nn.Network, region *InputRegion, outIndices []int, opts Options) (*MaxResult, error) {
	start := time.Now()
	// The outer context is unlimited: as documented on Options.TimeLimit,
	// the per-query budget applies to every per-output MILP on its own
	// clock (handled inside Compiled.MaxOverOutputs), not to the batch.
	ctx := context.Background()
	c, err := Compile(ctx, net, region, opts)
	if err != nil {
		return nil, err
	}
	prepElapsed := time.Since(start)
	res, err := c.MaxOverOutputs(ctx, outIndices, opts)
	if err != nil {
		return nil, err
	}
	// Shared bound preparation + encoding, counted once.
	res.Stats.Elapsed += prepElapsed
	return res, nil
}

func extractWitness(e *encoding, x []float64) []float64 {
	w := make([]float64, len(e.inputs))
	for i, v := range e.inputs {
		w[i] = x[v]
	}
	return w
}

// stats assembles query statistics from an encoding and a MILP result.
func (e *encoding) stats(res *milp.Result, start time.Time) Stats {
	stable, total := e.nb.StableNeurons()
	return Stats{
		Elapsed:       time.Since(start),
		Nodes:         res.Nodes,
		LPPivots:      res.LPPivots,
		Binaries:      len(e.binaries),
		StableNeurons: stable,
		HiddenNeurons: total,
	}
}
