package verify

import (
	"context"
	"fmt"
	"time"

	"repro/internal/lp"
	"repro/internal/nn"
)

// BoundLadder holds the three successively tighter upper bounds the
// library can compute for an output over a region, with their costs:
//
//	Interval ≥ Relaxation ≥ Exact
//
// Interval analysis is linear-time, the LP relaxation solves one LP, and
// the exact bound runs full branch-and-bound. The ladder quantifies the
// paper's Sec. II (B) claim that testing-adjacent static analyses are cheap
// but imprecise, and complete symbolic reasoning is precise but expensive.
type BoundLadder struct {
	Interval        float64
	IntervalTime    time.Duration
	Relaxation      float64
	RelaxationTime  time.Duration
	Exact           float64
	ExactTime       time.Duration
	ExactConclusive bool
}

// RelaxationBound computes the LP-relaxation upper bound of output
// outIndex over the region: the MILP encoding with every ReLU indicator
// relaxed to [0,1], solved once. It is always an upper bound on the true
// maximum (the relaxation contains every integer-feasible point) and is
// the root bound branch-and-bound starts from.
func RelaxationBound(net *nn.Network, region *InputRegion, outIndex int, opts Options) (float64, error) {
	if outIndex < 0 || outIndex >= net.OutputDim() {
		return 0, fmt.Errorf("verify: output index %d of %d", outIndex, net.OutputDim())
	}
	ctx, cancel := opts.queryContext()
	defer cancel()
	nb, err := prepareBounds(ctx, net, region, opts)
	if err != nil {
		return 0, err
	}
	enc, err := encode(net, region, nb, encodeOptions{relaxBinaries: true, prefixLayers: -1})
	if err != nil {
		return 0, err
	}
	enc.model.SetObjective(enc.outputs[outIndex], 1)
	enc.model.SetMaximize(true)
	sol, err := lp.Solve(enc.model, lp.Options{})
	if err != nil {
		return 0, err
	}
	if sol.Status != lp.Optimal {
		return 0, fmt.Errorf("verify: relaxation LP %v", sol.Status)
	}
	return sol.Objective, nil
}

// Ladder computes all three bounds for one output over a region.
func Ladder(net *nn.Network, region *InputRegion, outIndex int, opts Options) (*BoundLadder, error) {
	out := &BoundLadder{}

	start := time.Now()
	nb, err := prepareBounds(context.Background(), net, region, Options{}) // plain intervals
	if err != nil {
		return nil, err
	}
	out.Interval = nb.Output()[outIndex].Hi
	out.IntervalTime = time.Since(start)

	start = time.Now()
	relax, err := RelaxationBound(net, region, outIndex, opts)
	if err != nil {
		return nil, err
	}
	out.Relaxation = relax
	out.RelaxationTime = time.Since(start)

	mx, err := MaxOutput(net, region, outIndex, opts)
	if err != nil {
		return nil, err
	}
	out.Exact = mx.Value
	out.ExactTime = mx.Stats.Elapsed
	out.ExactConclusive = mx.Exact
	if !mx.Exact {
		out.Exact = mx.UpperBound // still a sound upper bound
	}
	return out, nil
}
