package verify

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/nn"
)

func TestResilienceLinearExact(t *testing.T) {
	// y = x on [-1, 1], nominal x0 = 0, threshold 0.5: the true resilience
	// radius is exactly 0.5.
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}}, B: []float64{0}, Act: nn.Identity},
	}}
	dom := []bounds.Interval{{Lo: -1, Hi: 1}}
	res, err := Resilience(net, []float64{0}, dom, 0, 0.5, ResilienceOptions{MaxIterations: 16})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Epsilon-0.5) > 0.01 {
		t.Fatalf("epsilon = %g, want ~0.5", res.Epsilon)
	}
	if res.Breaking == nil || res.BreakingValue <= 0.5 {
		t.Fatalf("breaking point missing or non-violating: %v -> %g", res.Breaking, res.BreakingValue)
	}
	if !res.Certified {
		t.Fatal("a positive radius was certified; Certified must be true")
	}
}

func TestResilienceWholeDomainSafe(t *testing.T) {
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}}, B: []float64{0}, Act: nn.Identity},
	}}
	dom := []bounds.Interval{{Lo: -1, Hi: 1}}
	res, err := Resilience(net, []float64{0}, dom, 0, 5, ResilienceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epsilon != 1 || res.Breaking != nil {
		t.Fatalf("whole domain is safe: eps=%g breaking=%v", res.Epsilon, res.Breaking)
	}
	if res.Iterations != 1 {
		t.Fatalf("full-radius fast path not taken: %d iterations", res.Iterations)
	}
}

func TestResilienceValidation(t *testing.T) {
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}}, B: []float64{0}, Act: nn.Identity},
	}}
	dom := []bounds.Interval{{Lo: -1, Hi: 1}}
	if _, err := Resilience(net, []float64{0, 0}, dom, 0, 1, ResilienceOptions{}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	if _, err := Resilience(net, []float64{5}, dom, 0, 1, ResilienceOptions{}); err == nil {
		t.Fatal("nominal outside domain accepted")
	}
	if _, err := Resilience(net, []float64{0.9}, dom, 0, 0.5, ResilienceOptions{}); err == nil {
		t.Fatal("violating nominal accepted")
	}
}

func TestResilienceCertifiedRadiusIsSound(t *testing.T) {
	// Random ReLU net: inside the certified ball, dense sampling must never
	// violate the threshold.
	rng := rand.New(rand.NewSource(5))
	net := nn.New(nn.Config{Name: "r", InputDim: 2, Hidden: []int{6}, OutputDim: 1, HiddenAct: nn.ReLU, OutputAct: nn.Identity}, rng)
	dom := []bounds.Interval{{Lo: -1, Hi: 1}, {Lo: -1, Hi: 1}}
	x0 := []float64{0.1, -0.2}
	thr := net.Forward(x0)[0] + 0.3
	res, err := Resilience(net, x0, dom, 0, thr, ResilienceOptions{MaxIterations: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epsilon <= 0 {
		t.Skip("no positive radius certified for this seed; nothing to sample")
	}
	for s := 0; s < 2000; s++ {
		x := []float64{
			math.Max(dom[0].Lo, math.Min(dom[0].Hi, x0[0]+(rng.Float64()*2-1)*res.Epsilon)),
			math.Max(dom[1].Lo, math.Min(dom[1].Hi, x0[1]+(rng.Float64()*2-1)*res.Epsilon)),
		}
		if v := net.Forward(x)[0]; v > thr+1e-6 {
			t.Fatalf("violation inside certified ball: %v -> %g > %g", x, v, thr)
		}
	}
}

func TestMinOutput(t *testing.T) {
	// y = relu(x) - 1 on [-1,1]: min = -1 (any x<=0), max = 0 at x=1... max = relu(1)-1 = 0.
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}}, B: []float64{0}, Act: nn.ReLU},
		{W: [][]float64{{1}}, B: []float64{-1}, Act: nn.Identity},
	}}
	region := &InputRegion{Box: []bounds.Interval{{Lo: -1, Hi: 1}}}
	mn, err := MinOutput(net, region, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !mn.Exact || math.Abs(mn.Value+1) > 1e-6 {
		t.Fatalf("min = %g (exact=%v), want -1", mn.Value, mn.Exact)
	}
	mx, err := MaxOutput(net, region, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mx.Value) > 1e-6 {
		t.Fatalf("max = %g, want 0", mx.Value)
	}
	if mn.Value > mx.Value {
		t.Fatal("min exceeds max")
	}
}

func TestMinMaxConsistencyRandom(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed + 30))
		net := nn.New(nn.Config{Name: "m", InputDim: 2, Hidden: []int{5}, OutputDim: 2, HiddenAct: nn.ReLU, OutputAct: nn.Identity}, rng)
		region := &InputRegion{Box: []bounds.Interval{{Lo: -1, Hi: 1}, {Lo: -1, Hi: 1}}}
		mn, err := MinOutput(net, region, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		mx, err := MaxOutput(net, region, 1, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if mn.Value > mx.Value+1e-6 {
			t.Fatalf("seed %d: min %g > max %g", seed, mn.Value, mx.Value)
		}
		// A random point's output must fall between them.
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		v := net.Forward(x)[1]
		if v < mn.Value-1e-6 || v > mx.Value+1e-6 {
			t.Fatalf("seed %d: sample %g outside [%g, %g]", seed, v, mn.Value, mx.Value)
		}
	}
}
