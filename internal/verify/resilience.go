package verify

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/bounds"
	"repro/internal/nn"
)

// ResilienceResult reports the outcome of a Resilience query.
type ResilienceResult struct {
	// Epsilon is the largest certified ℓ∞ perturbation radius: for every
	// input within Epsilon of the nominal point (and inside the domain),
	// the output stays at or below the threshold.
	Epsilon float64
	// Breaking is a concrete violating input found just beyond the
	// certified radius (nil when the search never saw a violation).
	Breaking []float64
	// BreakingValue is the output at Breaking.
	BreakingValue float64
	// Certified reports whether even the smallest probed radius held.
	Certified bool
	// Iterations is the number of binary-search steps (each one MILP query).
	Iterations int
	// Elapsed is the total wall-clock time.
	Elapsed time.Duration
}

// ResilienceOptions tune the binary search.
type ResilienceOptions struct {
	// MaxIterations bounds binary-search steps; 0 means 10.
	MaxIterations int
	// Query forwards options to each ProveUpperBound call.
	Query Options
}

// Resilience computes the maximum ℓ∞ perturbation radius around the nominal
// input x0 under which output[outIndex] provably stays ≤ threshold — the
// "maximum resilience" measure of Cheng et al. (ATVA 2017) that the paper's
// verification methodology builds on. The search space is clipped to the
// given domain box. The nominal point itself must satisfy the property.
func Resilience(net *nn.Network, x0 []float64, domain []bounds.Interval, outIndex int, threshold float64, opts ResilienceOptions) (*ResilienceResult, error) {
	return ResilienceCtx(context.Background(), net, x0, domain, outIndex, threshold, opts)
}

// ResilienceCtx is Resilience under a context. Each probe re-compiles the
// shrunken ball region (the region changes every binary-search step, so
// the encoding cannot be shared) under the context; cancellation or an
// expired deadline ends the search early and returns the largest radius
// certified so far — the anytime answer — with no error.
func ResilienceCtx(ctx context.Context, net *nn.Network, x0 []float64, domain []bounds.Interval, outIndex int, threshold float64, opts ResilienceOptions) (*ResilienceResult, error) {
	start := time.Now()
	if len(x0) != net.InputDim() {
		return nil, fmt.Errorf("verify: nominal point dim %d, network input %d", len(x0), net.InputDim())
	}
	if len(domain) != net.InputDim() {
		return nil, fmt.Errorf("verify: domain dim %d, network input %d", len(domain), net.InputDim())
	}
	for i, iv := range domain {
		if !iv.Contains(x0[i]) {
			return nil, fmt.Errorf("verify: nominal point coordinate %d (%g) outside domain [%g, %g]", i, x0[i], iv.Lo, iv.Hi)
		}
	}
	if v := net.Forward(x0)[outIndex]; v > threshold {
		return nil, fmt.Errorf("verify: nominal point already violates the property (%g > %g)", v, threshold)
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = 10
	}

	// The largest radius that can matter: beyond it the clipped ball is
	// the whole domain.
	hiEps := 0.0
	for i, iv := range domain {
		hiEps = math.Max(hiEps, math.Max(x0[i]-iv.Lo, iv.Hi-x0[i]))
	}

	ballRegion := func(eps float64) *InputRegion {
		box := make([]bounds.Interval, len(x0))
		for i, iv := range domain {
			box[i] = bounds.Interval{
				Lo: math.Max(iv.Lo, x0[i]-eps),
				Hi: math.Min(iv.Hi, x0[i]+eps),
			}
		}
		return &InputRegion{Box: box}
	}

	res := &ResilienceResult{}
	lo, hi := 0.0, hiEps // lo = certified, hi = not certified (or untested)

	probe := func(eps float64) (*ProveResult, error) {
		pctx, cancel := perQueryContext(ctx, opts.Query.TimeLimit)
		defer cancel()
		c, err := Compile(pctx, net, ballRegion(eps), opts.Query)
		if err != nil {
			return nil, err
		}
		return c.ProveUpperBound(pctx, outIndex, threshold, opts.Query)
	}

	// First probe the full radius: everything may already be safe.
	pr, err := probe(hiEps)
	if err != nil {
		return nil, err
	}
	res.Iterations++
	if pr.Outcome == Proved {
		res.Epsilon = hiEps
		res.Certified = true
		res.Elapsed = time.Since(start)
		return res, nil
	}
	if pr.Outcome == Violated {
		res.Breaking = pr.CounterExample
		res.BreakingValue = pr.CounterValue
	}

	for res.Iterations < maxIter {
		if ctx.Err() != nil {
			break // anytime: report the largest radius certified so far
		}
		mid := (lo + hi) / 2
		pr, err := probe(mid)
		if err != nil {
			return nil, err
		}
		res.Iterations++
		switch pr.Outcome {
		case Proved:
			lo = mid
		case Violated:
			hi = mid
			res.Breaking = pr.CounterExample
			res.BreakingValue = pr.CounterValue
		default: // Timeout: conservatively treat as uncertified
			hi = mid
		}
	}
	res.Epsilon = lo
	res.Certified = lo > 0 || res.Breaking == nil
	res.Elapsed = time.Since(start)
	return res, nil
}

// MinOutput computes the minimum of output neuron outIndex over the region.
// The result reuses MaxResult with mirrored semantics: Value is the minimum
// found and UpperBound holds the proven *lower* bound from branch-and-bound
// (equal to Value when Exact).
func MinOutput(net *nn.Network, region *InputRegion, outIndex int, opts Options) (*MaxResult, error) {
	neg := negateOutput(net, outIndex)
	res, err := MaxOutput(neg, region, 0, opts)
	if err != nil {
		return nil, err
	}
	res.Value = -res.Value
	res.UpperBound = -res.UpperBound
	return res, nil
}

// negateOutput builds a single-output copy of net computing −output[idx]
// (weights of the final linear layer are negated; hidden layers shared
// structurally via clone).
func negateOutput(net *nn.Network, idx int) *nn.Network {
	cl := net.Clone()
	last := cl.Layers[len(cl.Layers)-1]
	row := make([]float64, len(last.W[idx]))
	for i, w := range last.W[idx] {
		row[i] = -w
	}
	cl.Layers[len(cl.Layers)-1] = &nn.Layer{
		W:   [][]float64{row},
		B:   []float64{-last.B[idx]},
		Act: last.Act,
	}
	cl.OutputNames = nil
	return cl
}
