package verify

import (
	"fmt"
	"math"
	"time"

	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/nn"
)

// MaxOverOutputsSingleMILP answers the same query as MaxOverOutputs — the
// maximum over several output neurons across the region — with one MILP
// instead of one per output. The disjunction max_k y_k is encoded with
// selector binaries s_k:
//
//	maximize t
//	t ≤ y_k + M_k·(1−s_k)  for every k,   Σ_k s_k = 1
//
// where M_k comes from the outputs' interval bounds. One solve amortizes
// the shared network encoding across components but adds K binaries; which
// variant wins is workload-dependent (the per-output form also
// parallelizes; see Options.Parallel).
func MaxOverOutputsSingleMILP(net *nn.Network, region *InputRegion, outIndices []int, opts Options) (*MaxResult, error) {
	if len(outIndices) == 0 {
		return nil, fmt.Errorf("verify: MaxOverOutputsSingleMILP needs at least one output index")
	}
	for _, oi := range outIndices {
		if oi < 0 || oi >= net.OutputDim() {
			return nil, fmt.Errorf("verify: output index %d of %d", oi, net.OutputDim())
		}
	}
	start := time.Now()
	ctx, cancel := opts.queryContext()
	defer cancel()
	nb, err := prepareBounds(ctx, net, region, opts)
	if err != nil {
		return nil, err
	}
	enc, err := encode(net, region, nb, encodeOptions{prefixLayers: -1})
	if err != nil {
		return nil, err
	}

	// Bounds for t and the big-M constants.
	outB := nb.Output()
	tHi := math.Inf(-1)
	tLo := math.Inf(1)
	for _, oi := range outIndices {
		tHi = math.Max(tHi, outB[oi].Hi)
		tLo = math.Min(tLo, outB[oi].Lo)
	}
	t := enc.model.AddVariable(tLo, tHi, "t.max")
	selectors := make([]int, len(outIndices))
	sumTerms := make([]lp.Term, 0, len(outIndices))
	for i, oi := range outIndices {
		s := enc.model.AddVariable(0, 1, fmt.Sprintf("sel%d", i))
		selectors[i] = s
		sumTerms = append(sumTerms, lp.Term{Var: s, Coeff: 1})
		// t − y_k − M_k + M_k·s_k ≤ 0  with  M_k = tHi − Lo_k.
		mk := tHi - outB[oi].Lo
		enc.model.AddConstraint([]lp.Term{
			{Var: t, Coeff: 1},
			{Var: enc.outputs[oi], Coeff: -1},
			{Var: s, Coeff: mk},
		}, lp.LE, mk, fmt.Sprintf("t<=y%d", oi))
	}
	enc.model.AddConstraint(sumTerms, lp.EQ, 1, "one-selector")
	enc.model.SetObjective(t, 1)
	enc.model.SetMaximize(true)

	res, err := milp.SolveCtx(ctx, milp.Problem{
		Model:    enc.model,
		Integers: append(append([]int(nil), enc.binaries...), selectors...),
	}, opts.milpOptions())
	if err != nil {
		return nil, err
	}
	out := &MaxResult{Stats: enc.stats(res, start)}
	out.Stats.Binaries = len(enc.binaries) // selectors are bookkeeping, not neurons
	switch res.Status {
	case milp.Optimal:
		out.Exact = true
		out.Value = res.Objective
		out.UpperBound = res.Objective
		out.Witness = extractWitness(enc, res.X)
	case milp.Infeasible:
		return nil, fmt.Errorf("verify: region is empty (MILP infeasible)")
	default:
		out.UpperBound = res.Bound
		if res.HasSolution {
			out.Value = res.Objective
			out.Witness = extractWitness(enc, res.X)
		} else {
			out.Value = math.Inf(-1)
		}
	}
	return out, nil
}
