// Package quant implements post-training fixed-point quantization of
// networks — the paper's concluding remark (ii): quantized neural networks
// might make verification more scalable. Weights and biases are snapped to
// a symmetric b-bit integer grid per layer; the quantized model is returned
// as an ordinary nn.Network (with exactly representable weights), so the
// MILP verifier in package verify applies to it unchanged — the in-repo
// analogue of the SMT bitvector encoding the paper cites.
package quant

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// Info reports what quantization did to a network.
type Info struct {
	Bits int
	// Scales holds the per-layer weight scale (value of one integer step).
	Scales []float64
	// MaxWeightError is the largest absolute weight perturbation.
	MaxWeightError float64
	// DistinctWeights counts distinct weight values after quantization.
	DistinctWeights int
}

// Quantize returns a copy of net whose weights and biases are rounded to a
// symmetric signed b-bit grid per layer (range ±(2^(b-1)−1) steps), plus
// quantization statistics. bits must be in [2, 16].
func Quantize(net *nn.Network, bits int) (*nn.Network, *Info, error) {
	if bits < 2 || bits > 16 {
		return nil, nil, fmt.Errorf("quant: bits %d outside [2, 16]", bits)
	}
	q := net.Clone()
	q.Name = fmt.Sprintf("%s-int%d", net.Name, bits)
	info := &Info{Bits: bits}
	levels := float64(int(1)<<(bits-1)) - 1 // e.g. 127 for int8
	distinct := map[float64]struct{}{}
	for li, l := range q.Layers {
		// Scale from the largest magnitude in the layer (weights + biases).
		maxAbs := 0.0
		for _, row := range l.W {
			for _, w := range row {
				if a := math.Abs(w); a > maxAbs {
					maxAbs = a
				}
			}
		}
		for _, b := range l.B {
			if a := math.Abs(b); a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / levels
		if scale == 0 {
			scale = 1 // all-zero layer: any scale works
		}
		info.Scales = append(info.Scales, scale)
		snap := func(v float64) float64 {
			iv := math.Round(v / scale)
			if iv > levels {
				iv = levels
			}
			if iv < -levels {
				iv = -levels
			}
			nv := iv * scale
			if e := math.Abs(nv - v); e > info.MaxWeightError {
				info.MaxWeightError = e
			}
			distinct[nv] = struct{}{}
			return nv
		}
		for r := range l.W {
			for c := range l.W[r] {
				l.W[r][c] = snap(l.W[r][c])
			}
		}
		for r := range l.B {
			l.B[r] = snap(l.B[r])
		}
		_ = li
	}
	info.DistinctWeights = len(distinct)
	return q, info, nil
}

// IntWeights returns the integer grid representation of one layer under the
// given bit width: integers plus the scale such that w ≈ int·scale.
// It mirrors what a bitvector SMT encoding would operate on.
func IntWeights(l *nn.Layer, bits int) (ints [][]int64, scale float64, err error) {
	if bits < 2 || bits > 16 {
		return nil, 0, fmt.Errorf("quant: bits %d outside [2, 16]", bits)
	}
	levels := float64(int(1)<<(bits-1)) - 1
	maxAbs := 0.0
	for _, row := range l.W {
		for _, w := range row {
			if a := math.Abs(w); a > maxAbs {
				maxAbs = a
			}
		}
	}
	scale = maxAbs / levels
	if scale == 0 {
		scale = 1
	}
	ints = make([][]int64, len(l.W))
	for r, row := range l.W {
		ints[r] = make([]int64, len(row))
		for c, w := range row {
			ints[r][c] = int64(math.Round(w / scale))
		}
	}
	return ints, scale, nil
}

// OutputDeviation empirically measures the largest output difference
// between net and its quantized version over the provided probe inputs.
func OutputDeviation(net, quantized *nn.Network, probes [][]float64) float64 {
	worst := 0.0
	for _, x := range probes {
		a := net.Forward(x)
		b := quantized.Forward(x)
		for i := range a {
			if d := math.Abs(a[i] - b[i]); d > worst {
				worst = d
			}
		}
	}
	return worst
}
