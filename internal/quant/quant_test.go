package quant

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

func testNet(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	return nn.New(nn.Config{
		Name: "q", InputDim: 4, Hidden: []int{8, 8}, OutputDim: 2,
		HiddenAct: nn.ReLU, OutputAct: nn.Identity,
	}, rng)
}

func TestQuantizeValidatesBits(t *testing.T) {
	net := testNet(1)
	for _, bits := range []int{0, 1, 17, -8} {
		if _, _, err := Quantize(net, bits); err == nil {
			t.Fatalf("bits=%d accepted", bits)
		}
	}
}

func TestQuantizePreservesShape(t *testing.T) {
	net := testNet(2)
	q, info, err := Quantize(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("quantized network invalid: %v", err)
	}
	if q.InputDim() != net.InputDim() || q.OutputDim() != net.OutputDim() {
		t.Fatal("shape changed")
	}
	if len(info.Scales) != len(net.Layers) {
		t.Fatalf("scales = %d, want %d", len(info.Scales), len(net.Layers))
	}
	if q.Name == net.Name {
		t.Fatal("name should mark quantization")
	}
	// Original must be untouched.
	if net.Name != "q" {
		t.Fatal("original renamed")
	}
}

func TestQuantizeErrorBounds(t *testing.T) {
	net := testNet(3)
	for _, bits := range []int{4, 8, 12} {
		q, info, err := Quantize(net, bits)
		if err != nil {
			t.Fatal(err)
		}
		// Every weight error is at most half a step.
		for li, l := range q.Layers {
			step := info.Scales[li]
			for r := range l.W {
				for c := range l.W[r] {
					if d := math.Abs(l.W[r][c] - net.Layers[li].W[r][c]); d > step/2+1e-12 {
						t.Fatalf("bits=%d layer %d: weight error %g > step/2 %g", bits, li, d, step/2)
					}
				}
			}
		}
		if info.MaxWeightError < 0 {
			t.Fatal("negative error")
		}
	}
}

func TestMoreBitsLessError(t *testing.T) {
	net := testNet(4)
	_, i4, err := Quantize(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, i12, err := Quantize(net, 12)
	if err != nil {
		t.Fatal(err)
	}
	if i12.MaxWeightError >= i4.MaxWeightError {
		t.Fatalf("12-bit error %g should beat 4-bit %g", i12.MaxWeightError, i4.MaxWeightError)
	}
}

func TestWeightsOnGrid(t *testing.T) {
	net := testNet(5)
	q, info, err := Quantize(net, 6)
	if err != nil {
		t.Fatal(err)
	}
	for li, l := range q.Layers {
		scale := info.Scales[li]
		for _, row := range l.W {
			for _, w := range row {
				steps := w / scale
				if math.Abs(steps-math.Round(steps)) > 1e-9 {
					t.Fatalf("weight %g not on grid of %g", w, scale)
				}
			}
		}
	}
	if info.DistinctWeights <= 0 || info.DistinctWeights > (1<<6)*len(q.Layers) {
		t.Fatalf("distinct weights = %d implausible", info.DistinctWeights)
	}
}

func TestIntWeightsRange(t *testing.T) {
	net := testNet(6)
	ints, scale, err := IntWeights(net.Layers[0], 8)
	if err != nil {
		t.Fatal(err)
	}
	if scale <= 0 {
		t.Fatalf("scale = %g", scale)
	}
	for _, row := range ints {
		for _, v := range row {
			if v < -127 || v > 127 {
				t.Fatalf("int8 weight %d out of range", v)
			}
		}
	}
	if _, _, err := IntWeights(net.Layers[0], 99); err == nil {
		t.Fatal("bad bits accepted")
	}
}

func TestOutputDeviationShrinksWithBits(t *testing.T) {
	net := testNet(7)
	rng := rand.New(rand.NewSource(8))
	probes := make([][]float64, 64)
	for i := range probes {
		probes[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
	}
	q4, _, err := Quantize(net, 4)
	if err != nil {
		t.Fatal(err)
	}
	q12, _, err := Quantize(net, 12)
	if err != nil {
		t.Fatal(err)
	}
	d4 := OutputDeviation(net, q4, probes)
	d12 := OutputDeviation(net, q12, probes)
	if d12 >= d4 {
		t.Fatalf("12-bit deviation %g should beat 4-bit %g", d12, d4)
	}
	if d12 > 0.5 {
		t.Fatalf("12-bit deviation %g implausibly large", d12)
	}
}

func TestQuantizedNetworkStillVerifiable(t *testing.T) {
	// The quantized model is a plain ReLU network: forward works, weights
	// finite — the property the MILP reuse depends on.
	net := testNet(9)
	q, _, err := Quantize(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3, 0.4}
	a, b := net.Forward(x), q.Forward(x)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1 {
			t.Fatalf("outputs diverged wildly: %v vs %v", a, b)
		}
	}
}

func TestZeroLayerScale(t *testing.T) {
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{0, 0}}, B: []float64{0}, Act: nn.Identity},
	}}
	q, info, err := Quantize(net, 8)
	if err != nil {
		t.Fatal(err)
	}
	if q.Layers[0].W[0][0] != 0 || info.Scales[0] != 1 {
		t.Fatalf("all-zero layer mishandled: %v %v", q.Layers[0].W, info.Scales)
	}
}
