package dataval

import (
	"math"
	"strings"
	"testing"

	"repro/internal/train"
)

func sample(x, y []float64) train.Sample { return train.Sample{X: x, Y: y} }

func TestFiniteRule(t *testing.T) {
	r := FiniteRule()
	if r.Check(sample([]float64{1, 2}, []float64{3})) != "" {
		t.Fatal("finite sample rejected")
	}
	if r.Check(sample([]float64{1, math.NaN()}, []float64{3})) == "" {
		t.Fatal("NaN input accepted")
	}
	if r.Check(sample([]float64{1}, []float64{math.Inf(1)})) == "" {
		t.Fatal("Inf label accepted")
	}
}

func TestRangeRule(t *testing.T) {
	r := RangeRule(0, 1)
	if r.Check(sample([]float64{0, 0.5, 1}, nil)) != "" {
		t.Fatal("in-range sample rejected")
	}
	if r.Check(sample([]float64{1.01}, nil)) == "" {
		t.Fatal("out-of-range accepted")
	}
}

func TestDimensionRule(t *testing.T) {
	r := DimensionRule(2, 1)
	if r.Check(sample([]float64{1, 2}, []float64{3})) != "" {
		t.Fatal("correct dims rejected")
	}
	if r.Check(sample([]float64{1}, []float64{3})) == "" {
		t.Fatal("short input accepted")
	}
	if r.Check(sample([]float64{1, 2}, []float64{})) == "" {
		t.Fatal("short label accepted")
	}
}

func TestValidateReport(t *testing.T) {
	data := []train.Sample{
		sample([]float64{0.5}, []float64{0}),
		sample([]float64{2}, []float64{0}),          // range violation
		sample([]float64{math.NaN()}, []float64{0}), // finite violation (and range)
	}
	rep := Validate(data, []Rule{FiniteRule(), RangeRule(0, 1)})
	if rep.Valid() {
		t.Fatal("report claims valid")
	}
	if rep.Samples != 3 {
		t.Fatalf("samples = %d", rep.Samples)
	}
	if rep.PerRule["input-range"] < 1 || rep.PerRule["finite-values"] != 1 {
		t.Fatalf("per-rule counts wrong: %v", rep.PerRule)
	}
	if !strings.Contains(rep.String(), "violations") {
		t.Fatal("report string incomplete")
	}
}

func TestValidateCleanDataset(t *testing.T) {
	data := []train.Sample{sample([]float64{0.1}, []float64{1})}
	rep := Validate(data, []Rule{FiniteRule(), RangeRule(0, 1)})
	if !rep.Valid() || len(rep.Violations) != 0 {
		t.Fatal("clean dataset flagged")
	}
}

func TestSanitize(t *testing.T) {
	data := []train.Sample{
		sample([]float64{0.1}, []float64{0}),
		sample([]float64{5}, []float64{0}),
		sample([]float64{0.9}, []float64{0}),
	}
	clean, removed := Sanitize(data, []Rule{RangeRule(0, 1)})
	if removed != 1 || len(clean) != 2 {
		t.Fatalf("removed=%d len=%d", removed, len(clean))
	}
	if clean[0].X[0] != 0.1 || clean[1].X[0] != 0.9 {
		t.Fatal("order not preserved")
	}
}

func TestCustomRule(t *testing.T) {
	// The case-study shape: forbid positive lateral velocity labels when
	// feature 0 (left occupancy) is set.
	r := NewRule("no-left-move-when-occupied", "safety property holds in data", func(s train.Sample) string {
		if s.X[0] > 0.5 && s.Y[0] > 0 {
			return "moves left while left occupied"
		}
		return ""
	})
	if r.Check(sample([]float64{1}, []float64{0.5})) == "" {
		t.Fatal("risky sample accepted")
	}
	if r.Check(sample([]float64{0}, []float64{0.5})) != "" {
		t.Fatal("safe sample rejected")
	}
	if r.Name() == "" || r.Description() == "" {
		t.Fatal("metadata empty")
	}
}

func TestStats(t *testing.T) {
	data := []train.Sample{
		sample([]float64{1, 10}, nil),
		sample([]float64{3, 10}, nil),
	}
	st := Stats(data)
	if len(st) != 2 {
		t.Fatalf("stats len %d", len(st))
	}
	if st[0].Min != 1 || st[0].Max != 3 || st[0].Mean != 2 || st[0].Std != 1 {
		t.Fatalf("stats[0] = %+v", st[0])
	}
	if st[1].Std != 0 {
		t.Fatalf("constant feature std = %g", st[1].Std)
	}
	if Stats(nil) != nil {
		t.Fatal("empty data should give nil")
	}
}
