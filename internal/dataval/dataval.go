// Package dataval treats training data as a specification artifact
// (paper Sec. II (C)): before a dataset may train a safety-relevant
// predictor, declarative rules check that it contains no forbidden
// behaviour — e.g. no sample in which the recorded driver moved left while
// the left slot was occupied. The package provides the rule machinery,
// violation reports, sanitization, and per-feature statistics; the concrete
// case-study rules live in package core where the feature semantics are
// assembled.
package dataval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/train"
)

// Rule is one validity condition over a single sample.
type Rule interface {
	// Name is a short stable identifier.
	Name() string
	// Description explains the rule for reports.
	Description() string
	// Check returns "" when the sample is valid, otherwise a short reason.
	Check(s train.Sample) string
}

// predicateRule adapts a closure to the Rule interface.
type predicateRule struct {
	name, desc string
	check      func(train.Sample) string
}

func (r *predicateRule) Name() string                { return r.name }
func (r *predicateRule) Description() string         { return r.desc }
func (r *predicateRule) Check(s train.Sample) string { return r.check(s) }

// NewRule builds a rule from a closure. check returns "" for valid samples.
func NewRule(name, desc string, check func(train.Sample) string) Rule {
	return &predicateRule{name: name, desc: desc, check: check}
}

// FiniteRule rejects samples containing NaN or infinite values.
func FiniteRule() Rule {
	return NewRule("finite-values", "every input and label value is finite", func(s train.Sample) string {
		for i, v := range s.X {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Sprintf("x[%d] = %g", i, v)
			}
		}
		for i, v := range s.Y {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Sprintf("y[%d] = %g", i, v)
			}
		}
		return ""
	})
}

// RangeRule enforces that all inputs stay inside [lo, hi].
func RangeRule(lo, hi float64) Rule {
	return NewRule("input-range",
		fmt.Sprintf("every input feature lies in [%g, %g]", lo, hi),
		func(s train.Sample) string {
			for i, v := range s.X {
				if v < lo || v > hi {
					return fmt.Sprintf("x[%d] = %g outside [%g, %g]", i, v, lo, hi)
				}
			}
			return ""
		})
}

// DimensionRule enforces fixed input/label dimensions.
func DimensionRule(xDim, yDim int) Rule {
	return NewRule("dimensions",
		fmt.Sprintf("inputs are %d-dimensional, labels %d-dimensional", xDim, yDim),
		func(s train.Sample) string {
			if len(s.X) != xDim {
				return fmt.Sprintf("len(x) = %d, want %d", len(s.X), xDim)
			}
			if len(s.Y) != yDim {
				return fmt.Sprintf("len(y) = %d, want %d", len(s.Y), yDim)
			}
			return ""
		})
}

// Violation records one rule failure.
type Violation struct {
	SampleIndex int
	Rule        string
	Reason      string
}

// Report is the outcome of validating a dataset.
type Report struct {
	Samples    int
	Violations []Violation
	// PerRule counts violations by rule name.
	PerRule map[string]int
}

// Valid reports whether the dataset passed every rule.
func (r *Report) Valid() bool { return len(r.Violations) == 0 }

// String renders a human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "dataset validation: %d samples, %d violations\n", r.Samples, len(r.Violations))
	names := make([]string, 0, len(r.PerRule))
	for n := range r.PerRule {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  %-28s %d\n", n, r.PerRule[n])
	}
	return b.String()
}

// Validate checks every sample against every rule.
func Validate(data []train.Sample, rules []Rule) *Report {
	rep := &Report{Samples: len(data), PerRule: map[string]int{}}
	for i, s := range data {
		for _, rule := range rules {
			if reason := rule.Check(s); reason != "" {
				rep.Violations = append(rep.Violations, Violation{SampleIndex: i, Rule: rule.Name(), Reason: reason})
				rep.PerRule[rule.Name()]++
			}
		}
	}
	return rep
}

// Sanitize returns the subset of data passing all rules, plus the removed
// count. Order is preserved.
func Sanitize(data []train.Sample, rules []Rule) (clean []train.Sample, removed int) {
	clean = make([]train.Sample, 0, len(data))
outer:
	for _, s := range data {
		for _, rule := range rules {
			if rule.Check(s) != "" {
				removed++
				continue outer
			}
		}
		clean = append(clean, s)
	}
	return clean, removed
}

// FeatureStats summarizes one input feature across a dataset.
type FeatureStats struct {
	Min, Max, Mean, Std float64
}

// Stats computes per-feature statistics; empty data yields nil.
func Stats(data []train.Sample) []FeatureStats {
	if len(data) == 0 {
		return nil
	}
	dim := len(data[0].X)
	out := make([]FeatureStats, dim)
	for i := range out {
		out[i].Min = math.Inf(1)
		out[i].Max = math.Inf(-1)
	}
	for _, s := range data {
		for i, v := range s.X {
			if v < out[i].Min {
				out[i].Min = v
			}
			if v > out[i].Max {
				out[i].Max = v
			}
			out[i].Mean += v
		}
	}
	n := float64(len(data))
	for i := range out {
		out[i].Mean /= n
	}
	for _, s := range data {
		for i, v := range s.X {
			d := v - out[i].Mean
			out[i].Std += d * d
		}
	}
	for i := range out {
		out[i].Std = math.Sqrt(out[i].Std / n)
	}
	return out
}
