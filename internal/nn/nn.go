// Package nn implements the feedforward networks used by the motion
// predictor case study: fully connected layers with ReLU, tanh or identity
// activations, a forward pass that can record every neuron's pre- and
// post-activation value (needed by coverage, traceability and verification),
// and JSON serialization.
//
// The package deliberately contains no training code; see package train.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	// Identity applies no nonlinearity (linear output layers).
	Identity Activation = iota
	// ReLU is max(0, z); the only activation the MILP verifier encodes exactly.
	ReLU
	// Tanh is the smooth saturating activation discussed in the paper's
	// MC/DC argument (one test case satisfies MC/DC as there is no branch).
	Tanh
)

// String returns the conventional lowercase name.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	}
	return fmt.Sprintf("Activation(%d)", int(a))
}

// Apply evaluates the activation at z.
func (a Activation) Apply(z float64) float64 {
	switch a {
	case ReLU:
		if z < 0 {
			return 0
		}
		return z
	case Tanh:
		return math.Tanh(z)
	default:
		return z
	}
}

// Derivative returns dApply/dz at pre-activation z.
func (a Activation) Derivative(z float64) float64 {
	switch a {
	case ReLU:
		if z < 0 {
			return 0
		}
		return 1
	case Tanh:
		th := math.Tanh(z)
		return 1 - th*th
	default:
		return 1
	}
}

// Layer is one dense layer: out = act(W·in + b).
type Layer struct {
	W   [][]float64 `json:"w"` // outDim × inDim
	B   []float64   `json:"b"` // outDim
	Act Activation  `json:"act"`
}

// InDim returns the layer's input width.
func (l *Layer) InDim() int {
	if len(l.W) == 0 {
		return 0
	}
	return len(l.W[0])
}

// OutDim returns the layer's output width.
func (l *Layer) OutDim() int { return len(l.W) }

// Network is a feedforward network with named inputs and outputs.
type Network struct {
	Name        string   `json:"name"`
	InputNames  []string `json:"input_names,omitempty"`
	OutputNames []string `json:"output_names,omitempty"`
	Layers      []*Layer `json:"layers"`
}

// Config describes a network to construct.
type Config struct {
	Name        string
	InputDim    int
	Hidden      []int // widths of hidden layers
	OutputDim   int
	HiddenAct   Activation // activation of every hidden layer
	OutputAct   Activation // activation of the output layer
	InputNames  []string   // optional; length InputDim when set
	OutputNames []string   // optional; length OutputDim when set
}

// New builds a network with He-style initialization drawn from rng.
// A nil rng panics; callers own their randomness for reproducibility.
func New(cfg Config, rng *rand.Rand) *Network {
	if rng == nil {
		panic("nn: New requires a non-nil rng")
	}
	if cfg.InputDim <= 0 || cfg.OutputDim <= 0 {
		panic(fmt.Sprintf("nn: New dims %d -> %d", cfg.InputDim, cfg.OutputDim))
	}
	dims := append([]int{cfg.InputDim}, cfg.Hidden...)
	dims = append(dims, cfg.OutputDim)
	net := &Network{
		Name:        cfg.Name,
		InputNames:  append([]string(nil), cfg.InputNames...),
		OutputNames: append([]string(nil), cfg.OutputNames...),
	}
	for i := 0; i+1 < len(dims); i++ {
		in, out := dims[i], dims[i+1]
		act := cfg.HiddenAct
		if i == len(dims)-2 {
			act = cfg.OutputAct
		}
		scale := math.Sqrt(2.0 / float64(in)) // He init, suited to ReLU
		l := &Layer{W: linalg.NewMatrix(out, in), B: make([]float64, out), Act: act}
		for r := 0; r < out; r++ {
			for c := 0; c < in; c++ {
				l.W[r][c] = rng.NormFloat64() * scale
			}
		}
		net.Layers = append(net.Layers, l)
	}
	return net
}

// InputDim returns the network's input width.
func (n *Network) InputDim() int {
	if len(n.Layers) == 0 {
		return 0
	}
	return n.Layers[0].InDim()
}

// OutputDim returns the network's output width.
func (n *Network) OutputDim() int {
	if len(n.Layers) == 0 {
		return 0
	}
	return n.Layers[len(n.Layers)-1].OutDim()
}

// HiddenNeurons counts neurons in all hidden (non-output) layers.
func (n *Network) HiddenNeurons() int {
	total := 0
	for i := 0; i+1 < len(n.Layers); i++ {
		total += n.Layers[i].OutDim()
	}
	return total
}

// Validate checks structural consistency: layer widths chain, bias lengths
// match, names (when present) match dimensions, weights are finite.
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return errors.New("nn: network has no layers")
	}
	prev := n.Layers[0].InDim()
	for i, l := range n.Layers {
		if l.InDim() != prev {
			return fmt.Errorf("nn: layer %d expects %d inputs, previous layer provides %d", i, l.InDim(), prev)
		}
		if len(l.B) != l.OutDim() {
			return fmt.Errorf("nn: layer %d has %d biases for %d neurons", i, len(l.B), l.OutDim())
		}
		for _, row := range l.W {
			if !linalg.AllFinite(row) {
				return fmt.Errorf("nn: layer %d has non-finite weights", i)
			}
		}
		if !linalg.AllFinite(l.B) {
			return fmt.Errorf("nn: layer %d has non-finite biases", i)
		}
		prev = l.OutDim()
	}
	if len(n.InputNames) != 0 && len(n.InputNames) != n.InputDim() {
		return fmt.Errorf("nn: %d input names for %d inputs", len(n.InputNames), n.InputDim())
	}
	if len(n.OutputNames) != 0 && len(n.OutputNames) != n.OutputDim() {
		return fmt.Errorf("nn: %d output names for %d outputs", len(n.OutputNames), n.OutputDim())
	}
	return nil
}

// Forward evaluates the network at x and returns the raw output vector.
// It panics if len(x) != InputDim().
func (n *Network) Forward(x []float64) []float64 {
	if len(x) != n.InputDim() {
		panic(fmt.Sprintf("nn: Forward input dim %d, want %d", len(x), n.InputDim()))
	}
	cur := x
	for _, l := range n.Layers {
		next := make([]float64, l.OutDim())
		for i, row := range l.W {
			next[i] = l.Act.Apply(linalg.Dot(row, cur) + l.B[i])
		}
		cur = next
	}
	return cur
}

// Trace records every layer's pre- and post-activation values for one input.
type Trace struct {
	Input []float64
	// Pre[i][j] is neuron j of layer i before activation; Post after.
	Pre  [][]float64
	Post [][]float64
}

// Output returns the network output recorded in the trace.
func (tr *Trace) Output() []float64 {
	if len(tr.Post) == 0 {
		return nil
	}
	return tr.Post[len(tr.Post)-1]
}

// ForwardTrace evaluates the network recording every neuron value.
func (n *Network) ForwardTrace(x []float64) *Trace {
	if len(x) != n.InputDim() {
		panic(fmt.Sprintf("nn: ForwardTrace input dim %d, want %d", len(x), n.InputDim()))
	}
	tr := &Trace{
		Input: linalg.Clone(x),
		Pre:   make([][]float64, len(n.Layers)),
		Post:  make([][]float64, len(n.Layers)),
	}
	cur := x
	for li, l := range n.Layers {
		pre := make([]float64, l.OutDim())
		post := make([]float64, l.OutDim())
		for i, row := range l.W {
			pre[i] = linalg.Dot(row, cur) + l.B[i]
			post[i] = l.Act.Apply(pre[i])
		}
		tr.Pre[li], tr.Post[li] = pre, post
		cur = post
	}
	return tr
}

// ActivationPattern returns, for every hidden ReLU layer, which neurons are
// active (pre-activation > 0) at input x. Output layers are excluded.
func (n *Network) ActivationPattern(x []float64) [][]bool {
	tr := n.ForwardTrace(x)
	out := make([][]bool, 0, len(n.Layers)-1)
	for li := 0; li+1 < len(n.Layers); li++ {
		row := make([]bool, len(tr.Pre[li]))
		for j, z := range tr.Pre[li] {
			row[j] = z > 0
		}
		out = append(out, row)
	}
	return out
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	out := &Network{
		Name:        n.Name,
		InputNames:  append([]string(nil), n.InputNames...),
		OutputNames: append([]string(nil), n.OutputNames...),
	}
	for _, l := range n.Layers {
		out.Layers = append(out.Layers, &Layer{
			W:   linalg.CloneMatrix(l.W),
			B:   linalg.Clone(l.B),
			Act: l.Act,
		})
	}
	return out
}

// ArchString renders the architecture like "I4x25" for 4 hidden layers of
// width 25 (the notation used in the paper's Table II), falling back to an
// explicit size list for non-uniform hidden layers.
func (n *Network) ArchString() string {
	if len(n.Layers) < 2 {
		return fmt.Sprintf("I0 (%d->%d)", n.InputDim(), n.OutputDim())
	}
	width := n.Layers[0].OutDim()
	uniform := true
	for i := 0; i+1 < len(n.Layers); i++ {
		if n.Layers[i].OutDim() != width {
			uniform = false
			break
		}
	}
	if uniform {
		return fmt.Sprintf("I%dx%d", len(n.Layers)-1, width)
	}
	s := "I["
	for i := 0; i+1 < len(n.Layers); i++ {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(n.Layers[i].OutDim())
	}
	return s + "]"
}

// InputName returns the name of input i, or a generated placeholder.
func (n *Network) InputName(i int) string {
	if i < len(n.InputNames) {
		return n.InputNames[i]
	}
	return fmt.Sprintf("x%d", i)
}

// OutputName returns the name of output i, or a generated placeholder.
func (n *Network) OutputName(i int) string {
	if i < len(n.OutputNames) {
		return n.OutputNames[i]
	}
	return fmt.Sprintf("y%d", i)
}
