// Package nn implements the feedforward networks used by the motion
// predictor case study: fully connected layers with ReLU, tanh or identity
// activations, a forward pass that can record every neuron's pre- and
// post-activation value (needed by coverage, traceability and verification),
// and JSON serialization.
//
// The package deliberately contains no training code; see package train.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	// Identity applies no nonlinearity (linear output layers).
	Identity Activation = iota
	// ReLU is max(0, z); the only activation the MILP verifier encodes exactly.
	ReLU
	// Tanh is the smooth saturating activation discussed in the paper's
	// MC/DC argument (one test case satisfies MC/DC as there is no branch).
	Tanh
)

// String returns the conventional lowercase name.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Tanh:
		return "tanh"
	}
	return fmt.Sprintf("Activation(%d)", int(a))
}

// Apply evaluates the activation at z.
func (a Activation) Apply(z float64) float64 {
	switch a {
	case ReLU:
		if z < 0 {
			return 0
		}
		return z
	case Tanh:
		return math.Tanh(z)
	default:
		return z
	}
}

// applyInPlace applies the activation to every element of out. The
// serving hot loops use it instead of per-element Apply calls: the
// switch runs once per layer and each case is a tight branch-free-ish
// loop the compiler can keep in registers.
func (a Activation) applyInPlace(out []float64) {
	switch a {
	case ReLU:
		for i, z := range out {
			if z < 0 {
				out[i] = 0
			}
		}
	case Tanh:
		for i, z := range out {
			out[i] = math.Tanh(z)
		}
	}
}

// Derivative returns dApply/dz at pre-activation z.
func (a Activation) Derivative(z float64) float64 {
	switch a {
	case ReLU:
		if z < 0 {
			return 0
		}
		return 1
	case Tanh:
		th := math.Tanh(z)
		return 1 - th*th
	default:
		return 1
	}
}

// Layer is one dense layer: out = act(W·in + b).
//
// The serving kernels read the weights through a packed flat matrix
// (see packed); after packing, the rows of W alias the packed backing
// array, so in-place mutation through W — the trainer's SGD steps, the
// quantizer's rounding — writes both representations at once and no
// explicit re-sync is needed.
type Layer struct {
	W   [][]float64 `json:"w"` // outDim × inDim
	B   []float64   `json:"b"` // outDim
	Act Activation  `json:"act"`

	dense *linalg.Dense // flat row-major W for the serving kernels
}

// Pack builds the layer's flat serving matrix and re-points the rows of
// W into its backing array (write-through aliasing). Construction and
// unmarshal call it eagerly; packed() re-packs lazily when a layer was
// built literally or a whole row of W was replaced.
func (l *Layer) Pack() {
	d := linalg.DenseFromRows(l.W)
	c := d.Cols
	for i := range l.W {
		l.W[i] = d.Data[i*c : (i+1)*c : (i+1)*c]
	}
	l.dense = d
}

// synced reports whether the packed matrix still aliases every row of W.
// A row-pointer comparison per row is cheap next to any matvec; it
// catches layers built as literals and code that replaced a row slice
// (in-place element writes keep the alias and need no re-pack).
func (l *Layer) synced() bool {
	d := l.dense
	if d == nil || d.Rows != len(l.W) {
		return false
	}
	c := d.Cols
	for i, row := range l.W {
		if len(row) != c {
			return false
		}
		if c > 0 && &row[0] != &d.Data[i*c] {
			return false
		}
	}
	return true
}

// packed returns the layer's flat serving matrix, repacking if W was
// rebound since the last pack.
func (l *Layer) packed() *linalg.Dense {
	if !l.synced() {
		l.Pack()
	}
	return l.dense
}

// InDim returns the layer's input width.
func (l *Layer) InDim() int {
	if len(l.W) == 0 {
		return 0
	}
	return len(l.W[0])
}

// OutDim returns the layer's output width.
func (l *Layer) OutDim() int { return len(l.W) }

// Network is a feedforward network with named inputs and outputs.
type Network struct {
	Name        string   `json:"name"`
	InputNames  []string `json:"input_names,omitempty"`
	OutputNames []string `json:"output_names,omitempty"`
	Layers      []*Layer `json:"layers"`
}

// Config describes a network to construct.
type Config struct {
	Name        string
	InputDim    int
	Hidden      []int // widths of hidden layers
	OutputDim   int
	HiddenAct   Activation // activation of every hidden layer
	OutputAct   Activation // activation of the output layer
	InputNames  []string   // optional; length InputDim when set
	OutputNames []string   // optional; length OutputDim when set
}

// New builds a network with He-style initialization drawn from rng.
// A nil rng panics; callers own their randomness for reproducibility.
func New(cfg Config, rng *rand.Rand) *Network {
	if rng == nil {
		panic("nn: New requires a non-nil rng")
	}
	if cfg.InputDim <= 0 || cfg.OutputDim <= 0 {
		panic(fmt.Sprintf("nn: New dims %d -> %d", cfg.InputDim, cfg.OutputDim))
	}
	dims := append([]int{cfg.InputDim}, cfg.Hidden...)
	dims = append(dims, cfg.OutputDim)
	net := &Network{
		Name:        cfg.Name,
		InputNames:  append([]string(nil), cfg.InputNames...),
		OutputNames: append([]string(nil), cfg.OutputNames...),
	}
	for i := 0; i+1 < len(dims); i++ {
		in, out := dims[i], dims[i+1]
		act := cfg.HiddenAct
		if i == len(dims)-2 {
			act = cfg.OutputAct
		}
		scale := math.Sqrt(2.0 / float64(in)) // He init, suited to ReLU
		l := &Layer{W: linalg.NewMatrix(out, in), B: make([]float64, out), Act: act}
		for r := 0; r < out; r++ {
			for c := 0; c < in; c++ {
				l.W[r][c] = rng.NormFloat64() * scale
			}
		}
		l.Pack()
		net.Layers = append(net.Layers, l)
	}
	return net
}

// Pack eagerly builds every layer's flat serving matrix. New, Decode and
// Clone call it; a network built from layer literals must be packed (or
// forwarded once from a single goroutine) before concurrent serving,
// because the lazy re-pack inside the forward pass is not synchronized.
func (n *Network) Pack() {
	for _, l := range n.Layers {
		l.Pack()
	}
}

// InputDim returns the network's input width.
func (n *Network) InputDim() int {
	if len(n.Layers) == 0 {
		return 0
	}
	return n.Layers[0].InDim()
}

// OutputDim returns the network's output width.
func (n *Network) OutputDim() int {
	if len(n.Layers) == 0 {
		return 0
	}
	return n.Layers[len(n.Layers)-1].OutDim()
}

// HiddenNeurons counts neurons in all hidden (non-output) layers.
func (n *Network) HiddenNeurons() int {
	total := 0
	for i := 0; i+1 < len(n.Layers); i++ {
		total += n.Layers[i].OutDim()
	}
	return total
}

// Validate checks structural consistency: layer widths chain, bias lengths
// match, names (when present) match dimensions, weights are finite.
func (n *Network) Validate() error {
	if len(n.Layers) == 0 {
		return errors.New("nn: network has no layers")
	}
	prev := n.Layers[0].InDim()
	for i, l := range n.Layers {
		if l.InDim() != prev {
			return fmt.Errorf("nn: layer %d expects %d inputs, previous layer provides %d", i, l.InDim(), prev)
		}
		if len(l.B) != l.OutDim() {
			return fmt.Errorf("nn: layer %d has %d biases for %d neurons", i, len(l.B), l.OutDim())
		}
		for _, row := range l.W {
			if !linalg.AllFinite(row) {
				return fmt.Errorf("nn: layer %d has non-finite weights", i)
			}
		}
		if !linalg.AllFinite(l.B) {
			return fmt.Errorf("nn: layer %d has non-finite biases", i)
		}
		prev = l.OutDim()
	}
	if len(n.InputNames) != 0 && len(n.InputNames) != n.InputDim() {
		return fmt.Errorf("nn: %d input names for %d inputs", len(n.InputNames), n.InputDim())
	}
	if len(n.OutputNames) != 0 && len(n.OutputNames) != n.OutputDim() {
		return fmt.Errorf("nn: %d output names for %d outputs", len(n.OutputNames), n.OutputDim())
	}
	return nil
}

// Forward evaluates the network at x and returns the raw output vector,
// using the reference numerics: one sequential linalg.Dot per neuron.
// This is the accumulation order the verifier, trainer, quantizer and
// every certification analysis are pinned to; it never changes. The
// serving paths (ForwardInto and friends) use the blocked kernels, whose
// outputs agree with Forward to within the tolerance documented there.
// It panics if len(x) != InputDim().
func (n *Network) Forward(x []float64) []float64 {
	if len(x) != n.InputDim() {
		panic(fmt.Sprintf("nn: Forward input dim %d, want %d", len(x), n.InputDim()))
	}
	cur := x
	for _, l := range n.Layers {
		next := make([]float64, l.OutDim())
		for i, row := range l.W {
			next[i] = l.Act.Apply(linalg.Dot(row, cur) + l.B[i])
		}
		cur = next
	}
	return cur
}

// Scratch is the caller-owned state of the allocation-free serving
// forwards: ForwardInto, ForwardObserved, ForwardBatchInto and
// ForwardBatchObserved all take the same type, so a pooled Scratch
// serves every entry point and cannot be sized wrong. A Scratch must not
// be used by two goroutines at once; servers pool them per worker.
type Scratch struct {
	// buf is the single-input ping-pong buffer: two halves, each wide
	// enough for the widest non-output layer.
	buf []float64
	// batch[0]/batch[1] are the batched ping-pong matrices, grown on
	// demand by ForwardBatchObserved and reused across batches (zero
	// steady-state allocations).
	batch [2][]float64
	// dm holds the two Dense headers over batch[0]/batch[1]; keeping
	// them here (rather than as locals) stops the header passed to the
	// observe hook from escaping to the heap on every layer.
	dm [2]linalg.Dense
}

// ScratchLen returns the single-input scratch length the serving
// forwards require: two ping-pong buffers of the widest non-output
// layer. Networks with a single layer need no scratch at all.
func (n *Network) ScratchLen() int {
	m := 0
	for i := 0; i+1 < len(n.Layers); i++ {
		if d := n.Layers[i].OutDim(); d > m {
			m = d
		}
	}
	return 2 * m
}

// NewScratch allocates a Scratch sized for this network's single-input
// forwards; the batched buffers grow on first batched use.
func (n *Network) NewScratch() *Scratch { return &Scratch{buf: make([]float64, n.ScratchLen())} }

// GrowScratch returns a Scratch sized for this network, reusing sc's
// buffers whenever they are already large enough. Servers that serve
// many networks through one long-lived per-worker Scratch call this
// instead of NewScratch so a smaller network never reallocates.
func (n *Network) GrowScratch(sc *Scratch) *Scratch {
	if sc == nil {
		return n.NewScratch()
	}
	if need := n.ScratchLen(); cap(sc.buf) < need {
		sc.buf = make([]float64, need)
	} else {
		sc.buf = sc.buf[:cap(sc.buf)]
	}
	return sc
}

// maxDim returns the widest vector the forward pass touches: input,
// every hidden width, and output.
func (n *Network) maxDim() int {
	m := n.InputDim()
	for _, l := range n.Layers {
		if d := l.OutDim(); d > m {
			m = d
		}
	}
	return m
}

// ForwardInto evaluates the network at x, writing the raw output vector
// into dst. All intermediate layer values live in the caller-provided
// Scratch, so a steady-state caller — the inference server's hot path —
// performs zero allocations per evaluation.
//
// ForwardInto runs the blocked serving kernels (linalg.Dense.MatVec):
// deterministic — bit-identical run-to-run, across batch sizes and
// GOMAXPROCS, and across the assembly/pure-Go kernel paths — but in a
// different accumulation order than Forward's reference numerics. The
// two agree to within ~n ULPs of the accumulated magnitude per neuron
// (see linalg's TestMatVecMatchesDotWithinTolerance and DESIGN.md
// "Kernel layer").
//
// It panics with sized messages when dst is not OutputDim() long,
// scratch is nil or undersized, or x is not InputDim() long. x is never
// written.
func (n *Network) ForwardInto(dst []float64, sc *Scratch, x []float64) {
	n.ForwardObserved(dst, sc, x, nil)
}

// ForwardObserved is ForwardInto with a per-layer hook: when observe is
// non-nil it is called once per layer, after that layer's pre-activation
// values are computed and before the activation overwrites them in place.
// The slice passed to observe is only valid for the duration of the call
// and must not be written. The runtime monitor uses this to read
// activation signs during the same pass that produces the prediction
// instead of paying a second forward.
func (n *Network) ForwardObserved(dst []float64, sc *Scratch, x []float64, observe func(layer int, pre []float64)) {
	if len(x) != n.InputDim() {
		panic(fmt.Sprintf("nn: ForwardInto input dim %d, want %d", len(x), n.InputDim()))
	}
	if len(dst) != n.OutputDim() {
		panic(fmt.Sprintf("nn: ForwardInto dst dim %d, want %d", len(dst), n.OutputDim()))
	}
	if sc == nil || len(sc.buf) < n.ScratchLen() {
		got := -1
		if sc != nil {
			got = len(sc.buf)
		}
		panic(fmt.Sprintf("nn: ForwardInto scratch len %d, want >= %d (use Network.NewScratch)", got, n.ScratchLen()))
	}
	half := len(sc.buf) / 2
	last := len(n.Layers) - 1
	cur := x
	for li, l := range n.Layers {
		var out []float64
		switch {
		case li == last:
			out = dst
		case li%2 == 0:
			out = sc.buf[:l.OutDim()]
		default:
			out = sc.buf[half : half+l.OutDim()]
		}
		l.packed().MatVec(out, cur)
		for i, b := range l.B {
			out[i] += b
		}
		if observe != nil {
			observe(li, out)
		}
		l.Act.applyInPlace(out)
		cur = out
	}
}

// ForwardBatchInto evaluates the network at every row of xs, writing row
// i's output into out[i], through the layer-major batched kernel
// (linalg.MatMulTB): each weight row is streamed across the whole batch
// instead of being reloaded per input. Row i's output is bit-identical
// to ForwardInto on xs[i] — the batched kernel accumulates every cell in
// the same order as MatVec — so batching is purely a throughput choice.
// The Scratch is the same type every other forward takes; its batched
// buffers grow to the batch size on first use and are then reused. Each
// out row must be OutputDim() long; shape mismatches panic with sized
// messages as in ForwardInto.
func (n *Network) ForwardBatchInto(out [][]float64, sc *Scratch, xs [][]float64) {
	n.ForwardBatchObserved(out, sc, xs, nil)
}

// ForwardBatchObserved is ForwardBatchInto with the monitor hook: when
// observe is non-nil it is called once per layer with the batch's
// pre-activation matrix (row i = input i), after the bias add and before
// the activation overwrites it in place. The matrix passed to observe is
// scratch memory, valid only for the duration of the call and not to be
// written. This is how the batched monitor reads activation signs for a
// whole batch in one pass.
func (n *Network) ForwardBatchObserved(out [][]float64, sc *Scratch, xs [][]float64, observe func(layer int, pre *linalg.Dense)) {
	if len(out) != len(xs) {
		panic(fmt.Sprintf("nn: ForwardBatchInto %d output rows for %d inputs", len(out), len(xs)))
	}
	if sc == nil {
		panic("nn: ForwardBatchInto nil scratch (use Network.NewScratch)")
	}
	batch := len(xs)
	if batch == 0 {
		return
	}
	in := n.InputDim()
	outDim := n.OutputDim()
	for i, x := range xs {
		if len(x) != in {
			panic(fmt.Sprintf("nn: ForwardBatchInto input %d dim %d, want %d", i, len(x), in))
		}
		if len(out[i]) != outDim {
			panic(fmt.Sprintf("nn: ForwardBatchInto output row %d dim %d, want %d", i, len(out[i]), outDim))
		}
	}
	need := batch * n.maxDim()
	for b := range sc.batch {
		if cap(sc.batch[b]) < need {
			sc.batch[b] = make([]float64, need)
		}
	}
	sc.dm[0] = linalg.Dense{Rows: batch, Cols: in, Data: sc.batch[0][:batch*in]}
	cur := &sc.dm[0]
	for i, x := range xs {
		copy(cur.Data[i*in:(i+1)*in], x)
	}
	flip := 1
	for li, l := range n.Layers {
		w := l.packed()
		sc.dm[flip] = linalg.Dense{Rows: batch, Cols: l.OutDim(), Data: sc.batch[flip][:batch*l.OutDim()]}
		next := &sc.dm[flip]
		linalg.MatMulTB(next, cur, w)
		next.AddBias(l.B)
		if observe != nil {
			observe(li, next)
		}
		l.Act.applyInPlace(next.Data)
		cur, flip = next, flip^1
	}
	for i := range out {
		copy(out[i], cur.Data[i*outDim:(i+1)*outDim])
	}
}

// Trace records every layer's pre- and post-activation values for one input.
type Trace struct {
	Input []float64
	// Pre[i][j] is neuron j of layer i before activation; Post after.
	Pre  [][]float64
	Post [][]float64
}

// Output returns the network output recorded in the trace.
func (tr *Trace) Output() []float64 {
	if len(tr.Post) == 0 {
		return nil
	}
	return tr.Post[len(tr.Post)-1]
}

// ForwardTrace evaluates the network recording every neuron value.
func (n *Network) ForwardTrace(x []float64) *Trace {
	if len(x) != n.InputDim() {
		panic(fmt.Sprintf("nn: ForwardTrace input dim %d, want %d", len(x), n.InputDim()))
	}
	tr := &Trace{
		Input: linalg.Clone(x),
		Pre:   make([][]float64, len(n.Layers)),
		Post:  make([][]float64, len(n.Layers)),
	}
	cur := x
	for li, l := range n.Layers {
		pre := make([]float64, l.OutDim())
		post := make([]float64, l.OutDim())
		for i, row := range l.W {
			pre[i] = linalg.Dot(row, cur) + l.B[i]
			post[i] = l.Act.Apply(pre[i])
		}
		tr.Pre[li], tr.Post[li] = pre, post
		cur = post
	}
	return tr
}

// ReLULayers lists the indices of the hidden ReLU layers — the layers
// that branch, and therefore the layers activation patterns, structural
// coverage and the runtime monitor are defined over. The output layer is
// excluded even when it is ReLU (it does not feed a later decision).
func (n *Network) ReLULayers() []int {
	var out []int
	for i := 0; i+1 < len(n.Layers); i++ {
		if n.Layers[i].Act == ReLU {
			out = append(out, i)
		}
	}
	return out
}

// ActivationPattern returns, for every hidden ReLU layer (in ReLULayers
// order), which neurons are active (pre-activation strictly > 0) at input
// x. Non-ReLU hidden layers do not branch and are excluded; a network
// with no hidden ReLU layer (e.g. single-layer or all-tanh) returns no
// rows. A pre-activation of exactly zero counts as inactive, matching the
// verifier's encoding of the ReLU's flat branch.
func (n *Network) ActivationPattern(x []float64) [][]bool {
	tr := n.ForwardTrace(x)
	layers := n.ReLULayers()
	out := make([][]bool, 0, len(layers))
	for _, li := range layers {
		row := make([]bool, len(tr.Pre[li]))
		for j, z := range tr.Pre[li] {
			row[j] = z > 0
		}
		out = append(out, row)
	}
	return out
}

// Clone returns a deep copy of the network.
func (n *Network) Clone() *Network {
	out := &Network{
		Name:        n.Name,
		InputNames:  append([]string(nil), n.InputNames...),
		OutputNames: append([]string(nil), n.OutputNames...),
	}
	for _, l := range n.Layers {
		cl := &Layer{
			W:   linalg.CloneMatrix(l.W),
			B:   linalg.Clone(l.B),
			Act: l.Act,
		}
		cl.Pack()
		out.Layers = append(out.Layers, cl)
	}
	return out
}

// ArchString renders the architecture like "I4x25" for 4 hidden layers of
// width 25 (the notation used in the paper's Table II), falling back to an
// explicit size list for non-uniform hidden layers.
func (n *Network) ArchString() string {
	if len(n.Layers) < 2 {
		return fmt.Sprintf("I0 (%d->%d)", n.InputDim(), n.OutputDim())
	}
	width := n.Layers[0].OutDim()
	uniform := true
	for i := 0; i+1 < len(n.Layers); i++ {
		if n.Layers[i].OutDim() != width {
			uniform = false
			break
		}
	}
	if uniform {
		return fmt.Sprintf("I%dx%d", len(n.Layers)-1, width)
	}
	s := "I["
	for i := 0; i+1 < len(n.Layers); i++ {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(n.Layers[i].OutDim())
	}
	return s + "]"
}

// InputName returns the name of input i, or a generated placeholder.
func (n *Network) InputName(i int) string {
	if i < len(n.InputNames) {
		return n.InputNames[i]
	}
	return fmt.Sprintf("x%d", i)
}

// OutputName returns the name of output i, or a generated placeholder.
func (n *Network) OutputName(i int) string {
	if i < len(n.OutputNames) {
		return n.OutputNames[i]
	}
	return fmt.Sprintf("y%d", i)
}
