package nn

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Encode writes the network as indented JSON to w.
func (n *Network) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(n); err != nil {
		return fmt.Errorf("nn: encode %q: %w", n.Name, err)
	}
	return nil
}

// Decode reads a network from JSON and validates it.
func Decode(r io.Reader) (*Network, error) {
	var n Network
	if err := json.NewDecoder(r).Decode(&n); err != nil {
		return nil, fmt.Errorf("nn: decode: %w", err)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	// Pack eagerly: decoded networks go straight to (possibly concurrent)
	// serving, which must never hit the unsynchronized lazy re-pack.
	n.Pack()
	return &n, nil
}

// Save writes the network to the named file.
func (n *Network) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	defer f.Close()
	if err := n.Encode(f); err != nil {
		return err
	}
	return f.Close()
}

// Load reads a network from the named file.
func Load(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	defer f.Close()
	return Decode(f)
}
