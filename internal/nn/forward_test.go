package nn

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// forwardReference is the pre-ForwardInto implementation of Forward (one
// fresh slice per layer). ForwardInto must stay bit-identical to it.
func forwardReference(n *Network, x []float64) []float64 {
	cur := x
	for _, l := range n.Layers {
		next := make([]float64, l.OutDim())
		for i, row := range l.W {
			next[i] = l.Act.Apply(linalg.Dot(row, cur) + l.B[i])
		}
		cur = next
	}
	return cur
}

func randInput(rng *rand.Rand, dim int) []float64 {
	x := make([]float64, dim)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestForwardIntoBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cases := []Config{
		{Name: "deep", InputDim: 5, Hidden: []int{9, 3, 7}, OutputDim: 2, HiddenAct: ReLU, OutputAct: Identity},
		{Name: "tanh", InputDim: 4, Hidden: []int{6, 6}, OutputDim: 3, HiddenAct: Tanh, OutputAct: Tanh},
		{Name: "wide", InputDim: 2, Hidden: []int{31}, OutputDim: 1, HiddenAct: ReLU, OutputAct: Identity},
		{Name: "shallow", InputDim: 3, Hidden: nil, OutputDim: 4, HiddenAct: ReLU, OutputAct: Identity},
	}
	for _, cfg := range cases {
		net := New(cfg, rng)
		dst := make([]float64, net.OutputDim())
		scratch := net.NewScratch()
		for trial := 0; trial < 50; trial++ {
			x := randInput(rng, net.InputDim())
			want := forwardReference(net, x)
			net.ForwardInto(dst, scratch, x)
			for i := range want {
				if dst[i] != want[i] { // bit-identical, no tolerance
					t.Fatalf("%s: ForwardInto[%d] = %v, reference %v", cfg.Name, i, dst[i], want[i])
				}
			}
			got := net.Forward(x)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: Forward[%d] = %v, reference %v", cfg.Name, i, got[i], want[i])
				}
			}
		}
	}
}

func TestForwardIntoDoesNotWriteInput(t *testing.T) {
	net := testNet(t, []int{6, 6})
	x := []float64{0.3, -0.7, 1.1}
	orig := append([]float64(nil), x...)
	net.ForwardInto(make([]float64, net.OutputDim()), net.NewScratch(), x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("ForwardInto mutated its input: %v -> %v", orig, x)
		}
	}
}

func TestForwardIntoZeroAllocs(t *testing.T) {
	net := testNet(t, []int{16, 16, 16})
	x := []float64{0.1, 0.2, 0.3}
	dst := make([]float64, net.OutputDim())
	scratch := net.NewScratch()
	allocs := testing.AllocsPerRun(200, func() {
		net.ForwardInto(dst, scratch, x)
	})
	if allocs != 0 {
		t.Fatalf("ForwardInto allocates %v per op, want 0", allocs)
	}
}

func TestForwardBatchIntoZeroAllocs(t *testing.T) {
	net := testNet(t, []int{12, 12})
	xs := make([][]float64, 32)
	out := make([][]float64, 32)
	rng := rand.New(rand.NewSource(3))
	for i := range xs {
		xs[i] = randInput(rng, net.InputDim())
		out[i] = make([]float64, net.OutputDim())
	}
	scratch := net.NewScratch()
	allocs := testing.AllocsPerRun(50, func() {
		net.ForwardBatchInto(out, scratch, xs)
	})
	if allocs != 0 {
		t.Fatalf("ForwardBatchInto allocates %v per batch, want 0", allocs)
	}
	for i, x := range xs {
		want := net.Forward(x)
		for j := range want {
			if out[i][j] != want[j] {
				t.Fatalf("batch row %d differs from Forward", i)
			}
		}
	}
}

func TestForwardIntoPanicsOnBadShapes(t *testing.T) {
	net := testNet(t, []int{4})
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("short dst", func() {
		net.ForwardInto(make([]float64, 1), net.NewScratch(), []float64{1, 2, 3})
	})
	expectPanic("short scratch", func() {
		net.ForwardInto(make([]float64, net.OutputDim()), make([]float64, 1), []float64{1, 2, 3})
	})
	expectPanic("bad input", func() {
		net.ForwardInto(make([]float64, net.OutputDim()), net.NewScratch(), []float64{1})
	})
	expectPanic("batch shape", func() {
		net.ForwardBatchInto(make([][]float64, 2), net.NewScratch(), make([][]float64, 3))
	})
}

func TestForwardObservedSeesPreActivations(t *testing.T) {
	net := testNet(t, []int{5, 4})
	x := []float64{0.4, -0.2, 0.8}
	tr := net.ForwardTrace(x)
	dst := make([]float64, net.OutputDim())
	seen := 0
	net.ForwardObserved(dst, net.NewScratch(), x, func(layer int, pre []float64) {
		for j, z := range pre {
			if z != tr.Pre[layer][j] {
				t.Fatalf("layer %d neuron %d: observed pre %v, trace %v", layer, j, z, tr.Pre[layer][j])
			}
		}
		seen++
	})
	if seen != len(net.Layers) {
		t.Fatalf("observed %d layers, want %d", seen, len(net.Layers))
	}
	for i := range dst {
		if dst[i] != tr.Output()[i] {
			t.Fatal("ForwardObserved output differs from trace")
		}
	}
}

// BenchmarkForwardInto is the hot-path benchmark the CI bench job records:
// steady-state inference must report 0 allocs/op.
func BenchmarkForwardInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := New(Config{
		Name: "bench", InputDim: 84, Hidden: []int{40, 40, 40, 40}, OutputDim: 15,
		HiddenAct: ReLU, OutputAct: Identity,
	}, rng)
	x := randInput(rng, net.InputDim())
	dst := make([]float64, net.OutputDim())
	scratch := net.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardInto(dst, scratch, x)
	}
}

// BenchmarkForward measures the allocating wrapper for comparison.
func BenchmarkForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := New(Config{
		Name: "bench", InputDim: 84, Hidden: []int{40, 40, 40, 40}, OutputDim: 15,
		HiddenAct: ReLU, OutputAct: Identity,
	}, rng)
	x := randInput(rng, net.InputDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}
