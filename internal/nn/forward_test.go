package nn

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// forwardReference is the reference numerics: one sequential linalg.Dot
// per neuron, one fresh slice per layer. Forward must stay bit-identical
// to it forever — the verifier, trainer and every certification analysis
// are pinned to this order.
func forwardReference(n *Network, x []float64) []float64 {
	cur := x
	for _, l := range n.Layers {
		next := make([]float64, l.OutDim())
		for i, row := range l.W {
			next[i] = l.Act.Apply(linalg.Dot(row, cur) + l.B[i])
		}
		cur = next
	}
	return cur
}

// servingDot is an independent re-implementation of the serving
// accumulation order (linalg's dot4 contract): four math.FMA chains over
// the strided quarters, combined (s0+s1)+(s2+s3), tail folded in index
// order. The serving forwards must match it bit-for-bit.
func servingDot(a, b []float64) float64 {
	var s [4]float64
	n := len(b)
	j := 0
	for ; j+3 < n; j += 4 {
		for c := 0; c < 4; c++ {
			s[c] = math.FMA(a[j+c], b[j+c], s[c])
		}
	}
	out := (s[0] + s[1]) + (s[2] + s[3])
	for ; j < n; j++ {
		out = math.FMA(a[j], b[j], out)
	}
	return out
}

// servingReference evaluates the network in the serving order without
// touching the production kernels.
func servingReference(n *Network, x []float64) []float64 {
	cur := x
	for _, l := range n.Layers {
		next := make([]float64, l.OutDim())
		for i, row := range l.W {
			next[i] = l.Act.Apply(servingDot(row, cur) + l.B[i])
		}
		cur = next
	}
	return cur
}

func randInput(rng *rand.Rand, dim int) []float64 {
	x := make([]float64, dim)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

var forwardCases = []Config{
	{Name: "deep", InputDim: 5, Hidden: []int{9, 3, 7}, OutputDim: 2, HiddenAct: ReLU, OutputAct: Identity},
	{Name: "tanh", InputDim: 4, Hidden: []int{6, 6}, OutputDim: 3, HiddenAct: Tanh, OutputAct: Tanh},
	{Name: "wide", InputDim: 2, Hidden: []int{31}, OutputDim: 1, HiddenAct: ReLU, OutputAct: Identity},
	{Name: "shallow", InputDim: 3, Hidden: nil, OutputDim: 4, HiddenAct: ReLU, OutputAct: Identity},
}

// TestForwardBitIdenticalToReference pins the reference path: Forward
// never changes numerics, whatever happens to the serving kernels.
func TestForwardBitIdenticalToReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, cfg := range forwardCases {
		net := New(cfg, rng)
		for trial := 0; trial < 50; trial++ {
			x := randInput(rng, net.InputDim())
			want := forwardReference(net, x)
			got := net.Forward(x)
			for i := range want {
				if got[i] != want[i] { // bit-identical, no tolerance
					t.Fatalf("%s: Forward[%d] = %v, reference %v", cfg.Name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestForwardIntoBitIdenticalToServingReference pins the serving path to
// the independently implemented dot4 order.
func TestForwardIntoBitIdenticalToServingReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, cfg := range forwardCases {
		net := New(cfg, rng)
		dst := make([]float64, net.OutputDim())
		scratch := net.NewScratch()
		for trial := 0; trial < 50; trial++ {
			x := randInput(rng, net.InputDim())
			want := servingReference(net, x)
			net.ForwardInto(dst, scratch, x)
			for i := range want {
				if dst[i] != want[i] { // bit-identical, no tolerance
					t.Fatalf("%s: ForwardInto[%d] = %v, serving reference %v", cfg.Name, i, dst[i], want[i])
				}
			}
		}
	}
}

// TestForwardIntoWithinToleranceOfForward bounds the divergence between
// the two orders: per output, n ULPs of the per-neuron accumulated
// magnitude, propagated through at most a doubling per layer — in
// practice far below 1e-12 relative for these widths. This is the
// documented serving-vs-reference contract; DESIGN.md "Kernel layer"
// explains why both orders are individually exact.
func TestForwardIntoWithinToleranceOfForward(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	net := New(Config{
		Name: "tol", InputDim: 84, Hidden: []int{40, 40, 40, 40}, OutputDim: 15,
		HiddenAct: ReLU, OutputAct: Identity,
	}, rng)
	dst := make([]float64, net.OutputDim())
	scratch := net.NewScratch()
	for trial := 0; trial < 20; trial++ {
		x := randInput(rng, net.InputDim())
		want := net.Forward(x)
		net.ForwardInto(dst, scratch, x)
		for i := range want {
			diff := math.Abs(dst[i] - want[i])
			tol := 1e-10 * math.Max(1, math.Abs(want[i]))
			if diff > tol {
				t.Fatalf("output %d: |%v - %v| = %v > %v", i, dst[i], want[i], diff, tol)
			}
		}
	}
}

// TestForwardIntoDeterministic demands identical bits across 100 runs.
func TestForwardIntoDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	net := New(Config{
		Name: "det", InputDim: 33, Hidden: []int{40, 40}, OutputDim: 7,
		HiddenAct: ReLU, OutputAct: Identity,
	}, rng)
	x := randInput(rng, net.InputDim())
	first := make([]float64, net.OutputDim())
	scratch := net.NewScratch()
	net.ForwardInto(first, scratch, x)
	dst := make([]float64, net.OutputDim())
	for run := 1; run < 100; run++ {
		net.ForwardInto(dst, scratch, x)
		for i := range dst {
			if dst[i] != first[i] {
				t.Fatalf("run %d output %d: %x != %x", run, i, dst[i], first[i])
			}
		}
	}
}

// TestPackedWriteThrough pins the aliasing contract: after packing,
// in-place mutation through W (the trainer's and quantizer's access
// path) is visible to the serving kernels without a re-pack, and a
// wholesale row replacement triggers the lazy re-pack.
func TestPackedWriteThrough(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	net := New(Config{
		Name: "wt", InputDim: 4, Hidden: []int{5}, OutputDim: 2,
		HiddenAct: ReLU, OutputAct: Identity,
	}, rng)
	x := randInput(rng, 4)
	// In-place element write through W.
	net.Layers[0].W[2][1] = 7.5
	dst := make([]float64, 2)
	net.ForwardInto(dst, net.NewScratch(), x)
	want := servingReference(net, x)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatal("in-place W write not visible to serving kernels")
		}
	}
	// Wholesale row replacement breaks the alias; packed() must re-pack.
	net.Layers[0].W[0] = []float64{1, 2, 3, 4}
	net.ForwardInto(dst, net.NewScratch(), x)
	want = servingReference(net, x)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatal("row replacement not picked up by lazy re-pack")
		}
	}
	// A layer built literally (never packed) must also serve correctly.
	lit := &Network{Layers: []*Layer{{W: [][]float64{{1, 0.5}, {-1, 2}}, B: []float64{0.1, -0.2}, Act: ReLU}}}
	litDst := make([]float64, 2)
	lit.ForwardInto(litDst, lit.NewScratch(), []float64{0.3, 0.7})
	litWant := servingReference(lit, []float64{0.3, 0.7})
	for i := range litWant {
		if litDst[i] != litWant[i] {
			t.Fatal("literal-built layer serving mismatch")
		}
	}
}

func TestForwardIntoDoesNotWriteInput(t *testing.T) {
	net := testNet(t, []int{6, 6})
	x := []float64{0.3, -0.7, 1.1}
	orig := append([]float64(nil), x...)
	net.ForwardInto(make([]float64, net.OutputDim()), net.NewScratch(), x)
	for i := range x {
		if x[i] != orig[i] {
			t.Fatalf("ForwardInto mutated its input: %v -> %v", orig, x)
		}
	}
}

func TestForwardIntoZeroAllocs(t *testing.T) {
	net := testNet(t, []int{16, 16, 16})
	x := []float64{0.1, 0.2, 0.3}
	dst := make([]float64, net.OutputDim())
	scratch := net.NewScratch()
	allocs := testing.AllocsPerRun(200, func() {
		net.ForwardInto(dst, scratch, x)
	})
	if allocs != 0 {
		t.Fatalf("ForwardInto allocates %v per op, want 0", allocs)
	}
}

func TestForwardBatchIntoZeroAllocsAndBitIdentity(t *testing.T) {
	net := testNet(t, []int{12, 12})
	xs := make([][]float64, 32)
	out := make([][]float64, 32)
	rng := rand.New(rand.NewSource(3))
	for i := range xs {
		xs[i] = randInput(rng, net.InputDim())
		out[i] = make([]float64, net.OutputDim())
	}
	scratch := net.NewScratch()
	net.ForwardBatchInto(out, scratch, xs) // warm the batch buffers
	allocs := testing.AllocsPerRun(50, func() {
		net.ForwardBatchInto(out, scratch, xs)
	})
	if allocs != 0 {
		t.Fatalf("ForwardBatchInto allocates %v per batch, want 0", allocs)
	}
	// Batch rows are bit-identical to the single-input serving path.
	single := make([]float64, net.OutputDim())
	sc := net.NewScratch()
	for i, x := range xs {
		net.ForwardInto(single, sc, x)
		for j := range single {
			if out[i][j] != single[j] {
				t.Fatalf("batch row %d differs from ForwardInto", i)
			}
		}
	}
}

func TestForwardIntoPanicsOnBadShapes(t *testing.T) {
	net := testNet(t, []int{4})
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	expectPanic("short dst", func() {
		net.ForwardInto(make([]float64, 1), net.NewScratch(), []float64{1, 2, 3})
	})
	expectPanic("short scratch", func() {
		net.ForwardInto(make([]float64, net.OutputDim()), &Scratch{buf: make([]float64, 1)}, []float64{1, 2, 3})
	})
	expectPanic("nil scratch", func() {
		net.ForwardInto(make([]float64, net.OutputDim()), nil, []float64{1, 2, 3})
	})
	expectPanic("bad input", func() {
		net.ForwardInto(make([]float64, net.OutputDim()), net.NewScratch(), []float64{1})
	})
	expectPanic("batch shape", func() {
		net.ForwardBatchInto(make([][]float64, 2), net.NewScratch(), make([][]float64, 3))
	})
	expectPanic("batch nil scratch", func() {
		net.ForwardBatchInto([][]float64{{0}}, nil, [][]float64{{1, 2, 3}})
	})
	expectPanic("batch bad row", func() {
		net.ForwardBatchInto([][]float64{make([]float64, 1)}, net.NewScratch(), [][]float64{{1, 2, 3}})
	})
}

func TestForwardObservedSeesPreActivations(t *testing.T) {
	net := testNet(t, []int{5, 4})
	x := []float64{0.4, -0.2, 0.8}
	dst := make([]float64, net.OutputDim())
	// The observed pre-activations follow serving numerics; compare
	// against the serving reference layer by layer.
	preWant := make([][]float64, len(net.Layers))
	cur := x
	for li, l := range net.Layers {
		pre := make([]float64, l.OutDim())
		post := make([]float64, l.OutDim())
		for i, row := range l.W {
			pre[i] = servingDot(row, cur) + l.B[i]
			post[i] = l.Act.Apply(pre[i])
		}
		preWant[li] = pre
		cur = post
	}
	seen := 0
	net.ForwardObserved(dst, net.NewScratch(), x, func(layer int, pre []float64) {
		for j, z := range pre {
			if z != preWant[layer][j] {
				t.Fatalf("layer %d neuron %d: observed pre %v, want %v", layer, j, z, preWant[layer][j])
			}
		}
		seen++
	})
	if seen != len(net.Layers) {
		t.Fatalf("observed %d layers, want %d", seen, len(net.Layers))
	}
	for i := range dst {
		if dst[i] != cur[i] {
			t.Fatal("ForwardObserved output differs from serving reference")
		}
	}
}

// TestForwardBatchObservedMatchesSingle pins the batched monitor hook:
// every layer's batch pre-activation row i is bit-identical to the
// single-input observation on xs[i].
func TestForwardBatchObservedMatchesSingle(t *testing.T) {
	net := testNet(t, []int{8, 6})
	rng := rand.New(rand.NewSource(9))
	xs := make([][]float64, 5)
	out := make([][]float64, 5)
	for i := range xs {
		xs[i] = randInput(rng, net.InputDim())
		out[i] = make([]float64, net.OutputDim())
	}
	// Record single-input observations.
	singlePre := make([][][]float64, len(xs)) // [input][layer][neuron]
	dst := make([]float64, net.OutputDim())
	sc := net.NewScratch()
	for i, x := range xs {
		singlePre[i] = make([][]float64, len(net.Layers))
		idx := i
		net.ForwardObserved(dst, sc, x, func(layer int, pre []float64) {
			singlePre[idx][layer] = append([]float64(nil), pre...)
		})
	}
	calls := 0
	net.ForwardBatchObserved(out, net.NewScratch(), xs, func(layer int, pre *linalg.Dense) {
		calls++
		if pre.Rows != len(xs) {
			t.Fatalf("layer %d: %d batch rows, want %d", layer, pre.Rows, len(xs))
		}
		for i := 0; i < pre.Rows; i++ {
			row := pre.Row(i)
			for j, z := range row {
				if z != singlePre[i][layer][j] {
					t.Fatalf("layer %d input %d neuron %d: batch pre %x, single %x", layer, i, j, z, singlePre[i][layer][j])
				}
			}
		}
	})
	if calls != len(net.Layers) {
		t.Fatalf("observed %d layers, want %d", calls, len(net.Layers))
	}
}

// BenchmarkForwardInto is the hot-path benchmark the CI bench job records:
// steady-state inference must report 0 allocs/op.
func BenchmarkForwardInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := New(Config{
		Name: "bench", InputDim: 84, Hidden: []int{40, 40, 40, 40}, OutputDim: 15,
		HiddenAct: ReLU, OutputAct: Identity,
	}, rng)
	x := randInput(rng, net.InputDim())
	dst := make([]float64, net.OutputDim())
	scratch := net.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardInto(dst, scratch, x)
	}
}

// BenchmarkForwardBatchInto measures the layer-major batched path on a
// 64-input batch; ns/op is per batch (divide by 64 for per-input cost).
func BenchmarkForwardBatchInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := New(Config{
		Name: "bench", InputDim: 84, Hidden: []int{40, 40, 40, 40}, OutputDim: 15,
		HiddenAct: ReLU, OutputAct: Identity,
	}, rng)
	xs := make([][]float64, 64)
	out := make([][]float64, 64)
	for i := range xs {
		xs[i] = randInput(rng, net.InputDim())
		out[i] = make([]float64, net.OutputDim())
	}
	scratch := net.NewScratch()
	net.ForwardBatchInto(out, scratch, xs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.ForwardBatchInto(out, scratch, xs)
	}
}

// BenchmarkForward measures the allocating reference path for comparison.
func BenchmarkForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net := New(Config{
		Name: "bench", InputDim: 84, Hidden: []int{40, 40, 40, 40}, OutputDim: 15,
		HiddenAct: ReLU, OutputAct: Identity,
	}, rng)
	x := randInput(rng, net.InputDim())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}
