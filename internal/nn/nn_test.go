package nn

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func testNet(t *testing.T, hidden []int) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	net := New(Config{
		Name: "t", InputDim: 3, Hidden: hidden, OutputDim: 2,
		HiddenAct: ReLU, OutputAct: Identity,
	}, rng)
	if err := net.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return net
}

func TestActivations(t *testing.T) {
	cases := []struct {
		act      Activation
		in, out  float64
		deriv    float64
		derivTol float64
	}{
		{ReLU, -1, 0, 0, 0},
		{ReLU, 2, 2, 1, 0},
		{Tanh, 0, 0, 1, 1e-12},
		{Identity, -7, -7, 1, 0},
	}
	for _, c := range cases {
		if got := c.act.Apply(c.in); got != c.out {
			t.Errorf("%v.Apply(%g) = %g, want %g", c.act, c.in, got, c.out)
		}
		if got := c.act.Derivative(c.in); math.Abs(got-c.deriv) > c.derivTol {
			t.Errorf("%v.Derivative(%g) = %g, want %g", c.act, c.in, got, c.deriv)
		}
	}
}

func TestTanhDerivativeNumerically(t *testing.T) {
	for _, z := range []float64{-2, -0.5, 0.3, 1.7} {
		h := 1e-6
		num := (Tanh.Apply(z+h) - Tanh.Apply(z-h)) / (2 * h)
		if math.Abs(num-Tanh.Derivative(z)) > 1e-6 {
			t.Fatalf("tanh'(%g): analytic %g vs numeric %g", z, Tanh.Derivative(z), num)
		}
	}
}

func TestNewShapes(t *testing.T) {
	net := testNet(t, []int{5, 4})
	if net.InputDim() != 3 || net.OutputDim() != 2 {
		t.Fatalf("dims %d -> %d", net.InputDim(), net.OutputDim())
	}
	if len(net.Layers) != 3 {
		t.Fatalf("layers = %d, want 3", len(net.Layers))
	}
	if net.HiddenNeurons() != 9 {
		t.Fatalf("hidden neurons = %d, want 9", net.HiddenNeurons())
	}
	if net.Layers[2].Act != Identity || net.Layers[0].Act != ReLU {
		t.Fatal("activations misassigned")
	}
}

func TestForwardManual(t *testing.T) {
	// Hand-built net: y = relu(x1 - x2) summed with bias on a linear output.
	net := &Network{Layers: []*Layer{
		{W: [][]float64{{1, -1}}, B: []float64{0}, Act: ReLU},
		{W: [][]float64{{2}}, B: []float64{3}, Act: Identity},
	}}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := net.Forward([]float64{5, 2})[0]; got != 9 { // relu(3)*2+3
		t.Fatalf("Forward = %g, want 9", got)
	}
	if got := net.Forward([]float64{2, 5})[0]; got != 3 { // relu(-3)=0 -> 3
		t.Fatalf("Forward = %g, want 3", got)
	}
}

func TestForwardTraceConsistent(t *testing.T) {
	net := testNet(t, []int{6, 6})
	x := []float64{0.2, -0.4, 0.9}
	out := net.Forward(x)
	tr := net.ForwardTrace(x)
	for i := range out {
		if math.Abs(out[i]-tr.Output()[i]) > 1e-12 {
			t.Fatalf("trace output %v != forward %v", tr.Output(), out)
		}
	}
	// Post must equal act(Pre) everywhere.
	for li, l := range net.Layers {
		for j := range tr.Pre[li] {
			if math.Abs(tr.Post[li][j]-l.Act.Apply(tr.Pre[li][j])) > 1e-12 {
				t.Fatalf("layer %d neuron %d: post != act(pre)", li, j)
			}
		}
	}
}

func TestActivationPattern(t *testing.T) {
	net := &Network{Layers: []*Layer{
		{W: [][]float64{{1}, {-1}}, B: []float64{0, 0}, Act: ReLU},
		{W: [][]float64{{1, 1}}, B: []float64{0}, Act: Identity},
	}}
	pat := net.ActivationPattern([]float64{2})
	if len(pat) != 1 || !pat[0][0] || pat[0][1] {
		t.Fatalf("pattern = %v, want [[true false]]", pat)
	}
}

func TestActivationPatternExcludesNonReLULayers(t *testing.T) {
	// tanh, ReLU, tanh hidden layers + linear output: only the ReLU layer
	// branches, so the pattern has exactly one row, mapped by ReLULayers.
	rng := rand.New(rand.NewSource(5))
	net := New(Config{Name: "mixed", InputDim: 2, Hidden: []int{3, 4, 3}, OutputDim: 1, HiddenAct: Tanh, OutputAct: Identity}, rng)
	net.Layers[1].Act = ReLU
	pat := net.ActivationPattern([]float64{0.5, -0.5})
	if len(pat) != 1 || len(pat[0]) != 4 {
		t.Fatalf("mixed net pattern shape %v, want one row of 4", pat)
	}
	if got := net.ReLULayers(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("ReLULayers = %v, want [1]", got)
	}
	// All-tanh: no branching layers, no rows.
	tanh := New(Config{Name: "tanh", InputDim: 2, Hidden: []int{3}, OutputDim: 1, HiddenAct: Tanh, OutputAct: Identity}, rng)
	if pat := tanh.ActivationPattern([]float64{1, 1}); len(pat) != 0 {
		t.Fatalf("tanh net pattern = %v, want empty", pat)
	}
	// A ReLU output layer does not branch a later decision: excluded.
	outOnly := &Network{Layers: []*Layer{
		{W: [][]float64{{1}}, B: []float64{0}, Act: ReLU},
	}}
	if pat := outOnly.ActivationPattern([]float64{3}); len(pat) != 0 {
		t.Fatalf("single-layer net pattern = %v, want empty", pat)
	}
}

func TestActivationPatternZeroBoundary(t *testing.T) {
	// A pre-activation of exactly 0 counts as inactive (z > 0 is strict).
	net := &Network{Layers: []*Layer{
		{W: [][]float64{{1}}, B: []float64{0}, Act: ReLU},
		{W: [][]float64{{1}}, B: []float64{0}, Act: Identity},
	}}
	if pat := net.ActivationPattern([]float64{0}); pat[0][0] {
		t.Fatal("zero pre-activation classified active, want inactive")
	}
	if pat := net.ActivationPattern([]float64{math.SmallestNonzeroFloat64}); !pat[0][0] {
		t.Fatal("smallest positive pre-activation classified inactive, want active")
	}
}

func TestActivationPatternSingleLayerNet(t *testing.T) {
	net := &Network{Layers: []*Layer{
		{W: [][]float64{{2, 1}}, B: []float64{1}, Act: Identity},
	}}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	if pat := net.ActivationPattern([]float64{1, 1}); len(pat) != 0 {
		t.Fatalf("single-layer pattern = %v, want empty", pat)
	}
	if net.ScratchLen() != 0 {
		t.Fatalf("single-layer ScratchLen = %d, want 0", net.ScratchLen())
	}
	if got := net.Forward([]float64{1, 1})[0]; got != 4 {
		t.Fatalf("single-layer Forward = %g, want 4", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	net := testNet(t, []int{4})
	cl := net.Clone()
	cl.Layers[0].W[0][0] += 100
	if net.Layers[0].W[0][0] == cl.Layers[0].W[0][0] {
		t.Fatal("Clone shares weight storage")
	}
}

func TestArchString(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := New(Config{Name: "p", InputDim: 84, Hidden: []int{25, 25, 25, 25}, OutputDim: 10, HiddenAct: ReLU}, rng)
	if got := net.ArchString(); got != "I4x25" {
		t.Fatalf("ArchString = %q, want I4x25", got)
	}
	mixed := New(Config{Name: "m", InputDim: 4, Hidden: []int{3, 5}, OutputDim: 1, HiddenAct: ReLU}, rng)
	if got := mixed.ArchString(); got != "I[3,5]" {
		t.Fatalf("ArchString = %q, want I[3,5]", got)
	}
}

func TestValidateCatchesBadShapes(t *testing.T) {
	net := testNet(t, []int{4})
	net.Layers[1].B = net.Layers[1].B[:0]
	if net.Validate() == nil {
		t.Fatal("Validate accepted truncated bias")
	}
	net2 := testNet(t, []int{4})
	net2.Layers[0].W[0][0] = math.NaN()
	if net2.Validate() == nil {
		t.Fatal("Validate accepted NaN weight")
	}
	net3 := testNet(t, []int{4})
	net3.InputNames = []string{"only-one"}
	if net3.Validate() == nil {
		t.Fatal("Validate accepted wrong name count")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	net := testNet(t, []int{5, 4})
	net.InputNames = []string{"a", "b", "c"}
	var buf bytes.Buffer
	if err := net.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3}
	want, got := net.Forward(x), back.Forward(x)
	for i := range want {
		if math.Abs(want[i]-got[i]) > 1e-12 {
			t.Fatalf("round-trip output differs: %v vs %v", want, got)
		}
	}
	if back.InputName(0) != "a" || back.InputName(5) != "x5" {
		t.Fatal("names lost or placeholder broken")
	}
}

func TestSaveLoadFile(t *testing.T) {
	net := testNet(t, []int{4})
	path := filepath.Join(t.TempDir(), "net.json")
	if err := net.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1, 2, 3}
	if math.Abs(net.Forward(x)[0]-back.Forward(x)[0]) > 1e-12 {
		t.Fatal("file round-trip changed the network")
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	if _, err := Decode(bytes.NewBufferString(`{"layers":[]}`)); err == nil {
		t.Fatal("empty-layer network must fail validation")
	}
	if _, err := Decode(bytes.NewBufferString(`not json`)); err == nil {
		t.Fatal("non-JSON must fail")
	}
}

func TestQuickReLUMonotoneInPositiveDirection(t *testing.T) {
	// Property: for a single-ReLU net with a positive weight, increasing the
	// input never decreases the output.
	net := &Network{Layers: []*Layer{
		{W: [][]float64{{1.5}}, B: []float64{-0.3}, Act: ReLU},
	}}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.Abs(a) > 1e12 || math.Abs(b) > 1e12 {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		return net.Forward([]float64{lo})[0] <= net.Forward([]float64{hi})[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickForwardDeterministic(t *testing.T) {
	net := testNet(t, []int{7, 7})
	f := func(x [3]float64) bool {
		for _, v := range x {
			if math.IsNaN(v) || math.Abs(v) > 1e12 {
				return true
			}
		}
		a := net.Forward(x[:])
		b := net.Forward(x[:])
		return a[0] == b[0] && a[1] == b[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicInit(t *testing.T) {
	a := New(Config{Name: "a", InputDim: 3, Hidden: []int{4}, OutputDim: 1, HiddenAct: ReLU}, rand.New(rand.NewSource(9)))
	b := New(Config{Name: "b", InputDim: 3, Hidden: []int{4}, OutputDim: 1, HiddenAct: ReLU}, rand.New(rand.NewSource(9)))
	if a.Layers[0].W[0][0] != b.Layers[0].W[0][0] {
		t.Fatal("same seed produced different weights")
	}
}
