package core

import (
	"math/rand"

	"repro/internal/highway"
	"repro/internal/train"
)

// HintAugment implements the data-generation half of "hints" training
// (Abu-Mostafa 1995, the paper's concluding remark iii): since the safety
// property is known analytically — "left occupied ⇒ no positive lateral
// velocity" — we can manufacture unlimited training examples of it across
// the *whole* property region, not just the on-policy distribution the
// simulator visits. Combined with the HintPenalty loss this pulls the
// network's worst case (what the verifier bounds) down, not merely its
// average case.
//
// Each sample is a uniformly random feature vector constrained to the
// left-occupied region, labeled with a safe action: lateral velocity drawn
// from [-1, 0] and a mild longitudinal acceleration.
func HintAugment(n int, rng *rand.Rand) []train.Sample {
	region := LeftOccupiedRegion()
	out := make([]train.Sample, n)
	for i := range out {
		x := make([]float64, highway.FeatureDim)
		for j, iv := range region.Box {
			x[j] = iv.Lo + rng.Float64()*(iv.Hi-iv.Lo)
		}
		// Honest booleans for all presence flags except the pinned left one.
		for o := highway.Orientation(0); o < highway.NumOrientations; o++ {
			p := highway.NeighborFeature(o, highway.NPPresence)
			if region.Box[p].Lo == region.Box[p].Hi {
				continue // pinned by the region (the left slot)
			}
			if rng.Intn(2) == 0 {
				x[p] = 0
			} else {
				x[p] = 1
			}
		}
		out[i] = train.Sample{
			X: x,
			Y: []float64{-rng.Float64(), rng.NormFloat64() * 0.3},
		}
	}
	return out
}
