package core

import (
	"context"

	"repro/pkg/vnn"
)

// The paper decomposes the predictor's action into a lateral-velocity
// indicator ("is it feasible to switch lanes") and a longitudinal-
// acceleration indicator ("is it feasible to accelerate"). The case study
// verifies the lateral property; this file adds the symmetric longitudinal
// one — "if a vehicle is close ahead, the predictor never suggests strong
// acceleration" — exercising the same machinery on the second indicator.

// FrontGapClose is the upper end of the normalized front gap considered
// "close ahead"; see vnn.FrontGapClose.
const FrontGapClose = vnn.FrontGapClose

// FrontCloseRegion quantifies over every input with a vehicle close ahead;
// it lives in pkg/vnn together with the rest of the query surface.
func FrontCloseRegion() *vnn.Region { return vnn.FrontCloseRegion() }

// MuLongOutputs lists the raw-output indices of all component longitudinal-
// acceleration means.
func (p *Predictor) MuLongOutputs() []int { return vnn.MuLongOutputs(p.K) }

// VerifyFrontSafety bounds the maximum longitudinal-acceleration component
// mean over the close-front region. A sound bound on every component mean
// bounds the mixture's suggested acceleration.
func (p *Predictor) VerifyFrontSafety(ctx context.Context, opts vnn.Options) (*vnn.Result, error) {
	cn, err := vnn.Compile(ctx, p.Net, FrontCloseRegion(), opts)
	if err != nil {
		return nil, err
	}
	return vnn.VerifyOne(ctx, cn, vnn.MaxOverOutputs(p.MuLongOutputs()...))
}

// ProveFrontSafetyBound proves the acceleration suggestion stays at or
// below threshold (m/s²) whenever a vehicle is close ahead.
func (p *Predictor) ProveFrontSafetyBound(ctx context.Context, threshold float64, opts vnn.Options) (vnn.Outcome, []*vnn.Result, error) {
	cn, err := vnn.Compile(ctx, p.Net, FrontCloseRegion(), opts)
	if err != nil {
		return 0, nil, err
	}
	props := make([]vnn.Property, 0, p.K)
	for _, out := range p.MuLongOutputs() {
		props = append(props, vnn.AtMost(out, threshold))
	}
	results, err := vnn.Verify(ctx, cn, props...)
	if err != nil {
		return 0, nil, err
	}
	return vnn.Worst(results), results, nil
}
