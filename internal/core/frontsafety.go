package core

import (
	"repro/internal/bounds"
	"repro/internal/gmm"
	"repro/internal/highway"
	"repro/internal/verify"
)

// The paper decomposes the predictor's action into a lateral-velocity
// indicator ("is it feasible to switch lanes") and a longitudinal-
// acceleration indicator ("is it feasible to accelerate"). The case study
// verifies the lateral property; this file adds the symmetric longitudinal
// one — "if a vehicle is close ahead, the predictor never suggests strong
// acceleration" — exercising the same machinery on the second indicator.

// FrontGapClose is the upper end of the normalized front gap considered
// "close ahead" (0.15 × SensorRange = 15 m).
const FrontGapClose = 0.15

// FrontCloseRegion quantifies over every input with a vehicle close ahead:
// front presence pinned to 1, front gap within [0, FrontGapClose], and the
// front vehicle no faster than the ego (non-positive normalized relative
// speed, i.e. ≤ 0.5 after normalization).
func FrontCloseRegion() *verify.InputRegion {
	box := make([]bounds.Interval, highway.FeatureDim)
	for i := range box {
		box[i] = bounds.Interval{Lo: 0, Hi: 1}
	}
	pin := func(f int, lo, hi float64) { box[f] = bounds.Interval{Lo: lo, Hi: hi} }
	pin(highway.NeighborFeature(highway.Front, highway.NPPresence), 1, 1)
	pin(highway.NeighborFeature(highway.Front, highway.NPGap), 0, FrontGapClose)
	pin(highway.NeighborFeature(highway.Front, highway.NPRelSpeed), 0, 0.5)
	return &verify.InputRegion{Box: box}
}

// MuLongOutputs lists the raw-output indices of all component longitudinal-
// acceleration means.
func (p *Predictor) MuLongOutputs() []int {
	out := make([]int, p.K)
	for i := range out {
		out[i] = gmm.MuLongIndex(i)
	}
	return out
}

// VerifyFrontSafety bounds the maximum longitudinal-acceleration component
// mean over the close-front region. A sound bound on every component mean
// bounds the mixture's suggested acceleration.
func (p *Predictor) VerifyFrontSafety(opts verify.Options) (*verify.MaxResult, error) {
	return verify.MaxOverOutputs(p.Net, FrontCloseRegion(), p.MuLongOutputs(), opts)
}

// ProveFrontSafetyBound proves the acceleration suggestion stays at or
// below threshold (m/s²) whenever a vehicle is close ahead.
func (p *Predictor) ProveFrontSafetyBound(threshold float64, opts verify.Options) (verify.Outcome, []*verify.ProveResult, error) {
	region := FrontCloseRegion()
	results := make([]*verify.ProveResult, 0, p.K)
	worst := verify.Proved
	for _, out := range p.MuLongOutputs() {
		r, err := verify.ProveUpperBound(p.Net, region, out, threshold, opts)
		if err != nil {
			return 0, nil, err
		}
		results = append(results, r)
		switch r.Outcome {
		case verify.Violated:
			return verify.Violated, results, nil
		case verify.Timeout:
			worst = verify.Timeout
		}
	}
	return worst, results, nil
}
