package core

import (
	"repro/pkg/vnn"
)

// The paper decomposes the predictor's action into a lateral-velocity
// indicator ("is it feasible to switch lanes") and a longitudinal-
// acceleration indicator ("is it feasible to accelerate"). The symmetric
// longitudinal property — "if a vehicle is close ahead, the predictor
// never suggests strong acceleration" — lives on vnn.Predictor next to
// the lateral one; these aliases remain for internal callers.

// FrontGapClose is the upper end of the normalized front gap considered
// "close ahead"; see vnn.FrontGapClose.
const FrontGapClose = vnn.FrontGapClose

// FrontCloseRegion quantifies over every input with a vehicle close ahead;
// it lives in pkg/vnn together with the rest of the query surface.
func FrontCloseRegion() *vnn.Region { return vnn.FrontCloseRegion() }
