package core

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/highway"
	"repro/internal/train"
	"repro/pkg/vnn"
)

// PipelineConfig configures a full certification run.
type PipelineConfig struct {
	// Depth and Width give the I<Depth>×<Width> architecture.
	Depth, Width int
	// Components is the gmm head size; 0 means DefaultComponents.
	Components int
	// Seed drives data generation, initialization and training.
	Seed int64
	// Dataset controls synthetic data generation; zero value uses defaults.
	Dataset highway.DatasetConfig
	// Epochs of training; 0 means 30.
	Epochs int
	// Hints enables property-penalty training (future work iii).
	Hints bool
	// HintThreshold is the lateral velocity the penalty activates at
	// (m/s); 0 means 0.2.
	HintThreshold float64
	// SafetyThreshold is the verified bound (m/s); 0 means 3.0 (Table II).
	SafetyThreshold float64
	// Verify controls the formal verification step.
	Verify vnn.Options
	// VerifyTimeout bounds the verification step's wall clock (compilation
	// included); 0 means the pipeline's context alone governs it.
	VerifyTimeout time.Duration
	// SkipVerify omits the formal MILP queries (for quick smoke runs).
	// The network is still compiled once — bound propagation plus the
	// MILP encoding, cheap relative to any search — because traceability
	// and coverage read the compiled artifact; only the branch-and-bound
	// verification work is skipped.
	SkipVerify bool
}

// PipelineResult is the certification dossier: one artifact per Table I
// row, each produced by a public vnn.Analysis running against one
// compiled network (see Findings).
type PipelineResult struct {
	Arch string

	// Specification validity (Sec. II C).
	DataReport  *vnn.DataReport
	DataRemoved int
	Samples     int

	// Training.
	FinalLoss float64
	ValLoss   float64

	// Implementation understandability (Sec. II A).
	Traceability *vnn.TraceabilityReport

	// Implementation correctness: testing view (Sec. II B, negative result).
	Coverage          *vnn.CoverageSuite
	BranchCount       string // 2^n as a decimal string
	RequiredMCDCTests int

	// Implementation correctness: testing view, falsification attempt —
	// the best unsafe lateral velocity PGD attacks could reach (a lower
	// bound on MaxLatVel; the gap between them is what only formal
	// analysis can close).
	AttackLatVel float64

	// Operation-time dependability: the runtime activation-pattern
	// monitor built from the training data against the compiled bounds,
	// audited with coverage-generated region inputs.
	Monitor *vnn.MonitorFinding

	// Implementation correctness: formal view (Sec. II B, positive result).
	MaxLatVel   *vnn.Result
	ProveResult vnn.Outcome
	Threshold   float64

	// Findings are the raw analysis results the dossier was assembled
	// from, in execution order — feed them to vnn.NewAnalysisReport for
	// the machine-readable document the vnnd service also speaks.
	Findings []*vnn.Finding

	Predictor *Predictor
	Elapsed   time.Duration
}

// Certified reports whether the dossier supports certification: valid data,
// and a proven safety bound.
func (r *PipelineResult) Certified() bool {
	if r.DataReport == nil || !r.DataReport.Valid() && r.DataRemoved == 0 {
		return false
	}
	return r.ProveResult == vnn.Proved
}

// String renders the dossier.
func (r *PipelineResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "certification dossier: %s\n", r.Arch)
	fmt.Fprintf(&b, "  data: %d samples, %d violations, %d removed\n", r.Samples, len(r.DataReport.Violations), r.DataRemoved)
	fmt.Fprintf(&b, "  training: final loss %.4f (val %.4f)\n", r.FinalLoss, r.ValLoss)
	fmt.Fprintf(&b, "  traceability: %d neurons analyzed, %d dead\n", len(r.Traceability.Neurons), len(r.Traceability.DeadNeurons()))
	fmt.Fprintf(&b, "  testing: %s; exhaustive branches=%s, MC/DC lower bound=%d tests\n", r.Coverage, r.BranchCount, r.RequiredMCDCTests)
	if r.Monitor != nil {
		fmt.Fprintf(&b, "  runtime monitor: %d patterns from %d inputs (%d rejected as unreachable), audit flagged %d/%d (%.1f%%)\n",
			r.Monitor.Patterns, r.Monitor.BuildInputs, r.Monitor.RejectedUnreachable,
			r.Monitor.Flagged, r.Monitor.Audited, 100*r.Monitor.FlaggedFraction)
	}
	if r.MaxLatVel != nil {
		fmt.Fprintf(&b, "  falsification: best attack reached %.4f m/s\n", r.AttackLatVel)
		fmt.Fprintf(&b, "  verification: max lateral velocity %.4f m/s (exact=%v, %.1fs)\n",
			r.MaxLatVel.Value, r.MaxLatVel.Exact, r.MaxLatVel.Stats.Elapsed.Seconds())
		fmt.Fprintf(&b, "  safety bound %.1f m/s: %v\n", r.Threshold, r.ProveResult)
	}
	fmt.Fprintf(&b, "  certified: %v\n", r.Certified())
	return b.String()
}

// RunPipeline executes the full certification methodology on a freshly
// generated dataset and a freshly trained predictor. The context governs
// the whole run; its cancellation reaches into the verification step's
// simplex iterations, and an interrupted verification still contributes
// its anytime bounds to the dossier.
func RunPipeline(ctx context.Context, cfg PipelineConfig) (*PipelineResult, error) {
	start := time.Now()
	if cfg.Components == 0 {
		cfg.Components = DefaultComponents
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 30
	}
	if cfg.HintThreshold == 0 {
		cfg.HintThreshold = 0.2
	}
	if cfg.SafetyThreshold == 0 {
		cfg.SafetyThreshold = 3.0
	}
	if cfg.Dataset.Episodes == 0 {
		cfg.Dataset = highway.DefaultDatasetConfig()
	}
	cfg.Dataset.Sim.Seed = cfg.Seed

	// 1. Specification: generate and validate data (Table I, row 3).
	data, err := highway.GenerateDataset(cfg.Dataset)
	if err != nil {
		return nil, fmt.Errorf("core: dataset: %w", err)
	}
	rules := SafetyRules(1e-9)
	report := vnn.ValidateData(data, rules)
	clean, removed := vnn.SanitizeData(data, rules)
	if len(clean) == 0 {
		return nil, fmt.Errorf("core: no samples survived validation")
	}

	res := &PipelineResult{
		DataReport:  report,
		DataRemoved: removed,
		Samples:     len(clean),
		Threshold:   cfg.SafetyThreshold,
	}

	// 2. Train the predictor.
	pred := NewPredictorNet(cfg.Depth, cfg.Width, cfg.Components, cfg.Seed)
	res.Arch = pred.Net.ArchString()
	res.Predictor = pred
	trainSet, valSet := train.Split(clean, 0.15, rand.New(rand.NewSource(cfg.Seed+1)))
	trainer := &train.Trainer{
		Net:       pred.Net,
		Loss:      train.MDN{K: cfg.Components},
		Opt:       train.NewAdam(0.003),
		BatchSize: 64,
		Rng:       rand.New(rand.NewSource(cfg.Seed + 2)),
		ClipNorm:  20,
	}
	curve := trainer.Fit(trainSet, cfg.Epochs)
	if cfg.Hints {
		// Future-work item (iii): fine-tune the trained network under the
		// known property — penalty loss, property-derived samples, and
		// counterexample-guided rounds (see HintFineTune).
		if err := HintFineTune(pred, trainSet, HintConfig{
			Threshold: cfg.HintThreshold,
			Seed:      cfg.Seed + 3,
		}); err != nil {
			return nil, fmt.Errorf("core: hints: %w", err)
		}
	}
	res.FinalLoss = curve[len(curve)-1]
	if len(valSet) > 0 {
		res.ValLoss = trainer.MeanLoss(valSet)
	}

	// 3–6. The rest of the dossier runs through the public dependability
	// API: the network is compiled against the property region exactly
	// once, then traceability (Table I, row 1 — interval conditions read
	// the compiled bounds), coverage (row 2−), the falsification pre-pass,
	// and the formal queries (row 2+) all execute as vnn analyses over
	// that one shared artifact. As before the redesign, the VerifyTimeout
	// budget covers the compile plus the formal batch only: the compile
	// deadline is taken now, and the formal batch below receives whatever
	// the compile left over — the analyses in between run outside the
	// budget and cannot starve the proof.
	compileStart := time.Now()
	cctx := ctx
	if cfg.VerifyTimeout > 0 {
		var cancel context.CancelFunc
		cctx, cancel = context.WithTimeout(ctx, cfg.VerifyTimeout)
		defer cancel()
	}
	cn, err := vnn.Compile(cctx, pred.Net, LeftOccupiedRegion(), cfg.Verify)
	if err != nil {
		return nil, fmt.Errorf("core: compile: %w", err)
	}
	compileElapsed := time.Since(compileStart)
	inputs := make([][]float64, 0, 512)
	for i := 0; i < len(clean) && i < 512; i++ {
		inputs = append(inputs, clean[i].X)
	}
	findings, err := vnn.Analyze(ctx, cn,
		&vnn.Traceability{Data: inputs, FeatureNames: highway.FeatureNames()},
		&vnn.Coverage{Data: inputs},
		&vnn.Falsification{Outputs: pred.MuLatOutputs(), Restarts: 6, Steps: 40, Seed: cfg.Seed + 4},
		&vnn.MonitorAudit{Data: inputs, AuditTests: 400, Seed: cfg.Seed + 5},
	)
	if err != nil {
		return nil, fmt.Errorf("core: analyze: %w", err)
	}
	res.Findings = findings
	res.Traceability = findings[0].Traceability
	cov := findings[1].Coverage
	res.Coverage = cov.Suite
	res.BranchCount = cov.BranchCombinations
	res.RequiredMCDCTests = cov.RequiredMCDCTests
	res.AttackLatVel = findings[2].Falsification.Value
	res.Monitor = findings[3].Monitor

	if !cfg.SkipVerify {
		vctx := ctx
		if cfg.VerifyTimeout > 0 {
			remaining := cfg.VerifyTimeout - compileElapsed
			if remaining <= 0 {
				remaining = time.Nanosecond // budget spent: formal queries answer with anytime bounds
			}
			var cancel context.CancelFunc
			vctx, cancel = context.WithTimeout(ctx, remaining)
			defer cancel()
		}
		props := []vnn.Property{vnn.MaxOverOutputs(pred.MuLatOutputs()...)}
		for _, out := range pred.MuLatOutputs() {
			props = append(props, vnn.AtMost(out, cfg.SafetyThreshold))
		}
		formal, err := vnn.AnalyzeOne(vctx, cn, &vnn.Verification{Properties: props})
		if err != nil {
			return nil, fmt.Errorf("core: verify: %w", err)
		}
		res.Findings = append(res.Findings, formal)
		res.MaxLatVel = formal.Verification[0]
		res.ProveResult = vnn.Worst(formal.Verification[1:])
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
