// Package core assembles the paper's case study: an ANN-based highway
// motion predictor (84 inputs → Gaussian-mixture action distribution) and
// the certification pipeline of Table I — data validation, training,
// neuron-to-feature traceability, coverage analysis, runtime monitoring
// and formal verification of the safety property "if a vehicle exists on
// the left of the ego vehicle, the predictor never suggests a large left
// lateral velocity".
//
// The predictor itself — construction, decoding, safety queries, hints
// fine-tuning, safety rules — is public API now (pkg/vnn, where the
// examples use it without internal imports); this package keeps thin
// aliases for its internal callers and owns the end-to-end certification
// pipeline (RunPipeline).
package core

import (
	"math/rand"

	"repro/pkg/vnn"
)

// DefaultComponents is the number of mixture components in the predictor's
// Gaussian-mixture head.
const DefaultComponents = 3

// Predictor wraps a trained network with its mixture-head decoding; it is
// the public vnn.Predictor.
type Predictor = vnn.Predictor

// HintConfig tunes HintFineTune; it is the public vnn.HintConfig.
type HintConfig = vnn.HintConfig

// NewPredictorNet constructs an untrained predictor network in the paper's
// I<depth>×<width> family (see vnn.NewPredictor).
func NewPredictorNet(depth, width, k int, seed int64) *Predictor {
	return vnn.NewPredictor(depth, width, k, seed)
}

// LeftOccupiedRegion is the input region of the paper's safety property;
// it lives in pkg/vnn together with the rest of the query surface.
func LeftOccupiedRegion() *vnn.Region { return vnn.LeftOccupiedRegion() }

// SafetyRules returns the data-validation rules of the case study (see
// vnn.SafetyRules).
func SafetyRules(latTol float64) []vnn.DataRule { return vnn.SafetyRules(latTol) }

// HintAugment manufactures property-derived training samples (see
// vnn.HintAugment).
func HintAugment(n int, rng *rand.Rand) []vnn.Sample { return vnn.HintAugment(n, rng) }

// HintFineTune fine-tunes a trained predictor under the known safety
// property (see vnn.HintFineTune).
func HintFineTune(pred *Predictor, data []vnn.Sample, cfg HintConfig) error {
	return vnn.HintFineTune(pred, data, cfg)
}

// AdversarialHintRounds runs counterexample-guided hint training rounds
// (see vnn.AdversarialHintRounds).
func AdversarialHintRounds(pred *Predictor, trainer *vnn.Trainer, data []vnn.Sample, rounds, epochsPerRound, samplesPerRound int, rng *rand.Rand) ([]vnn.Sample, error) {
	return vnn.AdversarialHintRounds(pred, trainer, data, rounds, epochsPerRound, samplesPerRound, rng)
}
