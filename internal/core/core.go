// Package core assembles the paper's case study: an ANN-based highway
// motion predictor (84 inputs → Gaussian-mixture action distribution) and
// the certification pipeline of Table I — data validation, training,
// neuron-to-feature traceability, coverage analysis and formal verification
// of the safety property "if a vehicle exists on the left of the ego
// vehicle, the predictor never suggests a large left lateral velocity".
package core

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/gmm"
	"repro/internal/highway"
	"repro/internal/nn"
	"repro/internal/train"
	"repro/pkg/vnn"
)

// DefaultComponents is the number of mixture components in the predictor's
// Gaussian-mixture head.
const DefaultComponents = 3

// Predictor wraps a trained network with its mixture-head decoding.
type Predictor struct {
	Net *nn.Network
	K   int // mixture components
}

// NewPredictorNet constructs an untrained predictor network in the paper's
// I<depth>×<width> family: 84 inputs, `depth` hidden ReLU layers of
// `width` neurons, and a linear gmm head with k components.
func NewPredictorNet(depth, width, k int, seed int64) *Predictor {
	if depth < 1 || width < 1 || k < 1 {
		panic(fmt.Sprintf("core: bad predictor shape depth=%d width=%d k=%d", depth, width, k))
	}
	hidden := make([]int, depth)
	for i := range hidden {
		hidden[i] = width
	}
	rng := rand.New(rand.NewSource(seed))
	outNames := make([]string, k*gmm.RawPerComponent)
	for i := 0; i < k; i++ {
		base := i * gmm.RawPerComponent
		outNames[base+gmm.RawLogit] = fmt.Sprintf("c%d.logit", i)
		outNames[base+gmm.RawMuLat] = fmt.Sprintf("c%d.mu_lat", i)
		outNames[base+gmm.RawMuLong] = fmt.Sprintf("c%d.mu_long", i)
		outNames[base+gmm.RawLogSigLat] = fmt.Sprintf("c%d.logsig_lat", i)
		outNames[base+gmm.RawLogSigLong] = fmt.Sprintf("c%d.logsig_long", i)
	}
	net := nn.New(nn.Config{
		Name:        fmt.Sprintf("predictor-I%dx%d", depth, width),
		InputDim:    highway.FeatureDim,
		Hidden:      hidden,
		OutputDim:   k * gmm.RawPerComponent,
		HiddenAct:   nn.ReLU,
		OutputAct:   nn.Identity,
		InputNames:  highway.FeatureNames(),
		OutputNames: outNames,
	}, rng)
	train.InitMDNHead(net, k, 1.0, -1, rng)
	return &Predictor{Net: net, K: k}
}

// Predict decodes the network output at x into an action distribution.
func (p *Predictor) Predict(x []float64) gmm.Mixture {
	return gmm.Decode(p.Net.Forward(x))
}

// SuggestAction returns the dominant-component action suggestion
// (lateral velocity, longitudinal acceleration).
func (p *Predictor) SuggestAction(x []float64) (latVel, longAcc float64) {
	c := p.Predict(x).Dominant()
	return c.Mean[gmm.LatVel], c.Mean[gmm.LongAcc]
}

// MuLatOutputs lists the raw-output indices of all component lateral-
// velocity means — the outputs the verifier bounds.
func (p *Predictor) MuLatOutputs() []int { return vnn.MuLatOutputs(p.K) }

// LeftOccupiedRegion is the input region of the paper's safety property;
// it lives in pkg/vnn together with the rest of the query surface.
func LeftOccupiedRegion() *vnn.Region { return vnn.LeftOccupiedRegion() }

// VerifySafety bounds the maximum lateral-velocity component mean over the
// left-occupied region (the Table II "maximum lateral velocity" column).
// Bounding every component mean soundly bounds the mixture mean. The
// network is compiled for this one query; callers running several queries
// should vnn.Compile once themselves.
func (p *Predictor) VerifySafety(ctx context.Context, opts vnn.Options) (*vnn.Result, error) {
	cn, err := vnn.Compile(ctx, p.Net, LeftOccupiedRegion(), opts)
	if err != nil {
		return nil, err
	}
	return vnn.VerifyOne(ctx, cn, vnn.MaxOverOutputs(p.MuLatOutputs()...))
}

// ProveSafetyBound proves that no lateral-velocity component mean exceeds
// the threshold over the left-occupied region (Table II's last row, with
// threshold 3 m/s in the paper). It returns the aggregate verdict and the
// per-component results, all answered on one compiled encoding.
func (p *Predictor) ProveSafetyBound(ctx context.Context, threshold float64, opts vnn.Options) (vnn.Outcome, []*vnn.Result, error) {
	cn, err := vnn.Compile(ctx, p.Net, LeftOccupiedRegion(), opts)
	if err != nil {
		return 0, nil, err
	}
	props := make([]vnn.Property, 0, p.K)
	for _, out := range p.MuLatOutputs() {
		props = append(props, vnn.AtMost(out, threshold))
	}
	results, err := vnn.Verify(ctx, cn, props...)
	if err != nil {
		return 0, nil, err
	}
	return vnn.Worst(results), results, nil
}
