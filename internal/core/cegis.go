package core

import (
	"math/rand"

	"repro/internal/attack"
	"repro/internal/highway"
	"repro/internal/train"
)

// HintConfig tunes HintFineTune.
type HintConfig struct {
	// Threshold is the lateral velocity the penalty activates at (m/s);
	// 0 means 0.2.
	Threshold float64
	// Lambda scales the penalty; 0 means 8.
	Lambda float64
	// Rounds of counterexample-guided augmentation; 0 means 3.
	Rounds int
	// EpochsPerRound of retraining; 0 means 3.
	EpochsPerRound int
	// SamplesPerRound of safe-labeled attack neighbourhoods; 0 means 20.
	SamplesPerRound int
	// LR is the fine-tuning learning rate; 0 means 0.001.
	LR float64
	// Seed drives augmentation and attack randomness.
	Seed int64
}

// HintFineTune applies the paper's future-work item (iii) to an already
// trained predictor: fine-tune in place under the known safety property,
// combining the hint penalty loss, uniform property-derived samples
// (HintAugment) and counterexample-guided rounds (AdversarialHintRounds).
// Across seeds this reliably lowers the *verified* maximum lateral velocity
// relative to the network's own starting point.
func HintFineTune(pred *Predictor, data []train.Sample, cfg HintConfig) error {
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.2
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 8
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 3
	}
	if cfg.EpochsPerRound == 0 {
		cfg.EpochsPerRound = 3
	}
	if cfg.SamplesPerRound == 0 {
		cfg.SamplesPerRound = 20
	}
	if cfg.LR == 0 {
		cfg.LR = 0.001
	}
	loss := train.HintPenalty{
		Base:      train.MDN{K: pred.K},
		Predicate: highway.LeftOccupiedInFeatures,
		Threshold: cfg.Threshold,
		Lambda:    cfg.Lambda,
		K:         pred.K,
	}
	trainer := &train.Trainer{
		Net: pred.Net, Loss: loss, Opt: train.NewAdam(cfg.LR),
		BatchSize: 64, Rng: rand.New(rand.NewSource(cfg.Seed + 1)), ClipNorm: 20,
	}
	aug := append(append([]train.Sample(nil), data...),
		HintAugment(len(data)/2, rand.New(rand.NewSource(cfg.Seed+2)))...)
	_, err := AdversarialHintRounds(pred, trainer, aug, cfg.Rounds, cfg.EpochsPerRound, cfg.SamplesPerRound, rand.New(rand.NewSource(cfg.Seed+3)))
	return err
}

// AdversarialHintRounds strengthens hints training with counterexample
// guidance (a CEGIS-style loop): each round attacks the *current* network
// over the left-occupied region to locate its worst suggested lateral
// velocities, adds those concrete inputs as training samples labeled with a
// safe action, and retrains. Unlike uniform region sampling, this targets
// exactly the corners the verifier will maximize over, so the verified
// maximum reliably decreases.
//
// The trainer must already be configured (loss, optimizer, rng); data is
// the base dataset, which is not mutated. The augmented dataset is
// returned so callers can keep training or inspect the added samples.
func AdversarialHintRounds(pred *Predictor, trainer *train.Trainer, data []train.Sample, rounds, epochsPerRound, samplesPerRound int, rng *rand.Rand) ([]train.Sample, error) {
	region := LeftOccupiedRegion()
	augmented := append([]train.Sample(nil), data...)
	for r := 0; r < rounds; r++ {
		for _, out := range pred.MuLatOutputs() {
			res, err := attack.Maximize(pred.Net, region, out, rng, attack.Options{
				Restarts: 4 + samplesPerRound/4,
				Steps:    50,
			})
			if err != nil {
				return nil, err
			}
			// The attack's endpoint plus jittered neighbours become safe-
			// labeled hint samples; jitter keeps the lesson from being a
			// single point the network can route around.
			for s := 0; s < samplesPerRound; s++ {
				x := make([]float64, len(res.Best))
				for i, v := range res.Best {
					iv := region.Box[i]
					jit := v
					if iv.Hi > iv.Lo {
						jit += rng.NormFloat64() * 0.02 * (iv.Hi - iv.Lo)
						if jit < iv.Lo {
							jit = iv.Lo
						}
						if jit > iv.Hi {
							jit = iv.Hi
						}
					}
					x[i] = jit
				}
				augmented = append(augmented, train.Sample{
					X: x,
					Y: []float64{-0.2 - 0.6*rng.Float64(), rng.NormFloat64() * 0.2},
				})
			}
		}
		trainer.Fit(augmented, epochsPerRound)
	}
	return augmented, nil
}
