package core

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/gmm"
	"repro/internal/highway"
	"repro/internal/train"
	"repro/pkg/vnn"
)

// testCtx builds a context with a deadline that is cleaned up with the test.
func testCtx(t *testing.T, d time.Duration) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	t.Cleanup(cancel)
	return ctx
}

func TestNewPredictorNetShape(t *testing.T) {
	p := NewPredictorNet(4, 10, 3, 1)
	if p.Net.InputDim() != 84 {
		t.Fatalf("input dim %d, want 84", p.Net.InputDim())
	}
	if p.Net.OutputDim() != 3*gmm.RawPerComponent {
		t.Fatalf("output dim %d", p.Net.OutputDim())
	}
	if got := p.Net.ArchString(); got != "I4x10" {
		t.Fatalf("arch %q", got)
	}
	if err := p.Net.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Net.InputName(highway.NeighborFeature(highway.Left, highway.NPPresence)) != "nbr.left.presence" {
		t.Fatal("input names not wired to highway features")
	}
}

func TestPredictDecodes(t *testing.T) {
	p := NewPredictorNet(2, 6, 2, 2)
	x := make([]float64, 84)
	for i := range x {
		x[i] = 0.5
	}
	mix := p.Predict(x)
	if err := mix.Validate(); err != nil {
		t.Fatal(err)
	}
	lat, long := p.SuggestAction(x)
	if math.IsNaN(lat) || math.IsNaN(long) {
		t.Fatal("NaN action")
	}
}

func TestMuLatOutputs(t *testing.T) {
	p := NewPredictorNet(1, 4, 3, 3)
	idx := p.MuLatOutputs()
	if len(idx) != 3 || idx[0] != 1 || idx[1] != 6 || idx[2] != 11 {
		t.Fatalf("MuLatOutputs = %v", idx)
	}
}

func TestLeftOccupiedRegion(t *testing.T) {
	r := LeftOccupiedRegion()
	if len(r.Box) != highway.FeatureDim {
		t.Fatalf("box dim %d", len(r.Box))
	}
	p := highway.NeighborFeature(highway.Left, highway.NPPresence)
	if r.Box[p].Lo != 1 || r.Box[p].Hi != 1 {
		t.Fatalf("left presence not pinned: %v", r.Box[p])
	}
	// A realistic left-occupied feature vector must be inside the region.
	cfg := highway.DefaultConfig()
	cfg.NumVehicles = 2
	s, err := highway.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Vehicles[0], s.Vehicles[1]
	a.Lane, a.TargetLane, a.Pos = 0, 0, 200
	b.Lane, b.TargetLane, b.Pos = 1, 1, 202
	obs := s.Observe(a)
	if !obs.LeftOccupied() {
		t.Fatal("setup broken: left not occupied")
	}
	if !r.Contains(obs.Encode(), 1e-9) {
		t.Fatal("realistic left-occupied encoding outside the verified region")
	}
}

func TestVerifySafetySmall(t *testing.T) {
	p := NewPredictorNet(2, 6, 2, 5)
	res, err := p.VerifySafety(testCtx(t, 30*time.Second), vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("small predictor should verify exactly")
	}
	// The witness must be a left-occupied input and reproduce the value.
	if res.Witness == nil {
		t.Fatal("no witness")
	}
	if !highway.LeftOccupiedInFeatures(res.Witness) {
		t.Fatal("witness does not have left occupied")
	}
	raw := p.Net.Forward(res.Witness)
	best := math.Inf(-1)
	for _, i := range p.MuLatOutputs() {
		if raw[i] > best {
			best = raw[i]
		}
	}
	if math.Abs(best-res.Value) > 1e-5 {
		t.Fatalf("witness value %g != reported %g", best, res.Value)
	}
}

func TestProveSafetyBound(t *testing.T) {
	p := NewPredictorNet(2, 6, 2, 6)
	mx, err := p.VerifySafety(context.Background(), vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	outcome, results, err := p.ProveSafetyBound(context.Background(), mx.Value+0.5, vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != vnn.Proved {
		t.Fatalf("outcome = %v above the max", outcome)
	}
	if len(results) != p.K {
		t.Fatalf("results = %d, want %d", len(results), p.K)
	}
	outcome, _, err = p.ProveSafetyBound(context.Background(), mx.Value-0.5, vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != vnn.Violated {
		t.Fatalf("outcome = %v below the max", outcome)
	}
}

func TestSafetyRulesCatchRiskyData(t *testing.T) {
	rules := SafetyRules(1e-9)
	x := make([]float64, highway.FeatureDim)
	x[highway.NeighborFeature(highway.Left, highway.NPPresence)] = 1
	risky := train.Sample{X: x, Y: []float64{1.5, 0}} // left move, left occupied
	found := false
	for _, r := range rules {
		if r.Check(risky) != "" {
			found = true
		}
	}
	if !found {
		t.Fatal("risky sample passed all rules")
	}
	safe := train.Sample{X: x, Y: []float64{-0.5, 0}}
	for _, r := range rules {
		if msg := r.Check(safe); msg != "" {
			t.Fatalf("safe sample rejected by %s: %s", r.Name(), msg)
		}
	}
}

func TestRunPipelineEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline in -short mode")
	}
	ds := highway.DefaultDatasetConfig()
	ds.Episodes = 2
	ds.StepsPerEpisode = 80
	res, err := RunPipeline(context.Background(), PipelineConfig{
		Depth: 2, Width: 8, Components: 2,
		Seed:          1,
		Dataset:       ds,
		Epochs:        8,
		VerifyTimeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Arch != "I2x8" {
		t.Fatalf("arch %q", res.Arch)
	}
	if res.Samples == 0 {
		t.Fatal("no samples")
	}
	if !res.DataReport.Valid() && res.DataRemoved == 0 {
		t.Fatal("invalid data not sanitized")
	}
	if res.Traceability == nil || len(res.Traceability.Neurons) != 16 {
		t.Fatalf("traceability missing or wrong size")
	}
	if res.Coverage == nil || res.Coverage.Tests() == 0 {
		t.Fatal("coverage missing")
	}
	if res.BranchCount != "65536" { // 2^16
		t.Fatalf("branch count %s, want 65536", res.BranchCount)
	}
	if res.MaxLatVel == nil || !res.MaxLatVel.Exact {
		t.Fatal("verification incomplete")
	}
	// The incomplete attack can never beat the complete verifier.
	if res.AttackLatVel > res.MaxLatVel.Value+1e-5 {
		t.Fatalf("attack %g beats verified max %g", res.AttackLatVel, res.MaxLatVel.Value)
	}
	s := res.String()
	if !strings.Contains(s, "certification dossier") || !strings.Contains(s, "max lateral velocity") {
		t.Fatalf("dossier rendering incomplete:\n%s", s)
	}
}

func TestRunPipelineSkipVerify(t *testing.T) {
	ds := highway.DefaultDatasetConfig()
	ds.Episodes = 1
	ds.StepsPerEpisode = 40
	res, err := RunPipeline(context.Background(), PipelineConfig{
		Depth: 1, Width: 4, Components: 2,
		Seed:       2,
		Dataset:    ds,
		Epochs:     2,
		SkipVerify: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLatVel != nil {
		t.Fatal("verification ran despite SkipVerify")
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed missing")
	}
}

func TestHintsReduceVerifiedMax(t *testing.T) {
	if testing.Short() {
		t.Skip("hints ablation in -short mode")
	}
	ds := highway.DefaultDatasetConfig()
	ds.Episodes = 2
	ds.StepsPerEpisode = 60
	run := func(hints bool) float64 {
		res, err := RunPipeline(context.Background(), PipelineConfig{
			Depth: 1, Width: 6, Components: 2,
			Seed: 3, Dataset: ds, Epochs: 10, Hints: hints,
			VerifyTimeout: 60 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxLatVel.Value
	}
	plain := run(false)
	hinted := run(true)
	// The hinted run fine-tunes the identical base network (same seed), so
	// its verified maximum must not be meaningfully larger.
	if hinted > plain+0.1 {
		t.Fatalf("hints increased verified max: plain %g hinted %g", plain, hinted)
	}
}

// TestHintFineTuneLowersVerifiedMax checks the CEGIS hint loop directly on
// a trained predictor: fine-tuning under the property reduces the verified
// maximum relative to the same network's starting point.
func TestHintFineTuneLowersVerifiedMax(t *testing.T) {
	if testing.Short() {
		t.Skip("hint fine-tune in -short mode")
	}
	ds := highway.DefaultDatasetConfig()
	ds.Episodes = 2
	ds.StepsPerEpisode = 80
	data, err := highway.GenerateDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	pred := NewPredictorNet(2, 4, 2, 131)
	trainer := &train.Trainer{
		Net: pred.Net, Loss: train.MDN{K: 2}, Opt: train.NewAdam(0.003),
		BatchSize: 64, Rng: rand.New(rand.NewSource(4)), ClipNorm: 20,
	}
	trainer.Fit(data, 8)
	ctx := testCtx(t, 2*time.Minute)
	opts := vnn.Options{Parallel: true}
	before, err := pred.VerifySafety(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := HintFineTune(pred, data, HintConfig{Seed: 9}); err != nil {
		t.Fatal(err)
	}
	after, err := pred.VerifySafety(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	if after.Value >= before.Value {
		t.Fatalf("fine-tuning did not lower the verified max: %g -> %g", before.Value, after.Value)
	}
}
