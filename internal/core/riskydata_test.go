package core

import (
	"testing"

	"repro/internal/dataval"
	"repro/internal/highway"
)

// TestPipelineCatchesRiskyData is the Sec. II (C) negative path: a fleet
// with reckless drivers produces property-violating samples, the validation
// rules flag them, and sanitization removes every one before training.
func TestPipelineCatchesRiskyData(t *testing.T) {
	cfg := highway.DefaultDatasetConfig()
	cfg.Sim.RecklessFraction = 0.7
	cfg.Sim.NumVehicles = 36
	cfg.Sim.SpeedJitter = 0.4
	cfg.Episodes = 3
	cfg.StepsPerEpisode = 250
	data, err := highway.GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rules := SafetyRules(1e-9)
	report := dataval.Validate(data, rules)
	if report.Valid() {
		t.Fatal("reckless data passed validation; rules are toothless")
	}
	if report.PerRule["no-left-move-when-left-occupied"] == 0 {
		t.Fatalf("violations not attributed to the safety rule: %v", report.PerRule)
	}
	clean, removed := dataval.Sanitize(data, rules)
	if removed == 0 {
		t.Fatal("sanitize removed nothing")
	}
	// After sanitization the property holds in the data again.
	for i, s := range clean {
		if highway.LeftOccupiedInFeatures(s.X) && s.Y[0] > 1e-9 {
			t.Fatalf("sample %d still violates after sanitize", i)
		}
	}
	if rep := dataval.Validate(clean, rules); !rep.Valid() {
		t.Fatalf("sanitized data still invalid: %v", rep.PerRule)
	}
}
