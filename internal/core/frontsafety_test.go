package core

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/highway"
	"repro/pkg/vnn"
)

func TestFrontCloseRegionPins(t *testing.T) {
	r := FrontCloseRegion()
	if len(r.Box) != highway.FeatureDim {
		t.Fatalf("box dim %d", len(r.Box))
	}
	p := highway.NeighborFeature(highway.Front, highway.NPPresence)
	if r.Box[p].Lo != 1 || r.Box[p].Hi != 1 {
		t.Fatal("front presence not pinned")
	}
	g := highway.NeighborFeature(highway.Front, highway.NPGap)
	if r.Box[g].Hi != FrontGapClose {
		t.Fatalf("front gap hi = %g", r.Box[g].Hi)
	}
	// A real close-front scene must fall inside the region.
	cfg := highway.DefaultConfig()
	cfg.NumVehicles = 2
	s, err := highway.NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Vehicles[0], s.Vehicles[1]
	a.Lane, a.TargetLane, a.Pos, a.Speed = 0, 0, 100, 30
	b.Lane, b.TargetLane, b.Pos, b.Speed = 0, 0, 100+10+b.Length, 25
	x := s.Observe(a).Encode()
	if !r.Contains(x, 1e-9) {
		t.Fatal("close-front scene outside the region")
	}
}

func TestMuLongOutputs(t *testing.T) {
	p := NewPredictorNet(1, 4, 2, 1)
	idx := p.MuLongOutputs()
	if len(idx) != 2 || idx[0] != 2 || idx[1] != 7 {
		t.Fatalf("MuLongOutputs = %v", idx)
	}
}

func TestVerifyFrontSafety(t *testing.T) {
	p := NewPredictorNet(2, 6, 2, 17)
	res, err := p.VerifyFrontSafety(testCtx(t, 30*time.Second), vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("small predictor should verify exactly")
	}
	// Witness must be a close-front scenario achieving the value.
	if res.Witness == nil || !FrontCloseRegion().Contains(res.Witness, 1e-6) {
		t.Fatal("witness invalid")
	}
	raw := p.Net.Forward(res.Witness)
	best := math.Inf(-1)
	for _, i := range p.MuLongOutputs() {
		best = math.Max(best, raw[i])
	}
	if math.Abs(best-res.Value) > 1e-5 {
		t.Fatalf("witness value %g != reported %g", best, res.Value)
	}
}

func TestProveFrontSafetyBound(t *testing.T) {
	p := NewPredictorNet(2, 6, 2, 18)
	mx, err := p.VerifyFrontSafety(context.Background(), vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	outcome, _, err := p.ProveFrontSafetyBound(context.Background(), mx.Value+0.25, vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != vnn.Proved {
		t.Fatalf("outcome %v above the max", outcome)
	}
	outcome, results, err := p.ProveFrontSafetyBound(context.Background(), mx.Value-0.25, vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != vnn.Violated {
		t.Fatalf("outcome %v below the max", outcome)
	}
	// The violating component must carry a genuine counterexample.
	for _, r := range results {
		if r.Outcome == vnn.Violated && r.Value <= mx.Value-0.25 {
			t.Fatal("counterexample does not violate")
		}
	}
}
