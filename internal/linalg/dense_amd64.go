package linalg

// The AVX2+FMA micro-kernel in dense_amd64.s. CPU support is detected
// once at init through CPUID/XGETBV (OSXSAVE + AVX + FMA + YMM state +
// AVX2), the same checks GOAMD64=v3 assumes at build time — but done at
// run time so a default (v1) build still takes the fast path on modern
// hardware and falls back to the pure-Go kernels on anything older.
//
// Each vector lane of the kernel is one correctly rounded FMA chain, so
// its output is bit-identical to the pure-Go dot4 reference
// (TestMatVecAsmMatchesGo); picking a path never changes results.

// cpuidex executes CPUID with the given leaf and subleaf.
func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0, the OS-enabled extended-state mask.
func xgetbv0() (eax, edx uint32)

// matvecAVX2 computes y = W·x for a row-major rows×cols W, every output
// element accumulated in the dot4 order. Callers guarantee rows > 0,
// cols > 0, len(x) == cols, len(y) == rows and no aliasing of y.
//
//go:noescape
func matvecAVX2(w, x, y *float64, rows, cols int)

// useAsmKernels gates the assembly path; tests flip it to force the
// pure-Go kernels on the same machine.
var useAsmKernels = haveAVX2FMA()

func haveAVX2FMA() bool {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, c, _ := cpuidex(1, 0)
	const need = 1<<27 | 1<<28 | 1<<12 // OSXSAVE | AVX | FMA
	if c&need != need {
		return false
	}
	if lo, _ := xgetbv0(); lo&6 != 6 { // XMM and YMM state OS-enabled
		return false
	}
	_, b, _, _ := cpuidex(7, 0)
	return b&(1<<5) != 0 // AVX2
}
