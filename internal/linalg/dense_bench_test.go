package linalg

import (
	"math/rand"
	"testing"
)

// benchDims is the kernel benchmark ladder: serving layers live mostly in
// the 16–128 range, 512 shows the streaming regime.
var benchDims = []struct {
	name        string
	rows, cols  int
	batchedRows int
}{
	{"16x16", 16, 16, 64},
	{"40x40", 40, 40, 64},
	{"64x64", 64, 64, 64},
	{"128x128", 128, 128, 64},
	{"512x512", 512, 512, 64},
}

func randDense(rng *rand.Rand, r, c int) *Dense {
	d := NewDense(r, c)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return d
}

// BenchmarkMatVec is the blocked serving kernel.
func BenchmarkMatVec(b *testing.B) {
	for _, bd := range benchDims {
		b.Run(bd.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			d := randDense(rng, bd.rows, bd.cols)
			x := randVec(rng, bd.cols)
			y := make([]float64, bd.rows)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.MatVec(y, x)
			}
		})
	}
}

// BenchmarkMatVecDot is the pre-kernel baseline: the naive row-major Dot
// loop the serving path used before the flat kernels.
func BenchmarkMatVecDot(b *testing.B) {
	for _, bd := range benchDims {
		b.Run(bd.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			rows := randDense(rng, bd.rows, bd.cols).ToRows()
			x := randVec(rng, bd.cols)
			y := make([]float64, bd.rows)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatVec(rows, x, y)
			}
		})
	}
}

// BenchmarkMatMulTB is the batched serving kernel (batch of 64 inputs).
func BenchmarkMatMulTB(b *testing.B) {
	for _, bd := range benchDims {
		b.Run(bd.name, func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			a := randDense(rng, bd.batchedRows, bd.cols)
			w := randDense(rng, bd.rows, bd.cols)
			c := NewDense(bd.batchedRows, bd.rows)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				MatMulTB(c, a, w)
			}
		})
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}
