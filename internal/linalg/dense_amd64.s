#include "textflag.h"

// func cpuidex(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func matvecAVX2(w, x, y *float64, rows, cols int)
//
// y = W·x, W row-major rows×cols. Rows are processed four at a time;
// each row owns one YMM accumulator whose four lanes are the four dot4
// chains (lane l accumulates elements l, l+4, l+8, …), so every FMA is
// the same correctly rounded operation math.FMA performs and the result
// is bit-identical to the pure-Go dot4 reference.
//
// Per block of four rows:
//   vec4:     one VMOVUPD of x[j:j+4] feeds four VFMADD231PD, one per row
//   reduce:   VHADDPD pairs lanes as (s0+s1) and (s2+s3) per row, the
//             VPERM2F128/VADDPD combine finishes (s0+s1)+(s2+s3) for all
//             four rows at once
//   tailj4:   the cols%4 tail folds element-by-element in index order,
//             one broadcast x[j] FMA-ed against the four row scalars
// Leftover rows (rows%4) run the same shape one row at a time.
TEXT ·matvecAVX2(SB), NOSPLIT, $0-40
	MOVQ w+0(FP), DI
	MOVQ x+8(FP), SI
	MOVQ y+16(FP), DX
	MOVQ rows+24(FP), R8
	MOVQ cols+32(FP), R9
	MOVQ R9, R10
	SHLQ $3, R10               // row stride in bytes
	MOVQ R9, R14
	ANDQ $-4, R14              // nv = cols &^ 3, the vectorized prefix
	XORQ AX, AX                // r, current row

blk4:
	MOVQ R8, R15
	SUBQ AX, R15
	CMPQ R15, $4
	JLT  rowtail               // fewer than 4 rows left

	MOVQ  AX, R11
	IMULQ R9, R11
	LEAQ  (DI)(R11*8), R11     // row r
	LEAQ  (R11)(R10*1), BX     // row r+1
	LEAQ  (BX)(R10*1), R12     // row r+2
	LEAQ  (R12)(R10*1), R13    // row r+3

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	XORQ   CX, CX              // j, current column
	CMPQ   R14, $0
	JEQ    reduce4

vec4:
	VMOVUPD     (SI)(CX*8), Y4
	VFMADD231PD (R11)(CX*8), Y4, Y0
	VFMADD231PD (BX)(CX*8), Y4, Y1
	VFMADD231PD (R12)(CX*8), Y4, Y2
	VFMADD231PD (R13)(CX*8), Y4, Y3
	ADDQ        $4, CX
	CMPQ        CX, R14
	JLT         vec4

reduce4:
	VHADDPD    Y1, Y0, Y5      // [a0+a1, b0+b1, a2+a3, b2+b3]
	VHADDPD    Y3, Y2, Y6      // [c0+c1, d0+d1, c2+c3, d2+d3]
	VPERM2F128 $0x20, Y6, Y5, Y7
	VPERM2F128 $0x31, Y6, Y5, Y8
	VADDPD     Y8, Y7, Y7      // [(s0+s1)+(s2+s3)] for rows r..r+3

	CMPQ CX, R9
	JGE  store4

tailj4:
	VBROADCASTSD (SI)(CX*8), Y4
	VMOVSD       (R11)(CX*8), X5
	VMOVHPD      (BX)(CX*8), X5, X5
	VMOVSD       (R12)(CX*8), X6
	VMOVHPD      (R13)(CX*8), X6, X6
	VINSERTF128  $1, X6, Y5, Y5
	VFMADD231PD  Y4, Y5, Y7
	INCQ         CX
	CMPQ         CX, R9
	JLT          tailj4

store4:
	VMOVUPD Y7, (DX)(AX*8)
	ADDQ    $4, AX
	JMP     blk4

rowtail:
	CMPQ AX, R8
	JGE  done
	MOVQ  AX, R11
	IMULQ R9, R11
	LEAQ  (DI)(R11*8), R11
	VXORPD Y0, Y0, Y0
	XORQ   CX, CX
	CMPQ   R14, $0
	JEQ    reduce1

vec1:
	VMOVUPD     (SI)(CX*8), Y4
	VFMADD231PD (R11)(CX*8), Y4, Y0
	ADDQ        $4, CX
	CMPQ        CX, R14
	JLT         vec1

reduce1:
	VEXTRACTF128 $1, Y0, X1
	VHADDPD      X0, X0, X0    // [s0+s1, s0+s1]
	VHADDPD      X1, X1, X1    // [s2+s3, s2+s3]
	VADDSD       X1, X0, X0    // (s0+s1)+(s2+s3)

	CMPQ CX, R9
	JGE  store1

tailj1:
	VMOVSD      (SI)(CX*8), X4
	VFMADD231SD (R11)(CX*8), X4, X0
	INCQ        CX
	CMPQ        CX, R9
	JLT         tailj1

store1:
	VMOVSD X0, (DX)(AX*8)
	INCQ   AX
	JMP    rowtail

done:
	VZEROUPPER
	RET
