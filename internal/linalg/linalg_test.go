package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %g, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Fatalf("Dot(nil,nil) = %g", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	y := []float64{1, 1}
	Axpy(2, []float64{3, 4}, y)
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy = %v", y)
	}
	Axpy(0, []float64{100, 100}, y) // no-op
	if y[0] != 7 || y[1] != 9 {
		t.Fatalf("Axpy alpha=0 mutated: %v", y)
	}
}

func TestMatVecAndTranspose(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	y := make([]float64, 3)
	MatVec(a, []float64{1, 1}, y)
	want := []float64{3, 7, 11}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("MatVec = %v, want %v", y, want)
		}
	}
	z := make([]float64, 2)
	MatTVec(a, []float64{1, 1, 1}, z)
	if z[0] != 9 || z[1] != 12 {
		t.Fatalf("MatTVec = %v, want [9 12]", z)
	}
}

func TestNewMatrixLayout(t *testing.T) {
	m := NewMatrix(3, 4)
	if len(m) != 3 || len(m[0]) != 4 {
		t.Fatalf("shape %dx%d", len(m), len(m[0]))
	}
	m[1][2] = 5
	if m[0][2] != 0 || m[2][2] != 0 {
		t.Fatal("rows alias each other")
	}
	if cap(m[0]) != 4 {
		t.Fatalf("row capacity %d should be clipped to 4", cap(m[0]))
	}
}

func TestCloneMatrixDeep(t *testing.T) {
	a := [][]float64{{1, 2}, {3, 4}}
	b := CloneMatrix(a)
	b[0][0] = 99
	if a[0][0] != 1 {
		t.Fatal("CloneMatrix shares storage")
	}
	if CloneMatrix(nil) != nil {
		t.Fatal("CloneMatrix(nil) should be nil")
	}
}

func TestAddOuter(t *testing.T) {
	a := NewMatrix(2, 2)
	AddOuter(a, 2, []float64{1, 2}, []float64{3, 4})
	want := [][]float64{{6, 8}, {12, 16}}
	for i := range want {
		for j := range want[i] {
			if a[i][j] != want[i][j] {
				t.Fatalf("AddOuter = %v, want %v", a, want)
			}
		}
	}
}

func TestNorms(t *testing.T) {
	x := []float64{3, -4}
	if NormInf(x) != 4 {
		t.Fatalf("NormInf = %g", NormInf(x))
	}
	if Norm2(x) != 5 {
		t.Fatalf("Norm2 = %g", Norm2(x))
	}
	if Norm1(x) != 7 {
		t.Fatalf("Norm1 = %g", Norm1(x))
	}
}

func TestArgMaxMin(t *testing.T) {
	x := []float64{2, 7, 7, -1}
	if ArgMax(x) != 1 {
		t.Fatalf("ArgMax tie should take lowest index, got %d", ArgMax(x))
	}
	if ArgMin(x) != 3 {
		t.Fatalf("ArgMin = %d", ArgMin(x))
	}
	if ArgMax(nil) != -1 || ArgMin(nil) != -1 {
		t.Fatal("empty slices should return -1")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, 2}) {
		t.Fatal("finite slice reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) || AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("non-finite slipped through")
	}
}

func TestQuickDotSymmetry(t *testing.T) {
	f := func(a, b [8]float64) bool {
		for i := range a {
			// Keep products finite so the property is about ordering,
			// not about IEEE overflow (Inf-Inf = NaN is order dependent).
			if math.Abs(a[i]) > 1e100 || math.Abs(b[i]) > 1e100 {
				return true
			}
		}
		return Dot(a[:], b[:]) == Dot(b[:], a[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAxpyLinearity(t *testing.T) {
	// Axpy(alpha, x, y) then Axpy(-alpha, x, y) restores y (within fp error).
	f := func(x, y [6]float64, alpha float64) bool {
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			return true
		}
		if !AllFinite(x[:]) || !AllFinite(y[:]) {
			return true
		}
		orig := Clone(y[:])
		w := Clone(y[:])
		Axpy(alpha, x[:], w)
		Axpy(-alpha, x[:], w)
		for i := range w {
			diff := math.Abs(w[i] - orig[i])
			scale := math.Max(1, math.Abs(alpha)*math.Abs(x[i]))
			if diff > 1e-9*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSumMean(t *testing.T) {
	if Sum([]float64{1, 2, 3}) != 6 {
		t.Fatal("Sum")
	}
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("Mean")
	}
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
}
