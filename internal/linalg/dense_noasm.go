//go:build !amd64

package linalg

// Non-amd64 builds always run the pure-Go kernels; dot4's math.FMA
// chains are correctly rounded, so the bits match the amd64 assembly
// path exactly (hardware FMA where the platform has it, the soft
// fallback elsewhere).
const useAsmKernels = false

// matvecAVX2 is never called when useAsmKernels is false; the stub keeps
// the dispatch in dense.go building on every platform.
func matvecAVX2(w, x, y *float64, rows, cols int) {
	panic("linalg: matvecAVX2 without assembly support")
}
