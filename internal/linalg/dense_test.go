package linalg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"math"
	"math/rand"
	"os/exec"
	"strconv"
	"strings"
	"testing"
)

// kernelDims is the shape/tail ladder from the issue: below one block,
// exactly one block, every tail residue, and a multi-block odd size.
var kernelDims = []int{0, 1, 3, 4, 5, 7, 8, 33}

// forEachKernelPath runs f once per available kernel implementation
// (pure Go always; assembly when the CPU supports it), so every test in
// this file pins both paths.
func forEachKernelPath(t *testing.T, f func(t *testing.T)) {
	saved := useAsmKernels
	defer func() { useAsmKernels = saved }()
	useAsmKernels = false
	t.Run("go", f)
	if saved {
		useAsmKernels = true
		t.Run("asm", f)
	}
}

func seededDense(seed int64, r, c int) *Dense {
	rng := rand.New(rand.NewSource(seed))
	d := NewDense(r, c)
	for i := range d.Data {
		d.Data[i] = rng.NormFloat64()
	}
	return d
}

func seededVec(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestDenseConstructorsRoundTrip(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {4, 5, 6}}
	d := DenseFromRows(rows)
	if d.Rows != 2 || d.Cols != 3 {
		t.Fatalf("dims %dx%d", d.Rows, d.Cols)
	}
	if d.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %v", d.At(1, 2))
	}
	back := d.ToRows()
	for i := range rows {
		for j := range rows[i] {
			if back[i][j] != rows[i][j] {
				t.Fatalf("round trip (%d,%d)", i, j)
			}
		}
	}
	// ToRows aliases; DenseFromRows copied.
	back[0][0] = 99
	if d.At(0, 0) != 99 {
		t.Fatal("ToRows should alias the backing array")
	}
	if rows[0][0] != 1 {
		t.Fatal("DenseFromRows should copy its input")
	}
	// Row views are capacity-capped: appending must not clobber row 1.
	r0 := d.Row(0)
	_ = append(r0, 7)
	if d.At(1, 0) != 4 {
		t.Fatal("Row view grew into the next row")
	}
}

func TestDenseConstructorPanics(t *testing.T) {
	mustPanic(t, "ragged rows", func() { DenseFromRows([][]float64{{1, 2}, {1}}) })
	mustPanic(t, "negative dims", func() { NewDense(-1, 2) })
	mustPanic(t, "row out of range", func() { NewDense(2, 2).Row(2) })
	mustPanic(t, "At out of range", func() { NewDense(2, 2).At(0, 2) })
}

// TestDot4Golden pins the serving accumulation order with hand-computed
// values. The inputs are small integers, so every FMA and add is exact
// and the expected values hold on any IEEE-754 platform.
func TestDot4Golden(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5, 6, 7}
	b := []float64{2, 4, 8, 16, 32, 64, 128}
	// chains: s0 = 1*2 + 5*32 = 162, s1 = 2*4 + 6*64 = 392,
	// s2 = 3*8 = 24, s3 = 4*16 = 64 — wait: n=7, one block of 4, tail 3.
	// block: s0=1*2=2, s1=2*4=8, s2=3*8=24, s3=4*16=64 → (2+8)+(24+64)=98
	// tail (index order): 98 + 5*32 = 258, + 6*64 = 642, + 7*128 = 1538.
	if got := dot4(a, b); got != 1538 {
		t.Fatalf("dot4 = %v, want 1538", got)
	}
	ya, yb := dot4Pair(a, a, b)
	if ya != 1538 || yb != 1538 {
		t.Fatalf("dot4Pair = %v, %v, want 1538", ya, yb)
	}
}

// TestMatVecGolden pins seeded kernel outputs bit-for-bit. The values
// were produced by dot4 itself, so this is a change-detector for the
// accumulation order: any reordering of the chains or the tail flips
// low-order bits and fails the exact comparison.
func TestMatVecGolden(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		d := seededDense(11, 5, 7)
		x := seededVec(13, 7)
		y := make([]float64, 5)
		d.MatVec(y, x)
		want := make([]float64, 5)
		for i := 0; i < 5; i++ {
			want[i] = dot4(d.Row(i), x)
		}
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("row %d: got %x want %x", i, y[i], want[i])
			}
		}
	})
}

// TestMatVecShapes covers the full dim ladder on both paths, comparing
// bit-exactly against the dot4 reference row by row.
func TestMatVecShapes(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		for _, r := range kernelDims {
			for _, c := range kernelDims {
				d := seededDense(int64(100*r+c), r, c)
				x := seededVec(int64(r+c), c)
				y := make([]float64, r)
				d.MatVec(y, x)
				for i := 0; i < r; i++ {
					if want := dot4(d.Row(i), x); y[i] != want {
						t.Fatalf("%dx%d row %d: got %x want %x", r, c, i, y[i], want)
					}
				}
			}
		}
	})
}

// TestMatMulTBMatchesMatVec pins the batch==single contract: every row
// of the batched product is bit-identical to the one-vector product.
func TestMatMulTBMatchesMatVec(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		for _, batch := range kernelDims {
			for _, out := range []int{0, 1, 3, 5, 8} {
				for _, k := range []int{0, 3, 7, 33} {
					a := seededDense(int64(batch*100+k), batch, k)
					b := seededDense(int64(out*100+k+1), out, k)
					c := NewDense(batch, out)
					MatMulTB(c, a, b)
					y := make([]float64, out)
					for i := 0; i < batch; i++ {
						b.MatVec(y, a.Row(i))
						for j := 0; j < out; j++ {
							if c.At(i, j) != y[j] {
								t.Fatalf("batch=%d out=%d k=%d cell (%d,%d): %x != %x",
									batch, out, k, i, j, c.At(i, j), y[j])
							}
						}
					}
				}
			}
		}
	})
}

// TestMatVecAsmMatchesGo pins the cross-path contract directly: on
// hardware with the assembly kernel, both paths produce identical bits.
func TestMatVecAsmMatchesGo(t *testing.T) {
	if !useAsmKernels {
		t.Skip("assembly kernel not available on this CPU")
	}
	saved := useAsmKernels
	defer func() { useAsmKernels = saved }()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		r := rng.Intn(40)
		c := rng.Intn(70)
		d := seededDense(int64(trial), r, c)
		x := seededVec(int64(trial+1000), c)
		yGo := make([]float64, r)
		yAsm := make([]float64, r)
		useAsmKernels = false
		d.MatVec(yGo, x)
		useAsmKernels = true
		d.MatVec(yAsm, x)
		for i := range yGo {
			if yGo[i] != yAsm[i] {
				t.Fatalf("trial %d (%dx%d) row %d: go %x asm %x", trial, r, c, i, yGo[i], yAsm[i])
			}
		}
	}
}

// TestMatVecDeterministic runs the same product 100 times and demands
// identical bits every run — the run-to-run half of the determinism
// contract (the batching/GOMAXPROCS half is TestMatMulTBMatchesMatVec
// plus the server-side sharding tests).
func TestMatVecDeterministic(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		d := seededDense(29, 33, 33)
		x := seededVec(31, 33)
		first := make([]float64, 33)
		d.MatVec(first, x)
		y := make([]float64, 33)
		for run := 1; run < 100; run++ {
			d.MatVec(y, x)
			for i := range y {
				if y[i] != first[i] {
					t.Fatalf("run %d row %d: %x != %x", run, i, y[i], first[i])
				}
			}
		}
	})
}

// TestMatVecMatchesDotWithinTolerance cross-checks the serving order
// against the naive sequential Dot the verify paths keep. The two
// orders differ only in rounding: each of the ~n accumulated terms can
// contribute at most one ULP of the running magnitude, so the documented
// bound is n ULPs of the magnitude sum — loose, simple, and tight enough
// to catch any indexing bug (which shows up as O(1) relative error).
func TestMatVecMatchesDotWithinTolerance(t *testing.T) {
	forEachKernelPath(t, func(t *testing.T) {
		for _, c := range []int{1, 7, 33, 128} {
			d := seededDense(int64(c), 9, c)
			x := seededVec(int64(c+1), c)
			y := make([]float64, 9)
			d.MatVec(y, x)
			for i := 0; i < 9; i++ {
				row := d.Row(i)
				want := Dot(row, x)
				var mag float64
				for j, v := range row {
					mag += math.Abs(v * x[j])
				}
				tol := float64(c) * math.Abs(mag) * 0x1p-52
				if diff := math.Abs(y[i] - want); diff > tol {
					t.Fatalf("cols=%d row %d: |%v - %v| = %v > %v", c, i, y[i], want, diff, tol)
				}
			}
		}
	})
}

func TestMatVecAliasPanics(t *testing.T) {
	d := seededDense(3, 4, 4)
	x := seededVec(5, 4)
	mustPanic(t, "y aliases x", func() { d.MatVec(x, x) })
	mustPanic(t, "y aliases matrix", func() { d.MatVec(d.Data[:4], x) })
	mustPanic(t, "short x", func() { d.MatVec(make([]float64, 4), x[:3]) })
	mustPanic(t, "short y", func() { d.MatVec(make([]float64, 3), x) })

	a := seededDense(7, 2, 4)
	c := NewDense(2, 4)
	mustPanic(t, "C aliases A", func() { MatMulTB(a, a, d) })
	mustPanic(t, "inner dim", func() { MatMulTB(c, a, NewDense(4, 3)) })
	mustPanic(t, "C shape", func() { MatMulTB(NewDense(2, 3), a, d) })
	mustPanic(t, "bias size", func() { d.AddBias(x[:3]) })
}

func TestAddBias(t *testing.T) {
	d := DenseFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	d.AddBias([]float64{10, 20})
	want := [][]float64{{11, 22}, {13, 24}, {15, 26}}
	for i := range want {
		for j := range want[i] {
			if d.At(i, j) != want[i][j] {
				t.Fatalf("(%d,%d) = %v, want %v", i, j, d.At(i, j), want[i][j])
			}
		}
	}
}

// kernelFuncs are the hot-loop kernels whose bodies must carry no
// per-element bounds checks. The checked accessors (At) and the asm
// dispatchers (which take one &slice[i] address per call or per row)
// deliberately keep their argument checks.
var kernelFuncs = []string{"dot4", "dot4Pair", "matVecGo", "matMulTBGo", "AddBias"}

// TestKernelsElementBCEFree proves the advertised bounds-check freedom:
// compiling this package with -d=ssa/check_bce must report no IsInBounds
// (per-element checks) inside the kernel loop functions. IsSliceInBounds
// hits are allowed — those are the explicit slicing expressions that
// shape the blocks, executed once per block, not per element.
func TestKernelsElementBCEFree(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go tool not on PATH")
	}
	out, err := exec.Command("go", "build", "-o", "/dev/null", "-gcflags=-d=ssa/check_bce", ".").CombinedOutput()
	if err != nil && len(out) == 0 {
		t.Skipf("go build unavailable: %v", err)
	}

	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "dense.go", nil, 0)
	if err != nil {
		t.Fatalf("parse dense.go: %v", err)
	}
	type span struct{ from, to int }
	spans := map[string]span{}
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		for _, name := range kernelFuncs {
			if fn.Name.Name == name {
				spans[name] = span{fset.Position(fn.Pos()).Line, fset.Position(fn.End()).Line}
			}
		}
	}
	if len(spans) != len(kernelFuncs) {
		t.Fatalf("found %d of %d kernel functions in dense.go", len(spans), len(kernelFuncs))
	}

	for _, line := range strings.Split(string(out), "\n") {
		if !strings.Contains(line, "dense.go") || !strings.Contains(line, "Found IsInBounds") {
			continue
		}
		parts := strings.Split(line, ":")
		if len(parts) < 2 {
			continue
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil {
			continue
		}
		for name, s := range spans {
			if n >= s.from && n <= s.to {
				t.Errorf("element bounds check survives in %s: %s", name, line)
			}
		}
	}
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s: expected panic", name)
		}
	}()
	f()
}
