// Package linalg provides small dense linear-algebra kernels shared by the
// LP solver, the neural-network runtime and the training code.
//
// All kernels operate on plain float64 slices so callers control allocation.
// Matrices are stored row-major as [][]float64; rows may alias a single
// backing array (see NewMatrix).
package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
// It panics if the lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Axpy computes y += alpha*x in place.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d != %d", len(x), len(y)))
	}
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Copy copies src into dst and panics on length mismatch.
func Copy(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: Copy length mismatch %d != %d", len(dst), len(src)))
	}
	copy(dst, src)
}

// Clone returns a newly allocated copy of x.
func Clone(x []float64) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	return out
}

// Zero sets every element of x to zero.
func Zero(x []float64) {
	for i := range x {
		x[i] = 0
	}
}

// NewMatrix allocates an r-by-c matrix whose rows share one backing array,
// giving cache-friendly layout and a single allocation.
func NewMatrix(r, c int) [][]float64 {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: NewMatrix negative dims %dx%d", r, c))
	}
	backing := make([]float64, r*c)
	m := make([][]float64, r)
	for i := range m {
		m[i], backing = backing[:c:c], backing[c:]
	}
	return m
}

// CloneMatrix returns a deep copy of m.
func CloneMatrix(m [][]float64) [][]float64 {
	if len(m) == 0 {
		return nil
	}
	out := NewMatrix(len(m), len(m[0]))
	for i := range m {
		copy(out[i], m[i])
	}
	return out
}

// MatVec computes y = A*x. It panics on dimension mismatch.
func MatVec(a [][]float64, x []float64, y []float64) {
	if len(a) != len(y) {
		panic(fmt.Sprintf("linalg: MatVec rows %d != len(y) %d", len(a), len(y)))
	}
	for i, row := range a {
		y[i] = Dot(row, x)
	}
}

// MatTVec computes y = Aᵀ*x. It panics on dimension mismatch.
func MatTVec(a [][]float64, x []float64, y []float64) {
	if len(a) != len(x) {
		panic(fmt.Sprintf("linalg: MatTVec rows %d != len(x) %d", len(a), len(x)))
	}
	Zero(y)
	for i, row := range a {
		Axpy(x[i], row, y)
	}
}

// AddOuter computes A += alpha * x*yᵀ in place.
func AddOuter(a [][]float64, alpha float64, x, y []float64) {
	if len(a) != len(x) {
		panic(fmt.Sprintf("linalg: AddOuter rows %d != len(x) %d", len(a), len(x)))
	}
	for i, row := range a {
		Axpy(alpha*x[i], y, row)
	}
}

// NormInf returns max_i |x_i|, or 0 for an empty slice.
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Norm2 returns the Euclidean norm of x.
func Norm2(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s)
}

// Norm1 returns the sum of absolute values of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// ArgMax returns the index of the largest element of x, or -1 when empty.
// Ties resolve to the lowest index.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] > x[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest element of x, or -1 when empty.
func ArgMin(x []float64) int {
	if len(x) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(x); i++ {
		if x[i] < x[best] {
			best = i
		}
	}
	return best
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Clamp returns v limited to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// AllFinite reports whether every element of x is finite (not NaN or ±Inf).
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
