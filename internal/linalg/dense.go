// Flat dense matrices and the blocked serving kernels.
//
// Dense stores a matrix row-major in one contiguous backing array — the
// layout the inference hot path wants: no per-row pointer chase, rows
// prefetch sequentially, and the kernels below keep the Go compiler's
// element bounds checks out of their inner loops (proved with
// `go build -gcflags=-d=ssa/check_bce`, see TestKernelsElementBCEFree;
// the explicit slicing expressions that remain are the argument-shape
// checks, not per-element checks).
//
// Determinism contract. Every kernel in this file — pure Go and the
// amd64 AVX2 assembly alike — accumulates every output cell in one fixed
// order per shape:
//
//   - A dot product of length n runs four independent FMA chains, chain
//     c accumulating elements c, c+4, c+8, …; the chains are combined as
//     (s0+s1)+(s2+s3); the n%4 tail elements then fold into that sum in
//     index order, again through FMA.
//   - MatVec and MatMulTB both compute every output cell with exactly
//     that order, so the batched product is bit-identical to the
//     one-vector product, regardless of row blocking, batch size or
//     GOMAXPROCS, run after run.
//   - math.FMA is correctly rounded by spec, and each lane of a hardware
//     VFMADD is the same correctly rounded operation, so dot4 (pure Go)
//     and the AVX2 kernel produce identical bits; TestMatVecAsmMatchesGo
//     pins this on machines that take the assembly path.
//
// This order intentionally differs from the naive sequential Dot: the
// serving forward pass changed accumulation order once, for good (see
// DESIGN.md "Kernel layer"); the verification, training and attack paths
// keep using Dot and are numerically untouched. For any input the two
// orders agree to within a few ULP per accumulated term (pinned by
// TestMatVecMatchesDotWithinTolerance).
package linalg

import (
	"fmt"
	"math"
	"unsafe"
)

// Dense is an r×c matrix stored row-major in one contiguous backing
// array: element (i, j) lives at Data[i*Cols+j]. The zero value is an
// empty matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewDense allocates a zeroed r×c Dense. Negative dimensions panic.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: NewDense negative dims %dx%d", r, c))
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// DenseFromRows copies rows into a freshly allocated Dense. Every row
// must have the same length; ragged input panics with the offending row.
func DenseFromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return &Dense{}
	}
	c := len(rows[0])
	d := NewDense(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("linalg: DenseFromRows row %d has %d columns, row 0 has %d", i, len(row), c))
		}
		copy(d.Data[i*c:(i+1)*c], row)
	}
	return d
}

// Row returns row i as a capacity-capped view into the backing array:
// writing through the view writes the matrix, and the view cannot be
// grown into the next row.
func (d *Dense) Row(i int) []float64 {
	if i < 0 || i >= d.Rows {
		panic(fmt.Sprintf("linalg: Dense.Row %d of %d", i, d.Rows))
	}
	return d.Data[i*d.Cols : (i+1)*d.Cols : (i+1)*d.Cols]
}

// ToRows materializes the matrix as a [][]float64 whose rows alias the
// backing array (the inverse of DenseFromRows up to aliasing): writes
// through the returned rows write the Dense.
func (d *Dense) ToRows() [][]float64 {
	rows := make([][]float64, d.Rows)
	for i := range rows {
		rows[i] = d.Row(i)
	}
	return rows
}

// At returns element (i, j).
func (d *Dense) At(i, j int) float64 {
	if i < 0 || i >= d.Rows || j < 0 || j >= d.Cols {
		panic(fmt.Sprintf("linalg: Dense.At (%d,%d) of %dx%d", i, j, d.Rows, d.Cols))
	}
	return d.Data[i*d.Cols+j]
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	return &Dense{Rows: d.Rows, Cols: d.Cols, Data: Clone(d.Data)}
}

// sliceOverlap reports whether the backing stores of a and b overlap.
// The address comparison is the standard trick for overlap detection;
// two disjoint allocations never compare as overlapping.
func sliceOverlap(a, b []float64) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	pa := uintptr(unsafe.Pointer(unsafe.SliceData(a)))
	pb := uintptr(unsafe.Pointer(unsafe.SliceData(b)))
	ea := pa + uintptr(len(a))*unsafe.Sizeof(float64(0))
	eb := pb + uintptr(len(b))*unsafe.Sizeof(float64(0))
	return pa < eb && pb < ea
}

// dot4 is the portable reference for the serving dot product: four
// independent math.FMA chains over the strided quarters of [0,n),
// combined (s0+s1)+(s2+s3), tail folded in index order. The AVX2 kernel
// computes exactly this (one FMA chain per vector lane), so dot4 defines
// the bits on every architecture. Callers guarantee len(a) >= len(b).
func dot4(a, b []float64) float64 {
	var s0, s1, s2, s3 float64
	n := len(b)
	a = a[:n]
	j := 0
	// The constant-length subslices are what lets the compiler drop the
	// per-element bounds checks (go1.24's prover does not carry
	// len(a)==len(b) through a two-slice strided loop on its own).
	for ; j <= n-4; j += 4 {
		aa := a[j : j+4 : j+4]
		bb := b[j : j+4 : j+4]
		s0 = math.FMA(aa[0], bb[0], s0)
		s1 = math.FMA(aa[1], bb[1], s1)
		s2 = math.FMA(aa[2], bb[2], s2)
		s3 = math.FMA(aa[3], bb[3], s3)
	}
	s := (s0 + s1) + (s2 + s3)
	ta := a[j:]
	for i, bv := range b[j:] {
		s = math.FMA(ta[i], bv, s)
	}
	return s
}

// dot4Pair computes dot4(r0, x) and dot4(r1, x) together, sharing the x
// loads and keeping eight independent FMA chains in flight. Each result
// is bit-identical to the corresponding single dot4 call.
func dot4Pair(r0, r1, x []float64) (float64, float64) {
	var a0, a1, a2, a3 float64
	var b0, b1, b2, b3 float64
	n := len(x)
	r0 = r0[:n]
	r1 = r1[:n]
	j := 0
	for ; j <= n-4; j += 4 {
		xx := x[j : j+4 : j+4]
		p0 := r0[j : j+4 : j+4]
		p1 := r1[j : j+4 : j+4]
		x0, x1, x2, x3 := xx[0], xx[1], xx[2], xx[3]
		a0 = math.FMA(p0[0], x0, a0)
		a1 = math.FMA(p0[1], x1, a1)
		a2 = math.FMA(p0[2], x2, a2)
		a3 = math.FMA(p0[3], x3, a3)
		b0 = math.FMA(p1[0], x0, b0)
		b1 = math.FMA(p1[1], x1, b1)
		b2 = math.FMA(p1[2], x2, b2)
		b3 = math.FMA(p1[3], x3, b3)
	}
	ya := (a0 + a1) + (a2 + a3)
	yb := (b0 + b1) + (b2 + b3)
	t0, t1 := r0[j:], r1[j:]
	for i, xv := range x[j:] {
		ya = math.FMA(t0[i], xv, ya)
		yb = math.FMA(t1[i], xv, yb)
	}
	return ya, yb
}

// MatVec computes y = d·x with the blocked serving kernel. On amd64 with
// AVX2+FMA it runs the assembly micro-kernel (four weight rows per block
// sharing each x load, one FMA chain per vector lane); elsewhere it runs
// the pure-Go pair kernel. Both produce every output element in exactly
// the dot4 order, so the result is independent of the path and the row
// blocking. It panics on dimension mismatch and when y aliases x or the
// matrix.
func (d *Dense) MatVec(y, x []float64) {
	if len(x) != d.Cols {
		panic(fmt.Sprintf("linalg: Dense.MatVec len(x) %d != cols %d", len(x), d.Cols))
	}
	if len(y) != d.Rows {
		panic(fmt.Sprintf("linalg: Dense.MatVec len(y) %d != rows %d", len(y), d.Rows))
	}
	if sliceOverlap(y, x) || sliceOverlap(y, d.Data) {
		panic("linalg: Dense.MatVec y aliases an input")
	}
	if d.Rows == 0 {
		return
	}
	if d.Cols == 0 {
		for i := range y {
			y[i] = 0
		}
		return
	}
	if useAsmKernels {
		matvecAVX2(&d.Data[0], &x[0], &y[0], d.Rows, d.Cols)
		return
	}
	matVecGo(d, y, x)
}

// matVecGo is the portable MatVec: rows in pairs through dot4Pair (eight
// FMA chains in flight), odd tail row through dot4. The consume-style
// loop (reslice w and y as rows complete) is what keeps the stores
// bounds-check-free.
func matVecGo(d *Dense, y, x []float64) {
	n := d.Cols
	w := d.Data
	for len(y) >= 2 {
		r0 := w[:n]
		w = w[n:]
		r1 := w[:n]
		w = w[n:]
		y[0], y[1] = dot4Pair(r0, r1, x)
		y = y[2:]
	}
	if len(y) == 1 {
		y[0] = dot4(w[:n], x)
	}
}

// MatMulTB computes C = A·Bᵀ, the GEMM shape of a batched layer forward:
// A holds one input per row (batch×k), B holds one weight row per output
// neuron (out×k), C receives batch×out. Every C cell is accumulated in
// exactly the dot4 order, making the batched product bit-identical to
// MatVec row by row — on the assembly path each batch row literally runs
// the same micro-kernel as MatVec. It panics on shape mismatch and when
// C aliases A or B.
func MatMulTB(c, a, b *Dense) {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: MatMulTB inner dims %d != %d", a.Cols, b.Cols))
	}
	if c.Rows != a.Rows || c.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: MatMulTB C is %dx%d, want %dx%d", c.Rows, c.Cols, a.Rows, b.Rows))
	}
	if sliceOverlap(c.Data, a.Data) || sliceOverlap(c.Data, b.Data) {
		panic("linalg: MatMulTB C aliases an input")
	}
	if a.Rows == 0 || b.Rows == 0 {
		return
	}
	k := a.Cols
	if k == 0 {
		for i := range c.Data {
			c.Data[i] = 0
		}
		return
	}
	if useAsmKernels {
		cw := c.Cols
		for i := 0; i < a.Rows; i++ {
			matvecAVX2(&b.Data[0], &a.Data[i*k], &c.Data[i*cw], b.Rows, k)
		}
		return
	}
	matMulTBGo(c, a, b)
}

// matMulTBGo is the portable batched kernel: it streams one weight row
// of B across a register block of four A rows at a time, so each weight
// element is loaded once per four inputs; tails fall back to scalar rows.
func matMulTBGo(c, a, b *Dense) {
	k := a.Cols
	cw := c.Cols
	i := 0
	for ; i+4 <= a.Rows; i += 4 {
		a0 := a.Data[i*k : i*k+k]
		a1 := a.Data[(i+1)*k : (i+1)*k+k]
		a2 := a.Data[(i+2)*k : (i+2)*k+k]
		a3 := a.Data[(i+3)*k : (i+3)*k+k]
		c0 := c.Data[i*cw : i*cw+cw : i*cw+cw]
		c1 := c.Data[(i+1)*cw : (i+1)*cw+cw : (i+1)*cw+cw][:len(c0)]
		c2 := c.Data[(i+2)*cw : (i+2)*cw+cw : (i+2)*cw+cw][:len(c0)]
		c3 := c.Data[(i+3)*cw : (i+3)*cw+cw : (i+3)*cw+cw][:len(c0)]
		for j := range c0 {
			w := b.Data[j*k : j*k+k]
			c0[j], c1[j] = dot4Pair(a0, a1, w)
			c2[j], c3[j] = dot4Pair(a2, a3, w)
		}
	}
	for ; i < a.Rows; i++ {
		ai := a.Data[i*k : i*k+k]
		ci := c.Data[i*cw : i*cw+cw : i*cw+cw]
		for j := range ci {
			ci[j] = dot4(ai, b.Data[j*k:j*k+k])
		}
	}
}

// AddBias adds bias b to every row of d in place (the affine step of a
// batched layer forward). It panics when len(b) != Cols.
func (d *Dense) AddBias(b []float64) {
	if len(b) != d.Cols {
		panic(fmt.Sprintf("linalg: Dense.AddBias len(b) %d != cols %d", len(b), d.Cols))
	}
	c := d.Cols
	for i := 0; i < d.Rows; i++ {
		row := d.Data[i*c : (i+1)*c : (i+1)*c][:len(b)]
		for j, v := range b {
			row[j] += v
		}
	}
}
