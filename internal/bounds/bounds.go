// Package bounds performs interval bound propagation (a static analysis in
// the sense of the paper's Sec. II (B)) through feedforward networks.
// For every neuron it computes an interval guaranteed to contain the
// pre-activation value whenever the input lies in a given box. These
// intervals serve three purposes:
//
//   - they are the big-M constants of the MILP encoding in package verify
//     (tight intervals shrink the search space dramatically);
//   - neurons whose interval does not straddle zero are *stable* and need
//     no binary variable at all;
//   - they are a standalone, fast but incomplete safety check: if the
//     output interval already satisfies the property, no MILP is needed.
package bounds

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/nn"
)

// propagatePasses counts full interval-propagation passes performed by this
// process. Like internal/verify's EncodePasses/TightenPasses it exists so
// tests can assert that an analysis consuming a CompiledNetwork's
// already-computed bounds (e.g. traceability interval conditions) performs
// zero additional propagation passes.
var propagatePasses atomic.Int64

// Passes returns the total number of interval-propagation passes performed
// by this process.
func Passes() int64 { return propagatePasses.Load() }

// Interval is a closed interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// StraddlesZero reports whether the interval contains both signs.
func (iv Interval) StraddlesZero() bool { return iv.Lo < 0 && iv.Hi > 0 }

// Point returns a degenerate interval [v, v].
func Point(v float64) Interval { return Interval{v, v} }

// LayerBounds holds the pre- and post-activation intervals of one layer.
type LayerBounds struct {
	Pre  []Interval
	Post []Interval
}

// NetworkBounds is the result of propagation through a whole network.
type NetworkBounds struct {
	Input  []Interval
	Layers []LayerBounds
}

// Output returns the bounds of the network's output layer.
func (nb *NetworkBounds) Output() []Interval {
	return nb.Layers[len(nb.Layers)-1].Post
}

// StableNeurons counts hidden neurons whose pre-activation interval does not
// straddle zero — those need no binary variable in the MILP encoding.
func (nb *NetworkBounds) StableNeurons() (stable, total int) {
	for li := 0; li+1 < len(nb.Layers); li++ {
		for _, iv := range nb.Layers[li].Pre {
			total++
			if !iv.StraddlesZero() {
				stable++
			}
		}
	}
	return stable, total
}

// Propagate computes interval bounds for every neuron of net when the input
// ranges over the given box. It returns an error when the box width does not
// match the network input or when an unsupported activation is present.
func Propagate(net *nn.Network, input []Interval) (*NetworkBounds, error) {
	return PropagateWithHints(net, input, nil)
}

// PropagateWithHints propagates intervals while intersecting each layer's
// computed pre-activation intervals with externally proven bounds (e.g.
// from LP tightening in package verify). hints may be nil, shorter than the
// layer count, or contain nil rows; present entries must match layer widths
// and be valid bounds or the result is undefined.
func PropagateWithHints(net *nn.Network, input []Interval, hints [][]Interval) (*NetworkBounds, error) {
	propagatePasses.Add(1)
	if len(input) != net.InputDim() {
		return nil, fmt.Errorf("bounds: box dim %d, network input %d", len(input), net.InputDim())
	}
	for i, iv := range input {
		if iv.Lo > iv.Hi || math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) {
			return nil, fmt.Errorf("bounds: input interval %d malformed: [%g, %g]", i, iv.Lo, iv.Hi)
		}
	}
	nb := &NetworkBounds{Input: append([]Interval(nil), input...)}
	cur := input
	for li, l := range net.Layers {
		lb := LayerBounds{
			Pre:  make([]Interval, l.OutDim()),
			Post: make([]Interval, l.OutDim()),
		}
		for i, row := range l.W {
			lo, hi := l.B[i], l.B[i]
			for j, w := range row {
				if w >= 0 {
					lo += w * cur[j].Lo
					hi += w * cur[j].Hi
				} else {
					lo += w * cur[j].Hi
					hi += w * cur[j].Lo
				}
			}
			pre := Interval{lo, hi}
			if li < len(hints) && hints[li] != nil {
				h := hints[li][i]
				pre.Lo = math.Max(pre.Lo, h.Lo)
				pre.Hi = math.Min(pre.Hi, h.Hi)
				if pre.Lo > pre.Hi { // numerically crossed; collapse safely
					mid := (pre.Lo + pre.Hi) / 2
					pre = Interval{mid, mid}
				}
			}
			lb.Pre[i] = pre
			var err error
			lb.Post[i], err = applyAct(l.Act, pre)
			if err != nil {
				return nil, fmt.Errorf("bounds: layer %d: %w", li, err)
			}
		}
		nb.Layers = append(nb.Layers, lb)
		cur = lb.Post
	}
	return nb, nil
}

// applyAct maps an interval through a monotone activation.
func applyAct(a nn.Activation, iv Interval) (Interval, error) {
	switch a {
	case nn.Identity:
		return iv, nil
	case nn.ReLU:
		return Interval{math.Max(0, iv.Lo), math.Max(0, iv.Hi)}, nil
	case nn.Tanh:
		return Interval{math.Tanh(iv.Lo), math.Tanh(iv.Hi)}, nil
	default:
		return Interval{}, fmt.Errorf("unsupported activation %v", a)
	}
}

// PropagatePoint is Propagate on the degenerate box {x}; its output bounds
// collapse to the network's forward value (used as a sanity check).
func PropagatePoint(net *nn.Network, x []float64) (*NetworkBounds, error) {
	box := make([]Interval, len(x))
	for i, v := range x {
		box[i] = Point(v)
	}
	return Propagate(net, box)
}

// WidthStats summarizes pre-activation interval widths layer by layer; the
// blow-up of widths with depth is the reason pure interval analysis cannot
// verify deep networks and MILP is needed (paper Sec. II (B)).
func (nb *NetworkBounds) WidthStats() []float64 {
	out := make([]float64, len(nb.Layers))
	for li, lb := range nb.Layers {
		var sum float64
		for _, iv := range lb.Pre {
			sum += iv.Width()
		}
		if len(lb.Pre) > 0 {
			out[li] = sum / float64(len(lb.Pre))
		}
	}
	return out
}
