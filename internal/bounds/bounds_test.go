package bounds

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

func randomNet(seed int64, in int, hidden []int, out int, act nn.Activation) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	return nn.New(nn.Config{
		Name: "r", InputDim: in, Hidden: hidden, OutputDim: out,
		HiddenAct: act, OutputAct: nn.Identity,
	}, rng)
}

func unitBox(n int) []Interval {
	box := make([]Interval, n)
	for i := range box {
		box[i] = Interval{-1, 1}
	}
	return box
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{-2, 3}
	if iv.Width() != 5 {
		t.Fatalf("Width = %g", iv.Width())
	}
	if !iv.Contains(0) || iv.Contains(4) {
		t.Fatal("Contains broken")
	}
	if !iv.StraddlesZero() || (Interval{1, 2}).StraddlesZero() || (Interval{0, 2}).StraddlesZero() {
		t.Fatal("StraddlesZero broken")
	}
	if Point(2) != (Interval{2, 2}) {
		t.Fatal("Point broken")
	}
}

func TestPropagateDimMismatch(t *testing.T) {
	net := randomNet(1, 3, []int{4}, 2, nn.ReLU)
	if _, err := Propagate(net, unitBox(2)); err == nil {
		t.Fatal("want error on dim mismatch")
	}
}

func TestPropagateRejectsMalformedInterval(t *testing.T) {
	net := randomNet(1, 2, []int{3}, 1, nn.ReLU)
	box := unitBox(2)
	box[1] = Interval{2, -2}
	if _, err := Propagate(net, box); err == nil {
		t.Fatal("want error on inverted interval")
	}
}

// TestPropagateSound is the core property: for random networks and random
// points inside the box, every neuron's actual value lies inside its bound.
func TestPropagateSound(t *testing.T) {
	for _, act := range []nn.Activation{nn.ReLU, nn.Tanh} {
		for seed := int64(0); seed < 8; seed++ {
			net := randomNet(seed, 4, []int{7, 6, 5}, 3, act)
			box := unitBox(4)
			nb, err := Propagate(net, box)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(seed + 100))
			for s := 0; s < 200; s++ {
				x := make([]float64, 4)
				for i := range x {
					x[i] = rng.Float64()*2 - 1
				}
				tr := net.ForwardTrace(x)
				for li := range net.Layers {
					for j := range tr.Pre[li] {
						const tol = 1e-9
						if tr.Pre[li][j] < nb.Layers[li].Pre[j].Lo-tol || tr.Pre[li][j] > nb.Layers[li].Pre[j].Hi+tol {
							t.Fatalf("act=%v seed=%d: pre[%d][%d]=%g outside [%g,%g]",
								act, seed, li, j, tr.Pre[li][j], nb.Layers[li].Pre[j].Lo, nb.Layers[li].Pre[j].Hi)
						}
						if tr.Post[li][j] < nb.Layers[li].Post[j].Lo-tol || tr.Post[li][j] > nb.Layers[li].Post[j].Hi+tol {
							t.Fatalf("act=%v seed=%d: post[%d][%d]=%g outside [%g,%g]",
								act, seed, li, j, tr.Post[li][j], nb.Layers[li].Post[j].Lo, nb.Layers[li].Post[j].Hi)
						}
					}
				}
			}
		}
	}
}

func TestPropagatePointCollapses(t *testing.T) {
	net := randomNet(5, 3, []int{6, 6}, 2, nn.ReLU)
	x := []float64{0.3, -0.7, 0.1}
	nb, err := PropagatePoint(net, x)
	if err != nil {
		t.Fatal(err)
	}
	out := net.Forward(x)
	for i, iv := range nb.Output() {
		if math.Abs(iv.Lo-out[i]) > 1e-9 || math.Abs(iv.Hi-out[i]) > 1e-9 {
			t.Fatalf("point bounds [%g,%g] != forward %g", iv.Lo, iv.Hi, out[i])
		}
	}
}

func TestStableNeuronsCount(t *testing.T) {
	// One always-active neuron (bias 10), one dead (bias -10), one unstable.
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}, {1}, {1}}, B: []float64{10, -10, 0}, Act: nn.ReLU},
		{W: [][]float64{{1, 1, 1}}, B: []float64{0}, Act: nn.Identity},
	}}
	nb, err := Propagate(net, []Interval{{-1, 1}})
	if err != nil {
		t.Fatal(err)
	}
	stable, total := nb.StableNeurons()
	if total != 3 || stable != 2 {
		t.Fatalf("stable=%d total=%d, want 2/3", stable, total)
	}
}

func TestPropagateWithHintsIntersects(t *testing.T) {
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}}, B: []float64{0}, Act: nn.ReLU},
		{W: [][]float64{{1}}, B: []float64{0}, Act: nn.Identity},
	}}
	hints := [][]Interval{{{Lo: -0.5, Hi: 0.25}}}
	nb, err := PropagateWithHints(net, []Interval{{-1, 1}}, hints)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Layers[0].Pre[0] != (Interval{-0.5, 0.25}) {
		t.Fatalf("hint not applied: %v", nb.Layers[0].Pre[0])
	}
	// Downstream: relu post in [0, 0.25]; output same.
	if nb.Output()[0].Hi != 0.25 {
		t.Fatalf("hint did not propagate: %v", nb.Output()[0])
	}
}

func TestWidthStatsMonotoneGrowth(t *testing.T) {
	// For a deep random ReLU net, average pre-activation width typically
	// grows with depth; at minimum the stats must be positive and finite.
	net := randomNet(9, 4, []int{8, 8, 8, 8}, 2, nn.ReLU)
	nb, err := Propagate(net, unitBox(4))
	if err != nil {
		t.Fatal(err)
	}
	ws := nb.WidthStats()
	if len(ws) != 5 {
		t.Fatalf("stats len %d", len(ws))
	}
	for i, w := range ws {
		if w <= 0 || math.IsInf(w, 0) || math.IsNaN(w) {
			t.Fatalf("width[%d] = %g", i, w)
		}
	}
}

func TestTanhPostBoundsWithinUnit(t *testing.T) {
	net := randomNet(11, 3, []int{5}, 1, nn.Tanh)
	nb, err := Propagate(net, unitBox(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, iv := range nb.Layers[0].Post {
		if iv.Lo < -1 || iv.Hi > 1 {
			t.Fatalf("tanh post interval %v outside [-1,1]", iv)
		}
	}
}
