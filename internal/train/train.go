// Package train implements supervised training for the networks in package
// nn: reverse-mode gradients through dense ReLU/tanh layers, SGD and Adam
// optimizers, mean-squared-error and mixture-density (GMM negative
// log-likelihood) losses, and the property-penalty "hints" regularizer that
// realizes the paper's future-work item (iii) — training under known safety
// properties.
package train

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/nn"
)

// Sample is one supervised example.
type Sample struct {
	X []float64 // network input
	Y []float64 // target (loss-specific semantics)
}

// Loss maps a raw network output and a target to a scalar loss and the
// gradient of that loss with respect to the raw output.
type Loss interface {
	// Eval returns loss and dLoss/dRaw. grad must have len(raw).
	Eval(x, raw, y []float64) (loss float64, grad []float64)
	// Name identifies the loss in logs.
	Name() string
}

// Gradients holds per-layer weight and bias gradients matching a network.
type Gradients struct {
	W [][][]float64
	B [][]float64
}

// NewGradients allocates zeroed gradients shaped like net.
func NewGradients(net *nn.Network) *Gradients {
	g := &Gradients{}
	for _, l := range net.Layers {
		g.W = append(g.W, linalg.NewMatrix(l.OutDim(), l.InDim()))
		g.B = append(g.B, make([]float64, l.OutDim()))
	}
	return g
}

// Zero resets all gradients.
func (g *Gradients) Zero() {
	for li := range g.W {
		for _, row := range g.W[li] {
			linalg.Zero(row)
		}
		linalg.Zero(g.B[li])
	}
}

// Scale multiplies all gradients by alpha.
func (g *Gradients) Scale(alpha float64) {
	for li := range g.W {
		for _, row := range g.W[li] {
			linalg.Scale(alpha, row)
		}
		linalg.Scale(alpha, g.B[li])
	}
}

// Backward accumulates dLoss/dParams into g for one sample, given the
// forward trace and the loss gradient with respect to raw outputs.
// It returns nothing; gradients add onto g so minibatches accumulate.
func Backward(net *nn.Network, tr *nn.Trace, dRaw []float64, g *Gradients) {
	L := len(net.Layers)
	// delta starts as dLoss/dPost for the output layer, then walks back.
	delta := linalg.Clone(dRaw)
	for li := L - 1; li >= 0; li-- {
		layer := net.Layers[li]
		pre := tr.Pre[li]
		// dLoss/dPre = dLoss/dPost ⊙ act'(pre)
		for j := range delta {
			delta[j] *= layer.Act.Derivative(pre[j])
		}
		// Input to this layer.
		var in []float64
		if li == 0 {
			in = tr.Input
		} else {
			in = tr.Post[li-1]
		}
		// Accumulate parameter gradients.
		linalg.AddOuter(g.W[li], 1, delta, in)
		linalg.Axpy(1, delta, g.B[li])
		if li == 0 {
			break
		}
		// Propagate to previous layer: dLoss/dPost_{li-1} = Wᵀ delta.
		prev := make([]float64, layer.InDim())
		linalg.MatTVec(layer.W, delta, prev)
		delta = prev
	}
}

// InputGradient returns dLoss/dInput for one sample — used by
// coverage-guided test generation and saliency traceability.
func InputGradient(net *nn.Network, tr *nn.Trace, dRaw []float64) []float64 {
	delta := linalg.Clone(dRaw)
	for li := len(net.Layers) - 1; li >= 0; li-- {
		layer := net.Layers[li]
		pre := tr.Pre[li]
		for j := range delta {
			delta[j] *= layer.Act.Derivative(pre[j])
		}
		prev := make([]float64, layer.InDim())
		linalg.MatTVec(layer.W, delta, prev)
		delta = prev
	}
	return delta
}

// Optimizer updates network parameters from accumulated gradients.
type Optimizer interface {
	// Step applies one update. Gradients are treated as the minibatch mean.
	Step(net *nn.Network, g *Gradients)
	// Name identifies the optimizer in logs.
	Name() string
}

// SGD is stochastic gradient descent with optional momentum.
type SGD struct {
	LR       float64
	Momentum float64
	vel      *Gradients
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (s *SGD) Step(net *nn.Network, g *Gradients) {
	if s.Momentum > 0 && s.vel == nil {
		s.vel = NewGradients(net)
	}
	for li, l := range net.Layers {
		for r := range l.W {
			for c := range l.W[r] {
				step := g.W[li][r][c]
				if s.Momentum > 0 {
					s.vel.W[li][r][c] = s.Momentum*s.vel.W[li][r][c] + step
					step = s.vel.W[li][r][c]
				}
				l.W[r][c] -= s.LR * step
			}
		}
		for r := range l.B {
			step := g.B[li][r]
			if s.Momentum > 0 {
				s.vel.B[li][r] = s.Momentum*s.vel.B[li][r] + step
				step = s.vel.B[li][r]
			}
			l.B[r] -= s.LR * step
		}
	}
}

// Adam is the Adam optimizer (Kingma & Ba) with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	t                     int
	m, v                  *Gradients
}

// NewAdam returns Adam with the conventional defaults and the given rate.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Step implements Optimizer.
func (a *Adam) Step(net *nn.Network, g *Gradients) {
	if a.m == nil {
		a.m = NewGradients(net)
		a.v = NewGradients(net)
	}
	a.t++
	c1 := 1 - math.Pow(a.Beta1, float64(a.t))
	c2 := 1 - math.Pow(a.Beta2, float64(a.t))
	upd := func(p, gr, m, v *float64) {
		*m = a.Beta1**m + (1-a.Beta1)**gr
		*v = a.Beta2**v + (1-a.Beta2)**gr**gr
		*p -= a.LR * (*m / c1) / (math.Sqrt(*v/c2) + a.Eps)
	}
	for li, l := range net.Layers {
		for r := range l.W {
			for c := range l.W[r] {
				upd(&l.W[r][c], &g.W[li][r][c], &a.m.W[li][r][c], &a.v.W[li][r][c])
			}
		}
		for r := range l.B {
			upd(&l.B[r], &g.B[li][r], &a.m.B[li][r], &a.v.B[li][r])
		}
	}
}

// Trainer couples a network, a loss and an optimizer.
type Trainer struct {
	Net       *nn.Network
	Loss      Loss
	Opt       Optimizer
	BatchSize int // 0 means 32
	Rng       *rand.Rand
	// ClipNorm, when positive, rescales minibatch gradients whose global
	// L2 norm exceeds it (keeps MDN training stable).
	ClipNorm float64
}

// Epoch shuffles data, runs one pass of minibatch updates and returns the
// mean per-sample loss observed during the pass.
func (t *Trainer) Epoch(data []Sample) float64 {
	if t.Rng == nil {
		panic("train: Trainer.Rng must be set for reproducibility")
	}
	bs := t.BatchSize
	if bs <= 0 {
		bs = 32
	}
	idx := t.Rng.Perm(len(data))
	g := NewGradients(t.Net)
	var total float64
	for start := 0; start < len(idx); start += bs {
		end := start + bs
		if end > len(idx) {
			end = len(idx)
		}
		g.Zero()
		for _, di := range idx[start:end] {
			s := data[di]
			tr := t.Net.ForwardTrace(s.X)
			loss, dRaw := t.Loss.Eval(s.X, tr.Output(), s.Y)
			total += loss
			Backward(t.Net, tr, dRaw, g)
		}
		g.Scale(1 / float64(end-start))
		if t.ClipNorm > 0 {
			clip(g, t.ClipNorm)
		}
		t.Opt.Step(t.Net, g)
	}
	return total / float64(len(data))
}

// Fit runs epochs passes and returns the loss curve.
func (t *Trainer) Fit(data []Sample, epochs int) []float64 {
	curve := make([]float64, 0, epochs)
	for e := 0; e < epochs; e++ {
		curve = append(curve, t.Epoch(data))
	}
	return curve
}

// MeanLoss evaluates the dataset without updating parameters.
func (t *Trainer) MeanLoss(data []Sample) float64 {
	var total float64
	for _, s := range data {
		raw := t.Net.Forward(s.X)
		loss, _ := t.Loss.Eval(s.X, raw, s.Y)
		total += loss
	}
	return total / float64(len(data))
}

func clip(g *Gradients, maxNorm float64) {
	var sq float64
	for li := range g.W {
		for _, row := range g.W[li] {
			for _, v := range row {
				sq += v * v
			}
		}
		for _, v := range g.B[li] {
			sq += v * v
		}
	}
	norm := math.Sqrt(sq)
	if norm > maxNorm {
		g.Scale(maxNorm / norm)
	}
}

// Split partitions data into train/validation parts with the given
// validation fraction, shuffled by rng.
func Split(data []Sample, valFrac float64, rng *rand.Rand) (train, val []Sample) {
	if valFrac < 0 || valFrac >= 1 {
		panic(fmt.Sprintf("train: Split fraction %g out of [0,1)", valFrac))
	}
	idx := rng.Perm(len(data))
	nVal := int(float64(len(data)) * valFrac)
	val = make([]Sample, 0, nVal)
	train = make([]Sample, 0, len(data)-nVal)
	for i, di := range idx {
		if i < nVal {
			val = append(val, data[di])
		} else {
			train = append(train, data[di])
		}
	}
	return train, val
}
