package train

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gmm"
	"repro/internal/nn"
)

func smallNet(seed int64, act nn.Activation) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	return nn.New(nn.Config{
		Name: "t", InputDim: 4, Hidden: []int{6, 5}, OutputDim: 3,
		HiddenAct: act, OutputAct: nn.Identity,
	}, rng)
}

// numericalGrad estimates dLoss/dParam by central differences for every
// parameter and compares with Backward's analytic gradients.
func checkGradients(t *testing.T, net *nn.Network, loss Loss, x, y []float64, tol float64) {
	t.Helper()
	tr := net.ForwardTrace(x)
	_, dRaw := loss.Eval(x, tr.Output(), y)
	g := NewGradients(net)
	Backward(net, tr, dRaw, g)

	const h = 1e-6
	evalLoss := func() float64 {
		out := net.Forward(x)
		l, _ := loss.Eval(x, out, y)
		return l
	}
	for li, l := range net.Layers {
		for r := range l.W {
			for c := range l.W[r] {
				orig := l.W[r][c]
				l.W[r][c] = orig + h
				up := evalLoss()
				l.W[r][c] = orig - h
				down := evalLoss()
				l.W[r][c] = orig
				num := (up - down) / (2 * h)
				if diff := math.Abs(num - g.W[li][r][c]); diff > tol*(1+math.Abs(num)) {
					t.Fatalf("layer %d W[%d][%d]: analytic %g vs numeric %g", li, r, c, g.W[li][r][c], num)
				}
			}
		}
		for r := range l.B {
			orig := l.B[r]
			l.B[r] = orig + h
			up := evalLoss()
			l.B[r] = orig - h
			down := evalLoss()
			l.B[r] = orig
			num := (up - down) / (2 * h)
			if diff := math.Abs(num - g.B[li][r]); diff > tol*(1+math.Abs(num)) {
				t.Fatalf("layer %d B[%d]: analytic %g vs numeric %g", li, r, num, g.B[li][r])
			}
		}
	}
}

func TestGradientCheckMSEReLU(t *testing.T) {
	net := smallNet(3, nn.ReLU)
	// Nudge inputs away from ReLU kinks for a clean finite-difference check.
	checkGradients(t, net, MSE{}, []float64{0.31, -0.42, 0.77, 0.13}, []float64{0.5, -0.2, 0.9}, 1e-4)
}

func TestGradientCheckMSETanh(t *testing.T) {
	net := smallNet(4, nn.Tanh)
	checkGradients(t, net, MSE{}, []float64{0.2, 0.1, -0.5, 0.9}, []float64{0.1, 0.2, 0.3}, 1e-4)
}

func TestGradientCheckMDN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := nn.New(nn.Config{
		Name: "mdn", InputDim: 4, Hidden: []int{6}, OutputDim: 2 * gmm.RawPerComponent,
		HiddenAct: nn.Tanh, OutputAct: nn.Identity,
	}, rng)
	loss := MDN{K: 2}
	checkGradients(t, net, loss, []float64{0.3, -0.2, 0.5, 0.1}, []float64{0.4, -0.6}, 1e-3)
}

func TestGradientCheckHintPenalty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := nn.New(nn.Config{
		Name: "h", InputDim: 3, Hidden: []int{5}, OutputDim: 2 * gmm.RawPerComponent,
		HiddenAct: nn.Tanh, OutputAct: nn.Identity,
	}, rng)
	loss := HintPenalty{
		Base:      MDN{K: 2},
		Predicate: func(x []float64) bool { return x[0] > 0 },
		Threshold: -10, // guarantees the penalty branch is active and smooth
		Lambda:    0.5,
		K:         2,
	}
	checkGradients(t, net, loss, []float64{0.4, 0.2, -0.1}, []float64{0.3, 0.1}, 1e-3)
}

func TestMSELossValues(t *testing.T) {
	loss, grad := MSE{}.Eval(nil, []float64{1, 3}, []float64{0, 1})
	if math.Abs(loss-2.5) > 1e-12 { // (1+4)/2
		t.Fatalf("loss = %g, want 2.5", loss)
	}
	if grad[0] != 1 || grad[1] != 2 {
		t.Fatalf("grad = %v, want [1 2]", grad)
	}
}

func TestSGDReducesLossOnLinearFit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	net := nn.New(nn.Config{Name: "lin", InputDim: 2, Hidden: nil, OutputDim: 1, OutputAct: nn.Identity}, rng)
	data := make([]Sample, 200)
	for i := range data {
		x := []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
		data[i] = Sample{X: x, Y: []float64{3*x[0] - 2*x[1] + 0.5}}
	}
	tr := &Trainer{Net: net, Loss: MSE{}, Opt: &SGD{LR: 0.1}, Rng: rand.New(rand.NewSource(1))}
	first := tr.Epoch(data)
	var last float64
	for i := 0; i < 60; i++ {
		last = tr.Epoch(data)
	}
	if last > first/10 || last > 1e-3 {
		t.Fatalf("SGD failed to fit linear target: first %g last %g", first, last)
	}
}

func TestAdamFitsNonlinear(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	net := nn.New(nn.Config{Name: "n", InputDim: 1, Hidden: []int{16, 16}, OutputDim: 1, HiddenAct: nn.ReLU, OutputAct: nn.Identity}, rng)
	data := make([]Sample, 256)
	for i := range data {
		x := rng.Float64()*4 - 2
		data[i] = Sample{X: []float64{x}, Y: []float64{math.Abs(x)}}
	}
	tr := &Trainer{Net: net, Loss: MSE{}, Opt: NewAdam(0.01), Rng: rand.New(rand.NewSource(2)), BatchSize: 32}
	curve := tr.Fit(data, 80)
	if curve[len(curve)-1] > 0.01 {
		t.Fatalf("Adam failed to fit |x|: final loss %g", curve[len(curve)-1])
	}
}

func TestMDNLearnsBimodalTarget(t *testing.T) {
	// Target: for any x, action is ±1 laterally with equal probability.
	// A single Gaussian cannot fit this; a 2-component MDN can.
	rng := rand.New(rand.NewSource(31))
	net := nn.New(nn.Config{
		Name: "mdn", InputDim: 1, Hidden: []int{12}, OutputDim: 2 * gmm.RawPerComponent,
		HiddenAct: nn.Tanh, OutputAct: nn.Identity,
	}, rng)
	// Break mixture symmetry the standard MDN way: spread initial component
	// means apart and start with small σ so components specialize.
	out := net.Layers[len(net.Layers)-1]
	out.B[gmm.MuLatIndex(0)] = 0.5
	out.B[gmm.MuLatIndex(1)] = -0.5
	for k := 0; k < 2; k++ {
		out.B[k*gmm.RawPerComponent+gmm.RawLogSigLat] = -1
		out.B[k*gmm.RawPerComponent+gmm.RawLogSigLong] = -1
	}
	data := make([]Sample, 400)
	for i := range data {
		lat := 1.0
		if rng.Intn(2) == 0 {
			lat = -1
		}
		data[i] = Sample{X: []float64{rng.Float64()}, Y: []float64{lat + rng.NormFloat64()*0.05, 0}}
	}
	tr := &Trainer{Net: net, Loss: MDN{K: 2}, Opt: NewAdam(0.02), Rng: rand.New(rand.NewSource(3)), BatchSize: 64, ClipNorm: 10}
	tr.Fit(data, 250)

	mix := gmm.Decode(net.Forward([]float64{0.5}))
	if err := mix.Validate(); err != nil {
		t.Fatal(err)
	}
	// The learned distribution must be bimodal: both ±1 actions clearly
	// more likely than the midpoint a unimodal fit would choose.
	atPlus := mix.LogPDF([2]float64{1, 0})
	atMinus := mix.LogPDF([2]float64{-1, 0})
	atMid := mix.LogPDF([2]float64{0, 0})
	if atPlus <= atMid || atMinus <= atMid {
		t.Fatalf("not bimodal: logpdf(+1)=%g logpdf(-1)=%g logpdf(0)=%g", atPlus, atMinus, atMid)
	}
}

func TestHintPenaltySuppressesUnsafeOutput(t *testing.T) {
	// Train two nets on data that weakly pushes lateral velocity upward in
	// "left occupied" states; the hinted net must end with smaller μ_lat.
	build := func(hint bool) *nn.Network {
		rng := rand.New(rand.NewSource(41))
		net := nn.New(nn.Config{
			Name: "h", InputDim: 2, Hidden: []int{8}, OutputDim: gmm.RawPerComponent,
			HiddenAct: nn.Tanh, OutputAct: nn.Identity,
		}, rng)
		data := make([]Sample, 300)
		dr := rand.New(rand.NewSource(42))
		for i := range data {
			occupied := float64(i % 2)
			lat := dr.NormFloat64()*0.2 + 1.5*occupied // unsafe habit in data
			data[i] = Sample{X: []float64{occupied, dr.Float64()}, Y: []float64{lat, 0}}
		}
		var loss Loss = MDN{K: 1}
		if hint {
			loss = HintPenalty{
				Base:      loss,
				Predicate: func(x []float64) bool { return x[0] > 0.5 },
				Threshold: 0.2,
				Lambda:    5,
				K:         1,
			}
		}
		tr := &Trainer{Net: net, Loss: loss, Opt: NewAdam(0.02), Rng: rand.New(rand.NewSource(5)), BatchSize: 32, ClipNorm: 10}
		tr.Fit(data, 80)
		return net
	}
	plain := build(false)
	hinted := build(true)
	x := []float64{1, 0.5} // left occupied
	muPlain := plain.Forward(x)[gmm.MuLatIndex(0)]
	muHinted := hinted.Forward(x)[gmm.MuLatIndex(0)]
	if muHinted >= muPlain {
		t.Fatalf("hints did not reduce unsafe mean: plain %g hinted %g", muPlain, muHinted)
	}
	if muHinted > 0.6 {
		t.Fatalf("hinted mean %g still far above threshold", muHinted)
	}
}

func TestInputGradientNumerically(t *testing.T) {
	net := smallNet(51, nn.Tanh)
	x := []float64{0.3, -0.1, 0.6, 0.2}
	y := []float64{0.1, 0.4, -0.3}
	tr := net.ForwardTrace(x)
	_, dRaw := MSE{}.Eval(x, tr.Output(), y)
	grad := InputGradient(net, tr, dRaw)
	const h = 1e-6
	for i := range x {
		orig := x[i]
		x[i] = orig + h
		up, _ := MSE{}.Eval(x, net.Forward(x), y)
		x[i] = orig - h
		down, _ := MSE{}.Eval(x, net.Forward(x), y)
		x[i] = orig
		num := (up - down) / (2 * h)
		if math.Abs(num-grad[i]) > 1e-5*(1+math.Abs(num)) {
			t.Fatalf("input grad %d: analytic %g numeric %g", i, grad[i], num)
		}
	}
}

func TestSplitPartitions(t *testing.T) {
	data := make([]Sample, 100)
	for i := range data {
		data[i] = Sample{X: []float64{float64(i)}}
	}
	tr, val := Split(data, 0.25, rand.New(rand.NewSource(1)))
	if len(tr) != 75 || len(val) != 25 {
		t.Fatalf("split sizes %d/%d", len(tr), len(val))
	}
	seen := map[float64]bool{}
	for _, s := range append(append([]Sample{}, tr...), val...) {
		if seen[s.X[0]] {
			t.Fatal("sample duplicated across split")
		}
		seen[s.X[0]] = true
	}
	if len(seen) != 100 {
		t.Fatal("samples lost in split")
	}
}

func TestTrainerRequiresRng(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on nil rng")
		}
	}()
	tr := &Trainer{Net: smallNet(1, nn.ReLU), Loss: MSE{}, Opt: &SGD{LR: 0.1}}
	tr.Epoch([]Sample{{X: []float64{0, 0, 0, 0}, Y: []float64{0, 0, 0}}})
}

func TestGradientsZeroAndScale(t *testing.T) {
	net := smallNet(6, nn.ReLU)
	g := NewGradients(net)
	g.W[0][0][0] = 2
	g.B[0][0] = 4
	g.Scale(0.5)
	if g.W[0][0][0] != 1 || g.B[0][0] != 2 {
		t.Fatal("Scale broken")
	}
	g.Zero()
	if g.W[0][0][0] != 0 || g.B[0][0] != 0 {
		t.Fatal("Zero broken")
	}
}
