package train

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SaveSamples writes a dataset as JSON to the named file.
func SaveSamples(path string, data []Sample) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("train: save samples: %w", err)
	}
	defer f.Close()
	if err := EncodeSamples(f, data); err != nil {
		return err
	}
	return f.Close()
}

// LoadSamples reads a dataset from the named file.
func LoadSamples(path string) ([]Sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("train: load samples: %w", err)
	}
	defer f.Close()
	return DecodeSamples(f)
}

// EncodeSamples writes samples as JSON to w.
func EncodeSamples(w io.Writer, data []Sample) error {
	if err := json.NewEncoder(w).Encode(data); err != nil {
		return fmt.Errorf("train: encode samples: %w", err)
	}
	return nil
}

// DecodeSamples reads samples from JSON and checks rectangularity.
func DecodeSamples(r io.Reader) ([]Sample, error) {
	var data []Sample
	if err := json.NewDecoder(r).Decode(&data); err != nil {
		return nil, fmt.Errorf("train: decode samples: %w", err)
	}
	for i, s := range data {
		if len(data) > 0 && (len(s.X) != len(data[0].X) || len(s.Y) != len(data[0].Y)) {
			return nil, fmt.Errorf("train: sample %d has dims %d/%d, first has %d/%d",
				i, len(s.X), len(s.Y), len(data[0].X), len(data[0].Y))
		}
	}
	return data, nil
}
