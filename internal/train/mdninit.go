package train

import (
	"fmt"
	"math/rand"

	"repro/internal/gmm"
	"repro/internal/nn"
)

// InitMDNHead breaks mixture symmetry on a freshly constructed network with
// a K-component gmm head: component lateral-velocity means are spread evenly
// over [-spread, +spread] via output biases and log-σ biases start at
// logSigma0 (σ≈e^logSigma0), so components specialize instead of collapsing
// onto one broad Gaussian. jitter adds small random noise so equal-width
// mixtures do not stay exactly symmetric.
func InitMDNHead(net *nn.Network, k int, spread, logSigma0 float64, rng *rand.Rand) {
	if len(net.Layers) == 0 {
		panic("train: InitMDNHead on empty network")
	}
	out := net.Layers[len(net.Layers)-1]
	if out.OutDim() != k*gmm.RawPerComponent {
		panic(fmt.Sprintf("train: InitMDNHead head width %d, want %d", out.OutDim(), k*gmm.RawPerComponent))
	}
	for i := 0; i < k; i++ {
		pos := 0.0
		if k > 1 {
			pos = -spread + 2*spread*float64(i)/float64(k-1)
		}
		base := i * gmm.RawPerComponent
		out.B[base+gmm.RawMuLat] = pos
		out.B[base+gmm.RawLogSigLat] = logSigma0
		out.B[base+gmm.RawLogSigLong] = logSigma0
		if rng != nil {
			out.B[base+gmm.RawMuLat] += rng.NormFloat64() * 0.01
			out.B[base+gmm.RawMuLong] = rng.NormFloat64() * 0.01
		}
	}
}
