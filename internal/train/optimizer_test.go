package train

import (
	"io"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nn"
)

// fitQuadratic trains a small net on y = x² with the given optimizer and
// returns the final loss.
func fitQuadratic(t *testing.T, opt Optimizer, epochs int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(13))
	net := nn.New(nn.Config{Name: "q", InputDim: 1, Hidden: []int{12}, OutputDim: 1, HiddenAct: nn.Tanh, OutputAct: nn.Identity}, rng)
	data := make([]Sample, 128)
	dr := rand.New(rand.NewSource(14))
	for i := range data {
		x := dr.Float64()*2 - 1
		data[i] = Sample{X: []float64{x}, Y: []float64{x * x}}
	}
	tr := &Trainer{Net: net, Loss: MSE{}, Opt: opt, Rng: rand.New(rand.NewSource(15)), BatchSize: 32}
	curve := tr.Fit(data, epochs)
	return curve[len(curve)-1]
}

func TestOptimizersAllConverge(t *testing.T) {
	cases := []struct {
		name string
		opt  Optimizer
		tol  float64
	}{
		{"sgd", &SGD{LR: 0.2}, 0.01},
		{"sgd+momentum", &SGD{LR: 0.05, Momentum: 0.9}, 0.01},
		{"adam", NewAdam(0.02), 0.005},
	}
	for _, c := range cases {
		if loss := fitQuadratic(t, c.opt, 120); loss > c.tol {
			t.Errorf("%s final loss %g > %g", c.name, loss, c.tol)
		}
	}
}

func TestMomentumAcceleratesEarly(t *testing.T) {
	plain := fitQuadratic(t, &SGD{LR: 0.05}, 25)
	moment := fitQuadratic(t, &SGD{LR: 0.05, Momentum: 0.9}, 25)
	if moment > plain {
		t.Fatalf("momentum (%g) should not lag plain SGD (%g) on a smooth objective", moment, plain)
	}
}

func TestOptimizerNames(t *testing.T) {
	if (&SGD{}).Name() != "sgd" || NewAdam(0.1).Name() != "adam" {
		t.Fatal("optimizer names broken")
	}
	if (MSE{}).Name() != "mse" || (MDN{K: 1}).Name() != "mdn-nll" {
		t.Fatal("loss names broken")
	}
	h := HintPenalty{Base: MDN{K: 1}}
	if h.Name() != "mdn-nll+hints" {
		t.Fatalf("hint name %q", h.Name())
	}
}

// TestQuickMSENonNegative: the MSE loss is non-negative and zero exactly at
// the target.
func TestQuickMSENonNegative(t *testing.T) {
	f := func(raw, y [4]float64) bool {
		for i := range raw {
			if math.IsNaN(raw[i]) || math.IsNaN(y[i]) || math.Abs(raw[i]) > 1e100 || math.Abs(y[i]) > 1e100 {
				return true
			}
		}
		loss, _ := MSE{}.Eval(nil, raw[:], y[:])
		if loss < 0 {
			return false
		}
		self, _ := MSE{}.Eval(nil, raw[:], raw[:])
		return self == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSamplesRoundTrip: encode/decode of datasets is lossless.
func TestQuickSamplesRoundTrip(t *testing.T) {
	f := func(vals [6]float64) bool {
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		data := []Sample{
			{X: vals[:3], Y: vals[3:5]},
			{X: []float64{vals[5], 0, 1}, Y: []float64{2, 3}},
		}
		var buf mockBuffer
		if err := EncodeSamples(&buf, data); err != nil {
			return false
		}
		back, err := DecodeSamples(&buf)
		if err != nil || len(back) != len(data) {
			return false
		}
		for i := range data {
			for j := range data[i].X {
				if back[i].X[j] != data[i].X[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// mockBuffer is a minimal io.ReadWriter for round-trip tests.
type mockBuffer struct{ data []byte }

func (b *mockBuffer) Write(p []byte) (int, error) { b.data = append(b.data, p...); return len(p), nil }
func (b *mockBuffer) Read(p []byte) (int, error) {
	if len(b.data) == 0 {
		return 0, errEOF
	}
	n := copy(p, b.data)
	b.data = b.data[n:]
	return n, nil
}

var errEOF = io.EOF
