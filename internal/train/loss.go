package train

import (
	"fmt"
	"math"

	"repro/internal/gmm"
)

// MSE is mean squared error over raw outputs: L = Σ (raw−y)² / dim.
type MSE struct{}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Eval implements Loss.
func (MSE) Eval(_, raw, y []float64) (float64, []float64) {
	if len(raw) != len(y) {
		panic(fmt.Sprintf("train: MSE target dim %d, raw dim %d", len(y), len(raw)))
	}
	grad := make([]float64, len(raw))
	var loss float64
	inv := 1 / float64(len(raw))
	for i := range raw {
		d := raw[i] - y[i]
		loss += d * d * inv
		grad[i] = 2 * d * inv
	}
	return loss, grad
}

// MDN is the mixture-density negative log-likelihood over the gmm raw
// layout: the target y is one observed action (lateral velocity,
// longitudinal acceleration) and the network output parameterizes a
// K-component Gaussian mixture (see package gmm).
type MDN struct {
	// K is the number of mixture components; raw outputs must have
	// length K*gmm.RawPerComponent.
	K int
}

// Name implements Loss.
func (MDN) Name() string { return "mdn-nll" }

// Eval implements Loss. Gradients follow the standard MDN derivation with
// responsibilities r_k: d/dlogit = π−r; d/dμ = r(μ−y)/σ²;
// d/dlogσ = r(1−(y−μ)²/σ²). Clamped log-σ raw values receive zero gradient
// outside the clamp range (subgradient of the clamp).
func (l MDN) Eval(_, raw, y []float64) (float64, []float64) {
	if len(raw) != l.K*gmm.RawPerComponent {
		panic(fmt.Sprintf("train: MDN raw dim %d, want %d", len(raw), l.K*gmm.RawPerComponent))
	}
	if len(y) != 2 {
		panic(fmt.Sprintf("train: MDN target dim %d, want 2", len(y)))
	}
	mix := gmm.Decode(raw)
	pt := [2]float64{y[0], y[1]}
	ll := mix.LogPDF(pt)
	loss := -ll

	// Responsibilities r_k = w_k N_k / Σ w N computed stably from log terms.
	k := l.K
	logTerms := make([]float64, k)
	maxT := math.Inf(-1)
	for i, c := range mix.Components {
		t := math.Log(math.Max(c.Weight, 1e-300)) +
			logGauss(y[0], c.Mean[0], c.Std[0]) +
			logGauss(y[1], c.Mean[1], c.Std[1])
		logTerms[i] = t
		if t > maxT {
			maxT = t
		}
	}
	var z float64
	for _, t := range logTerms {
		z += math.Exp(t - maxT)
	}
	grad := make([]float64, len(raw))
	for i, c := range mix.Components {
		r := math.Exp(logTerms[i]-maxT) / z
		base := i * gmm.RawPerComponent
		grad[base+gmm.RawLogit] = c.Weight - r
		for d := 0; d < 2; d++ {
			sig2 := c.Std[d] * c.Std[d]
			grad[base+gmm.RawMuLat+d] = r * (c.Mean[d] - y[d]) / sig2
			// Zero gradient where the decode clamp saturated.
			rawLS := raw[base+gmm.RawLogSigLat+d]
			if rawLS > gmm.LogSigMin && rawLS < gmm.LogSigMax {
				diff := y[d] - c.Mean[d]
				grad[base+gmm.RawLogSigLat+d] = r * (1 - diff*diff/sig2)
			}
		}
	}
	return loss, grad
}

func logGauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return -0.5*d*d - math.Log(sigma) - 0.5*math.Log(2*math.Pi)
}

// HintPenalty wraps a base loss with the paper's "hints" idea (concluding
// remark iii): when the scenario predicate holds for the input — e.g. a
// vehicle is present on the left — every component's lateral-velocity mean
// above Threshold is penalized quadratically, steering training toward
// networks that verify.
type HintPenalty struct {
	Base Loss
	// Predicate reports whether the safety precondition holds at x.
	Predicate func(x []float64) bool
	// Threshold is the lateral-velocity bound the property imposes (m/s).
	Threshold float64
	// Lambda scales the penalty.
	Lambda float64
	// K is the number of mixture components in the raw layout.
	K int
}

// Name implements Loss.
func (h HintPenalty) Name() string { return h.Base.Name() + "+hints" }

// Eval implements Loss.
func (h HintPenalty) Eval(x, raw, y []float64) (float64, []float64) {
	loss, grad := h.Base.Eval(x, raw, y)
	if h.Predicate == nil || !h.Predicate(x) {
		return loss, grad
	}
	for k := 0; k < h.K; k++ {
		i := gmm.MuLatIndex(k)
		if over := raw[i] - h.Threshold; over > 0 {
			loss += h.Lambda * over * over
			grad[i] += 2 * h.Lambda * over
		}
	}
	return loss, grad
}
