package coverage

import (
	"fmt"

	"repro/internal/nn"
)

// PairSuite tracks sign–sign (SS) pair coverage, the MC/DC adaptation for
// ReLU networks from the DNN-testing literature (cf. DeepCover): a pair
// (condition neuron α in layer l, decision neuron β in layer l+1) is
// covered when the suite contains two tests between which α's phase flips,
// β's phase flips, and every *other* neuron of layer l keeps its phase —
// demonstrating that α independently affects β, exactly MC/DC's
// "each condition independently affects the decision".
//
// The quadratic pair count (and the need for near-identical test pairs)
// makes full SS coverage practically unreachable for real networks — the
// quantitative form of the paper's intractability argument.
type PairSuite struct {
	net *nn.Network
	// patterns seen so far, as per-ReLU-layer sign rows (nn.ActivationPattern).
	seen []snapshot
	// rows[p] is the pattern-row index of the condition layer of pair
	// group p; the decision layer is pattern row rows[p]+1 (adjacent ReLU
	// layers — a non-ReLU layer in between breaks the condition→decision
	// adjacency MC/DC pairs are defined over).
	rows []int
	// covered[p][alpha][beta] for pair group p.
	covered [][][]bool
	pairs   int
	tests   int
}

type snapshot struct {
	signs [][]bool
}

// NewPairSuite creates an empty SS-coverage suite for a ReLU network.
// Only hidden layers participate (the decision layer for the last hidden
// layer's conditions is the output and has no phase).
func NewPairSuite(net *nn.Network) *PairSuite {
	ps := &PairSuite{net: net}
	relu := net.ReLULayers()
	for r := 0; r+1 < len(relu); r++ {
		if relu[r+1] != relu[r]+1 {
			continue // not adjacent layers: no condition→decision edge
		}
		nA := net.Layers[relu[r]].OutDim()
		nB := net.Layers[relu[r+1]].OutDim()
		layer := make([][]bool, nA)
		for a := range layer {
			layer[a] = make([]bool, nB)
		}
		ps.rows = append(ps.rows, r)
		ps.covered = append(ps.covered, layer)
		ps.pairs += nA * nB
	}
	return ps
}

// TotalPairs returns the number of condition–decision pairs to cover.
func (ps *PairSuite) TotalPairs() int { return ps.pairs }

// Tests returns the number of inputs added.
func (ps *PairSuite) Tests() int { return ps.tests }

// Add records one test input and returns how many new pairs it covered
// (against all previously added tests).
func (ps *PairSuite) Add(x []float64) int {
	cur := snapshot{signs: ps.net.ActivationPattern(x)}
	ps.tests++
	newly := 0
	for _, old := range ps.seen {
		newly += ps.matchPair(old, cur)
	}
	ps.seen = append(ps.seen, cur)
	return newly
}

// matchPair marks pairs covered by the (old, cur) test pair.
func (ps *PairSuite) matchPair(a, b snapshot) int {
	newly := 0
	for p, li := range ps.rows {
		// Count condition flips in the condition row; SS coverage requires
		// exactly one (the candidate α), so all other conditions keep
		// their phase.
		flips := make([]int, 0, 2)
		for j := range a.signs[li] {
			if a.signs[li][j] != b.signs[li][j] {
				flips = append(flips, j)
				if len(flips) > 1 {
					break
				}
			}
		}
		if len(flips) != 1 {
			continue
		}
		alpha := flips[0]
		for beta := range a.signs[li+1] {
			if a.signs[li+1][beta] != b.signs[li+1][beta] && !ps.covered[p][alpha][beta] {
				ps.covered[p][alpha][beta] = true
				newly++
			}
		}
	}
	return newly
}

// Covered returns the number of covered pairs.
func (ps *PairSuite) Covered() int {
	n := 0
	for _, layer := range ps.covered {
		for _, row := range layer {
			for _, c := range row {
				if c {
					n++
				}
			}
		}
	}
	return n
}

// Coverage returns the covered fraction (1 when there are no pairs).
func (ps *PairSuite) Coverage() float64 {
	if ps.pairs == 0 {
		return 1
	}
	return float64(ps.Covered()) / float64(ps.pairs)
}

// String summarizes the suite.
func (ps *PairSuite) String() string {
	return fmt.Sprintf("ss-coverage: %d tests, %d/%d pairs (%.1f%%)",
		ps.tests, ps.Covered(), ps.TotalPairs(), 100*ps.Coverage())
}
