// Package coverage measures structural test coverage of networks and makes
// the paper's Sec. II correctness argument concrete:
//
//   - a tanh network contains no branches, so MC/DC-style condition
//     coverage is satisfied by a single test case (RequiredTests = 1);
//   - a ReLU network contains one if-then-else per neuron, so exhaustive
//     branch coverage needs 2^n activation patterns (BranchCombinations),
//     which is intractable for any realistic n — the motivation for the
//     formal analysis in package verify.
//
// The package also provides practical (incomplete) coverage metrics used in
// the ANN testing literature: neuron coverage, sign (both-phase) coverage,
// distinct activation patterns, and a coverage-guided random test generator.
package coverage

import (
	"fmt"
	"math/big"
	"math/rand"
	"strings"

	"repro/internal/nn"
)

// ReLUConditions counts the branching conditions of a network: one per
// hidden ReLU neuron (output layers do not branch).
func ReLUConditions(net *nn.Network) int {
	count := 0
	for _, l := range net.Layers {
		if l.Act == nn.ReLU { // every ReLU neuron is an if-then-else
			count += l.OutDim()
		}
	}
	return count
}

// BranchCombinations returns 2^conditions — the number of activation
// patterns exhaustive branch testing would have to cover. The value
// overflows int64 already for the paper's smallest predictor (I4×10 has
// 40 neurons), hence math/big.
func BranchCombinations(net *nn.Network) *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), uint(ReLUConditions(net)))
}

// RequiredTests returns the minimum number of test cases MC/DC-style
// condition coverage demands: 1 for branch-free (e.g. tanh) networks —
// the paper's point (i) — and conditions+1 as the standard MC/DC lower
// bound when ReLU branches are present.
func RequiredTests(net *nn.Network) int {
	c := ReLUConditions(net)
	if c == 0 {
		return 1
	}
	return c + 1
}

// Suite accumulates coverage over a set of test inputs.
type Suite struct {
	net *nn.Network
	// layers maps each pattern row to its network layer index (the hidden
	// ReLU layers, per nn.ReLULayers — non-ReLU layers do not branch and
	// carry no coverage obligation).
	layers []int
	// seenActive/seenInactive per monitored layer per neuron.
	seenActive   [][]bool
	seenInactive [][]bool
	patterns     map[string]struct{}
	tests        int
}

// NewSuite creates an empty coverage suite for the network.
func NewSuite(net *nn.Network) *Suite {
	s := &Suite{net: net, layers: net.ReLULayers(), patterns: make(map[string]struct{})}
	for _, li := range s.layers {
		n := net.Layers[li].OutDim()
		s.seenActive = append(s.seenActive, make([]bool, n))
		s.seenInactive = append(s.seenInactive, make([]bool, n))
	}
	return s
}

// Add runs one test input through the network and records its coverage.
// It returns true when the input increased sign coverage or exercised a new
// activation pattern.
func (s *Suite) Add(x []float64) bool {
	pat := s.net.ActivationPattern(x)
	s.tests++
	improved := false
	var key strings.Builder
	for li, row := range pat {
		for j, active := range row {
			if active {
				if !s.seenActive[li][j] {
					s.seenActive[li][j] = true
					improved = true
				}
				key.WriteByte('1')
			} else {
				if !s.seenInactive[li][j] {
					s.seenInactive[li][j] = true
					improved = true
				}
				key.WriteByte('0')
			}
		}
		key.WriteByte('|')
	}
	if _, ok := s.patterns[key.String()]; !ok {
		s.patterns[key.String()] = struct{}{}
		improved = true
	}
	return improved
}

// Tests returns the number of inputs added.
func (s *Suite) Tests() int { return s.tests }

// Patterns returns the number of distinct activation patterns exercised.
func (s *Suite) Patterns() int { return len(s.patterns) }

// NeuronCoverage returns the fraction of hidden neurons activated by at
// least one test (the classic DeepXplore metric).
func (s *Suite) NeuronCoverage() float64 {
	cov, total := 0, 0
	for li := range s.seenActive {
		for j := range s.seenActive[li] {
			total++
			if s.seenActive[li][j] {
				cov++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(cov) / float64(total)
}

// SignCoverage returns the fraction of hidden neurons observed in *both*
// phases — the ReLU analogue of condition coverage: each "if" has been
// taken both ways.
func (s *Suite) SignCoverage() float64 {
	cov, total := 0, 0
	for li := range s.seenActive {
		for j := range s.seenActive[li] {
			total++
			if s.seenActive[li][j] && s.seenInactive[li][j] {
				cov++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(cov) / float64(total)
}

// UncoveredNeurons lists (layer, neuron) pairs missing a phase; the layer
// is the network layer index, not the pattern row.
func (s *Suite) UncoveredNeurons() [][2]int {
	var out [][2]int
	for li := range s.seenActive {
		for j := range s.seenActive[li] {
			if !s.seenActive[li][j] || !s.seenInactive[li][j] {
				out = append(out, [2]int{s.layers[li], j})
			}
		}
	}
	return out
}

// String renders a coverage summary.
func (s *Suite) String() string {
	return fmt.Sprintf("coverage: %d tests, %d patterns, neuron %.1f%%, sign %.1f%%",
		s.tests, s.Patterns(), 100*s.NeuronCoverage(), 100*s.SignCoverage())
}

// GenerateOptions tune coverage-guided generation.
type GenerateOptions struct {
	// MaxTests bounds the sampling budget; 0 means 1000.
	MaxTests int
	// TargetSign stops once sign coverage reaches this fraction; 0 means 1.0.
	TargetSign float64
	// Accept, when non-nil, filters sampled inputs: only accepted inputs
	// are scored (e.g. membership in a linearly constrained region).
	// Rejected draws still consume the MaxTests budget, so generation
	// stays bounded even for thin regions.
	Accept func(x []float64) bool
	// Cancel, when non-nil, is polled once per draw; generation stops
	// early when it returns true (the hook contexts and server drain
	// reach the sampling loop through).
	Cancel func() bool
}

// Generate grows a fresh test suite by rejection: random inputs from the
// box are kept only when they improve coverage. It returns the suite and
// the kept inputs. Boxes are given as parallel lo/hi slices. The explicit
// rand.Source makes generated suites reproducible across runs and across
// processes (the verification service and the CLI draw the same inputs for
// the same seed); callers own their randomness.
func Generate(net *nn.Network, lo, hi []float64, src rand.Source, opts GenerateOptions) (*Suite, [][]float64) {
	suite := NewSuite(net)
	kept := suite.Generate(lo, hi, src, opts)
	return suite, kept
}

// Generate grows this suite by coverage-guided rejection sampling from the
// box, on top of whatever tests it already holds (so dataset-derived
// coverage can be topped up by generated inputs). It returns the kept
// (coverage-improving) inputs.
func (s *Suite) Generate(lo, hi []float64, src rand.Source, opts GenerateOptions) [][]float64 {
	maxTests := opts.MaxTests
	if maxTests <= 0 {
		maxTests = 1000
	}
	target := opts.TargetSign
	if target <= 0 {
		target = 1
	}
	rng := rand.New(src)
	var kept [][]float64
	for i := 0; i < maxTests; i++ {
		if s.SignCoverage() >= target {
			break
		}
		if opts.Cancel != nil && opts.Cancel() {
			break
		}
		x := make([]float64, len(lo))
		for j := range x {
			x[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
		}
		if opts.Accept != nil && !opts.Accept(x) {
			continue
		}
		if s.Add(x) {
			kept = append(kept, x)
		}
	}
	return kept
}
