package coverage

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/nn"
)

// pairNet is a 3-layer net (2 hidden ReLU layers) where SS pairs exist.
func pairNet() *nn.Network {
	return &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1, 0}, {0, 1}}, B: []float64{0, 0}, Act: nn.ReLU},
		{W: [][]float64{{1, -1}}, B: []float64{0}, Act: nn.ReLU},
		{W: [][]float64{{1}}, B: []float64{0}, Act: nn.Identity},
	}}
}

func TestPairSuiteCounts(t *testing.T) {
	ps := NewPairSuite(pairNet())
	if ps.TotalPairs() != 2 { // 2 conditions in layer 0 × 1 decision in layer 1
		t.Fatalf("pairs = %d, want 2", ps.TotalPairs())
	}
	if ps.Coverage() != 0 {
		t.Fatalf("fresh coverage = %g", ps.Coverage())
	}
}

func TestPairSuiteDetectsIndependentEffect(t *testing.T) {
	ps := NewPairSuite(pairNet())
	// Test 1: x = (1, 0): layer0 = [1, 0] -> phases (on, off);
	// layer1 pre = 1 -> on.
	ps.Add([]float64{1, 0})
	// Test 2: x = (-1, 0): layer0 phases (off, off); layer1 pre = 0 -> off.
	// Exactly condition 0 flips, decision flips: pair (0,0) covered.
	newly := ps.Add([]float64{-1, 0})
	if newly != 1 {
		t.Fatalf("newly covered = %d, want 1", newly)
	}
	if ps.Covered() != 1 {
		t.Fatalf("covered = %d", ps.Covered())
	}
	// Test 3: x = (1, 2): layer0 (on, on) — relative to test 1 only
	// condition 1 flips; layer1 pre = 1-2 = -1 -> off (flips): pair (1,0).
	newly = ps.Add([]float64{1, 2})
	if newly != 1 {
		t.Fatalf("newly covered = %d, want 1 (pair 1->0)", newly)
	}
	if ps.Coverage() != 1 {
		t.Fatalf("coverage = %g, want 1", ps.Coverage())
	}
	if !strings.Contains(ps.String(), "2/2") {
		t.Fatalf("summary %q", ps.String())
	}
}

func TestPairSuiteRejectsMultiFlip(t *testing.T) {
	ps := NewPairSuite(pairNet())
	ps.Add([]float64{1, 2})            // phases (on, on)
	newly := ps.Add([]float64{-1, -2}) // both conditions flip: no SS pair
	if newly != 0 {
		t.Fatalf("multi-flip pair counted: %d", newly)
	}
}

func TestPairSuiteSingleHiddenLayerHasNoPairs(t *testing.T) {
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}}, B: []float64{0}, Act: nn.ReLU},
		{W: [][]float64{{1}}, B: []float64{0}, Act: nn.Identity},
	}}
	ps := NewPairSuite(net)
	if ps.TotalPairs() != 0 || ps.Coverage() != 1 {
		t.Fatalf("pairs=%d coverage=%g", ps.TotalPairs(), ps.Coverage())
	}
}

// TestPairCoverageHardness demonstrates the paper's point quantitatively:
// SS (MC/DC-style) coverage from random testing collapses as layers widen —
// ~96% of pairs at width 12 but only a few percent at width 40 for the same
// 300-test budget, because a pair needs two tests differing in *exactly one*
// condition of a layer.
func TestPairCoverageHardness(t *testing.T) {
	run := func(width int) float64 {
		rng := rand.New(rand.NewSource(1))
		net := nn.New(nn.Config{
			Name: "h", InputDim: 6, Hidden: []int{width, width, width}, OutputDim: 1,
			HiddenAct: nn.ReLU, OutputAct: nn.Identity,
		}, rng)
		ps := NewPairSuite(net)
		for i := 0; i < 300; i++ {
			x := make([]float64, 6)
			for j := range x {
				x[j] = rng.Float64()*2 - 1
			}
			ps.Add(x)
		}
		if ps.Covered() == 0 {
			t.Fatalf("width %d: not a single pair covered; suite is likely broken", width)
		}
		return ps.Coverage()
	}
	narrow := run(12)
	wide := run(40)
	if narrow < 0.7 {
		t.Fatalf("narrow layers should nearly saturate, got %.0f%%", 100*narrow)
	}
	if wide > 0.3 {
		t.Fatalf("wide layers covered %.0f%% — the width collapse demo is broken", 100*wide)
	}
}
