package coverage

import (
	"math/big"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/nn"
)

func reluNet(seed int64, hidden []int) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	return nn.New(nn.Config{
		Name: "c", InputDim: 3, Hidden: hidden, OutputDim: 2,
		HiddenAct: nn.ReLU, OutputAct: nn.Identity,
	}, rng)
}

func tanhNet(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	return nn.New(nn.Config{
		Name: "t", InputDim: 3, Hidden: []int{5, 5}, OutputDim: 2,
		HiddenAct: nn.Tanh, OutputAct: nn.Identity,
	}, rng)
}

func TestReLUConditionsCount(t *testing.T) {
	if got := ReLUConditions(reluNet(1, []int{4, 6})); got != 10 {
		t.Fatalf("conditions = %d, want 10", got)
	}
	if got := ReLUConditions(tanhNet(1)); got != 0 {
		t.Fatalf("tanh conditions = %d, want 0", got)
	}
}

// TestPaperMCDCArgument encodes the paper's Sec. II claim directly:
// tanh networks satisfy MC/DC with one test; ReLU networks need
// exponentially many branch combinations.
func TestPaperMCDCArgument(t *testing.T) {
	if got := RequiredTests(tanhNet(1)); got != 1 {
		t.Fatalf("tanh RequiredTests = %d; the paper says one test suffices", got)
	}
	relu := reluNet(1, []int{4, 6})
	if got := RequiredTests(relu); got != 11 {
		t.Fatalf("relu RequiredTests = %d, want conditions+1 = 11", got)
	}
	want := new(big.Int).Lsh(big.NewInt(1), 10)
	if BranchCombinations(relu).Cmp(want) != 0 {
		t.Fatalf("BranchCombinations = %s, want 2^10", BranchCombinations(relu))
	}
}

func TestBranchCombinationsOverflowScale(t *testing.T) {
	// The paper's I4×60 has 240 ReLU neurons: 2^240 must be representable.
	rng := rand.New(rand.NewSource(2))
	big240 := nn.New(nn.Config{Name: "b", InputDim: 4, Hidden: []int{60, 60, 60, 60}, OutputDim: 1, HiddenAct: nn.ReLU, OutputAct: nn.Identity}, rng)
	bc := BranchCombinations(big240)
	if bc.BitLen() != 241 { // 2^240 has 241 bits
		t.Fatalf("2^240 bitlen = %d", bc.BitLen())
	}
}

func TestSuiteCoverageProgression(t *testing.T) {
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}, {-1}}, B: []float64{0, 0}, Act: nn.ReLU},
		{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
	}}
	s := NewSuite(net)
	if s.NeuronCoverage() != 0 || s.Tests() != 0 {
		t.Fatal("fresh suite should be empty")
	}
	if !s.Add([]float64{1}) { // neuron0 active, neuron1 inactive
		t.Fatal("first test should improve coverage")
	}
	if s.NeuronCoverage() != 0.5 {
		t.Fatalf("neuron coverage = %g, want 0.5", s.NeuronCoverage())
	}
	if s.SignCoverage() != 0 {
		t.Fatalf("sign coverage = %g, want 0 (no neuron seen both ways)", s.SignCoverage())
	}
	if !s.Add([]float64{-1}) {
		t.Fatal("second test should improve coverage")
	}
	if s.SignCoverage() != 1 || s.NeuronCoverage() != 1 {
		t.Fatalf("full coverage expected, got neuron %g sign %g", s.NeuronCoverage(), s.SignCoverage())
	}
	if s.Patterns() != 2 {
		t.Fatalf("patterns = %d, want 2", s.Patterns())
	}
	if s.Add([]float64{2}) { // same pattern as x=1
		t.Fatal("repeat pattern should not count as improvement")
	}
	if len(s.UncoveredNeurons()) != 0 {
		t.Fatalf("uncovered = %v", s.UncoveredNeurons())
	}
	if !strings.Contains(s.String(), "coverage:") {
		t.Fatal("String() broken")
	}
}

func TestUncoveredNeuronsListsDead(t *testing.T) {
	// Neuron with bias -100 can never activate on [0,1] inputs.
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}, {1}}, B: []float64{0, -100}, Act: nn.ReLU},
		{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
	}}
	s := NewSuite(net)
	s.Add([]float64{0.5})
	s.Add([]float64{-0.5})
	unc := s.UncoveredNeurons()
	if len(unc) != 1 || unc[0] != [2]int{0, 1} {
		t.Fatalf("uncovered = %v, want [[0 1]]", unc)
	}
}

func TestGenerateReachesFullSignCoverage(t *testing.T) {
	net := reluNet(7, []int{6})
	lo := []float64{-2, -2, -2}
	hi := []float64{2, 2, 2}
	suite, kept := Generate(net, lo, hi, rand.NewSource(3), GenerateOptions{MaxTests: 4000})
	if suite.SignCoverage() < 0.99 {
		t.Fatalf("sign coverage only %.2f after generation", suite.SignCoverage())
	}
	if len(kept) == 0 || len(kept) > suite.Tests() {
		t.Fatalf("kept %d of %d", len(kept), suite.Tests())
	}
}

func TestGenerateRespectsTarget(t *testing.T) {
	net := reluNet(8, []int{8})
	lo := []float64{-1, -1, -1}
	hi := []float64{1, 1, 1}
	suite, _ := Generate(net, lo, hi, rand.NewSource(4), GenerateOptions{MaxTests: 5000, TargetSign: 0.5})
	if suite.SignCoverage() < 0.5 {
		t.Fatalf("target sign coverage not reached: %g", suite.SignCoverage())
	}
}

func TestGenerateReproducibleAcrossRuns(t *testing.T) {
	// The same explicit source must reproduce the generated suite exactly:
	// same inputs kept, in the same order, bit for bit.
	net := reluNet(7, []int{6})
	lo := []float64{-2, -2, -2}
	hi := []float64{2, 2, 2}
	opts := GenerateOptions{MaxTests: 500}
	s1, k1 := Generate(net, lo, hi, rand.NewSource(9), opts)
	s2, k2 := Generate(net, lo, hi, rand.NewSource(9), opts)
	if s1.Tests() != s2.Tests() || s1.Patterns() != s2.Patterns() {
		t.Fatalf("suites diverge: %v vs %v", s1, s2)
	}
	if len(k1) != len(k2) {
		t.Fatalf("kept %d vs %d inputs", len(k1), len(k2))
	}
	for i := range k1 {
		for j := range k1[i] {
			if k1[i][j] != k2[i][j] {
				t.Fatalf("kept[%d][%d] = %v vs %v", i, j, k1[i][j], k2[i][j])
			}
		}
	}
}

// TestGenerateGoldenSuite pins the generated suite for a fixed network and
// source so any change to the sampling or rejection logic is caught: the
// suite shape and the first kept input are part of the contract the
// service's seeded coverage analyses rely on.
func TestGenerateGoldenSuite(t *testing.T) {
	net := reluNet(7, []int{6})
	lo := []float64{-2, -2, -2}
	hi := []float64{2, 2, 2}
	suite, kept := Generate(net, lo, hi, rand.NewSource(9), GenerateOptions{MaxTests: 500})
	if len(kept) == 0 {
		t.Fatal("nothing kept")
	}
	// Golden values recorded from the pinned generator (Go 1.22 math/rand
	// top-level stream for source seed 9 is stable by Go 1 compatibility).
	want := make([]float64, 3)
	rng := rand.New(rand.NewSource(9))
	for j := range want {
		want[j] = lo[j] + rng.Float64()*(hi[j]-lo[j])
	}
	for j := range want {
		if kept[0][j] != want[j] {
			t.Fatalf("kept[0][%d] = %v, want %v", j, kept[0][j], want[j])
		}
	}
	if suite.Tests() != 500 && suite.SignCoverage() < 1 {
		t.Fatalf("suite stopped early without reaching target: %v", suite)
	}
}

func TestSuiteGenerateTopsUpExistingCoverage(t *testing.T) {
	// Dataset-derived coverage first, then generation on top: the suite
	// keeps the dataset tests and only generation-kept inputs return.
	net := reluNet(7, []int{6})
	s := NewSuite(net)
	s.Add([]float64{0.5, 0.5, 0.5})
	kept := s.Generate([]float64{-2, -2, -2}, []float64{2, 2, 2}, rand.NewSource(9), GenerateOptions{MaxTests: 300})
	if s.Tests() < 1+len(kept) {
		t.Fatalf("tests %d < 1 + kept %d", s.Tests(), len(kept))
	}
	if s.SignCoverage() == 0 {
		t.Fatal("no coverage accumulated")
	}
}

func TestEmptyHiddenCoverage(t *testing.T) {
	// A linear model has no hidden neurons: coverage is trivially 1.
	rng := rand.New(rand.NewSource(5))
	lin := nn.New(nn.Config{Name: "l", InputDim: 2, Hidden: nil, OutputDim: 1, OutputAct: nn.Identity}, rng)
	s := NewSuite(lin)
	s.Add([]float64{1, 2})
	if s.NeuronCoverage() != 1 || s.SignCoverage() != 1 {
		t.Fatal("trivial coverage expected for linear model")
	}
	if RequiredTests(lin) != 1 {
		t.Fatalf("RequiredTests(linear) = %d", RequiredTests(lin))
	}
}
