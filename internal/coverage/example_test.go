package coverage_test

import (
	"fmt"
	"math/rand"

	"repro/internal/coverage"
	"repro/internal/nn"
)

// Example demonstrates the paper's MC/DC dichotomy: one test suffices for
// tanh, 2^n branch patterns exist for ReLU.
func Example() {
	rng := rand.New(rand.NewSource(1))
	tanh := nn.New(nn.Config{Name: "t", InputDim: 4, Hidden: []int{10}, OutputDim: 1, HiddenAct: nn.Tanh, OutputAct: nn.Identity}, rng)
	relu := nn.New(nn.Config{Name: "r", InputDim: 4, Hidden: []int{10}, OutputDim: 1, HiddenAct: nn.ReLU, OutputAct: nn.Identity}, rng)
	fmt.Printf("tanh: %d test(s); relu: %s branch patterns\n",
		coverage.RequiredTests(tanh), coverage.BranchCombinations(relu))
	// Output: tanh: 1 test(s); relu: 1024 branch patterns
}

// ExampleSuite measures sign coverage of a two-test suite on a single
// ReLU neuron.
func ExampleSuite() {
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}}, B: []float64{0}, Act: nn.ReLU},
		{W: [][]float64{{1}}, B: []float64{0}, Act: nn.Identity},
	}}
	s := coverage.NewSuite(net)
	s.Add([]float64{1})  // active phase
	s.Add([]float64{-1}) // inactive phase
	fmt.Printf("sign coverage %.0f%%\n", 100*s.SignCoverage())
	// Output: sign coverage 100%
}
