// Package obs is vnnd's flight recorder: allocation-conscious latency
// histograms and per-request span traces for the serving stack built
// around the verification pipeline. The package has two halves:
//
//   - Histogram: a log2-bucketed, sharded-by-core counter set whose hot
//     path is two atomic adds and zero allocations, cheap enough to sit
//     inside /v1/infer's per-chunk loop (see BenchmarkObserve and the
//     allocation pin in histogram_test.go).
//   - Recorder/Trace/Span: per-request traces with named phases
//     (admission wait, cache lookup, compile, LP tighten, MILP encode,
//     branch-and-bound, monitor build, fleet reconcile/pull) kept in a
//     fixed-size lock-free ring of recent traces plus an always-retained
//     slowest-K-per-route reservoir.
//
// Everything in the package is nil-safe: a nil *Histogram, *Recorder,
// *Trace or *Span no-ops on every method, so call sites thread
// instrumentation unconditionally and the un-instrumented configuration
// pays one predictable nil check.
package obs

import (
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
)

// NumBuckets is the number of finite histogram buckets. Bucket k counts
// observations v with bits.Len64(v) == k, i.e. v in [2^(k-1), 2^k).
// Bucket 0 absorbs v <= 0 and bucket NumBuckets is the overflow bucket
// (+Inf in the Prometheus rendering). 44 finite buckets cover up to
// 2^43-1 nanoseconds ≈ 2.4 hours, far beyond any request timeout.
const NumBuckets = 44

// maxShards bounds the shard fan-out on very wide machines; past this
// point the snapshot cost grows faster than contention shrinks.
const maxShards = 64

// histShard is one core's view of the histogram. The trailing pad keeps
// adjacent shards on distinct cache lines so concurrent observers do
// not false-share.
type histShard struct {
	counts [NumBuckets + 1]atomic.Int64
	sum    atomic.Int64
	_      [64]byte
}

// Histogram is a log2-bucketed counter set sharded to keep concurrent
// observers off each other's cache lines. Observe is two shard-local
// atomic adds — no locks, no allocation (pinned by TestObserveAllocs).
type Histogram struct {
	// Name and Help feed the Prometheus rendering; Scale converts a
	// recorded integer to the exposition unit (e.g. 1e-9 turns
	// nanoseconds into seconds). Scale 0 means 1.
	Name  string
	Help  string
	Scale float64

	shards []histShard
	mask   uint64
}

// NewHistogram returns a histogram with one shard per core (rounded up
// to a power of two, capped at maxShards). name/help/scale seed the
// Prometheus exposition; pass scale 1e-9 for nanosecond observations
// rendered as seconds, 1 (or 0) for dimensionless sizes.
func NewHistogram(name, help string, scale float64) *Histogram {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	shards := 1
	for shards < n {
		shards <<= 1
	}
	return &Histogram{
		Name:   name,
		Help:   help,
		Scale:  scale,
		shards: make([]histShard, shards),
		mask:   uint64(shards - 1),
	}
}

// bucketOf maps an observation to its bucket index: bits.Len64 for
// positive values (so bucket k holds [2^(k-1), 2^k)), clamped into the
// finite range with one overflow bucket at the top.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b > NumBuckets {
		return NumBuckets
	}
	return b
}

// Observe records one value. The shard is picked from the runtime's
// per-P cheap random source (math/rand/v2's top-level functions do not
// allocate and do not contend), which spreads concurrent observers
// across cache lines without needing a core id.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	sh := &h.shards[rand.Uint64()&h.mask]
	sh.counts[bucketOf(v)].Add(1)
	sh.sum.Add(v)
}

// ObserveShard records one value into a caller-chosen shard. Call sites
// with a natural lane identity (the infer serving lanes) use their lane
// index so repeated observations from one goroutine stay on one cache
// line.
func (h *Histogram) ObserveShard(lane int, v int64) {
	if h == nil {
		return
	}
	sh := &h.shards[uint64(lane)&h.mask]
	sh.counts[bucketOf(v)].Add(1)
	sh.sum.Add(v)
}

// HistogramSnapshot is one consistent-enough read of a histogram:
// per-bucket counts (not cumulative; the Prometheus renderer
// accumulates), total count and raw sum. Concurrent observations may
// land between shard reads, so Count can trail a just-returned Observe,
// but every counted observation is in exactly one bucket and Sum only
// includes counted values' shards.
type HistogramSnapshot struct {
	Name    string
	Help    string
	Scale   float64
	Buckets [NumBuckets + 1]int64
	Count   int64
	Sum     int64
}

// BucketUpper returns bucket k's inclusive upper bound in recorded
// units (2^k - 1); the overflow bucket has no finite bound and callers
// render it as +Inf.
func BucketUpper(k int) int64 {
	return int64(1)<<uint(k) - 1
}

// Snapshot folds all shards into one view.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Name: h.Name, Help: h.Help, Scale: h.Scale}
	if s.Scale == 0 {
		s.Scale = 1
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			c := sh.counts[b].Load()
			s.Buckets[b] += c
			s.Count += c
		}
		s.Sum += sh.sum.Load()
	}
	return s
}
