// Package obs is vnnd's flight recorder: allocation-conscious latency
// histograms and per-request span traces for the serving stack built
// around the verification pipeline. The package has two halves:
//
//   - Histogram: a log2-bucketed, sharded-by-core counter set whose hot
//     path is two atomic adds and zero allocations, cheap enough to sit
//     inside /v1/infer's per-chunk loop (see BenchmarkObserve and the
//     allocation pin in histogram_test.go).
//   - Recorder/Trace/Span: per-request traces with named phases
//     (admission wait, cache lookup, compile, LP tighten, MILP encode,
//     branch-and-bound, monitor build, fleet reconcile/pull) kept in a
//     fixed-size lock-free ring of recent traces plus an always-retained
//     slowest-K-per-route reservoir.
//
// Everything in the package is nil-safe: a nil *Histogram, *Recorder,
// *Trace or *Span no-ops on every method, so call sites thread
// instrumentation unconditionally and the un-instrumented configuration
// pays one predictable nil check.
package obs

import (
	"math/bits"
	"math/rand/v2"
	"runtime"
	"sync/atomic"
)

// NumBuckets is the number of finite histogram buckets. Bucket k counts
// observations v with bits.Len64(v) == k, i.e. v in [2^(k-1), 2^k).
// Bucket 0 absorbs v <= 0 and bucket NumBuckets is the overflow bucket
// (+Inf in the Prometheus rendering). 44 finite buckets cover up to
// 2^43-1 nanoseconds ≈ 2.4 hours, far beyond any request timeout.
const NumBuckets = 44

// maxShards bounds the shard fan-out on very wide machines; past this
// point the snapshot cost grows faster than contention shrinks.
const maxShards = 64

// histShard is one core's view of the histogram. The trailing pad keeps
// adjacent shards on distinct cache lines so concurrent observers do
// not false-share.
type histShard struct {
	counts [NumBuckets + 1]atomic.Int64
	sum    atomic.Int64
	_      [64]byte
}

// Histogram is a log2-bucketed counter set sharded to keep concurrent
// observers off each other's cache lines. Observe is two shard-local
// atomic adds — no locks, no allocation (pinned by TestObserveAllocs).
type Histogram struct {
	// Name and Help feed the Prometheus rendering; Scale converts a
	// recorded integer to the exposition unit (e.g. 1e-9 turns
	// nanoseconds into seconds). Scale 0 means 1.
	Name  string
	Help  string
	Scale float64

	shards []histShard
	mask   uint64
}

// NewHistogram returns a histogram with one shard per core (rounded up
// to a power of two, capped at maxShards). name/help/scale seed the
// Prometheus exposition; pass scale 1e-9 for nanosecond observations
// rendered as seconds, 1 (or 0) for dimensionless sizes.
func NewHistogram(name, help string, scale float64) *Histogram {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	shards := 1
	for shards < n {
		shards <<= 1
	}
	return &Histogram{
		Name:   name,
		Help:   help,
		Scale:  scale,
		shards: make([]histShard, shards),
		mask:   uint64(shards - 1),
	}
}

// bucketOf maps an observation to its bucket index: bits.Len64 for
// positive values (so bucket k holds [2^(k-1), 2^k)), clamped into the
// finite range with one overflow bucket at the top.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b > NumBuckets {
		return NumBuckets
	}
	return b
}

// Observe records one value. The shard is picked from the runtime's
// per-P cheap random source (math/rand/v2's top-level functions do not
// allocate and do not contend), which spreads concurrent observers
// across cache lines without needing a core id.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	sh := &h.shards[rand.Uint64()&h.mask]
	sh.counts[bucketOf(v)].Add(1)
	sh.sum.Add(v)
}

// ObserveShard records one value into a caller-chosen shard. Call sites
// with a natural lane identity (the infer serving lanes) use their lane
// index so repeated observations from one goroutine stay on one cache
// line.
func (h *Histogram) ObserveShard(lane int, v int64) {
	if h == nil {
		return
	}
	sh := &h.shards[uint64(lane)&h.mask]
	sh.counts[bucketOf(v)].Add(1)
	sh.sum.Add(v)
}

// HistogramSnapshot is one consistent-enough read of a histogram:
// per-bucket counts (not cumulative; the Prometheus renderer
// accumulates), total count and raw sum. Concurrent observations may
// land between shard reads, so Count can trail a just-returned Observe,
// but every counted observation is in exactly one bucket and Sum only
// includes counted values' shards.
type HistogramSnapshot struct {
	Name    string
	Help    string
	Scale   float64
	Buckets [NumBuckets + 1]int64
	Count   int64
	Sum     int64
}

// BucketUpper returns bucket k's inclusive upper bound in recorded
// units (2^k - 1); the overflow bucket has no finite bound and callers
// render it as +Inf.
func BucketUpper(k int) int64 {
	return int64(1)<<uint(k) - 1
}

// HistogramJSON is the wire form of a snapshot, used by the /metrics
// JSON document and the fleet federation plane. Buckets are the
// NumBuckets+1 per-bucket (non-cumulative) counts; two documents with
// the same name/scale merge by element-wise addition, which is exact —
// log2 bucket boundaries are identical on every node by construction.
type HistogramJSON struct {
	Name string `json:"name,omitempty"`
	// Route labels the request-duration family; empty elsewhere.
	Route   string  `json:"route,omitempty"`
	Scale   float64 `json:"scale,omitempty"`
	Buckets []int64 `json:"buckets,omitempty"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
}

// JSON converts a snapshot to its wire form.
func (s HistogramSnapshot) JSON() HistogramJSON {
	out := HistogramJSON{Name: s.Name, Scale: s.Scale, Count: s.Count, Sum: s.Sum}
	if out.Scale == 0 {
		out.Scale = 1
	}
	out.Buckets = make([]int64, NumBuckets+1)
	copy(out.Buckets, s.Buckets[:])
	return out
}

// Snapshot reconstructs the fixed-array snapshot from the wire form
// (short or missing bucket arrays read as zero), so one Prometheus
// renderer serves both live and federated documents.
func (j HistogramJSON) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Name: j.Name, Scale: j.Scale, Count: j.Count, Sum: j.Sum}
	if s.Scale == 0 {
		s.Scale = 1
	}
	copy(s.Buckets[:], j.Buckets)
	return s
}

// Merge adds o into j bucket-wise. The receiver keeps its name/route;
// scale mismatches are the caller's bug and are resolved in favour of
// the receiver (a fleet runs one binary, so scales agree in practice).
func (j *HistogramJSON) Merge(o HistogramJSON) {
	if len(j.Buckets) < NumBuckets+1 {
		b := make([]int64, NumBuckets+1)
		copy(b, j.Buckets)
		j.Buckets = b
	}
	for i, c := range o.Buckets {
		if i > NumBuckets {
			break
		}
		j.Buckets[i] += c
	}
	j.Count += o.Count
	j.Sum += o.Sum
}

// Delta returns j - earlier, clamped at zero per bucket — the traffic
// between two snapshots of one monotone histogram. vnnctl top feeds the
// result to Quantile for interval p50/p99.
func (j HistogramJSON) Delta(earlier HistogramJSON) HistogramJSON {
	out := HistogramJSON{Name: j.Name, Route: j.Route, Scale: j.Scale}
	out.Buckets = make([]int64, NumBuckets+1)
	for i := range out.Buckets {
		var a, b int64
		if i < len(j.Buckets) {
			a = j.Buckets[i]
		}
		if i < len(earlier.Buckets) {
			b = earlier.Buckets[i]
		}
		if d := a - b; d > 0 {
			out.Buckets[i] = d
			out.Count += d
		}
	}
	if out.Sum = j.Sum - earlier.Sum; out.Sum < 0 {
		out.Sum = 0
	}
	return out
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) in
// exposition units (bucket upper bound × scale): the smallest bucket
// boundary at which the cumulative count reaches q×Count. An empty
// histogram returns 0; observations in the overflow bucket report the
// last finite boundary (the rendering's +Inf has no finite bound).
func (j HistogramJSON) Quantile(q float64) float64 {
	if j.Count <= 0 {
		return 0
	}
	need := int64(q * float64(j.Count))
	if need < 1 {
		need = 1
	}
	scale := j.Scale
	if scale == 0 {
		scale = 1
	}
	var cum int64
	for i, c := range j.Buckets {
		cum += c
		if cum >= need {
			k := i
			if k > NumBuckets-1 {
				k = NumBuckets - 1 // overflow: report the last finite bound
			}
			return float64(BucketUpper(k)) * scale
		}
	}
	return float64(BucketUpper(NumBuckets-1)) * scale
}

// Snapshot folds all shards into one view.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Name: h.Name, Help: h.Help, Scale: h.Scale}
	if s.Scale == 0 {
		s.Scale = 1
	}
	for i := range h.shards {
		sh := &h.shards[i]
		for b := range sh.counts {
			c := sh.counts[b].Load()
			s.Buckets[b] += c
			s.Count += c
		}
		s.Sum += sh.sum.Load()
	}
	return s
}
