package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Tenant-label constants. An absent X-API-Key accounts under
// AnonymousTenant; once the cardinality cap is reached every new key
// accounts under OverflowTenant, so a key-spraying client can never
// grow the label space past cap+1 values.
const (
	AnonymousTenant = "anonymous"
	OverflowTenant  = "other"
)

// DefaultTenantCap is the default cardinality cap for per-tenant
// accounting: the first DefaultTenantCap distinct labels get their own
// series, the rest share OverflowTenant.
const DefaultTenantCap = 32

// TenantSet is the per-tenant accounting plane: a capped registry of
// TenantStats keyed by an API-key-derived label. Admission is
// first-come-first-served up to the cap — the stable policy for a
// metrics plane, since a tenant's series must not appear and disappear
// between scrapes — and everything past the cap aggregates into one
// overflow tenant. Lookup of a known tenant is one RLock'd map read;
// all counting below it is lock-free.
type TenantSet struct {
	limit  int
	scale  float64
	routes []string

	mu      sync.RWMutex
	tenants map[string]*TenantStats
	other   *TenantStats
}

// TenantStats is one tenant's counters. The per-route map is built once
// at tenant creation over the set's fixed route universe and never
// mutated, so route lookups need no lock.
type TenantStats struct {
	label     string
	inputs    atomic.Int64
	flagged   atomic.Int64
	queueWait *Histogram
	routes    map[string]*TenantRoute
}

// TenantRoute is one (tenant, route) series: a request counter and a
// latency histogram.
type TenantRoute struct {
	requests atomic.Int64
	latency  *Histogram
}

// NewTenantSet builds a tenant registry over a fixed route universe.
// limit <= 0 means DefaultTenantCap; scale is the latency/queue-wait
// histogram scale (1e-9 for nanosecond observations rendered as
// seconds). The overflow tenant exists from the start.
func NewTenantSet(limit int, scale float64, routes ...string) *TenantSet {
	if limit <= 0 {
		limit = DefaultTenantCap
	}
	ts := &TenantSet{
		limit:   limit,
		scale:   scale,
		routes:  routes,
		tenants: make(map[string]*TenantStats),
	}
	ts.other = ts.newStats(OverflowTenant)
	return ts
}

func (ts *TenantSet) newStats(label string) *TenantStats {
	t := &TenantStats{
		label:     label,
		queueWait: NewHistogram("vnnd_tenant_queue_wait_seconds", "Admission queue wait per tenant.", ts.scale),
		routes:    make(map[string]*TenantRoute, len(ts.routes)),
	}
	for _, route := range ts.routes {
		t.routes[route] = &TenantRoute{
			latency: NewHistogram("vnnd_tenant_request_duration_seconds", "Request latency per tenant and route.", ts.scale),
		}
	}
	return t
}

// Tenant resolves an API key to its tenant's stats, creating the tenant
// if the cap allows and returning the overflow tenant otherwise. The
// empty key is the anonymous tenant (it counts against the cap like any
// other label, but is only created when anonymous traffic exists).
// Safe for concurrent use; the hot path (known tenant) takes only a
// read lock and allocates nothing.
func (ts *TenantSet) Tenant(key string) *TenantStats {
	if ts == nil {
		return nil
	}
	if key == "" {
		key = AnonymousTenant
	}
	ts.mu.RLock()
	t := ts.tenants[key]
	ts.mu.RUnlock()
	if t != nil {
		return t
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if t = ts.tenants[key]; t != nil {
		return t
	}
	if len(ts.tenants) >= ts.limit {
		return ts.other
	}
	t = ts.newStats(key)
	ts.tenants[key] = t
	return t
}

// Labels returns the current label values including the overflow
// tenant, unordered. Never exceeds cap+1.
func (ts *TenantSet) Labels() []string {
	if ts == nil {
		return nil
	}
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	out := make([]string, 0, len(ts.tenants)+1)
	for label := range ts.tenants {
		out = append(out, label)
	}
	return append(out, OverflowTenant)
}

// Label returns the tenant's label value.
func (t *TenantStats) Label() string {
	if t == nil {
		return ""
	}
	return t.label
}

// Route returns the (tenant, route) series, or nil for a route outside
// the set's universe — which then no-ops, like every obs primitive.
func (t *TenantStats) Route(route string) *TenantRoute {
	if t == nil {
		return nil
	}
	return t.routes[route]
}

// CountInputs accounts a served batch's effort: total inputs and how
// many the monitor flagged. Called before the route request counter,
// preserving the snapshot monotone guarantee.
func (t *TenantStats) CountInputs(inputs, flagged int) {
	if t == nil {
		return
	}
	t.inputs.Add(int64(inputs))
	t.flagged.Add(int64(flagged))
}

// ObserveQueueWait records one admission wait.
func (t *TenantStats) ObserveQueueWait(d time.Duration) {
	if t == nil {
		return
	}
	t.queueWait.Observe(int64(d))
}

// Count records one completed request and its latency.
func (r *TenantRoute) Count(d time.Duration) {
	if r == nil {
		return
	}
	r.latency.Observe(int64(d))
	r.requests.Add(1)
}

// TenantSnapshot is one tenant's wire-form counters, keyed by route
// where applicable. Routes with zero requests are omitted to keep the
// document proportional to actual traffic.
type TenantSnapshot struct {
	Routes    map[string]TenantRouteSnapshot `json:"routes,omitempty"`
	Inputs    int64                          `json:"inputs"`
	Flagged   int64                          `json:"flagged"`
	QueueWait HistogramJSON                  `json:"queue_wait"`
}

// TenantRouteSnapshot is one (tenant, route) series' wire form.
type TenantRouteSnapshot struct {
	Requests int64         `json:"requests"`
	Latency  HistogramJSON `json:"latency"`
}

// Snapshot renders every tenant (overflow included) to wire form.
// Request counters are read before the latency histograms, so a
// concurrent request can skew count-vs-histogram only in the benign
// direction (histogram sees it, counter not yet).
func (ts *TenantSet) Snapshot() map[string]TenantSnapshot {
	if ts == nil {
		return nil
	}
	ts.mu.RLock()
	stats := make([]*TenantStats, 0, len(ts.tenants)+1)
	for _, t := range ts.tenants {
		stats = append(stats, t)
	}
	stats = append(stats, ts.other)
	ts.mu.RUnlock()

	out := make(map[string]TenantSnapshot, len(stats))
	for _, t := range stats {
		out[t.label] = t.snapshot()
	}
	return out
}

func (t *TenantStats) snapshot() TenantSnapshot {
	s := TenantSnapshot{
		Inputs:    t.inputs.Load(),
		Flagged:   t.flagged.Load(),
		QueueWait: t.queueWait.Snapshot().JSON(),
	}
	for route, r := range t.routes {
		requests := r.requests.Load()
		if requests == 0 {
			continue
		}
		if s.Routes == nil {
			s.Routes = make(map[string]TenantRouteSnapshot)
		}
		lat := r.latency.Snapshot().JSON()
		lat.Route = route
		s.Routes[route] = TenantRouteSnapshot{Requests: requests, Latency: lat}
	}
	return s
}

// MergeTenants folds src into dst tenant-wise: counters sum, histograms
// merge bucket-wise, and tenants absent from dst are copied in. Used by
// the fleet federation aggregate. The per-node cardinality cap bounds
// the merged label space at nodes × (cap+1) in the worst case; in
// practice tenants hit every node and the spaces coincide.
func MergeTenants(dst map[string]TenantSnapshot, src map[string]TenantSnapshot) map[string]TenantSnapshot {
	if len(src) == 0 {
		return dst
	}
	if dst == nil {
		dst = make(map[string]TenantSnapshot, len(src))
	}
	for label, s := range src {
		d, ok := dst[label]
		if !ok {
			dst[label] = cloneTenantSnapshot(s)
			continue
		}
		d.Inputs += s.Inputs
		d.Flagged += s.Flagged
		d.QueueWait.Merge(s.QueueWait)
		for route, sr := range s.Routes {
			dr, ok := d.Routes[route]
			if !ok {
				if d.Routes == nil {
					d.Routes = make(map[string]TenantRouteSnapshot)
				}
				lat := HistogramJSON{Name: sr.Latency.Name, Route: route, Scale: sr.Latency.Scale}
				lat.Merge(sr.Latency)
				d.Routes[route] = TenantRouteSnapshot{Requests: sr.Requests, Latency: lat}
				continue
			}
			dr.Requests += sr.Requests
			dr.Latency.Merge(sr.Latency)
			d.Routes[route] = dr
		}
		dst[label] = d
	}
	return dst
}

func cloneTenantSnapshot(s TenantSnapshot) TenantSnapshot {
	out := TenantSnapshot{Inputs: s.Inputs, Flagged: s.Flagged}
	out.QueueWait = HistogramJSON{Name: s.QueueWait.Name, Scale: s.QueueWait.Scale}
	out.QueueWait.Merge(s.QueueWait)
	for route, r := range s.Routes {
		if out.Routes == nil {
			out.Routes = make(map[string]TenantRouteSnapshot)
		}
		lat := HistogramJSON{Name: r.Latency.Name, Route: route, Scale: r.Latency.Scale}
		lat.Merge(r.Latency)
		out.Routes[route] = TenantRouteSnapshot{Requests: r.Requests, Latency: lat}
	}
	return out
}
