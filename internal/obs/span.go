package obs

import (
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span (cache hit, node count,
// peer URL, ...). Values are kept as any and rendered through
// encoding/json; call sites pass ints, bools and short strings.
type Attr struct {
	Key   string
	Value any
}

// Span is one named phase inside a trace. Spans nest: a compile span
// owns tighten and encode children, a solve span owns one child per
// property the branch-and-bound walked. All mutation is guarded by the
// owning trace's mutex — spans are built on request paths whose
// concurrency is bounded by the scheduler, so a per-trace mutex is
// cheap and keeps the ring publication trivially safe.
//
// A nil *Span no-ops on every method, so handlers instrument
// unconditionally and pay one nil check when tracing is off.
type Span struct {
	tr       *Trace
	name     string
	start    time.Time // monotonic (time.Now keeps the monotonic reading)
	dur      time.Duration
	ended    bool
	attrs    []Attr
	children []*Span
}

// Child opens a nested span. The child starts now and must be ended by
// the caller (or it is clamped to the trace end at snapshot time).
func (sp *Span) Child(name string) *Span {
	if sp == nil || sp.tr == nil {
		return nil
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	if sp.tr.finished {
		return nil
	}
	c := &Span{tr: sp.tr, name: name, start: time.Now()}
	sp.children = append(sp.children, c)
	return c
}

// ChildTimed attaches an already-measured phase as a completed child
// ending now, with the given duration. This is how externally
// accumulated phase counters (LP tighten nanos, MILP encode nanos)
// become spans without the phase code knowing about tracing.
func (sp *Span) ChildTimed(name string, d time.Duration) *Span {
	if sp == nil || sp.tr == nil {
		return nil
	}
	if d < 0 {
		d = 0
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	if sp.tr.finished {
		return nil
	}
	c := &Span{tr: sp.tr, name: name, start: time.Now().Add(-d), dur: d, ended: true}
	sp.children = append(sp.children, c)
	return c
}

// SetAttr sets (or overwrites) one annotation.
func (sp *Span) SetAttr(key string, value any) {
	if sp == nil || sp.tr == nil {
		return
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	for i := range sp.attrs {
		if sp.attrs[i].Key == key {
			sp.attrs[i].Value = value
			return
		}
	}
	sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
}

// End closes the span. Ending twice keeps the first duration.
func (sp *Span) End() {
	if sp == nil || sp.tr == nil {
		return
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	if !sp.ended {
		sp.ended = true
		sp.dur = time.Since(sp.start)
	}
}

// Duration returns the span's duration so far (final once ended).
func (sp *Span) Duration() time.Duration {
	if sp == nil || sp.tr == nil {
		return 0
	}
	sp.tr.mu.Lock()
	defer sp.tr.mu.Unlock()
	if sp.ended {
		return sp.dur
	}
	return time.Since(sp.start)
}

// Trace is one request's span tree, rooted at the route span. Traces
// are created by Recorder.Start, mutated through their spans, and
// published into the recorder's ring by Finish.
type Trace struct {
	rec       *Recorder
	id        string
	route     string
	wallStart time.Time
	// tp is this segment's W3C identity: TraceID is shared by every
	// segment of a distributed trace (adopted from an inbound
	// traceparent, minted otherwise), SpanID identifies this segment as
	// a parent for calls it propagates to. parent is the remote caller's
	// span id (zero when this segment is the trace root).
	tp     TraceParent
	parent [8]byte

	mu       sync.Mutex
	root     *Span
	finished bool
	dur      time.Duration
}

// ID returns the trace id (caller-chosen or auto-assigned).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// HexTraceID returns the 32-hex fleet-wide trace id shared by every
// segment of a distributed trace.
func (t *Trace) HexTraceID() string {
	if t == nil {
		return ""
	}
	return t.tp.HexTraceID()
}

// Propagation returns the traceparent to inject on outbound calls made
// under this trace, so the callee's segment joins the same trace. A nil
// trace returns an invalid (zero) TraceParent; callers skip injection.
func (t *Trace) Propagation() TraceParent {
	if t == nil {
		return TraceParent{}
	}
	return t.tp
}

// Root returns the root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span, freezes the trace and publishes it to the
// recorder's ring and slowest-per-route reservoir. Finishing twice is
// a no-op.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.finished {
		t.mu.Unlock()
		return
	}
	t.finished = true
	if !t.root.ended {
		t.root.ended = true
		t.root.dur = time.Since(t.root.start)
	}
	t.dur = t.root.dur
	t.mu.Unlock()
	t.rec.publish(t)
}

// Duration returns the trace's wall duration (final once finished).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished {
		return t.dur
	}
	return time.Since(t.root.start)
}

// RecorderOptions configures a Recorder. The zero value is usable.
type RecorderOptions struct {
	// Ring is the capacity of the recent-traces ring (rounded up to a
	// power of two; default 256).
	Ring int
	// SlowestPerRoute is how many slowest traces are retained per route
	// regardless of ring churn (default 8).
	SlowestPerRoute int
	// SlowThreshold, when positive, fires SlowLog for any finished trace
	// at least this slow.
	SlowThreshold time.Duration
	// SlowLog receives one line per slow trace; wired to the server's
	// logger by cmd/vnnd's -slow-log flag.
	SlowLog func(format string, args ...any)
	// Node is the stable node id stamped on every rendered trace, so a
	// fleet-merged span tree attributes each segment to its origin.
	Node string
}

// Recorder owns the completed-trace ring and the slowest-K reservoir.
// The ring is lock-free: Finish claims a slot with an atomic counter
// and stores the *Trace with an atomic pointer, so a burst of finishing
// requests never serialises on a recorder lock (the reservoir does take
// a short mutex, amortised by its small K).
type Recorder struct {
	ring []atomic.Pointer[Trace]
	mask uint64
	seq  atomic.Uint64
	ids  atomic.Uint64

	slowThreshold time.Duration
	slowLog       func(format string, args ...any)
	node          string

	mu       sync.Mutex
	slowestK int
	slowest  map[string][]*Trace // per route, sorted slowest-first
}

// NewRecorder builds a recorder.
func NewRecorder(opts RecorderOptions) *Recorder {
	ring := opts.Ring
	if ring <= 0 {
		ring = 256
	}
	n := 1
	for n < ring {
		n <<= 1
	}
	k := opts.SlowestPerRoute
	if k <= 0 {
		k = 8
	}
	return &Recorder{
		ring:          make([]atomic.Pointer[Trace], n),
		mask:          uint64(n - 1),
		slowThreshold: opts.SlowThreshold,
		slowLog:       opts.SlowLog,
		node:          opts.Node,
		slowestK:      k,
		slowest:       make(map[string][]*Trace),
	}
}

// Start opens a trace for route with the given id (auto-assigned when
// empty). The returned trace's root span is already running. A nil
// recorder returns a nil trace, whose spans in turn no-op.
func (r *Recorder) Start(route, id string) *Trace {
	return r.StartRemote(route, id, TraceParent{})
}

// StartRemote opens a trace segment that joins the distributed trace
// identified by an inbound traceparent: the caller's trace id is
// adopted (so fleet-wide lookup by the shared id finds this segment)
// and the caller's span id is recorded as the segment's remote parent.
// An invalid parent degrades to Start — a fresh root trace.
func (r *Recorder) StartRemote(route, id string, parent TraceParent) *Trace {
	if r == nil {
		return nil
	}
	if id == "" {
		id = fmt.Sprintf("t%08d", r.ids.Add(1))
	}
	t := &Trace{rec: r, id: id, route: route, wallStart: time.Now()}
	if parent.Valid() {
		t.tp = TraceParent{TraceID: parent.TraceID, SpanID: mintSpanID(), Flags: parent.Flags | 1}
		t.parent = parent.SpanID
	} else {
		t.tp = mintTraceParent()
	}
	t.root = &Span{tr: t, name: route, start: t.wallStart}
	return t
}

// publish files a finished trace into the ring and reservoir.
func (r *Recorder) publish(t *Trace) {
	if r == nil {
		return
	}
	slot := (r.seq.Add(1) - 1) & r.mask
	r.ring[slot].Store(t)

	r.mu.Lock()
	list := r.slowest[t.route]
	if len(list) < r.slowestK {
		list = append(list, t)
		sort.Slice(list, func(i, j int) bool { return list[i].dur > list[j].dur })
		r.slowest[t.route] = list
	} else if t.dur > list[len(list)-1].dur {
		list[len(list)-1] = t
		sort.Slice(list, func(i, j int) bool { return list[i].dur > list[j].dur })
	}
	r.mu.Unlock()

	if r.slowThreshold > 0 && t.dur >= r.slowThreshold && r.slowLog != nil {
		r.slowLog("slow request route=%s id=%s duration=%s", t.route, t.id, t.dur)
	}
}

// TraceSummary is the /debug/traces list entry.
type TraceSummary struct {
	ID         string  `json:"id"`
	TraceID    string  `json:"trace_id"`
	Route      string  `json:"route"`
	Start      string  `json:"start"`
	DurationMS float64 `json:"duration_ms"`
}

// Recent returns summaries of the ring's traces, newest first.
func (r *Recorder) Recent() []TraceSummary {
	if r == nil {
		return nil
	}
	var out []TraceSummary
	n := uint64(len(r.ring))
	head := r.seq.Load()
	for i := uint64(0); i < n; i++ {
		t := r.ring[(head-1-i)&r.mask].Load()
		if t == nil {
			continue
		}
		out = append(out, t.summary())
	}
	return out
}

// Slowest returns the retained slowest traces per route, slowest first
// within a route, routes sorted by name.
func (r *Recorder) Slowest() map[string][]TraceSummary {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]TraceSummary, len(r.slowest))
	for route, list := range r.slowest {
		s := make([]TraceSummary, len(list))
		for i, t := range list {
			s[i] = t.summary()
		}
		out[route] = s
	}
	return out
}

// Get finds a trace by local id — or by 32-hex distributed trace id —
// in the ring or the reservoir.
func (r *Recorder) Get(id string) *Trace {
	if r == nil {
		return nil
	}
	for i := range r.ring {
		if t := r.ring[i].Load(); t != nil && t.matches(id) {
			return t
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, list := range r.slowest {
		for _, t := range list {
			if t.matches(id) {
				return t
			}
		}
	}
	return nil
}

// Segments returns every retained trace that belongs to the given
// distributed trace (matched by local id or 32-hex trace id), newest
// publication first. One propagated trace id can own several local
// segments — a fleet round serves one export per pulled entry — so the
// by-id endpoint renders them all.
func (r *Recorder) Segments(id string) []*Trace {
	if r == nil {
		return nil
	}
	seen := make(map[*Trace]bool)
	var out []*Trace
	head := r.seq.Load()
	for i := uint64(0); i < uint64(len(r.ring)); i++ {
		if t := r.ring[(head-1-i)&r.mask].Load(); t != nil && t.matches(id) && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, list := range r.slowest {
		for _, t := range list {
			if t.matches(id) && !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	return out
}

// matches reports whether id names this trace locally (job id) or
// fleet-wide (hex trace id). Both fields are immutable after Start.
func (t *Trace) matches(id string) bool {
	return t.id == id || t.tp.HexTraceID() == id
}

func (t *Trace) summary() TraceSummary {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TraceSummary{
		ID:         t.id,
		TraceID:    t.tp.HexTraceID(),
		Route:      t.route,
		Start:      t.wallStart.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(t.dur) / 1e6,
	}
}

// TraceJSON is the /debug/traces/{id} document: the full span tree of
// one segment, plus — on the primary segment of a distributed trace —
// every other segment (local or fetched through from peers) that shares
// its trace id.
type TraceJSON struct {
	ID      string `json:"id"`
	TraceID string `json:"trace_id"`
	// Node is the stable id of the node that recorded this segment
	// (RecorderOptions.Node; empty on unconfigured recorders).
	Node string `json:"node,omitempty"`
	// ParentSpan is the remote caller's span id when this segment joined
	// a propagated trace; empty on root segments.
	ParentSpan string    `json:"parent_span,omitempty"`
	Route      string    `json:"route"`
	Start      string    `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Root       *SpanJSON `json:"root"`
	// SpanID is this segment's own span id — the value remote segments
	// name in ParentSpan.
	SpanID string `json:"span_id,omitempty"`
	// Segments holds the other segments of the same distributed trace,
	// filled by the serving layer (never recursively).
	Segments []TraceJSON `json:"segments,omitempty"`
}

// SpanJSON is one rendered span. StartUS is the offset from the trace
// start in microseconds; durations are microseconds too (phase times
// down at nanosecond resolution stay legible as fractions).
type SpanJSON struct {
	Name       string         `json:"name"`
	StartUS    float64        `json:"start_us"`
	DurationUS float64        `json:"duration_us"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	Children   []*SpanJSON    `json:"children,omitempty"`
}

// JSON renders the trace's span tree. Unended spans (a still-running
// trace, or a span the handler forgot to End) are clamped to the trace
// end so durations stay internally consistent.
func (t *Trace) JSON() TraceJSON {
	if t == nil {
		return TraceJSON{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.root.start.Add(t.dur)
	if !t.finished {
		end = time.Now()
	}
	out := TraceJSON{
		ID:         t.id,
		TraceID:    t.tp.HexTraceID(),
		Route:      t.route,
		Start:      t.wallStart.UTC().Format(time.RFC3339Nano),
		DurationMS: float64(end.Sub(t.root.start)) / 1e6,
		Root:       renderSpan(t.root, t.root.start, end),
		SpanID:     hexSpanID(t.tp.SpanID),
	}
	if t.rec != nil {
		out.Node = t.rec.node
	}
	if t.parent != [8]byte{} {
		out.ParentSpan = hexSpanID(t.parent)
	}
	return out
}

func hexSpanID(id [8]byte) string {
	return hex.EncodeToString(id[:])
}

func renderSpan(sp *Span, traceStart, traceEnd time.Time) *SpanJSON {
	d := sp.dur
	if !sp.ended {
		d = traceEnd.Sub(sp.start)
		if d < 0 {
			d = 0
		}
	}
	out := &SpanJSON{
		Name:       sp.name,
		StartUS:    float64(sp.start.Sub(traceStart)) / 1e3,
		DurationUS: float64(d) / 1e3,
	}
	if len(sp.attrs) > 0 {
		out.Attrs = make(map[string]any, len(sp.attrs))
		for _, a := range sp.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range sp.children {
		out.Children = append(out.Children, renderSpan(c, traceStart, traceEnd))
	}
	return out
}
