package obs

import (
	"math"
	"runtime/metrics"
	"time"
)

// RuntimeStats is the process-health block of the /metrics snapshot:
// scheduler pressure (goroutines), memory pressure (heap in use) and
// GC tail latency, all read from runtime/metrics so a scrape never
// stops the world the way runtime.ReadMemStats would.
type RuntimeStats struct {
	Goroutines     int64   `json:"goroutines"`
	HeapInuseBytes int64   `json:"heap_inuse_bytes"`
	GCPauseP99MS   float64 `json:"gc_pause_p99_ms"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
}

// runtimeSamples is the fixed sample set ReadRuntime reads. Heap in use
// is objects + unused span space, the runtime/metrics decomposition of
// MemStats.HeapInuse. A name a runtime version does not export reads as
// KindBad and contributes zero — gauges degrade, nothing fails.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/heap/unused:bytes",
	"/sched/pauses/total/gc:seconds",
}

// ReadRuntime samples the runtime gauges. start anchors the uptime.
func ReadRuntime(start time.Time) RuntimeStats {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}
	metrics.Read(samples)

	out := RuntimeStats{UptimeSeconds: time.Since(start).Seconds()}
	if samples[0].Value.Kind() == metrics.KindUint64 {
		out.Goroutines = int64(samples[0].Value.Uint64())
	}
	for _, s := range samples[1:3] {
		if s.Value.Kind() == metrics.KindUint64 {
			out.HeapInuseBytes += int64(s.Value.Uint64())
		}
	}
	if samples[3].Value.Kind() == metrics.KindFloat64Histogram {
		if h := samples[3].Value.Float64Histogram(); h != nil {
			out.GCPauseP99MS = histQuantile(h, 0.99) * 1e3
		}
	}
	return out
}

// histQuantile returns an upper bound for the q-quantile of a
// runtime/metrics histogram: the upper boundary of the bucket where the
// cumulative count crosses q×total. The runtime's +Inf tail falls back
// to the last finite boundary.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	need := uint64(q * float64(total))
	if need < 1 {
		need = 1
	}
	var cum uint64
	lastFinite := 0.0
	for i, c := range h.Counts {
		cum += c
		// Bucket i spans Buckets[i]..Buckets[i+1].
		upper := h.Buckets[i+1]
		if !math.IsInf(upper, 1) {
			lastFinite = upper
		}
		if cum >= need {
			if math.IsInf(upper, 1) {
				return lastFinite
			}
			return upper
		}
	}
	return lastFinite
}
