package obs

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tp := mintTraceParent()
	if !tp.Valid() {
		t.Fatal("minted traceparent invalid")
	}
	s := tp.String()
	if len(s) != 55 || !strings.HasPrefix(s, "00-") {
		t.Fatalf("rendered header %q malformed", s)
	}
	got, ok := ParseTraceparent(s)
	if !ok || got != tp {
		t.Fatalf("round trip: %q -> %+v ok=%v, want %+v", s, got, ok, tp)
	}
	if got.HexTraceID() != s[3:35] {
		t.Fatalf("HexTraceID %q != header field %q", got.HexTraceID(), s[3:35])
	}
}

func TestTraceparentParseRejects(t *testing.T) {
	valid := "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	if _, ok := ParseTraceparent(valid); !ok {
		t.Fatalf("canonical example rejected: %q", valid)
	}
	// Future versions with trailing fields are accepted per spec.
	if _, ok := ParseTraceparent("cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"); !ok {
		t.Fatal("future-version header with -suffix rejected")
	}
	for _, bad := range []string{
		"",
		"00",
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",      // no flags
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",   // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",   // zero span id
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // forbidden version
		"00-0af7651916cd43dd8448eb211c80319X-b7ad6b7169203331-01",   // bad hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01xx", // junk suffix
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

// TestStartRemoteJoinsTrace pins segment semantics: a segment started
// from a propagated traceparent shares the trace id, records the
// caller's span id as its parent, and is findable by the hex trace id
// through Get and Segments.
func TestStartRemoteJoinsTrace(t *testing.T) {
	recA := NewRecorder(RecorderOptions{Ring: 8, Node: "a"})
	recB := NewRecorder(RecorderOptions{Ring: 8, Node: "b"})

	trA := recA.Start("/v1/verify", "q00000001")
	outbound := trA.Propagation()
	if !outbound.Valid() {
		t.Fatal("local trace propagates an invalid traceparent")
	}

	// Simulate the peer hop through the wire format.
	parsed, ok := ParseTraceparent(outbound.String())
	if !ok {
		t.Fatal("propagated header failed to parse")
	}
	trB := recB.StartRemote("fleet.export", "", parsed)
	if trB.HexTraceID() != trA.HexTraceID() {
		t.Fatalf("segment trace id %q != origin %q", trB.HexTraceID(), trA.HexTraceID())
	}
	trB.Finish()
	trA.Finish()

	doc := trB.JSON()
	if doc.Node != "b" || doc.TraceID != trA.HexTraceID() {
		t.Fatalf("segment doc node/trace_id = %q/%q", doc.Node, doc.TraceID)
	}
	if doc.ParentSpan == "" || doc.ParentSpan != trA.JSON().SpanID {
		t.Fatalf("segment parent span %q, want origin span id %q", doc.ParentSpan, trA.JSON().SpanID)
	}
	if trA.JSON().ParentSpan != "" {
		t.Fatal("root segment must have no parent span")
	}

	// Both lookup paths work: job id locally, hex trace id fleet-wide.
	if got := recA.Get("q00000001"); got != trA {
		t.Fatal("lookup by job id failed")
	}
	if got := recA.Get(trA.HexTraceID()); got != trA {
		t.Fatal("lookup by hex trace id failed")
	}
	segs := recB.Segments(trA.HexTraceID())
	if len(segs) != 1 || segs[0] != trB {
		t.Fatalf("Segments returned %d traces, want the one segment", len(segs))
	}

	// An invalid parent degrades to a fresh root trace.
	fresh := recB.StartRemote("/v1/infer", "", TraceParent{})
	if fresh.HexTraceID() == trA.HexTraceID() || fresh.JSON().ParentSpan != "" {
		t.Fatal("invalid parent must mint a fresh root trace")
	}

	// Nil safety for the new surface.
	var nilTrace *Trace
	if nilTrace.Propagation().Valid() || nilTrace.HexTraceID() != "" {
		t.Fatal("nil trace must propagate an invalid traceparent")
	}
	var nilRec *Recorder
	if nilRec.StartRemote("r", "", parsed) != nil || nilRec.Segments("x") != nil {
		t.Fatal("nil recorder must no-op")
	}
}
