package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceTree(t *testing.T) {
	r := NewRecorder(RecorderOptions{Ring: 8})
	tr := r.Start("/v1/verify", "q00000001")
	if tr.ID() != "q00000001" {
		t.Fatalf("id = %q", tr.ID())
	}
	root := tr.Root()
	q := root.Child("queue")
	time.Sleep(time.Millisecond)
	q.End()
	c := root.Child("cache")
	c.SetAttr("hit", false)
	comp := c.Child("compile")
	comp.ChildTimed("tighten", 500*time.Microsecond)
	comp.ChildTimed("encode", 200*time.Microsecond)
	comp.End()
	c.End()
	s := root.Child("solve")
	s.SetAttr("nodes", 17)
	time.Sleep(time.Millisecond)
	s.End()
	tr.Finish()

	j := tr.JSON()
	if j.ID != "q00000001" || j.Route != "/v1/verify" {
		t.Fatalf("header: %+v", j)
	}
	if len(j.Root.Children) != 3 {
		t.Fatalf("root children = %d, want 3", len(j.Root.Children))
	}
	names := []string{j.Root.Children[0].Name, j.Root.Children[1].Name, j.Root.Children[2].Name}
	if names[0] != "queue" || names[1] != "cache" || names[2] != "solve" {
		t.Fatalf("child order: %v", names)
	}
	// Durations internally consistent: children sum <= root.
	var sum float64
	for _, c := range j.Root.Children {
		sum += c.DurationUS
	}
	if sum > j.Root.DurationUS {
		t.Fatalf("children sum %.1fus > root %.1fus", sum, j.Root.DurationUS)
	}
	cache := j.Root.Children[1]
	if cache.Attrs["hit"] != false {
		t.Fatalf("cache attrs: %v", cache.Attrs)
	}
	if len(cache.Children) != 1 || cache.Children[0].Name != "compile" {
		t.Fatalf("cache children: %+v", cache.Children)
	}
	compile := cache.Children[0]
	if len(compile.Children) != 2 {
		t.Fatalf("compile children = %d", len(compile.Children))
	}
	if compile.Children[0].DurationUS != 500 || compile.Children[1].DurationUS != 200 {
		t.Fatalf("timed children: %+v", compile.Children)
	}
	if j.Root.Children[2].Attrs["nodes"] != 17 {
		t.Fatalf("solve attrs: %v", j.Root.Children[2].Attrs)
	}
}

func TestUnendedSpanClamped(t *testing.T) {
	r := NewRecorder(RecorderOptions{})
	tr := r.Start("/x", "")
	sp := tr.Root().Child("leaked") // never ended
	_ = sp
	time.Sleep(time.Millisecond)
	tr.Finish()
	j := tr.JSON()
	if len(j.Root.Children) != 1 {
		t.Fatalf("children = %d", len(j.Root.Children))
	}
	leaked := j.Root.Children[0]
	if leaked.DurationUS > j.Root.DurationUS {
		t.Fatalf("unended child %.1fus exceeds trace %.1fus", leaked.DurationUS, j.Root.DurationUS)
	}
}

func TestRingAndGet(t *testing.T) {
	r := NewRecorder(RecorderOptions{Ring: 4, SlowestPerRoute: 2})
	var ids []string
	for i := 0; i < 6; i++ {
		tr := r.Start("/v1/infer", "")
		ids = append(ids, tr.ID())
		tr.Finish()
	}
	recent := r.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent = %d, want 4 (ring capacity)", len(recent))
	}
	// Newest first.
	if recent[0].ID != ids[5] {
		t.Fatalf("recent[0] = %s, want %s", recent[0].ID, ids[5])
	}
	// Oldest two fell out of the ring...
	if got := r.Get(ids[0]); got != nil {
		// ...unless the reservoir kept them; either way Get must agree
		// with what the listing shows. ids[0] was among the first slow
		// entries so it may legitimately be retained.
		t.Logf("ids[0] retained by reservoir")
	}
	if got := r.Get(ids[5]); got == nil {
		t.Fatalf("Get(%s) = nil, want trace", ids[5])
	}
}

func TestSlowestReservoir(t *testing.T) {
	r := NewRecorder(RecorderOptions{Ring: 4, SlowestPerRoute: 2})
	// Three traces with distinct durations; only the slowest two stay.
	var traces []*Trace
	for i := 0; i < 3; i++ {
		tr := r.Start("/v1/verify", fmt.Sprintf("s%d", i))
		traces = append(traces, tr)
	}
	// Finish with controlled durations by ending in order with sleeps.
	time.Sleep(2 * time.Millisecond)
	traces[0].Finish() // ~2ms
	time.Sleep(2 * time.Millisecond)
	traces[1].Finish() // ~4ms
	time.Sleep(2 * time.Millisecond)
	traces[2].Finish() // ~6ms

	slow := r.Slowest()["/v1/verify"]
	if len(slow) != 2 {
		t.Fatalf("slowest = %d, want 2", len(slow))
	}
	if slow[0].ID != "s2" || slow[1].ID != "s1" {
		t.Fatalf("slowest order: %s, %s (want s2, s1)", slow[0].ID, slow[1].ID)
	}
	// The fast trace was evicted from the reservoir but may live in the
	// ring; the slow ones must be Gettable regardless of ring churn.
	for i := 0; i < 16; i++ {
		tr := r.Start("/v1/infer", "")
		tr.Finish()
	}
	if r.Get("s2") == nil {
		t.Fatal("slowest trace evicted by ring churn")
	}
}

func TestSlowLog(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	r := NewRecorder(RecorderOptions{
		SlowThreshold: time.Millisecond,
		SlowLog: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	fast := r.Start("/v1/infer", "fast")
	fast.Finish()
	slow := r.Start("/v1/verify", "slowone")
	time.Sleep(2 * time.Millisecond)
	slow.Finish()
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("slow log lines = %d, want 1: %v", len(lines), lines)
	}
	if want := "route=/v1/verify id=slowone"; !strings.Contains(lines[0], want) {
		t.Fatalf("slow log %q missing %q", lines[0], want)
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	tr := r.Start("/x", "id")
	if tr != nil {
		t.Fatal("nil recorder must return nil trace")
	}
	tr.Finish()
	if tr.ID() != "" || tr.Duration() != 0 {
		t.Fatal("nil trace accessors")
	}
	sp := tr.Root()
	sp.End()
	sp.SetAttr("k", 1)
	c := sp.Child("child")
	c.ChildTimed("t", time.Second)
	c.End()
	if c.Duration() != 0 {
		t.Fatal("nil span duration")
	}
	if r.Recent() != nil || r.Slowest() != nil || r.Get("id") != nil {
		t.Fatal("nil recorder listings")
	}
	if j := tr.JSON(); j.Root != nil {
		t.Fatal("nil trace JSON")
	}
}

// TestRecorderConcurrent exercises concurrent trace production against
// concurrent listing/Get — the scrape-vs-traffic pattern the server
// sees — under the race detector.
func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(RecorderOptions{Ring: 16, SlowestPerRoute: 4})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := r.Start(fmt.Sprintf("/route/%d", g%2), "")
				sp := tr.Root().Child("phase")
				sp.SetAttr("i", i)
				sp.End()
				tr.Finish()
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			for _, s := range r.Recent() {
				if tr := r.Get(s.ID); tr != nil {
					_ = tr.JSON()
				}
			}
			_ = r.Slowest()
		}
	}()
	wg.Wait()
	if len(r.Recent()) == 0 {
		t.Fatal("no traces recorded")
	}
}
