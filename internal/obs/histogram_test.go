package obs

import (
	"math"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1023, 10}, {1024, 11},
		{int64(1) << 42, NumBuckets - 1},
		{int64(1)<<43 - 1, NumBuckets - 1},
		{int64(1) << 43, NumBuckets},
		{math.MaxInt64, NumBuckets},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every finite bucket's upper bound must be strictly below the next.
	for k := 0; k < NumBuckets; k++ {
		if bucketOf(BucketUpper(k)) > k {
			t.Errorf("BucketUpper(%d)=%d lands in bucket %d", k, BucketUpper(k), bucketOf(BucketUpper(k)))
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram("test_seconds", "test", 1e-9)
	values := []int64{0, 1, 3, 100, 1 << 20, 1 << 50}
	var wantSum int64
	for _, v := range values {
		h.Observe(v)
		wantSum += v
	}
	s := h.Snapshot()
	if s.Count != int64(len(values)) {
		t.Fatalf("Count = %d, want %d", s.Count, len(values))
	}
	if s.Sum != wantSum {
		t.Fatalf("Sum = %d, want %d", s.Sum, wantSum)
	}
	var total int64
	for _, c := range s.Buckets {
		total += c
	}
	if total != s.Count {
		t.Fatalf("bucket total %d != Count %d", total, s.Count)
	}
	if s.Buckets[NumBuckets] != 1 {
		t.Fatalf("overflow bucket = %d, want 1 (for 2^50)", s.Buckets[NumBuckets])
	}
	if s.Buckets[0] != 1 {
		t.Fatalf("bucket 0 = %d, want 1 (for the zero observation)", s.Buckets[0])
	}
}

func TestObserveShard(t *testing.T) {
	h := NewHistogram("lanes", "per-lane", 1)
	for lane := 0; lane < 10; lane++ {
		h.ObserveShard(lane, int64(lane+1))
	}
	s := h.Snapshot()
	if s.Count != 10 {
		t.Fatalf("Count = %d, want 10", s.Count)
	}
	if s.Sum != 55 {
		t.Fatalf("Sum = %d, want 55", s.Sum)
	}
}

func TestNilHistogram(t *testing.T) {
	var h *Histogram
	h.Observe(42)        // must not panic
	h.ObserveShard(3, 7) // must not panic
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatalf("nil snapshot Count = %d", s.Count)
	}
}

// TestObserveAllocs pins the hot path at zero allocations — the
// contract that lets histograms sit inside /v1/infer's chunk loop.
func TestObserveAllocs(t *testing.T) {
	h := NewHistogram("alloc_pin", "", 1e-9)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(12345) }); n != 0 {
		t.Fatalf("Observe allocates: %.1f allocs/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.ObserveShard(2, 12345) }); n != 0 {
		t.Fatalf("ObserveShard allocates: %.1f allocs/op", n)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram("race", "", 1)
	done := make(chan struct{})
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				h.Observe(int64(i))
				h.ObserveShard(g, int64(i))
			}
		}(g)
	}
	// Concurrent snapshots while observers run (race coverage).
	for i := 0; i < 100; i++ {
		_ = h.Snapshot()
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	s := h.Snapshot()
	if want := int64(goroutines * per * 2); s.Count != want {
		t.Fatalf("Count = %d, want %d", s.Count, want)
	}
}

// BenchmarkObserve is the committed evidence that recording a latency
// costs two atomic adds: it is gated in BENCH_infer.json alongside the
// kernel ladder (0 allocs/op, single-digit nanoseconds).
func BenchmarkObserve(b *testing.B) {
	h := NewHistogram("bench_seconds", "", 1e-9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkObserveParallel(b *testing.B) {
	h := NewHistogram("bench_par_seconds", "", 1e-9)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(1500)
		}
	})
}
