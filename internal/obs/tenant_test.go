package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTenantCardinalityCap is the key-spraying defence: 10× the cap in
// distinct API keys hammered concurrently must produce exactly cap+1
// label values — the first cap distinct keys plus the overflow tenant —
// and every request must be accounted somewhere. Run under -race in CI.
func TestTenantCardinalityCap(t *testing.T) {
	const cap = 8
	ts := NewTenantSet(cap, 1e-9, "/v1/infer", "/v1/verify")

	const writers = 4
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10*cap; i++ {
				tn := ts.Tenant(fmt.Sprintf("key-%d", i))
				tn.CountInputs(2, 1)
				tn.ObserveQueueWait(time.Microsecond)
				tn.Route("/v1/infer").Count(time.Millisecond)
			}
		}(w)
	}
	wg.Wait()

	labels := ts.Labels()
	if len(labels) != cap+1 {
		t.Fatalf("label space = %d values %v, want cap+1 = %d", len(labels), labels, cap+1)
	}
	seen := map[string]bool{}
	for _, l := range labels {
		seen[l] = true
	}
	if !seen[OverflowTenant] {
		t.Fatalf("labels %v missing overflow tenant %q", labels, OverflowTenant)
	}

	snap := ts.Snapshot()
	if len(snap) != cap+1 {
		t.Fatalf("snapshot has %d tenants, want %d", len(snap), cap+1)
	}
	var requests, inputs, flagged int64
	for label, s := range snap {
		r := s.Routes["/v1/infer"]
		requests += r.Requests
		inputs += s.Inputs
		flagged += s.Flagged
		if r.Requests != r.Latency.Count {
			t.Fatalf("tenant %q: %d requests but latency count %d", label, r.Requests, r.Latency.Count)
		}
		if s.QueueWait.Count != r.Requests {
			t.Fatalf("tenant %q: queue-wait count %d != requests %d", label, s.QueueWait.Count, r.Requests)
		}
		if _, ok := s.Routes["/v1/verify"]; ok {
			t.Fatalf("tenant %q grew a zero-traffic route series", label)
		}
	}
	total := int64(writers * 10 * cap)
	if requests != total || inputs != 2*total || flagged != total {
		t.Fatalf("accounted requests/inputs/flagged = %d/%d/%d, want %d/%d/%d",
			requests, inputs, flagged, total, 2*total, total)
	}
	// The overflow tenant absorbed everything past the cap.
	if other := snap[OverflowTenant]; other.Routes["/v1/infer"].Requests != int64(writers*(10*cap-cap)) {
		t.Fatalf("overflow requests = %d, want %d", other.Routes["/v1/infer"].Requests, writers*(10*cap-cap))
	}
}

// TestTenantAnonymousAndNil covers the empty-key mapping and the
// nil-safety contract shared with the rest of the package.
func TestTenantAnonymousAndNil(t *testing.T) {
	ts := NewTenantSet(0, 1e-9, "/v1/verify")
	anon := ts.Tenant("")
	if anon.Label() != AnonymousTenant {
		t.Fatalf("empty key label = %q, want %q", anon.Label(), AnonymousTenant)
	}
	if ts.Tenant("") != anon {
		t.Fatal("anonymous tenant not interned")
	}
	if r := anon.Route("/v1/unknown"); r != nil {
		t.Fatalf("unknown route = %v, want nil", r)
	}
	anon.Route("/v1/unknown").Count(time.Second) // must no-op

	var nilSet *TenantSet
	if nilSet.Tenant("x") != nil || nilSet.Snapshot() != nil || nilSet.Labels() != nil {
		t.Fatal("nil TenantSet must no-op")
	}
	var nilStats *TenantStats
	nilStats.CountInputs(1, 1)
	nilStats.ObserveQueueWait(time.Second)
	nilStats.Route("/v1/verify").Count(time.Second)
}

// TestTenantLookupAllocs pins the hot path: resolving a known tenant
// and counting a request allocates nothing, the contract that keeps
// per-tenant accounting compatible with /v1/infer's 0 allocs/op gate.
func TestTenantLookupAllocs(t *testing.T) {
	ts := NewTenantSet(4, 1e-9, "/v1/infer")
	ts.Tenant("warm")
	if n := testing.AllocsPerRun(1000, func() {
		tn := ts.Tenant("warm")
		tn.CountInputs(2, 0)
		tn.Route("/v1/infer").Count(time.Millisecond)
	}); n != 0 {
		t.Fatalf("warm tenant accounting allocates %v/op, want 0", n)
	}
	// Overflow path after the cap is equally allocation-free.
	for i := 0; i < 8; i++ {
		ts.Tenant(fmt.Sprintf("fill-%d", i))
	}
	if n := testing.AllocsPerRun(1000, func() {
		ts.Tenant("sprayed-key").CountInputs(1, 0)
	}); n != 0 {
		t.Fatalf("overflow tenant accounting allocates %v/op, want 0", n)
	}
}

// TestMergeTenants pins the federation fold: counters sum, histograms
// merge bucket-wise, disjoint tenants union.
func TestMergeTenants(t *testing.T) {
	a := NewTenantSet(4, 1, "/v1/infer")
	b := NewTenantSet(4, 1, "/v1/infer")
	a.Tenant("shared").Route("/v1/infer").Count(100)
	a.Tenant("shared").CountInputs(3, 1)
	a.Tenant("only-a").Route("/v1/infer").Count(200)
	b.Tenant("shared").Route("/v1/infer").Count(400)
	b.Tenant("shared").CountInputs(5, 2)

	merged := MergeTenants(nil, a.Snapshot())
	merged = MergeTenants(merged, b.Snapshot())

	shared := merged["shared"]
	if shared.Inputs != 8 || shared.Flagged != 3 {
		t.Fatalf("shared inputs/flagged = %d/%d, want 8/3", shared.Inputs, shared.Flagged)
	}
	route := shared.Routes["/v1/infer"]
	if route.Requests != 2 || route.Latency.Count != 2 {
		t.Fatalf("shared requests/latency count = %d/%d, want 2/2", route.Requests, route.Latency.Count)
	}
	if route.Latency.Sum != 500 {
		t.Fatalf("shared latency sum = %d, want 500", route.Latency.Sum)
	}
	// Bucket-wise: 100 and 400 land in distinct log2 buckets.
	if route.Latency.Buckets[bucketOf(100)] != 1 || route.Latency.Buckets[bucketOf(400)] != 1 {
		t.Fatalf("merged buckets wrong: %v", route.Latency.Buckets)
	}
	if merged["only-a"].Routes["/v1/infer"].Requests != 1 {
		t.Fatal("only-a lost in merge")
	}
}
