package obs

import (
	"testing"
	"time"
)

// TestHistogramJSONMerge pins the federation arithmetic: bucket-wise
// element sums, count/sum totals, and the snapshot round trip back to
// the fixed-array form the Prometheus renderer consumes.
func TestHistogramJSONMerge(t *testing.T) {
	a := NewHistogram("h", "", 1e-9)
	b := NewHistogram("h", "", 1e-9)
	for _, v := range []int64{3, 100, 5000} {
		a.Observe(v)
	}
	for _, v := range []int64{100, 1 << 50} { // second lands in overflow
		b.Observe(v)
	}

	ja, jb := a.Snapshot().JSON(), b.Snapshot().JSON()
	ja.Merge(jb)
	if ja.Count != 5 {
		t.Fatalf("merged count = %d, want 5", ja.Count)
	}
	if want := int64(3+100+5000+100) + 1<<50; ja.Sum != want {
		t.Fatalf("merged sum = %d, want %d", ja.Sum, want)
	}
	for i := range ja.Buckets {
		var want int64
		for _, v := range []int64{3, 100, 5000, 100, 1 << 50} {
			if bucketOf(v) == i {
				want++
			}
		}
		if ja.Buckets[i] != want {
			t.Fatalf("bucket %d = %d, want %d", i, ja.Buckets[i], want)
		}
	}
	if ja.Buckets[NumBuckets] != 1 {
		t.Fatalf("overflow bucket = %d, want 1", ja.Buckets[NumBuckets])
	}

	snap := ja.Snapshot()
	if snap.Count != ja.Count || snap.Sum != ja.Sum || snap.Buckets[bucketOf(100)] != 2 {
		t.Fatalf("round trip lost data: %+v", snap)
	}
	// Short wire arrays (forward compat) read as zero-padded.
	short := HistogramJSON{Buckets: []int64{1, 2}, Count: 3}
	if s := short.Snapshot(); s.Buckets[0] != 1 || s.Buckets[1] != 2 || s.Buckets[2] != 0 {
		t.Fatalf("short bucket array mis-read: %v", s.Buckets[:4])
	}
}

func TestHistogramJSONDeltaQuantile(t *testing.T) {
	h := NewHistogram("lat", "", 1)
	h.Observe(10)
	earlier := h.Snapshot().JSON()
	for i := 0; i < 99; i++ {
		h.Observe(100)
	}
	h.Observe(100000)
	delta := h.Snapshot().JSON().Delta(earlier)
	if delta.Count != 100 {
		t.Fatalf("delta count = %d, want 100", delta.Count)
	}
	if delta.Buckets[bucketOf(10)] != 0 {
		t.Fatal("delta kept pre-window traffic")
	}
	// p50 of 99×100 + 1×100000: bucket upper bound of bucketOf(100)=7 → 127.
	if got := delta.Quantile(0.50); got != 127 {
		t.Fatalf("p50 = %v, want 127", got)
	}
	// p100 hits the large observation's bucket upper bound.
	if got := delta.Quantile(1.0); got != float64(BucketUpper(bucketOf(100000))) {
		t.Fatalf("p100 = %v, want %v", got, BucketUpper(bucketOf(100000)))
	}
	if (HistogramJSON{}).Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
	// Scale converts to exposition units.
	scaled := delta
	scaled.Scale = 1e-9
	if got := scaled.Quantile(0.50); got != 127e-9 {
		t.Fatalf("scaled p50 = %v, want 127e-9", got)
	}
}

func TestReadRuntime(t *testing.T) {
	start := time.Now().Add(-2 * time.Second)
	rs := ReadRuntime(start)
	if rs.Goroutines < 1 {
		t.Fatalf("goroutines = %d, want >= 1", rs.Goroutines)
	}
	if rs.HeapInuseBytes <= 0 {
		t.Fatalf("heap in use = %d, want > 0", rs.HeapInuseBytes)
	}
	if rs.UptimeSeconds < 2 {
		t.Fatalf("uptime = %v, want >= 2s", rs.UptimeSeconds)
	}
	if rs.GCPauseP99MS < 0 {
		t.Fatalf("gc pause p99 = %v, want >= 0", rs.GCPauseP99MS)
	}
}
