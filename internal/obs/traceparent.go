package obs

import (
	"encoding/hex"
	"math/rand/v2"
)

// TraceParent is a parsed W3C trace-context traceparent header
// (version 00): a 16-byte trace id shared by every segment of a
// distributed trace, the 8-byte span id of the propagating segment, and
// the trace flags (bit 0 = sampled). The zero value is invalid, which
// is what every nil-safe accessor returns.
type TraceParent struct {
	TraceID [16]byte
	SpanID  [8]byte
	Flags   byte
}

// Valid reports whether the trace id and span id are both non-zero, the
// W3C validity rule.
func (tp TraceParent) Valid() bool {
	return tp.TraceID != [16]byte{} && tp.SpanID != [8]byte{}
}

// String renders the header value: 00-<32 hex>-<16 hex>-<2 hex>.
func (tp TraceParent) String() string {
	buf := make([]byte, 0, 55)
	buf = append(buf, '0', '0', '-')
	buf = hex.AppendEncode(buf, tp.TraceID[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, tp.SpanID[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, []byte{tp.Flags})
	return string(buf)
}

// HexTraceID returns the 32-hex-char trace id, the fleet-wide key a
// trace's segments share.
func (tp TraceParent) HexTraceID() string {
	return hex.EncodeToString(tp.TraceID[:])
}

// ParseTraceparent parses a traceparent header value. Unknown versions
// are accepted if the four version-00 fields parse (per the spec's
// forward-compatibility rule, trailing fields are ignored); malformed
// or all-zero ids are rejected.
func ParseTraceparent(s string) (TraceParent, bool) {
	// version(2) - traceid(32) - spanid(16) - flags(2)
	if len(s) < 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceParent{}, false
	}
	if s[0] == 'f' && s[1] == 'f' { // version 0xff is forbidden
		return TraceParent{}, false
	}
	if len(s) > 55 && s[55] != '-' { // longer forms must continue with -suffix
		return TraceParent{}, false
	}
	var tp TraceParent
	if _, err := hex.Decode(tp.TraceID[:], []byte(s[3:35])); err != nil {
		return TraceParent{}, false
	}
	if _, err := hex.Decode(tp.SpanID[:], []byte(s[36:52])); err != nil {
		return TraceParent{}, false
	}
	flags, err := hex.DecodeString(s[53:55])
	if err != nil {
		return TraceParent{}, false
	}
	tp.Flags = flags[0]
	if !tp.Valid() {
		return TraceParent{}, false
	}
	return tp, true
}

// mintTraceParent makes a fresh sampled trace identity from the
// runtime's cheap random source. Uniqueness needs no coordination:
// 2^128 ids across a fleet collide with negligible probability.
func mintTraceParent() TraceParent {
	var tp TraceParent
	putUint64(tp.TraceID[0:8], rand.Uint64())
	putUint64(tp.TraceID[8:16], rand.Uint64())
	putUint64(tp.SpanID[:], rand.Uint64())
	tp.Flags = 1     // sampled
	if !tp.Valid() { // astronomically unlikely zero draw
		tp.TraceID[0], tp.SpanID[0] = 1, 1
	}
	return tp
}

// mintSpanID draws a fresh non-zero span id.
func mintSpanID() [8]byte {
	var id [8]byte
	putUint64(id[:], rand.Uint64())
	if id == [8]byte{} {
		id[0] = 1
	}
	return id
}

func putUint64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (56 - 8*i))
	}
}
