// Package gmm implements the Gaussian-mixture action distribution produced
// by the motion predictor. Following the case study, each mixture component
// is a 2-D Gaussian with diagonal covariance over (lateral velocity,
// longitudinal acceleration): the lateral part indicates whether a lane
// switch is suggested, the longitudinal part whether to accelerate.
//
// The package also defines the raw-output layout used by the network head
// (see Decode): per component five raw values
//
//	[weight logit, μ_lat, μ_long, log σ_lat, log σ_long]
//
// so a K-component head is a 5K-wide linear output layer. The component
// means μ_lat occupy raw indices 5k+1 — plain linear outputs, which is what
// makes the safety property MILP-encodable (see package verify).
package gmm

import (
	"fmt"
	"math"
	"math/rand"
)

// Dims of the action space.
const (
	// LatVel indexes lateral velocity (m/s, positive = towards the left lane).
	LatVel = 0
	// LongAcc indexes longitudinal acceleration (m/s², positive = accelerate).
	LongAcc = 1
)

// RawPerComponent is the number of raw network outputs per mixture component.
const RawPerComponent = 5

// Raw output offsets within one component's block.
const (
	RawLogit = iota
	RawMuLat
	RawMuLong
	RawLogSigLat
	RawLogSigLong
)

// MuLatIndex returns the raw-output index of component k's lateral-velocity
// mean; these are the outputs the verifier bounds.
func MuLatIndex(k int) int { return k*RawPerComponent + RawMuLat }

// MuLongIndex returns the raw-output index of component k's longitudinal-
// acceleration mean (used by the front-gap safety property).
func MuLongIndex(k int) int { return k*RawPerComponent + RawMuLong }

// Component is one diagonal 2-D Gaussian with a mixture weight.
type Component struct {
	Weight float64    // mixture weight, in [0,1]; weights sum to 1
	Mean   [2]float64 // (lateral velocity, longitudinal acceleration)
	Std    [2]float64 // standard deviations, strictly positive
}

// Mixture is a normalized Gaussian mixture over the 2-D action space.
type Mixture struct {
	Components []Component
}

// LogSigMin and LogSigMax bound log-σ raw outputs so Decode never produces
// degenerate or overflowing deviations. Training code needs the same range
// to zero gradients where the clamp saturates.
const (
	LogSigMin = -6.0
	LogSigMax = 3.0
)

// Decode interprets a raw network output vector as a K-component mixture.
// It panics if len(raw) is not a multiple of RawPerComponent or empty.
func Decode(raw []float64) Mixture {
	if len(raw) == 0 || len(raw)%RawPerComponent != 0 {
		panic(fmt.Sprintf("gmm: Decode raw length %d not a positive multiple of %d", len(raw), RawPerComponent))
	}
	k := len(raw) / RawPerComponent
	mix := Mixture{Components: make([]Component, k)}

	// Softmax over logits with max-shift for stability.
	maxLogit := math.Inf(-1)
	for i := 0; i < k; i++ {
		if l := raw[i*RawPerComponent+RawLogit]; l > maxLogit {
			maxLogit = l
		}
	}
	var z float64
	for i := 0; i < k; i++ {
		z += math.Exp(raw[i*RawPerComponent+RawLogit] - maxLogit)
	}
	for i := 0; i < k; i++ {
		base := i * RawPerComponent
		c := &mix.Components[i]
		c.Weight = math.Exp(raw[base+RawLogit]-maxLogit) / z
		c.Mean[LatVel] = raw[base+RawMuLat]
		c.Mean[LongAcc] = raw[base+RawMuLong]
		c.Std[LatVel] = math.Exp(clamp(raw[base+RawLogSigLat], LogSigMin, LogSigMax))
		c.Std[LongAcc] = math.Exp(clamp(raw[base+RawLogSigLong], LogSigMin, LogSigMax))
	}
	return mix
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Mean returns the mixture mean Σ wᵢ μᵢ.
func (m Mixture) Mean() [2]float64 {
	var out [2]float64
	for _, c := range m.Components {
		out[0] += c.Weight * c.Mean[0]
		out[1] += c.Weight * c.Mean[1]
	}
	return out
}

// MaxComponentMean returns max over components of Mean[dim]; this is the
// sound upper bound on the mixture mean used by the verifier (the mixture
// mean is a convex combination of component means).
func (m Mixture) MaxComponentMean(dim int) float64 {
	out := math.Inf(-1)
	for _, c := range m.Components {
		if c.Mean[dim] > out {
			out = c.Mean[dim]
		}
	}
	return out
}

// Dominant returns the component with the largest weight.
// It panics on an empty mixture.
func (m Mixture) Dominant() Component {
	if len(m.Components) == 0 {
		panic("gmm: Dominant on empty mixture")
	}
	best := 0
	for i, c := range m.Components {
		if c.Weight > m.Components[best].Weight {
			best = i
		}
	}
	return m.Components[best]
}

// PDF evaluates the mixture density at the action point.
func (m Mixture) PDF(pt [2]float64) float64 {
	var p float64
	for _, c := range m.Components {
		p += c.Weight * gauss(pt[0], c.Mean[0], c.Std[0]) * gauss(pt[1], c.Mean[1], c.Std[1])
	}
	return p
}

// LogPDF evaluates log density via log-sum-exp for numerical stability.
func (m Mixture) LogPDF(pt [2]float64) float64 {
	maxTerm := math.Inf(-1)
	terms := make([]float64, len(m.Components))
	for i, c := range m.Components {
		t := math.Log(math.Max(c.Weight, 1e-300)) +
			logGauss(pt[0], c.Mean[0], c.Std[0]) +
			logGauss(pt[1], c.Mean[1], c.Std[1])
		terms[i] = t
		if t > maxTerm {
			maxTerm = t
		}
	}
	if math.IsInf(maxTerm, -1) {
		return maxTerm
	}
	var s float64
	for _, t := range terms {
		s += math.Exp(t - maxTerm)
	}
	return maxTerm + math.Log(s)
}

// Sample draws one action from the mixture using rng.
func (m Mixture) Sample(rng *rand.Rand) [2]float64 {
	u := rng.Float64()
	var acc float64
	comp := m.Components[len(m.Components)-1]
	for _, c := range m.Components {
		acc += c.Weight
		if u <= acc {
			comp = c
			break
		}
	}
	return [2]float64{
		comp.Mean[0] + rng.NormFloat64()*comp.Std[0],
		comp.Mean[1] + rng.NormFloat64()*comp.Std[1],
	}
}

// Validate checks normalization and positivity.
func (m Mixture) Validate() error {
	if len(m.Components) == 0 {
		return fmt.Errorf("gmm: empty mixture")
	}
	var sum float64
	for i, c := range m.Components {
		if c.Weight < -1e-9 {
			return fmt.Errorf("gmm: component %d has negative weight %g", i, c.Weight)
		}
		if c.Std[0] <= 0 || c.Std[1] <= 0 {
			return fmt.Errorf("gmm: component %d has non-positive std %v", i, c.Std)
		}
		sum += c.Weight
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("gmm: weights sum to %g, want 1", sum)
	}
	return nil
}

func gauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return math.Exp(-0.5*d*d) / (sigma * math.Sqrt(2*math.Pi))
}

func logGauss(x, mu, sigma float64) float64 {
	d := (x - mu) / sigma
	return -0.5*d*d - math.Log(sigma) - 0.5*math.Log(2*math.Pi)
}

// Grid renders the mixture density over a lat×long grid as characters with
// increasing density (" .:-=+*#%@"); row 0 is the largest longitudinal
// acceleration. It is the textual stand-in for the right half of the
// paper's Fig. 1.
func (m Mixture) Grid(latMin, latMax, longMin, longMax float64, w, h int) []string {
	const shades = " .:-=+*#%@"
	vals := make([][]float64, h)
	peak := 0.0
	for r := 0; r < h; r++ {
		vals[r] = make([]float64, w)
		longV := longMax - (longMax-longMin)*float64(r)/float64(h-1)
		for c := 0; c < w; c++ {
			latV := latMin + (latMax-latMin)*float64(c)/float64(w-1)
			p := m.PDF([2]float64{latV, longV})
			vals[r][c] = p
			if p > peak {
				peak = p
			}
		}
	}
	rows := make([]string, h)
	for r := 0; r < h; r++ {
		line := make([]byte, w)
		for c := 0; c < w; c++ {
			idx := 0
			if peak > 0 {
				idx = int(vals[r][c] / peak * float64(len(shades)-1))
			}
			line[c] = shades[idx]
		}
		rows[r] = string(line)
	}
	return rows
}
