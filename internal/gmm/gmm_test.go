package gmm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func rawFor(comps []Component) []float64 {
	// Builds a raw vector whose Decode equals comps (weights via log).
	raw := make([]float64, len(comps)*RawPerComponent)
	for i, c := range comps {
		base := i * RawPerComponent
		raw[base+RawLogit] = math.Log(c.Weight)
		raw[base+RawMuLat] = c.Mean[LatVel]
		raw[base+RawMuLong] = c.Mean[LongAcc]
		raw[base+RawLogSigLat] = math.Log(c.Std[LatVel])
		raw[base+RawLogSigLong] = math.Log(c.Std[LongAcc])
	}
	return raw
}

func TestDecodeWeightsNormalized(t *testing.T) {
	raw := rawFor([]Component{
		{Weight: 0.5, Mean: [2]float64{1, 0}, Std: [2]float64{1, 1}},
		{Weight: 0.25, Mean: [2]float64{-1, 2}, Std: [2]float64{0.5, 2}},
		{Weight: 0.25, Mean: [2]float64{0, 0}, Std: [2]float64{1, 1}},
	})
	mix := Decode(raw)
	if err := mix.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(mix.Components[0].Weight-0.5) > 1e-9 {
		t.Fatalf("weight = %g, want 0.5", mix.Components[0].Weight)
	}
	if mix.Components[1].Std[LatVel] != 0.5 {
		t.Fatalf("std = %g, want 0.5", mix.Components[1].Std[LatVel])
	}
}

func TestDecodeClampsSigma(t *testing.T) {
	raw := make([]float64, RawPerComponent)
	raw[RawLogSigLat] = 100  // would overflow exp
	raw[RawLogSigLong] = -99 // would vanish
	mix := Decode(raw)
	if mix.Components[0].Std[LatVel] > math.Exp(LogSigMax)+1e-9 {
		t.Fatalf("sigma not clamped above: %g", mix.Components[0].Std[LatVel])
	}
	if mix.Components[0].Std[LongAcc] < math.Exp(LogSigMin)-1e-12 {
		t.Fatalf("sigma not clamped below: %g", mix.Components[0].Std[LongAcc])
	}
}

func TestDecodePanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Decode(make([]float64, 7))
}

func TestMeanIsConvexCombination(t *testing.T) {
	mix := Mixture{Components: []Component{
		{Weight: 0.75, Mean: [2]float64{2, 0}, Std: [2]float64{1, 1}},
		{Weight: 0.25, Mean: [2]float64{-2, 4}, Std: [2]float64{1, 1}},
	}}
	mean := mix.Mean()
	if math.Abs(mean[LatVel]-1) > 1e-12 || math.Abs(mean[LongAcc]-1) > 1e-12 {
		t.Fatalf("Mean = %v, want (1,1)", mean)
	}
}

func TestMaxComponentMeanBoundsMixtureMean(t *testing.T) {
	f := func(ws [3]float64, mus [3]float64) bool {
		comps := make([]Component, 3)
		var sum float64
		for i := range comps {
			w := math.Abs(ws[i]) + 0.01
			if w > 1e6 {
				w = 1
			}
			mu := mus[i]
			if math.IsNaN(mu) || math.Abs(mu) > 1e6 {
				mu = float64(i)
			}
			comps[i] = Component{Weight: w, Mean: [2]float64{mu, 0}, Std: [2]float64{1, 1}}
			sum += w
		}
		for i := range comps {
			comps[i].Weight /= sum
		}
		mix := Mixture{Components: comps}
		return mix.Mean()[LatVel] <= mix.MaxComponentMean(LatVel)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDominant(t *testing.T) {
	mix := Mixture{Components: []Component{
		{Weight: 0.2, Mean: [2]float64{0, 0}, Std: [2]float64{1, 1}},
		{Weight: 0.8, Mean: [2]float64{5, 5}, Std: [2]float64{1, 1}},
	}}
	if d := mix.Dominant(); d.Mean[0] != 5 {
		t.Fatalf("Dominant = %v", d)
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	mix := Mixture{Components: []Component{
		{Weight: 0.6, Mean: [2]float64{0.5, -0.5}, Std: [2]float64{0.4, 0.7}},
		{Weight: 0.4, Mean: [2]float64{-1, 1}, Std: [2]float64{0.6, 0.3}},
	}}
	// Midpoint rule over a wide box.
	const n = 120
	lo, hi := -5.0, 5.0
	h := (hi - lo) / n
	var integral float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			x := lo + (float64(i)+0.5)*h
			y := lo + (float64(j)+0.5)*h
			integral += mix.PDF([2]float64{x, y}) * h * h
		}
	}
	if math.Abs(integral-1) > 0.01 {
		t.Fatalf("PDF integral = %g, want ~1", integral)
	}
}

func TestLogPDFMatchesPDF(t *testing.T) {
	mix := Mixture{Components: []Component{
		{Weight: 0.5, Mean: [2]float64{1, 1}, Std: [2]float64{0.5, 0.5}},
		{Weight: 0.5, Mean: [2]float64{-1, -1}, Std: [2]float64{0.5, 0.5}},
	}}
	for _, pt := range [][2]float64{{0, 0}, {1, 1}, {-2, 3}} {
		if diff := math.Abs(math.Log(mix.PDF(pt)) - mix.LogPDF(pt)); diff > 1e-9 {
			t.Fatalf("LogPDF mismatch at %v: %g", pt, diff)
		}
	}
}

func TestSampleStatistics(t *testing.T) {
	mix := Mixture{Components: []Component{
		{Weight: 1, Mean: [2]float64{2, -1}, Std: [2]float64{0.1, 0.1}},
	}}
	rng := rand.New(rand.NewSource(5))
	var sumLat, sumLong float64
	const n = 5000
	for i := 0; i < n; i++ {
		s := mix.Sample(rng)
		sumLat += s[0]
		sumLong += s[1]
	}
	if math.Abs(sumLat/n-2) > 0.02 || math.Abs(sumLong/n+1) > 0.02 {
		t.Fatalf("sample means (%g, %g) far from (2, -1)", sumLat/n, sumLong/n)
	}
}

func TestValidateRejectsBadMixtures(t *testing.T) {
	bad := []Mixture{
		{},
		{Components: []Component{{Weight: 0.5, Std: [2]float64{1, 1}}}},                                        // not normalized
		{Components: []Component{{Weight: 1, Std: [2]float64{0, 1}}}},                                          // zero sigma
		{Components: []Component{{Weight: -0.5, Std: [2]float64{1, 1}}, {Weight: 1.5, Std: [2]float64{1, 1}}}}, // negative weight
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Fatalf("case %d: Validate accepted bad mixture", i)
		}
	}
}

func TestGridShapeAndPeak(t *testing.T) {
	mix := Mixture{Components: []Component{
		{Weight: 1, Mean: [2]float64{0, 0}, Std: [2]float64{0.5, 0.5}},
	}}
	rows := mix.Grid(-2, 2, -2, 2, 21, 11)
	if len(rows) != 11 || len(rows[0]) != 21 {
		t.Fatalf("grid %dx%d", len(rows), len(rows[0]))
	}
	// Peak density is at the center cell.
	if rows[5][10] != '@' {
		t.Fatalf("center cell %q, want '@'", rows[5][10])
	}
}

func TestMuLatIndex(t *testing.T) {
	if MuLatIndex(0) != 1 || MuLatIndex(2) != 11 {
		t.Fatalf("MuLatIndex: %d %d", MuLatIndex(0), MuLatIndex(2))
	}
}
