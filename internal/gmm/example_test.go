package gmm_test

import (
	"fmt"
	"math"

	"repro/internal/gmm"
)

// ExampleDecode decodes a raw two-component network head and reads off the
// mixture-mean action.
func ExampleDecode() {
	raw := make([]float64, 2*gmm.RawPerComponent)
	// Component 0: weight logit 0, lateral mean +1.0.
	raw[gmm.MuLatIndex(0)] = 1.0
	// Component 1: weight logit 0, lateral mean -1.0.
	raw[gmm.MuLatIndex(1)] = -1.0
	mix := gmm.Decode(raw)
	mean := mix.Mean()
	fmt.Printf("components=%d mean_lat=%.1f max_component_lat=%.1f\n",
		len(mix.Components), math.Abs(mean[gmm.LatVel]), mix.MaxComponentMean(gmm.LatVel))
	// Output: components=2 mean_lat=0.0 max_component_lat=1.0
}
