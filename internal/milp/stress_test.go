package milp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// TestEqualityPartition: pick exactly k of n binaries (equality row) with
// max value — cross-checked against sorting.
func TestEqualityPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n, k := 12, 5
	m := lp.NewModel()
	values := make([]float64, n)
	ints := make([]int, n)
	terms := make([]lp.Term, n)
	for i := 0; i < n; i++ {
		values[i] = rng.Float64() * 10
		ints[i] = m.AddVariable(0, 1, "")
		m.SetObjective(ints[i], values[i])
		terms[i] = lp.Term{Var: ints[i], Coeff: 1}
	}
	m.SetMaximize(true)
	m.AddConstraint(terms, lp.EQ, float64(k), "pick-k")
	res, err := Solve(Problem{Model: m, Integers: ints}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	sorted := append([]float64(nil), values...)
	for i := range sorted { // selection of the k largest by simple passes
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] > sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	var want float64
	for i := 0; i < k; i++ {
		want += sorted[i]
	}
	if math.Abs(res.Objective-want) > 1e-6 {
		t.Fatalf("objective %g, want %g (top-%d sum)", res.Objective, want, k)
	}
	// Exactly k binaries set.
	count := 0.0
	for _, v := range ints {
		count += res.X[v]
	}
	if math.Abs(count-float64(k)) > 1e-6 {
		t.Fatalf("selected %g binaries, want %d", count, k)
	}
}

// TestBigMDisjunction exercises the exact constraint pattern the verifier
// emits: y = relu(a) via big-M with indicator d, maximized over a box.
func TestBigMDisjunction(t *testing.T) {
	// a in [-2, 3]; y = max(0, a); maximize y - 0.1a => best at a=3: 2.7.
	m := lp.NewModel()
	a := m.AddVariable(-2, 3, "a")
	y := m.AddVariable(0, 3, "y")
	d := m.AddVariable(0, 1, "d")
	m.SetObjective(y, 1)
	m.SetObjective(a, -0.1)
	m.SetMaximize(true)
	// y >= a ; y <= a + 2(1-d) ; y <= 3d
	m.AddConstraint([]lp.Term{{Var: a, Coeff: 1}, {Var: y, Coeff: -1}}, lp.LE, 0, "y>=a")
	m.AddConstraint([]lp.Term{{Var: a, Coeff: 1}, {Var: y, Coeff: -1}, {Var: d, Coeff: -2}}, lp.GE, -2, "y<=a+2(1-d)")
	m.AddConstraint([]lp.Term{{Var: y, Coeff: 1}, {Var: d, Coeff: -3}}, lp.LE, 0, "y<=3d")
	res, err := Solve(Problem{Model: m, Integers: []int{d}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-2.7) > 1e-6 {
		t.Fatalf("status %v obj %g, want optimal 2.7", res.Status, res.Objective)
	}
	// The relu relation must hold at the solution.
	if math.Abs(res.X[y]-math.Max(0, res.X[a])) > 1e-6 {
		t.Fatalf("relu broken: y=%g a=%g", res.X[y], res.X[a])
	}
}

// TestManyBinariesBoundedDepth solves a 24-binary problem whose LP
// relaxation is integral at most nodes — should finish in few nodes.
func TestManyBinariesBoundedDepth(t *testing.T) {
	m := lp.NewModel()
	var ints []int
	for i := 0; i < 24; i++ {
		v := m.AddVariable(0, 1, "")
		m.SetObjective(v, float64(i+1))
		ints = append(ints, v)
	}
	m.SetMaximize(true) // unconstrained: optimum all ones, relaxation integral
	res, err := Solve(Problem{Model: m, Integers: ints}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || res.Nodes != 1 {
		t.Fatalf("status %v nodes %d; integral relaxation should close at the root", res.Status, res.Nodes)
	}
	if math.Abs(res.Objective-300) > 1e-6 { // 1+2+...+24
		t.Fatalf("objective %g, want 300", res.Objective)
	}
}

// TestGapReporting verifies Result.Gap semantics.
func TestGapReporting(t *testing.T) {
	r := &Result{}
	if !math.IsInf(r.Gap(), 1) {
		t.Fatal("gap without incumbent should be +Inf")
	}
	r.HasSolution = true
	r.Objective = 10
	r.Bound = 11
	if math.Abs(r.Gap()-0.1) > 1e-12 {
		t.Fatalf("gap = %g, want 0.1", r.Gap())
	}
}

// TestRandomMixedProblemsAgainstEnumeration cross-checks mixed binary/
// continuous problems against brute-force over binary assignments with an
// LP solve per assignment.
func TestRandomMixedProblemsAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		nBin, nCont := 2+rng.Intn(4), 2+rng.Intn(3)
		m := lp.NewModel()
		var ints []int
		for i := 0; i < nBin; i++ {
			v := m.AddVariable(0, 1, "")
			m.SetObjective(v, rng.Float64()*4-2)
			ints = append(ints, v)
		}
		for i := 0; i < nCont; i++ {
			v := m.AddVariable(-1, 1, "")
			m.SetObjective(v, rng.Float64()*4-2)
		}
		m.SetMaximize(true)
		// A couple of random LE rows feasible at the origin.
		total := nBin + nCont
		for r := 0; r < 2; r++ {
			terms := make([]lp.Term, 0, total)
			for v := 0; v < total; v++ {
				if rng.Float64() < 0.7 {
					terms = append(terms, lp.Term{Var: v, Coeff: rng.Float64()*2 - 1})
				}
			}
			if len(terms) > 0 {
				m.AddConstraint(terms, lp.LE, rng.Float64()+0.1, "")
			}
		}
		res, err := Solve(Problem{Model: m, Integers: ints}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Optimal {
			continue // random rows may cut off all binary corners; fine
		}
		// Enumerate binary assignments, solve the continuous LP for each.
		best := math.Inf(-1)
		for mask := 0; mask < 1<<nBin; mask++ {
			fixed := m.Clone()
			for i, v := range ints {
				val := float64((mask >> i) & 1)
				fixed.SetBounds(v, val, val)
			}
			sol, err := lp.Solve(fixed, lp.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if sol.Status == lp.Optimal && sol.Objective > best {
				best = sol.Objective
			}
		}
		if math.Abs(res.Objective-best) > 1e-5 {
			t.Fatalf("trial %d: milp %g vs enumeration %g", trial, res.Objective, best)
		}
	}
}
