// Package milp solves mixed-integer linear programs by branch-and-bound on
// the LP relaxation from package lp.
//
// The solver targets the network-verification MILPs in this repository:
// every integer variable is a 0/1 ReLU phase indicator, so branching is
// binary and big-M bound fixing (setting a binary's bounds to [0,0] or
// [1,1]) is the only node operation. Nodes are explored best-first by
// relaxation bound so the incumbent/bound gap shrinks monotonically.
//
// The engine is parallel and warm-started: Options.Workers workers each
// own a model clone and a persistent lp.Solver, nodes are pulled from a
// shared best-first heap in synchronized batches, and every child node
// re-solves from its parent's saved simplex basis instead of from scratch.
// Batch-synchronous scheduling keeps the search deterministic for a fixed
// worker count: node counts, objectives and incumbents are reproducible
// run to run, and Workers=1 is exactly the classical sequential search.
package milp

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/lp"
)

// Status reports the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	// Optimal means the incumbent is proven optimal within the gap tolerance.
	Optimal Status = iota
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// Unbounded means the relaxation (and thus the MILP) is unbounded.
	Unbounded
	// TimeLimit means the deadline elapsed; the incumbent (if any) and the
	// best bound are still reported.
	TimeLimit
	// NodeLimit means the node budget was exhausted first.
	NodeLimit
)

// String returns a readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case TimeLimit:
		return "time-limit"
	case NodeLimit:
		return "node-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Options tune the branch-and-bound search.
type Options struct {
	// TimeLimit bounds wall-clock time; 0 means no limit.
	TimeLimit time.Duration
	// MaxNodes bounds explored nodes; 0 means no limit.
	MaxNodes int
	// IntTol is the integrality tolerance; 0 means 1e-6.
	IntTol float64
	// Gap is the relative optimality gap at which search stops; 0 means
	// prove optimality exactly (up to tolerances).
	Gap float64
	// Workers is the number of node solvers running concurrently:
	// 0 means GOMAXPROCS, 1 is the sequential deterministic path. For any
	// fixed value the search itself is deterministic (batch-synchronous
	// scheduling), so results are reproducible run to run.
	Workers int
	// LP forwards options to every relaxation solve.
	LP lp.Options
}

// Result is the outcome of a MILP solve.
type Result struct {
	Status    Status
	Objective float64   // incumbent objective (model direction); valid if HasSolution
	X         []float64 // incumbent point; valid if HasSolution
	Bound     float64   // best proven bound on the optimum (model direction)
	// HasSolution reports whether any integer-feasible point was found.
	HasSolution bool
	Nodes       int           // branch-and-bound nodes explored
	LPPivots    int           // total simplex iterations across all nodes
	Elapsed     time.Duration // wall-clock solve time
}

// Gap returns the relative incumbent/bound gap, or +Inf without an incumbent.
func (r *Result) Gap() float64 {
	if !r.HasSolution {
		return math.Inf(1)
	}
	denom := math.Max(1e-9, math.Abs(r.Objective))
	return math.Abs(r.Bound-r.Objective) / denom
}

// Problem couples an LP model with a set of integer-constrained variables.
type Problem struct {
	Model *lp.Model
	// Integers lists variable indices that must take integral values.
	// For this repository they are always 0/1 indicators.
	Integers []int
}

// maxBasisQueue bounds how many open nodes may hold basis snapshots:
// past this queue size, children are pushed without one (their solve
// warm-starts from the worker's own basis or falls back to a cold solve).
const maxBasisQueue = 8192

// node is a branch-and-bound node: a set of tightened bounds, the
// relaxation bound inherited from its parent (best-first key), and the
// parent's optimal simplex basis for warm-starting the node's own solve.
type node struct {
	fixes []fix // deduplicated: at most one entry per variable
	bound float64
	depth int
	seq   int64     // creation order; deterministic heap tie-break
	basis *lp.Basis // parent's optimal basis (nil at the root)
}

type fix struct {
	v            int
	lower, upper float64
}

type nodeQueue []*node

func (q nodeQueue) Len() int { return len(q) }
func (q nodeQueue) Less(i, j int) bool {
	if q[i].bound != q[j].bound {
		return q[i].bound < q[j].bound
	}
	return q[i].seq < q[j].seq
}
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// worker owns one model clone and one persistent warm-started solver.
type worker struct {
	model   *lp.Model
	solver  *lp.Solver
	applied []fix // fixes currently applied to model, for cheap undo
}

// nodeResult carries one solved relaxation back to the coordinator.
type nodeResult struct {
	sol   *lp.Solution
	basis *lp.Basis // this node's own optimal basis (nil unless Optimal)
	err   error
}

// solveNode applies the node's bound fixes to the worker's clone and solves
// the relaxation, warm-starting from the parent's basis.
func (w *worker) solveNode(nd *node, rootLo, rootHi []float64, lpOpts lp.Options) nodeResult {
	for _, f := range w.applied {
		w.model.SetBounds(f.v, rootLo[f.v], rootHi[f.v])
	}
	for _, f := range nd.fixes {
		w.model.SetBounds(f.v, f.lower, f.upper)
	}
	w.applied = nd.fixes
	sol, err := w.solver.SolveFrom(nd.basis, lpOpts)
	if err != nil {
		return nodeResult{err: err}
	}
	var basis *lp.Basis
	if sol.Status == lp.Optimal {
		basis = w.solver.SaveBasis()
	}
	return nodeResult{sol: sol, basis: basis}
}

// Solve runs branch-and-bound and returns the result.
// The problem's model is not mutated.
func Solve(p Problem, opts Options) (*Result, error) {
	start := time.Now()
	intTol := opts.IntTol
	if intTol <= 0 {
		intTol = 1e-6
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}
	nWorkers := opts.Workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}

	maximize := p.Model.Maximizing()
	// Internally bounds are tracked in minimize direction: lower bounds on
	// the optimum come from relaxations.
	toMin := func(v float64) float64 {
		if maximize {
			return -v
		}
		return v
	}

	res := &Result{Bound: math.Inf(-1)}
	if maximize {
		res.Bound = math.Inf(1)
	}
	bestMin := math.Inf(1) // incumbent objective, minimize direction
	intSet := make(map[int]bool, len(p.Integers))
	for _, v := range p.Integers {
		intSet[v] = true
	}

	// Root bounds, for undoing a node's fixes on a worker clone.
	nVars := p.Model.NumVariables()
	rootLo := make([]float64, nVars)
	rootHi := make([]float64, nVars)
	for v := 0; v < nVars; v++ {
		rootLo[v], rootHi[v] = p.Model.Bounds(v)
	}

	// Workers are created lazily: batches start at size 1 and are bounded
	// by the open-node count, so a tree that dies early never pays for the
	// full set of model clones and dense tableaus.
	workers := make([]*worker, nWorkers)
	getWorker := func(i int) *worker {
		if workers[i] == nil {
			m := p.Model.Clone()
			workers[i] = &worker{model: m, solver: lp.NewSolver(m)}
		}
		return workers[i]
	}

	var seq int64
	queue := &nodeQueue{{bound: math.Inf(-1)}}
	heap.Init(queue)

	// droppedBound tracks the best (minimize-direction) bound over nodes
	// that were abandoned without resolution — LP iteration limits, or a
	// non-root unbounded relaxation. Their subtrees are unexplored, so the
	// proven bound and the Optimal claim must account for them.
	droppedBound := math.Inf(1)

	finish := func(st Status) (*Result, error) {
		res.Elapsed = time.Since(start)
		res.Status = st
		// Best bound: min over incumbent, open nodes, and dropped nodes.
		openBest := droppedBound
		if queue.Len() > 0 {
			openBest = math.Min(openBest, (*queue)[0].bound)
		}
		b := math.Min(bestMin, openBest)
		if st == Optimal && res.HasSolution {
			b = bestMin
		}
		if maximize {
			res.Bound = -b
		} else {
			res.Bound = b
		}
		return res, nil
	}

	batch := make([]*node, 0, nWorkers)
	results := make([]nodeResult, nWorkers)
	for queue.Len() > 0 {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return finish(TimeLimit)
		}
		batchCap := nWorkers
		if opts.MaxNodes > 0 {
			if rem := opts.MaxNodes - res.Nodes; rem < batchCap {
				batchCap = rem
			}
			if batchCap <= 0 {
				return finish(NodeLimit)
			}
		}

		// Form a batch of the best open nodes, dropping prunable ones.
		batch = batch[:0]
		for len(batch) < batchCap && queue.Len() > 0 {
			nd := heap.Pop(queue).(*node)
			if res.HasSolution && nd.bound >= bestMin-1e-9 {
				continue
			}
			batch = append(batch, nd)
		}
		if len(batch) == 0 {
			continue
		}

		// Solve the batch: node i on worker i. Workers share nothing, so
		// results are independent of goroutine scheduling.
		if len(batch) == 1 {
			results[0] = getWorker(0).solveNode(batch[0], rootLo, rootHi, opts.LP)
		} else {
			var wg sync.WaitGroup
			for i := range batch {
				w := getWorker(i)
				wg.Add(1)
				go func(i int, w *worker) {
					defer wg.Done()
					results[i] = w.solveNode(batch[i], rootLo, rootHi, opts.LP)
				}(i, w)
			}
			wg.Wait()
		}

		// If processing ends the search mid-batch, the batch members after
		// the current one — popped first, holding the best open bounds —
		// must rejoin the queue so the reported Bound stays sound. Their
		// already-computed LP results are deliberately discarded: finish()
		// terminates the solve, so only the Bound matters, and counting
		// unprocessed nodes in Nodes/LPPivots would misstate exploration.
		requeueAfter := func(i int) {
			for _, nd := range batch[i+1:] {
				heap.Push(queue, nd)
			}
		}

		// Process results in batch order — the deterministic part.
		for i := range batch {
			nd, r := batch[i], results[i]
			if r.err != nil {
				return nil, r.err
			}
			sol := r.sol
			res.Nodes++
			res.LPPivots += sol.Iterations

			switch sol.Status {
			case lp.Infeasible:
				continue
			case lp.Unbounded:
				if nd.depth == 0 {
					return finish(Unbounded)
				}
				// A bounded root cannot have an unbounded child; treat it
				// as unresolved rather than cut off.
				droppedBound = math.Min(droppedBound, nd.bound)
				continue
			case lp.IterationLimit:
				// Cannot trust the node: its subtree stays unexplored, so
				// its inherited bound caps what the search can claim. Stop
				// outright if there is no incumbent yet.
				droppedBound = math.Min(droppedBound, nd.bound)
				if !res.HasSolution {
					requeueAfter(i)
					return finish(NodeLimit)
				}
				continue
			}
			nodeBound := toMin(sol.Objective)
			if res.HasSolution && nodeBound >= bestMin-1e-9 {
				continue
			}

			// Find the most fractional integer variable.
			branchVar, worst := -1, intTol
			for _, v := range p.Integers {
				f := sol.X[v]
				frac := math.Abs(f - math.Round(f))
				if frac > worst {
					branchVar, worst = v, frac
				}
			}
			if branchVar < 0 {
				// Integer feasible: candidate incumbent.
				if nodeBound < bestMin {
					bestMin = nodeBound
					res.HasSolution = true
					res.X = roundIntegers(sol.X, intSet)
					res.Objective = sol.Objective
					if opts.Gap > 0 {
						// Open bound: the queue top, dropped subtrees, and
						// any batch members still waiting to be processed.
						openBest := droppedBound
						if queue.Len() > 0 {
							openBest = math.Min(openBest, (*queue)[0].bound)
						}
						for _, rest := range batch[i+1:] {
							if rest.bound < openBest {
								openBest = rest.bound
							}
						}
						gap := math.Abs(bestMin-math.Min(openBest, nodeBound)) / math.Max(1e-9, math.Abs(bestMin))
						if gap <= opts.Gap {
							requeueAfter(i)
							return finish(Optimal)
						}
					}
				}
				continue
			}

			// Branch on floor/ceil of the fractional value. Child bounds
			// intersect whatever an ancestor already imposed on this
			// variable; fixes are deduplicated so each variable carries at
			// most one entry regardless of how often it is re-branched.
			val := sol.X[branchVar]
			effLo, effHi := rootLo[branchVar], rootHi[branchVar]
			for _, f := range nd.fixes {
				if f.v == branchVar {
					effLo, effHi = f.lower, f.upper
				}
			}
			floorFix := fix{branchVar, effLo, math.Max(effLo, math.Floor(val))}
			ceilFix := fix{branchVar, math.Min(effHi, math.Ceil(val)), effHi}
			// Beyond the cap, children carry no basis snapshot: a snapshot
			// is only consulted by a worker without a live basis of its
			// own, and bounding retention keeps huge open queues from
			// holding one O(model)-sized snapshot per expanded node.
			childBasis := r.basis
			if queue.Len() >= maxBasisQueue {
				childBasis = nil
			}
			heap.Push(queue, &node{
				fixes: childFixes(nd.fixes, floorFix), bound: nodeBound,
				depth: nd.depth + 1, seq: nextSeq(&seq), basis: childBasis,
			})
			heap.Push(queue, &node{
				fixes: childFixes(nd.fixes, ceilFix), bound: nodeBound,
				depth: nd.depth + 1, seq: nextSeq(&seq), basis: childBasis,
			})
		}
	}

	if res.HasSolution {
		if droppedBound < bestMin-1e-9 {
			// An abandoned subtree could still beat the incumbent: the
			// incumbent stands but optimality is not proven.
			return finish(NodeLimit)
		}
		return finish(Optimal)
	}
	if !math.IsInf(droppedBound, 1) {
		return finish(NodeLimit) // dropped subtrees forbid an infeasibility claim
	}
	return finish(Infeasible)
}

func nextSeq(seq *int64) int64 {
	*seq++
	return *seq
}

// childFixes extends a parent's fix set with one new fix, replacing any
// earlier fix of the same variable (the new fix already carries the
// intersected bounds). Keeping fixes deduplicated makes node bookkeeping
// O(depth-distinct-variables) instead of O(depth) per node.
func childFixes(parent []fix, nf fix) []fix {
	out := make([]fix, 0, len(parent)+1)
	for _, f := range parent {
		if f.v != nf.v {
			out = append(out, f)
		}
	}
	return append(out, nf)
}

// roundIntegers snaps integer variables of x to the nearest integer.
func roundIntegers(x []float64, intSet map[int]bool) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for v := range intSet {
		out[v] = math.Round(out[v])
	}
	return out
}

// SortedIntegers returns the integer variable indices in ascending order;
// useful for deterministic reporting.
func (p Problem) SortedIntegers() []int {
	out := append([]int(nil), p.Integers...)
	sort.Ints(out)
	return out
}
