// Package milp solves mixed-integer linear programs by branch-and-bound on
// the LP relaxation from package lp.
//
// The solver targets the network-verification MILPs in this repository:
// every integer variable is a 0/1 ReLU phase indicator, so branching is
// binary and big-M bound fixing (setting a binary's bounds to [0,0] or
// [1,1]) is the only node operation. Nodes are explored best-first by
// relaxation bound so the incumbent/bound gap shrinks monotonically.
//
// The engine is parallel and warm-started: Options.Workers workers each
// own a model clone and a persistent lp.Solver, nodes are pulled from a
// shared best-first heap in synchronized batches, and every child node
// re-solves from its parent's saved simplex basis instead of from scratch.
// Batch-synchronous scheduling keeps the search deterministic for a fixed
// worker count: node counts, objectives and incumbents are reproducible
// run to run, and Workers=1 is exactly the classical sequential search.
//
// Solves are context-aware and anytime: SolveCtx threads cancellation and
// deadlines from a context.Context down into every node's simplex pivot
// loop, an interrupted search still reports its incumbent and proven
// bound, and Options.Progress streams incumbent/bound/node events while
// the search runs.
package milp

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lp"
)

// Process-wide instrumentation: branch-and-bound solves performed and
// wall time spent inside them. Like verify's EncodePasses/TightenPasses
// these let the serving layer's observability plane attribute request
// time to the solve phase without this package knowing about spans.
var (
	solveCount atomic.Int64
	solveNanos atomic.Int64
)

// Solves returns the total number of branch-and-bound solves this
// process has run (including interrupted ones).
func Solves() int64 { return solveCount.Load() }

// SolveNanos returns the cumulative wall nanoseconds spent inside
// SolveCtx across the process.
func SolveNanos() int64 { return solveNanos.Load() }

// Status reports the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	// Optimal means the incumbent is proven optimal within the gap tolerance.
	Optimal Status = iota
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// Unbounded means the relaxation (and thus the MILP) is unbounded.
	Unbounded
	// TimeLimit means the context deadline elapsed; the incumbent (if any)
	// and the best bound are still reported — the anytime answer.
	TimeLimit
	// NodeLimit means the node budget was exhausted first.
	NodeLimit
	// Cancelled means the context was cancelled (not by deadline); like
	// TimeLimit, the incumbent and best bound so far are still reported.
	Cancelled
)

// String returns a readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case TimeLimit:
		return "time-limit"
	case NodeLimit:
		return "node-limit"
	case Cancelled:
		return "cancelled"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Event is a progress snapshot streamed to Options.Progress from the
// coordinator loop. Incumbent and Bound are in the model's own direction.
// For a fixed worker count the sequence of events (minus Elapsed) is
// deterministic: emission is keyed to node counts, not wall-clock time.
type Event struct {
	Nodes        int           // nodes explored so far
	Open         int           // open nodes on the queue
	HasIncumbent bool          // whether any integer-feasible point exists yet
	Incumbent    float64       // best integer-feasible objective (valid when HasIncumbent)
	Bound        float64       // best proven bound on the optimum
	Elapsed      time.Duration // wall-clock time since the solve started
}

// progressPeriod is the node interval between periodic progress events;
// incumbent improvements always emit immediately.
const progressPeriod = 64

// Options tune the branch-and-bound search.
//
// There is deliberately no TimeLimit here: deadlines and cancellation
// arrive through the context given to SolveCtx and are polled both in the
// coordinator loop and inside each node's simplex iterations, so a solve
// stops promptly even mid-LP and still reports its anytime incumbent/bound.
type Options struct {
	// MaxNodes bounds explored nodes; 0 means no limit.
	MaxNodes int
	// IntTol is the integrality tolerance; 0 means 1e-6.
	IntTol float64
	// Gap is the relative optimality gap at which search stops; 0 means
	// prove optimality exactly (up to tolerances).
	Gap float64
	// Workers is the number of node solvers running concurrently:
	// 0 means GOMAXPROCS, 1 is the sequential deterministic path. For any
	// fixed value the search itself is deterministic (batch-synchronous
	// scheduling), so results are reproducible run to run.
	Workers int
	// Progress, when non-nil, receives streamed incumbent/bound/node events
	// from the coordinator loop: immediately on every incumbent improvement
	// and at least every progressPeriod nodes. The callback runs on the
	// coordinating goroutine and must not block.
	Progress func(Event)
	// LP forwards options to every relaxation solve.
	LP lp.Options
}

// Result is the outcome of a MILP solve.
type Result struct {
	Status    Status
	Objective float64   // incumbent objective (model direction); valid if HasSolution
	X         []float64 // incumbent point; valid if HasSolution
	Bound     float64   // best proven bound on the optimum (model direction)
	// HasSolution reports whether any integer-feasible point was found.
	HasSolution bool
	Nodes       int           // branch-and-bound nodes explored
	LPPivots    int           // total simplex iterations across all nodes
	Elapsed     time.Duration // wall-clock solve time
}

// Gap returns the relative incumbent/bound gap, or +Inf without an incumbent.
func (r *Result) Gap() float64 {
	if !r.HasSolution {
		return math.Inf(1)
	}
	denom := math.Max(1e-9, math.Abs(r.Objective))
	return math.Abs(r.Bound-r.Objective) / denom
}

// Problem couples an LP model with a set of integer-constrained variables.
type Problem struct {
	Model *lp.Model
	// Integers lists variable indices that must take integral values.
	// For this repository they are always 0/1 indicators.
	Integers []int
}

// maxBasisQueue bounds how many open nodes may hold basis snapshots:
// past this queue size, children are pushed without one (their solve
// warm-starts from the worker's own basis or falls back to a cold solve).
const maxBasisQueue = 8192

// node is a branch-and-bound node: a set of tightened bounds, the
// relaxation bound inherited from its parent (best-first key), and the
// parent's optimal simplex basis for warm-starting the node's own solve.
type node struct {
	fixes []fix // deduplicated: at most one entry per variable
	bound float64
	depth int
	seq   int64     // creation order; deterministic heap tie-break
	basis *lp.Basis // parent's optimal basis (nil at the root)
}

type fix struct {
	v            int
	lower, upper float64
}

type nodeQueue []*node

func (q nodeQueue) Len() int { return len(q) }
func (q nodeQueue) Less(i, j int) bool {
	if q[i].bound != q[j].bound {
		return q[i].bound < q[j].bound
	}
	return q[i].seq < q[j].seq
}
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// worker owns one model clone and one persistent warm-started solver.
type worker struct {
	model   *lp.Model
	solver  *lp.Solver
	applied []fix // fixes currently applied to model, for cheap undo
}

// nodeResult carries one solved relaxation back to the coordinator.
type nodeResult struct {
	sol   *lp.Solution
	basis *lp.Basis // this node's own optimal basis (nil unless Optimal)
	err   error
}

// solveNode applies the node's bound fixes to the worker's clone and solves
// the relaxation, warm-starting from the parent's basis.
func (w *worker) solveNode(nd *node, rootLo, rootHi []float64, lpOpts lp.Options) nodeResult {
	for _, f := range w.applied {
		w.model.SetBounds(f.v, rootLo[f.v], rootHi[f.v])
	}
	for _, f := range nd.fixes {
		w.model.SetBounds(f.v, f.lower, f.upper)
	}
	w.applied = nd.fixes
	sol, err := w.solver.SolveFrom(nd.basis, lpOpts)
	if err != nil {
		return nodeResult{err: err}
	}
	var basis *lp.Basis
	if sol.Status == lp.Optimal {
		basis = w.solver.SaveBasis()
	}
	return nodeResult{sol: sol, basis: basis}
}

// Solve runs branch-and-bound without cancellation or deadline.
// The problem's model is not mutated.
func Solve(p Problem, opts Options) (*Result, error) {
	return SolveCtx(context.Background(), p, opts)
}

// ctxStatus maps a context error to the solve status it terminates with.
func ctxStatus(err error) Status {
	if err == context.DeadlineExceeded {
		return TimeLimit
	}
	return Cancelled
}

// SolveCtx runs branch-and-bound under a context: a deadline on ctx bounds
// wall-clock time (the former TimeLimit option) and cancelling ctx stops
// the search. Both are polled in the coordinator loop and inside every
// node's simplex iterations, so even a single long LP solve is interrupted
// promptly. An interrupted solve is not wasted: the result still carries
// the best incumbent and the proven bound at the moment of interruption.
// The problem's model is not mutated.
func SolveCtx(ctx context.Context, p Problem, opts Options) (*Result, error) {
	start := time.Now()
	solveCount.Add(1)
	defer func() { solveNanos.Add(int64(time.Since(start))) }()
	intTol := opts.IntTol
	if intTol <= 0 {
		intTol = 1e-6
	}
	nWorkers := opts.Workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	lpOpts := opts.LP
	if ctx.Done() != nil {
		// Reach into each node's pivot loop: the solve must notice a
		// cancelled or expired context mid-LP, not at the next batch.
		userCancel := lpOpts.Cancel
		lpOpts.Cancel = func() bool {
			return ctx.Err() != nil || (userCancel != nil && userCancel())
		}
	}

	maximize := p.Model.Maximizing()
	// Internally bounds are tracked in minimize direction: lower bounds on
	// the optimum come from relaxations.
	toMin := func(v float64) float64 {
		if maximize {
			return -v
		}
		return v
	}

	res := &Result{Bound: math.Inf(-1)}
	if maximize {
		res.Bound = math.Inf(1)
	}
	bestMin := math.Inf(1) // incumbent objective, minimize direction
	intSet := make(map[int]bool, len(p.Integers))
	for _, v := range p.Integers {
		intSet[v] = true
	}

	// Root bounds, for undoing a node's fixes on a worker clone.
	nVars := p.Model.NumVariables()
	rootLo := make([]float64, nVars)
	rootHi := make([]float64, nVars)
	for v := 0; v < nVars; v++ {
		rootLo[v], rootHi[v] = p.Model.Bounds(v)
	}

	// Workers are created lazily: batches start at size 1 and are bounded
	// by the open-node count, so a tree that dies early never pays for the
	// full set of model clones and dense tableaus.
	workers := make([]*worker, nWorkers)
	getWorker := func(i int) *worker {
		if workers[i] == nil {
			m := p.Model.Clone()
			workers[i] = &worker{model: m, solver: lp.NewSolver(m)}
		}
		return workers[i]
	}

	var seq int64
	queue := &nodeQueue{{bound: math.Inf(-1)}}
	heap.Init(queue)

	// droppedBound tracks the best (minimize-direction) bound over nodes
	// that were abandoned without resolution — LP iteration limits, or a
	// non-root unbounded relaxation. Their subtrees are unexplored, so the
	// proven bound and the Optimal claim must account for them.
	droppedBound := math.Inf(1)

	// openBound is the best (minimize-direction) bound over unexplored
	// work: open queue nodes and dropped subtrees.
	openBound := func() float64 {
		b := droppedBound
		if queue.Len() > 0 {
			b = math.Min(b, (*queue)[0].bound)
		}
		return b
	}

	finish := func(st Status) (*Result, error) {
		res.Elapsed = time.Since(start)
		res.Status = st
		// Best bound: min over incumbent, open nodes, and dropped nodes.
		b := math.Min(bestMin, openBound())
		if st == Optimal && res.HasSolution {
			b = bestMin
		}
		if maximize {
			res.Bound = -b
		} else {
			res.Bound = b
		}
		return res, nil
	}

	// progress streams an Event to the caller: forced on incumbent
	// improvements, otherwise at most every progressPeriod nodes. Keying
	// emission to node counts keeps the event sequence deterministic for a
	// fixed worker count. rest holds batch members popped but not yet
	// processed when emitting mid-batch: their subtrees are unexplored and
	// often carry the best open bounds, so a sound Event.Bound must cover
	// them (mirroring the gap-termination check below).
	lastEmit := 0
	progress := func(force bool, rest []*node) {
		if opts.Progress == nil || (!force && res.Nodes-lastEmit < progressPeriod) {
			return
		}
		lastEmit = res.Nodes
		ev := Event{
			Nodes:        res.Nodes,
			Open:         queue.Len() + len(rest),
			HasIncumbent: res.HasSolution,
			Elapsed:      time.Since(start),
		}
		if res.HasSolution {
			ev.Incumbent = res.Objective
		}
		b := math.Min(bestMin, openBound())
		for _, nd := range rest {
			b = math.Min(b, nd.bound)
		}
		if maximize {
			b = -b
		}
		ev.Bound = b
		opts.Progress(ev)
	}

	batch := make([]*node, 0, nWorkers)
	results := make([]nodeResult, nWorkers)
	for queue.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return finish(ctxStatus(err))
		}
		batchCap := nWorkers
		if opts.MaxNodes > 0 {
			if rem := opts.MaxNodes - res.Nodes; rem < batchCap {
				batchCap = rem
			}
			if batchCap <= 0 {
				return finish(NodeLimit)
			}
		}

		// Form a batch of the best open nodes, dropping prunable ones.
		batch = batch[:0]
		for len(batch) < batchCap && queue.Len() > 0 {
			nd := heap.Pop(queue).(*node)
			if res.HasSolution && nd.bound >= bestMin-1e-9 {
				continue
			}
			batch = append(batch, nd)
		}
		if len(batch) == 0 {
			continue
		}

		// Solve the batch: node i on worker i. Workers share nothing, so
		// results are independent of goroutine scheduling.
		if len(batch) == 1 {
			results[0] = getWorker(0).solveNode(batch[0], rootLo, rootHi, lpOpts)
		} else {
			var wg sync.WaitGroup
			for i := range batch {
				w := getWorker(i)
				wg.Add(1)
				go func(i int, w *worker) {
					defer wg.Done()
					results[i] = w.solveNode(batch[i], rootLo, rootHi, lpOpts)
				}(i, w)
			}
			wg.Wait()
		}

		// If processing ends the search mid-batch, the batch members after
		// the current one — popped first, holding the best open bounds —
		// must rejoin the queue so the reported Bound stays sound. Their
		// already-computed LP results are deliberately discarded: finish()
		// terminates the solve, so only the Bound matters, and counting
		// unprocessed nodes in Nodes/LPPivots would misstate exploration.
		requeueAfter := func(i int) {
			for _, nd := range batch[i+1:] {
				heap.Push(queue, nd)
			}
		}

		// Process results in batch order — the deterministic part.
		for i := range batch {
			nd, r := batch[i], results[i]
			if r.err != nil {
				return nil, r.err
			}
			sol := r.sol
			res.Nodes++
			res.LPPivots += sol.Iterations

			switch sol.Status {
			case lp.Infeasible:
				continue
			case lp.Unbounded:
				if nd.depth == 0 {
					return finish(Unbounded)
				}
				// A bounded root cannot have an unbounded child; treat it
				// as unresolved rather than cut off.
				droppedBound = math.Min(droppedBound, nd.bound)
				continue
			case lp.IterationLimit:
				// Cannot trust the node: its subtree stays unexplored, so
				// its inherited bound caps what the search can claim. A
				// cancelled or expired context surfaces here too (the pivot
				// loop stops with IterationLimit); report the interruption
				// rather than a node-limit. Otherwise stop outright if there
				// is no incumbent yet.
				droppedBound = math.Min(droppedBound, nd.bound)
				if err := ctx.Err(); err != nil {
					requeueAfter(i)
					return finish(ctxStatus(err))
				}
				if !res.HasSolution {
					requeueAfter(i)
					return finish(NodeLimit)
				}
				continue
			}
			nodeBound := toMin(sol.Objective)
			if res.HasSolution && nodeBound >= bestMin-1e-9 {
				continue
			}

			// Find the most fractional integer variable.
			branchVar, worst := -1, intTol
			for _, v := range p.Integers {
				f := sol.X[v]
				frac := math.Abs(f - math.Round(f))
				if frac > worst {
					branchVar, worst = v, frac
				}
			}
			if branchVar < 0 {
				// Integer feasible: candidate incumbent.
				if nodeBound < bestMin {
					bestMin = nodeBound
					res.HasSolution = true
					res.X = roundIntegers(sol.X, intSet)
					res.Objective = sol.Objective
					progress(true, batch[i+1:])
					if opts.Gap > 0 {
						// Open bound: the queue top, dropped subtrees, and
						// any batch members still waiting to be processed.
						openBest := droppedBound
						if queue.Len() > 0 {
							openBest = math.Min(openBest, (*queue)[0].bound)
						}
						for _, rest := range batch[i+1:] {
							if rest.bound < openBest {
								openBest = rest.bound
							}
						}
						gap := math.Abs(bestMin-math.Min(openBest, nodeBound)) / math.Max(1e-9, math.Abs(bestMin))
						if gap <= opts.Gap {
							requeueAfter(i)
							return finish(Optimal)
						}
					}
				}
				continue
			}

			// Branch on floor/ceil of the fractional value. Child bounds
			// intersect whatever an ancestor already imposed on this
			// variable; fixes are deduplicated so each variable carries at
			// most one entry regardless of how often it is re-branched.
			val := sol.X[branchVar]
			effLo, effHi := rootLo[branchVar], rootHi[branchVar]
			for _, f := range nd.fixes {
				if f.v == branchVar {
					effLo, effHi = f.lower, f.upper
				}
			}
			floorFix := fix{branchVar, effLo, math.Max(effLo, math.Floor(val))}
			ceilFix := fix{branchVar, math.Min(effHi, math.Ceil(val)), effHi}
			// Beyond the cap, children carry no basis snapshot: a snapshot
			// is only consulted by a worker without a live basis of its
			// own, and bounding retention keeps huge open queues from
			// holding one O(model)-sized snapshot per expanded node.
			childBasis := r.basis
			if queue.Len() >= maxBasisQueue {
				childBasis = nil
			}
			heap.Push(queue, &node{
				fixes: childFixes(nd.fixes, floorFix), bound: nodeBound,
				depth: nd.depth + 1, seq: nextSeq(&seq), basis: childBasis,
			})
			heap.Push(queue, &node{
				fixes: childFixes(nd.fixes, ceilFix), bound: nodeBound,
				depth: nd.depth + 1, seq: nextSeq(&seq), basis: childBasis,
			})
		}
		progress(false, nil)
	}

	if res.HasSolution {
		if droppedBound < bestMin-1e-9 {
			// An abandoned subtree could still beat the incumbent: the
			// incumbent stands but optimality is not proven.
			return finish(NodeLimit)
		}
		return finish(Optimal)
	}
	if !math.IsInf(droppedBound, 1) {
		return finish(NodeLimit) // dropped subtrees forbid an infeasibility claim
	}
	return finish(Infeasible)
}

func nextSeq(seq *int64) int64 {
	*seq++
	return *seq
}

// childFixes extends a parent's fix set with one new fix, replacing any
// earlier fix of the same variable (the new fix already carries the
// intersected bounds). Keeping fixes deduplicated makes node bookkeeping
// O(depth-distinct-variables) instead of O(depth) per node.
func childFixes(parent []fix, nf fix) []fix {
	out := make([]fix, 0, len(parent)+1)
	for _, f := range parent {
		if f.v != nf.v {
			out = append(out, f)
		}
	}
	return append(out, nf)
}

// roundIntegers snaps integer variables of x to the nearest integer.
func roundIntegers(x []float64, intSet map[int]bool) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for v := range intSet {
		out[v] = math.Round(out[v])
	}
	return out
}

// SortedIntegers returns the integer variable indices in ascending order;
// useful for deterministic reporting.
func (p Problem) SortedIntegers() []int {
	out := append([]int(nil), p.Integers...)
	sort.Ints(out)
	return out
}
