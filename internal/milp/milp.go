// Package milp solves mixed-integer linear programs by branch-and-bound on
// the LP relaxation from package lp.
//
// The solver targets the network-verification MILPs in this repository:
// every integer variable is a 0/1 ReLU phase indicator, so branching is
// binary and big-M bound fixing (setting a binary's bounds to [0,0] or
// [1,1]) is the only node operation. Node relaxations are solved from
// scratch by the primal simplex; nodes are explored best-first by
// relaxation bound so the incumbent/bound gap shrinks monotonically.
package milp

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/lp"
)

// Status reports the outcome of a MILP solve.
type Status int

// Solve outcomes.
const (
	// Optimal means the incumbent is proven optimal within the gap tolerance.
	Optimal Status = iota
	// Infeasible means no integer-feasible point exists.
	Infeasible
	// Unbounded means the relaxation (and thus the MILP) is unbounded.
	Unbounded
	// TimeLimit means the deadline elapsed; the incumbent (if any) and the
	// best bound are still reported.
	TimeLimit
	// NodeLimit means the node budget was exhausted first.
	NodeLimit
)

// String returns a readable status name.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case TimeLimit:
		return "time-limit"
	case NodeLimit:
		return "node-limit"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// Options tune the branch-and-bound search.
type Options struct {
	// TimeLimit bounds wall-clock time; 0 means no limit.
	TimeLimit time.Duration
	// MaxNodes bounds explored nodes; 0 means no limit.
	MaxNodes int
	// IntTol is the integrality tolerance; 0 means 1e-6.
	IntTol float64
	// Gap is the relative optimality gap at which search stops; 0 means
	// prove optimality exactly (up to tolerances).
	Gap float64
	// LP forwards options to every relaxation solve.
	LP lp.Options
}

// Result is the outcome of a MILP solve.
type Result struct {
	Status    Status
	Objective float64   // incumbent objective (model direction); valid if HasSolution
	X         []float64 // incumbent point; valid if HasSolution
	Bound     float64   // best proven bound on the optimum (model direction)
	// HasSolution reports whether any integer-feasible point was found.
	HasSolution bool
	Nodes       int           // branch-and-bound nodes explored
	LPPivots    int           // total simplex iterations across all nodes
	Elapsed     time.Duration // wall-clock solve time
}

// Gap returns the relative incumbent/bound gap, or +Inf without an incumbent.
func (r *Result) Gap() float64 {
	if !r.HasSolution {
		return math.Inf(1)
	}
	denom := math.Max(1e-9, math.Abs(r.Objective))
	return math.Abs(r.Bound-r.Objective) / denom
}

// Problem couples an LP model with a set of integer-constrained variables.
type Problem struct {
	Model *lp.Model
	// Integers lists variable indices that must take integral values.
	// For this repository they are always 0/1 indicators.
	Integers []int
}

// node is a branch-and-bound node: a set of tightened bounds plus the
// relaxation bound inherited from its parent (used for best-first order).
type node struct {
	fixes []fix
	bound float64 // relaxation objective of the parent, in minimize direction
	depth int
}

type fix struct {
	v            int
	lower, upper float64
}

type nodeQueue []*node

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].bound < q[j].bound }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Solve runs branch-and-bound and returns the result.
// The problem's model is not mutated.
func Solve(p Problem, opts Options) (*Result, error) {
	start := time.Now()
	intTol := opts.IntTol
	if intTol <= 0 {
		intTol = 1e-6
	}
	deadline := time.Time{}
	if opts.TimeLimit > 0 {
		deadline = start.Add(opts.TimeLimit)
	}

	work := p.Model.Clone()
	maximize := work.Maximizing()
	// Internally bounds are tracked in minimize direction: lower bounds on
	// the optimum come from relaxations.
	toMin := func(v float64) float64 {
		if maximize {
			return -v
		}
		return v
	}

	res := &Result{Bound: math.Inf(-1)}
	if maximize {
		res.Bound = math.Inf(1)
	}
	bestMin := math.Inf(1) // incumbent objective, minimize direction
	intSet := make(map[int]bool, len(p.Integers))
	for _, v := range p.Integers {
		intSet[v] = true
	}

	queue := &nodeQueue{{bound: math.Inf(-1)}}
	heap.Init(queue)

	applyFixes := func(fs []fix) []fix {
		saved := make([]fix, len(fs))
		for i, f := range fs {
			lo, hi := work.Bounds(f.v)
			saved[i] = fix{f.v, lo, hi}
			work.SetBounds(f.v, f.lower, f.upper)
		}
		return saved
	}
	restore := func(saved []fix) {
		for i := len(saved) - 1; i >= 0; i-- {
			f := saved[i]
			work.SetBounds(f.v, f.lower, f.upper)
		}
	}

	finish := func(st Status) (*Result, error) {
		res.Elapsed = time.Since(start)
		res.Status = st
		// Best bound: min over incumbent and open nodes.
		openBest := math.Inf(1)
		if queue.Len() > 0 {
			openBest = (*queue)[0].bound
		}
		b := math.Min(bestMin, openBest)
		if st == Optimal && res.HasSolution {
			b = bestMin
		}
		if maximize {
			res.Bound = -b
		} else {
			res.Bound = b
		}
		return res, nil
	}

	for queue.Len() > 0 {
		if !deadline.IsZero() && time.Now().After(deadline) {
			return finish(TimeLimit)
		}
		if opts.MaxNodes > 0 && res.Nodes >= opts.MaxNodes {
			return finish(NodeLimit)
		}
		nd := heap.Pop(queue).(*node)
		// Bound pruning against the incumbent.
		if nd.bound >= bestMin-1e-9 && res.HasSolution {
			continue
		}
		res.Nodes++

		saved := applyFixes(nd.fixes)
		sol, err := lp.Solve(work, opts.LP)
		restore(saved)
		if err != nil {
			return nil, err
		}
		res.LPPivots += sol.Iterations

		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			if res.Nodes == 1 && len(nd.fixes) == 0 {
				return finish(Unbounded)
			}
			continue // a child cannot be more unbounded than the root; treat as cut off
		case lp.IterationLimit:
			// Cannot trust the node; drop it conservatively only if we
			// already have an incumbent, otherwise report the limit.
			if !res.HasSolution {
				return finish(NodeLimit)
			}
			continue
		}
		nodeBound := toMin(sol.Objective)
		if res.HasSolution && nodeBound >= bestMin-1e-9 {
			continue
		}

		// Find the most fractional integer variable.
		branchVar, worst := -1, intTol
		for _, v := range p.Integers {
			f := sol.X[v]
			frac := math.Abs(f - math.Round(f))
			if frac > worst {
				branchVar, worst = v, frac
			}
		}
		if branchVar < 0 {
			// Integer feasible: candidate incumbent.
			if nodeBound < bestMin {
				bestMin = nodeBound
				res.HasSolution = true
				res.X = roundIntegers(sol.X, intSet)
				res.Objective = sol.Objective
				if opts.Gap > 0 {
					openBest := math.Inf(1)
					if queue.Len() > 0 {
						openBest = (*queue)[0].bound
					}
					gap := math.Abs(bestMin-math.Min(openBest, nodeBound)) / math.Max(1e-9, math.Abs(bestMin))
					if gap <= opts.Gap {
						return finish(Optimal)
					}
				}
			}
			continue
		}

		// Branch on floor/ceil of the fractional value. Child bounds must
		// intersect with whatever an ancestor already imposed on this
		// variable, so start from the effective bounds at this node.
		val := sol.X[branchVar]
		effLo, effHi := work.Bounds(branchVar)
		for _, f := range nd.fixes {
			if f.v == branchVar {
				effLo, effHi = f.lower, f.upper
			}
		}
		floorFixes := append(append([]fix(nil), nd.fixes...), fix{branchVar, effLo, math.Floor(val)})
		ceilFixes := append(append([]fix(nil), nd.fixes...), fix{branchVar, math.Ceil(val), effHi})
		heap.Push(queue, &node{fixes: floorFixes, bound: nodeBound, depth: nd.depth + 1})
		heap.Push(queue, &node{fixes: ceilFixes, bound: nodeBound, depth: nd.depth + 1})
	}

	if res.HasSolution {
		return finish(Optimal)
	}
	return finish(Infeasible)
}

// roundIntegers snaps integer variables of x to the nearest integer.
func roundIntegers(x []float64, intSet map[int]bool) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for v := range intSet {
		out[v] = math.Round(out[v])
	}
	return out
}

// SortedIntegers returns the integer variable indices in ascending order;
// useful for deterministic reporting.
func (p Problem) SortedIntegers() []int {
	out := append([]int(nil), p.Integers...)
	sort.Ints(out)
	return out
}
