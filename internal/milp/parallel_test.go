package milp

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// randomKnapsack builds a maximization knapsack with n binaries.
func randomKnapsack(rng *rand.Rand, n int) Problem {
	m := lp.NewModel()
	ints := make([]int, n)
	terms := make([]lp.Term, n)
	var wsum float64
	for i := 0; i < n; i++ {
		ints[i] = m.AddVariable(0, 1, "")
		m.SetObjective(ints[i], rng.Float64()*10+0.1)
		w := rng.Float64()*5 + 0.1
		terms[i] = lp.Term{Var: ints[i], Coeff: w}
		wsum += w
	}
	m.SetMaximize(true)
	m.AddConstraint(terms, lp.LE, wsum*(0.3+0.4*rng.Float64()), "cap")
	return Problem{Model: m, Integers: ints}
}

// randomMixed builds a mixed binary/continuous problem feasible at the origin.
func randomMixed(rng *rand.Rand, nBin, nCont int) Problem {
	m := lp.NewModel()
	var ints []int
	for i := 0; i < nBin; i++ {
		v := m.AddVariable(0, 1, "")
		m.SetObjective(v, rng.Float64()*4-2)
		ints = append(ints, v)
	}
	for i := 0; i < nCont; i++ {
		v := m.AddVariable(-1, 1, "")
		m.SetObjective(v, rng.Float64()*4-2)
	}
	m.SetMaximize(true)
	total := nBin + nCont
	for r := 0; r < 3; r++ {
		terms := make([]lp.Term, 0, total)
		for v := 0; v < total; v++ {
			if rng.Float64() < 0.7 {
				terms = append(terms, lp.Term{Var: v, Coeff: rng.Float64()*2 - 1})
			}
		}
		if len(terms) > 0 {
			m.AddConstraint(terms, lp.LE, rng.Float64()+0.1, "")
		}
	}
	return Problem{Model: m, Integers: ints}
}

// TestWorkersMatchSequential cross-checks the parallel warm-started engine
// against the sequential path on the package stress models: identical
// statuses and objectives to 1e-6 regardless of worker count.
func TestWorkersMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	problems := make([]Problem, 0, 20)
	for i := 0; i < 10; i++ {
		problems = append(problems, randomKnapsack(rng, 6+rng.Intn(8)))
	}
	for i := 0; i < 10; i++ {
		problems = append(problems, randomMixed(rng, 2+rng.Intn(5), 2+rng.Intn(3)))
	}
	for pi, p := range problems {
		seqRes, err := Solve(p, Options{Workers: 1})
		if err != nil {
			t.Fatalf("problem %d sequential: %v", pi, err)
		}
		for _, w := range []int{2, 4} {
			parRes, err := Solve(p, Options{Workers: w})
			if err != nil {
				t.Fatalf("problem %d workers=%d: %v", pi, w, err)
			}
			if parRes.Status != seqRes.Status {
				t.Fatalf("problem %d workers=%d: status %v, sequential %v", pi, w, parRes.Status, seqRes.Status)
			}
			if seqRes.HasSolution != parRes.HasSolution {
				t.Fatalf("problem %d workers=%d: HasSolution %v vs %v", pi, w, parRes.HasSolution, seqRes.HasSolution)
			}
			if seqRes.HasSolution && math.Abs(parRes.Objective-seqRes.Objective) > 1e-6 {
				t.Fatalf("problem %d workers=%d: objective %.12g, sequential %.12g",
					pi, w, parRes.Objective, seqRes.Objective)
			}
			if parRes.HasSolution {
				// The incumbent must actually be integer feasible.
				for _, v := range p.Integers {
					if f := parRes.X[v]; math.Abs(f-math.Round(f)) > 1e-6 {
						t.Fatalf("problem %d workers=%d: non-integral incumbent %v", pi, w, parRes.X)
					}
				}
				if fe := p.Model.FeasibilityError(parRes.X); fe > 1e-5 {
					t.Fatalf("problem %d workers=%d: incumbent infeasible by %g", pi, w, fe)
				}
			}
		}
	}
}

// TestWorkersDeterministic re-runs a parallel solve and demands bitwise
// identical results: batch-synchronous scheduling makes the search a pure
// function of (problem, worker count).
func TestWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	p := randomKnapsack(rng, 14)
	a, err := Solve(p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes != b.Nodes || a.LPPivots != b.LPPivots {
		t.Fatalf("node/pivot accounting differs across runs: %d/%d vs %d/%d",
			a.Nodes, a.LPPivots, b.Nodes, b.LPPivots)
	}
	if a.Objective != b.Objective || a.Bound != b.Bound {
		t.Fatalf("objective/bound differ across runs: %g/%g vs %g/%g",
			a.Objective, a.Bound, b.Objective, b.Bound)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("incumbent differs at %d: %g vs %g", i, a.X[i], b.X[i])
		}
	}
}

// TestWorkersAgainstBruteForce repeats the brute-force cross-check with the
// parallel engine — exactness, not just seq/par agreement.
func TestWorkersAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(7)
		p := randomKnapsack(rng, n)
		res, err := Solve(p, Options{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		best := 0.0
		x := make([]float64, p.Model.NumVariables())
		for mask := 0; mask < 1<<n; mask++ {
			var val float64
			for i, v := range p.Integers {
				x[v] = float64((mask >> i) & 1)
				val += x[v] * p.Model.Objective(v)
			}
			if p.Model.FeasibilityError(x) > 1e-9 {
				continue
			}
			if val > best {
				best = val
			}
		}
		if math.Abs(res.Objective-best) > 1e-5 {
			t.Fatalf("trial %d: milp=%g bruteforce=%g", trial, res.Objective, best)
		}
	}
}

// TestWarmStartReducesPivots sanity-checks that the warm-started engine
// does less simplex work than a cold engine would: the LP pivot total for a
// tree of N nodes must come in well under N times the root relaxation cost.
func TestWarmStartReducesPivots(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	p := randomKnapsack(rng, 16)
	res, err := Solve(p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	rootSol, err := lp.Solve(p.Model, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes < 3 {
		t.Skip("tree too small to measure warm-start effect")
	}
	coldEstimate := res.Nodes * rootSol.Iterations
	if coldEstimate > 0 && res.LPPivots >= coldEstimate {
		t.Fatalf("warm-started tree used %d pivots over %d nodes; cold estimate %d — warm start ineffective",
			res.LPPivots, res.Nodes, coldEstimate)
	}
}
