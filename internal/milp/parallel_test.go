package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
)

// randomKnapsack builds a maximization knapsack with n binaries.
func randomKnapsack(rng *rand.Rand, n int) Problem {
	m := lp.NewModel()
	ints := make([]int, n)
	terms := make([]lp.Term, n)
	var wsum float64
	for i := 0; i < n; i++ {
		ints[i] = m.AddVariable(0, 1, "")
		m.SetObjective(ints[i], rng.Float64()*10+0.1)
		w := rng.Float64()*5 + 0.1
		terms[i] = lp.Term{Var: ints[i], Coeff: w}
		wsum += w
	}
	m.SetMaximize(true)
	m.AddConstraint(terms, lp.LE, wsum*(0.3+0.4*rng.Float64()), "cap")
	return Problem{Model: m, Integers: ints}
}

// randomMixed builds a mixed binary/continuous problem feasible at the origin.
func randomMixed(rng *rand.Rand, nBin, nCont int) Problem {
	m := lp.NewModel()
	var ints []int
	for i := 0; i < nBin; i++ {
		v := m.AddVariable(0, 1, "")
		m.SetObjective(v, rng.Float64()*4-2)
		ints = append(ints, v)
	}
	for i := 0; i < nCont; i++ {
		v := m.AddVariable(-1, 1, "")
		m.SetObjective(v, rng.Float64()*4-2)
	}
	m.SetMaximize(true)
	total := nBin + nCont
	for r := 0; r < 3; r++ {
		terms := make([]lp.Term, 0, total)
		for v := 0; v < total; v++ {
			if rng.Float64() < 0.7 {
				terms = append(terms, lp.Term{Var: v, Coeff: rng.Float64()*2 - 1})
			}
		}
		if len(terms) > 0 {
			m.AddConstraint(terms, lp.LE, rng.Float64()+0.1, "")
		}
	}
	return Problem{Model: m, Integers: ints}
}

// TestWorkersMatchSequential cross-checks the parallel warm-started engine
// against the sequential path on the package stress models: identical
// statuses and objectives to 1e-6 regardless of worker count.
func TestWorkersMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	problems := make([]Problem, 0, 20)
	for i := 0; i < 10; i++ {
		problems = append(problems, randomKnapsack(rng, 6+rng.Intn(8)))
	}
	for i := 0; i < 10; i++ {
		problems = append(problems, randomMixed(rng, 2+rng.Intn(5), 2+rng.Intn(3)))
	}
	for pi, p := range problems {
		seqRes, err := Solve(p, Options{Workers: 1})
		if err != nil {
			t.Fatalf("problem %d sequential: %v", pi, err)
		}
		for _, w := range []int{2, 4} {
			parRes, err := Solve(p, Options{Workers: w})
			if err != nil {
				t.Fatalf("problem %d workers=%d: %v", pi, w, err)
			}
			if parRes.Status != seqRes.Status {
				t.Fatalf("problem %d workers=%d: status %v, sequential %v", pi, w, parRes.Status, seqRes.Status)
			}
			if seqRes.HasSolution != parRes.HasSolution {
				t.Fatalf("problem %d workers=%d: HasSolution %v vs %v", pi, w, parRes.HasSolution, seqRes.HasSolution)
			}
			if seqRes.HasSolution && math.Abs(parRes.Objective-seqRes.Objective) > 1e-6 {
				t.Fatalf("problem %d workers=%d: objective %.12g, sequential %.12g",
					pi, w, parRes.Objective, seqRes.Objective)
			}
			if parRes.HasSolution {
				// The incumbent must actually be integer feasible.
				for _, v := range p.Integers {
					if f := parRes.X[v]; math.Abs(f-math.Round(f)) > 1e-6 {
						t.Fatalf("problem %d workers=%d: non-integral incumbent %v", pi, w, parRes.X)
					}
				}
				if fe := p.Model.FeasibilityError(parRes.X); fe > 1e-5 {
					t.Fatalf("problem %d workers=%d: incumbent infeasible by %g", pi, w, fe)
				}
			}
		}
	}
}

// TestWorkersDeterministic re-runs a parallel solve and demands bitwise
// identical results: batch-synchronous scheduling makes the search a pure
// function of (problem, worker count).
func TestWorkersDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	p := randomKnapsack(rng, 14)
	a, err := Solve(p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Nodes != b.Nodes || a.LPPivots != b.LPPivots {
		t.Fatalf("node/pivot accounting differs across runs: %d/%d vs %d/%d",
			a.Nodes, a.LPPivots, b.Nodes, b.LPPivots)
	}
	if a.Objective != b.Objective || a.Bound != b.Bound {
		t.Fatalf("objective/bound differ across runs: %g/%g vs %g/%g",
			a.Objective, a.Bound, b.Objective, b.Bound)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatalf("incumbent differs at %d: %g vs %g", i, a.X[i], b.X[i])
		}
	}
}

// TestWorkersAgainstBruteForce repeats the brute-force cross-check with the
// parallel engine — exactness, not just seq/par agreement.
func TestWorkersAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 12; trial++ {
		n := 4 + rng.Intn(7)
		p := randomKnapsack(rng, n)
		res, err := Solve(p, Options{Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}
		best := 0.0
		x := make([]float64, p.Model.NumVariables())
		for mask := 0; mask < 1<<n; mask++ {
			var val float64
			for i, v := range p.Integers {
				x[v] = float64((mask >> i) & 1)
				val += x[v] * p.Model.Objective(v)
			}
			if p.Model.FeasibilityError(x) > 1e-9 {
				continue
			}
			if val > best {
				best = val
			}
		}
		if math.Abs(res.Objective-best) > 1e-5 {
			t.Fatalf("trial %d: milp=%g bruteforce=%g", trial, res.Objective, best)
		}
	}
}

// TestWarmStartReducesPivots sanity-checks that the warm-started engine
// does less simplex work than a cold engine would: the LP pivot total for a
// tree of N nodes must come in well under N times the root relaxation cost.
func TestWarmStartReducesPivots(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	p := randomKnapsack(rng, 16)
	res, err := Solve(p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	rootSol, err := lp.Solve(p.Model, lp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes < 3 {
		t.Skip("tree too small to measure warm-start effect")
	}
	coldEstimate := res.Nodes * rootSol.Iterations
	if coldEstimate > 0 && res.LPPivots >= coldEstimate {
		t.Fatalf("warm-started tree used %d pivots over %d nodes; cold estimate %d — warm start ineffective",
			res.LPPivots, res.Nodes, coldEstimate)
	}
}

// TestCancellationAnytime exercises the context-aware engine: a solve
// cancelled mid-search (via a Progress callback, so the cancellation point
// is tied to the deterministic event stream) returns promptly with status
// Cancelled and a sound anytime bound, and re-running the same problem
// with a fixed worker count afterwards remains deterministic.
func TestCancellationAnytime(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	p := randomKnapsack(rng, 26)

	full, err := Solve(p, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if full.Status != Optimal {
		t.Fatalf("reference solve status %v", full.Status)
	}
	if full.Nodes < 8 {
		t.Skipf("tree too small (%d nodes) to cancel mid-search", full.Nodes)
	}

	// Cancel at the first progress event: either the first incumbent or the
	// progressPeriod mark, both tied to node counts rather than wall clock.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := 0
	res, err := SolveCtx(ctx, p, Options{
		Workers:  2,
		Progress: func(Event) { events++; cancel() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if events == 0 {
		t.Fatal("no progress events before completion")
	}
	if res.Status != Cancelled {
		t.Fatalf("status %v, want cancelled", res.Status)
	}
	if res.Nodes >= full.Nodes {
		t.Fatalf("cancellation did not stop the search early: %d vs full %d nodes", res.Nodes, full.Nodes)
	}
	// Anytime soundness (maximize direction): the proven bound must be at
	// least the true optimum, any incumbent at most the true optimum.
	if res.Bound < full.Objective-1e-6 {
		t.Fatalf("anytime bound %g below true optimum %g", res.Bound, full.Objective)
	}
	if res.HasSolution && res.Objective > full.Objective+1e-6 {
		t.Fatalf("anytime incumbent %g above true optimum %g", res.Objective, full.Objective)
	}

	// A cancelled run must not perturb later runs: the search stays a pure
	// function of (problem, worker count).
	again, err := Solve(p, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if again.Nodes != full.Nodes || again.LPPivots != full.LPPivots || again.Objective != full.Objective {
		t.Fatalf("post-cancellation re-run diverged: %d/%d/%g vs %d/%d/%g",
			again.Nodes, again.LPPivots, again.Objective, full.Nodes, full.LPPivots, full.Objective)
	}
}

// TestPreCancelledContext checks that an already-dead context returns
// immediately with the correct terminal status and a sound (vacuous) bound.
func TestPreCancelledContext(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	p := randomKnapsack(rng, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SolveCtx(ctx, p, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Cancelled {
		t.Fatalf("status %v, want cancelled", res.Status)
	}
	if res.Nodes != 0 || res.HasSolution {
		t.Fatalf("pre-cancelled solve did work: nodes=%d hasSolution=%v", res.Nodes, res.HasSolution)
	}
	if !math.IsInf(res.Bound, 1) { // maximize: no work proves nothing
		t.Fatalf("vacuous bound should be +Inf, got %g", res.Bound)
	}
}

// TestProgressEventStream checks the deterministic progress contract:
// events are emitted on incumbent improvements and at the node period,
// node counts are non-decreasing, and the final bound matches the result.
func TestProgressEventStream(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	p := randomKnapsack(rng, 22)
	var evs []Event
	res, err := Solve(p, Options{Workers: 2, Progress: func(ev Event) { evs = append(evs, ev) }})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if len(evs) == 0 {
		t.Fatal("no progress events")
	}
	lastNodes := 0
	for i, ev := range evs {
		if ev.Nodes < lastNodes {
			t.Fatalf("event %d: nodes went backwards (%d -> %d)", i, lastNodes, ev.Nodes)
		}
		lastNodes = ev.Nodes
		if ev.HasIncumbent && ev.Incumbent > ev.Bound+1e-6 {
			t.Fatalf("event %d: incumbent %g above bound %g (maximize)", i, ev.Incumbent, ev.Bound)
		}
	}
	// Determinism of the stream itself (minus wall-clock fields).
	var evs2 []Event
	if _, err := Solve(p, Options{Workers: 2, Progress: func(ev Event) { evs2 = append(evs2, ev) }}); err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(evs2) {
		t.Fatalf("event stream length differs across runs: %d vs %d", len(evs), len(evs2))
	}
	for i := range evs {
		a, b := evs[i], evs2[i]
		if a.Nodes != b.Nodes || a.Open != b.Open || a.HasIncumbent != b.HasIncumbent ||
			a.Incumbent != b.Incumbent || a.Bound != b.Bound {
			t.Fatalf("event %d differs across runs: %+v vs %+v", i, a, b)
		}
	}
}
