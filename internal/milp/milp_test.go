package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/lp"
)

const tol = 1e-6

func solveOK(t *testing.T, p Problem, opts Options) *Result {
	t.Helper()
	res, err := Solve(p, opts)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return res
}

func TestKnapsackSmall(t *testing.T) {
	// max 10a + 6b + 4c s.t. a+b+c<=2 (binaries). Optimum: a,b -> 16.
	m := lp.NewModel()
	var vars [3]int
	values := []float64{10, 6, 4}
	for i := range vars {
		vars[i] = m.AddVariable(0, 1, "")
		m.SetObjective(vars[i], values[i])
	}
	m.SetMaximize(true)
	m.AddConstraint([]lp.Term{{Var: vars[0], Coeff: 1}, {Var: vars[1], Coeff: 1}, {Var: vars[2], Coeff: 1}}, lp.LE, 2, "cap")
	res := solveOK(t, Problem{Model: m, Integers: vars[:]}, Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-16) > tol {
		t.Fatalf("objective = %g, want 16", res.Objective)
	}
	for _, v := range vars {
		if f := res.X[v]; math.Abs(f-math.Round(f)) > tol {
			t.Fatalf("non-integral solution %v", res.X)
		}
	}
}

// TestWeightedKnapsackAgainstBruteForce cross-checks branch-and-bound against
// exhaustive enumeration over all binary assignments on random knapsacks.
func TestWeightedKnapsackAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(7) // up to 10 binaries -> 1024 assignments
		values := make([]float64, n)
		weights := make([]float64, n)
		var wsum float64
		for i := range values {
			values[i] = rng.Float64()*10 + 0.1
			weights[i] = rng.Float64()*5 + 0.1
			wsum += weights[i]
		}
		capacity := wsum * (0.3 + 0.4*rng.Float64())

		m := lp.NewModel()
		ints := make([]int, n)
		terms := make([]lp.Term, n)
		for i := 0; i < n; i++ {
			ints[i] = m.AddVariable(0, 1, "")
			m.SetObjective(ints[i], values[i])
			terms[i] = lp.Term{Var: ints[i], Coeff: weights[i]}
		}
		m.SetMaximize(true)
		m.AddConstraint(terms, lp.LE, capacity, "cap")
		res := solveOK(t, Problem{Model: m, Integers: ints}, Options{})
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, res.Status)
		}

		best := 0.0
		for mask := 0; mask < 1<<n; mask++ {
			var v, w float64
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					v += values[i]
					w += weights[i]
				}
			}
			if w <= capacity+1e-9 && v > best {
				best = v
			}
		}
		if math.Abs(res.Objective-best) > 1e-5 {
			t.Fatalf("trial %d: milp=%g bruteforce=%g", trial, res.Objective, best)
		}
	}
}

func TestInfeasibleMILP(t *testing.T) {
	// x + y = 1 with both binaries forced to sum to 3: impossible.
	m := lp.NewModel()
	x := m.AddVariable(0, 1, "x")
	y := m.AddVariable(0, 1, "y")
	m.AddConstraint([]lp.Term{{Var: x, Coeff: 1}, {Var: y, Coeff: 1}}, lp.EQ, 3, "sum3")
	res := solveOK(t, Problem{Model: m, Integers: []int{x, y}}, Options{})
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestIntegerRounding(t *testing.T) {
	// max x s.t. 2x <= 5, x integer in [0,10] -> x = 2.
	m := lp.NewModel()
	x := m.AddVariable(0, 10, "x")
	m.SetObjective(x, 1)
	m.SetMaximize(true)
	m.AddConstraint([]lp.Term{{Var: x, Coeff: 2}}, lp.LE, 5, "half")
	res := solveOK(t, Problem{Model: m, Integers: []int{x}}, Options{})
	if res.Status != Optimal || math.Abs(res.Objective-2) > tol {
		t.Fatalf("status=%v obj=%g, want optimal 2", res.Status, res.Objective)
	}
}

func TestMixedContinuousInteger(t *testing.T) {
	// max 3b + y s.t. y <= 1.5 + b, y <= 4 - 2b, b binary, 0<=y<=10.
	// b=1: y <= 2.5 and y <= 2 -> 3+2 = 5. b=0: y <= 1.5 -> 1.5. Optimum 5.
	m := lp.NewModel()
	b := m.AddVariable(0, 1, "b")
	y := m.AddVariable(0, 10, "y")
	m.SetObjective(b, 3)
	m.SetObjective(y, 1)
	m.SetMaximize(true)
	m.AddConstraint([]lp.Term{{Var: y, Coeff: 1}, {Var: b, Coeff: -1}}, lp.LE, 1.5, "c1")
	m.AddConstraint([]lp.Term{{Var: y, Coeff: 1}, {Var: b, Coeff: 2}}, lp.LE, 4, "c2")
	res := solveOK(t, Problem{Model: m, Integers: []int{b}}, Options{})
	if res.Status != Optimal || math.Abs(res.Objective-5) > tol {
		t.Fatalf("status=%v obj=%g, want optimal 5", res.Status, res.Objective)
	}
}

func TestTimeLimitReported(t *testing.T) {
	// A knapsack big enough not to finish in a nanosecond.
	rng := rand.New(rand.NewSource(1))
	m := lp.NewModel()
	var ints []int
	terms := make([]lp.Term, 0, 30)
	for i := 0; i < 30; i++ {
		v := m.AddVariable(0, 1, "")
		m.SetObjective(v, rng.Float64()*10+1)
		terms = append(terms, lp.Term{Var: v, Coeff: rng.Float64()*5 + 1})
		ints = append(ints, v)
	}
	m.SetMaximize(true)
	m.AddConstraint(terms, lp.LE, 20, "cap")
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	res, err := SolveCtx(ctx, Problem{Model: m, Integers: ints}, Options{})
	if err != nil {
		t.Fatalf("SolveCtx: %v", err)
	}
	if res.Status != TimeLimit {
		t.Fatalf("status = %v, want time-limit", res.Status)
	}
}

func TestNodeLimitReported(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := lp.NewModel()
	var ints []int
	terms := make([]lp.Term, 0, 20)
	for i := 0; i < 20; i++ {
		v := m.AddVariable(0, 1, "")
		m.SetObjective(v, rng.Float64()*10+1)
		terms = append(terms, lp.Term{Var: v, Coeff: rng.Float64()*5 + 1})
		ints = append(ints, v)
	}
	m.SetMaximize(true)
	m.AddConstraint(terms, lp.LE, 13, "cap")
	res := solveOK(t, Problem{Model: m, Integers: ints}, Options{MaxNodes: 2})
	if res.Status != NodeLimit && res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Status == NodeLimit && res.Nodes > 2 {
		t.Fatalf("nodes = %d, exceeds limit", res.Nodes)
	}
}

func TestBoundDirectionMaximize(t *testing.T) {
	m := lp.NewModel()
	x := m.AddVariable(0, 1, "x")
	m.SetObjective(x, 7)
	m.SetMaximize(true)
	res := solveOK(t, Problem{Model: m, Integers: []int{x}}, Options{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Bound-res.Objective) > tol {
		t.Fatalf("bound %g should meet objective %g at optimality", res.Bound, res.Objective)
	}
}

func TestModelNotMutated(t *testing.T) {
	m := lp.NewModel()
	x := m.AddVariable(0, 1, "x")
	m.SetObjective(x, 1)
	m.SetMaximize(true)
	m.AddConstraint([]lp.Term{{Var: x, Coeff: 2}}, lp.LE, 1, "c")
	loBefore, hiBefore := m.Bounds(x)
	solveOK(t, Problem{Model: m, Integers: []int{x}}, Options{})
	loAfter, hiAfter := m.Bounds(x)
	if loBefore != loAfter || hiBefore != hiAfter {
		t.Fatal("Solve mutated the caller's model bounds")
	}
}

func TestSortedIntegers(t *testing.T) {
	p := Problem{Integers: []int{5, 1, 3}}
	got := p.SortedIntegers()
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("SortedIntegers = %v", got)
	}
	if p.Integers[0] != 5 {
		t.Fatal("SortedIntegers mutated the problem")
	}
}

func TestGapEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := lp.NewModel()
	var ints []int
	terms := make([]lp.Term, 0, 16)
	for i := 0; i < 16; i++ {
		v := m.AddVariable(0, 1, "")
		m.SetObjective(v, rng.Float64()*10+1)
		terms = append(terms, lp.Term{Var: v, Coeff: rng.Float64()*5 + 1})
		ints = append(ints, v)
	}
	m.SetMaximize(true)
	m.AddConstraint(terms, lp.LE, 11, "cap")
	loose := solveOK(t, Problem{Model: m, Integers: ints}, Options{Gap: 0.5})
	exact := solveOK(t, Problem{Model: m, Integers: ints}, Options{})
	if !loose.HasSolution || !exact.HasSolution {
		t.Fatal("both solves should find solutions")
	}
	if loose.Objective > exact.Objective+tol {
		t.Fatalf("loose solve objective %g exceeds exact optimum %g", loose.Objective, exact.Objective)
	}
}
