package highway

import (
	"testing"
)

// recklessDatasetConfig builds a fleet with many reckless drivers at high
// density so unsafe cut-ins actually happen.
func recklessDatasetConfig() DatasetConfig {
	cfg := DefaultDatasetConfig()
	cfg.Sim.RecklessFraction = 0.7
	cfg.Sim.NumVehicles = 36
	cfg.Sim.SpeedJitter = 0.4
	cfg.Episodes = 4
	cfg.StepsPerEpisode = 300
	return cfg
}

// TestRecklessFleetProducesPropertyViolations checks that reckless drivers
// generate exactly the risky data Sec. II (C) validation exists to catch:
// samples commanding a left move while the sensed left slot is occupied.
func TestRecklessFleetProducesPropertyViolations(t *testing.T) {
	data, err := GenerateDataset(recklessDatasetConfig())
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	for _, s := range data {
		if LeftOccupiedInFeatures(s.X) && s.Y[0] > 1e-9 {
			violations++
		}
	}
	if violations == 0 {
		t.Fatal("reckless fleet produced no property-violating samples; data validation has nothing to catch")
	}
}

// TestRecklessFleetStillCollisionFree: reckless ≠ suicidal — cut-ins are
// harsh but the physical gap checks still hold, so the simulator invariant
// survives.
func TestRecklessFleetStillCollisionFree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RecklessFraction = 0.7
	cfg.NumVehicles = 30
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		s.Step(0.25)
		if bad := s.CollisionCheck(); len(bad) != 0 {
			t.Fatalf("collision at step %d: %v", i, bad)
		}
	}
}

func TestRecklessFractionZeroMeansNone(t *testing.T) {
	s, err := NewSim(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range s.Vehicles {
		if v.Reckless {
			t.Fatal("default config spawned a reckless driver")
		}
	}
}
