package highway

import (
	"fmt"
	"math"
)

// Feature layout. The predictor input is exactly 84-dimensional, matching
// the paper's description: (i) ego speed profile, (ii) parameters of the
// nearest surrounding vehicle for each orientation, (iii) road condition.
//
//	[0,12)   ego block: 8 speed-history samples, lateral velocity,
//	         acceleration, lane index, lane-center offset
//	[12,76)  8 orientations × 8 neighbor parameters
//	[76,84)  road condition block
//
// Every feature is normalized to [0,1]; the normalization constants below
// are part of the public contract because verification regions and
// traceability reports are phrased in terms of them.
const (
	// EgoHistLen is the number of speed-history samples in the ego block.
	EgoHistLen = 8
	// EgoBlockLen is the total width of the ego block.
	EgoBlockLen = EgoHistLen + 4
	// NumOrientations is the number of sensed neighbor slots.
	NumOrientations = 8
	// NumNeighborParams is the number of features per neighbor slot.
	NumNeighborParams = 8
	// RoadBlockLen is the width of the road-condition block.
	RoadBlockLen = 8
	// FeatureDim is the full input dimension (84, as in the paper).
	FeatureDim = EgoBlockLen + NumOrientations*NumNeighborParams + RoadBlockLen
)

// Orientation identifies one sensed neighbor slot around the ego vehicle.
type Orientation int

// Orientations, counted clockwise from the left neighbor. "Left" means
// alongside in the adjacent left lane — the slot the safety property
// quantifies over.
const (
	Left Orientation = iota
	FrontLeft
	Front
	FrontRight
	Right
	RearRight
	Rear
	RearLeft
)

// String returns the orientation name.
func (o Orientation) String() string {
	switch o {
	case Left:
		return "left"
	case FrontLeft:
		return "front-left"
	case Front:
		return "front"
	case FrontRight:
		return "front-right"
	case Right:
		return "right"
	case RearRight:
		return "rear-right"
	case Rear:
		return "rear"
	case RearLeft:
		return "rear-left"
	}
	return fmt.Sprintf("Orientation(%d)", int(o))
}

// NeighborParam identifies one feature within a neighbor slot.
type NeighborParam int

// Neighbor slot parameters.
const (
	// NPPresence is 1 when a vehicle occupies the slot within sensor range.
	NPPresence NeighborParam = iota
	// NPGap is the normalized bumper distance (0 = touching, 1 = out of range).
	NPGap
	// NPClosing is the normalized closing speed (rate the gap shrinks).
	NPClosing
	// NPRelSpeed is the normalized speed difference (other − ego).
	NPRelSpeed
	// NPLatOffset is the neighbor's lane-change progress.
	NPLatOffset
	// NPLength is the normalized vehicle length.
	NPLength
	// NPSpeed is the neighbor's normalized absolute speed.
	NPSpeed
	// NPHeadway is the normalized time headway to the neighbor.
	NPHeadway
)

// Normalization constants (public contract of the feature encoding).
const (
	// MaxSpeed normalizes absolute speeds (m/s).
	MaxSpeed = 45.0
	// SensorRange is the forward/backward sensing distance (m).
	SensorRange = 100.0
	// MaxRelSpeed bounds speed differences at ±MaxRelSpeed (m/s).
	MaxRelSpeed = 20.0
	// MaxLatVel bounds lateral velocity at ±MaxLatVel (m/s).
	MaxLatVel = 3.0
	// AccelLo and AccelHi bound longitudinal acceleration (m/s²).
	AccelLo = -9.0
	AccelHi = 4.0
	// MaxVehLen normalizes vehicle lengths (m).
	MaxVehLen = 20.0
	// MaxHeadway caps time headway (s).
	MaxHeadway = 10.0
	// MaxLanes normalizes the lane count.
	MaxLanes = 6.0
	// MaxCurvature normalizes road curvature (1/m).
	MaxCurvature = 0.01
	// MaxLaneWidth normalizes lane width (m).
	MaxLaneWidth = 5.0
	// MaxDensity normalizes vehicle density (veh/km/lane).
	MaxDensity = 50.0
)

// Ego block feature indices.
const (
	// EgoLatVel indexes the ego's current lateral velocity.
	EgoLatVel = EgoHistLen
	// EgoAccel indexes the ego's longitudinal acceleration.
	EgoAccel = EgoHistLen + 1
	// EgoLane indexes the normalized ego lane.
	EgoLane = EgoHistLen + 2
	// EgoLaneOffset indexes the ego's lane-center offset.
	EgoLaneOffset = EgoHistLen + 3
)

// NeighborFeature returns the global feature index of (orientation, param).
func NeighborFeature(o Orientation, p NeighborParam) int {
	return EgoBlockLen + int(o)*NumNeighborParams + int(p)
}

// Road block feature indices.
const (
	RoadLanes = EgoBlockLen + NumOrientations*NumNeighborParams + iota
	RoadSpeedLimit
	RoadCurvature
	RoadFriction
	RoadLaneWidth
	RoadShoulderLeft
	RoadShoulderRight
	RoadDensity
)

// FeatureNames returns the 84 human-readable feature names in index order —
// the vocabulary of the traceability reports (Sec. II (A)).
func FeatureNames() []string {
	names := make([]string, 0, FeatureDim)
	for i := 0; i < EgoHistLen; i++ {
		names = append(names, fmt.Sprintf("ego.speed[t-%d]", EgoHistLen-1-i))
	}
	names = append(names, "ego.lat_vel", "ego.accel", "ego.lane", "ego.lane_offset")
	params := []string{"presence", "gap", "closing", "rel_speed", "lat_offset", "length", "speed", "headway"}
	for o := Orientation(0); o < NumOrientations; o++ {
		for _, p := range params {
			names = append(names, fmt.Sprintf("nbr.%s.%s", o, p))
		}
	}
	names = append(names,
		"road.lanes", "road.speed_limit", "road.curvature", "road.friction",
		"road.lane_width", "road.shoulder_left", "road.shoulder_right", "road.density")
	return names
}

func norm01(v, lo, hi float64) float64 {
	if hi <= lo {
		return 0
	}
	x := (v - lo) / (hi - lo)
	return math.Max(0, math.Min(1, x))
}

// Neighbor is one sensed vehicle relative to the ego.
type Neighbor struct {
	Present   bool
	Gap       float64 // bumper distance, m (0 when alongside/overlapping)
	RelSpeed  float64 // other − ego, m/s
	Closing   float64 // rate the gap shrinks, m/s (positive = approaching)
	LatOffset float64 // neighbor's lane-change progress, 0..1
	Length    float64
	Speed     float64
	Headway   float64 // gap / ego speed, s
}

// Observation is the full sensor picture around the ego vehicle.
type Observation struct {
	Ego       *Vehicle
	Neighbors [NumOrientations]Neighbor
	Road      RoadCondition
}

// Observe builds the sensor observation for the ego vehicle.
func (s *Sim) Observe(ego *Vehicle) *Observation {
	obs := &Observation{Ego: ego, Road: s.Road}
	left, right := ego.Lane+1, ego.Lane-1

	fill := func(o Orientation, w *Vehicle, gap float64) {
		if w == nil || gap > SensorRange {
			return
		}
		n := &obs.Neighbors[o]
		n.Present = true
		n.Gap = math.Max(0, gap)
		n.RelSpeed = w.Speed - ego.Speed
		n.LatOffset = w.LatOffset
		n.Length = w.Length
		n.Speed = w.Speed
		if ego.Speed > 0.1 {
			n.Headway = n.Gap / ego.Speed
		} else {
			n.Headway = MaxHeadway
		}
		switch o {
		case Front, FrontLeft, FrontRight:
			n.Closing = ego.Speed - w.Speed
		case Rear, RearLeft, RearRight:
			n.Closing = w.Speed - ego.Speed
		default: // alongside: closing is lateral, approximate with 0
			n.Closing = 0
		}
	}

	if lead := s.leaderIn(ego, ego.Lane); lead != nil {
		fill(Front, lead, s.gapTo(ego, lead))
	}
	if fol := s.followerIn(ego, ego.Lane); fol != nil {
		fill(Rear, fol, s.gapTo(fol, ego))
	}
	if left < s.Road.Lanes {
		s.fillSide(obs, ego, left, Left, FrontLeft, RearLeft, fill)
	}
	if right >= 0 {
		s.fillSide(obs, ego, right, Right, FrontRight, RearRight, fill)
	}
	return obs
}

// fillSide senses one adjacent lane: the alongside slot plus ahead/behind.
func (s *Sim) fillSide(obs *Observation, ego *Vehicle, lane int, side, frontO, rearO Orientation, fill func(Orientation, *Vehicle, float64)) {
	// Alongside: nearest overlap within the window.
	var alongside *Vehicle
	bestAbs := AlongsideWindow
	for _, w := range s.Vehicles {
		if w == ego || w.Lane != lane {
			continue
		}
		fwd := math.Mod(w.Pos-ego.Pos+s.Length, s.Length)
		d := math.Min(fwd, s.Length-fwd)
		if d <= bestAbs {
			alongside, bestAbs = w, d
		}
	}
	if alongside != nil {
		fill(side, alongside, 0)
	}
	if lead := s.leaderIn(ego, lane); lead != nil && lead != alongside {
		fill(frontO, lead, s.gapTo(ego, lead))
	}
	if fol := s.followerIn(ego, lane); fol != nil && fol != alongside {
		fill(rearO, fol, s.gapTo(fol, ego))
	}
}

// Encode renders the observation as the 84-dimensional normalized feature
// vector consumed by the predictor.
func (obs *Observation) Encode() []float64 {
	x := make([]float64, FeatureDim)
	hist := obs.Ego.SpeedHistory(EgoHistLen)
	for i, v := range hist {
		x[i] = norm01(v, 0, MaxSpeed)
	}
	x[EgoLatVel] = norm01(obs.Ego.LatVel, -MaxLatVel, MaxLatVel)
	x[EgoAccel] = norm01(obs.Ego.Accel, AccelLo, AccelHi)
	x[EgoLane] = norm01(float64(obs.Ego.Lane), 0, MaxLanes-1)
	x[EgoLaneOffset] = norm01(obs.Ego.LatOffset, 0, 1)

	for o := Orientation(0); o < NumOrientations; o++ {
		n := obs.Neighbors[o]
		base := func(p NeighborParam) int { return NeighborFeature(o, p) }
		if !n.Present {
			// Absent: presence 0, gap saturated at max, neutral speeds.
			x[base(NPPresence)] = 0
			x[base(NPGap)] = 1
			x[base(NPClosing)] = 0.5
			x[base(NPRelSpeed)] = 0.5
			x[base(NPHeadway)] = 1
			continue
		}
		x[base(NPPresence)] = 1
		x[base(NPGap)] = norm01(n.Gap, 0, SensorRange)
		x[base(NPClosing)] = norm01(n.Closing, -MaxRelSpeed, MaxRelSpeed)
		x[base(NPRelSpeed)] = norm01(n.RelSpeed, -MaxRelSpeed, MaxRelSpeed)
		x[base(NPLatOffset)] = norm01(n.LatOffset, 0, 1)
		x[base(NPLength)] = norm01(n.Length, 0, MaxVehLen)
		x[base(NPSpeed)] = norm01(n.Speed, 0, MaxSpeed)
		x[base(NPHeadway)] = norm01(n.Headway, 0, MaxHeadway)
	}

	x[RoadLanes] = norm01(float64(obs.Road.Lanes), 0, MaxLanes)
	x[RoadSpeedLimit] = norm01(obs.Road.SpeedLimit, 0, MaxSpeed)
	x[RoadCurvature] = norm01(obs.Road.Curvature, -MaxCurvature, MaxCurvature)
	x[RoadFriction] = norm01(obs.Road.Friction, 0, 1)
	x[RoadLaneWidth] = norm01(obs.Road.LaneWidth, 0, MaxLaneWidth)
	if obs.Road.ShoulderLeft {
		x[RoadShoulderLeft] = 1
	}
	if obs.Road.ShoulderRight {
		x[RoadShoulderRight] = 1
	}
	x[RoadDensity] = norm01(obs.Road.Density, 0, MaxDensity)
	return x
}

// LeftOccupied reports whether the observation's left slot is occupied —
// the precondition of the paper's safety property.
func (obs *Observation) LeftOccupied() bool {
	return obs.Neighbors[Left].Present
}

// LeftOccupiedInFeatures reports the same predicate directly on an encoded
// feature vector (used by data validation and the hints loss).
func LeftOccupiedInFeatures(x []float64) bool {
	return x[NeighborFeature(Left, NPPresence)] > 0.5
}
