// Package highway implements the driving substrate of the case study: a
// multi-lane highway traffic simulator with IDM longitudinal control and
// MOBIL-style lane changing, a sensor model that observes the nearest
// vehicle in eight orientations around the ego vehicle, and the
// 84-dimensional feature encoding consumed by the motion predictor
// (the input layout of Lenz et al.'s network as described in the paper:
// ego speed profile, nearest surrounding vehicles per orientation, and
// road condition).
//
// The paper's training data is proprietary; this simulator is the
// documented substitution (see DESIGN.md): its safe driver never commands
// a left lane change while the left neighbor slot is occupied, so datasets
// generated here satisfy the safety property by construction — exactly the
// data-validation precondition of Sec. II (C).
package highway

import (
	"fmt"
	"math"
)

// IDMParams are Intelligent Driver Model parameters for one vehicle.
type IDMParams struct {
	DesiredSpeed float64 // v0: free-flow speed (m/s)
	TimeHeadway  float64 // T: desired time headway (s)
	MinGap       float64 // s0: jam distance (m)
	MaxAccel     float64 // a: maximum acceleration (m/s²)
	ComfortDecel float64 // b: comfortable braking deceleration (m/s², positive)
}

// DefaultIDM returns typical passenger-car IDM parameters.
func DefaultIDM() IDMParams {
	return IDMParams{
		DesiredSpeed: 30,
		TimeHeadway:  1.5,
		MinGap:       2,
		MaxAccel:     1.5,
		ComfortDecel: 2,
	}
}

// Accel computes the IDM acceleration for a vehicle at speed v following a
// leader gap meters ahead that travels deltaV slower (deltaV = v − vLead).
// A non-positive gap yields emergency braking.
func (p IDMParams) Accel(v, gap, deltaV float64) float64 {
	free := 1 - math.Pow(v/p.DesiredSpeed, 4)
	if gap <= 0.1 {
		return -9 // emergency stop: bumper contact imminent
	}
	sStar := p.MinGap + math.Max(0, v*p.TimeHeadway+v*deltaV/(2*math.Sqrt(p.MaxAccel*p.ComfortDecel)))
	inter := math.Pow(sStar/gap, 2)
	a := p.MaxAccel * (free - inter)
	return math.Max(a, -9)
}

// MOBILParams govern lane-change decisions.
type MOBILParams struct {
	Politeness   float64 // p: weight of other drivers' losses
	Threshold    float64 // Δa: minimum net advantage to bother changing (m/s²)
	SafeBraking  float64 // b_safe: max deceleration imposed on the new follower
	BiasRight    float64 // keep-right incentive added when moving right
	LateralSpeed float64 // commanded lateral speed while changing (m/s)
}

// DefaultMOBIL returns typical MOBIL parameters.
func DefaultMOBIL() MOBILParams {
	return MOBILParams{
		Politeness:   0.3,
		Threshold:    0.2,
		SafeBraking:  3,
		BiasRight:    0.1,
		LateralSpeed: 1.2,
	}
}

// Vehicle is one simulated vehicle on the ring highway.
type Vehicle struct {
	ID     int
	Pos    float64 // longitudinal position along the road (m), wraps at road length
	Speed  float64 // longitudinal speed (m/s)
	Accel  float64 // last applied longitudinal acceleration (m/s²)
	Lane   int     // current lane index; 0 is rightmost, increasing to the left
	Length float64 // vehicle length (m)

	// Lateral lane-change state.
	TargetLane int     // equals Lane when not changing
	LatOffset  float64 // progress towards TargetLane in [0,1); 0 = centered
	LatVel     float64 // most recent lateral velocity command (m/s, +left)

	// Reckless drivers cut into occupied neighbor slots (tiny alongside
	// margin, harsh imposed braking). They exist to generate the *risky*
	// training data that Sec. II (C) data validation must catch; the
	// default safe driver never produces it.
	Reckless bool

	IDM   IDMParams
	MOBIL MOBILParams

	speedHist []float64 // most recent speeds, newest last
}

// Changing reports whether the vehicle is mid lane-change.
func (v *Vehicle) Changing() bool { return v.TargetLane != v.Lane }

// SpeedHistory returns up to n most recent speeds, oldest first, padded at
// the front with the oldest known value when history is shorter than n.
func (v *Vehicle) SpeedHistory(n int) []float64 {
	out := make([]float64, n)
	h := v.speedHist
	if len(h) == 0 {
		for i := range out {
			out[i] = v.Speed
		}
		return out
	}
	for i := 0; i < n; i++ {
		idx := len(h) - n + i
		if idx < 0 {
			idx = 0
		}
		out[i] = h[idx]
	}
	return out
}

func (v *Vehicle) pushSpeed(maxKeep int) {
	v.speedHist = append(v.speedHist, v.Speed)
	if len(v.speedHist) > maxKeep {
		v.speedHist = v.speedHist[len(v.speedHist)-maxKeep:]
	}
}

// String renders a short vehicle summary.
func (v *Vehicle) String() string {
	return fmt.Sprintf("veh%d lane=%d pos=%.1f v=%.1f", v.ID, v.Lane, v.Pos, v.Speed)
}
