package highway

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickEncodeAlwaysInUnitBox: whatever state the simulator reaches, the
// feature encoding stays inside [0,1]^84 — the contract the verification
// region relies on.
func TestQuickEncodeAlwaysInUnitBox(t *testing.T) {
	f := func(seed int64, steps uint8) bool {
		cfg := DefaultConfig()
		cfg.Seed = seed
		cfg.SpeedJitter = 0.4
		s, err := NewSim(cfg)
		if err != nil {
			return false
		}
		s.Run(int(steps), 0.25)
		for _, v := range s.Vehicles {
			for _, f := range s.Observe(v).Encode() {
				if f < 0 || f > 1 || math.IsNaN(f) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIDMNeverExceedsEmergencyBraking: the IDM acceleration is always
// within physical limits regardless of inputs.
func TestQuickIDMNeverExceedsEmergencyBraking(t *testing.T) {
	p := DefaultIDM()
	f := func(v, gap, dv float64) bool {
		v = math.Abs(math.Mod(v, 50))
		gap = math.Abs(math.Mod(gap, 200))
		dv = math.Mod(dv, 40)
		if math.IsNaN(v) || math.IsNaN(gap) || math.IsNaN(dv) {
			return true
		}
		a := p.Accel(v, gap, dv)
		return a >= -9 && a <= p.MaxAccel+1e-9 && !math.IsNaN(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGapSymmetry: gap from v to w plus gap from w to v plus both
// lengths equals the ring length (same lane, distinct positions).
func TestQuickGapSymmetry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumVehicles = 2
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, b := s.Vehicles[0], s.Vehicles[1]
	a.Lane, b.Lane = 0, 0
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		a.Pos = rng.Float64() * s.Length
		b.Pos = rng.Float64() * s.Length
		if math.Abs(a.Pos-b.Pos) < 1e-9 {
			continue
		}
		sum := s.gapTo(a, b) + s.gapTo(b, a) + a.Length + b.Length
		if math.Abs(sum-s.Length) > 1e-6 {
			t.Fatalf("gap symmetry broken: %g != %g", sum, s.Length)
		}
	}
}

// TestObservationNeighborsDistinct: the same physical vehicle never fills
// two orientations of one observation (front/rear exclusion with the
// alongside slot).
func TestObservationNeighborsDistinct(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumVehicles = 12
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(300, 0.25)
	for _, ego := range s.Vehicles {
		obs := s.Observe(ego)
		// Reconstruct which vehicle each slot saw via exact speed+length
		// match (unique with overwhelming probability under jitter).
		type key struct{ speed, length float64 }
		seen := map[key]Orientation{}
		for o := Orientation(0); o < NumOrientations; o++ {
			n := obs.Neighbors[o]
			if !n.Present {
				continue
			}
			k := key{n.Speed, n.Length}
			if prev, dup := seen[k]; dup {
				// The same lane's alongside vs front/rear must not alias.
				sameSide := (o == Left && (prev == FrontLeft || prev == RearLeft)) ||
					(prev == Left && (o == FrontLeft || o == RearLeft)) ||
					(o == Right && (prev == FrontRight || prev == RearRight)) ||
					(prev == Right && (o == FrontRight || o == RearRight))
				if sameSide {
					t.Fatalf("vehicle aliased into %v and %v", prev, o)
				}
			}
			seen[k] = o
		}
	}
}
