package highway

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// RoadCondition captures the static context features of the scenario.
type RoadCondition struct {
	Lanes         int     // number of lanes
	SpeedLimit    float64 // m/s
	Curvature     float64 // 1/m, 0 = straight
	Friction      float64 // 0..1, 1 = dry asphalt
	LaneWidth     float64 // m
	ShoulderLeft  bool
	ShoulderRight bool
	Density       float64 // vehicles per km per lane (as spawned)
}

// DefaultRoad returns a dry three-lane highway.
func DefaultRoad() RoadCondition {
	return RoadCondition{
		Lanes:         3,
		SpeedLimit:    33.3, // 120 km/h
		Curvature:     0,
		Friction:      1,
		LaneWidth:     3.5,
		ShoulderLeft:  false,
		ShoulderRight: true,
		Density:       12,
	}
}

// Config describes a simulation to construct.
type Config struct {
	Road        RoadCondition
	Length      float64 // ring-road length in meters
	NumVehicles int
	Seed        int64
	// SpeedJitter randomizes desired speeds by ±fraction.
	SpeedJitter float64
	// RecklessFraction is the probability a spawned vehicle drives
	// recklessly (cutting into occupied slots). Zero for the safe fleet.
	RecklessFraction float64
}

// DefaultConfig returns a medium-density three-lane scenario.
func DefaultConfig() Config {
	return Config{
		Road:        DefaultRoad(),
		Length:      1000,
		NumVehicles: 24,
		Seed:        1,
		SpeedJitter: 0.2,
	}
}

// Sim is a ring-road multi-lane traffic simulation.
type Sim struct {
	Road     RoadCondition
	Length   float64
	Vehicles []*Vehicle
	Time     float64
	rng      *rand.Rand
	// speedHistLen controls how much per-vehicle speed history is kept
	// (the feature encoder needs EgoHistLen entries).
	speedHistLen int
}

// NewSim builds and populates a simulation. Vehicles are placed uniformly
// with jittered speeds; initial placement guarantees a minimum gap.
func NewSim(cfg Config) (*Sim, error) {
	if cfg.Road.Lanes < 1 {
		return nil, fmt.Errorf("highway: need at least one lane, got %d", cfg.Road.Lanes)
	}
	if cfg.Length < 100 {
		return nil, fmt.Errorf("highway: road length %.1f too short", cfg.Length)
	}
	perLane := int(math.Ceil(float64(cfg.NumVehicles) / float64(cfg.Road.Lanes)))
	minSpacing := cfg.Length / float64(perLane+1)
	if minSpacing < 12 {
		return nil, fmt.Errorf("highway: %d vehicles will not fit on %d lanes of %.0fm", cfg.NumVehicles, cfg.Road.Lanes, cfg.Length)
	}
	s := &Sim{
		Road:         cfg.Road,
		Length:       cfg.Length,
		rng:          rand.New(rand.NewSource(cfg.Seed)),
		speedHistLen: EgoHistLen,
	}
	for i := 0; i < cfg.NumVehicles; i++ {
		lane := i % cfg.Road.Lanes
		slot := i / cfg.Road.Lanes
		idm := DefaultIDM()
		idm.DesiredSpeed = cfg.Road.SpeedLimit * (1 + cfg.SpeedJitter*(2*s.rng.Float64()-1))
		v := &Vehicle{
			ID:         i,
			Pos:        math.Mod(float64(slot)*minSpacing+s.rng.Float64()*minSpacing*0.3, cfg.Length),
			Speed:      idm.DesiredSpeed * (0.8 + 0.2*s.rng.Float64()),
			Lane:       lane,
			TargetLane: lane,
			Length:     4.5,
			Reckless:   s.rng.Float64() < cfg.RecklessFraction,
			IDM:        idm,
			MOBIL:      DefaultMOBIL(),
		}
		s.Vehicles = append(s.Vehicles, v)
	}
	return s, nil
}

// gapTo returns the bumper-to-bumper distance from v forward to w along the
// ring (always in [0, Length)).
func (s *Sim) gapTo(v, w *Vehicle) float64 {
	d := math.Mod(w.Pos-v.Pos+s.Length, s.Length)
	return d - w.Length
}

// occupiesLane reports whether w occupies the given lane: its physical lane,
// or — while mid lane-change — also its target lane. Treating a merging
// vehicle as present in both lanes makes followers brake for it and
// prevents merge collisions.
func occupiesLane(w *Vehicle, lane int) bool {
	return w.Lane == lane || (w.Changing() && w.TargetLane == lane)
}

// leaderIn returns the nearest vehicle ahead of v in the given lane
// (excluding v itself), or nil when the lane is empty.
func (s *Sim) leaderIn(v *Vehicle, lane int) *Vehicle {
	var best *Vehicle
	bestD := math.Inf(1)
	for _, w := range s.Vehicles {
		if w == v || !occupiesLane(w, lane) {
			continue
		}
		d := math.Mod(w.Pos-v.Pos+s.Length, s.Length)
		if d > 0 && d < bestD {
			best, bestD = w, d
		}
	}
	return best
}

// followerIn returns the nearest vehicle behind v in the given lane.
func (s *Sim) followerIn(v *Vehicle, lane int) *Vehicle {
	var best *Vehicle
	bestD := math.Inf(1)
	for _, w := range s.Vehicles {
		if w == v || !occupiesLane(w, lane) {
			continue
		}
		d := math.Mod(v.Pos-w.Pos+s.Length, s.Length)
		if d > 0 && d < bestD {
			best, bestD = w, d
		}
	}
	return best
}

// accelTowards computes v's IDM acceleration if it drove in `lane`.
func (s *Sim) accelTowards(v *Vehicle, lane int) float64 {
	lead := s.leaderIn(v, lane)
	if lead == nil {
		return v.IDM.Accel(v.Speed, math.Inf(1), 0)
	}
	return v.IDM.Accel(v.Speed, s.gapTo(v, lead), v.Speed-lead.Speed)
}

// laneChangeSafe checks MOBIL's safety criterion: the would-be follower in
// the target lane must not need to brake harder than SafeBraking, and a
// minimum physical gap must exist both ways. Reckless drivers use a much
// smaller alongside margin and impose near-emergency braking on others —
// enough to produce property-violating data without physical collisions.
func (s *Sim) laneChangeSafe(v *Vehicle, lane int) bool {
	if lane < 0 || lane >= s.Road.Lanes {
		return false
	}
	window := AlongsideWindow
	braking := v.MOBIL.SafeBraking
	if v.Reckless {
		window = recklessWindow
		braking = 8
	}
	if s.occupiedAlongside(v, lane, window) {
		return false
	}
	if fol := s.followerIn(v, lane); fol != nil {
		gap := s.gapTo(fol, v)
		if gap < fol.IDM.MinGap {
			return false
		}
		a := fol.IDM.Accel(fol.Speed, gap, fol.Speed-v.Speed)
		if a < -braking {
			return false
		}
	}
	if lead := s.leaderIn(v, lane); lead != nil {
		if s.gapTo(v, lead) < v.IDM.MinGap {
			return false
		}
	}
	return true
}

// recklessWindow is the reduced alongside margin a reckless driver accepts:
// well inside AlongsideWindow, so a reckless left change still registers as
// "left occupied" on the sensor — a recorded property violation.
const recklessWindow = 5.5

// AlongsideWindow is the longitudinal distance (m) within which a vehicle in
// an adjacent lane counts as "alongside" — i.e. occupying the neighbor slot
// the safety property quantifies over.
const AlongsideWindow = 8.0

// occupiedAlongside reports whether some vehicle in `lane` overlaps v's
// position within the window.
func (s *Sim) occupiedAlongside(v *Vehicle, lane int, window float64) bool {
	for _, w := range s.Vehicles {
		if w == v || !occupiesLane(w, lane) {
			continue
		}
		fwd := math.Mod(w.Pos-v.Pos+s.Length, s.Length)
		back := s.Length - fwd
		if math.Min(fwd, back) <= window {
			return true
		}
	}
	return false
}

// mobilDecision returns the lane v's safe driver wants to move to
// (v.Lane when staying).
func (s *Sim) mobilDecision(v *Vehicle) int {
	if v.Changing() {
		return v.TargetLane
	}
	aHere := s.accelTowards(v, v.Lane)
	best, bestGain := v.Lane, v.MOBIL.Threshold
	for _, lane := range []int{v.Lane + 1, v.Lane - 1} { // +1 = left
		if lane < 0 || lane >= s.Road.Lanes {
			continue
		}
		if !s.laneChangeSafe(v, lane) {
			continue
		}
		gain := s.accelTowards(v, lane) - aHere
		// Politeness: subtract the loss imposed on the new follower.
		if fol := s.followerIn(v, lane); fol != nil {
			before := s.accelTowards(fol, fol.Lane)
			gapAfter := s.gapTo(fol, v)
			after := fol.IDM.Accel(fol.Speed, gapAfter, fol.Speed-v.Speed)
			gain -= v.MOBIL.Politeness * (before - after)
		}
		if lane < v.Lane {
			gain += v.MOBIL.BiasRight
		}
		if gain > bestGain {
			best, bestGain = lane, gain
		}
	}
	return best
}

// Step advances the simulation by dt seconds: every vehicle picks an IDM
// acceleration and a MOBIL lane decision, then states integrate.
func (s *Sim) Step(dt float64) {
	type plan struct {
		accel float64
		lane  int
	}
	plans := make([]plan, len(s.Vehicles))
	for i, v := range s.Vehicles {
		a := s.accelTowards(v, v.Lane)
		if v.Changing() {
			// A merging vehicle must satisfy the leaders of both lanes.
			a = math.Min(a, s.accelTowards(v, v.TargetLane))
		}
		plans[i] = plan{accel: a, lane: s.mobilDecision(v)}
	}
	for i, v := range s.Vehicles {
		p := plans[i]
		v.Accel = p.accel
		v.Speed = math.Max(0, v.Speed+p.accel*dt)
		v.Pos = math.Mod(v.Pos+v.Speed*dt+s.Length, s.Length)
		if p.lane != v.Lane && !v.Changing() {
			v.TargetLane = p.lane
		}
		// Lateral integration: progress towards the target lane.
		if v.Changing() {
			dir := 1.0
			if v.TargetLane < v.Lane {
				dir = -1
			}
			v.LatVel = dir * v.MOBIL.LateralSpeed
			v.LatOffset += v.MOBIL.LateralSpeed * dt / s.Road.LaneWidth
			if v.LatOffset >= 1 {
				v.Lane = v.TargetLane
				v.LatOffset = 0
				v.LatVel = 0
			}
		} else {
			v.LatVel = 0
		}
		v.pushSpeed(s.speedHistLen)
	}
	s.Time += dt
}

// Run advances the simulation n steps of dt seconds each.
func (s *Sim) Run(n int, dt float64) {
	for i := 0; i < n; i++ {
		s.Step(dt)
	}
}

// VehiclesInLane returns the vehicles of one lane ordered by position.
func (s *Sim) VehiclesInLane(lane int) []*Vehicle {
	var out []*Vehicle
	for _, v := range s.Vehicles {
		if v.Lane == lane {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// CollisionCheck returns pairs of vehicles in the same lane whose bumpers
// overlap — the simulator invariant tests assert this stays empty.
func (s *Sim) CollisionCheck() [][2]int {
	var bad [][2]int
	for lane := 0; lane < s.Road.Lanes; lane++ {
		vs := s.VehiclesInLane(lane)
		for i := range vs {
			next := vs[(i+1)%len(vs)]
			if next == vs[i] {
				continue
			}
			if s.gapTo(vs[i], next) < 0 {
				bad = append(bad, [2]int{vs[i].ID, next.ID})
			}
		}
	}
	return bad
}
