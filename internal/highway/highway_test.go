package highway

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func newTestSim(t *testing.T, cfg Config) *Sim {
	t.Helper()
	s, err := NewSim(cfg)
	if err != nil {
		t.Fatalf("NewSim: %v", err)
	}
	return s
}

func TestIDMFreeRoadAcceleratesTowardsDesired(t *testing.T) {
	p := DefaultIDM()
	if a := p.Accel(p.DesiredSpeed/2, math.Inf(1), 0); a <= 0 {
		t.Fatalf("half speed on free road should accelerate, got %g", a)
	}
	if a := p.Accel(p.DesiredSpeed, math.Inf(1), 0); math.Abs(a) > 1e-9 {
		t.Fatalf("at desired speed acceleration should vanish, got %g", a)
	}
	if a := p.Accel(p.DesiredSpeed*1.2, math.Inf(1), 0); a >= 0 {
		t.Fatalf("above desired speed should decelerate, got %g", a)
	}
}

func TestIDMBrakesWhenClosingFast(t *testing.T) {
	p := DefaultIDM()
	// 30 m/s, leader 20 m ahead and 10 m/s slower: hard braking expected.
	if a := p.Accel(30, 20, 10); a > -1 {
		t.Fatalf("closing fast should brake hard, got %g", a)
	}
	if a := p.Accel(30, 0.05, 0); a != -9 {
		t.Fatalf("bumper contact should emergency-brake, got %g", a)
	}
}

func TestNewSimValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Road.Lanes = 0
	if _, err := NewSim(cfg); err == nil {
		t.Fatal("zero lanes accepted")
	}
	cfg = DefaultConfig()
	cfg.Length = 50
	if _, err := NewSim(cfg); err == nil {
		t.Fatal("tiny road accepted")
	}
	cfg = DefaultConfig()
	cfg.NumVehicles = 500
	if _, err := NewSim(cfg); err == nil {
		t.Fatal("overcrowded road accepted")
	}
}

func TestSimNoCollisionsLongRun(t *testing.T) {
	s := newTestSim(t, DefaultConfig())
	for i := 0; i < 2000; i++ {
		s.Step(0.25)
		if bad := s.CollisionCheck(); len(bad) != 0 {
			t.Fatalf("collision at step %d: %v", i, bad)
		}
	}
}

func TestSimSpeedsStayReasonable(t *testing.T) {
	s := newTestSim(t, DefaultConfig())
	s.Run(1500, 0.25)
	for _, v := range s.Vehicles {
		if v.Speed < 0 || v.Speed > MaxSpeed {
			t.Fatalf("%v speed out of range", v)
		}
		if v.Lane < 0 || v.Lane >= s.Road.Lanes {
			t.Fatalf("%v lane out of range", v)
		}
	}
}

func TestLaneChangesHappen(t *testing.T) {
	// With jittered desired speeds on a ring road, overtaking must occur.
	cfg := DefaultConfig()
	cfg.SpeedJitter = 0.35
	s := newTestSim(t, cfg)
	changes := 0
	lanes := make([]int, len(s.Vehicles))
	for i, v := range s.Vehicles {
		lanes[i] = v.Lane
	}
	for step := 0; step < 2400; step++ {
		s.Step(0.25)
		for i, v := range s.Vehicles {
			if v.Lane != lanes[i] {
				changes++
				lanes[i] = v.Lane
			}
		}
	}
	if changes == 0 {
		t.Fatal("no lane change in 10 simulated minutes of mixed-speed traffic")
	}
}

// TestSafeDriverNeverMovesLeftWhenLeftOccupied is the data-side guarantee
// the paper's Sec. II (C) demands: the behaviour that generates training
// data must itself respect the safety property.
func TestSafeDriverNeverMovesLeftWhenLeftOccupied(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumVehicles = 30
	cfg.SpeedJitter = 0.35
	s := newTestSim(t, cfg)
	for step := 0; step < 2000; step++ {
		// Check the decision *before* stepping: no vehicle with an occupied
		// left slot may begin a left lane change this step.
		type egoState struct {
			occupied bool
			lane     int
			changing bool
		}
		states := make([]egoState, len(s.Vehicles))
		for i, v := range s.Vehicles {
			states[i] = egoState{
				occupied: s.occupiedAlongside(v, v.Lane+1, AlongsideWindow),
				lane:     v.Lane,
				changing: v.Changing(),
			}
		}
		s.Step(0.25)
		for i, v := range s.Vehicles {
			st := states[i]
			if st.changing || !st.occupied {
				continue
			}
			if v.TargetLane > st.lane && v.LatVel > 0 {
				t.Fatalf("step %d: %v started left change with left occupied", step, v)
			}
		}
	}
}

func TestObserveFrontNeighbor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumVehicles = 2
	s := newTestSim(t, cfg)
	// Place both vehicles on lane 0, 30 m apart.
	a, b := s.Vehicles[0], s.Vehicles[1]
	a.Lane, a.TargetLane, a.Pos, a.Speed = 0, 0, 100, 25
	b.Lane, b.TargetLane, b.Pos, b.Speed = 0, 0, 100+30+b.Length, 20
	obs := s.Observe(a)
	n := obs.Neighbors[Front]
	if !n.Present {
		t.Fatal("front neighbor not sensed")
	}
	if math.Abs(n.Gap-30) > 1e-9 {
		t.Fatalf("front gap = %g, want 30", n.Gap)
	}
	if math.Abs(n.RelSpeed+5) > 1e-9 {
		t.Fatalf("rel speed = %g, want -5", n.RelSpeed)
	}
	if obs.Neighbors[Left].Present || obs.Neighbors[Right].Present {
		t.Fatal("phantom side neighbors")
	}
}

func TestObserveLeftAlongside(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumVehicles = 2
	s := newTestSim(t, cfg)
	a, b := s.Vehicles[0], s.Vehicles[1]
	a.Lane, a.TargetLane, a.Pos = 0, 0, 200
	b.Lane, b.TargetLane, b.Pos = 1, 1, 203 // within AlongsideWindow
	obs := s.Observe(a)
	if !obs.LeftOccupied() {
		t.Fatal("left alongside not sensed")
	}
	x := obs.Encode()
	if !LeftOccupiedInFeatures(x) {
		t.Fatal("feature encoding lost left occupancy")
	}
}

func TestObserveBeyondSensorRange(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumVehicles = 2
	cfg.Length = 1000
	s := newTestSim(t, cfg)
	a, b := s.Vehicles[0], s.Vehicles[1]
	a.Lane, a.TargetLane, a.Pos = 0, 0, 0
	b.Lane, b.TargetLane, b.Pos = 0, 0, 400 // far beyond SensorRange
	obs := s.Observe(a)
	if obs.Neighbors[Front].Present && obs.Neighbors[Front].Gap > SensorRange {
		t.Fatal("sensed beyond range")
	}
}

func TestEncodeDimensionAndRange(t *testing.T) {
	s := newTestSim(t, DefaultConfig())
	s.Run(200, 0.25)
	for _, v := range s.Vehicles[:5] {
		x := s.Observe(v).Encode()
		if len(x) != FeatureDim {
			t.Fatalf("feature dim %d, want %d", len(x), FeatureDim)
		}
		for i, f := range x {
			if f < 0 || f > 1 || math.IsNaN(f) {
				t.Fatalf("feature %d = %g outside [0,1]", i, f)
			}
		}
	}
}

func TestFeatureDimIs84(t *testing.T) {
	if FeatureDim != 84 {
		t.Fatalf("FeatureDim = %d, the paper's predictor has 84 inputs", FeatureDim)
	}
	names := FeatureNames()
	if len(names) != 84 {
		t.Fatalf("len(FeatureNames()) = %d", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
	if names[NeighborFeature(Left, NPPresence)] != "nbr.left.presence" {
		t.Fatalf("left presence name = %q", names[NeighborFeature(Left, NPPresence)])
	}
	if names[EgoLatVel] != "ego.lat_vel" {
		t.Fatalf("ego latvel name = %q", names[EgoLatVel])
	}
}

func TestSpeedHistory(t *testing.T) {
	v := &Vehicle{Speed: 10}
	h := v.SpeedHistory(4)
	for _, s := range h {
		if s != 10 {
			t.Fatalf("empty history should pad with current speed: %v", h)
		}
	}
	for i := 0; i < 6; i++ {
		v.Speed = float64(i)
		v.pushSpeed(8)
	}
	h = v.SpeedHistory(3)
	if h[0] != 3 || h[1] != 4 || h[2] != 5 {
		t.Fatalf("history = %v, want [3 4 5]", h)
	}
	h = v.SpeedHistory(8)
	if h[0] != 0 || h[7] != 5 {
		t.Fatalf("padded history = %v", h)
	}
}

func TestGenerateDataset(t *testing.T) {
	cfg := DefaultDatasetConfig()
	cfg.Episodes = 2
	cfg.StepsPerEpisode = 60
	data, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("no samples generated")
	}
	for i, s := range data {
		if len(s.X) != FeatureDim || len(s.Y) != 2 {
			t.Fatalf("sample %d dims %d/%d", i, len(s.X), len(s.Y))
		}
		// Property holds in the data: left occupied => no positive latvel.
		if LeftOccupiedInFeatures(s.X) && s.Y[0] > 1e-9 {
			t.Fatalf("sample %d violates safety property: latvel %g with left occupied", i, s.Y[0])
		}
	}
}

func TestGenerateDatasetDeterministic(t *testing.T) {
	cfg := DefaultDatasetConfig()
	cfg.Episodes = 1
	cfg.StepsPerEpisode = 40
	a, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateDataset(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("sizes differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i].X {
			if a[i].X[j] != b[i].X[j] {
				t.Fatalf("sample %d feature %d differs", i, j)
			}
		}
	}
}

func TestGenerateDatasetValidation(t *testing.T) {
	cfg := DefaultDatasetConfig()
	cfg.Dt = 0
	if _, err := GenerateDataset(cfg); err == nil {
		t.Fatal("dt=0 accepted")
	}
	cfg = DefaultDatasetConfig()
	cfg.Episodes = 0
	if _, err := GenerateDataset(cfg); err == nil {
		t.Fatal("0 episodes accepted")
	}
}

func TestRandomFeatureVector(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := RandomFeatureVector(rng)
	if len(x) != FeatureDim {
		t.Fatalf("dim %d", len(x))
	}
	for o := Orientation(0); o < NumOrientations; o++ {
		p := x[NeighborFeature(o, NPPresence)]
		if p != 0 && p != 1 {
			t.Fatalf("presence %v not boolean: %g", o, p)
		}
	}
}

func TestRenderContainsEgoAndLanes(t *testing.T) {
	s := newTestSim(t, DefaultConfig())
	s.Run(40, 0.25)
	out := s.Render(s.Vehicles[0], 200, 60)
	if !strings.Contains(out, "E") {
		t.Fatal("ego marker missing from render")
	}
	if !strings.Contains(out, "lane 0") || !strings.Contains(out, "lane 2") {
		t.Fatal("lane rows missing")
	}
}

func TestDescribeObservation(t *testing.T) {
	s := newTestSim(t, DefaultConfig())
	s.Run(40, 0.25)
	desc := DescribeObservation(s.Observe(s.Vehicles[0]))
	if !strings.Contains(desc, "ego:") || !strings.Contains(desc, "front") {
		t.Fatalf("description incomplete:\n%s", desc)
	}
}

func TestOrientationStrings(t *testing.T) {
	want := []string{"left", "front-left", "front", "front-right", "right", "rear-right", "rear", "rear-left"}
	for o := Orientation(0); o < NumOrientations; o++ {
		if o.String() != want[o] {
			t.Fatalf("orientation %d = %q, want %q", o, o.String(), want[o])
		}
	}
}
