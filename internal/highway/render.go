package highway

import (
	"fmt"
	"strings"
)

// Render draws a window of the highway as ASCII art, one row per lane with
// the leftmost lane on top (the textual analogue of the left half of the
// paper's Fig. 1). The ego vehicle is drawn as 'E', others as their ID's
// last digit; '>' marks a vehicle mid lane-change.
func (s *Sim) Render(ego *Vehicle, window float64, cols int) string {
	if cols < 10 {
		cols = 10
	}
	var b strings.Builder
	center := 0.0
	if ego != nil {
		center = ego.Pos
	}
	half := window / 2
	fmt.Fprintf(&b, "t=%6.1fs  road: %d lanes, limit %.0f m/s\n", s.Time, s.Road.Lanes, s.Road.SpeedLimit)
	for lane := s.Road.Lanes - 1; lane >= 0; lane-- {
		row := make([]byte, cols)
		for i := range row {
			row[i] = '.'
		}
		for _, v := range s.Vehicles {
			if v.Lane != lane {
				continue
			}
			// Signed offset from the window center along the ring.
			d := v.Pos - center
			for d > s.Length/2 {
				d -= s.Length
			}
			for d < -s.Length/2 {
				d += s.Length
			}
			if d < -half || d > half {
				continue
			}
			col := int((d + half) / window * float64(cols-1))
			ch := byte('0' + v.ID%10)
			if v == ego {
				ch = 'E'
			} else if v.Changing() {
				ch = '>'
			}
			row[col] = ch
		}
		fmt.Fprintf(&b, "lane %d |%s|\n", lane, string(row))
	}
	return b.String()
}

// DescribeObservation renders a compact textual sensor summary.
func DescribeObservation(obs *Observation) string {
	var b strings.Builder
	fmt.Fprintf(&b, "ego: lane %d, %.1f m/s, latvel %.2f\n", obs.Ego.Lane, obs.Ego.Speed, obs.Ego.LatVel)
	for o := Orientation(0); o < NumOrientations; o++ {
		n := obs.Neighbors[o]
		if !n.Present {
			fmt.Fprintf(&b, "  %-11s —\n", o)
			continue
		}
		fmt.Fprintf(&b, "  %-11s gap %5.1fm  rel %+5.1f m/s\n", o, n.Gap, n.RelSpeed)
	}
	return b.String()
}
