package highway

import (
	"fmt"
	"math/rand"

	"repro/internal/train"
)

// DatasetConfig controls synthetic data generation.
type DatasetConfig struct {
	Sim Config
	// Episodes is the number of independent simulations to run.
	Episodes int
	// StepsPerEpisode is how long each episode runs.
	StepsPerEpisode int
	// Dt is the integration step in seconds.
	Dt float64
	// WarmupSteps are discarded before recording (traffic settles).
	WarmupSteps int
	// RecordEvery thins the recording to every n-th step.
	RecordEvery int
}

// DefaultDatasetConfig returns a configuration that produces a few thousand
// samples in well under a second.
func DefaultDatasetConfig() DatasetConfig {
	return DatasetConfig{
		Sim:             DefaultConfig(),
		Episodes:        6,
		StepsPerEpisode: 400,
		Dt:              0.25,
		WarmupSteps:     80,
		RecordEvery:     2,
	}
}

// GenerateDataset simulates traffic and records (features, action) samples
// for every vehicle acting as ego in turn. The action label is the safe
// driver's executed (lateral velocity, longitudinal acceleration) — the
// same two quantities the predictor's Gaussian mixture models. The safe
// driver never moves left while the left slot is occupied, so the returned
// data satisfies the safety property by construction.
func GenerateDataset(cfg DatasetConfig) ([]train.Sample, error) {
	if cfg.Episodes <= 0 || cfg.StepsPerEpisode <= 0 {
		return nil, fmt.Errorf("highway: dataset config needs positive episodes/steps")
	}
	if cfg.Dt <= 0 {
		return nil, fmt.Errorf("highway: dataset dt must be positive, got %g", cfg.Dt)
	}
	recordEvery := cfg.RecordEvery
	if recordEvery <= 0 {
		recordEvery = 1
	}
	var out []train.Sample
	for ep := 0; ep < cfg.Episodes; ep++ {
		simCfg := cfg.Sim
		simCfg.Seed = cfg.Sim.Seed + int64(ep)*7919
		s, err := NewSim(simCfg)
		if err != nil {
			return nil, err
		}
		s.Run(cfg.WarmupSteps, cfg.Dt)
		for step := 0; step < cfg.StepsPerEpisode; step++ {
			// Observe before stepping, act during the step, label with the
			// action the driver actually executed.
			type pending struct {
				x   []float64
				ego *Vehicle
			}
			var batch []pending
			if step%recordEvery == 0 {
				for _, ego := range s.Vehicles {
					batch = append(batch, pending{x: s.Observe(ego).Encode(), ego: ego})
				}
			}
			s.Step(cfg.Dt)
			for _, p := range batch {
				out = append(out, train.Sample{
					X: p.x,
					Y: []float64{p.ego.LatVel, p.ego.Accel},
				})
			}
		}
	}
	return out, nil
}

// RandomFeatureVector draws a feature vector uniformly from the valid
// normalized space (coverage testing and fuzzing helper). Presence flags
// are sampled as honest booleans.
func RandomFeatureVector(rng *rand.Rand) []float64 {
	x := make([]float64, FeatureDim)
	for i := range x {
		x[i] = rng.Float64()
	}
	for o := Orientation(0); o < NumOrientations; o++ {
		p := NeighborFeature(o, NPPresence)
		if rng.Intn(2) == 0 {
			x[p] = 0
		} else {
			x[p] = 1
		}
	}
	return x
}
