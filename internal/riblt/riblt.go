// Package riblt implements rateless invertible Bloom lookup tables
// (RIBLT) for set reconciliation: the coded-symbol scheme of
// yangl1996/rateless-set-reconcile, specialized to fixed 32-byte source
// symbols (fingerprint hashes).
//
// Two parties hold sets A and B of symbols. The encoder (holding A)
// emits an unbounded stream of coded symbols; the decoder (holding B)
// subtracts its own set from the stream as it arrives and peels the
// remainder. After consuming O(|AΔB|) coded symbols — independent of
// |A∪B| — the decoder recovers both differences exactly: A∖B ("remote",
// symbols only the encoder has) and B∖A ("local", symbols only the
// decoder has). Overlapping elements cancel inside the cells and cost
// no communication beyond a small constant factor.
//
// A coded symbol is one cell of a conceptually infinite IBLT:
//
//	Sum     XOR of the source symbols mapped to the cell
//	HashSum XOR of their (non-linear) checksums
//	Count   signed number of mapped symbols
//
// Each source symbol is mapped to cell 0 and then to ever-sparser
// later cells by a deterministic PRNG seeded with its checksum, so
// both sides agree on the mapping without coordination and cell i
// receives each symbol with probability about 1/(1+i/2). A cell whose
// Count is ±1 and whose HashSum equals its Sum's checksum is "pure":
// its Sum IS a difference symbol, which is subtracted from every other
// cell it maps to, exposing new pure cells until everything is zero.
//
// The checksum must not be XOR-linear in the symbol bytes: with a
// linear checksum every cell would pass the purity test and the
// decoder would hallucinate differences. Symbol.Checksum is a
// splitmix-style multiply-xor-shift mix for exactly this reason.
package riblt

import (
	"encoding/binary"
	"fmt"
	"math"
)

// SymbolSize is the fixed source-symbol width in bytes. Fingerprint
// strings are folded to this width with a collision-resistant hash
// before entering a sketch (see pkg/vnn.FingerprintSetHash).
const SymbolSize = 32

// Symbol is one element of the reconciled set.
type Symbol [SymbolSize]byte

// Checksum returns the symbol's non-linear 64-bit checksum: the purity
// test of the peeling decoder and the seed of the symbol's cell
// mapping. It chains a splitmix64-style finalizer over the symbol's
// words, so it is NOT linear under XOR of symbols — see the package
// comment for why that is load-bearing.
func (s Symbol) Checksum() uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < SymbolSize; i += 8 {
		h ^= binary.LittleEndian.Uint64(s[i : i+8])
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		h *= 0xc4ceb9fe1a85ec53
		h ^= h >> 29
	}
	return h
}

// xor sets s to s XOR t.
func (s *Symbol) xor(t *Symbol) {
	for i := range s {
		s[i] ^= t[i]
	}
}

// CodedSymbolSize is the binary wire width of one coded symbol:
// 32-byte XOR sum, 8-byte checksum sum, 8-byte signed count.
const CodedSymbolSize = SymbolSize + 8 + 8

// CodedSymbol is one cell of the rateless sketch.
type CodedSymbol struct {
	Sum      Symbol
	CheckSum uint64
	Count    int64
}

// apply adds (dir = +1) or removes (dir = -1) one source symbol with
// checksum h from the cell.
func (c CodedSymbol) apply(s *Symbol, h uint64, dir int64) CodedSymbol {
	c.Sum.xor(s)
	c.CheckSum ^= h
	c.Count += dir
	return c
}

// isZero reports whether the cell holds no symbols at all — the
// termination test of a successful decode.
func (c *CodedSymbol) isZero() bool {
	if c.Count != 0 || c.CheckSum != 0 {
		return false
	}
	return c.Sum == Symbol{}
}

// isPure reports whether the cell holds exactly one symbol (in either
// direction), which can then be peeled.
func (c *CodedSymbol) isPure() bool {
	return (c.Count == 1 || c.Count == -1) && c.Sum.Checksum() == c.CheckSum
}

// AppendBinary appends the cell's fixed-width wire form to b.
func (c *CodedSymbol) AppendBinary(b []byte) []byte {
	b = append(b, c.Sum[:]...)
	b = binary.LittleEndian.AppendUint64(b, c.CheckSum)
	b = binary.LittleEndian.AppendUint64(b, uint64(c.Count))
	return b
}

// DecodeCodedSymbol parses one fixed-width cell from b.
func DecodeCodedSymbol(b []byte) (CodedSymbol, error) {
	var c CodedSymbol
	if len(b) < CodedSymbolSize {
		return c, fmt.Errorf("riblt: coded symbol needs %d bytes, got %d", CodedSymbolSize, len(b))
	}
	copy(c.Sum[:], b[:SymbolSize])
	c.CheckSum = binary.LittleEndian.Uint64(b[SymbolSize:])
	c.Count = int64(binary.LittleEndian.Uint64(b[SymbolSize+8:]))
	return c, nil
}

// randomMapping walks the deterministic cell indices of one source
// symbol: cell 0 always, then gaps that grow so cell i is hit with
// probability ~ 1/(1+i/2). Both sides derive identical walks from the
// symbol's checksum alone.
type randomMapping struct {
	prng    uint64 // PRNG state, seeded with the symbol checksum
	lastIdx uint64 // current cell index
}

// nextIndex advances to the symbol's next cell index.
func (m *randomMapping) nextIndex() uint64 {
	// One multiplicative-congruential step; the high bits drive the gap.
	r := m.prng * 0xda942042e4dd58b5
	m.prng = r
	// The gap grows with the current index so that the density of
	// mapped cells at index i is ~ 1/(1+i/2) — the rateless property.
	m.lastIdx += uint64(math.Ceil((float64(m.lastIdx) + 1.5) * ((1<<32)/math.Sqrt(float64(r)+1) - 1)))
	return m.lastIdx
}
