package riblt

import (
	"encoding/hex"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// testSymbol derives a deterministic symbol from an integer id.
func testSymbol(id uint64) Symbol {
	var s Symbol
	rng := rand.New(rand.NewSource(int64(id)*2654435761 + 12345))
	rng.Read(s[:])
	return s
}

func symbolSet(ids ...uint64) []Symbol {
	out := make([]Symbol, len(ids))
	for i, id := range ids {
		out[i] = testSymbol(id)
	}
	return out
}

func sortedHex(syms []Symbol) []string {
	out := make([]string, len(syms))
	for i, s := range syms {
		out[i] = hex.EncodeToString(s[:])
	}
	sort.Strings(out)
	return out
}

// reconcile runs a full encoder/decoder round: the encoder holds a,
// the decoder holds b, and symbols stream until the decoder finishes
// (or the cap trips). Returns the decoder and the symbols consumed.
func reconcile(t *testing.T, a, b []Symbol, cap int) (*Decoder, int) {
	t.Helper()
	enc := NewEncoder()
	for _, s := range a {
		enc.Add(s)
	}
	dec := NewDecoder()
	for _, s := range b {
		dec.AddSymbol(s)
	}
	n := 0
	for !dec.Decoded() {
		if n >= cap {
			t.Fatalf("no decode after %d coded symbols (|a|=%d |b|=%d)", n, len(a), len(b))
		}
		dec.AddCodedSymbol(enc.ProduceNextCodedSymbol())
		n++
	}
	return dec, n
}

// diff returns the elements of a not in b, as sorted hex.
func diffHex(a, b []Symbol) []string {
	in := map[Symbol]bool{}
	for _, s := range b {
		in[s] = true
	}
	var out []Symbol
	for _, s := range a {
		if !in[s] {
			out = append(out, s)
		}
	}
	return sortedHex(out)
}

func assertEqual(t *testing.T, what string, got, want []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d symbols %v, want %d %v", what, len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s[%d]: got %s, want %s", what, i, got[i], want[i])
		}
	}
}

// TestChecksumNonLinear pins the property the peeling purity test
// depends on: the checksum must NOT distribute over XOR of symbols
// (a linear checksum would make every cell look pure).
func TestChecksumNonLinear(t *testing.T) {
	linear := 0
	for i := uint64(0); i < 64; i++ {
		a, b := testSymbol(i), testSymbol(i+1000)
		var x Symbol = a
		x.xor(&b)
		if x.Checksum() == a.Checksum()^b.Checksum() {
			linear++
		}
	}
	if linear > 0 {
		t.Fatalf("checksum behaved XOR-linearly on %d/64 pairs", linear)
	}
}

// TestGoldenStream pins the wire-visible coded stream: the mapping
// constants, checksum and cell layout must never drift silently, or
// fleets of mixed versions would fail to reconcile. Regenerate only on
// a deliberate format change (and bump the fleet protocol).
func TestGoldenStream(t *testing.T) {
	enc := NewEncoder()
	for _, s := range symbolSet(1, 2, 3) {
		enc.Add(s)
	}
	var buf []byte
	for i := 0; i < 4; i++ {
		c := enc.ProduceNextCodedSymbol()
		buf = c.AppendBinary(buf)
	}
	const want = "" +
		// cell 0: all three symbols (count 3)
		"8b45fdd8c3f99ebde64c9452fbd5fa182704ae182110f4c370d465be1618428269c4ae8edffbf4cb0300000000000000" +
		// cell 1: one symbol
		"5db7ac6ff7c12049f0336936e6a2b1220629d5cac7f474e55d037b8b857f209714abb746ec63be250100000000000000" +
		// cell 2: empty
		"000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000000" +
		// cell 3: all three again (their second indices coincide)
		"8b45fdd8c3f99ebde64c9452fbd5fa182704ae182110f4c370d465be1618428269c4ae8edffbf4cb0300000000000000"
	if got := hex.EncodeToString(buf); got != want {
		t.Fatalf("golden coded stream drifted:\n got %s\nwant %s", got, want)
	}
}

// TestEncoderMatchesSketch: the rateless stream's first m cells are by
// definition the fixed-size sketch of the same set.
func TestEncoderMatchesSketch(t *testing.T) {
	const m = 64
	set := symbolSet(10, 11, 12, 13, 14, 15, 16)
	sk := NewSketch(m)
	for _, s := range set {
		sk.AddSymbol(s)
	}
	enc := NewEncoder()
	for _, s := range set {
		enc.Add(s)
	}
	for i := 0; i < m; i++ {
		if c := enc.ProduceNextCodedSymbol(); c != sk[i] {
			t.Fatalf("cell %d: encoder %+v, sketch %+v", i, c, sk[i])
		}
	}
}

func TestCodedSymbolWire(t *testing.T) {
	c := CodedSymbol{Sum: testSymbol(7), CheckSum: 0xdeadbeefcafef00d, Count: -3}
	buf := c.AppendBinary(nil)
	if len(buf) != CodedSymbolSize {
		t.Fatalf("wire size %d, want %d", len(buf), CodedSymbolSize)
	}
	got, err := DecodeCodedSymbol(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip changed the cell: %+v -> %+v", c, got)
	}
	if _, err := DecodeCodedSymbol(buf[:CodedSymbolSize-1]); err == nil {
		t.Fatal("short buffer decoded")
	}
}

// TestReconcile covers the protocol shapes the fleet plane hits:
// disjoint sets, one-sided differences, heavy overlap, empty sides.
func TestReconcile(t *testing.T) {
	cases := []struct {
		name string
		a, b []Symbol
	}{
		{"identical", symbolSet(1, 2, 3), symbolSet(3, 2, 1)},
		{"remote_only", symbolSet(1, 2, 3, 4), symbolSet(1, 2)},
		{"local_only", symbolSet(1, 2), symbolSet(1, 2, 3, 4)},
		{"disjoint", symbolSet(1, 2, 3), symbolSet(4, 5, 6)},
		{"empty_decoder", symbolSet(1, 2, 3, 4, 5), nil},
		{"empty_encoder", nil, symbolSet(1, 2, 3)},
		{"overlap", symbolSet(1, 2, 3, 4, 5, 6, 7, 8), symbolSet(5, 6, 7, 8, 9, 10)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dec, _ := reconcile(t, tc.a, tc.b, 4096)
			assertEqual(t, "remote", sortedHex(dec.Remote()), diffHex(tc.a, tc.b))
			assertEqual(t, "local", sortedHex(dec.Local()), diffHex(tc.b, tc.a))
		})
	}
}

// TestReconcileLarge is the stress shape: big overlapping sets with a
// two-sided difference.
func TestReconcileLarge(t *testing.T) {
	var a, b []Symbol
	for id := uint64(0); id < 2000; id++ {
		s := testSymbol(id)
		if id < 1950 {
			a = append(a, s) // shared: 0..1949
			b = append(b, s)
		} else if id < 1975 {
			a = append(a, s) // a-only: 1950..1974
		} else {
			b = append(b, s) // b-only: 1975..1999
		}
	}
	dec, n := reconcile(t, a, b, 1<<14)
	if len(dec.Remote()) != 25 || len(dec.Local()) != 25 {
		t.Fatalf("decoded %d remote / %d local, want 25/25", len(dec.Remote()), len(dec.Local()))
	}
	assertEqual(t, "remote", sortedHex(dec.Remote()), diffHex(a, b))
	assertEqual(t, "local", sortedHex(dec.Local()), diffHex(b, a))
	t.Logf("|AΔB|=50 decoded from %d coded symbols", n)
}

// TestSymbolsScaleWithDifference is the acceptance property: the coded
// symbols needed to decode grow with |AΔB|, not with |A∪B|. Fixing the
// difference while growing the union 16x must not grow the symbol
// count beyond noise, while growing the difference must grow it.
func TestSymbolsScaleWithDifference(t *testing.T) {
	run := func(union, diff int) int {
		var a, b []Symbol
		for id := 0; id < union; id++ {
			s := testSymbol(uint64(1_000_000 + union*7 + id))
			a = append(a, s)
			if id >= diff {
				b = append(b, s)
			}
		}
		dec, n := reconcile(t, a, b, 1<<16)
		if len(dec.Remote()) != diff {
			t.Fatalf("union %d diff %d: decoded %d", union, diff, len(dec.Remote()))
		}
		return n
	}

	// Fixed |AΔB| = 8 across a 16x union growth.
	atSmallUnion := run(256, 8)
	atLargeUnion := run(4096, 8)
	if atLargeUnion > 8*atSmallUnion {
		t.Fatalf("symbols grew with the union: %d @256 vs %d @4096", atSmallUnion, atLargeUnion)
	}
	// Both must be far below the union size (full-set exchange).
	if atLargeUnion >= 1024 {
		t.Fatalf("decoding an 8-element difference of a 4096-element union took %d symbols", atLargeUnion)
	}

	// Fixed union, growing difference: symbol count must track it.
	n8, n128 := run(1024, 8), run(1024, 128)
	if n128 <= n8 {
		t.Fatalf("symbols did not grow with the difference: %d @diff8 vs %d @diff128", n8, n128)
	}
	t.Logf("symbols to decode: diff8@256=%d diff8@4096=%d diff8@1024=%d diff128@1024=%d",
		atSmallUnion, atLargeUnion, n8, n128)
}

// TestSketchSubtractDecode exercises the fixed-size path end to end.
func TestSketchSubtractDecode(t *testing.T) {
	const m = 128
	a := symbolSet(1, 2, 3, 4, 5, 6)
	b := symbolSet(4, 5, 6, 7, 8)
	ska, skb := NewSketch(m), NewSketch(m)
	for _, s := range a {
		ska.AddSymbol(s)
	}
	for _, s := range b {
		skb.AddSymbol(s)
	}
	remote, local, ok := ska.Subtract(skb).Decode()
	if !ok {
		t.Fatal("sketch decode failed")
	}
	assertEqual(t, "remote", sortedHex(remote), diffHex(a, b))
	assertEqual(t, "local", sortedHex(local), diffHex(b, a))
}

// TestSketchAddRemove: removing everything returns the sketch to zero.
func TestSketchAddRemove(t *testing.T) {
	sk := NewSketch(32)
	set := symbolSet(40, 41, 42)
	for _, s := range set {
		sk.AddSymbol(s)
	}
	for _, s := range set {
		sk.RemoveSymbol(s)
	}
	for i := range sk {
		if !sk[i].isZero() {
			t.Fatalf("cell %d not zero after removing all symbols: %+v", i, sk[i])
		}
	}
}

// TestSketchOverflow: a too-small sketch reports failure instead of
// inventing symbols.
func TestSketchOverflow(t *testing.T) {
	sk := NewSketch(2)
	for id := uint64(0); id < 64; id++ {
		sk.AddSymbol(testSymbol(id))
	}
	if _, _, ok := sk.Decode(); ok {
		t.Fatal("2-cell sketch claimed to decode 64 symbols")
	}
}

// TestEncoderAddAfterProduce pins the misuse panic: amending the set
// mid-stream would silently corrupt the decode.
func TestEncoderAddAfterProduce(t *testing.T) {
	enc := NewEncoder()
	enc.Add(testSymbol(1))
	enc.ProduceNextCodedSymbol()
	defer func() {
		if recover() == nil {
			t.Fatal("Add after ProduceNextCodedSymbol did not panic")
		}
	}()
	enc.Add(testSymbol(2))
}

func TestDecoderReset(t *testing.T) {
	dec, _ := reconcile(t, symbolSet(1, 2, 3), symbolSet(2, 3, 4), 1024)
	dec.Reset()
	if dec.Decoded() || dec.Consumed() != 0 || len(dec.Remote()) != 0 || len(dec.Local()) != 0 {
		t.Fatal("reset decoder kept state")
	}
	// A reset decoder must behave like a fresh one.
	dec.AddSymbol(testSymbol(9))
	enc := NewEncoder()
	enc.Add(testSymbol(9))
	enc.Add(testSymbol(10))
	for !dec.Decoded() {
		dec.AddCodedSymbol(enc.ProduceNextCodedSymbol())
	}
	assertEqual(t, "remote", sortedHex(dec.Remote()), sortedHex(symbolSet(10)))
}

// BenchmarkEncode measures raw coded-symbol production over a warm
// 4096-symbol window, in symbols per second.
func BenchmarkEncode(b *testing.B) {
	enc := NewEncoder()
	for id := uint64(0); id < 4096; id++ {
		enc.Add(testSymbol(id))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.ProduceNextCodedSymbol()
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "symbols/s")
}

// BenchmarkDecode measures a full reconciliation round per op at a
// fixed 4096-element union and growing symmetric difference; the
// symbols/op metric is the decode cost the fleet pays per round,
// demonstrating it scales with the difference rather than the union.
func BenchmarkDecode(b *testing.B) {
	for _, diff := range []int{16, 128, 1024} {
		b.Run(fmt.Sprintf("union4096_diff%d", diff), func(b *testing.B) {
			const union = 4096
			var a, bs []Symbol
			for id := 0; id < union; id++ {
				s := testSymbol(uint64(9_000_000 + id))
				a = append(a, s)
				if id >= diff {
					bs = append(bs, s)
				}
			}
			enc := NewEncoder()
			for _, s := range a {
				enc.Add(s)
			}
			// Pre-produce a long enough stream once; decoding replays it.
			var stream []CodedSymbol
			dec := NewDecoder()
			for _, s := range bs {
				dec.AddSymbol(s)
			}
			for !dec.Decoded() {
				c := enc.ProduceNextCodedSymbol()
				stream = append(stream, c)
				dec.AddCodedSymbol(c)
			}
			consumed := dec.Consumed()

			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := NewDecoder()
				for _, s := range bs {
					d.AddSymbol(s)
				}
				for j := 0; !d.Decoded(); j++ {
					d.AddCodedSymbol(stream[j])
				}
			}
			b.ReportMetric(float64(consumed), "symbols/op")
			b.ReportMetric(float64(b.N*consumed)/b.Elapsed().Seconds(), "symbols/s")
		})
	}
}
