package riblt

// Sketch is the fixed-size form of the scheme: the first m cells of
// the infinite coded stream, usable as a standalone IBLT when the
// difference size has a known bound (and as the golden reference for
// the rateless Encoder — cell i of a set's Sketch equals the i-th
// coded symbol its Encoder emits).
type Sketch []CodedSymbol

// NewSketch allocates an all-zero sketch of m cells.
func NewSketch(m int) Sketch { return make(Sketch, m) }

// apply adds (dir +1) or removes (dir -1) one symbol from every cell
// of its mapping that falls inside the sketch.
func (sk Sketch) apply(s *Symbol, dir int64) {
	h := s.Checksum()
	m := randomMapping{prng: h}
	for m.lastIdx < uint64(len(sk)) {
		sk[m.lastIdx] = sk[m.lastIdx].apply(s, h, dir)
		m.nextIndex()
	}
}

// AddSymbol inserts one symbol into the sketch.
func (sk Sketch) AddSymbol(s Symbol) { sk.apply(&s, 1) }

// RemoveSymbol deletes one symbol from the sketch.
func (sk Sketch) RemoveSymbol(s Symbol) { sk.apply(&s, -1) }

// Subtract subtracts o cell-wise from sk (both must have equal size),
// leaving sk as the sketch of the symmetric difference: shared symbols
// cancel. sk is modified in place and returned.
func (sk Sketch) Subtract(o Sketch) Sketch {
	if len(sk) != len(o) {
		panic("riblt: subtracting sketches of unequal size")
	}
	for i := range sk {
		sk[i].Sum.xor(&o[i].Sum)
		sk[i].CheckSum ^= o[i].CheckSum
		sk[i].Count -= o[i].Count
	}
	return sk
}

// Decode peels the sketch in place. After Subtract, remote holds the
// symbols only the subtracted-from set had and local the symbols only
// the subtracted set had. ok reports complete success — false means
// the difference exceeded what m cells can carry (the peel got stuck);
// whatever was recovered up to that point is still returned.
func (sk Sketch) Decode() (remote, local []Symbol, ok bool) {
	pending := make([]int, 0, len(sk))
	for i := range sk {
		if sk[i].isPure() {
			pending = append(pending, i)
		}
	}
	for len(pending) > 0 {
		idx := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		c := sk[idx]
		if !c.isPure() {
			continue
		}
		s := c.Sum
		h := c.CheckSum
		dir := -c.Count
		if c.Count == 1 {
			remote = append(remote, s)
		} else {
			local = append(local, s)
		}
		m := randomMapping{prng: h}
		for m.lastIdx < uint64(len(sk)) {
			i := m.lastIdx
			sk[i] = sk[i].apply(&s, h, dir)
			if !sk[i].isZero() && sk[i].isPure() {
				pending = append(pending, int(i))
			}
			m.nextIndex()
		}
	}
	for i := range sk {
		if !sk[i].isZero() {
			return remote, local, false
		}
	}
	return remote, local, true
}
