package riblt

// Decoder consumes the encoder's coded-symbol stream and peels out the
// symmetric difference. Feed the local set with AddSymbol first, then
// stream coded symbols in order with AddCodedSymbol until Decoded
// reports success (or the stream ends — a partial decode still yields
// whatever was peeled, the caller just learns less).
//
// Invariants of the peeling loop:
//
//   - Every stored cell holds exactly the unpeeled difference symbols
//     mapped to it: incoming cells have the local set and all
//     already-peeled symbols subtracted on arrival (the three coding
//     windows), and peeling a symbol removes it from every stored cell
//     of its mapping.
//   - A pure cell (Count ±1, checksum match) therefore holds exactly
//     one difference symbol: Count +1 means the encoder has it (A∖B),
//     -1 means only this side does (B∖A).
//   - Decoding succeeded exactly when every stored cell is zero: no
//     unpeeled difference remains in any received cell.
type Decoder struct {
	cs []CodedSymbol // received cells, with known symbols removed
	// window holds the local set; remote and local accumulate peeled
	// A∖B and B∖A symbols so later cells shed them on arrival.
	window, remote, local codingWindow

	remoteSyms []Symbol // decoded A∖B
	localSyms  []Symbol // decoded B∖A

	pending []int // candidate pure cells awaiting a peel attempt
	zero    int   // stored cells currently all-zero
	started bool
}

// NewDecoder returns a decoder with an empty local set.
func NewDecoder() *Decoder { return &Decoder{} }

// AddSymbol declares one symbol of the local set. It panics once the
// coded stream has started — cells already consumed could not have had
// the symbol subtracted.
func (d *Decoder) AddSymbol(s Symbol) {
	if d.started {
		panic("riblt: Decoder.AddSymbol after AddCodedSymbol")
	}
	d.window.addSymbol(s)
}

// AddCodedSymbol consumes the next cell of the encoder's stream and
// peels whatever it exposes.
func (d *Decoder) AddCodedSymbol(c CodedSymbol) {
	d.started = true
	c = d.window.applyWindow(c, -1)
	c = d.remote.applyWindow(c, -1)
	c = d.local.applyWindow(c, 1)
	d.cs = append(d.cs, c)
	idx := len(d.cs) - 1
	if c.isZero() {
		d.zero++
	} else if c.isPure() {
		d.pending = append(d.pending, idx)
	}
	d.peel()
}

// peel drains the pending queue: each genuinely pure cell's symbol is
// removed from every stored cell of its mapping (possibly exposing new
// pure cells) and recorded as a difference.
func (d *Decoder) peel() {
	for len(d.pending) > 0 {
		idx := d.pending[len(d.pending)-1]
		d.pending = d.pending[:len(d.pending)-1]
		c := d.cs[idx]
		if !c.isPure() {
			continue // a previous peel already changed this cell
		}
		s := c.Sum
		h := c.CheckSum
		dir := -c.Count // removing a +1 symbol applies -1, and vice versa
		m := randomMapping{prng: h}
		for m.lastIdx < uint64(len(d.cs)) {
			d.applyCell(int(m.lastIdx), &s, h, dir)
			m.nextIndex()
		}
		// The mapping now points past the received prefix; the window
		// continues it so future cells shed this symbol on arrival.
		if c.Count == 1 {
			d.remote.addEntry(s, h, m)
			d.remoteSyms = append(d.remoteSyms, s)
		} else {
			d.local.addEntry(s, h, m)
			d.localSyms = append(d.localSyms, s)
		}
	}
}

// applyCell applies one symbol to stored cell i, maintaining the
// zero-cell count and the pending queue.
func (d *Decoder) applyCell(i int, s *Symbol, h uint64, dir int64) {
	wasZero := d.cs[i].isZero()
	d.cs[i] = d.cs[i].apply(s, h, dir)
	nowZero := d.cs[i].isZero()
	if wasZero != nowZero {
		if nowZero {
			d.zero++
		} else {
			d.zero--
		}
	}
	if !nowZero && d.cs[i].isPure() {
		d.pending = append(d.pending, i)
	}
}

// Decoded reports whether the stream consumed so far fully explains
// itself: every received cell is zero after subtracting the local set
// and the peeled differences — no unpeeled difference remains.
func (d *Decoder) Decoded() bool {
	return d.started && d.zero == len(d.cs)
}

// Remote returns the decoded A∖B — symbols only the encoder has. The
// slice is owned by the decoder; callers must not modify it.
func (d *Decoder) Remote() []Symbol { return d.remoteSyms }

// Local returns the decoded B∖A — symbols only this side has.
func (d *Decoder) Local() []Symbol { return d.localSyms }

// Consumed returns the number of coded symbols consumed so far.
func (d *Decoder) Consumed() int { return len(d.cs) }

// Reset empties the decoder for reuse, keeping its allocations.
func (d *Decoder) Reset() {
	d.cs = d.cs[:0]
	d.window.reset()
	d.remote.reset()
	d.local.reset()
	d.remoteSyms = d.remoteSyms[:0]
	d.localSyms = d.localSyms[:0]
	d.pending = d.pending[:0]
	d.zero = 0
	d.started = false
}
