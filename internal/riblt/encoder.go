package riblt

// symbolMapping pairs a source symbol (by position in a codingWindow)
// with the next cell index its mapping will hit. The slice of these is
// kept as a binary min-heap on codedIdx, so producing cell i touches
// only the symbols actually mapped to i.
type symbolMapping struct {
	sourceIdx int
	codedIdx  uint64
}

// mappingHeap is a min-heap of symbolMapping keyed on codedIdx.
type mappingHeap []symbolMapping

func (m mappingHeap) fixHead() {
	curr := 0
	for {
		child := curr*2 + 1
		if child >= len(m) {
			break
		}
		if rc := child + 1; rc < len(m) && m[rc].codedIdx < m[child].codedIdx {
			child = rc
		}
		if m[curr].codedIdx <= m[child].codedIdx {
			break
		}
		m[curr], m[child] = m[child], m[curr]
		curr = child
	}
}

func (m mappingHeap) fixTail() {
	curr := len(m) - 1
	for curr > 0 {
		parent := (curr - 1) / 2
		if m[parent].codedIdx <= m[curr].codedIdx {
			break
		}
		m[parent], m[curr] = m[curr], m[parent]
		curr = parent
	}
}

// codingWindow is a set of source symbols alongside their mapping
// generators, able to apply all of them to any prefix of the coded
// stream in order. The encoder uses one directly; the decoder uses
// three (its own set, and the two peeled differences) — see Decoder.
type codingWindow struct {
	symbols  []Symbol        // source symbols
	checks   []uint64        // their checksums, aligned with symbols
	mappings []randomMapping // their mapping generators, aligned
	queue    mappingHeap     // next cell index per symbol, min-heap
	nextIdx  uint64          // next coded index to produce/consume
}

// addSymbol inserts a source symbol whose mapping starts at cell 0.
// Must happen before the window advances past cell 0 (the stream
// membership of earlier cells cannot be amended retroactively).
func (w *codingWindow) addSymbol(s Symbol) {
	w.addEntry(s, s.Checksum(), randomMapping{prng: s.Checksum()})
}

// addEntry inserts a symbol with a precomputed checksum and mapping
// state (used when the decoder peels a symbol mid-stream: the mapping
// has already been walked up to the current cell).
func (w *codingWindow) addEntry(s Symbol, check uint64, m randomMapping) {
	w.symbols = append(w.symbols, s)
	w.checks = append(w.checks, check)
	w.mappings = append(w.mappings, m)
	w.queue = append(w.queue, symbolMapping{sourceIdx: len(w.symbols) - 1, codedIdx: m.lastIdx})
	w.queue.fixTail()
}

// applyWindow XORs every window symbol mapped to the window's current
// cell into c (with direction dir) and advances to the next cell.
func (w *codingWindow) applyWindow(c CodedSymbol, dir int64) CodedSymbol {
	if len(w.queue) == 0 {
		w.nextIdx++
		return c
	}
	for w.queue[0].codedIdx == w.nextIdx {
		i := w.queue[0].sourceIdx
		c = c.apply(&w.symbols[i], w.checks[i], dir)
		w.queue[0].codedIdx = w.mappings[i].nextIndex()
		w.queue.fixHead()
	}
	w.nextIdx++
	return c
}

// reset empties the window without releasing its storage.
func (w *codingWindow) reset() {
	w.symbols = w.symbols[:0]
	w.checks = w.checks[:0]
	w.mappings = w.mappings[:0]
	w.queue = w.queue[:0]
	w.nextIdx = 0
}

// Encoder produces the rateless coded-symbol stream of a set. Add the
// whole set first, then call ProduceNextCodedSymbol as many times as
// the decoder needs — the stream never runs out.
type Encoder struct {
	window  codingWindow
	started bool
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Add inserts one source symbol. It panics if the stream has already
// started: coded cells already emitted could not include the new
// symbol, silently corrupting the decode.
func (e *Encoder) Add(s Symbol) {
	if e.started {
		panic("riblt: Encoder.Add after ProduceNextCodedSymbol")
	}
	e.window.addSymbol(s)
}

// ProduceNextCodedSymbol emits the next cell of the stream.
func (e *Encoder) ProduceNextCodedSymbol() CodedSymbol {
	e.started = true
	return e.window.applyWindow(CodedSymbol{}, 1)
}

// Reset empties the encoder for reuse, keeping its allocations.
func (e *Encoder) Reset() {
	e.window.reset()
	e.started = false
}
