// Package trace implements neuron-to-feature traceability — the paper's
// adaptation (A) of requirement-to-code traceability for neural networks
// (Sec. II, Table I): it associates each hidden neuron with the input
// features (conditions) under which it activates, giving the fine-grained
// "which requirement does this unit implement" argument certification
// expects.
//
// Three complementary analyses are combined:
//
//  1. weight-path attribution: the absolute product of weights along all
//     paths from an input to the neuron (architecture-level influence);
//  2. activation statistics over a dataset: activation rate and the
//     correlation of each feature with the neuron's activation;
//  3. interval activation conditions over an input region: neurons proven
//     always-active or always-inactive by static analysis (package bounds).
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/bounds"
	"repro/internal/linalg"
	"repro/internal/nn"
)

// FeatureScore couples a feature index with an attribution score.
type FeatureScore struct {
	Feature int
	Name    string
	Score   float64
}

// NeuronInfo is the traceability record of one hidden neuron.
type NeuronInfo struct {
	Layer, Index int
	// ActivationRate is the fraction of dataset samples activating the
	// neuron (0 and 1 flag dead / saturated units).
	ActivationRate float64
	// MeanActivation is the average post-activation value.
	MeanActivation float64
	// TopByWeight are the strongest input features by weight-path product.
	TopByWeight []FeatureScore
	// TopByCorrelation are the features most correlated with activation.
	TopByCorrelation []FeatureScore
}

// Condition classifies a neuron's behaviour over an input region.
type Condition int

// Region activation conditions.
const (
	// Conditional means the neuron switches phase inside the region.
	Conditional Condition = iota
	// AlwaysActive means the neuron is proven active on the whole region.
	AlwaysActive
	// AlwaysInactive means the neuron is proven inactive (dead) on it.
	AlwaysInactive
)

// String returns a readable condition name.
func (c Condition) String() string {
	switch c {
	case AlwaysActive:
		return "always-active"
	case AlwaysInactive:
		return "always-inactive"
	case Conditional:
		return "conditional"
	}
	return fmt.Sprintf("Condition(%d)", int(c))
}

// Report is the full traceability analysis of a network.
type Report struct {
	Arch         string
	FeatureNames []string
	Neurons      []NeuronInfo
	// Conditions[layer][neuron] holds region activation conditions when a
	// region was supplied (nil otherwise).
	Conditions [][]Condition
}

// Options tune the analysis.
type Options struct {
	// TopK limits attribution lists; 0 means 5.
	TopK int
	// Region, when non-nil, adds interval activation conditions by running
	// a fresh bound propagation over it. Ignored when PreBounds is set.
	Region []bounds.Interval
	// PreBounds, when non-nil, supplies already-computed pre-activation
	// intervals (one row per hidden layer, e.g. from a compiled
	// verification artifact) for the interval activation conditions — no
	// propagation pass runs at all. This is how the public API reuses the
	// CompiledNetwork's bound analysis instead of recomputing it.
	PreBounds [][]bounds.Interval
}

// Analyze computes the traceability report of net over a dataset of inputs.
func Analyze(net *nn.Network, data [][]float64, featureNames []string, opts Options) (*Report, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("trace: need at least one data point")
	}
	topK := opts.TopK
	if topK <= 0 {
		topK = 5
	}
	if len(featureNames) == 0 {
		featureNames = make([]string, net.InputDim())
		for i := range featureNames {
			featureNames[i] = fmt.Sprintf("x%d", i)
		}
	}
	if len(featureNames) != net.InputDim() {
		return nil, fmt.Errorf("trace: %d feature names for %d inputs", len(featureNames), net.InputDim())
	}

	rep := &Report{Arch: net.ArchString(), FeatureNames: featureNames}

	// Pass 1: collect activation traces.
	nLayers := len(net.Layers) - 1 // hidden layers only
	type acc struct {
		rate, mean []float64
		// For correlation: running sums of x, x², a, a², xa per feature.
		sx, sxx []float64
		sa, saa []float64
		sxa     [][]float64
	}
	accs := make([]acc, nLayers)
	for li := 0; li < nLayers; li++ {
		n := net.Layers[li].OutDim()
		accs[li] = acc{
			rate: make([]float64, n), mean: make([]float64, n),
			sa: make([]float64, n), saa: make([]float64, n),
			sxa: linalg.NewMatrix(n, net.InputDim()),
		}
	}
	sx := make([]float64, net.InputDim())
	sxx := make([]float64, net.InputDim())
	for _, x := range data {
		tr := net.ForwardTrace(x)
		for j, v := range x {
			sx[j] += v
			sxx[j] += v * v
		}
		for li := 0; li < nLayers; li++ {
			a := &accs[li]
			for j, post := range tr.Post[li] {
				if tr.Pre[li][j] > 0 {
					a.rate[j]++
				}
				a.mean[j] += post
				a.sa[j] += post
				a.saa[j] += post * post
				for k, v := range x {
					a.sxa[j][k] += v * post
				}
			}
		}
	}

	// Pass 2: weight-path attribution. influence[li][j][k] = Σ paths |w|.
	pathWeights := pathAttribution(net)

	n := float64(len(data))
	for li := 0; li < nLayers; li++ {
		a := &accs[li]
		for j := 0; j < net.Layers[li].OutDim(); j++ {
			info := NeuronInfo{
				Layer:          li,
				Index:          j,
				ActivationRate: a.rate[j] / n,
				MeanActivation: a.mean[j] / n,
			}
			// Correlation of each feature with the activation value.
			corr := make([]float64, net.InputDim())
			va := a.saa[j]/n - (a.sa[j]/n)*(a.sa[j]/n)
			for k := range corr {
				vx := sxx[k]/n - (sx[k]/n)*(sx[k]/n)
				cov := a.sxa[j][k]/n - (sx[k]/n)*(a.sa[j]/n)
				if vx > 1e-12 && va > 1e-12 {
					corr[k] = cov / math.Sqrt(vx*va)
				}
			}
			info.TopByWeight = topScores(pathWeights[li][j], featureNames, topK, false)
			info.TopByCorrelation = topScores(corr, featureNames, topK, true)
			rep.Neurons = append(rep.Neurons, info)
		}
	}

	switch {
	case opts.PreBounds != nil:
		if len(opts.PreBounds) < nLayers {
			return nil, fmt.Errorf("trace: %d pre-bound rows for %d hidden layers", len(opts.PreBounds), nLayers)
		}
		for li := 0; li < nLayers; li++ {
			if len(opts.PreBounds[li]) != net.Layers[li].OutDim() {
				return nil, fmt.Errorf("trace: pre-bound row %d has %d intervals for %d neurons",
					li, len(opts.PreBounds[li]), net.Layers[li].OutDim())
			}
			rep.Conditions = append(rep.Conditions, conditionsRow(opts.PreBounds[li]))
		}
	case opts.Region != nil:
		nb, err := bounds.Propagate(net, opts.Region)
		if err != nil {
			return nil, err
		}
		for li := 0; li < nLayers; li++ {
			rep.Conditions = append(rep.Conditions, conditionsRow(nb.Layers[li].Pre))
		}
	}
	return rep, nil
}

// conditionsRow classifies one layer's neurons from their proven
// pre-activation intervals.
func conditionsRow(pre []bounds.Interval) []Condition {
	row := make([]Condition, len(pre))
	for j, iv := range pre {
		switch {
		case iv.Lo >= 0:
			row[j] = AlwaysActive
		case iv.Hi <= 0:
			row[j] = AlwaysInactive
		default:
			row[j] = Conditional
		}
	}
	return row
}

// pathAttribution computes, for every hidden neuron, the summed absolute
// weight product over all paths from each input feature.
func pathAttribution(net *nn.Network) [][][]float64 {
	nLayers := len(net.Layers) - 1
	out := make([][][]float64, nLayers)
	// influence[k] for current layer's inputs; start with identity on inputs.
	prev := linalg.NewMatrix(net.InputDim(), net.InputDim())
	for i := range prev {
		prev[i][i] = 1
	}
	for li := 0; li < nLayers; li++ {
		layer := net.Layers[li]
		cur := linalg.NewMatrix(layer.OutDim(), net.InputDim())
		for j, row := range layer.W {
			for p, w := range row {
				if w == 0 {
					continue
				}
				linalg.Axpy(math.Abs(w), prev[p], cur[j])
			}
		}
		out[li] = cur
		prev = cur
	}
	return out
}

// topScores returns the topK features by |score|; signed keeps the sign in
// the reported score.
func topScores(scores []float64, names []string, topK int, signed bool) []FeatureScore {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return math.Abs(scores[idx[a]]) > math.Abs(scores[idx[b]])
	})
	if topK > len(idx) {
		topK = len(idx)
	}
	out := make([]FeatureScore, 0, topK)
	for _, i := range idx[:topK] {
		s := scores[i]
		if !signed {
			s = math.Abs(s)
		}
		out = append(out, FeatureScore{Feature: i, Name: names[i], Score: s})
	}
	return out
}

// DeadNeurons lists neurons never activated on the dataset — candidates for
// the "unreachable code" finding of a classical review.
func (r *Report) DeadNeurons() []NeuronInfo {
	var out []NeuronInfo
	for _, n := range r.Neurons {
		if n.ActivationRate == 0 {
			out = append(out, n)
		}
	}
	return out
}

// String renders a compact human-readable report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "traceability report for %s: %d hidden neurons\n", r.Arch, len(r.Neurons))
	for _, n := range r.Neurons {
		fmt.Fprintf(&b, "L%d/N%-3d act%%=%5.1f mean=%7.3f top:", n.Layer, n.Index, 100*n.ActivationRate, n.MeanActivation)
		for i, fs := range n.TopByWeight {
			if i > 2 {
				break
			}
			fmt.Fprintf(&b, " %s(%.2f)", fs.Name, fs.Score)
		}
		if r.Conditions != nil {
			fmt.Fprintf(&b, " [%s]", r.Conditions[n.Layer][n.Index])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
