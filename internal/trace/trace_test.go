package trace

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bounds"
	"repro/internal/nn"
)

func testNet() *nn.Network {
	// Hand-built: neuron (0,0) listens only to input 0; (0,1) only to input 1.
	return &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{2, 0}, {0, 1}}, B: []float64{0, 0}, Act: nn.ReLU},
		{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
	}}
}

func gridData(n int) [][]float64 {
	rng := rand.New(rand.NewSource(1))
	data := make([][]float64, n)
	for i := range data {
		data[i] = []float64{rng.Float64()*2 - 1, rng.Float64()*2 - 1}
	}
	return data
}

func TestAnalyzeAttributionPicksRightFeature(t *testing.T) {
	rep, err := Analyze(testNet(), gridData(200), []string{"a", "b"}, Options{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Neurons) != 2 {
		t.Fatalf("neurons = %d", len(rep.Neurons))
	}
	// Neuron 0 is driven by feature "a" with weight 2.
	if rep.Neurons[0].TopByWeight[0].Name != "a" || rep.Neurons[0].TopByWeight[0].Score != 2 {
		t.Fatalf("neuron 0 top feature = %+v", rep.Neurons[0].TopByWeight[0])
	}
	if rep.Neurons[1].TopByWeight[0].Name != "b" {
		t.Fatalf("neuron 1 top feature = %+v", rep.Neurons[1].TopByWeight[0])
	}
	// Correlation must also identify the right driver, positively.
	if rep.Neurons[0].TopByCorrelation[0].Name != "a" || rep.Neurons[0].TopByCorrelation[0].Score <= 0 {
		t.Fatalf("neuron 0 top correlation = %+v", rep.Neurons[0].TopByCorrelation[0])
	}
}

func TestActivationRate(t *testing.T) {
	// Inputs uniform in [-1,1]: relu(2a) active about half the time.
	rep, err := Analyze(testNet(), gridData(2000), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rate := rep.Neurons[0].ActivationRate
	if rate < 0.4 || rate > 0.6 {
		t.Fatalf("activation rate = %g, want ~0.5", rate)
	}
}

func TestPathAttributionMultiLayer(t *testing.T) {
	// Two layers: input 0 influences the deep neuron via path 2*3 = 6.
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{2, 0}}, B: []float64{0}, Act: nn.ReLU},
		{W: [][]float64{{3}}, B: []float64{0}, Act: nn.ReLU},
		{W: [][]float64{{1}}, B: []float64{0}, Act: nn.Identity},
	}}
	rep, err := Analyze(net, [][]float64{{0.5, 0.5}, {-0.5, 0.2}}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Second hidden layer neuron (layer 1, index 0).
	var deep *NeuronInfo
	for i := range rep.Neurons {
		if rep.Neurons[i].Layer == 1 {
			deep = &rep.Neurons[i]
		}
	}
	if deep == nil {
		t.Fatal("deep neuron missing")
	}
	if deep.TopByWeight[0].Feature != 0 || deep.TopByWeight[0].Score != 6 {
		t.Fatalf("deep attribution = %+v, want feature 0 score 6", deep.TopByWeight[0])
	}
}

func TestRegionConditions(t *testing.T) {
	// Neuron 0: pre = 2a; on region a in [0.1, 1] it is always active.
	// Neuron 1: pre = b; on b in [-1, -0.1] always inactive.
	rep, err := Analyze(testNet(), gridData(10), nil, Options{
		Region: []bounds.Interval{{Lo: 0.1, Hi: 1}, {Lo: -1, Hi: -0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Conditions[0][0] != AlwaysActive {
		t.Fatalf("neuron 0 condition = %v", rep.Conditions[0][0])
	}
	if rep.Conditions[0][1] != AlwaysInactive {
		t.Fatalf("neuron 1 condition = %v", rep.Conditions[0][1])
	}
}

func TestPreBoundsConditionsWithoutPropagation(t *testing.T) {
	// Conditions supplied through PreBounds must match what a fresh
	// propagation over the region would prove — without performing any
	// propagation pass at all (the counter is the proof).
	region := []bounds.Interval{{Lo: 0.1, Hi: 1}, {Lo: -1, Hi: -0.1}}
	nb, err := bounds.Propagate(testNet(), region)
	if err != nil {
		t.Fatal(err)
	}
	pre := [][]bounds.Interval{nb.Layers[0].Pre}

	before := bounds.Passes()
	rep, err := Analyze(testNet(), gridData(10), nil, Options{PreBounds: pre})
	if err != nil {
		t.Fatal(err)
	}
	if got := bounds.Passes() - before; got != 0 {
		t.Fatalf("Analyze with PreBounds performed %d propagation passes, want 0", got)
	}
	if rep.Conditions[0][0] != AlwaysActive || rep.Conditions[0][1] != AlwaysInactive {
		t.Fatalf("conditions from PreBounds = %v", rep.Conditions[0])
	}

	// A region-driven run costs exactly one pass and agrees.
	before = bounds.Passes()
	viaRegion, err := Analyze(testNet(), gridData(10), nil, Options{Region: region})
	if err != nil {
		t.Fatal(err)
	}
	if got := bounds.Passes() - before; got != 1 {
		t.Fatalf("Analyze with Region performed %d propagation passes, want 1", got)
	}
	for j := range rep.Conditions[0] {
		if rep.Conditions[0][j] != viaRegion.Conditions[0][j] {
			t.Fatalf("condition %d: PreBounds %v vs Region %v", j, rep.Conditions[0][j], viaRegion.Conditions[0][j])
		}
	}
}

func TestPreBoundsShapeValidation(t *testing.T) {
	if _, err := Analyze(testNet(), gridData(3), nil, Options{
		PreBounds: [][]bounds.Interval{},
	}); err == nil {
		t.Fatal("too few pre-bound rows accepted")
	}
	if _, err := Analyze(testNet(), gridData(3), nil, Options{
		PreBounds: [][]bounds.Interval{{{Lo: 0, Hi: 1}}},
	}); err == nil {
		t.Fatal("short pre-bound row accepted")
	}
}

func TestDeadNeurons(t *testing.T) {
	net := &nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}, {1}}, B: []float64{0, -100}, Act: nn.ReLU},
		{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
	}}
	rep, err := Analyze(net, [][]float64{{0.5}, {0.9}, {-0.3}}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dead := rep.DeadNeurons()
	if len(dead) != 1 || dead[0].Index != 1 {
		t.Fatalf("dead = %+v", dead)
	}
}

func TestAnalyzeValidation(t *testing.T) {
	if _, err := Analyze(testNet(), nil, nil, Options{}); err == nil {
		t.Fatal("empty data accepted")
	}
	if _, err := Analyze(testNet(), gridData(3), []string{"only-one"}, Options{}); err == nil {
		t.Fatal("wrong name count accepted")
	}
}

func TestReportString(t *testing.T) {
	rep, err := Analyze(testNet(), gridData(50), []string{"a", "b"}, Options{
		Region: []bounds.Interval{{Lo: -1, Hi: 1}, {Lo: -1, Hi: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "traceability report") || !strings.Contains(s, "conditional") {
		t.Fatalf("report string incomplete:\n%s", s)
	}
}

func TestConstantFeatureZeroCorrelation(t *testing.T) {
	data := [][]float64{{1, 0.3}, {1, -0.8}, {1, 0.5}, {1, 0.1}}
	rep, err := Analyze(testNet(), data, []string{"const", "varies"}, Options{TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	// The constant feature must not appear as the top correlation.
	for _, n := range rep.Neurons {
		if len(n.TopByCorrelation) > 0 && n.TopByCorrelation[0].Name == "const" && n.TopByCorrelation[0].Score != 0 {
			t.Fatalf("constant feature got nonzero correlation: %+v", n.TopByCorrelation[0])
		}
	}
}
