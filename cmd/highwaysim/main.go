// Command highwaysim runs the highway traffic simulator: it can render a
// live scene around an ego vehicle (the textual analogue of the paper's
// Fig. 1, left half) and generate labeled training datasets.
//
// Usage:
//
//	highwaysim -render -steps 200            # watch a scene snapshot
//	highwaysim -dataset out.json -episodes 6 # generate training data
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/highway"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("highwaysim: ")
	var (
		render   = flag.Bool("render", false, "render an ASCII scene after the run")
		steps    = flag.Int("steps", 200, "simulation steps")
		dt       = flag.Float64("dt", 0.25, "step length in seconds")
		vehicles = flag.Int("vehicles", 24, "number of vehicles")
		lanes    = flag.Int("lanes", 3, "number of lanes")
		seed     = flag.Int64("seed", 1, "random seed")
		dataset  = flag.String("dataset", "", "write a labeled dataset to this JSON file")
		episodes = flag.Int("episodes", 6, "dataset episodes")
	)
	flag.Parse()

	if *dataset != "" {
		cfg := highway.DefaultDatasetConfig()
		cfg.Episodes = *episodes
		cfg.Sim.NumVehicles = *vehicles
		cfg.Sim.Road.Lanes = *lanes
		cfg.Sim.Seed = *seed
		cfg.Dt = *dt
		data, err := highway.GenerateDataset(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := train.SaveSamples(*dataset, data); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %d samples (%d features each) to %s\n", len(data), highway.FeatureDim, *dataset)
		return
	}

	cfg := highway.DefaultConfig()
	cfg.NumVehicles = *vehicles
	cfg.Road.Lanes = *lanes
	cfg.Seed = *seed
	sim, err := highway.NewSim(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(*steps, *dt)
	if collisions := sim.CollisionCheck(); len(collisions) > 0 {
		log.Fatalf("simulator invariant broken: collisions %v", collisions)
	}
	ego := sim.Vehicles[0]
	if *render {
		fmt.Fprint(os.Stdout, sim.Render(ego, 200, 72))
		fmt.Println()
		fmt.Fprint(os.Stdout, highway.DescribeObservation(sim.Observe(ego)))
	} else {
		fmt.Printf("simulated %d vehicles for %.0fs without collisions\n", len(sim.Vehicles), sim.Time)
	}
}
