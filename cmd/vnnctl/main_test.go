package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/pkg/vnnregistry"
	"repro/pkg/vnnserver"
)

func TestRenderStatus(t *testing.T) {
	fm := vnnserver.FleetMetrics{
		Node: "a",
		Nodes: map[string]vnnserver.Metrics{
			"a": {
				Node:     "a",
				UptimeMS: 65_000,
				Build:    vnnserver.BuildInfo{Version: "v1.2.3"},
				Cache:    vnnserver.CacheStats{Bytes: 3 << 20},
				Registry: vnnregistry.Metrics{
					Ready: true,
					Versions: []vnnregistry.VersionMetric{
						{Model: "acas", Version: 2, State: "live"},
						{Model: "acas", Version: 1, State: "retired"},
					},
				},
			},
			"b": {Node: "b", Build: vnnserver.BuildInfo{Version: "v1.2.3"}},
		},
		Errors: map[string]string{"http://10.0.0.9:8419": "connection refused"},
	}
	var sb strings.Builder
	renderStatus(&sb, fm)
	out := sb.String()

	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 2 nodes + 1 unreachable
		t.Fatalf("status rendered %d lines, want 4:\n%s", len(lines), out)
	}
	// Nodes sort by id: a before b; the unreachable peer trails.
	if !strings.HasPrefix(lines[1], "a ") || !strings.HasPrefix(lines[2], "b ") {
		t.Fatalf("node order wrong:\n%s", out)
	}
	for _, want := range []string{"v1.2.3", "yes", "1m5s", "3.0MiB", "acas@2", "connection refused"} {
		if !strings.Contains(out, want) {
			t.Errorf("status output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "acas@1") {
		t.Errorf("retired version listed as live:\n%s", out)
	}
}

// topFixture builds two federation snapshots straddling a window in
// which "acme" issued 20 verify requests at ~8ms.
func topFixture(t *testing.T) (earlier, later vnnserver.FleetMetrics) {
	t.Helper()
	h := obs.NewHistogram("vnnd_tenant_request_duration_seconds", "", 1e-9)
	h.Observe(int64(time.Millisecond)) // pre-window traffic
	pre := h.Snapshot().JSON()
	earlier = vnnserver.FleetMetrics{Aggregate: vnnserver.Metrics{
		Tenants: map[string]obs.TenantSnapshot{
			"acme": {Routes: map[string]obs.TenantRouteSnapshot{
				"/v1/verify": {Requests: 1, Latency: pre},
			}},
		},
	}}
	for i := 0; i < 20; i++ {
		h.Observe(int64(8 * time.Millisecond))
	}
	post := h.Snapshot().JSON()
	later = vnnserver.FleetMetrics{Aggregate: vnnserver.Metrics{
		Tenants: map[string]obs.TenantSnapshot{
			"acme": {Routes: map[string]obs.TenantRouteSnapshot{
				"/v1/verify": {Requests: 21, Latency: post},
			}},
			"idle": {Routes: map[string]obs.TenantRouteSnapshot{
				"/v1/verify": {Requests: 0},
			}},
		},
	}}
	return earlier, later
}

func TestRenderTop(t *testing.T) {
	earlier, later := topFixture(t)
	var sb strings.Builder
	renderTop(&sb, earlier, later, 2*time.Second)
	out := sb.String()

	if !strings.Contains(out, "acme") || !strings.Contains(out, "/v1/verify") {
		t.Fatalf("top output missing the active tenant row:\n%s", out)
	}
	// 20 requests over 2s = 10.0 req/s.
	if !strings.Contains(out, "10.0") {
		t.Errorf("top rate wrong, want 10.0 req/s:\n%s", out)
	}
	// The window delta excludes the 1ms pre-window observation: both
	// quantiles land in the log2 bucket holding 8ms, reported as the
	// bucket's upper bound.
	want := fmtSeconds(float64(obs.BucketUpper(23)) * 1e-9) // 2^23-1 ns = 8.388607ms
	if got := strings.Count(out, want); got != 2 {
		t.Errorf("want p50 and p99 = %s (8ms log2 bucket upper bound), got %d occurrence(s):\n%s", want, got, out)
	}
	// Tenants with no traffic in the window are omitted.
	if strings.Contains(out, "idle") {
		t.Errorf("idle tenant rendered:\n%s", out)
	}

	// An all-idle window says so instead of printing an empty table.
	var empty strings.Builder
	renderTop(&empty, later, later, 2*time.Second)
	if !strings.Contains(empty.String(), "no tenant traffic") {
		t.Errorf("idle window not reported:\n%s", empty.String())
	}
}

func TestRenderTrace(t *testing.T) {
	doc := obs.TraceJSON{
		ID:         "q00000007",
		TraceID:    "0af7651916cd43dd8448eb211c80319c",
		Node:       "a",
		Route:      "/v1/verify",
		SpanID:     "b7ad6b7169203331",
		DurationMS: 12.5,
		Root: &obs.SpanJSON{
			Name: "/v1/verify", DurationUS: 12500,
			Children: []*obs.SpanJSON{
				{Name: "queue", DurationUS: 100},
				{Name: "solve", DurationUS: 12000, Attrs: map[string]any{"workers": 4}},
			},
		},
		Segments: []obs.TraceJSON{{
			TraceID:    "0af7651916cd43dd8448eb211c80319c",
			Node:       "b",
			Route:      "fleet.export",
			SpanID:     "00f067aa0ba902b7",
			ParentSpan: "b7ad6b7169203331",
			Root:       &obs.SpanJSON{Name: "fleet.export", DurationUS: 900},
		}},
	}
	var sb strings.Builder
	renderTrace(&sb, doc)
	out := sb.String()

	for _, want := range []string{
		"trace 0af7651916cd43dd8448eb211c80319c (job q00000007)  2 segment(s)",
		"segment node=a route=/v1/verify span=b7ad6b7169203331",
		"segment node=b route=fleet.export span=00f067aa0ba902b7 parent=b7ad6b7169203331",
		"workers=4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
	// The remote segment's tree renders under its own segment header.
	if strings.Index(out, "segment node=b") < strings.Index(out, "segment node=a") {
		t.Errorf("segments out of order:\n%s", out)
	}
	// Children indent under their parent.
	if !strings.Contains(out, "\n    queue") {
		t.Errorf("child span not indented:\n%s", out)
	}
}
