// vnnctl is the fleet operator CLI: one-line-per-node status, a
// per-tenant/per-route top view computed from two federation
// snapshots, and distributed trace rendering — all over the public
// HTTP surface of any single vnnd node (the federation and
// fetch-through planes make one node's view fleet-wide).
//
// Usage:
//
//	vnnctl [-node URL] [-timeout D] status
//	vnnctl [-node URL] [-timeout D] top [-interval D]
//	vnnctl [-node URL] [-timeout D] trace <id>
//
// status asks GET /v1/fleet/metrics and prints one line per reachable
// node: id, build version, readiness, compile-cache bytes, live
// models. top takes TWO federation snapshots interval apart and
// prints, per tenant and route, the request rate plus p50/p99 latency
// over that window (histogram deltas are exact: the log2 buckets
// subtract bucket-wise). trace fetches GET /debug/traces/{id} — job id
// or W3C trace id — and renders the span tree, including the segments
// other nodes recorded for the same distributed trace.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/pkg/vnnserver"
)

func main() {
	var (
		node    = flag.String("node", "http://127.0.0.1:8419", "base URL of any vnnd node")
		timeout = flag.Duration("timeout", 10*time.Second, "per-request budget")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: vnnctl [-node URL] [-timeout D] {status | top [-interval D] | trace <id>}\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}

	base := strings.TrimSuffix(*node, "/")
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	var err error
	switch cmd := flag.Arg(0); cmd {
	case "status":
		err = cmdStatus(ctx, os.Stdout, base)
	case "top":
		fs := flag.NewFlagSet("top", flag.ExitOnError)
		interval := fs.Duration("interval", 2*time.Second, "sampling window between the two snapshots")
		fs.Parse(flag.Args()[1:])
		// The window sleep must fit inside the request budget.
		ctx, cancel := context.WithTimeout(context.Background(), *timeout+*interval)
		defer cancel()
		err = cmdTop(ctx, os.Stdout, base, *interval)
	case "trace":
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: vnnctl trace <id>")
			os.Exit(2)
		}
		err = cmdTrace(ctx, os.Stdout, base, flag.Arg(1))
	default:
		fmt.Fprintf(os.Stderr, "vnnctl: unknown command %q\n", cmd)
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vnnctl: %v\n", err)
		os.Exit(1)
	}
}

// getJSON fetches one URL and decodes the JSON document into v.
func getJSON(ctx context.Context, url string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%s: HTTP %d: %s", url, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

func fetchFleet(ctx context.Context, base string) (vnnserver.FleetMetrics, error) {
	var fm vnnserver.FleetMetrics
	err := getJSON(ctx, base+"/v1/fleet/metrics", &fm)
	return fm, err
}

func cmdStatus(ctx context.Context, w io.Writer, base string) error {
	fm, err := fetchFleet(ctx, base)
	if err != nil {
		return err
	}
	renderStatus(w, fm)
	return nil
}

func cmdTop(ctx context.Context, w io.Writer, base string, interval time.Duration) error {
	earlier, err := fetchFleet(ctx, base)
	if err != nil {
		return err
	}
	select {
	case <-time.After(interval):
	case <-ctx.Done():
		return ctx.Err()
	}
	later, err := fetchFleet(ctx, base)
	if err != nil {
		return err
	}
	renderTop(w, earlier, later, interval)
	return nil
}

func cmdTrace(ctx context.Context, w io.Writer, base, id string) error {
	var doc obs.TraceJSON
	if err := getJSON(ctx, base+"/debug/traces/"+id, &doc); err != nil {
		return err
	}
	renderTrace(w, doc)
	return nil
}
