// Rendering for the vnnctl subcommands, separated from the HTTP
// fetching so the unit tests drive it with fixture documents.
package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/obs"
	"repro/pkg/vnnserver"
)

// renderStatus prints one line per node, sorted by node id, then one
// line per unreachable peer. The "live" column lists the models whose
// live version this node serves (model@seq).
func renderStatus(w io.Writer, fm vnnserver.FleetMetrics) {
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintln(tw, "NODE\tVERSION\tREADY\tUPTIME\tCACHE\tLIVE MODELS")
	ids := make([]string, 0, len(fm.Nodes))
	for id := range fm.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		m := fm.Nodes[id]
		ready := "no"
		if m.Registry.Ready {
			ready = "yes"
		}
		var live []string
		for _, v := range m.Registry.Versions {
			if v.State == "live" {
				live = append(live, fmt.Sprintf("%s@%d", v.Model, v.Version))
			}
		}
		sort.Strings(live)
		liveCol := strings.Join(live, ",")
		if liveCol == "" {
			liveCol = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\n",
			id, m.Build.Version, ready,
			(time.Duration(m.UptimeMS) * time.Millisecond).Round(time.Second),
			fmtBytes(m.Cache.Bytes), liveCol)
	}
	urls := make([]string, 0, len(fm.Errors))
	for u := range fm.Errors {
		urls = append(urls, u)
	}
	sort.Strings(urls)
	for _, u := range urls {
		fmt.Fprintf(tw, "%s\tunreachable: %s\n", u, fm.Errors[u])
	}
	tw.Flush()
}

// renderTop prints the per-tenant, per-route view of the sampling
// window between two federation snapshots: request rate, p50 and p99
// latency. Histogram deltas are exact (bucket-wise subtraction of
// identical log2 boundaries), so the quantiles describe ONLY the
// window's traffic — a long-running fleet's history cannot smear them.
func renderTop(w io.Writer, earlier, later vnnserver.FleetMetrics, window time.Duration) {
	secs := window.Seconds()
	if secs <= 0 {
		secs = 1
	}
	tw := tabwriter.NewWriter(w, 2, 8, 2, ' ', 0)
	fmt.Fprintf(tw, "TENANT\tROUTE\tREQ/S\tP50\tP99\n")
	tenants := make([]string, 0, len(later.Aggregate.Tenants))
	for t := range later.Aggregate.Tenants {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	rows := 0
	for _, t := range tenants {
		now := later.Aggregate.Tenants[t]
		prev := earlier.Aggregate.Tenants[t] // zero value if new this window
		routes := make([]string, 0, len(now.Routes))
		for rt := range now.Routes {
			routes = append(routes, rt)
		}
		sort.Strings(routes)
		for _, rt := range routes {
			nr := now.Routes[rt]
			delta := nr.Latency.Delta(prev.Routes[rt].Latency)
			dReq := nr.Requests - prev.Routes[rt].Requests
			if dReq <= 0 {
				continue // idle this window
			}
			fmt.Fprintf(tw, "%s\t%s\t%.1f\t%s\t%s\n",
				t, rt, float64(dReq)/secs,
				fmtSeconds(delta.Quantile(0.50)), fmtSeconds(delta.Quantile(0.99)))
			rows++
		}
	}
	if rows == 0 {
		fmt.Fprintf(tw, "(no tenant traffic in the last %s)\n", window)
	}
	tw.Flush()
}

// renderTrace prints one distributed trace: the primary segment's span
// tree, then every other segment (local siblings and peer-held ones)
// with the node that recorded it.
func renderTrace(w io.Writer, doc obs.TraceJSON) {
	fmt.Fprintf(w, "trace %s", doc.TraceID)
	if doc.ID != "" && doc.ID != doc.TraceID {
		fmt.Fprintf(w, " (job %s)", doc.ID)
	}
	fmt.Fprintf(w, "  %d segment(s)\n", 1+len(doc.Segments))
	renderSegment(w, doc)
	// Peer segments sorted by node then route, so the tree is stable.
	segs := append([]obs.TraceJSON(nil), doc.Segments...)
	sort.Slice(segs, func(i, j int) bool {
		if segs[i].Node != segs[j].Node {
			return segs[i].Node < segs[j].Node
		}
		return segs[i].Route < segs[j].Route
	})
	for _, seg := range segs {
		renderSegment(w, seg)
	}
}

// renderSegment prints one node's span tree.
func renderSegment(w io.Writer, seg obs.TraceJSON) {
	node := seg.Node
	if node == "" {
		node = "?"
	}
	fmt.Fprintf(w, "segment node=%s route=%s span=%s", node, seg.Route, seg.SpanID)
	if seg.ParentSpan != "" {
		fmt.Fprintf(w, " parent=%s", seg.ParentSpan)
	}
	fmt.Fprintf(w, "  %.3fms\n", seg.DurationMS)
	if seg.Root != nil {
		renderSpan(w, seg.Root, 1)
	}
}

// renderSpan prints one span and recurses into its children.
func renderSpan(w io.Writer, sp *obs.SpanJSON, depth int) {
	fmt.Fprintf(w, "%s%s  %.3fms", strings.Repeat("  ", depth), sp.Name, sp.DurationUS/1e3)
	if len(sp.Attrs) > 0 {
		keys := make([]string, 0, len(sp.Attrs))
		for k := range sp.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%v", k, sp.Attrs[k])
		}
	}
	fmt.Fprintln(w)
	for _, c := range sp.Children {
		renderSpan(w, c, depth+1)
	}
}

// fmtBytes renders a byte count with a binary unit.
func fmtBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%dB", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f%ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// fmtSeconds renders a latency in the most readable unit.
func fmtSeconds(s float64) string {
	return time.Duration(s * float64(time.Second)).Round(time.Microsecond).String()
}
