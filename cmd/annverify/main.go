// Command annverify formally verifies a trained motion predictor against
// the paper's safety properties through the public pkg/vnn API: it compiles
// the network against the property region once, then answers max-objective
// queries, threshold proofs, and resilience searches on the shared
// encoding. The network must have ReLU hidden layers and a linear gmm head
// as produced by anntrain.
//
// Interrupting a query (deadline or Ctrl-C would map to the same context
// cancellation) yields an anytime answer: the best witness found and the
// tightest proven bound so far, never a bare timeout.
//
// Usage:
//
//	annverify -net i4x10.json                 # maximum lateral velocity
//	annverify -net i4x10.json -prove 3.0      # prove the 3 m/s bound
//	annverify -net i4x10.json -timeout 5m     # deadline (tightening included)
//	annverify -net i4x10.json -workers 1      # force the sequential engine
//	annverify -net i4x10.json -progress       # stream incumbent/bound events
//	annverify -net i4x10.json -json           # machine-readable results
//
// With -json the output is the wire Report document (vnn.Report) — the
// same schema the vnnd verification service returns over HTTP, so scripts
// parse CLI runs and service responses with one decoder.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"repro/pkg/vnn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annverify: ")
	var (
		netPath    = flag.String("net", "", "network JSON file (required)")
		prove      = flag.Float64("prove", 0, "prove lateral velocity <= this bound (m/s); 0 = compute maximum instead")
		timeout    = flag.Duration("timeout", 0, "verification deadline, bound tightening included (0 = none)")
		tighten    = flag.Bool("tighten", false, "LP-based bound tightening at compile time")
		front      = flag.Bool("front", false, "verify the front-gap acceleration property instead")
		resilience = flag.Bool("resilience", false, "compute the resilience radius around an all-0.5 nominal input")
		workers    = flag.Int("workers", 0, "branch-and-bound workers per MILP solve (0 = all cores, 1 = sequential)")
		progress   = flag.Bool("progress", false, "stream incumbent/bound/node progress events")
		jsonOut    = flag.Bool("json", false, "emit the machine-readable Report document (shared with the vnnd service) on stdout")
	)
	flag.Parse()
	if *netPath == "" {
		log.Fatal("-net is required")
	}
	net, k, err := vnn.LoadGMMNetwork(*netPath)
	if err != nil {
		log.Fatal(err)
	}
	human := !*jsonOut
	opts := vnn.Options{Tighten: *tighten, Workers: *workers}
	if *progress && human {
		opts.Progress = func(ev vnn.Event) {
			fmt.Printf("  [prop %d] nodes=%-7d open=%-6d bound=%.4f", ev.Property, ev.Nodes, ev.Open, ev.Bound)
			if ev.HasIncumbent {
				fmt.Printf("  incumbent=%.4f", ev.Incumbent)
			}
			fmt.Printf("  (%.1fs)\n", ev.Elapsed.Seconds())
		}
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if human {
		fmt.Printf("network %s (%s): %d hidden neurons, %d mixture components\n",
			net.Name, net.ArchString(), net.HiddenNeurons(), k)
	}

	region := vnn.LeftOccupiedRegion()
	outputs := vnn.MuLatOutputs(k)
	quantity := "lateral velocity"
	if *front {
		region = vnn.FrontCloseRegion()
		outputs = vnn.MuLongOutputs(k)
		quantity = "longitudinal acceleration"
	}
	if human {
		if *front {
			fmt.Println("property region: a vehicle is close ahead of the ego vehicle")
		} else {
			fmt.Println("property region: a vehicle exists on the ego vehicle's left")
		}
	}

	cn, err := vnn.Compile(ctx, net, region, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Every mode collects its results here; -json renders them through the
	// shared wire schema instead of the human text.
	var results []*vnn.Result

	switch {
	case *resilience:
		// Nominal point: every normalized feature mid-range, clamped into
		// the region box so pinned or narrowed coordinates stay inside the
		// search domain.
		x0 := make([]float64, net.InputDim())
		for i, iv := range region.Box {
			x0[i] = math.Min(iv.Hi, math.Max(iv.Lo, 0.5))
		}
		thr := 3.0
		if *prove > 0 {
			thr = *prove
		}
		res, err := vnn.VerifyOne(ctx, cn, vnn.ResilienceRadius(x0, outputs[0], thr, 10))
		if err != nil {
			log.Fatal(err)
		}
		results = []*vnn.Result{res}
		if human {
			fmt.Printf("resilience: component-0 mean stays <= %.2f for all perturbations |δ|∞ <= %.4f\n", thr, res.Radius)
			if res.Witness != nil {
				fmt.Printf("  first violation found beyond that radius reaches %.4f\n", res.Value)
			}
			fmt.Printf("  (%d MILP queries, %.1fs)\n", res.Iterations, res.Stats.Elapsed.Seconds())
		}

	case *prove > 0:
		// One threshold proof per mixture component, batched on the shared
		// encoding.
		props := make([]vnn.Property, 0, k)
		for _, out := range outputs {
			props = append(props, vnn.AtMost(out, *prove))
		}
		results, err = vnn.Verify(ctx, cn, props...)
		if err != nil {
			log.Fatal(err)
		}
		if human {
			var elapsed time.Duration
			for _, r := range results {
				elapsed += r.Stats.Elapsed
			}
			fmt.Printf("prove %s <= %.2f: %v  (%.1fs)\n", quantity, *prove, vnn.Worst(results), elapsed.Seconds())
			for i, r := range results {
				switch r.Outcome {
				case vnn.Violated:
					fmt.Printf("  component %d violated: value %.4f\n", i, r.Value)
				case vnn.Inconclusive:
					fmt.Printf("  component %d inconclusive: proven <= %.4f so far (anytime bound)\n", i, r.UpperBound)
				}
			}
		}

	default:
		res, err := vnn.VerifyOne(ctx, cn, vnn.MaxOverOutputs(outputs...))
		if err != nil {
			log.Fatal(err)
		}
		results = []*vnn.Result{res}
		if human {
			// One row in the shape of the paper's Table II.
			fmt.Printf("%-8s max-%s=%8.6f  exact=%-5v  time=%8.1fs  nodes=%d  binaries=%d/%d\n",
				net.ArchString(), shortName(*front), res.Value, res.Exact, res.Stats.Elapsed.Seconds(),
				res.Stats.Nodes, res.Stats.Binaries, res.Stats.HiddenNeurons)
			if !res.Exact {
				fmt.Printf("  (interrupted: best found %.4f, proven upper bound %.4f — the anytime answer behind the paper's \"n.a.\" row)\n",
					res.Value, res.UpperBound)
			}
		}
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(vnn.NewReport(net, results)); err != nil {
			log.Fatal(err)
		}
	}
}

func shortName(front bool) string {
	if front {
		return "long-accel"
	}
	return "lat-vel"
}
