// Command annverify formally verifies a trained motion predictor against
// the paper's safety property: with a vehicle on the ego's left, bound the
// maximum lateral velocity the network can suggest, or prove a threshold
// (Table II). The network must have ReLU hidden layers and a linear gmm
// head as produced by anntrain.
//
// Usage:
//
//	annverify -net i4x10.json                 # maximum lateral velocity
//	annverify -net i4x10.json -prove 3.0      # prove the 3 m/s bound
//	annverify -net i4x10.json -timeout 5m     # with a time limit
//	annverify -net i4x10.json -workers 1      # force the sequential engine
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/gmm"
	"repro/internal/nn"
	"repro/internal/verify"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("annverify: ")
	var (
		netPath    = flag.String("net", "", "network JSON file (required)")
		prove      = flag.Float64("prove", 0, "prove lateral velocity <= this bound (m/s); 0 = compute maximum instead")
		timeout    = flag.Duration("timeout", 0, "verification time limit (0 = none)")
		tighten    = flag.Bool("tighten", false, "LP-based bound tightening before encoding")
		front      = flag.Bool("front", false, "verify the front-gap acceleration property instead")
		resilience = flag.Bool("resilience", false, "compute the resilience radius around an all-0.5 nominal input")
		workers    = flag.Int("workers", 0, "branch-and-bound workers per MILP solve (0 = all cores, 1 = sequential)")
	)
	flag.Parse()
	if *netPath == "" {
		log.Fatal("-net is required")
	}
	net, err := nn.Load(*netPath)
	if err != nil {
		log.Fatal(err)
	}
	if net.OutputDim()%gmm.RawPerComponent != 0 {
		log.Fatalf("network output %d is not a gmm head", net.OutputDim())
	}
	pred := &core.Predictor{Net: net, K: net.OutputDim() / gmm.RawPerComponent}
	opts := verify.Options{TimeLimit: *timeout, Tighten: *tighten, Workers: *workers}

	fmt.Printf("network %s (%s): %d hidden neurons, %d mixture components\n",
		net.Name, net.ArchString(), net.HiddenNeurons(), pred.K)

	if *resilience {
		// Nominal point: every normalized feature mid-range, left occupied.
		x0 := make([]float64, net.InputDim())
		for i := range x0 {
			x0[i] = 0.5
		}
		region := core.LeftOccupiedRegion()
		for i, iv := range region.Box {
			if iv.Lo == iv.Hi {
				x0[i] = iv.Lo
			}
		}
		dom := region.Box
		thr := 3.0
		if *prove > 0 {
			thr = *prove
		}
		out := pred.MuLatOutputs()[0]
		res, err := verify.Resilience(net, x0, dom, out, thr, verify.ResilienceOptions{
			MaxIterations: 10,
			Query:         opts,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("resilience: component-0 mu_lat stays <= %.2f m/s for all perturbations |δ|∞ <= %.4f\n", thr, res.Epsilon)
		if res.Breaking != nil {
			fmt.Printf("  first violation found beyond that radius reaches %.4f m/s\n", res.BreakingValue)
		}
		fmt.Printf("  (%d MILP queries, %.1fs)\n", res.Iterations, res.Elapsed.Seconds())
		return
	}

	if *front {
		fmt.Println("property region: a vehicle is close ahead of the ego vehicle")
		res, err := pred.VerifyFrontSafety(opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s max-long-accel=%8.6f  exact=%-5v  time=%8.1fs\n",
			net.ArchString(), res.Value, res.Exact, res.Stats.Elapsed.Seconds())
		return
	}

	fmt.Println("property region: a vehicle exists on the ego vehicle's left")

	if *prove > 0 {
		outcome, results, err := pred.ProveSafetyBound(*prove, opts)
		if err != nil {
			log.Fatal(err)
		}
		var elapsed time.Duration
		for _, r := range results {
			elapsed += r.Stats.Elapsed
		}
		fmt.Printf("prove lateral velocity <= %.2f m/s: %v  (%.1fs)\n", *prove, outcome, elapsed.Seconds())
		for i, r := range results {
			if r.Outcome == verify.Violated {
				fmt.Printf("  component %d violated: value %.4f m/s\n", i, r.CounterValue)
			}
		}
		return
	}

	res, err := pred.VerifySafety(opts)
	if err != nil {
		log.Fatal(err)
	}
	// One row in the shape of the paper's Table II.
	fmt.Printf("%-8s max-lat-vel=%8.6f  exact=%-5v  time=%8.1fs  nodes=%d  binaries=%d/%d\n",
		net.ArchString(), res.Value, res.Exact, res.Stats.Elapsed.Seconds(),
		res.Stats.Nodes, res.Stats.Binaries, res.Stats.HiddenNeurons)
	if !res.Exact {
		fmt.Printf("  (timeout: best found %.4f, proven upper bound %.4f — the paper's \"n.a.\" row)\n",
			res.Value, res.UpperBound)
	}
}
