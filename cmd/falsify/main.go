// Command falsify runs gradient-guided attacks (PGD with restarts) against
// a trained motion predictor's safety property — the fast, incomplete
// counterpart to cmd/annverify, driven through the same pkg/vnn query
// surface and emitting the same wire Report (-json) the vnnd service
// returns for a falsify-kind analysis. A found violation is a definitive
// counterexample; finding nothing proves nothing (use annverify for
// proof).
//
// Usage:
//
//	falsify -net i4x10.json                  # attack the left-lane property
//	falsify -net i4x10.json -threshold 1.0   # report only if > 1 m/s found
//	falsify -net i4x10.json -json            # machine-readable wire Report
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/highway"
	"repro/pkg/vnn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("falsify: ")
	var (
		netPath   = flag.String("net", "", "network JSON file (required)")
		threshold = flag.Float64("threshold", 3.0, "lateral velocity considered unsafe (m/s)")
		restarts  = flag.Int("restarts", 16, "attack restarts per mixture component")
		steps     = flag.Int("steps", 80, "PGD steps per restart")
		seed      = flag.Int64("seed", 1, "random seed")
		jsonOut   = flag.Bool("json", false, "emit the finding as the machine-readable wire Report (shared with the vnnd service)")
	)
	flag.Parse()
	if *netPath == "" {
		log.Fatal("-net is required")
	}
	net, k, err := vnn.LoadGMMNetwork(*netPath)
	if err != nil {
		log.Fatal(err)
	}

	// The attack is gradient-only: no compile, no MILP — that is the
	// point of the pre-pass (and it works on activations the verifier
	// cannot encode). The finding still speaks the shared wire schema.
	res, err := vnn.FalsifyCtx(context.Background(), net, vnn.LeftOccupiedRegion(), vnn.MuLatOutputs(k), vnn.FalsifyOptions{
		Restarts: *restarts, Steps: *steps, Seed: *seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		finding := &vnn.Finding{Kind: vnn.KindFalsify, Falsification: res}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(vnn.NewAnalysisReport(net, []*vnn.Finding{finding})); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("%s: strongest attack reached %.4f m/s after %d evaluations\n",
		net.ArchString(), res.Value, res.Evaluations)
	if res.Value > *threshold {
		fmt.Printf("VIOLATION: exceeds the %.2f m/s threshold\n", *threshold)
		fmt.Println("counterexample (named features deviating from 0.5):")
		names := highway.FeatureNames()
		for i, v := range res.Best {
			if v < 0.25 || v > 0.75 {
				fmt.Printf("  %-24s %.3f\n", names[i], v)
			}
		}
	} else {
		fmt.Printf("no violation of %.2f m/s found — not a proof; run annverify -prove %.1f\n",
			*threshold, *threshold)
	}
}
