// Command anntrain trains a motion-predictor network of the paper's
// I<depth>×<width> family on simulator data and saves it as JSON.
//
// Usage:
//
//	anntrain -depth 4 -width 10 -epochs 30 -out i4x10.json
//	anntrain -data data.json -hints -out hinted.json
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/highway"
	"repro/internal/train"
	"repro/pkg/vnn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("anntrain: ")
	var (
		depth    = flag.Int("depth", 4, "hidden layers")
		width    = flag.Int("width", 10, "neurons per hidden layer")
		comps    = flag.Int("k", core.DefaultComponents, "mixture components")
		epochs   = flag.Int("epochs", 30, "training epochs")
		seed     = flag.Int64("seed", 1, "random seed")
		dataPath = flag.String("data", "", "dataset JSON (generated fresh when empty)")
		out      = flag.String("out", "predictor.json", "output network file")
		hints    = flag.Bool("hints", false, "enable property-penalty (hints) training")
		hintThr  = flag.Float64("hint-threshold", 0.5, "lateral velocity penalty threshold (m/s)")
		lr       = flag.Float64("lr", 0.003, "Adam learning rate")
	)
	flag.Parse()

	var data []train.Sample
	var err error
	if *dataPath != "" {
		data, err = train.LoadSamples(*dataPath)
	} else {
		cfg := highway.DefaultDatasetConfig()
		cfg.Sim.Seed = *seed
		data, err = highway.GenerateDataset(cfg)
	}
	if err != nil {
		log.Fatal(err)
	}

	// Data is specification: validate before training (Sec. II (C)).
	rules := core.SafetyRules(1e-9)
	report := vnn.ValidateData(data, rules)
	fmt.Print(report)
	clean, removed := vnn.SanitizeData(data, rules)
	if removed > 0 {
		fmt.Printf("sanitized: removed %d risky samples\n", removed)
	}

	pred := core.NewPredictorNet(*depth, *width, *comps, *seed)
	var loss train.Loss = train.MDN{K: *comps}
	if *hints {
		loss = train.HintPenalty{
			Base:      loss,
			Predicate: highway.LeftOccupiedInFeatures,
			Threshold: *hintThr,
			Lambda:    4,
			K:         *comps,
		}
	}
	trainer := &train.Trainer{
		Net:       pred.Net,
		Loss:      loss,
		Opt:       train.NewAdam(*lr),
		BatchSize: 64,
		Rng:       rand.New(rand.NewSource(*seed + 2)),
		ClipNorm:  20,
	}
	trainSet, valSet := train.Split(clean, 0.15, rand.New(rand.NewSource(*seed+1)))
	for e := 0; e < *epochs; e++ {
		l := trainer.Epoch(trainSet)
		if e%5 == 0 || e == *epochs-1 {
			fmt.Printf("epoch %3d  loss %.4f\n", e, l)
		}
	}
	if len(valSet) > 0 {
		fmt.Printf("validation loss %.4f\n", trainer.MeanLoss(valSet))
	}
	if err := pred.Net.Save(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved %s (%s, %d raw outputs = %d mixture components)\n",
		*out, pred.Net.ArchString(), pred.Net.OutputDim(), *comps)
}
