// Command benchrun regenerates and gates the committed benchmark
// ladders: BENCH_infer.json (the inference plane — see DESIGN.md
// "Kernel layer") and BENCH_fleet.json (the fleet plane's riblt
// encode/decode throughput — see DESIGN.md "Fleet replication").
// -suite selects which (default "infer").
//
// Regenerate a ladder — numbers are machine-dependent, so the commit
// and date are recorded alongside them and must be passed in (benchrun
// never reads the wall clock or shells out to git):
//
//	go run ./cmd/benchrun -commit $(git rev-parse --short HEAD) \
//	  -date 2026-08-08 -out BENCH_infer.json
//	go run ./cmd/benchrun -suite fleet -commit $(git rev-parse --short HEAD) \
//	  -date 2026-08-08 -out BENCH_fleet.json
//
// Gate a change against the committed ladder — re-runs the same
// benchmarks and fails if any hot-path benchmark regresses by more than
// -tolerance in ns/op, or if a benchmark the baseline records as
// allocation-free allocates:
//
//	go run ./cmd/benchrun -against BENCH_infer.json \
//	  -benchtime 1000x -count 5
//
// Each benchmark's best (minimum) ns/op across -count runs is compared,
// which filters scheduler noise; allocs/op uses the maximum so a single
// allocating run fails the zero-alloc gate.
//
// -summary merges every committed ladder into one top-level
// BENCH_summary.json (no benchmarks are run):
//
//	go run ./cmd/benchrun -summary BENCH_summary.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type suite struct {
	pkg   string
	bench string
}

// suiteSets are the benchmark ladders, keyed by -suite. "infer" walks
// kernels alone, packed forwards, then the end-to-end HTTP plane —
// together they localise a regression (a slow /v1/infer with a fast
// MatVec is protocol overhead, not kernels). "fleet" measures the
// rateless reconciliation codec: coded-symbol production over a large
// set, and decode cost at several symmetric-difference sizes (the
// decode benchmarks pin that cost scales with the difference, not the
// set — symbols/op is the committed evidence).
var suiteSets = map[string]struct {
	schema string
	suites []suite
}{
	"infer": {"bench-infer/v1", []suite{
		{"./internal/linalg/", "BenchmarkMatVec|BenchmarkMatVecDot|BenchmarkMatMulTB"},
		{"./internal/nn/", "BenchmarkForwardInto|BenchmarkForwardBatchInto|BenchmarkForward$"},
		{"./internal/obs/", "BenchmarkObserve"},
		{"./pkg/vnnserver/", "BenchmarkInferHTTP"},
	}},
	"fleet": {"bench-fleet/v1", []suite{
		{"./internal/riblt/", "BenchmarkEncode|BenchmarkDecode"},
	}},
}

// Result is one benchmark's recorded numbers.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// InputsPerS is the custom throughput metric the HTTP benchmarks
	// report; zero for benchmarks that do not emit it.
	InputsPerS float64 `json:"inputs_per_s,omitempty"`
	// SymbolsPerS / SymbolsPerOp are the riblt codec metrics: coded
	// symbols per second, and symbols consumed per decode (the
	// difference-scaling evidence). Zero outside the fleet suite.
	SymbolsPerS  float64 `json:"symbols_per_s,omitempty"`
	SymbolsPerOp float64 `json:"symbols_per_op,omitempty"`
}

// File is the BENCH_infer.json document.
type File struct {
	Schema     string   `json:"schema"`
	Commit     string   `json:"commit"`
	Date       string   `json:"date"`
	Go         string   `json:"go"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchtime  string   `json:"benchtime"`
	Count      int      `json:"count"`
	Benchmarks []Result `json:"benchmarks"`
	// Baseline preserves the pre-kernel numbers this ladder is measured
	// against (PR 5's legacy Dot-order serving path), so the speedup
	// claims in DESIGN.md stay auditable from the repo alone.
	Baseline []Result `json:"baseline,omitempty"`
}

func main() {
	var (
		commit    = flag.String("commit", "", "commit hash to record (required with -out)")
		date      = flag.String("date", "", "ISO date to record (required with -out; benchrun never reads the clock)")
		out       = flag.String("out", "", "write a fresh BENCH_infer.json here")
		against   = flag.String("against", "", "gate mode: compare a fresh run against this committed ladder")
		benchtime = flag.String("benchtime", "1000x", "go test -benchtime per run")
		count     = flag.Int("count", 5, "go test -count (best-of filters noise)")
		tolerance = flag.Float64("tolerance", 0.15, "gate mode: allowed fractional ns/op regression")
		keepBase  = flag.Bool("keep-baseline", true, "with -out and -against absent: copy the baseline block from an existing output file")
		suiteName = flag.String("suite", "infer", "benchmark ladder to run: infer or fleet")
		summary   = flag.String("summary", "", "merge the committed ladders into this top-level summary file (runs nothing)")
	)
	flag.Parse()

	set, ok := suiteSets[*suiteName]
	if !ok {
		fatal("unknown suite %q (want infer or fleet)", *suiteName)
	}

	if *summary != "" {
		if *out != "" || *against != "" {
			fatal("-summary is exclusive with -out and -against")
		}
		writeSummary(*summary)
		return
	}
	if (*out == "") == (*against == "") {
		fatal("exactly one of -out, -against or -summary is required")
	}
	if *out != "" && (*commit == "" || *date == "") {
		fatal("-out requires -commit and -date (benchrun records provenance, it does not invent it)")
	}

	results, err := runSuites(set.suites, *benchtime, *count)
	if err != nil {
		fatal("%v", err)
	}

	if *against != "" {
		gate(*against, results, *tolerance)
		return
	}

	f := File{
		Schema:     set.schema,
		Commit:     *commit,
		Date:       *date,
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Benchtime:  *benchtime,
		Count:      *count,
		Benchmarks: results,
	}
	if *keepBase {
		if old, err := load(*out); err == nil {
			f.Baseline = old.Baseline
		}
	}
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", *out, len(results))
}

// referenceBench marks the legacy-order comparison benchmarks. They are
// recorded in the ladder (they are the "before" of the speedup story)
// but not gated: a slow reference path is not a serving regression.
var referenceBench = regexp.MustCompile(`^(BenchmarkForward$|BenchmarkMatVecDot(/|$))`)

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkForwardInto-4  1000  1292 ns/op  68123 inputs/s  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)$`)

func runSuites(suites []suite, benchtime string, count int) ([]Result, error) {
	best := map[string]*Result{}
	var order []string
	for _, s := range suites {
		args := []string{"test", "-run=NONE", "-bench=" + s.bench, "-benchmem",
			"-benchtime=" + benchtime, "-count=" + strconv.Itoa(count), s.pkg}
		cmd := exec.Command("go", args...)
		cmd.Stderr = os.Stderr
		outBuf, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
		}
		for _, line := range strings.Split(string(outBuf), "\n") {
			m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
			if m == nil {
				continue
			}
			name := m[1]
			ns, _ := strconv.ParseFloat(m[2], 64)
			allocs := int64(-1)
			inputs, symPerS, symPerOp := 0.0, 0.0, 0.0
			for _, f := range regexp.MustCompile(`([\d.]+) (\S+)`).FindAllStringSubmatch(m[3], -1) {
				switch f[2] {
				case "allocs/op":
					allocs, _ = strconv.ParseInt(f[1], 10, 64)
				case "inputs/s":
					inputs, _ = strconv.ParseFloat(f[1], 64)
				case "symbols/s":
					symPerS, _ = strconv.ParseFloat(f[1], 64)
				case "symbols/op":
					symPerOp, _ = strconv.ParseFloat(f[1], 64)
				}
			}
			r, ok := best[name]
			if !ok {
				best[name] = &Result{Name: name, NsPerOp: ns, AllocsPerOp: allocs,
					InputsPerS: inputs, SymbolsPerS: symPerS, SymbolsPerOp: symPerOp}
				order = append(order, name)
				continue
			}
			if ns < r.NsPerOp {
				r.NsPerOp = ns
			}
			if allocs > r.AllocsPerOp {
				r.AllocsPerOp = allocs
			}
			if inputs > r.InputsPerS {
				r.InputsPerS = inputs
			}
			if symPerS > r.SymbolsPerS {
				r.SymbolsPerS = symPerS
			}
			// symbols/op is a determinism check, not a race: every run
			// consumes the same count, so keep the last parsed value.
			if symPerOp > 0 {
				r.SymbolsPerOp = symPerOp
			}
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no benchmark lines parsed")
	}
	sort.Strings(order)
	results := make([]Result, 0, len(order))
	for _, name := range order {
		results = append(results, *best[name])
	}
	return results, nil
}

func gate(path string, fresh []Result, tol float64) {
	base, err := load(path)
	if err != nil {
		fatal("%v", err)
	}
	got := map[string]Result{}
	for _, r := range fresh {
		got[r.Name] = r
	}
	failed := false
	for _, b := range base.Benchmarks {
		f, ok := got[b.Name]
		if !ok {
			fmt.Printf("FAIL %-28s missing from fresh run\n", b.Name)
			failed = true
			continue
		}
		ratio := f.NsPerOp / b.NsPerOp
		status := "ok  "
		// Sub-microsecond kernels see proportionally large timer noise;
		// the flat 100ns slack keeps the gate meaningful for them
		// without loosening the big benchmarks.
		switch {
		case referenceBench.MatchString(b.Name):
			status = "ref "
		case f.NsPerOp > b.NsPerOp*(1+tol)+100:
			status = "FAIL"
			failed = true
		}
		if b.AllocsPerOp == 0 && f.AllocsPerOp > 0 {
			fmt.Printf("FAIL %-28s allocates (%d allocs/op, baseline 0)\n", b.Name, f.AllocsPerOp)
			failed = true
		}
		fmt.Printf("%s %-28s %12.1f ns/op  baseline %12.1f  (%.2fx)\n",
			status, b.Name, f.NsPerOp, b.NsPerOp, ratio)
	}
	if failed {
		fatal("benchmark gate failed (tolerance %.0f%%)", tol*100)
	}
	fmt.Println("benchmark gate passed")
}

// summaryLadders maps each suite to its committed ladder file.
var summaryLadders = map[string]string{
	"infer": "BENCH_infer.json",
	"fleet": "BENCH_fleet.json",
}

// SummaryEntry is one ladder in BENCH_summary.json, keyed by
// (suite, commit): two entries with the same suite name but different
// commits are different measurement events, never merged.
type SummaryEntry struct {
	Suite      string   `json:"suite"`
	Schema     string   `json:"schema"`
	Commit     string   `json:"commit"`
	Date       string   `json:"date"`
	Go         string   `json:"go"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Benchtime  string   `json:"benchtime"`
	Count      int      `json:"count"`
	Benchmarks []Result `json:"benchmarks"`
}

// Summary is the merged BENCH_summary.json document.
type Summary struct {
	Schema string         `json:"schema"`
	Suites []SummaryEntry `json:"suites"`
}

// writeSummary merges the committed ladders into one summary document.
// Provenance (commit, date, environment) is copied from each ladder —
// the ladders are the measurement records; the summary only aggregates.
func writeSummary(path string) {
	names := make([]string, 0, len(summaryLadders))
	for name := range summaryLadders {
		names = append(names, name)
	}
	sort.Strings(names)
	s := Summary{Schema: "bench-summary/v1"}
	for _, name := range names {
		f, err := load(summaryLadders[name])
		if err != nil {
			fmt.Printf("skipping %s ladder: %v\n", name, err)
			continue
		}
		s.Suites = append(s.Suites, SummaryEntry{
			Suite:      name,
			Schema:     f.Schema,
			Commit:     f.Commit,
			Date:       f.Date,
			Go:         f.Go,
			GOMAXPROCS: f.GOMAXPROCS,
			Benchtime:  f.Benchtime,
			Count:      f.Count,
			Benchmarks: f.Benchmarks,
		})
	}
	if len(s.Suites) == 0 {
		fatal("no committed ladders found (looked for %d files)", len(summaryLadders))
	}
	buf, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		fatal("%v", err)
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		fatal("%v", err)
	}
	fmt.Printf("wrote %s (%d suites)\n", path, len(s.Suites))
}

func load(path string) (*File, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchrun: "+format+"\n", args...)
	os.Exit(1)
}
