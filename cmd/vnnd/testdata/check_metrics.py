#!/usr/bin/env python3
"""Assert a vnnd /metrics JSON document carries the expected key paths.

Usage: check_metrics.py METRICS_JSON [PATH=VALUE ...]

Every dotted path listed in metrics-keys.txt (loaded from this script's
own directory) must resolve in the document — presence, not value.
Additional PATH=VALUE arguments pin the value at PATH to the JSON
literal VALUE; these may also name dynamic map entries that are absent
from the fixture (analyses.coverage, ...). The smokes use this instead
of grepping raw JSON substrings, which silently pass or spuriously fail
whenever field order or an adjacent field changes.
"""

import json
import os
import sys


def resolve(doc, path):
    node = doc
    for seg in path.split("."):
        if not isinstance(node, dict) or seg not in node:
            raise SystemExit(f"{sys.argv[1]}: missing key path {path!r} (at {seg!r})")
        node = node[seg]
    return node


def main():
    if len(sys.argv) < 2:
        raise SystemExit(__doc__.strip())
    with open(sys.argv[1]) as f:
        doc = json.load(f)
    fixture = os.path.join(os.path.dirname(os.path.abspath(__file__)), "metrics-keys.txt")
    with open(fixture) as f:
        keys = [ln.strip() for ln in f if ln.strip() and not ln.startswith("#")]
    for key in keys:
        resolve(doc, key)
    for arg in sys.argv[2:]:
        path, sep, want = arg.partition("=")
        if not sep:
            raise SystemExit(f"bad assertion {arg!r}: want PATH=VALUE")
        got = resolve(doc, path)
        if got != json.loads(want):
            raise SystemExit(f"{sys.argv[1]}: {path} = {json.dumps(got)}, want {want}")
    print(f"{sys.argv[1]}: {len(keys)} key paths present, {len(sys.argv) - 2} values pinned")


main()
