// Command vnnd is the verification daemon: a long-running HTTP service
// (package vnnserver) that keeps compiled networks warm across requests.
// Where every annverify invocation recompiles its workload, vnnd
// fingerprints (network, region, compile options), caches the compiled
// artifact in an LRU, collapses concurrent identical requests into one
// compile (singleflight), and schedules queries under a global worker
// budget with bounded queueing and backpressure.
//
// # Usage
//
//	vnnd                           # serve on :8419
//	vnnd -addr 127.0.0.1:9000      # explicit listen address
//	vnnd -cache 128 -queue 512     # bigger cache and admission queue
//	vnnd -timeout 5m               # default per-query budget
//	vnnd -drain-grace 10s          # patience before interrupting on SIGTERM
//	vnnd -infer-workers 4          # /v1/infer serving lanes (default GOMAXPROCS)
//	vnnd -peers http://10.0.0.2:8419,http://10.0.0.3:8419
//	                               # replicate caches across a static fleet
//	vnnd -fleet-interval 10s       # reconcile period (default 30s, jittered)
//	vnnd -trace-ring 1024          # completed traces kept for /debug/traces
//	vnnd -slow-log 500ms           # log requests slower than this, with trace id
//	vnnd -pprof                    # mount /debug/pprof/ (off by default)
//	vnnd -data-dir /var/lib/vnnd   # persist the model registry (rollout plane)
//	vnnd -gate @gate.json          # default admission gate for model submissions
//	vnnd -version                  # print build info and exit
//
// # Verify round trip
//
//	curl -s localhost:8419/v1/verify -d '{
//	  "network": '"$(cat i4x10.json)"',
//	  "region": {"name": "left_occupied"},
//	  "properties": [{"kind": "max", "outputs": [1]},
//	                 {"kind": "at_most", "output": 1, "threshold": 3.0}],
//	  "options": {"tighten": true, "workers": 1}
//	}'
//
// The response embeds the same Report document `annverify -json` prints,
// plus the workload fingerprint, whether the compile was a cache hit, and
// the compile cost. Repeat the call: the second answer arrives without
// recompiling (cache_hit true, encode/tighten pass counters in /metrics
// unchanged).
//
// # Async queries and progress streaming
//
// Add "wait": false to get 202 + a job id immediately, then stream
// branch-and-bound progress as server-sent events:
//
//	curl -s localhost:8419/v1/verify/q00000001/events
//	event: progress
//	data: {"property":0,"nodes":64,"open":12,"bound":3.41,...}
//	...
//	event: result
//	data: {"id":"q00000001","cache_hit":true,...,"results":[...]}
//
// GET /v1/verify/{id} fetches the result after the fact.
//
// # The dependability portfolio: /v1/analyze
//
// Verification is one pillar of the paper's certification portfolio;
// POST /v1/analyze serves them all over one compiled artifact. The body
// names a batch of analyses; each returns a typed finding under
// "analyses" in the same Report document. Structural coverage with a
// seeded (reproducible) generator:
//
//	curl -s localhost:8419/v1/analyze -d '{
//	  "network": '"$(cat i4x10.json)"',
//	  "region": {"name": "left_occupied"},
//	  "analyses": [{"kind": "coverage", "max_tests": 2000, "seed": 1}]
//	}'
//
// A quantization sweep — per bit-width the network is quantized,
// recompiled (through the same fingerprint cache, so concurrent
// identical sweeps compile each width once) and re-verified against the
// same properties, reporting verified bounds and drift vs. float:
//
//	curl -s localhost:8419/v1/analyze -d '{
//	  "network": '"$(cat i4x10.json)"',
//	  "region": {"name": "left_occupied"},
//	  "analyses": [{"kind": "quant_sweep", "bits": [8, 6, 4],
//	                "properties": [{"kind": "max", "outputs": [1, 6]}]}],
//	  "options": {"workers": 1}
//	}'
//
// Traceability (neuron-to-feature attribution over a dataset, with
// activation conditions read from the compiled bounds — no second
// propagation pass) and data validation:
//
//	curl -s localhost:8419/v1/analyze -d '{
//	  "network": '"$(cat i4x10.json)"',
//	  "region": {"name": "left_occupied"},
//	  "analyses": [
//	    {"kind": "traceability", "data": [[0.5, 0.5, ...], ...], "top_k": 3},
//	    {"kind": "data_validation", "data": [[...]], "labels": [[...]],
//	     "rules": [{"kind": "finite"}, {"kind": "range", "lo": 0, "hi": 1}]}
//	  ]
//	}'
//
// "verify", "falsify" and "monitor_audit" analysis kinds complete the
// portfolio; "wait": false and GET /v1/analyze/{id}[/events] work exactly
// as for verify (progress events carry the emitting analysis's index).
// /metrics reports served analyses by kind under "analyses".
//
// # Online inference with runtime monitoring: /v1/infer
//
// The service does not only certify networks — it runs them. POST
// /v1/infer evaluates a batch of inputs on the blocked serving kernels
// (predictions bit-identical to nn.ForwardInto, deterministic across
// runs and worker counts; see DESIGN.md "Kernel layer") plus, when
// "monitor" is present, a per-input runtime verdict: an
// activation-pattern monitor is built from the given dataset against the
// compiled network's proven pre-activation bounds (patterns the bounds
// prove unreachable over the region are rejected at build time — see
// "monitor_rejected"), cached under its own workload fingerprint, and
// every input whose pattern is farther than "gamma" (Hamming distance,
// per monitored layer) from anything the dataset exercised is flagged
// before its prediction is trusted:
//
//	curl -s localhost:8419/v1/infer -d '{
//	  "network": '"$(cat i4x10.json)"',
//	  "region": {"name": "left_occupied"},
//	  "inputs": [[0.5, 0.5, ...], ...],
//	  "monitor": {"data": [[0.5, 0.5, ...], ...], "gamma": 2}
//	}'
//	{"fingerprint":"vnn1-...","cache_hit":true,
//	 "monitor_fingerprint":"vnnm1-...","monitor_cache_hit":true,
//	 "monitor_patterns":412,"monitor_rejected":3,
//	 "outputs":[[...], ...],
//	 "verdicts":[{"ok":true,"layer":3,"distance":1},
//	             {"ok":false,"layer":1,"distance":7}, ...],
//	 "flagged":1}
//
// The endpoint is the service's low-latency plane: no admission queue,
// no SSE jobs, allocation-free batched forward passes. Large batches are
// sharded across per-core serving lanes (-infer-workers, default
// GOMAXPROCS) each owning its scratch — worker count changes throughput,
// never output bits. Omit "monitor" for plain (unsupervised) inference —
// that path never compiles anything.
//
// Warm clients drop the network from the wire entirely: every response
// echoes "fingerprint" (and "monitor_fingerprint"), and a follow-up
// request may send just those plus the inputs —
//
//	curl -s localhost:8419/v1/infer -d '{
//	  "fingerprint": "vnn1-...",
//	  "monitor_fingerprint": "vnnm1-...",
//	  "inputs": [[0.5, 0.5, ...], ...]
//	}'
//
// — cutting a request from megabytes to kilobytes (unknown fingerprints
// answer 404; re-send the full request). Repeated monitored requests hit
// both the compile cache and the monitor cache; /metrics reports the
// plane under "infer" (including per-lane shard throughput) and the
// vnnd.infer.* expvars (requests, inputs, flagged, monitor hits/misses).
//
// # Verified rollout: /v1/models, -data-dir, -gate
//
// The registry (pkg/vnnregistry) turns the daemon into a certification-
// gated serving plane: named model versions are submitted, must pass an
// admission gate — a portfolio batch with thresholds — and only then move
// toward traffic through the lifecycle
//
//	pending → admitted → canary(p%) → live → retired
//	        ↘ rejected
//
// Submit a version (the gate runs asynchronously through the same
// scheduler and job registry as /v1/verify; "wait": true blocks for the
// decision):
//
//	curl -s localhost:8419/v1/models -d '{
//	  "model": "occupancy",
//	  "network": '"$(cat i4x10.json)"',
//	  "region": {"name": "left_occupied"},
//	  "options": {"workers": 1},
//	  "monitor": {"data": [[0.5, 0.5, ...], ...], "gamma": 2},
//	  "gate": {
//	    "analyses": [
//	      {"kind": "verify", "properties": [{"kind": "at_most", "output": 0, "threshold": 1.5}]},
//	      {"kind": "monitor_audit", "data": [[0.5, 0.5, ...], ...], "gamma": 2}
//	    ],
//	    "max_flag_rate": 0.05
//	  }
//	}'
//	{"id":"q00000001","model":"occupancy","version":1,"state":"pending",...}
//
// The 202 echoes the gate job id: stream the gate's branch-and-bound
// progress and terminal decision over SSE, or poll the model document —
//
//	curl -s localhost:8419/v1/models/occupancy/events     # gate progress + result
//	curl -s localhost:8419/v1/models/occupancy            # full rollout document
//	curl -s localhost:8419/debug/traces/q00000001         # the gate's trace
//
// — the trace has a "gate" root with cache/monitor children plus one
// "analysis:<kind>" child per gate analysis. A version whose gate fails
// is rejected and never serves; a passing one becomes admitted. Roll it
// out — first to a deterministic canary share, then fully:
//
//	curl -s localhost:8419/v1/models/occupancy/promote -d '{"canary_percent": 10}'
//	curl -s localhost:8419/v1/infer?model=occupancy -d '{"inputs": [[0.5, 0.5, ...]]}'
//	curl -s localhost:8419/v1/models/occupancy/promote -d '{}'
//
// Canary routing hashes each request's input bits (FNV-1a over the
// IEEE-754 values): the same inputs always land on the same version at a
// fixed share, so canary comparisons are reproducible. The infer
// response names what served it ("model", "model_version", "route").
// Cutover retires the previous live version but keeps its compiled
// artifact and monitor warm, so rollback is one atomic route swap:
//
//	curl -s -X POST localhost:8419/v1/models/occupancy/rollback
//
// With -data-dir set, registry state (snapshot + append-only transition
// log) survives restarts: on boot the daemon recompiles every routable
// version and restores its monitors before /readyz reports ready — a
// version caught mid-gate by the crash recovers as rejected (its
// certification never completed; re-submit it). -gate supplies a default
// gate for submissions that carry none: inline JSON or @file. /metrics
// reports the plane under "registry" (per-version states and serving
// counters; vnnd_model_version_info and vnnd_model_*_total in the
// Prometheus rendering).
//
// # Fleet replication: -peers
//
// Several vnnd nodes form a fleet: give each the others' base URLs and
// every node periodically reconciles its compile + monitor caches with
// its peers via rateless set reconciliation (see DESIGN.md "Fleet
// replication"). A reconcile round costs O(|cache difference|) coded
// symbols — not O(cache size) — so converged nodes exchange a few
// dozen bytes per round. Everything pulled is re-verified from content
// (fingerprints recomputed, bounds containment-checked) before it
// enters a cache, and imports ride the same singleflight paths local
// requests use, so a pull never races a local compile into duplicate
// work. Two-node walkthrough:
//
//	# terminal 1
//	vnnd -addr 127.0.0.1:8419 -peers http://127.0.0.1:8420 -fleet-interval 5s
//	# terminal 2
//	vnnd -addr 127.0.0.1:8420 -peers http://127.0.0.1:8419 -fleet-interval 5s
//
//	# compile + monitor on node A only
//	curl -s 127.0.0.1:8419/v1/infer -d '{
//	  "network": '"$(cat i4x10.json)"',
//	  "region": {"name": "left_occupied"},
//	  "inputs": [[0.5, 0.5, 0.5, 0.5]],
//	  "monitor": {"data": [[0.5, 0.5, 0.5, 0.5]], "gamma": 1}
//	}'
//
//	# within a couple of intervals node B serves the same workload by
//	# fingerprint — without ever having compiled it (its
//	# vnnd.cache.misses stays 0; /metrics "fleet" shows the pull):
//	curl -s 127.0.0.1:8420/v1/infer -d '{
//	  "fingerprint": "vnn1-...", "monitor_fingerprint": "vnnm1-...",
//	  "inputs": [[0.5, 0.5, 0.5, 0.5]]
//	}'
//
// Replication is pull-only and symmetric (each node runs its own
// rounds), intervals are jittered, failing peers back off
// exponentially, and a draining node neither serves fleet requests nor
// accepts imports. /metrics reports rounds, symbols sent/received,
// entries pulled/pushed and per-peer last-sync under "fleet"
// (vnnd.fleet.* expvars), plus the accounted cache size under
// "cache.bytes" (vnnd.cache.bytes).
//
// # Observability: /metrics, /debug/traces, the flight recorder
//
// /metrics is content-negotiated. The default (and what every JSON
// example in this doc assumes) is the structured snapshot:
//
//	curl -s localhost:8419/metrics | python3 -m json.tool
//
// A Prometheus scraper gets the text exposition format instead — either
// via its usual Accept header (any text/plain clause) or explicitly:
//
//	curl -s 'localhost:8419/metrics?format=prometheus'
//	curl -s -H 'Accept: text/plain' localhost:8419/metrics
//	# HELP vnnd_build_info Build identity (value is always 1).
//	# TYPE vnnd_build_info gauge
//	vnnd_build_info{version="devel",revision="",go="go1.24.0"} 1
//	...
//	vnnd_request_duration_seconds_bucket{route="/v1/verify",le="0.000131071"} 2
//
// Both renderings come from one atomic snapshot per scrape: counters are
// read in one pass with request counters read before effort counters, so
// a scrape never shows a counted request without its solver effort.
// A minimal prometheus.yml scrape config:
//
//	scrape_configs:
//	  - job_name: vnnd
//	    static_configs:
//	      - targets: ['localhost:8419']
//
// In a fleet, /v1/fleet/metrics federates: the serving node merges its
// own snapshot with its peers' under "nodes" (keyed by -node-id) and an
// "aggregate" whose counters are the exact sum and whose histograms are
// the bucket-wise sum — every node shares the same log2 bucket
// boundaries, so the merge loses nothing. It negotiates content like
// /metrics, so one scrape job covers the whole fleet through any node:
//
//	scrape_configs:
//	  - job_name: vnnd-fleet
//	    metrics_path: /v1/fleet/metrics
//	    params: {format: [prometheus]}
//	    static_configs:
//	      - targets: ['localhost:8419']
//
// Requests carrying an X-API-Key are accounted per tenant (requests,
// latency, inputs, flagged, queue wait) under "tenants" in /metrics and
// as vnnd_tenant_* series in the Prometheus rendering; keyless requests
// count as "anonymous". Per-node label cardinality is hard-capped by
// -tenant-cap: past the cap, new keys fold into "other", so a key-churn
// storm cannot blow up the scrape.
//
// # The operator CLI: vnnctl
//
// cmd/vnnctl reads these planes from a terminal — point it at any node
// and it sees the fleet through that node's federation endpoint:
//
//	vnnctl -node http://127.0.0.1:8419 status   # one line per node
//	vnnctl -node http://127.0.0.1:8419 top      # per-tenant req/s, p50, p99
//	vnnctl -node http://127.0.0.1:8419 trace q00000007
//
// top samples /v1/fleet/metrics twice, -interval apart, and reports
// only the window between the snapshots (exact histogram deltas —
// fleet history cannot smear the quantiles). trace fetches
// /debug/traces/{id} and renders every segment of the distributed
// trace, including ones recorded on peer nodes.
//
// Every request is also traced by an in-memory flight recorder: a root
// span per request with child spans for each phase (queue wait, compile
// cache, tighten/encode, branch-and-bound solve, monitor build, infer
// chunks, fleet rounds). The last -trace-ring completed traces — plus
// the slowest few per route, retained past ring churn — are listed at
// /debug/traces; one trace is fetched by id. For /v1/verify and
// /v1/analyze the trace id IS the job id the response echoes:
//
//	ID=$(curl -s localhost:8419/v1/verify -d @query.json | python3 -c \
//	  'import json,sys; print(json.load(sys.stdin)["id"])')
//	curl -s localhost:8419/debug/traces/$ID
//	{"id":"q00000001","route":"/v1/verify","duration_ms":12.4,
//	 "root":{"name":"/v1/verify","children":[
//	   {"name":"queue","duration_us":12},
//	   {"name":"cache","children":[{"name":"compile","children":[
//	     {"name":"tighten"},{"name":"encode"}]}]},
//	   {"name":"solve","children":[{"name":"property/0",...}]}]}}
//
// Traces cross node boundaries: requests carrying a W3C traceparent
// header join the caller's trace, every outbound fleet call injects
// one, and /debug/traces/{id} resolves ids it does not hold locally by
// asking peers (one hop; list filters: ?route= and ?limit=). A
// reconcile round therefore reads as one trace id with segments on
// both nodes — `vnnctl trace <id>` renders the whole tree.
//
// -slow-log 500ms logs every request slower than the threshold with its
// trace id, so the full span tree of an outlier is one curl away.
// -pprof mounts net/http/pprof under /debug/pprof/ (off by default; the
// path answers 404 unless the flag is set).
//
// # Shutdown semantics
//
// On SIGTERM/SIGINT the daemon drains: new queries are rejected with 503,
// running ones get -drain-grace to finish, the rest are interrupted via
// context cancellation and answer with their anytime results (best
// witness + tightest proven bound so far) before the process exits 0.
//
// Health is split into liveness and readiness. /healthz is liveness: it
// answers 200 for as long as the process can answer at all (reporting
// "draining" in the body), so supervisors do not kill a node that is
// merely draining or recovering. /readyz is readiness: 503 while the
// server drains and before registry recovery completes, 200 only when
// the node should receive traffic — the endpoint load balancers and
// rolling restarts should watch. /metrics reports cache
// hits/misses/evictions, queue depth, nodes, pivots and the process-wide
// encode/tighten pass counters; /debug/vars exposes the same counters as
// standard expvars.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/pkg/vnn"
	"repro/pkg/vnnserver"
)

// parseGate turns the -gate flag into a validated default admission
// gate: "" means none, "@path" reads a JSON file, anything else is
// inline JSON. Unknown fields are rejected — a typoed threshold name
// silently weakening the gate is exactly the failure mode a
// certification gate exists to prevent.
func parseGate(arg string) (*vnn.GateSpec, error) {
	if arg == "" {
		return nil, nil
	}
	raw := []byte(arg)
	if strings.HasPrefix(arg, "@") {
		b, err := os.ReadFile(arg[1:])
		if err != nil {
			return nil, err
		}
		raw = b
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	gate := new(vnn.GateSpec)
	if err := dec.Decode(gate); err != nil {
		return nil, fmt.Errorf("parse gate spec: %w", err)
	}
	if err := gate.Validate(); err != nil {
		return nil, fmt.Errorf("invalid gate spec: %w", err)
	}
	return gate, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("vnnd: ")
	var (
		addr          = flag.String("addr", ":8419", "listen address")
		cacheEntries  = flag.Int("cache", 0, "compile cache capacity in entries (0 = 64)")
		maxConcurrent = flag.Int("max-concurrent", 0, "queries running at once (0 = GOMAXPROCS)")
		queueDepth    = flag.Int("queue", 0, "queries allowed to wait for a slot (0 = 256, negative = none)")
		timeout       = flag.Duration("timeout", 0, "default per-query budget when the request sets none (0 = unlimited)")
		drainGrace    = flag.Duration("drain-grace", 5*time.Second, "how long a drain lets running queries finish before interrupting them")
		maxBody       = flag.Int64("max-body", 0, "request body cap in bytes (0 = 32 MiB)")
		inferWorkers  = flag.Int("infer-workers", 0, "inference serving lanes for /v1/infer batch sharding (0 = GOMAXPROCS; never affects output bits)")
		peers         = flag.String("peers", "", "comma-separated base URLs of sibling vnnd nodes to replicate caches with (empty = no reconcile loop)")
		fleetInterval = flag.Duration("fleet-interval", 0, "fleet reconcile period, jittered per round (0 = 30s)")
		nodeID        = flag.String("node-id", "", "stable node id used in traces, /metrics and /v1/fleet/metrics (empty = hostname plus a random suffix)")
		tenantCap     = flag.Int("tenant-cap", 0, "distinct tenant labels tracked per node before new API keys fold into \"other\" (0 = 64)")
		traceRing     = flag.Int("trace-ring", 0, "completed traces kept for /debug/traces (0 = 256, rounded up to a power of two)")
		slowLog       = flag.Duration("slow-log", 0, "log any request slower than this, with its trace id (0 = off)")
		pprofOn       = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default; profiling endpoints expose internals)")
		dataDir       = flag.String("data-dir", "", "model registry persistence directory (empty = in-memory registry, lost on restart)")
		gateSpec      = flag.String("gate", "", "default admission gate for model submissions that carry none: inline GateSpec JSON, or @path to a JSON file (empty = ungated submissions are admitted)")
		version       = flag.Bool("version", false, "print build info and exit")
	)
	flag.Parse()

	if *version {
		b := vnnserver.Build()
		log.Printf("version %s", b.Version)
		if b.Revision != "" {
			log.Printf("revision %s", b.Revision)
		}
		if b.Time != "" {
			log.Printf("built %s", b.Time)
		}
		log.Printf("go %s", b.Go)
		return
	}

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, p)
		}
	}

	gate, err := parseGate(*gateSpec)
	if err != nil {
		log.Fatalf("-gate: %v", err)
	}

	srv := vnnserver.New(vnnserver.Config{
		CacheEntries:   *cacheEntries,
		MaxConcurrent:  *maxConcurrent,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		InferWorkers:   *inferWorkers,
		Peers:          peerList,
		FleetInterval:  *fleetInterval,
		NodeID:         *nodeID,
		TenantCap:      *tenantCap,
		TraceRing:      *traceRing,
		SlowRequest:    *slowLog,
		SlowLog:        log.Printf,
		EnablePprof:    *pprofOn,
		DataDir:        *dataDir,
		DefaultGate:    gate,
		Log:            log.Printf,
	})
	if len(peerList) > 0 {
		log.Printf("fleet: reconciling with %d peer(s)", len(peerList))
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatal(err)
	case sig := <-sigc:
		log.Printf("%v: draining (grace %v)", sig, *drainGrace)
	}

	// Drain first so interrupted queries hand their anytime results to
	// their handlers, then shut the listener down and wait for those
	// handlers to finish writing.
	srv.Drain(*drainGrace)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("shutdown: %v", err)
	}
	log.Printf("drained cleanly")
}
