package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/pkg/vnnserver"
)

// fixtureKeys loads testdata/metrics-keys.txt — the key-path contract
// shared with check_metrics.py and examples/serve.
func fixtureKeys(t *testing.T) []string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "metrics-keys.txt"))
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for _, line := range strings.Split(string(data), "\n") {
		if path := strings.TrimSpace(line); path != "" && !strings.HasPrefix(path, "#") {
			keys = append(keys, path)
		}
	}
	if len(keys) == 0 {
		t.Fatal("metrics-keys.txt lists no key paths")
	}
	return keys
}

// TestMetricsKeyFixture pins testdata/metrics-keys.txt against a live
// Metrics snapshot in both directions: every fixture path must resolve
// in the document, and every document key must be listed (so a new or
// renamed field fails here until the fixture — and with it every smoke
// and the serve example — is updated).
func TestMetricsKeyFixture(t *testing.T) {
	srv := vnnserver.New(vnnserver.Config{CacheEntries: 4})
	defer srv.Drain(0)

	raw, err := json.Marshal(srv.Metrics())
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}

	keys := fixtureKeys(t)
	for _, path := range keys {
		node := any(doc)
		for _, seg := range strings.Split(path, ".") {
			obj, ok := node.(map[string]any)
			if !ok {
				t.Fatalf("fixture path %q: segment %q is not an object in the live document", path, seg)
			}
			if node, ok = obj[seg]; !ok {
				t.Fatalf("fixture path %q missing from the live /metrics document", path)
			}
		}
	}

	// Converse direction. Dynamic map entries and omitempty fields are
	// deliberately absent from the fixture; everything else must be
	// listed, one level deep into the nested stat objects.
	allowed := map[string]bool{
		"build.revision": true, // omitempty: VCS stamping varies by build
		"build.time":     true,
		"fleet.peers":    true, // omitempty: only with -peers configured
	}
	listed := make(map[string]bool, len(keys))
	var prefixes []string
	for _, path := range keys {
		listed[path] = true
		if parent, _, ok := strings.Cut(path, "."); ok && !listed[parent+"."] {
			listed[parent+"."] = true
			prefixes = append(prefixes, parent)
		}
	}
	for key := range doc {
		if !listed[key] && !listed[key+"."] {
			t.Errorf("live /metrics key %q is not in metrics-keys.txt", key)
		}
	}
	for _, parent := range prefixes {
		obj, ok := doc[parent].(map[string]any)
		if !ok {
			continue
		}
		for key := range obj {
			path := parent + "." + key
			if !listed[path] && !allowed[path] {
				t.Errorf("live /metrics key %q is not in metrics-keys.txt", path)
			}
		}
	}
}

// TestParseGate covers the -gate flag's three shapes (inline JSON,
// @file indirection, empty) and its failure modes.
func TestParseGate(t *testing.T) {
	const inline = `{"analyses":[{"kind":"verify","properties":[{"kind":"at_most","output":0,"threshold":1}]}]}`

	if gate, err := parseGate(""); err != nil || gate != nil {
		t.Fatalf("empty arg: gate %v, err %v; want nil, nil", gate, err)
	}

	gate, err := parseGate(inline)
	if err != nil {
		t.Fatal(err)
	}
	if len(gate.Analyses) != 1 || gate.Analyses[0].Kind != "verify" {
		t.Fatalf("inline gate parsed to %+v", gate)
	}

	path := filepath.Join(t.TempDir(), "gate.json")
	if err := os.WriteFile(path, []byte(inline), 0o644); err != nil {
		t.Fatal(err)
	}
	fromFile, err := parseGate("@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromFile.Analyses) != 1 {
		t.Fatalf("@file gate parsed to %+v", fromFile)
	}

	for _, bad := range []string{
		"@" + filepath.Join(t.TempDir(), "missing.json"),
		"{not json",
		`{"analysis":[]}`, // unknown field (DisallowUnknownFields)
		`{"analyses":[]}`, // valid JSON, invalid gate (no analyses)
		`{"analyses":[{"kind":"verify"}],"max_flag_rate":1.5}`, // out of range
	} {
		if _, err := parseGate(bad); err == nil {
			t.Errorf("parseGate(%q) accepted an invalid spec", bad)
		}
	}
}

// TestSmokeModelFixtures keeps the rollout-smoke submissions honest:
// each testdata/smoke-model-*.json must carry a gate that parseGate
// itself would accept, so the CI job can never drift from the wire
// contract silently.
func TestSmokeModelFixtures(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("testdata", "smoke-model-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Fatalf("found %d smoke-model fixtures, want 3: %v", len(matches), matches)
	}
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var sub struct {
			Model string          `json:"model"`
			Gate  json.RawMessage `json:"gate"`
			Wait  bool            `json:"wait"`
		}
		if err := json.Unmarshal(data, &sub); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if sub.Model != "demo" || !sub.Wait {
			t.Errorf("%s: model %q wait %v; the smoke expects demo with synchronous gates", path, sub.Model, sub.Wait)
		}
		if _, err := parseGate(string(sub.Gate)); err != nil {
			t.Errorf("%s: embedded gate rejected: %v", path, err)
		}
	}
}
