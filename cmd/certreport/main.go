// Command certreport runs the paper's full certification methodology
// (Table I) end to end on a freshly generated dataset and predictor:
//
//  1. specification validity — data generation + rule-based validation;
//  2. implementation understandability — neuron-to-feature traceability;
//  3. implementation correctness — coverage analysis (showing the MC/DC
//     blow-up) and formal verification of the lateral-velocity property.
//
// It prints the certification dossier.
//
// Usage:
//
//	certreport -depth 2 -width 10 -epochs 20
//	certreport -hints            # property-guided training
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("certreport: ")
	var (
		depth   = flag.Int("depth", 2, "hidden layers")
		width   = flag.Int("width", 10, "neurons per hidden layer")
		comps   = flag.Int("k", core.DefaultComponents, "mixture components")
		epochs  = flag.Int("epochs", 20, "training epochs")
		seed    = flag.Int64("seed", 1, "random seed")
		hints   = flag.Bool("hints", false, "property-penalty training")
		thr     = flag.Float64("threshold", 3.0, "safety bound to prove (m/s)")
		timeout = flag.Duration("timeout", 10*time.Minute, "verification deadline (compile + all queries)")
		full    = flag.Bool("trace", false, "print the full traceability report")
	)
	flag.Parse()

	res, err := core.RunPipeline(context.Background(), core.PipelineConfig{
		Depth: *depth, Width: *width, Components: *comps,
		Seed:            *seed,
		Epochs:          *epochs,
		Hints:           *hints,
		SafetyThreshold: *thr,
		VerifyTimeout:   *timeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)
	if *full {
		fmt.Println()
		fmt.Print(res.Traceability)
	}
	fmt.Printf("total pipeline time: %.1fs\n", res.Elapsed.Seconds())
}
