// Command certreport runs the paper's full certification methodology
// (Table I) end to end on a freshly generated dataset and predictor:
//
//  1. specification validity — data generation + rule-based validation;
//  2. implementation understandability — neuron-to-feature traceability;
//  3. implementation correctness — coverage analysis (showing the MC/DC
//     blow-up) and formal verification of the lateral-velocity property.
//
// Every analysis runs through the public dependability API (vnn.Analyze
// over one compiled network), so the dossier this command prints is
// assembled from exactly the findings the vnnd service would return for
// the same portfolio request. With -json the raw findings are emitted as
// the shared wire Report document (vnn.NewAnalysisReport) instead of the
// human-readable dossier.
//
// Usage:
//
//	certreport -depth 2 -width 10 -epochs 20
//	certreport -hints            # property-guided training
//	certreport -json             # machine-readable findings (wire Report)
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/highway"
	"repro/pkg/vnn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("certreport: ")
	var (
		depth    = flag.Int("depth", 2, "hidden layers")
		width    = flag.Int("width", 10, "neurons per hidden layer")
		comps    = flag.Int("k", core.DefaultComponents, "mixture components")
		epochs   = flag.Int("epochs", 20, "training epochs")
		episodes = flag.Int("episodes", 0, "simulated episodes for data generation (0 = default config)")
		steps    = flag.Int("steps", 0, "steps per episode (0 = default config)")
		seed     = flag.Int64("seed", 1, "random seed")
		hints    = flag.Bool("hints", false, "property-penalty training")
		thr      = flag.Float64("threshold", 3.0, "safety bound to prove (m/s)")
		timeout  = flag.Duration("timeout", 10*time.Minute, "verification deadline (compile + all queries)")
		full     = flag.Bool("trace", false, "print the full traceability report")
		jsonOut  = flag.Bool("json", false, "emit the findings as the machine-readable wire Report (shared with the vnnd service)")
	)
	flag.Parse()

	cfg := core.PipelineConfig{
		Depth: *depth, Width: *width, Components: *comps,
		Seed:            *seed,
		Epochs:          *epochs,
		Hints:           *hints,
		SafetyThreshold: *thr,
		VerifyTimeout:   *timeout,
	}
	if *episodes > 0 || *steps > 0 {
		cfg.Dataset = highway.DefaultDatasetConfig()
		if *episodes > 0 {
			cfg.Dataset.Episodes = *episodes
		}
		if *steps > 0 {
			cfg.Dataset.StepsPerEpisode = *steps
		}
	}
	res, err := core.RunPipeline(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(vnn.NewAnalysisReport(res.Predictor.Net, res.Findings)); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Print(res)
	if *full {
		fmt.Println()
		fmt.Print(res.Traceability)
	}
	fmt.Printf("total pipeline time: %.1fs\n", res.Elapsed.Seconds())
}
