package main

import (
	"testing"
	"time"

	"repro/pkg/vnn"
)

// The Table II rendering is the paper-reproduction target: these golden
// strings pin the exact row shapes so rewiring the verification plumbing
// can never silently change what the table looks like.

func TestHeaderGolden(t *testing.T) {
	want := "ANN      | max lateral velocity (left occupied) | verification time\n" +
		"----------------------------------------------------------------------\n"
	if got := headerLines(); got != want {
		t.Fatalf("header drifted:\ngot  %q\nwant %q", got, want)
	}
}

func TestMaxRowGolden(t *testing.T) {
	exact := &vnn.Result{
		Exact: true,
		Value: 1.234567891,
		Stats: vnn.Stats{Elapsed: 2240 * time.Millisecond},
	}
	if got, want := maxRow("I4x10", exact), "I4x10    | 1.234568                     | 2.2s\n"; got != want {
		t.Fatalf("exact row drifted:\ngot  %q\nwant %q", got, want)
	}

	interrupted := &vnn.Result{
		Exact:      false,
		Value:      3.1234567,
		UpperBound: 4.5678912,
		Stats:      vnn.Stats{Elapsed: 300 * time.Second},
	}
	want := "I4x60    | n.a. (unable to find maximum) | time-out (best 3.1235, bound 4.5679)\n"
	if got := maxRow("I4x60", interrupted); got != want {
		t.Fatalf("timeout row drifted:\ngot  %q\nwant %q", got, want)
	}
}

func TestQuantRowGolden(t *testing.T) {
	pt := &vnn.QuantPoint{
		Bits: 8,
		Info: &vnn.QuantInfo{Bits: 8, MaxWeightError: 0.01234},
		Results: []*vnn.Result{{
			Exact: true,
			Value: 1.234567891,
			Stats: vnn.Stats{Elapsed: 1500 * time.Millisecond},
		}},
	}
	want := "I4x10-int8 | 1.234568                     | 1.5s  (weight err 0.0123)\n"
	if got := quantRow("I4x10", pt); got != want {
		t.Fatalf("quant row drifted:\ngot  %q\nwant %q", got, want)
	}

	pt.Results[0] = &vnn.Result{Exact: false, Value: 3.1234567, UpperBound: 4.5678912}
	want = "I4x10-int8 | n.a. (unable to find maximum) | time-out (best 3.1235, bound 4.5679)\n"
	if got := quantRow("I4x10", pt); got != want {
		t.Fatalf("quant timeout row drifted:\ngot  %q\nwant %q", got, want)
	}
}

func TestProveRowGolden(t *testing.T) {
	if got, want := proveRow("I4x60", 3.0, vnn.Proved, 12.34),
		"I4x60    | prove lat vel never > 3 m/s: proved   | 12.3s\n"; got != want {
		t.Fatalf("prove row drifted:\ngot  %q\nwant %q", got, want)
	}
	if got, want := proveRow("I2x10", 3.0, vnn.Violated, 0.51),
		"I2x10    | prove lat vel never > 3 m/s: violated | 0.5s\n"; got != want {
		t.Fatalf("violated prove row drifted:\ngot  %q\nwant %q", got, want)
	}
}
