// Command table2 regenerates the paper's Table II end to end: it trains
// motion predictors of the I<depth>×<width> family on identical simulator
// data, then formally verifies each one through the public pkg/vnn API —
// reporting the maximum lateral velocity reachable when a vehicle exists
// on the left, and the wall-clock verification time. A final row proves
// (or refutes) the 3 m/s bound on the largest network, mirroring the
// paper's last row.
//
// Each network is compiled against the property region exactly once; the
// largest network's max-query and prove-query share that single compiled
// encoding (no re-encoding or re-tightening between them).
//
// Absolute times differ from the paper (pure-Go simplex vs CPLEX on a
// 12-core VM); the shape — steep growth of verification time with width and
// per-network variation in the attained maximum — is the reproduction
// target. See EXPERIMENTS.md.
//
// Usage:
//
//	table2                                 # scaled default sweep
//	table2 -widths 10,20,25,40,50,60 -depth 4 -timeout 30m   # paper scale
//	table2 -workers 1                      # sequential branch-and-bound
//	table2 -quant 8,6,4                    # re-verify the largest network
//	                                       # quantized at each bit-width
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/highway"
	"repro/internal/train"
	"repro/pkg/vnn"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("table2: ")
	var (
		widthsArg = flag.String("widths", "4,6,8,10", "comma-separated hidden widths to sweep")
		depth     = flag.Int("depth", 2, "hidden layers (the paper uses 4)")
		comps     = flag.Int("k", 2, "mixture components")
		epochs    = flag.Int("epochs", 15, "training epochs")
		seed      = flag.Int64("seed", 1, "random seed")
		timeout   = flag.Duration("timeout", 5*time.Minute, "per-MILP verification time limit")
		proveThr  = flag.Float64("prove", 3.0, "bound to prove on the largest network (m/s)")
		workers   = flag.Int("workers", 0, "branch-and-bound workers per MILP solve (0 = all cores, 1 = sequential)")
		tighten   = flag.Bool("tighten", false, "LP-based bound tightening at compile time")
		quantArg  = flag.String("quant", "", "comma-separated bit-widths: quantize the largest network, re-verify at each width (e.g. \"8,6,4\")")
	)
	flag.Parse()

	var widths []int
	for _, tok := range strings.Split(*widthsArg, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil || w < 1 {
			log.Fatalf("bad width %q", tok)
		}
		widths = append(widths, w)
	}

	// One dataset for all networks, as in the paper ("trained a couple of
	// neural networks under the same data").
	cfg := highway.DefaultDatasetConfig()
	cfg.Sim.Seed = *seed
	data, err := highway.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	clean, _ := vnn.SanitizeData(data, core.SafetyRules(1e-9))
	fmt.Printf("dataset: %d validated samples\n\n", len(clean))
	fmt.Print(headerLines())

	ctx := context.Background()
	opts := vnn.Options{Parallel: true, Workers: *workers, Tighten: *tighten}
	var lastCompiled *vnn.CompiledNetwork
	var lastArch string
	var lastMax *vnn.Result
	for _, w := range widths {
		pred := core.NewPredictorNet(*depth, w, *comps, *seed+int64(w))
		trainer := &train.Trainer{
			Net:       pred.Net,
			Loss:      train.MDN{K: *comps},
			Opt:       train.NewAdam(0.003),
			BatchSize: 64,
			Rng:       rand.New(rand.NewSource(*seed + int64(w)*13)),
			ClipNorm:  20,
		}
		trainer.Fit(clean, *epochs)

		// Compile once per network; every query below (and the final prove
		// row for the largest) runs on this one shared encoding.
		cctx, cancel := context.WithTimeout(ctx, *timeout)
		cn, err := vnn.Compile(cctx, pred.Net, vnn.LeftOccupiedRegion(), opts)
		if err != nil {
			cancel()
			log.Fatal(err)
		}
		res, err := vnn.VerifyOne(cctx, cn, vnn.MaxOverOutputs(pred.MuLatOutputs()...))
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(maxRow(pred.Net.ArchString(), res))
		lastCompiled, lastArch, lastMax = cn, pred.Net.ArchString(), res
	}

	if lastCompiled != nil && *proveThr > 0 {
		start := time.Now()
		props := make([]vnn.Property, 0, *comps)
		for _, out := range vnn.MuLatOutputs(*comps) {
			props = append(props, vnn.AtMost(out, *proveThr))
		}
		pctx, cancel := context.WithTimeout(ctx, *timeout)
		results, err := vnn.Verify(pctx, lastCompiled, props...)
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(proveRow(lastArch, *proveThr, vnn.Worst(results), time.Since(start).Seconds()))
	}

	// Optional quantization sweep over the largest network: the same
	// max-query re-verified at every bit-width through the QuantSweep
	// analysis (one recompile per width on the shared region).
	if lastCompiled != nil && *quantArg != "" {
		var bits []int
		for _, tok := range strings.Split(*quantArg, ",") {
			b, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil || b < 2 || b > 16 {
				log.Fatalf("bad bit-width %q (want integers in [2, 16])", tok)
			}
			bits = append(bits, b)
		}
		// The width loop just solved this exact max query on this exact
		// compiled network — hand it to the sweep as the baseline so the
		// most expensive solve is not repeated.
		qctx, cancel := context.WithTimeout(ctx, *timeout)
		finding, err := vnn.AnalyzeOne(qctx, lastCompiled, &vnn.QuantSweep{
			Bits:       bits,
			Properties: []vnn.Property{vnn.MaxOverOutputs(vnn.MuLatOutputs(*comps)...)},
			Base:       []*vnn.Result{lastMax},
		})
		cancel()
		if err != nil {
			log.Fatal(err)
		}
		for i := range finding.QuantSweep.Points {
			fmt.Print(quantRow(lastArch, &finding.QuantSweep.Points[i]))
		}
	}
}
