package main

import (
	"fmt"
	"strings"

	"repro/pkg/vnn"
)

// Row formatting for the paper-table rendering. Kept as pure functions of
// the result values so a golden test can pin the exact output shape: the
// Table II rendering is the reproduction target and must not drift when
// the verification plumbing changes.

// headerLines renders the table header.
func headerLines() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s | %-28s | %s\n", "ANN", "max lateral velocity (left occupied)", "verification time")
	b.WriteString(strings.Repeat("-", 70))
	b.WriteString("\n")
	return b.String()
}

// maxRow renders one sweep row from a max-query result: the verified
// maximum and its verification time, or the paper's "n.a." form with the
// anytime bounds on interruption.
func maxRow(arch string, res *vnn.Result) string {
	if res.Exact {
		return fmt.Sprintf("%-8s | %-28.6f | %.1fs\n", arch, res.Value, res.Stats.Elapsed.Seconds())
	}
	return fmt.Sprintf("%-8s | n.a. (unable to find maximum) | time-out (best %.4f, bound %.4f)\n",
		arch, res.Value, res.UpperBound)
}

// proveRow renders the final prove-threshold row.
func proveRow(arch string, threshold float64, outcome vnn.Outcome, seconds float64) string {
	return fmt.Sprintf("%-8s | prove lat vel never > %.0f m/s: %-8v | %.1fs\n",
		arch, threshold, outcome, seconds)
}

// quantRow renders one bit-width rung of a quantization sweep: the
// verified maximum on the quantized model and its drift from the float
// baseline (the paper's concluding remark (ii), made measurable).
func quantRow(arch string, pt *vnn.QuantPoint) string {
	res := pt.Results[0]
	label := fmt.Sprintf("%s-int%d", arch, pt.Bits)
	if res.Exact {
		return fmt.Sprintf("%-8s | %-28.6f | %.1fs  (weight err %.4f)\n",
			label, res.Value, res.Stats.Elapsed.Seconds(), pt.Info.MaxWeightError)
	}
	return fmt.Sprintf("%-8s | n.a. (unable to find maximum) | time-out (best %.4f, bound %.4f)\n",
		label, res.Value, res.UpperBound)
}
