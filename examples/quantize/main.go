// Quantize demonstrates the paper's concluding remark (ii) — quantized
// neural networks as a route to more scalable verification — entirely
// through the public pkg/vnn dependability API. A network is compiled
// against its input region once; a QuantSweep analysis then walks a
// bit-width ladder (8 → 6 → 4 bits), recompiling and re-verifying the
// same safety properties at each width and reporting the verified-bound
// drift against the float baseline. This is the same analysis a
// `{"kind":"quant_sweep"}` request to the vnnd service performs, with the
// service additionally caching each width's compile by fingerprint.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/pkg/vnn"
)

func main() {
	log.SetFlags(0)
	rng := rand.New(rand.NewSource(21))
	net := vnn.NewNetwork(vnn.NetworkConfig{
		Name: "demo", InputDim: 6, Hidden: []int{12, 12}, OutputDim: 2,
		HiddenAct: vnn.ReLU, OutputAct: vnn.Identity,
	}, rng)

	box := make([]vnn.Interval, 6)
	for i := range box {
		box[i] = vnn.Interval{Lo: 0, Hi: 1}
	}
	region := &vnn.Region{Box: box}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	cn, err := vnn.Compile(ctx, net, region, vnn.Options{Parallel: true})
	if err != nil {
		log.Fatal(err)
	}

	finding, err := vnn.AnalyzeOne(ctx, cn, &vnn.QuantSweep{
		Bits:       []int{8, 6, 4},
		Properties: []vnn.Property{vnn.MaxOutput(0)},
	})
	if err != nil {
		log.Fatal(err)
	}
	sweep := finding.QuantSweep

	// Empirical output deviation on random probes, for comparison with
	// the formally verified drift.
	probes := make([][]float64, 200)
	prng := rand.New(rand.NewSource(22))
	for i := range probes {
		probes[i] = make([]float64, 6)
		for j := range probes[i] {
			probes[i][j] = prng.Float64()
		}
	}

	base := sweep.Base[0]
	fmt.Printf("%-10s verified max y[0] %8.4f  (%.1fs)\n",
		"float64", base.Value, base.Stats.Elapsed.Seconds())
	for _, pt := range sweep.Points {
		qnet, _, err := vnn.Quantize(net, pt.Bits)
		if err != nil {
			log.Fatal(err)
		}
		res := pt.Results[0]
		fmt.Printf("%-10s verified max y[0] %8.4f  (%.1fs)  weight err %.4f  output dev %.4f  distinct weights %d  bound drift %.4f\n",
			fmt.Sprintf("int%d", pt.Bits), res.Value, res.Stats.Elapsed.Seconds(),
			pt.Info.MaxWeightError, vnn.OutputDeviation(net, qnet, probes),
			pt.Info.DistinctWeights, pt.MaxBoundDelta)
	}
	fmt.Println("\nquantization perturbs the verified bound by roughly the output deviation —")
	fmt.Println("certifying the quantized model directly (as deployed) avoids that gap entirely.")
}
