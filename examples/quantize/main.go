// Quantize demonstrates the paper's concluding remark (ii): quantized
// neural networks as a route to more scalable verification. A predictor is
// post-training quantized to 8 and 4 bits; the example measures the weight
// and output perturbation, then formally verifies the float and quantized
// models against the same safety property — showing the quantized models
// remain verifiable with the identical MILP machinery (the in-repo analogue
// of the bitvector-SMT encoding the paper cites).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/highway"
	"repro/internal/quant"
	"repro/internal/train"
	"repro/pkg/vnn"
)

func main() {
	log.SetFlags(0)
	cfg := highway.DefaultDatasetConfig()
	cfg.Episodes = 3
	data, err := highway.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pred := core.NewPredictorNet(2, 8, 2, 21)
	trainer := &train.Trainer{
		Net: pred.Net, Loss: train.MDN{K: 2}, Opt: train.NewAdam(0.003),
		BatchSize: 64, Rng: rand.New(rand.NewSource(21)), ClipNorm: 20,
	}
	trainer.Fit(data, 10)

	probes := make([][]float64, 200)
	rng := rand.New(rand.NewSource(22))
	for i := range probes {
		probes[i] = highway.RandomFeatureVector(rng)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	opts := vnn.Options{Parallel: true}
	base, err := pred.VerifySafety(ctx, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-10s verified max lat vel %8.4f m/s  (%.1fs)\n",
		"float64", base.Value, base.Stats.Elapsed.Seconds())

	for _, bits := range []int{8, 4} {
		qnet, info, err := quant.Quantize(pred.Net, bits)
		if err != nil {
			log.Fatal(err)
		}
		dev := quant.OutputDeviation(pred.Net, qnet, probes)
		qpred := &core.Predictor{Net: qnet, K: pred.K}
		res, err := qpred.VerifySafety(ctx, opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s verified max lat vel %8.4f m/s  (%.1fs)  weight err %.4f  output dev %.4f  distinct weights %d\n",
			fmt.Sprintf("int%d", bits), res.Value, res.Stats.Elapsed.Seconds(),
			info.MaxWeightError, dev, info.DistinctWeights)
	}
	fmt.Println("\nquantization perturbs the verified bound by roughly the output deviation —")
	fmt.Println("certifying the quantized model directly (as deployed) avoids that gap entirely.")
}
