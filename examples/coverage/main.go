// Coverage demonstrates the paper's Sec. II testing argument concretely:
// MC/DC-style condition coverage is trivially satisfiable for tanh networks
// (no branches → one test) and intractable for ReLU networks (2^n branch
// patterns), while practical coverage metrics saturate long before covering
// the behaviour space — the motivation for formal verification.
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/coverage"
	"repro/internal/nn"
)

func build(act nn.Activation, hidden []int, seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	return nn.New(nn.Config{
		Name: "demo", InputDim: 6, Hidden: hidden, OutputDim: 2,
		HiddenAct: act, OutputAct: nn.Identity,
	}, rng)
}

func main() {
	tanh := build(nn.Tanh, []int{20, 20}, 1)
	relu := build(nn.ReLU, []int{20, 20}, 1)
	paper := build(nn.ReLU, []int{60, 60, 60, 60}, 1) // the paper's I4×60

	fmt.Println("== the MC/DC dichotomy (paper Sec. II) ==")
	fmt.Printf("tanh %v hidden: conditions=%d, MC/DC needs %d test case(s)\n",
		[]int{20, 20}, coverage.ReLUConditions(tanh), coverage.RequiredTests(tanh))
	fmt.Printf("relu %v hidden: conditions=%d, MC/DC lower bound %d tests,\n",
		[]int{20, 20}, coverage.ReLUConditions(relu), coverage.RequiredTests(relu))
	fmt.Printf("  exhaustive branch combinations: %s\n", coverage.BranchCombinations(relu))
	fmt.Printf("paper-scale I4x60: 2^%d = %d-digit number of branch patterns\n",
		coverage.ReLUConditions(paper), len(coverage.BranchCombinations(paper).String()))

	fmt.Println("\n== practical coverage saturates ==")
	lo := make([]float64, 6)
	hi := make([]float64, 6)
	for i := range lo {
		lo[i], hi[i] = -1, 1
	}
	suite, kept := coverage.Generate(relu, lo, hi, rand.New(rand.NewSource(2)),
		coverage.GenerateOptions{MaxTests: 3000})
	fmt.Println(suite)
	fmt.Printf("kept %d informative tests out of %d sampled\n", len(kept), suite.Tests())
	fmt.Printf("patterns exercised: %d of %s possible — the gap formal methods close\n",
		suite.Patterns(), coverage.BranchCombinations(relu))
}
