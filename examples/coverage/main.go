// Coverage demonstrates the paper's Sec. II testing argument concretely,
// entirely through the public pkg/vnn dependability API: MC/DC-style
// condition coverage is trivially satisfiable for tanh networks (no
// branches → one test) and intractable for ReLU networks (2^n branch
// patterns), while practical coverage metrics saturate long before
// covering the behaviour space — the motivation for formal verification.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/pkg/vnn"
)

func build(act vnn.Activation, hidden []int, seed int64) *vnn.Network {
	rng := rand.New(rand.NewSource(seed))
	return vnn.NewNetwork(vnn.NetworkConfig{
		Name: "demo", InputDim: 6, Hidden: hidden, OutputDim: 2,
		HiddenAct: act, OutputAct: vnn.Identity,
	}, rng)
}

func main() {
	log.SetFlags(0)
	tanh := build(vnn.Tanh, []int{20, 20}, 1)
	relu := build(vnn.ReLU, []int{20, 20}, 1)
	paper := build(vnn.ReLU, []int{60, 60, 60, 60}, 1) // the paper's I4×60

	fmt.Println("== the MC/DC dichotomy (paper Sec. II) ==")
	fmt.Printf("tanh %v hidden: conditions=%d, MC/DC needs %d test case(s)\n",
		[]int{20, 20}, vnn.ReLUConditions(tanh), vnn.RequiredMCDCTests(tanh))
	fmt.Printf("relu %v hidden: conditions=%d, MC/DC lower bound %d tests,\n",
		[]int{20, 20}, vnn.ReLUConditions(relu), vnn.RequiredMCDCTests(relu))
	fmt.Printf("  exhaustive branch combinations: %s\n", vnn.BranchCombinations(relu))
	fmt.Printf("paper-scale I4x60: 2^%d = %d-digit number of branch patterns\n",
		vnn.ReLUConditions(paper), len(vnn.BranchCombinations(paper).String()))

	fmt.Println("\n== practical coverage saturates ==")
	// The ReLU net is compiled against its input region once; the
	// coverage analysis then samples that region — the same call a
	// `{"kind":"coverage"}` request to the vnnd service performs.
	box := make([]vnn.Interval, 6)
	for i := range box {
		box[i] = vnn.Interval{Lo: -1, Hi: 1}
	}
	cn, err := vnn.Compile(context.Background(), relu, &vnn.Region{Box: box}, vnn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	finding, err := vnn.AnalyzeOne(context.Background(), cn, &vnn.Coverage{MaxTests: 3000, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	cov := finding.Coverage
	fmt.Println(cov.Suite)
	fmt.Printf("kept %d informative tests out of %d sampled\n", len(cov.Generated), cov.Suite.Tests())
	fmt.Printf("patterns exercised: %d of %s possible — the gap formal methods close\n",
		cov.Suite.Patterns(), cov.BranchCombinations)

	// The same generator on the branch-free tanh net, via the standalone
	// helper (tanh cannot be MILP-compiled — and does not need to be): a
	// network without ReLU branches carries no sign-coverage obligations
	// at all, so the suite is vacuously complete and generation stops
	// before sampling a single input.
	suite, _ := vnn.GenerateCoverage(tanh, box, rand.NewSource(2), vnn.CoverageGenOptions{MaxTests: 100})
	fmt.Printf("\ntanh control: %s (no branches: MC/DC already satisfied by %d test)\n",
		suite, vnn.RequiredMCDCTests(tanh))
}
