// Motionpredictor reproduces the paper's case study end to end in one run:
// simulate highway traffic, validate the generated data against safety
// rules, train an ANN-based motion predictor with a Gaussian-mixture head,
// render the scene and the predicted action distribution (Fig. 1), and
// formally verify the left-lane safety property (Table II, one row) —
// entirely through the public packages (pkg/highway, pkg/vnn).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/pkg/highway"
	"repro/pkg/vnn"
)

func main() {
	log.SetFlags(0)

	// 1. Simulate and label (the substitute for the proprietary data).
	fmt.Println("== 1. data generation ==")
	data, err := highway.GenerateDataset(highway.DefaultDatasetConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d samples of %d features\n", len(data), highway.FeatureDim)

	// 2. Validate the data as specification (Sec. II C).
	fmt.Println("\n== 2. data validation ==")
	rules := vnn.SafetyRules(1e-9)
	report := vnn.ValidateData(data, rules)
	fmt.Print(report)
	clean, removed := vnn.SanitizeData(data, rules)
	fmt.Printf("removed %d, kept %d\n", removed, len(clean))

	// 3. Train the predictor (scaled-down I2×10 for a fast demo).
	fmt.Println("\n== 3. training ==")
	pred := vnn.NewPredictor(2, 10, 2, 7)
	trainer := &vnn.Trainer{
		Net:       pred.Net,
		Loss:      vnn.MDN{K: 2},
		Opt:       vnn.NewAdam(0.003),
		BatchSize: 64,
		Rng:       rand.New(rand.NewSource(7)),
		ClipNorm:  20,
	}
	for e := 0; e < 12; e++ {
		l := trainer.Epoch(clean)
		if e%4 == 0 || e == 11 {
			fmt.Printf("epoch %2d loss %.4f\n", e, l)
		}
	}

	// 4. Fig. 1: a scene and the suggested motion distribution.
	fmt.Println("\n== 4. scene and prediction (Fig. 1) ==")
	sim, err := highway.NewSim(highway.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sim.Run(300, 0.25)
	ego := sim.Vehicles[0]
	fmt.Print(sim.Render(ego, 200, 72))
	obs := sim.Observe(ego)
	mix := pred.Predict(obs.Encode())
	mean := mix.Mean()
	fmt.Printf("\npredicted action: lateral velocity %.2f m/s, longitudinal accel %.2f m/s²\n",
		mean[vnn.GMMLatVel], mean[vnn.GMMLongAcc])
	fmt.Println("action distribution over (lateral velocity ←→, longitudinal accel ↑↓):")
	for _, row := range mix.Grid(-3, 3, -3, 3, 48, 12) {
		fmt.Println(" ", row)
	}

	// 5. Formal verification of the safety property (Table II): compile
	// the network against the property region once, then answer the
	// max-query and the per-component 3 m/s proofs as one batch on the
	// shared encoding.
	fmt.Println("\n== 5. formal verification ==")
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	cn, err := vnn.Compile(ctx, pred.Net, vnn.LeftOccupiedRegion(), vnn.Options{Parallel: true})
	if err != nil {
		log.Fatal(err)
	}
	props := []vnn.Property{vnn.MaxOverOutputs(pred.MuLatOutputs()...)}
	for _, out := range pred.MuLatOutputs() {
		props = append(props, vnn.AtMost(out, 3.0))
	}
	results, err := vnn.Verify(ctx, cn, props...)
	if err != nil {
		log.Fatal(err)
	}
	res := results[0]
	fmt.Printf("%s: max lateral velocity with a vehicle on the left = %.4f m/s (exact=%v, %.1fs)\n",
		pred.Net.ArchString(), res.Value, res.Exact, time.Since(start).Seconds())
	fmt.Printf("prove lateral velocity never exceeds 3 m/s: %v\n", vnn.Worst(results[1:]))
}
