// Serve: boot the vnnd verification service in-process, fire a burst of
// concurrent queries at it — many identical, a few distinct — and show
// what the service layer adds over bare pkg/vnn: the identical workloads
// collapse into ONE compile (fingerprinted cache + singleflight), proven
// here by the same EncodePasses/TightenPasses instrumentation counters
// the API tests pin.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/pkg/vnn"
	"repro/pkg/vnnserver"
)

const (
	identicalClients = 12
	distinctClients  = 4
)

func main() {
	log.SetFlags(0)

	// Boot the service on a loopback port, exactly as cmd/vnnd would.
	srv := vnnserver.New(vnnserver.Config{CacheEntries: 8})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("vnnd serving on %s\n", base)

	// One shared workload (identical fingerprint for every client) and a
	// few distinct ones (different weights => different fingerprints).
	shared := requestBody(1)
	distinct := make([][]byte, distinctClients)
	for i := range distinct {
		distinct[i] = requestBody(int64(100 + i))
	}

	encBefore, tightBefore := vnn.EncodePasses(), vnn.TightenPasses()

	var wg sync.WaitGroup
	var mu sync.Mutex
	hits, misses := 0, 0
	post := func(body []byte) {
		defer wg.Done()
		resp, err := http.Post(base+"/v1/verify", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			log.Fatalf("verify: %s: %s", resp.Status, msg)
		}
		var vr vnnserver.VerifyResponse
		if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
			log.Fatal(err)
		}
		mu.Lock()
		if vr.CacheHit {
			hits++
		} else {
			misses++
		}
		mu.Unlock()
	}

	// All clients at once: 12 identical + 4 distinct concurrent requests.
	wg.Add(identicalClients + distinctClients)
	for i := 0; i < identicalClients; i++ {
		go post(shared)
	}
	for _, body := range distinct {
		go post(body)
	}
	wg.Wait()

	fmt.Printf("\n%d concurrent requests (%d identical + %d distinct):\n",
		identicalClients+distinctClients, identicalClients, distinctClients)
	fmt.Printf("  cache hits   %d\n  cache misses %d (one compile per distinct workload)\n", hits, misses)
	fmt.Printf("  encode passes  +%d\n  tighten passes +%d\n",
		vnn.EncodePasses()-encBefore, vnn.TightenPasses()-tightBefore)

	// The service's own view of the same numbers.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	var m vnnserver.Metrics
	if err := json.Unmarshal(raw, &m); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n/metrics: queries=%d cache=%d/%d (hits/misses) evictions=%d queue_active=%d\n",
		m.Queries, m.Cache.Hits, m.Cache.Misses, m.Cache.Evictions, m.Scheduler.Active)

	checkMetricsKeys(raw)

	srv.Drain(0)
	httpSrv.Close()
}

// checkMetricsKeys asserts the /metrics document against the committed
// key-path fixture — the same list the CI smokes (check_metrics.py) and
// the cmd/vnnd test pin — so a renamed or dropped field fails here
// before any dashboard notices. Skipped when run outside the repo root.
func checkMetricsKeys(raw []byte) {
	fixture := filepath.Join("cmd", "vnnd", "testdata", "metrics-keys.txt")
	data, err := os.ReadFile(fixture)
	if err != nil {
		fmt.Printf("\n(%s not found; skipping metrics contract check)\n", fixture)
		return
	}
	var doc map[string]any
	if err := json.Unmarshal(raw, &doc); err != nil {
		log.Fatal(err)
	}
	checked := 0
	for _, line := range strings.Split(string(data), "\n") {
		path := strings.TrimSpace(line)
		if path == "" || strings.HasPrefix(path, "#") {
			continue
		}
		node := any(doc)
		for _, seg := range strings.Split(path, ".") {
			obj, ok := node.(map[string]any)
			if !ok {
				log.Fatalf("metrics key path %q: segment %q is not an object", path, seg)
			}
			if node, ok = obj[seg]; !ok {
				log.Fatalf("metrics document is missing key path %q", path)
			}
		}
		checked++
	}
	fmt.Printf("\nmetrics contract: all %d fixture key paths present\n", checked)
}

// requestBody builds a verify request for a small width-10 predictor
// seeded by seed: same seed, same canonical bytes, same fingerprint.
func requestBody(seed int64) []byte {
	pred := vnn.NewPredictor(1, 10, 1, seed)
	netJSON, err := vnn.MarshalNetwork(pred.Net)
	if err != nil {
		log.Fatal(err)
	}
	req := vnnserver.VerifyRequest{
		Network: netJSON,
		Region:  vnn.RegionSpec{Name: "left_occupied"},
		Properties: []vnn.PropertySpec{
			{Kind: "max", Outputs: pred.MuLatOutputs()},
		},
		Options: vnnserver.QueryOptions{Tighten: true, Workers: 1},
	}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	return body
}
