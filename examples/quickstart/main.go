// Quickstart: build a small ReLU network by hand, state a safety property
// over an input region, and verify it with the MILP engine — the minimal
// end-to-end use of the library's public surface.
package main

import (
	"fmt"
	"log"

	"repro/internal/bounds"
	"repro/internal/nn"
	"repro/internal/verify"
)

func main() {
	log.SetFlags(0)
	// A hand-built network computing y = relu(x0 - x1) + relu(x1 - x0),
	// i.e. |x0 - x1|.
	net := &nn.Network{
		Name: "absdiff",
		Layers: []*nn.Layer{
			{W: [][]float64{{1, -1}, {-1, 1}}, B: []float64{0, 0}, Act: nn.ReLU},
			{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
		},
	}
	if err := net.Validate(); err != nil {
		log.Fatal(err)
	}

	// Region: both inputs in [0, 1].
	region := &verify.InputRegion{Box: []bounds.Interval{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}}

	// Query 1: what is the maximum output over the region?
	mx, err := verify.MaxOutput(net, region, 0, verify.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max |x0-x1| over [0,1]^2 = %.4f at witness %v\n", mx.Value, mx.Witness)

	// Query 2: prove the output can never exceed 1.
	pr, err := verify.ProveUpperBound(net, region, 0, 1.0, verify.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prove output <= 1.0: %v\n", pr.Outcome)

	// Query 3: a bound that does not hold yields a counterexample.
	pr, err = verify.ProveUpperBound(net, region, 0, 0.5, verify.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prove output <= 0.5: %v (counterexample %v -> %.4f)\n",
		pr.Outcome, pr.CounterExample, pr.CounterValue)
}
