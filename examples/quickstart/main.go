// Quickstart: build a small ReLU network by hand, compile it against an
// input region once, and answer a batch of safety queries through the
// public pkg/vnn API — the minimal end-to-end use of the library.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/pkg/vnn"
)

func main() {
	log.SetFlags(0)
	// A hand-built network computing y = relu(x0 - x1) + relu(x1 - x0),
	// i.e. |x0 - x1|.
	net := &vnn.Network{
		Name: "absdiff",
		Layers: []*vnn.Layer{
			{W: [][]float64{{1, -1}, {-1, 1}}, B: []float64{0, 0}, Act: vnn.ReLU},
			{W: [][]float64{{1, 1}}, B: []float64{0}, Act: vnn.Identity},
		},
	}
	if err := net.Validate(); err != nil {
		log.Fatal(err)
	}

	// Region: both inputs in [0, 1]. Compile performs bound propagation
	// and the MILP encoding once; every query below reuses it.
	ctx := context.Background()
	region := &vnn.Region{Box: []vnn.Interval{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}}
	cn, err := vnn.Compile(ctx, net, region, vnn.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// One batch, three questions: the maximum output over the region, a
	// bound that holds, and a bound that fails with a counterexample.
	results, err := vnn.Verify(ctx, cn,
		vnn.MaxOutput(0),
		vnn.AtMost(0, 1.0),
		vnn.AtMost(0, 0.5),
	)
	if err != nil {
		log.Fatal(err)
	}

	mx := results[0]
	fmt.Printf("max |x0-x1| over [0,1]^2 = %.4f at witness %v\n", mx.Value, mx.Witness)
	fmt.Printf("prove output <= 1.0: %v\n", results[1].Outcome)
	fmt.Printf("prove output <= 0.5: %v (counterexample %v -> %.4f)\n",
		results[2].Outcome, results[2].Witness, results[2].Value)
}
