// Monitor demonstrates the paper's operation-time pillar: certification
// does not end when a property is proved, because the proof quantifies
// over the design domain while operation feeds the network whatever the
// world produces. A runtime activation-pattern monitor closes that gap.
//
// The run trains a motion predictor on nominal highway traffic, builds a
// monitor from the training scenes against the compiled network's proven
// pre-activation bounds, and then confronts it with a ladder of operation
// traffic: held-out nominal scenes (pass), scenes at increasing levels of
// sensor-noise perturbation (flagged more the farther they drift), and
// uniformly random feature vectors (nothing like traffic at all). The
// flagged fractions grade cleanly with the distribution shift — the
// monitor knows what the training data looked like.
//
// The ladder is checked through the batched path
// (vnn.Monitor.CheckBatchInto): one fused forward+check pass over the
// whole batch on the blocked serving kernels, allocation-free in steady
// state and bit-identical to checking each input alone — batching (and,
// in vnnd, sharding batches across serving lanes) changes throughput,
// never verdicts. Everything runs on the public packages (pkg/highway,
// pkg/vnn); the vnnd service serves the same monitor online through
// POST /v1/infer, where warm clients can address it purely by
// fingerprint.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/pkg/highway"
	"repro/pkg/vnn"
)

func main() {
	log.SetFlags(0)

	// 1. Nominal traffic, split into build and held-out scenes.
	data, err := highway.GenerateDataset(highway.DefaultDatasetConfig())
	if err != nil {
		log.Fatal(err)
	}
	clean, _ := vnn.SanitizeData(data, vnn.SafetyRules(1e-9))
	trainSet, holdout := vnn.SplitData(clean, 0.2, rand.New(rand.NewSource(1)))
	fmt.Printf("nominal traffic: %d build scenes, %d held-out scenes\n", len(trainSet), len(holdout))

	// 2. A small trained predictor.
	pred := vnn.NewPredictor(2, 24, 2, 21)
	trainer := &vnn.Trainer{
		Net: pred.Net, Loss: vnn.MDN{K: 2}, Opt: vnn.NewAdam(0.003),
		BatchSize: 64, Rng: rand.New(rand.NewSource(21)), ClipNorm: 20,
	}
	trainer.Fit(trainSet, 10)

	// 3. Compile over the operational design domain (the full normalized
	// feature box) and build the monitor against the proven bounds.
	box := make([]vnn.Interval, highway.FeatureDim)
	for i := range box {
		box[i] = vnn.Interval{Lo: 0, Hi: 1}
	}
	cn, err := vnn.Compile(context.Background(), pred.Net, &vnn.Region{Box: box}, vnn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	buildInputs := make([][]float64, len(trainSet))
	for i, s := range trainSet {
		buildInputs[i] = s.X
	}
	mon, err := vnn.BuildMonitor(cn, buildInputs, vnn.MonitorOptions{Gamma: 0})
	if err != nil {
		log.Fatal(err)
	}
	st := mon.Stats()
	fmt.Printf("monitor: %d patterns from %d scenes (γ=%d, %d rejected as statically unreachable)\n",
		mon.PatternCount(), st.Inputs, mon.Gamma(), st.Rejected)
	fmt.Printf("fingerprint: %s\n\n", mon.Fingerprint())

	// 4. A ladder of operation traffic, from nominal to nothing-like-it.
	// One batched forward+check pass per rung: the scratch is reused
	// across rungs, so after the first call the check never allocates.
	rng := rand.New(rand.NewSource(2))
	bsc := mon.NewBatchScratch()
	preds := make([][]float64, 512)
	for i := range preds {
		preds[i] = make([]float64, pred.Net.OutputDim())
	}
	verdicts := make([]vnn.MonitorVerdict, 512)
	flagged := func(inputs [][]float64) (int, int) {
		mon.CheckBatchInto(preds[:len(inputs)], bsc, inputs, verdicts[:len(inputs)])
		n := 0
		for _, v := range verdicts[:len(inputs)] {
			if !v.OK {
				n++
			}
		}
		return n, len(inputs)
	}

	nominal := make([][]float64, 0, 512)
	for i, s := range holdout {
		if i == 512 {
			break
		}
		nominal = append(nominal, s.X)
	}
	perturb := func(sigma float64) [][]float64 {
		out := make([][]float64, len(nominal))
		for i, x := range nominal {
			p := append([]float64(nil), x...)
			for j := range p {
				p[j] += rng.NormFloat64() * sigma
				if p[j] < 0 {
					p[j] = 0
				}
				if p[j] > 1 {
					p[j] = 1
				}
			}
			out[i] = p
		}
		return out
	}
	random := make([][]float64, len(nominal))
	for i := range random {
		random[i] = highway.RandomFeatureVector(rng)
	}

	for _, c := range []struct {
		name   string
		inputs [][]float64
	}{
		{"held-out nominal scenes ", nominal},
		{"sensor noise σ=0.10     ", perturb(0.10)},
		{"sensor noise σ=0.25     ", perturb(0.25)},
		{"sensor noise σ=0.50     ", perturb(0.50)},
		{"uniform random vectors  ", random},
	} {
		f, n := flagged(c.inputs)
		fmt.Printf("%s flagged %4d/%4d (%.1f%%)\n", c.name, f, n, 100*float64(f)/float64(n))
	}

	// 5. The same measurement as a dossier row: the MonitorAudit analysis
	// flags coverage-generated inputs — fresh probes of the whole domain.
	finding, err := vnn.AnalyzeOne(context.Background(), cn, &vnn.MonitorAudit{
		Data: buildInputs, Gamma: 0, AuditTests: 2000, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	mf := finding.Monitor
	fmt.Printf("\nmonitor_audit (certification dossier row): %d/%d coverage-generated probes flagged (%.1f%%)\n",
		mf.Flagged, mf.Audited, 100*mf.FlaggedFraction)
	fmt.Println("\nin operation, vnnd serves exactly this check per prediction: POST /v1/infer")
	fmt.Println("returns each input's prediction plus its ok / out-of-pattern verdict.")
}
