// Traceability demonstrates neuron-to-feature traceability (the paper's
// adaptation (A) of requirement-to-code traceability): which input features
// drive each neuron of a trained motion predictor, which neurons are dead,
// and which are provably always-active or always-inactive on the verified
// input region.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/highway"
	"repro/internal/trace"
	"repro/internal/train"
)

func main() {
	log.SetFlags(0)
	// Generate data and train a small predictor.
	cfg := highway.DefaultDatasetConfig()
	cfg.Episodes = 3
	data, err := highway.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pred := core.NewPredictorNet(2, 8, 2, 5)
	trainer := &train.Trainer{
		Net: pred.Net, Loss: train.MDN{K: 2}, Opt: train.NewAdam(0.003),
		BatchSize: 64, Rng: rand.New(rand.NewSource(5)), ClipNorm: 20,
	}
	trainer.Fit(data, 10)

	// Analyze over the dataset, with activation conditions on the
	// left-occupied region the verifier uses.
	inputs := make([][]float64, 0, 400)
	for i := 0; i < len(data) && i < 400; i++ {
		inputs = append(inputs, data[i].X)
	}
	rep, err := trace.Analyze(pred.Net, inputs, highway.FeatureNames(), trace.Options{
		TopK:   3,
		Region: core.LeftOccupiedRegion().Box,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)

	fmt.Printf("\ndead neurons on this dataset: %d\n", len(rep.DeadNeurons()))
	fmt.Println("\nneurons most driven by the safety-critical feature (nbr.left.presence):")
	leftFeat := highway.NeighborFeature(highway.Left, highway.NPPresence)
	for _, n := range rep.Neurons {
		for _, fs := range n.TopByWeight {
			if fs.Feature == leftFeat {
				fmt.Printf("  layer %d neuron %d (weight-path score %.3f)\n", n.Layer, n.Index, fs.Score)
			}
		}
	}
}
