// Traceability demonstrates neuron-to-feature traceability (the paper's
// adaptation (A) of requirement-to-code traceability): which input features
// drive each neuron of a trained motion predictor, which neurons are dead,
// and which are provably always-active or always-inactive on the verified
// input region.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro/pkg/highway"
	"repro/pkg/vnn"
)

func main() {
	log.SetFlags(0)
	// Generate data and train a small predictor.
	cfg := highway.DefaultDatasetConfig()
	cfg.Episodes = 3
	data, err := highway.GenerateDataset(cfg)
	if err != nil {
		log.Fatal(err)
	}
	pred := vnn.NewPredictor(2, 8, 2, 5)
	trainer := &vnn.Trainer{
		Net: pred.Net, Loss: vnn.MDN{K: 2}, Opt: vnn.NewAdam(0.003),
		BatchSize: 64, Rng: rand.New(rand.NewSource(5)), ClipNorm: 20,
	}
	trainer.Fit(data, 10)

	// Analyze over the dataset through the public dependability API: the
	// network is compiled against the left-occupied region once, and the
	// traceability analysis reads its activation conditions straight from
	// the compiled pre-activation bounds — no second propagation pass.
	inputs := make([][]float64, 0, 400)
	for i := 0; i < len(data) && i < 400; i++ {
		inputs = append(inputs, data[i].X)
	}
	cn, err := vnn.Compile(context.Background(), pred.Net, vnn.LeftOccupiedRegion(), vnn.Options{})
	if err != nil {
		log.Fatal(err)
	}
	finding, err := vnn.AnalyzeOne(context.Background(), cn, &vnn.Traceability{
		Data: inputs, FeatureNames: highway.FeatureNames(), TopK: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep := finding.Traceability
	fmt.Print(rep)

	fmt.Printf("\ndead neurons on this dataset: %d\n", len(rep.DeadNeurons()))
	fmt.Println("\nneurons most driven by the safety-critical feature (nbr.left.presence):")
	leftFeat := highway.NeighborFeature(highway.Left, highway.NPPresence)
	for _, n := range rep.Neurons {
		for _, fs := range n.TopByWeight {
			if fs.Feature == leftFeat {
				fmt.Printf("  layer %d neuron %d (weight-path score %.3f)\n", n.Layer, n.Index, fs.Score)
			}
		}
	}
}
