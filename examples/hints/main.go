// Hints demonstrates the paper's future-work item (iii): training under
// known properties of the target function. Two predictors learn from the
// same data; one adds the property penalty ("hints") that punishes left
// lateral-velocity suggestions in left-occupied states. Formal verification
// then shows the hinted network attains a smaller provable maximum.
//
// The whole run — data generation, validation, training, hint fine-tuning
// and verification — uses only the public packages (pkg/highway, pkg/vnn).
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/pkg/highway"
	"repro/pkg/vnn"
)

func main() {
	log.SetFlags(0)
	data, err := highway.GenerateDataset(highway.DefaultDatasetConfig())
	if err != nil {
		log.Fatal(err)
	}
	clean, _ := vnn.SanitizeData(data, vnn.SafetyRules(1e-9))
	fmt.Printf("training a predictor on %d validated samples\n\n", len(clean))

	pred := vnn.NewPredictor(2, 8, 2, 11)
	trainer := &vnn.Trainer{
		Net: pred.Net, Loss: vnn.MDN{K: 2}, Opt: vnn.NewAdam(0.003),
		BatchSize: 64, Rng: rand.New(rand.NewSource(11)), ClipNorm: 20,
	}
	trainer.Fit(clean, 15)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	opts := vnn.Options{Parallel: true}
	before, err := pred.VerifySafety(ctx, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s verified max lateral velocity (left occupied): %8.4f m/s  (%.1fs)\n",
		"plain mdn", before.Value, before.Stats.Elapsed.Seconds())

	// Fine-tune the same network under the known property: penalty loss,
	// property-derived samples, and counterexample-guided rounds.
	if err := vnn.HintFineTune(pred, clean, vnn.HintConfig{Seed: 11}); err != nil {
		log.Fatal(err)
	}
	after, err := pred.VerifySafety(ctx, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-24s verified max lateral velocity (left occupied): %8.4f m/s  (%.1fs)\n",
		"after hint fine-tuning", after.Value, after.Stats.Elapsed.Seconds())

	fmt.Println("\nthe hinted model trades a little likelihood for a provably smaller maximum —")
	fmt.Println("the paper's suggested route to networks that verify by construction.")
}
