// Package repro holds the benchmark harness that regenerates every table
// and figure of the paper's evaluation (see DESIGN.md for the experiment
// index and EXPERIMENTS.md for measured results):
//
//	BenchmarkTable2/*            — Table II: verification of I<d>×<w> predictors
//	BenchmarkTable2ProveBound    — Table II last row: prove lat vel ≤ 3 m/s
//	BenchmarkFig1Snapshot        — Fig. 1: scene + predicted action distribution
//	BenchmarkCertificationPipeline — Table I: the full methodology
//	BenchmarkCoverage/*          — Sec. II: MC/DC dichotomy measurements
//	BenchmarkQuantVerify/*       — remark (ii): quantized-network verification
//	BenchmarkHintsAblation/*     — remark (iii): property-guided training
//	BenchmarkBigMAblation/*      — design choice: interval vs LP-tightened big-M
//	BenchmarkEngineWorkers/*     — warm-started engine: Workers=1 vs all cores
//
// The sweep uses scaled-down widths so `go test -bench=.` terminates on a
// laptop; `cmd/table2` runs the paper's exact architectures.
package repro

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/dataval"
	"repro/internal/gmm"
	"repro/internal/highway"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/train"
	"repro/internal/verify"
	"repro/pkg/vnn"
)

// benchCtx builds a generously-bounded context for one benchmarked query.
func benchCtx(b *testing.B) context.Context {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	b.Cleanup(cancel)
	return ctx
}

// benchWidths is the scaled Table II sweep (the paper's widths are
// 10,20,25,40,50,60 at depth 4; run cmd/table2 for those).
var benchWidths = []int{4, 6, 8, 10}

const benchDepth = 2

type benchState struct {
	data   []train.Sample
	preds  map[int]*core.Predictor // by width, plain MDN training
	hinted *core.Predictor
}

var (
	stateOnce sync.Once
	state     benchState
)

// setup builds one shared dataset and trains every benchmark predictor
// exactly once; benchmarks then time only the experiment itself.
func setup(b *testing.B) *benchState {
	b.Helper()
	stateOnce.Do(func() {
		cfg := highway.DefaultDatasetConfig()
		cfg.Episodes = 3
		cfg.StepsPerEpisode = 150
		cfg.Sim.Seed = 1
		data, err := highway.GenerateDataset(cfg)
		if err != nil {
			panic(err)
		}
		clean, _ := dataval.Sanitize(data, core.SafetyRules(1e-9))
		state.data = clean
		state.preds = map[int]*core.Predictor{}
		for _, w := range benchWidths {
			state.preds[w] = trainPredictor(clean, w)
		}
		// Hinted variant: the same plain network fine-tuned under the
		// property (penalty + region samples + counterexample rounds).
		state.hinted = &core.Predictor{Net: state.preds[benchWidths[0]].Net.Clone(), K: 2}
		if err := core.HintFineTune(state.hinted, clean, core.HintConfig{Seed: 4242}); err != nil {
			panic(err)
		}
	})
	return &state
}

func trainPredictor(data []train.Sample, width int) *core.Predictor {
	pred := core.NewPredictorNet(benchDepth, width, 2, int64(width)*31+7)
	tr := &train.Trainer{
		Net: pred.Net, Loss: train.MDN{K: 2}, Opt: train.NewAdam(0.003),
		BatchSize: 64, Rng: rand.New(rand.NewSource(int64(width))), ClipNorm: 20,
	}
	tr.Fit(data, 10)
	return pred
}

// BenchmarkTable2 regenerates Table II rows: per architecture, the maximum
// lateral velocity when a vehicle exists on the left, and the time to find
// it. The reported custom metrics carry the table's two columns.
func BenchmarkTable2(b *testing.B) {
	st := setup(b)
	for _, w := range benchWidths {
		pred := st.preds[w]
		b.Run(fmt.Sprintf("I%dx%d", benchDepth, w), func(b *testing.B) {
			var last *vnn.Result
			ctx := benchCtx(b)
			for i := 0; i < b.N; i++ {
				res, err := pred.VerifySafety(ctx, vnn.Options{})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Value, "maxLatVel(m/s)")
			b.ReportMetric(float64(last.Stats.Nodes), "bbNodes")
			b.ReportMetric(float64(last.Stats.Binaries), "binaries")
		})
	}
}

// BenchmarkTable2ProveBound is Table II's final row: prove the lateral
// velocity can never exceed 3 m/s on the largest benchmarked network.
func BenchmarkTable2ProveBound(b *testing.B) {
	st := setup(b)
	pred := st.preds[benchWidths[len(benchWidths)-1]]
	var proved float64
	ctx := benchCtx(b)
	for i := 0; i < b.N; i++ {
		outcome, _, err := pred.ProveSafetyBound(ctx, 3.0, vnn.Options{})
		if err != nil {
			b.Fatal(err)
		}
		// The paper itself observed that not every trained network
		// guarantees the property; report the outcome instead of failing.
		if outcome == vnn.Proved {
			proved = 1
		} else {
			proved = 0
		}
	}
	b.ReportMetric(proved, "proved")
}

// BenchmarkFig1Snapshot regenerates Fig. 1: simulate a scene, render it,
// run the predictor, and rasterize the suggested action distribution.
func BenchmarkFig1Snapshot(b *testing.B) {
	st := setup(b)
	pred := st.preds[benchWidths[0]]
	for i := 0; i < b.N; i++ {
		sim, err := highway.NewSim(highway.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		sim.Run(200, 0.25)
		ego := sim.Vehicles[0]
		scene := sim.Render(ego, 200, 72)
		mix := pred.Predict(sim.Observe(ego).Encode())
		grid := mix.Grid(-3, 3, -3, 3, 48, 12)
		if len(scene) == 0 || len(grid) != 12 {
			b.Fatal("snapshot incomplete")
		}
	}
}

// BenchmarkCertificationPipeline runs the whole Table I methodology on a
// small predictor: data validation, training, traceability, coverage and
// formal verification.
func BenchmarkCertificationPipeline(b *testing.B) {
	ds := highway.DefaultDatasetConfig()
	ds.Episodes = 1
	ds.StepsPerEpisode = 60
	for i := 0; i < b.N; i++ {
		res, err := core.RunPipeline(context.Background(), core.PipelineConfig{
			Depth: 1, Width: 6, Components: 2,
			Seed: int64(i + 1), Dataset: ds, Epochs: 4,
			VerifyTimeout: 10 * time.Minute,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.MaxLatVel == nil {
			b.Fatal("pipeline skipped verification")
		}
	}
}

// BenchmarkCoverage measures the Sec. II testing dichotomy: MC/DC demands
// for tanh vs ReLU, and the cost of coverage-suite maintenance.
func BenchmarkCoverage(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tanhNet := nn.New(nn.Config{Name: "t", InputDim: 8, Hidden: []int{20, 20}, OutputDim: 2, HiddenAct: nn.Tanh, OutputAct: nn.Identity}, rng)
	reluNet := nn.New(nn.Config{Name: "r", InputDim: 8, Hidden: []int{20, 20}, OutputDim: 2, HiddenAct: nn.ReLU, OutputAct: nn.Identity}, rng)

	b.Run("mcdc-counting", func(b *testing.B) {
		var tanhTests, reluBits int
		for i := 0; i < b.N; i++ {
			tanhTests = coverage.RequiredTests(tanhNet)
			reluBits = coverage.BranchCombinations(reluNet).BitLen()
		}
		b.ReportMetric(float64(tanhTests), "tanhMCDCTests")
		b.ReportMetric(float64(reluBits-1), "reluBranchExponent")
	})
	b.Run("relu-suite-add", func(b *testing.B) {
		suite := coverage.NewSuite(reluNet)
		x := make([]float64, 8)
		r := rand.New(rand.NewSource(2))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := range x {
				x[j] = r.Float64()*2 - 1
			}
			suite.Add(x)
		}
	})
	b.Run("coverage-guided-generation", func(b *testing.B) {
		lo := make([]float64, 8)
		hi := make([]float64, 8)
		for i := range lo {
			lo[i], hi[i] = -1, 1
		}
		for i := 0; i < b.N; i++ {
			suite, _ := coverage.Generate(reluNet, lo, hi, rand.New(rand.NewSource(int64(i))), coverage.GenerateOptions{MaxTests: 500})
			if suite.Tests() == 0 {
				b.Fatal("no tests generated")
			}
		}
	})
}

// BenchmarkQuantVerify compares verification of the float predictor against
// its 8-bit quantized version (concluding remark ii).
func BenchmarkQuantVerify(b *testing.B) {
	st := setup(b)
	pred := st.preds[benchWidths[0]]
	qnet, info, err := quant.Quantize(pred.Net, 8)
	if err != nil {
		b.Fatal(err)
	}
	qpred := &core.Predictor{Net: qnet, K: pred.K}
	b.Run("float64", func(b *testing.B) {
		ctx := benchCtx(b)
		for i := 0; i < b.N; i++ {
			if _, err := pred.VerifySafety(ctx, vnn.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("int8", func(b *testing.B) {
		var last *vnn.Result
		ctx := benchCtx(b)
		for i := 0; i < b.N; i++ {
			res, err := qpred.VerifySafety(ctx, vnn.Options{})
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(last.Value, "maxLatVel(m/s)")
		b.ReportMetric(info.MaxWeightError, "maxWeightErr")
	})
}

// BenchmarkHintsAblation verifies a plain and a hint-trained predictor of
// identical architecture (concluding remark iii): the hinted network's
// verified maximum should be no larger.
func BenchmarkHintsAblation(b *testing.B) {
	st := setup(b)
	run := func(b *testing.B, pred *core.Predictor) float64 {
		var v float64
		ctx := benchCtx(b)
		for i := 0; i < b.N; i++ {
			res, err := pred.VerifySafety(ctx, vnn.Options{})
			if err != nil {
				b.Fatal(err)
			}
			v = res.Value
		}
		b.ReportMetric(v, "maxLatVel(m/s)")
		return v
	}
	b.Run("plain", func(b *testing.B) { run(b, st.preds[benchWidths[0]]) })
	b.Run("hints", func(b *testing.B) { run(b, st.hinted) })
}

// BenchmarkEngineWorkers runs the hardest Table II row on the sequential
// engine (Workers=1) and the default parallel engine (Workers=0, all
// cores). The verified maximum must agree between the two modes — the
// engines differ only in scheduling and warm-start paths, never in the
// answer — while wall-clock time shows the parallel speedup.
func BenchmarkEngineWorkers(b *testing.B) {
	st := setup(b)
	pred := st.preds[benchWidths[len(benchWidths)-1]]
	sequentialValue := math.NaN()
	for _, mode := range []struct {
		name    string
		workers int
	}{{"workers1", 1}, {"workersAuto", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			var last *vnn.Result
			ctx := benchCtx(b)
			for i := 0; i < b.N; i++ {
				res, err := pred.VerifySafety(ctx, vnn.Options{Workers: mode.workers})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			if mode.workers == 1 {
				sequentialValue = last.Value
			} else if !math.IsNaN(sequentialValue) && math.Abs(last.Value-sequentialValue) > 1e-9 {
				b.Fatalf("parallel engine value %.12g != sequential %.12g", last.Value, sequentialValue)
			}
			b.ReportMetric(last.Value, "maxLatVel(m/s)")
			b.ReportMetric(float64(last.Stats.Nodes), "bbNodes")
			b.ReportMetric(float64(last.Stats.LPPivots), "lpPivots")
		})
	}
}

// BenchmarkBigMAblation isolates the effect of LP-based bound tightening on
// the MILP solve (DESIGN.md design-choice ablation).
func BenchmarkBigMAblation(b *testing.B) {
	st := setup(b)
	pred := st.preds[benchWidths[1]]
	for _, mode := range []struct {
		name    string
		tighten bool
	}{{"interval-bigM", false}, {"lp-tightened-bigM", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var nodes int
			ctx := benchCtx(b)
			for i := 0; i < b.N; i++ {
				res, err := pred.VerifySafety(ctx, vnn.Options{Tighten: mode.tighten})
				if err != nil {
					b.Fatal(err)
				}
				nodes = res.Stats.Nodes
			}
			b.ReportMetric(float64(nodes), "bbNodes")
		})
	}
}

// BenchmarkAttackVsVerify compares the incomplete PGD falsifier against the
// complete MILP verifier on the same property: the attack is orders of
// magnitude faster but only yields a lower bound (the testing-vs-formal gap
// of Sec. II B, measured).
func BenchmarkAttackVsVerify(b *testing.B) {
	st := setup(b)
	pred := st.preds[benchWidths[1]]
	region := core.LeftOccupiedRegion()
	out := pred.MuLatOutputs()[0]
	b.Run("pgd-attack", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			res, err := attack.Maximize(pred.Net, region, out, rand.New(rand.NewSource(int64(i))), attack.Options{})
			if err != nil {
				b.Fatal(err)
			}
			v = res.Value
		}
		b.ReportMetric(v, "attackLatVel(m/s)")
	})
	b.Run("milp-verify", func(b *testing.B) {
		var v float64
		for i := 0; i < b.N; i++ {
			res, err := verify.MaxOutput(pred.Net, region, out, verify.Options{TimeLimit: 10 * time.Minute})
			if err != nil {
				b.Fatal(err)
			}
			v = res.Value
		}
		b.ReportMetric(v, "verifiedLatVel(m/s)")
	})
}

// BenchmarkResilience measures the ATVA'17 maximum-resilience query: the
// certified ℓ∞ radius around a nominal left-occupied scene.
func BenchmarkResilience(b *testing.B) {
	st := setup(b)
	pred := st.preds[benchWidths[0]]
	region := core.LeftOccupiedRegion()
	x0 := make([]float64, pred.Net.InputDim())
	for i, iv := range region.Box {
		x0[i] = (iv.Lo + iv.Hi) / 2
	}
	out := pred.MuLatOutputs()[0]
	thr := pred.Net.Forward(x0)[out] + 1
	var eps float64
	for i := 0; i < b.N; i++ {
		res, err := verify.Resilience(pred.Net, x0, region.Box, out, thr, verify.ResilienceOptions{
			MaxIterations: 6,
			Query:         verify.Options{TimeLimit: 10 * time.Minute},
		})
		if err != nil {
			b.Fatal(err)
		}
		eps = res.Epsilon
	}
	b.ReportMetric(eps, "certifiedRadius")
}

// BenchmarkFrontProperty verifies the second (longitudinal) safety
// property: no strong acceleration suggestion with a vehicle close ahead.
func BenchmarkFrontProperty(b *testing.B) {
	st := setup(b)
	pred := st.preds[benchWidths[0]]
	var v float64
	ctx := benchCtx(b)
	for i := 0; i < b.N; i++ {
		res, err := pred.VerifyFrontSafety(ctx, vnn.Options{})
		if err != nil {
			b.Fatal(err)
		}
		v = res.Value
	}
	b.ReportMetric(v, "maxLongAccel")
}

// BenchmarkSubstrates micro-benchmarks the load-bearing kernels so
// regressions in the solver or simulator surface immediately.
func BenchmarkSubstrates(b *testing.B) {
	st := setup(b)
	pred := st.preds[benchWidths[0]]
	x := highway.RandomFeatureVector(rand.New(rand.NewSource(3)))

	b.Run("forward-84in", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pred.Net.Forward(x)
		}
	})
	b.Run("mdn-decode", func(b *testing.B) {
		raw := pred.Net.Forward(x)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gmm.Decode(raw)
		}
	})
	b.Run("sim-step-24veh", func(b *testing.B) {
		sim, err := highway.NewSim(highway.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.Step(0.25)
		}
	})
	b.Run("observe-encode", func(b *testing.B) {
		sim, err := highway.NewSim(highway.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		sim.Run(50, 0.25)
		ego := sim.Vehicles[0]
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sim.Observe(ego).Encode()
		}
	})
	b.Run("train-epoch", func(b *testing.B) {
		tr := &train.Trainer{
			Net: pred.Net.Clone(), Loss: train.MDN{K: 2}, Opt: train.NewAdam(0.003),
			BatchSize: 64, Rng: rand.New(rand.NewSource(4)), ClipNorm: 20,
		}
		data := st.data
		if len(data) > 512 {
			data = data[:512]
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Epoch(data)
		}
	})
}
