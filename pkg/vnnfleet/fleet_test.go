package vnnfleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeStore implements Store over a plain map, with the knobs the edge
// case tests need: phantom set members (in the sketch but not
// exportable), entries that vanish after the first enumeration, and
// per-fingerprint import verdicts.
type fakeStore struct {
	mu       sync.Mutex
	entries  map[string]*WorkloadExport
	draining bool

	// phantom fingerprints appear in FleetFingerprints (and resolve)
	// but ExportEntry 404s them — an entry evicted between the sketch
	// snapshot and the pull.
	phantom []string
	// dropAfterEnum is removed from the store after the first
	// FleetFingerprints call — an entry evicted between the sketch and
	// the resolve.
	dropAfterEnum string
	enumerations  int

	// importErr overrides ImportEntry's verdict per fingerprint.
	importErr map[string]error
	imported  []string
}

func newFakeStore(fps ...string) *fakeStore {
	s := &fakeStore{entries: make(map[string]*WorkloadExport), importErr: make(map[string]error)}
	for _, fp := range fps {
		s.entries[fp] = &WorkloadExport{Fingerprint: fp, Kind: KindCompile}
	}
	return s
}

func (s *fakeStore) FleetFingerprints() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enumerations++
	if s.enumerations == 1 && s.dropAfterEnum != "" {
		defer delete(s.entries, s.dropAfterEnum)
	}
	out := make([]string, 0, len(s.entries)+len(s.phantom))
	for fp := range s.entries {
		out = append(out, fp)
	}
	return append(out, s.phantom...)
}

func (s *fakeStore) ExportEntry(fp string) (*WorkloadExport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	exp, ok := s.entries[fp]
	if !ok {
		return nil, ErrNotFound
	}
	return exp, nil
}

func (s *fakeStore) ImportEntry(_ context.Context, exp *WorkloadExport) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return ErrDraining
	}
	if err := s.importErr[exp.Fingerprint]; err != nil {
		return err
	}
	s.entries[exp.Fingerprint] = exp
	s.imported = append(s.imported, exp.Fingerprint)
	return nil
}

func (s *fakeStore) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *fakeStore) setDraining(v bool) {
	s.mu.Lock()
	s.draining = v
	s.mu.Unlock()
}

func (s *fakeStore) has(fp string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[fp]
	return ok
}

// serve mounts a Peer over store on a test server.
func serve(t *testing.T, store Store) (*Peer, *httptest.Server) {
	t.Helper()
	p := NewPeer(store, Options{})
	mux := http.NewServeMux()
	p.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return p, srv
}

func fps(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("vnn1-%s%04d", prefix, i)
	}
	return out
}

// TestReconcilePullsMissing: a follower pulls exactly the entries it
// lacks, and a second round moves nothing.
func TestReconcilePullsMissing(t *testing.T) {
	shared := fps("shared", 40)
	aOnly := fps("aonly", 7)
	leader := newFakeStore(append(append([]string{}, shared...), aOnly...)...)
	follower := newFakeStore(shared...)
	_, srv := serve(t, leader)

	p := NewPeer(follower, Options{})
	rs, err := p.ReconcileOnce(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Missing != len(aOnly) || rs.Pulled != len(aOnly) || rs.Skipped != 0 || rs.Rejected != 0 {
		t.Fatalf("round stats %+v, want %d pulled", rs, len(aOnly))
	}
	if !rs.Decoded {
		t.Fatal("stream did not decode")
	}
	for _, fp := range aOnly {
		if !follower.has(fp) {
			t.Fatalf("missing entry %s was not pulled", fp)
		}
	}

	// Converged: the next round decodes an empty difference fast.
	rs, err = p.ReconcileOnce(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Missing != 0 || rs.Pulled != 0 {
		t.Fatalf("second round moved entries: %+v", rs)
	}
	if rs.SymbolsReceived > 8 {
		t.Fatalf("empty difference consumed %d symbols", rs.SymbolsReceived)
	}
	if st := p.Stats(); st.EntriesPulled != int64(len(aOnly)) || st.Rounds != 2 {
		t.Fatalf("stats %+v", st)
	}
}

// TestReconcileSkipsEvictedEntry: an entry evicted between the sketch
// snapshot and the pull (export 404) is skipped cleanly, everything
// else still lands.
func TestReconcileSkipsEvictedEntry(t *testing.T) {
	leader := newFakeStore(fps("live", 5)...)
	leader.phantom = []string{"vnn1-evicted"}
	follower := newFakeStore()
	_, srv := serve(t, leader)

	p := NewPeer(follower, Options{})
	rs, err := p.ReconcileOnce(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Missing != 6 || rs.Pulled != 5 || rs.Skipped != 1 || rs.Rejected != 0 {
		t.Fatalf("round stats %+v, want 5 pulled / 1 skipped", rs)
	}
	if follower.has("vnn1-evicted") {
		t.Fatal("evicted phantom was imported")
	}
}

// TestReconcileSkipsUnresolvedHash: an entry evicted between the
// sketch and the resolve call is absent from the resolve response and
// skipped.
func TestReconcileSkipsUnresolvedHash(t *testing.T) {
	leader := newFakeStore(fps("live", 5)...)
	leader.dropAfterEnum = "vnn1-live0000"
	follower := newFakeStore()
	_, srv := serve(t, leader)

	p := NewPeer(follower, Options{})
	rs, err := p.ReconcileOnce(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Missing != 5 || rs.Pulled != 4 || rs.Skipped != 1 {
		t.Fatalf("round stats %+v, want 4 pulled / 1 skipped", rs)
	}
}

// TestReconcileClassifiesImportErrors: verification failures are
// rejections, dependency gaps are skips, and neither aborts the round.
func TestReconcileClassifiesImportErrors(t *testing.T) {
	leader := newFakeStore("vnn1-good", "vnn1-corrupt", "vnnm1-orphan")
	follower := newFakeStore()
	follower.importErr["vnn1-corrupt"] = fmt.Errorf("checksum: %w", ErrVerify)
	follower.importErr["vnnm1-orphan"] = fmt.Errorf("needs workload: %w", ErrDependency)
	_, srv := serve(t, leader)

	p := NewPeer(follower, Options{})
	rs, err := p.ReconcileOnce(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Pulled != 1 || rs.Rejected != 1 || rs.Skipped != 1 {
		t.Fatalf("round stats %+v, want 1/1/1", rs)
	}
	if !follower.has("vnn1-good") || follower.has("vnn1-corrupt") {
		t.Fatal("wrong entries imported")
	}
	if st := p.Stats(); st.PullRejected != 1 || st.PullSkipped != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestReconcileDrain: a draining follower refuses to start a round,
// and a draining leader answers 503 (no new inserts after drain
// starts, in either direction).
func TestReconcileDrain(t *testing.T) {
	leader := newFakeStore("vnn1-x")
	follower := newFakeStore()
	_, srv := serve(t, leader)

	follower.setDraining(true)
	p := NewPeer(follower, Options{})
	if _, err := p.ReconcileOnce(context.Background(), srv.URL); !errors.Is(err, ErrDraining) {
		t.Fatalf("draining follower started a round: %v", err)
	}
	follower.setDraining(false)

	leader.setDraining(true)
	if _, err := p.ReconcileOnce(context.Background(), srv.URL); err == nil {
		t.Fatal("round against a draining leader succeeded")
	}
	if follower.has("vnn1-x") {
		t.Fatal("entry imported from a draining leader")
	}

	// Drain lifted: replication resumes.
	leader.setDraining(false)
	if _, err := p.ReconcileOnce(context.Background(), srv.URL); err != nil {
		t.Fatal(err)
	}
	if !follower.has("vnn1-x") {
		t.Fatal("entry not pulled after drain lifted")
	}
}

// TestReconcileOrdersCompilesFirst: compile entries are imported
// before monitor entries within one round, so monitor dependencies
// resolve in a single pass.
func TestReconcileOrdersCompilesFirst(t *testing.T) {
	leader := newFakeStore("vnnm1-mon-b", "vnn1-net-a", "vnnm1-mon-a", "vnn1-net-b")
	follower := newFakeStore()
	_, srv := serve(t, leader)

	p := NewPeer(follower, Options{})
	if _, err := p.ReconcileOnce(context.Background(), srv.URL); err != nil {
		t.Fatal(err)
	}
	want := []string{"vnn1-net-a", "vnn1-net-b", "vnnm1-mon-a", "vnnm1-mon-b"}
	if len(follower.imported) != len(want) {
		t.Fatalf("imported %v, want %v", follower.imported, want)
	}
	for i, fp := range want {
		if follower.imported[i] != fp {
			t.Fatalf("import order %v, want %v", follower.imported, want)
		}
	}
}

// TestPullVerifiesClaimedFingerprint: an export whose document claims
// a different fingerprint than the one requested is rejected before
// ImportEntry ever runs.
func TestPullVerifiesClaimedFingerprint(t *testing.T) {
	leader := newFakeStore("vnn1-honest")
	leader.entries["vnn1-honest"].Fingerprint = "vnn1-liar"
	follower := newFakeStore()
	_, srv := serve(t, leader)

	p := NewPeer(follower, Options{})
	rs, err := p.ReconcileOnce(context.Background(), srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rejected != 1 || rs.Pulled != 0 {
		t.Fatalf("round stats %+v, want 1 rejected", rs)
	}
	if len(follower.imported) != 0 {
		t.Fatal("mislabeled entry reached ImportEntry")
	}
}

// TestRunLoopConvergesAndBacksOff: the loop replicates within a few
// jittered intervals, and a dead peer does not wedge it.
func TestRunLoopConvergesAndBacksOff(t *testing.T) {
	leader := newFakeStore(fps("loop", 3)...)
	follower := newFakeStore()
	_, srv := serve(t, leader)

	p := NewPeer(follower, Options{Interval: 10 * time.Millisecond, RoundTimeout: 5 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); p.Run(ctx, []string{srv.URL, "http://127.0.0.1:1"}) }()

	deadline := time.After(10 * time.Second)
	for {
		if follower.has("vnn1-loop0002") && follower.has("vnn1-loop0000") {
			break
		}
		select {
		case <-deadline:
			t.Fatal("run loop did not converge")
		case <-time.After(5 * time.Millisecond):
		}
	}
	// The dead peer must be in backoff, not crashing the loop.
	st := p.Stats()
	var dead *PeerStats
	for i := range st.Peers {
		if st.Peers[i].URL == "http://127.0.0.1:1" {
			dead = &st.Peers[i]
		}
	}
	if dead == nil || dead.Failures == 0 || dead.LastError == "" {
		t.Fatalf("dead peer state not tracked: %+v", st.Peers)
	}

	// Drain stops the loop on its own.
	follower.setDraining(true)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("run loop did not exit on drain")
	}
	cancel()
}

// TestReconcileTracePropagation is the cross-node trace contract: one
// reconcile round on the follower leaves ONE distributed trace whose
// id also addresses the serving peer's recorder — the symbols, resolve
// and per-entry export calls all carry the round's traceparent, and
// the serving side records each as a segment naming the follower's
// root span as its parent.
func TestReconcileTracePropagation(t *testing.T) {
	leader := newFakeStore(fps("traced", 3)...)
	follower := newFakeStore()
	recLeader := obs.NewRecorder(obs.RecorderOptions{Ring: 32, Node: "leader"})
	recFollower := obs.NewRecorder(obs.RecorderOptions{Ring: 32, Node: "follower"})

	lp := NewPeer(leader, Options{Recorder: recLeader})
	mux := http.NewServeMux()
	lp.Mount(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)

	p := NewPeer(follower, Options{Recorder: recFollower})
	if _, err := p.ReconcileOnce(context.Background(), srv.URL); err != nil {
		t.Fatal(err)
	}

	recent := recFollower.Recent()
	if len(recent) != 1 || recent[0].Route != "fleet.reconcile" {
		t.Fatalf("follower recorded %v, want one fleet.reconcile trace", recent)
	}
	tid := recent[0].TraceID
	if tid == "" {
		t.Fatal("reconcile trace has no W3C trace id")
	}
	round := recFollower.Get(tid)
	if round == nil {
		t.Fatal("reconcile trace not addressable by hex trace id")
	}
	rootSpan := round.JSON().SpanID

	// The symbols handler finishes asynchronously: it keeps producing
	// coded symbols until a write to the closed connection fails, which
	// can land after ReconcileOnce returns on the pulling side.
	var segs []*obs.Trace
	for deadline := time.Now().Add(5 * time.Second); ; {
		segs = recLeader.Segments(tid)
		if len(segs) >= 5 || time.Now().After(deadline) { // symbols + resolve + 3 exports
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(segs) < 5 {
		t.Fatalf("leader recorded %d segments of trace %s, want 5", len(segs), tid)
	}
	routes := map[string]int{}
	for _, seg := range segs {
		doc := seg.JSON()
		if doc.TraceID != tid {
			t.Fatalf("segment trace id %q != round id %q", doc.TraceID, tid)
		}
		if doc.Node != "leader" {
			t.Fatalf("segment node = %q, want leader", doc.Node)
		}
		if doc.ParentSpan != rootSpan {
			t.Fatalf("segment parent span %q, want follower root %q", doc.ParentSpan, rootSpan)
		}
		routes[doc.Route]++
	}
	if routes["fleet.symbols"] != 1 || routes["fleet.resolve"] != 1 || routes["fleet.export"] != 3 {
		t.Fatalf("segment routes = %v, want 1 symbols, 1 resolve, 3 exports", routes)
	}

	// Without a recorder on the pulling side no traceparent is minted,
	// so the serving side records nothing new.
	before := len(recLeader.Segments(tid))
	quiet := NewPeer(newFakeStore(), Options{})
	if _, err := quiet.ReconcileOnce(context.Background(), srv.URL); err != nil {
		t.Fatal(err)
	}
	if got := len(recLeader.Segments(tid)); got != before {
		t.Fatalf("untraced round grew trace %s segments %d -> %d", tid, before, got)
	}
}
