package vnnfleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/riblt"
	"repro/pkg/vnn"
)

// Process-wide fleet counters under the vnnd.fleet.* expvar namespace
// (visible in /debug/vars next to the vnnd.* serving counters).
var (
	xFleetRounds          = expvar.NewInt("vnnd.fleet.rounds")
	xFleetSymbolsSent     = expvar.NewInt("vnnd.fleet.symbols_sent")
	xFleetSymbolsReceived = expvar.NewInt("vnnd.fleet.symbols_received")
	xFleetPulled          = expvar.NewInt("vnnd.fleet.entries_pulled")
	xFleetPushed          = expvar.NewInt("vnnd.fleet.entries_pushed")
	xFleetRejected        = expvar.NewInt("vnnd.fleet.pull_rejected")
	xFleetSkipped         = expvar.NewInt("vnnd.fleet.pull_skipped")
)

// Options tune a Peer. The zero value is serviceable.
type Options struct {
	// Interval is the reconcile loop period (default 30s); each sleep
	// is jittered to ±50% so a fleet booted together does not
	// synchronize its rounds.
	Interval time.Duration
	// MaxSymbols caps coded symbols per round in each direction
	// (default 65536 ≈ 3 MiB; a round needs ~1.4·|difference|).
	MaxSymbols int
	// RoundTimeout bounds one ReconcileOnce call in the loop
	// (default 2m).
	RoundTimeout time.Duration
	// MaxBackoff caps the per-peer failure backoff (default 10×Interval,
	// at most 5m).
	MaxBackoff time.Duration
	// Client performs the HTTP requests (default http.DefaultClient —
	// per-round deadlines come from the context).
	Client *http.Client
	// Recorder, when set, records one flight-recorder trace per
	// ReconcileOnce round (route "fleet.reconcile") with symbol/resolve/
	// pull phases. Nil disables tracing.
	Recorder *obs.Recorder
	// Latency, when set, observes each round's wall time in nanoseconds.
	// Nil disables the histogram.
	Latency *obs.Histogram
}

func (o Options) withDefaults() Options {
	if o.Interval <= 0 {
		o.Interval = 30 * time.Second
	}
	if o.MaxSymbols <= 0 {
		o.MaxSymbols = defaultMaxSymbols
	}
	if o.RoundTimeout <= 0 {
		o.RoundTimeout = 2 * time.Minute
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 10 * o.Interval
		if o.MaxBackoff > 5*time.Minute {
			o.MaxBackoff = 5 * time.Minute
		}
	}
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	return o
}

// Peer is one node's fleet endpoint set plus its reconcile client: it
// serves the local Store to pulling peers (Mount) and periodically
// pulls what the peers have that the local node lacks (Run /
// ReconcileOnce).
type Peer struct {
	store Store
	opts  Options

	rounds          atomic.Int64
	symbolsSent     atomic.Int64
	symbolsReceived atomic.Int64
	entriesPulled   atomic.Int64
	entriesPushed   atomic.Int64
	pullRejected    atomic.Int64
	pullSkipped     atomic.Int64

	mu    sync.Mutex
	peers map[string]*peerState
}

// peerState tracks one remote peer's health from this node's side.
type peerState struct {
	rounds    int64
	failures  int64
	consec    int       // consecutive failures, drives backoff
	lastSync  time.Time // last successful round
	lastError string
	nextTry   time.Time // backoff gate
}

// NewPeer builds a fleet peer over store.
func NewPeer(store Store, opts Options) *Peer {
	return &Peer{store: store, opts: opts.withDefaults(), peers: make(map[string]*peerState)}
}

// RoundStats reports what one reconcile round did.
type RoundStats struct {
	// SymbolsReceived is the coded symbols consumed before decoding.
	SymbolsReceived int
	// Decoded reports whether the stream fully decoded (false means
	// the symbol cap tripped; whatever was peeled was still pulled).
	Decoded bool
	// Missing is the number of remote-only entries decoded; Pulled of
	// them were fetched, verified and inserted, Skipped vanished
	// upstream before the pull (or need a dependency), Rejected failed
	// verification.
	Missing, Pulled, Skipped, Rejected int
}

// ReconcileOnce runs one pull round against the peer at base (e.g.
// "http://10.0.0.2:8419"): stream coded symbols until the local
// decoder finishes, resolve the missing hashes, pull and import each
// missing entry (compiles before monitors, so monitor imports find
// their workload). Partial progress is normal: eviction races and
// dependency gaps are skips, not errors.
func (p *Peer) ReconcileOnce(ctx context.Context, base string) (RoundStats, error) {
	var rs RoundStats
	if p.store.Draining() {
		return rs, ErrDraining
	}
	base = strings.TrimSuffix(base, "/")

	start := time.Now()
	tr := p.opts.Recorder.Start("fleet.reconcile", "")
	root := tr.Root()
	root.SetAttr("peer", base)
	defer func() {
		tr.Finish()
		if p.opts.Latency != nil {
			p.opts.Latency.Observe(int64(time.Since(start)))
		}
	}()

	dec := riblt.NewDecoder()
	local := make(map[string]bool)
	for _, fp := range p.store.FleetFingerprints() {
		dec.AddSymbol(riblt.Symbol(vnn.FingerprintSetHash(fp)))
		local[fp] = true
	}

	symSpan := root.Child("symbols")
	err := p.streamSymbols(ctx, base, tr, dec, &rs)
	symSpan.SetAttr("received", rs.SymbolsReceived)
	symSpan.SetAttr("decoded", rs.Decoded)
	symSpan.End()
	if err != nil {
		p.noteRound(base, err)
		return rs, err
	}
	p.rounds.Add(1)
	xFleetRounds.Add(1)

	remote := dec.Remote()
	rs.Missing = len(remote)
	root.SetAttr("missing", rs.Missing)
	if len(remote) == 0 {
		p.noteRound(base, nil)
		return rs, nil
	}

	resolveSpan := root.Child("resolve")
	fps, err := p.resolve(ctx, base, tr, remote)
	resolveSpan.SetAttr("resolved", len(fps))
	resolveSpan.End()
	if err != nil {
		p.noteRound(base, err)
		return rs, err
	}
	// Hashes the peer no longer recognizes (entries evicted since its
	// sketch snapshot) are skips.
	rs.Skipped += len(remote) - len(fps)

	// Compiles strictly before monitors: a monitor import requires its
	// compile workload to be cached. Lexicographic within a kind keeps
	// rounds deterministic.
	sort.Slice(fps, func(i, j int) bool {
		ci, cj := strings.HasPrefix(fps[i], "vnn1-"), strings.HasPrefix(fps[j], "vnn1-")
		if ci != cj {
			return ci
		}
		return fps[i] < fps[j]
	})

	pullSpan := root.Child("pull")
	defer pullSpan.End()
	for _, fp := range fps {
		if local[fp] {
			continue // set-hash collision or duplicate; nothing to pull
		}
		entrySpan := pullSpan.Child(fp)
		err := p.pullOne(ctx, base, tr, fp)
		switch {
		case err == nil:
			entrySpan.SetAttr("outcome", "pulled")
			rs.Pulled++
			p.entriesPulled.Add(1)
			xFleetPulled.Add(1)
		case errors.Is(err, ErrVerify):
			entrySpan.SetAttr("outcome", "rejected")
			rs.Rejected++
			p.pullRejected.Add(1)
			xFleetRejected.Add(1)
		case errors.Is(err, ErrNotFound), errors.Is(err, ErrDependency):
			entrySpan.SetAttr("outcome", "skipped")
			rs.Skipped++
			p.pullSkipped.Add(1)
			xFleetSkipped.Add(1)
		default:
			// Transport failure or local drain: abort the round, the
			// loop's backoff owns the retry.
			entrySpan.SetAttr("outcome", "error")
			entrySpan.End()
			p.noteRound(base, err)
			return rs, err
		}
		entrySpan.End()
	}
	p.noteRound(base, nil)
	return rs, nil
}

// propagate stamps the round trace's W3C traceparent onto an outbound
// fleet request, so the serving peer records its side of the work as a
// segment of the SAME distributed trace. No-op when tracing is off
// (nil recorder → invalid traceparent).
func propagate(req *http.Request, tr *obs.Trace) {
	if tp := tr.Propagation(); tp.Valid() {
		req.Header.Set("traceparent", tp.String())
	}
}

// streamSymbols consumes the peer's coded-symbol stream into dec until
// it decodes or the cap trips. Closing the response body early is the
// signal the serving side keys off to stop producing.
func (p *Peer) streamSymbols(ctx context.Context, base string, tr *obs.Trace, dec *riblt.Decoder, rs *RoundStats) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/fleet/reconcile", nil)
	if err != nil {
		return err
	}
	propagate(req, tr)
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return fmt.Errorf("reconcile %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("reconcile %s: HTTP %d", base, resp.StatusCode)
	}
	br := bufio.NewReaderSize(resp.Body, flushStride*riblt.CodedSymbolSize)
	frame := make([]byte, riblt.CodedSymbolSize)
	for rs.SymbolsReceived < p.opts.MaxSymbols {
		if _, err := io.ReadFull(br, frame); err != nil {
			// EOF: the peer hit its own cap. Work with the partial decode.
			break
		}
		c, err := riblt.DecodeCodedSymbol(frame)
		if err != nil {
			return err
		}
		dec.AddCodedSymbol(c)
		rs.SymbolsReceived++
		if dec.Decoded() {
			rs.Decoded = true
			break
		}
	}
	p.symbolsReceived.Add(int64(rs.SymbolsReceived))
	xFleetSymbolsReceived.Add(int64(rs.SymbolsReceived))
	if rs.SymbolsReceived == 0 {
		return fmt.Errorf("reconcile %s: empty symbol stream", base)
	}
	return nil
}

// resolve maps decoded remote-only set hashes to fingerprint strings.
func (p *Peer) resolve(ctx context.Context, base string, tr *obs.Trace, remote []riblt.Symbol) ([]string, error) {
	hashes := make([]string, len(remote))
	for i, s := range remote {
		hashes[i] = hex.EncodeToString(s[:])
	}
	body, err := json.Marshal(resolveRequest{Hashes: hashes})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/fleet/resolve", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	propagate(req, tr)
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("resolve %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("resolve %s: HTTP %d", base, resp.StatusCode)
	}
	var rr resolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("resolve %s: %w", base, err)
	}
	fps := make([]string, 0, len(rr.Fingerprints))
	for _, fp := range rr.Fingerprints {
		fps = append(fps, fp)
	}
	return fps, nil
}

// pullOne fetches one workload export and imports it through the store.
func (p *Peer) pullOne(ctx context.Context, base string, tr *obs.Trace, fp string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/workloads/"+fp, nil)
	if err != nil {
		return err
	}
	propagate(req, tr)
	resp, err := p.opts.Client.Do(req)
	if err != nil {
		return fmt.Errorf("pull %s: %w", fp, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("pull %s: %w", fp, ErrNotFound)
	default:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("pull %s: HTTP %d", fp, resp.StatusCode)
	}
	var exp WorkloadExport
	if err := json.NewDecoder(http.MaxBytesReader(nil, resp.Body, 256<<20)).Decode(&exp); err != nil {
		return fmt.Errorf("pull %s: %w: %v", fp, ErrVerify, err)
	}
	if exp.Fingerprint != fp {
		return fmt.Errorf("pull %s: %w: document claims %s", fp, ErrVerify, exp.Fingerprint)
	}
	return p.store.ImportEntry(ctx, &exp)
}

// Run is the periodic reconcile loop: every jittered interval, one
// round against each configured peer (respecting per-peer backoff).
// Returns when ctx is canceled or the store starts draining. Meant to
// run in its own goroutine per node.
func (p *Peer) Run(ctx context.Context, peers []string) {
	if len(peers) == 0 {
		return
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for {
		// Jitter: 0.5–1.5 × Interval, so co-booted nodes desynchronize.
		sleep := p.opts.Interval/2 + time.Duration(rng.Int63n(int64(p.opts.Interval)))
		select {
		case <-ctx.Done():
			return
		case <-time.After(sleep):
		}
		if p.store.Draining() {
			return
		}
		now := time.Now()
		for _, peer := range peers {
			if !p.peerDue(peer, now) {
				continue
			}
			rctx, cancel := context.WithTimeout(ctx, p.opts.RoundTimeout)
			_, err := p.ReconcileOnce(rctx, peer)
			cancel()
			if ctx.Err() != nil || errors.Is(err, ErrDraining) || p.store.Draining() {
				return
			}
		}
	}
}

// peerDue reports whether the peer's backoff gate has passed.
func (p *Peer) peerDue(peer string, now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.peers[peer]
	return !ok || !now.Before(st.nextTry)
}

// noteRound records a round outcome and advances the peer's backoff
// state: success clears it, each consecutive failure doubles the delay
// up to MaxBackoff.
func (p *Peer) noteRound(peer string, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.peers[peer]
	if !ok {
		st = &peerState{}
		p.peers[peer] = st
	}
	st.rounds++
	if err == nil {
		st.consec = 0
		st.lastError = ""
		st.lastSync = time.Now()
		st.nextTry = time.Time{}
		return
	}
	st.failures++
	if st.consec < 30 {
		st.consec++
	}
	st.lastError = err.Error()
	backoff := p.opts.Interval << (st.consec - 1)
	if backoff > p.opts.MaxBackoff || backoff <= 0 {
		backoff = p.opts.MaxBackoff
	}
	st.nextTry = time.Now().Add(backoff)
}

// PeerStats is one remote peer's health as seen from this node.
type PeerStats struct {
	URL      string `json:"url"`
	Rounds   int64  `json:"rounds"`
	Failures int64  `json:"failures"`
	// LastSyncMS is milliseconds since the last successful round;
	// absent before the first success.
	LastSyncMS *float64 `json:"last_sync_ms,omitempty"`
	LastError  string   `json:"last_error,omitempty"`
}

// Stats is the /metrics "fleet" block.
type Stats struct {
	// Rounds counts completed symbol exchanges initiated by this node.
	Rounds int64 `json:"rounds"`
	// SymbolsSent/SymbolsReceived count coded symbols served to pulling
	// peers and consumed from them.
	SymbolsSent     int64 `json:"symbols_sent"`
	SymbolsReceived int64 `json:"symbols_received"`
	// EntriesPulled/EntriesPushed count artifacts imported from peers
	// and exported to them.
	EntriesPulled int64 `json:"entries_pulled"`
	EntriesPushed int64 `json:"entries_pushed"`
	// PullRejected counts pulls that failed content re-verification;
	// PullSkipped counts benign races (evicted upstream, missing
	// dependency).
	PullRejected int64 `json:"pull_rejected"`
	PullSkipped  int64 `json:"pull_skipped"`
	// Peers is per-peer health, sorted by URL.
	Peers []PeerStats `json:"peers,omitempty"`
}

// Stats snapshots the fleet counters.
func (p *Peer) Stats() Stats {
	s := Stats{
		Rounds:          p.rounds.Load(),
		SymbolsSent:     p.symbolsSent.Load(),
		SymbolsReceived: p.symbolsReceived.Load(),
		EntriesPulled:   p.entriesPulled.Load(),
		EntriesPushed:   p.entriesPushed.Load(),
		PullRejected:    p.pullRejected.Load(),
		PullSkipped:     p.pullSkipped.Load(),
	}
	p.mu.Lock()
	for url, st := range p.peers {
		ps := PeerStats{URL: url, Rounds: st.rounds, Failures: st.failures, LastError: st.lastError}
		if !st.lastSync.IsZero() {
			ms := float64(time.Since(st.lastSync).Microseconds()) / 1e3
			ps.LastSyncMS = &ms
		}
		s.Peers = append(s.Peers, ps)
	}
	p.mu.Unlock()
	sort.Slice(s.Peers, func(i, j int) bool { return s.Peers[i].URL < s.Peers[j].URL })
	return s
}
