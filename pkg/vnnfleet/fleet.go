// Package vnnfleet replicates vnnd's content-addressed caches across a
// static fleet of peers, so every node serves every other node's
// compiles and monitors without recompiling anything.
//
// The sync primitive is rateless set reconciliation (internal/riblt)
// over the nodes' fingerprint sets: each cache entry — a compile
// workload (vnn1-…) or a built monitor (vnnm1-…) — is folded to a
// 32-byte symbol (vnn.FingerprintSetHash), and a reconciliation round
// costs O(|difference|) coded symbols regardless of cache size, so
// nodes with 99%-overlapping caches exchange a handful of cells
// instead of full key lists.
//
// One round, always pull-shaped (both nodes run rounds periodically,
// which yields convergence in both directions):
//
//	follower                              peer
//	POST /v1/fleet/reconcile  ───────────▶
//	          ◀─────── binary coded-symbol stream (48-byte cells)
//	…decoder peels; closes the body once decoded…
//	POST /v1/fleet/resolve {hashes}  ────▶
//	          ◀─────── {hash → fingerprint}
//	GET /v1/workloads/{fp}  (per missing entry, compiles first) ──▶
//	          ◀─────── WorkloadExport (marshaled artifact)
//	…verify fingerprint, check bounds, insert through singleflight…
//
// Everything pulled is re-verified before insertion (fingerprints are
// recomputed from content, bounds are containment-checked — see
// vnn.UnmarshalCompiled), so a corrupt or malicious peer cannot seed a
// cache with a mislabeled artifact. Inserts go through the same
// singleflight caches the local request paths use, so a concurrent
// local compile and a remote pull collapse to one entry.
package vnnfleet

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/obs"
	"repro/internal/riblt"
	"repro/pkg/vnn"
)

// Workload export kinds.
const (
	KindCompile = "compile"
	KindMonitor = "monitor"
)

// Sentinel errors the Store implementation classifies import/export
// failures with; the reconcile loop's skip/reject/abort behavior keys
// on them.
var (
	// ErrNotFound: the fingerprint is not cached (here) — e.g. evicted
	// between the sketch snapshot and the pull. Skipped cleanly.
	ErrNotFound = errors.New("vnnfleet: entry not found")
	// ErrDraining: the node is shutting down; no new work, no inserts.
	ErrDraining = errors.New("vnnfleet: node is draining")
	// ErrDependency: the entry needs another entry first (a monitor
	// without its compile workload). Skipped; a later round retries.
	ErrDependency = errors.New("vnnfleet: entry depends on an uncached workload")
	// ErrVerify: the payload failed content re-verification. Rejected —
	// never inserted, counted separately from skips.
	ErrVerify = errors.New("vnnfleet: payload failed verification")
)

// WorkloadExport is the wire form of one replicable cache entry.
type WorkloadExport struct {
	Fingerprint string `json:"fingerprint"`
	// Kind is KindCompile or KindMonitor.
	Kind string `json:"kind"`
	// Compiled is the marshaled compiled artifact (vnn.MarshalCompiled)
	// for compile entries.
	Compiled json.RawMessage `json:"compiled,omitempty"`
	// Monitor is the marshaled monitor (vnn.MarshalMonitor) for monitor
	// entries.
	Monitor json.RawMessage `json:"monitor,omitempty"`
}

// Store is the cache surface a Peer replicates: vnnserver.Server
// implements it over its compile and monitor caches, and tests
// implement fakes.
type Store interface {
	// FleetFingerprints snapshots every replicable fingerprint
	// (compile workloads and built-monitor content hashes).
	FleetFingerprints() []string
	// ExportEntry renders one cached entry for a pulling peer;
	// ErrNotFound when the fingerprint is no longer cached.
	ExportEntry(fingerprint string) (*WorkloadExport, error)
	// ImportEntry verifies and inserts one pulled entry, through the
	// same deduplicating path local requests use. Classifies failures
	// with the sentinel errors above.
	ImportEntry(ctx context.Context, exp *WorkloadExport) error
	// Draining reports whether the node is shutting down; a draining
	// node neither serves fleet requests nor inserts pulled entries.
	Draining() bool
}

// resolveRequest/resolveResponse are the /v1/fleet/resolve wire forms:
// decoded 32-byte set hashes (hex) in, hash→fingerprint out. Hashes
// the node cannot resolve (entry evicted since the sketch was emitted)
// are simply absent from the response.
type resolveRequest struct {
	Hashes []string `json:"hashes"`
}

type resolveResponse struct {
	Fingerprints map[string]string `json:"fingerprints"`
}

const (
	// defaultMaxSymbols caps the coded symbols one reconcile round may
	// send or consume — a safety valve against a peer whose stream
	// never decodes, not a tuning knob (48 KiB per 1024 cells).
	defaultMaxSymbols = 1 << 16
	// flushStride is how many coded symbols are written between
	// explicit flushes, so the decoding side makes progress while the
	// stream is still being produced.
	flushStride = 64
	// maxResolveHashes bounds one resolve request.
	maxResolveHashes = 1 << 16
)

// Mount registers the peer-facing fleet endpoints on mux: the coded
// symbol stream, the hash resolver, and the by-fingerprint workload
// export. All three honor drain with 503.
func (p *Peer) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/fleet/reconcile", p.handleReconcile)
	mux.HandleFunc("POST /v1/fleet/resolve", p.handleResolve)
	mux.HandleFunc("GET /v1/workloads/{fingerprint}", p.handleExport)
}

// traceSegment records this node's side of a fleet call as a segment
// of the caller's distributed trace: when the request carries a valid
// W3C traceparent (stamped by the pulling peer — see propagate) and a
// recorder is configured, the returned trace shares the caller's trace
// id and names the caller's span as its parent. Nil (a no-op trace)
// otherwise.
func (p *Peer) traceSegment(r *http.Request, route string) *obs.Trace {
	if p.opts.Recorder == nil {
		return nil
	}
	tp, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
	if !ok {
		return nil
	}
	return p.opts.Recorder.StartRemote(route, "", tp)
}

// handleReconcile streams coded symbols of the local fingerprint set
// until the puller hangs up (it decodes and closes the body) or the
// symbol cap trips.
func (p *Peer) handleReconcile(w http.ResponseWriter, r *http.Request) {
	if p.store.Draining() {
		httpError(w, http.StatusServiceUnavailable, "node is draining")
		return
	}
	seg := p.traceSegment(r, "fleet.symbols")
	defer seg.Finish()
	enc := riblt.NewEncoder()
	for _, fp := range p.store.FleetFingerprints() {
		enc.Add(riblt.Symbol(vnn.FingerprintSetHash(fp)))
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	buf := make([]byte, 0, flushStride*riblt.CodedSymbolSize)
	for sent := 0; sent < p.opts.MaxSymbols; sent++ {
		c := enc.ProduceNextCodedSymbol()
		buf = c.AppendBinary(buf)
		if len(buf) >= flushStride*riblt.CodedSymbolSize {
			if _, err := w.Write(buf); err != nil {
				p.symbolsSent.Add(int64(sent + 1))
				xFleetSymbolsSent.Add(int64(sent + 1))
				return // puller decoded (or died); either way we are done
			}
			buf = buf[:0]
			if fl != nil {
				fl.Flush()
			}
		}
		if r.Context().Err() != nil {
			p.symbolsSent.Add(int64(sent + 1))
			xFleetSymbolsSent.Add(int64(sent + 1))
			return
		}
	}
	w.Write(buf)
	p.symbolsSent.Add(int64(p.opts.MaxSymbols))
	xFleetSymbolsSent.Add(int64(p.opts.MaxSymbols))
}

// handleResolve maps decoded set hashes back to fingerprint strings.
func (p *Peer) handleResolve(w http.ResponseWriter, r *http.Request) {
	if p.store.Draining() {
		httpError(w, http.StatusServiceUnavailable, "node is draining")
		return
	}
	seg := p.traceSegment(r, "fleet.resolve")
	defer seg.Finish()
	var req resolveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("decode request: %v", err))
		return
	}
	if len(req.Hashes) > maxResolveHashes {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("%d hashes exceed the %d cap", len(req.Hashes), maxResolveHashes))
		return
	}
	wanted := make(map[string]bool, len(req.Hashes))
	for _, h := range req.Hashes {
		wanted[h] = true
	}
	resp := resolveResponse{Fingerprints: make(map[string]string)}
	for _, fp := range p.store.FleetFingerprints() {
		h := vnn.FingerprintSetHash(fp)
		if key := hex.EncodeToString(h[:]); wanted[key] {
			resp.Fingerprints[key] = fp
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleExport serves GET /v1/workloads/{fingerprint}: the canonical
// marshaled artifact for any cached fingerprint, 404 on unknown.
func (p *Peer) handleExport(w http.ResponseWriter, r *http.Request) {
	if p.store.Draining() {
		httpError(w, http.StatusServiceUnavailable, "node is draining")
		return
	}
	fp := r.PathValue("fingerprint")
	seg := p.traceSegment(r, "fleet.export")
	seg.Root().SetAttr("fingerprint", fp)
	defer seg.Finish()
	exp, err := p.store.ExportEntry(fp)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			httpError(w, http.StatusNotFound, fmt.Sprintf("workload %s is not cached here", fp))
			return
		}
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	p.entriesPushed.Add(1)
	xFleetPushed.Add(1)
	writeJSON(w, http.StatusOK, exp)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
