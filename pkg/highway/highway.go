// Package highway is the public surface of the case study's traffic
// simulator and dataset generator (see internal/highway for the engine):
// IDM/MOBIL highway traffic, the paper's 84-dimensional feature encoding,
// and the synthetic (features, action) dataset the motion predictor is
// trained on. Everything is a type alias or a thin delegate, so values
// flow freely between this package, pkg/vnn (whose Sample, regions and
// safety rules speak the same feature encoding) and the examples — which
// import no internal packages.
package highway

import (
	"math/rand"

	ih "repro/internal/highway"
	"repro/pkg/vnn"
)

// Re-exported simulator and encoding types. Aliases, not wrappers.
type (
	// Sim is a running highway traffic simulation.
	Sim = ih.Sim
	// Config tunes a simulation (lanes, vehicles, seed, road).
	Config = ih.Config
	// Vehicle is one simulated vehicle.
	Vehicle = ih.Vehicle
	// RoadCondition describes the road the simulation runs on.
	RoadCondition = ih.RoadCondition
	// Observation is the full sensor picture around an ego vehicle;
	// Encode turns it into the 84-dimensional feature vector.
	Observation = ih.Observation
	// Orientation identifies one sensed neighbor slot around the ego.
	Orientation = ih.Orientation
	// NeighborParam identifies one feature within a neighbor slot.
	NeighborParam = ih.NeighborParam
	// DatasetConfig controls synthetic dataset generation.
	DatasetConfig = ih.DatasetConfig
)

// FeatureDim is the predictor input dimension (84, as in the paper).
const FeatureDim = ih.FeatureDim

// Orientations, counted clockwise from the left neighbor — the slot the
// lateral safety property quantifies over.
const (
	Left       = ih.Left
	FrontLeft  = ih.FrontLeft
	Front      = ih.Front
	FrontRight = ih.FrontRight
	Right      = ih.Right
	RearRight  = ih.RearRight
	Rear       = ih.Rear
	RearLeft   = ih.RearLeft
)

// Neighbor slot parameters (see the feature-encoding contract in
// internal/highway/features.go).
const (
	NPPresence  = ih.NPPresence
	NPGap       = ih.NPGap
	NPClosing   = ih.NPClosing
	NPRelSpeed  = ih.NPRelSpeed
	NPLatOffset = ih.NPLatOffset
	NPLength    = ih.NPLength
	NPSpeed     = ih.NPSpeed
	NPHeadway   = ih.NPHeadway
)

// DefaultConfig returns a plausible three-lane highway configuration.
func DefaultConfig() Config { return ih.DefaultConfig() }

// NewSim builds a simulation from cfg.
func NewSim(cfg Config) (*Sim, error) { return ih.NewSim(cfg) }

// DefaultDatasetConfig returns a configuration producing a few thousand
// samples in well under a second.
func DefaultDatasetConfig() DatasetConfig { return ih.DefaultDatasetConfig() }

// GenerateDataset simulates traffic and records (features, action)
// samples for every vehicle acting as ego in turn; the data satisfies the
// lateral safety property by construction (the safe driver never moves
// left while the left slot is occupied).
func GenerateDataset(cfg DatasetConfig) ([]vnn.Sample, error) { return ih.GenerateDataset(cfg) }

// NeighborFeature returns the feature index of parameter p in the slot of
// orientation o.
func NeighborFeature(o Orientation, p NeighborParam) int { return ih.NeighborFeature(o, p) }

// FeatureNames lists the names of all 84 features in encoding order.
func FeatureNames() []string { return ih.FeatureNames() }

// LeftOccupiedInFeatures reports whether a feature vector describes a
// state with the left slot occupied — the premise of the safety property.
func LeftOccupiedInFeatures(x []float64) bool { return ih.LeftOccupiedInFeatures(x) }

// RandomFeatureVector draws a feature vector uniformly from the valid
// normalized space (coverage testing and fuzzing helper).
func RandomFeatureVector(rng *rand.Rand) []float64 { return ih.RandomFeatureVector(rng) }

// DescribeObservation renders an observation as readable text.
func DescribeObservation(obs *Observation) string { return ih.DescribeObservation(obs) }
