package vnn_test

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/verify"
	"repro/pkg/vnn"
)

// absNet builds the hand-made |x0 - x1| network used across the tests.
func absNet(t testing.TB) *vnn.Network {
	t.Helper()
	net := &nn.Network{
		Name: "absdiff",
		Layers: []*nn.Layer{
			{W: [][]float64{{1, -1}, {-1, 1}}, B: []float64{0, 0}, Act: nn.ReLU},
			{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
		},
	}
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	return net
}

func unitSquare() *vnn.Region {
	return &vnn.Region{Box: []vnn.Interval{{Lo: 0, Hi: 1}, {Lo: 0, Hi: 1}}}
}

// TestCompileOnceNoReencodeNoRetighten is the API's core contract, pinned
// by instrumentation: compiling the Table II width-10 predictor against
// the left-occupied region performs the encoding and tightening passes at
// compile time, and then running the row's max-query and prove-query
// back-to-back performs ZERO further encode or tighten passes — every
// query works on clones of the one shared encoding.
func TestCompileOnceNoReencodeNoRetighten(t *testing.T) {
	pred := core.NewPredictorNet(2, 10, 2, 1) // the width-10 row's shape
	ctx := context.Background()

	encBefore, tightBefore := verify.EncodePasses(), verify.TightenPasses()
	cn, err := vnn.Compile(ctx, pred.Net, vnn.LeftOccupiedRegion(), vnn.Options{Tighten: true})
	if err != nil {
		t.Fatal(err)
	}
	encCompile := verify.EncodePasses() - encBefore
	tightCompile := verify.TightenPasses() - tightBefore
	if encCompile == 0 {
		t.Fatal("compilation performed no encoding pass")
	}
	if tightCompile != 1 {
		t.Fatalf("compilation performed %d tightening passes, want 1", tightCompile)
	}

	// The width-10 row's two queries, back-to-back on the one compilation.
	encAfterCompile, tightAfterCompile := verify.EncodePasses(), verify.TightenPasses()
	maxRes, err := vnn.VerifyOne(ctx, cn, vnn.MaxOverOutputs(pred.MuLatOutputs()...))
	if err != nil {
		t.Fatal(err)
	}
	props := make([]vnn.Property, 0, pred.K)
	for _, out := range pred.MuLatOutputs() {
		props = append(props, vnn.AtMost(out, maxRes.Value+0.5))
	}
	proveRes, err := vnn.Verify(ctx, cn, props...)
	if err != nil {
		t.Fatal(err)
	}

	if d := verify.EncodePasses() - encAfterCompile; d != 0 {
		t.Fatalf("queries after Compile re-encoded %d times", d)
	}
	if d := verify.TightenPasses() - tightAfterCompile; d != 0 {
		t.Fatalf("queries after Compile re-tightened %d times", d)
	}

	if !maxRes.Exact {
		t.Fatal("width-10 max-query did not conclude")
	}
	if got := vnn.Worst(proveRes); got != vnn.Proved {
		t.Fatalf("prove above the verified max: %v", got)
	}
}

// TestCompiledMatchesOneShot cross-checks the compiled path against the
// historical one-shot engine on the same network and region.
func TestCompiledMatchesOneShot(t *testing.T) {
	pred := core.NewPredictorNet(2, 6, 2, 5)
	region := vnn.LeftOccupiedRegion()
	ctx := context.Background()

	oneShot, err := verify.MaxOverOutputs(pred.Net, region, pred.MuLatOutputs(), verify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cn, err := vnn.Compile(ctx, pred.Net, region, vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := vnn.VerifyOne(ctx, cn, vnn.MaxOverOutputs(pred.MuLatOutputs()...))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact || !oneShot.Exact {
		t.Fatalf("exactness mismatch: compiled %v one-shot %v", res.Exact, oneShot.Exact)
	}
	if res.Value != oneShot.Value {
		t.Fatalf("compiled value %.17g != one-shot %.17g", res.Value, oneShot.Value)
	}
}

// TestPropertyAlgebraOnHandNet answers every property shape on the tiny
// |x0-x1| network, where the answers are known in closed form.
func TestPropertyAlgebraOnHandNet(t *testing.T) {
	ctx := context.Background()
	cn, err := vnn.Compile(ctx, absNet(t), unitSquare(), vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := vnn.Verify(ctx, cn,
		vnn.MaxOutput(0),                        // max |x0-x1| = 1
		vnn.MinOutput(0),                        // min = 0
		vnn.AtMost(0, 1.0),                      // holds (touching)
		vnn.AtMost(0, 0.5),                      // violated
		vnn.MaxLinear(map[int]float64{0: -2}),   // max -2|x0-x1| = 0
		vnn.LinearAtMost(map[int]float64{0: 2}, 2.5), // 2|x0-x1| ≤ 2.5 fails? max=2 ≤ 2.5 holds
	)
	if err != nil {
		t.Fatal(err)
	}
	if v := results[0].Value; math.Abs(v-1) > 1e-7 || !results[0].Exact {
		t.Fatalf("max = %g exact=%v, want 1", v, results[0].Exact)
	}
	if w := results[0].Witness; w == nil || math.Abs(math.Abs(w[0]-w[1])-1) > 1e-6 {
		t.Fatalf("max witness %v does not achieve |x0-x1|=1", w)
	}
	if v := results[1].Value; math.Abs(v) > 1e-7 {
		t.Fatalf("min = %g, want 0", v)
	}
	if results[1].LowerBound > results[1].Value+1e-9 {
		t.Fatalf("min bounds inverted: lower %g > value %g", results[1].LowerBound, results[1].Value)
	}
	if results[2].Outcome != vnn.Proved {
		t.Fatalf("≤1.0 should be proved, got %v", results[2].Outcome)
	}
	if results[3].Outcome != vnn.Violated {
		t.Fatalf("≤0.5 should be violated, got %v", results[3].Outcome)
	}
	if results[3].Witness == nil || results[3].Value <= 0.5 {
		t.Fatalf("violation carries no genuine counterexample: value %g witness %v",
			results[3].Value, results[3].Witness)
	}
	if v := results[4].Value; math.Abs(v) > 1e-7 {
		t.Fatalf("max -2|x0-x1| = %g, want 0", v)
	}
	if results[5].Outcome != vnn.Proved {
		t.Fatalf("2|x0-x1| ≤ 2.5 should be proved, got %v", results[5].Outcome)
	}
	if vnn.Worst(results) != vnn.Violated {
		t.Fatalf("Worst should report the violation, got %v", vnn.Worst(results))
	}
}

// TestAnytimeCancelledVerify checks the anytime contract end to end: a
// Verify under an already-cancelled context returns promptly, reports
// Inconclusive rather than an error, and still carries the sound
// interval-analysis bounds from compilation.
func TestAnytimeCancelledVerify(t *testing.T) {
	pred := core.NewPredictorNet(2, 10, 2, 3)
	bg := context.Background()
	cn, err := vnn.Compile(bg, pred.Net, vnn.LeftOccupiedRegion(), vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: the true maximum, solved without interruption.
	full, err := vnn.VerifyOne(bg, cn, vnn.MaxOverOutputs(pred.MuLatOutputs()...))
	if err != nil {
		t.Fatal(err)
	}
	if !full.Exact {
		t.Fatal("reference solve did not conclude")
	}

	ctx, cancel := context.WithCancel(bg)
	cancel()
	start := time.Now()
	res, err := vnn.VerifyOne(ctx, cn, vnn.MaxOverOutputs(pred.MuLatOutputs()...))
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 10*time.Second {
		t.Fatalf("cancelled verify took %v", el)
	}
	if res.Exact || res.Outcome != vnn.Inconclusive {
		t.Fatalf("cancelled verify reported exact=%v outcome=%v", res.Exact, res.Outcome)
	}
	if math.IsInf(res.UpperBound, 1) || res.UpperBound < full.Value-1e-9 {
		t.Fatalf("anytime upper bound %g unsound or missing (true max %g)", res.UpperBound, full.Value)
	}

	// A threshold proof the interval analysis can discharge alone stays
	// Proved even under a dead context — no MILP is needed.
	ob := cn.OutputBounds()
	out := pred.MuLatOutputs()[0]
	pr, err := vnn.VerifyOne(ctx, cn, vnn.AtMost(out, ob[out].Hi+1))
	if err != nil {
		t.Fatal(err)
	}
	if pr.Outcome != vnn.Proved {
		t.Fatalf("interval-provable bound under dead context: %v, want proved", pr.Outcome)
	}
}

// TestProgressEvents checks that a compiled query streams progress and
// tags events with the property index.
func TestProgressEvents(t *testing.T) {
	pred := core.NewPredictorNet(2, 8, 2, 9)
	var events []vnn.Event
	opts := vnn.Options{Progress: func(ev vnn.Event) { events = append(events, ev) }}
	ctx := context.Background()
	cn, err := vnn.Compile(ctx, pred.Net, vnn.LeftOccupiedRegion(), opts)
	if err != nil {
		t.Fatal(err)
	}
	out := pred.MuLatOutputs()
	if _, err := vnn.Verify(ctx, cn, vnn.MaxOutput(out[0]), vnn.MaxOutput(out[1])); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	seen := map[int]bool{}
	for _, ev := range events {
		if ev.Property != 0 && ev.Property != 1 {
			t.Fatalf("event tagged with property %d", ev.Property)
		}
		seen[ev.Property] = true
		if ev.HasIncumbent && ev.Incumbent > ev.Bound+1e-6 {
			t.Fatalf("incumbent %g above bound %g", ev.Incumbent, ev.Bound)
		}
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("events missing for a property: %v", seen)
	}
}

// TestResilienceProperty runs the resilience search through the algebra.
func TestResilienceProperty(t *testing.T) {
	ctx := context.Background()
	cn, err := vnn.Compile(ctx, absNet(t), unitSquare(), vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Around the center, |x0-x1| ≤ 0.5 holds for all |δ|∞ ≤ 0.25.
	res, err := vnn.VerifyOne(ctx, cn, vnn.ResilienceRadius([]float64{0.5, 0.5}, 0, 0.5, 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != vnn.Proved {
		t.Fatalf("resilience outcome %v", res.Outcome)
	}
	if res.Radius < 0.15 || res.Radius > 0.2500001 {
		t.Fatalf("certified radius %g, want ≈0.25", res.Radius)
	}
	if res.Iterations == 0 {
		t.Fatal("no binary-search iterations recorded")
	}
}

// TestGMMLoader round-trips a predictor network through JSON and checks
// the shared gmm-head validation path.
func TestGMMLoader(t *testing.T) {
	pred := core.NewPredictorNet(1, 4, 3, 2)
	path := t.TempDir() + "/net.json"
	if err := pred.Net.Save(path); err != nil {
		t.Fatal(err)
	}
	net, k, err := vnn.LoadGMMNetwork(path)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 || net.OutputDim() != pred.Net.OutputDim() {
		t.Fatalf("loaded k=%d outputs=%d", k, net.OutputDim())
	}
	if got := vnn.MuLatOutputs(k); len(got) != 3 || got[0] != 1 || got[2] != 11 {
		t.Fatalf("MuLatOutputs = %v", got)
	}
	// A non-gmm head must be rejected by the shared check.
	if _, err := vnn.GMMComponents(absNet(t)); err == nil {
		t.Fatal("non-gmm head accepted")
	}
}

// TestFalsifyUnderVerifiedMax ties the incomplete and complete analyses
// together: the strongest attack can never beat the verified maximum.
func TestFalsifyUnderVerifiedMax(t *testing.T) {
	pred := core.NewPredictorNet(2, 6, 2, 7)
	region := vnn.LeftOccupiedRegion()
	ctx := context.Background()
	cn, err := vnn.Compile(ctx, pred.Net, region, vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ver, err := vnn.VerifyOne(ctx, cn, vnn.MaxOverOutputs(pred.MuLatOutputs()...))
	if err != nil {
		t.Fatal(err)
	}
	atk, err := vnn.Falsify(pred.Net, region, pred.MuLatOutputs(), vnn.FalsifyOptions{Restarts: 4, Steps: 30, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if atk.Value > ver.Value+1e-5 {
		t.Fatalf("attack %g beats complete verifier %g", atk.Value, ver.Value)
	}
	if atk.Evaluations == 0 || atk.Best == nil {
		t.Fatal("falsifier did no work")
	}
}
