package vnn

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/verify"
)

// Property is one element of the verification algebra: a question that
// compiles against a CompiledNetwork and is answered by Verify. Properties
// are plain immutable values — build them anywhere, reuse them across
// networks, batch them freely. Each of these used to be a bespoke code
// path (verify.MaxOverOutputs, ad-hoc prove wiring, core front-gap
// helpers, resilience loops); here they share one compiled encoding.
type Property interface {
	// String renders the property for logs and reports.
	String() string
	// run answers the property against the compiled network. idx tags
	// progress events with the property's position in the Verify batch.
	run(ctx context.Context, cn *CompiledNetwork, idx int) (*Result, error)
}

// MaxOutput asks for the maximum of one output neuron over the region.
func MaxOutput(output int) Property { return maxProp{outs: []int{output}} }

// MaxOverOutputs asks for the maximum over several output neurons (a
// disjunction, solved as independent per-output MILPs against the shared
// encoding — concurrently under Options.Parallel).
func MaxOverOutputs(outputs ...int) Property {
	return maxProp{outs: append([]int(nil), outputs...)}
}

// MinOutput asks for the minimum of one output neuron over the region.
func MinOutput(output int) Property { return minProp{out: output} }

// MaxLinear asks for the maximum of the linear functional
// Σ coeffs[k]·output[k] over the region.
func MaxLinear(coeffs map[int]float64) Property { return linMaxProp{coeffs: copyCoeffs(coeffs)} }

// AtMost asks for a proof that output ≤ threshold everywhere on the
// region, or a counterexample. This is the paper's "prove the 3 m/s
// bound" query (Table II, last row).
func AtMost(output int, threshold float64) Property {
	return proveProp{coeffs: map[int]float64{output: 1}, threshold: threshold, single: output}
}

// LinearAtMost asks for a proof that Σ coeffs[k]·output[k] ≤ threshold
// everywhere on the region, or a counterexample — the general linear
// output inequality.
func LinearAtMost(coeffs map[int]float64, threshold float64) Property {
	return proveProp{coeffs: copyCoeffs(coeffs), threshold: threshold, single: -1}
}

// ResilienceRadius asks for the largest ℓ∞ perturbation radius around the
// nominal input x0 within which output provably stays ≤ threshold (Cheng
// et al., ATVA 2017). The search domain is the compiled region's box.
// maxIterations bounds the binary search; 0 means 10.
//
// Unlike the other properties the region shrinks at every binary-search
// probe, so each probe re-compiles its ball region; the shared encoding
// cannot be reused. Cancellation still applies: an interrupted search
// returns the largest radius certified so far.
func ResilienceRadius(x0 []float64, output int, threshold float64, maxIterations int) Property {
	return resilienceProp{
		x0: append([]float64(nil), x0...), out: output,
		threshold: threshold, maxIter: maxIterations,
	}
}

// propertyOutputs reports the output indices a property references, so
// analysis validation can reject out-of-range queries before any work
// runs (the engine re-checks at query time either way).
func propertyOutputs(p Property) []int {
	switch q := p.(type) {
	case maxProp:
		return q.outs
	case minProp:
		return []int{q.out}
	case linMaxProp:
		return coeffKeys(q.coeffs)
	case proveProp:
		return coeffKeys(q.coeffs)
	case resilienceProp:
		return []int{q.out}
	}
	return nil
}

func coeffKeys(coeffs map[int]float64) []int {
	out := make([]int, 0, len(coeffs))
	for k := range coeffs {
		out = append(out, k)
	}
	return out
}

func copyCoeffs(coeffs map[int]float64) map[int]float64 {
	out := make(map[int]float64, len(coeffs))
	for k, v := range coeffs {
		out[k] = v
	}
	return out
}

// renderCoeffs formats a coefficient map deterministically.
func renderCoeffs(coeffs map[int]float64) string {
	keys := make([]int, 0, len(coeffs))
	for k := range coeffs {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(" + ")
		}
		fmt.Fprintf(&b, "%g·y[%d]", coeffs[k], k)
	}
	return b.String()
}

type maxProp struct{ outs []int }

func (p maxProp) String() string {
	if len(p.outs) == 1 {
		return fmt.Sprintf("max y[%d]", p.outs[0])
	}
	return fmt.Sprintf("max over outputs %v", p.outs)
}

func (p maxProp) run(ctx context.Context, cn *CompiledNetwork, idx int) (*Result, error) {
	mr, err := cn.c.MaxOverOutputs(ctx, p.outs, verifyOptions(cn.opts, idx))
	if err != nil {
		return nil, err
	}
	return maxResultToResult(mr), nil
}

type linMaxProp struct{ coeffs map[int]float64 }

func (p linMaxProp) String() string { return "max " + renderCoeffs(p.coeffs) }

func (p linMaxProp) run(ctx context.Context, cn *CompiledNetwork, idx int) (*Result, error) {
	mr, err := cn.c.MaxLinear(ctx, p.coeffs, verifyOptions(cn.opts, idx))
	if err != nil {
		return nil, err
	}
	return maxResultToResult(mr), nil
}

type minProp struct{ out int }

func (p minProp) String() string { return fmt.Sprintf("min y[%d]", p.out) }

func (p minProp) run(ctx context.Context, cn *CompiledNetwork, idx int) (*Result, error) {
	// Minimize by maximizing the negated output on the shared encoding.
	mr, err := cn.c.MaxLinear(ctx, map[int]float64{p.out: -1}, verifyOptions(cn.opts, idx))
	if err != nil {
		return nil, err
	}
	r := maxResultToResult(mr)
	// Mirror back into the output's own scale: the witnessed value is an
	// upper bound on the true minimum, the proven bound a lower one.
	r.Value = -r.Value
	r.LowerBound = -mr.UpperBound
	r.UpperBound = r.Value
	if !mr.Exact && mr.Witness == nil {
		r.UpperBound = math.Inf(1)
	}
	return r, nil
}

type proveProp struct {
	coeffs    map[int]float64
	threshold float64
	single    int // output index when the functional is one output, else -1
}

func (p proveProp) String() string {
	if p.single >= 0 {
		return fmt.Sprintf("y[%d] ≤ %g", p.single, p.threshold)
	}
	return fmt.Sprintf("%s ≤ %g", renderCoeffs(p.coeffs), p.threshold)
}

func (p proveProp) run(ctx context.Context, cn *CompiledNetwork, idx int) (*Result, error) {
	pr, err := cn.c.ProveLinearUpperBound(ctx, p.coeffs, p.threshold, verifyOptions(cn.opts, idx))
	if err != nil {
		return nil, err
	}
	r := &Result{
		Outcome:    outcomeFromVerify(pr.Outcome),
		Exact:      pr.Outcome != verify.Timeout,
		UpperBound: pr.BestBound,
		LowerBound: math.Inf(-1),
		Stats:      pr.Stats,
	}
	if pr.Outcome == verify.Violated {
		r.Value = pr.CounterValue
		r.LowerBound = pr.CounterValue
		r.Witness = pr.CounterExample
	}
	return r, nil
}

type resilienceProp struct {
	x0        []float64
	out       int
	threshold float64
	maxIter   int
}

func (p resilienceProp) String() string {
	return fmt.Sprintf("resilience radius of y[%d] ≤ %g", p.out, p.threshold)
}

func (p resilienceProp) run(ctx context.Context, cn *CompiledNetwork, idx int) (*Result, error) {
	rr, err := verify.ResilienceCtx(ctx, cn.Net(), p.x0, cn.Region().Box, p.out, p.threshold,
		verify.ResilienceOptions{
			MaxIterations: p.maxIter,
			Query:         verifyOptions(cn.opts, idx),
		})
	if err != nil {
		return nil, err
	}
	r := &Result{
		Radius:     rr.Epsilon,
		Iterations: rr.Iterations,
		LowerBound: math.Inf(-1),
		UpperBound: math.Inf(1),
		Stats:      Stats{Elapsed: rr.Elapsed},
	}
	if rr.Certified {
		r.Outcome = Proved
	} else {
		r.Outcome = Inconclusive
	}
	if rr.Breaking != nil {
		r.Witness = rr.Breaking
		r.Value = rr.BreakingValue
	}
	return r, nil
}

// maxResultToResult shapes an engine MaxResult into the public Result.
func maxResultToResult(mr *verify.MaxResult) *Result {
	r := &Result{
		Exact:      mr.Exact,
		Value:      mr.Value,
		LowerBound: mr.Value,
		UpperBound: mr.UpperBound,
		Witness:    mr.Witness,
		Stats:      mr.Stats,
	}
	if mr.Exact {
		r.Outcome = Proved
	} else {
		r.Outcome = Inconclusive
	}
	if mr.Witness == nil {
		r.LowerBound = math.Inf(-1)
	}
	return r
}

func outcomeFromVerify(o verify.Outcome) Outcome {
	switch o {
	case verify.Proved:
		return Proved
	case verify.Violated:
		return Violated
	default:
		return Inconclusive
	}
}
