// Training and decoding re-exports: the remaining pieces the examples
// needed internal imports for. Aliases, not wrappers — values flow
// between the public API and the engine without conversion.

package vnn

import (
	"math/rand"

	"repro/internal/gmm"
	"repro/internal/train"
	"repro/internal/verify"
)

type (
	// Trainer runs mini-batch gradient descent over a network (see
	// internal/train: configure Net, Loss, Opt, BatchSize, Rng).
	Trainer = train.Trainer
	// Loss scores a network output against a label and provides the
	// output gradient.
	Loss = train.Loss
	// MDN is the mixture-density-network negative log-likelihood loss of
	// the paper's predictor (K mixture components).
	MDN = train.MDN
	// HintPenalty wraps a base loss with the property penalty of hints
	// training.
	HintPenalty = train.HintPenalty
	// Optimizer updates parameters from gradients.
	Optimizer = train.Optimizer
	// Mixture is the decoded Gaussian-mixture action distribution of the
	// predictor's head.
	Mixture = gmm.Mixture
	// MixtureComponent is one component of a Mixture.
	MixtureComponent = gmm.Component
)

// Action-dimension indices of the predictor's two modeled quantities.
const (
	// GMMLatVel indexes the lateral-velocity dimension of a Mixture.
	GMMLatVel = gmm.LatVel
	// GMMLongAcc indexes the longitudinal-acceleration dimension.
	GMMLongAcc = gmm.LongAcc
)

// NewAdam returns an Adam optimizer with the given learning rate.
func NewAdam(lr float64) Optimizer { return train.NewAdam(lr) }

// SplitData partitions data into train/validation sets (valFrac of the
// shuffled data becomes validation); callers own their randomness.
func SplitData(data []Sample, valFrac float64, rng *rand.Rand) (trainSet, valSet []Sample) {
	return train.Split(data, valFrac, rng)
}

// DecodeGMM decodes raw network outputs into an action distribution.
func DecodeGMM(raw []float64) Mixture { return gmm.Decode(raw) }

// EncodePasses returns the process-wide count of MILP encoding passes —
// the instrumentation counter that proves compiled artifacts are reused
// (a cache hit adds zero passes). TightenPasses is its LP-tightening
// sibling.
func EncodePasses() int64 { return verify.EncodePasses() }

// TightenPasses returns the process-wide count of LP bound-tightening
// passes (see EncodePasses).
func TightenPasses() int64 { return verify.TightenPasses() }
