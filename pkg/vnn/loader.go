package vnn

import (
	"fmt"

	"repro/internal/gmm"
	"repro/internal/nn"
)

// GMMComponents validates that net's output layer is a well-formed
// Gaussian-mixture head (a multiple of gmm.RawPerComponent raw outputs)
// and returns the mixture component count. This is the single home of the
// head-shape check that the cmd tools used to repeat individually.
func GMMComponents(net *Network) (int, error) {
	if net.OutputDim() <= 0 || net.OutputDim()%gmm.RawPerComponent != 0 {
		return 0, fmt.Errorf("vnn: network output dim %d is not a gmm head (need a positive multiple of %d)",
			net.OutputDim(), gmm.RawPerComponent)
	}
	return net.OutputDim() / gmm.RawPerComponent, nil
}

// LoadGMMNetwork loads a network from its JSON file and validates the
// gmm head, returning the network and its mixture component count. This
// is the loader path every verification CLI goes through.
func LoadGMMNetwork(path string) (*Network, int, error) {
	net, err := nn.Load(path)
	if err != nil {
		return nil, 0, err
	}
	k, err := GMMComponents(net)
	if err != nil {
		return nil, 0, err
	}
	return net, k, nil
}

// MuLatOutputs lists the raw-output indices of all component lateral-
// velocity means of a k-component head — the outputs the lateral safety
// property bounds.
func MuLatOutputs(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = gmm.MuLatIndex(i)
	}
	return out
}

// MuLongOutputs lists the raw-output indices of all component
// longitudinal-acceleration means — the outputs the front-gap property
// bounds.
func MuLongOutputs(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = gmm.MuLongIndex(i)
	}
	return out
}
