// Hints training (the paper's future-work item (iii)), public: fine-tune
// a predictor under a known property so the verified worst case shrinks.
// Moved from internal/core so the hints example runs entirely on the
// public API; internal/core delegates.

package vnn

import (
	"math/rand"

	"repro/internal/attack"
	"repro/internal/highway"
	"repro/internal/train"
)

// HintAugment implements the data-generation half of "hints" training
// (Abu-Mostafa 1995, the paper's concluding remark iii): since the safety
// property is known analytically — "left occupied ⇒ no positive lateral
// velocity" — we can manufacture unlimited training examples of it across
// the *whole* property region, not just the on-policy distribution the
// simulator visits. Combined with the hint penalty loss this pulls the
// network's worst case (what the verifier bounds) down, not merely its
// average case.
//
// Each sample is a uniformly random feature vector constrained to the
// left-occupied region, labeled with a safe action: lateral velocity drawn
// from [-1, 0] and a mild longitudinal acceleration.
func HintAugment(n int, rng *rand.Rand) []Sample {
	region := LeftOccupiedRegion()
	out := make([]Sample, n)
	for i := range out {
		x := make([]float64, highway.FeatureDim)
		for j, iv := range region.Box {
			x[j] = iv.Lo + rng.Float64()*(iv.Hi-iv.Lo)
		}
		// Honest booleans for all presence flags except the pinned left one.
		for o := highway.Orientation(0); o < highway.NumOrientations; o++ {
			p := highway.NeighborFeature(o, highway.NPPresence)
			if region.Box[p].Lo == region.Box[p].Hi {
				continue // pinned by the region (the left slot)
			}
			if rng.Intn(2) == 0 {
				x[p] = 0
			} else {
				x[p] = 1
			}
		}
		out[i] = Sample{
			X: x,
			Y: []float64{-rng.Float64(), rng.NormFloat64() * 0.3},
		}
	}
	return out
}

// HintConfig tunes HintFineTune.
type HintConfig struct {
	// Threshold is the lateral velocity the penalty activates at (m/s);
	// 0 means 0.2.
	Threshold float64
	// Lambda scales the penalty; 0 means 8.
	Lambda float64
	// Rounds of counterexample-guided augmentation; 0 means 3.
	Rounds int
	// EpochsPerRound of retraining; 0 means 3.
	EpochsPerRound int
	// SamplesPerRound of safe-labeled attack neighbourhoods; 0 means 20.
	SamplesPerRound int
	// LR is the fine-tuning learning rate; 0 means 0.001.
	LR float64
	// Seed drives augmentation and attack randomness.
	Seed int64
}

// HintFineTune applies the paper's future-work item (iii) to an already
// trained predictor: fine-tune in place under the known safety property,
// combining the hint penalty loss, uniform property-derived samples
// (HintAugment) and counterexample-guided rounds (AdversarialHintRounds).
// Across seeds this reliably lowers the *verified* maximum lateral velocity
// relative to the network's own starting point.
func HintFineTune(pred *Predictor, data []Sample, cfg HintConfig) error {
	if cfg.Threshold == 0 {
		cfg.Threshold = 0.2
	}
	if cfg.Lambda == 0 {
		cfg.Lambda = 8
	}
	if cfg.Rounds == 0 {
		cfg.Rounds = 3
	}
	if cfg.EpochsPerRound == 0 {
		cfg.EpochsPerRound = 3
	}
	if cfg.SamplesPerRound == 0 {
		cfg.SamplesPerRound = 20
	}
	if cfg.LR == 0 {
		cfg.LR = 0.001
	}
	loss := train.HintPenalty{
		Base:      train.MDN{K: pred.K},
		Predicate: highway.LeftOccupiedInFeatures,
		Threshold: cfg.Threshold,
		Lambda:    cfg.Lambda,
		K:         pred.K,
	}
	trainer := &train.Trainer{
		Net: pred.Net, Loss: loss, Opt: train.NewAdam(cfg.LR),
		BatchSize: 64, Rng: rand.New(rand.NewSource(cfg.Seed + 1)), ClipNorm: 20,
	}
	aug := append(append([]Sample(nil), data...),
		HintAugment(len(data)/2, rand.New(rand.NewSource(cfg.Seed+2)))...)
	_, err := AdversarialHintRounds(pred, trainer, aug, cfg.Rounds, cfg.EpochsPerRound, cfg.SamplesPerRound, rand.New(rand.NewSource(cfg.Seed+3)))
	return err
}

// AdversarialHintRounds strengthens hints training with counterexample
// guidance (a CEGIS-style loop): each round attacks the *current* network
// over the left-occupied region to locate its worst suggested lateral
// velocities, adds those concrete inputs as training samples labeled with a
// safe action, and retrains. Unlike uniform region sampling, this targets
// exactly the corners the verifier will maximize over, so the verified
// maximum reliably decreases.
//
// The trainer must already be configured (loss, optimizer, rng); data is
// the base dataset, which is not mutated. The augmented dataset is
// returned so callers can keep training or inspect the added samples.
func AdversarialHintRounds(pred *Predictor, trainer *Trainer, data []Sample, rounds, epochsPerRound, samplesPerRound int, rng *rand.Rand) ([]Sample, error) {
	region := LeftOccupiedRegion()
	augmented := append([]Sample(nil), data...)
	for r := 0; r < rounds; r++ {
		for _, out := range pred.MuLatOutputs() {
			res, err := attack.Maximize(pred.Net, region, out, rng, attack.Options{
				Restarts: 4 + samplesPerRound/4,
				Steps:    50,
			})
			if err != nil {
				return nil, err
			}
			// The attack's endpoint plus jittered neighbours become safe-
			// labeled hint samples; jitter keeps the lesson from being a
			// single point the network can route around.
			for s := 0; s < samplesPerRound; s++ {
				x := make([]float64, len(res.Best))
				for i, v := range res.Best {
					iv := region.Box[i]
					jit := v
					if iv.Hi > iv.Lo {
						jit += rng.NormFloat64() * 0.02 * (iv.Hi - iv.Lo)
						if jit < iv.Lo {
							jit = iv.Lo
						}
						if jit > iv.Hi {
							jit = iv.Hi
						}
					}
					x[i] = jit
				}
				augmented = append(augmented, Sample{
					X: x,
					Y: []float64{-0.2 - 0.6*rng.Float64(), rng.NormFloat64() * 0.2},
				})
			}
		}
		trainer.Fit(augmented, epochsPerRound)
	}
	return augmented, nil
}
