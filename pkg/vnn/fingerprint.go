package vnn

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"math"
	"sort"

	"repro/internal/nn"
)

// fingerprintVersion tags the canonical byte layout hashed by Fingerprint.
// Bump it whenever the layout changes so persisted or remote caches never
// confuse hashes computed under different layouts.
const fingerprintVersion = 1

// MarshalNetwork renders net as compact canonical JSON: the wire form the
// vnnd service accepts in requests and the byte-stable encoding scripts
// can store alongside results. The network is validated first, so the
// bytes always describe a structurally sound network. For a fixed network
// the output is deterministic (struct fields in declaration order, no
// maps), making the bytes themselves safe to hash or diff.
func MarshalNetwork(net *Network) ([]byte, error) {
	if err := net.Validate(); err != nil {
		return nil, err
	}
	data, err := json.Marshal(net)
	if err != nil {
		return nil, fmt.Errorf("vnn: marshal network %q: %w", net.Name, err)
	}
	return data, nil
}

// UnmarshalNetwork parses a network from its JSON form and validates it —
// the inverse of MarshalNetwork and the single decode path requests into
// the verification service go through.
func UnmarshalNetwork(data []byte) (*Network, error) {
	var n nn.Network
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, fmt.Errorf("vnn: unmarshal network: %w", err)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return &n, nil
}

// Fingerprint returns a content hash identifying the compiled artifact
// that (net, region, opts) would produce: two workloads share a hash
// exactly when they share every layer's activation, shape, weights and
// biases bit-for-bit, the same region box and linear constraints, and the
// same compile-relevant options. The hash is what the vnnd compile cache
// keys on, so identical workloads from different clients deduplicate to
// one vnn.Compile.
//
// Metadata that cannot influence a verification answer is deliberately
// excluded: network, input, output and constraint names. Query-time
// options (Parallel, MaxNodes, Progress) are excluded too; of the
// remaining options only Tighten changes what Compile builds. Workers is
// excluded because tightened bounds are engine-invariant across worker
// counts (see DESIGN.md's determinism notes) — it changes how fast the
// artifact is built, not what it is.
//
// Floats are hashed as their IEEE-754 bit patterns, so any perturbation a
// float64 can represent — one ulp on one weight — changes the hash.
func Fingerprint(net *Network, region *Region, opts Options) (string, error) {
	if err := net.Validate(); err != nil {
		return "", err
	}
	if err := region.Validate(net); err != nil {
		return "", err
	}
	w := fpWriter{h: sha256.New()}
	w.u64(fingerprintVersion)

	w.u64(uint64(len(net.Layers)))
	for _, l := range net.Layers {
		w.u64(uint64(l.Act))
		w.u64(uint64(l.OutDim()))
		w.u64(uint64(l.InDim()))
		for _, row := range l.W {
			for _, v := range row {
				w.f64(v)
			}
		}
		for _, b := range l.B {
			w.f64(b)
		}
	}

	w.u64(uint64(len(region.Box)))
	for _, iv := range region.Box {
		w.f64(iv.Lo)
		w.f64(iv.Hi)
	}
	// Constraint order is part of the canonical form (it is also the order
	// the encoder ingests rows in); coefficients within a constraint are
	// canonicalized by sorting on the input index.
	w.u64(uint64(len(region.Linear)))
	for _, lc := range region.Linear {
		w.u64(uint64(lc.Sense))
		w.f64(lc.RHS)
		idxs := make([]int, 0, len(lc.Coeffs))
		for i := range lc.Coeffs {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		w.u64(uint64(len(idxs)))
		for _, i := range idxs {
			w.u64(uint64(i))
			w.f64(lc.Coeffs[i])
		}
	}

	if opts.Tighten {
		w.u64(1)
	} else {
		w.u64(0)
	}
	return "vnn1-" + hex.EncodeToString(w.h.Sum(nil)), nil
}

// MonitorWorkloadFingerprint identifies a monitor-build workload before
// the build runs: the compile workload the monitor attaches to (its
// Fingerprint), the build dataset (floats hashed as IEEE-754 bits, order
// included — pattern sets are insertion-ordered) and the monitor options.
// It is the key the vnnd monitor cache deduplicates builds under, the
// same way Fingerprint keys the compile cache. The content hash of the
// *built* artifact is Monitor.Fingerprint.
func MonitorWorkloadFingerprint(networkFingerprint string, data [][]float64, opts MonitorOptions) string {
	w := fpWriter{h: sha256.New()}
	w.u64(fingerprintVersion)
	w.h.Write([]byte(networkFingerprint))
	w.u64(uint64(opts.Gamma))
	w.u64(uint64(len(opts.Layers)))
	for _, li := range opts.Layers {
		w.u64(uint64(li))
	}
	w.u64(uint64(len(data)))
	for _, row := range data {
		w.u64(uint64(len(row)))
		for _, v := range row {
			w.f64(v)
		}
	}
	return "vnnmw1-" + hex.EncodeToString(w.h.Sum(nil))
}

// fpWriter streams fixed-width little-endian values into a hash.
type fpWriter struct{ h hash.Hash }

func (w fpWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.h.Write(buf[:])
}

func (w fpWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
