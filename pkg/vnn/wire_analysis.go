// Wire forms of the dependability portfolio: AnalysisSpec decodes a
// requested analysis (the analysis-side sibling of PropertySpec) and
// FindingJSON encodes its result inside the shared Report document. The
// vnnd service's /v1/analyze endpoint and any JSON-emitting CLI speak
// exactly these shapes.

package vnn

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// maxWireViolations caps the per-request violation detail list in
// DataValidationJSON; the full counts are always present in PerRule.
const maxWireViolations = 32

// DataRuleSpec is the wire form of one data-validation rule:
//
//	{"kind":"finite"}
//	{"kind":"range", "lo":0, "hi":1}
//	{"kind":"dimensions", "x_dim":84, "y_dim":2}
//
// Custom closure rules (NewDataRule) are a library feature and have no
// wire form.
type DataRuleSpec struct {
	Kind string   `json:"kind"`
	Lo   *float64 `json:"lo,omitempty"`
	Hi   *float64 `json:"hi,omitempty"`
	XDim int      `json:"x_dim,omitempty"`
	YDim int      `json:"y_dim,omitempty"`
}

// Rule builds the rule the spec describes.
func (s *DataRuleSpec) Rule() (DataRule, error) {
	switch s.Kind {
	case "finite":
		return FiniteRule(), nil
	case "range":
		if s.Lo == nil || s.Hi == nil {
			return nil, fmt.Errorf("vnn: rule %q needs lo and hi", s.Kind)
		}
		return RangeRule(*s.Lo, *s.Hi), nil
	case "dimensions":
		if s.XDim <= 0 {
			return nil, fmt.Errorf("vnn: rule %q needs a positive x_dim", s.Kind)
		}
		return DimensionRule(s.XDim, s.YDim), nil
	case "":
		return nil, fmt.Errorf("vnn: data rule spec has no kind")
	default:
		return nil, fmt.Errorf("vnn: unknown data rule kind %q", s.Kind)
	}
}

// AnalysisSpec is the wire form of one Analysis. Kind selects the
// concrete analysis; the other fields are its parameters:
//
//	{"kind":"verify", "properties":[...]}
//	{"kind":"coverage", "max_tests":2000, "seed":1, "data":[[...], ...]}
//	{"kind":"traceability", "data":[[...], ...], "top_k":3}
//	{"kind":"quant_sweep", "bits":[8,6,4], "properties":[...]}
//	{"kind":"data_validation", "data":[[...]], "labels":[[...]],
//	 "rules":[{"kind":"finite"}, {"kind":"range","lo":0,"hi":1}]}
//	{"kind":"falsify", "outputs":[1], "restarts":16, "steps":80}
type AnalysisSpec struct {
	Kind string `json:"kind"`
	// Properties feeds verify and quant_sweep analyses.
	Properties []PropertySpec `json:"properties,omitempty"`
	// Data is the input set for coverage, traceability and
	// data_validation analyses.
	Data [][]float64 `json:"data,omitempty"`
	// Labels pairs with Data for data_validation (parallel arrays).
	Labels [][]float64 `json:"labels,omitempty"`
	// MaxTests, TargetSign and Seed tune coverage generation.
	MaxTests   int     `json:"max_tests,omitempty"`
	TargetSign float64 `json:"target_sign,omitempty"`
	Seed       int64   `json:"seed,omitempty"`
	// FeatureNames and TopK tune traceability.
	FeatureNames []string `json:"feature_names,omitempty"`
	TopK         int      `json:"top_k,omitempty"`
	// Bits lists quant_sweep widths.
	Bits []int `json:"bits,omitempty"`
	// Rules lists data_validation rules.
	Rules []DataRuleSpec `json:"rules,omitempty"`
	// Outputs, Restarts and Steps tune falsification (Seed is shared
	// with coverage).
	Outputs  []int `json:"outputs,omitempty"`
	Restarts int   `json:"restarts,omitempty"`
	Steps    int   `json:"steps,omitempty"`
	// Gamma, Layers and AuditTests tune monitor_audit analyses (which
	// build from Data and seed probe generation with Seed).
	Gamma      int   `json:"gamma,omitempty"`
	Layers     []int `json:"layers,omitempty"`
	AuditTests int   `json:"audit_tests,omitempty"`
}

// Analysis builds the analysis the spec describes. Shape errors (missing
// parameters, unknown kinds) surface here; network-dependent checks run
// in ValidateFor and again in Analysis.Validate.
func (s *AnalysisSpec) Analysis() (Analysis, error) {
	switch s.Kind {
	case KindVerify:
		props, err := s.properties()
		if err != nil {
			return nil, err
		}
		return &Verification{Properties: props}, nil
	case KindCoverage:
		if len(s.Data) == 0 && s.MaxTests <= 0 {
			return nil, fmt.Errorf("vnn: analysis %q needs data or max_tests", s.Kind)
		}
		return &Coverage{Data: s.Data, MaxTests: s.MaxTests, TargetSign: s.TargetSign, Seed: s.Seed}, nil
	case KindTraceability:
		if len(s.Data) == 0 {
			return nil, fmt.Errorf("vnn: analysis %q needs data", s.Kind)
		}
		return &Traceability{Data: s.Data, FeatureNames: s.FeatureNames, TopK: s.TopK}, nil
	case KindQuantSweep:
		if len(s.Bits) == 0 {
			return nil, fmt.Errorf("vnn: analysis %q needs bits", s.Kind)
		}
		props, err := s.properties()
		if err != nil {
			return nil, err
		}
		return &QuantSweep{Bits: s.Bits, Properties: props}, nil
	case KindDataValidation:
		if len(s.Data) == 0 {
			return nil, fmt.Errorf("vnn: analysis %q needs data", s.Kind)
		}
		if len(s.Labels) != 0 && len(s.Labels) != len(s.Data) {
			return nil, fmt.Errorf("vnn: analysis %q has %d labels for %d data rows", s.Kind, len(s.Labels), len(s.Data))
		}
		rules := make([]DataRule, 0, len(s.Rules))
		for i := range s.Rules {
			r, err := s.Rules[i].Rule()
			if err != nil {
				return nil, fmt.Errorf("vnn: rule %d: %w", i, err)
			}
			rules = append(rules, r)
		}
		if len(rules) == 0 {
			return nil, fmt.Errorf("vnn: analysis %q needs rules", s.Kind)
		}
		samples := make([]Sample, len(s.Data))
		for i, x := range s.Data {
			samples[i] = Sample{X: x}
			if len(s.Labels) != 0 {
				samples[i].Y = s.Labels[i]
			}
		}
		return &DataValidation{Data: samples, Rules: rules}, nil
	case KindFalsify:
		if len(s.Outputs) == 0 {
			return nil, fmt.Errorf("vnn: analysis %q needs outputs", s.Kind)
		}
		return &Falsification{Outputs: s.Outputs, Restarts: s.Restarts, Steps: s.Steps, Seed: s.Seed}, nil
	case KindMonitorAudit:
		if len(s.Data) == 0 {
			return nil, fmt.Errorf("vnn: analysis %q needs a build dataset", s.Kind)
		}
		return &MonitorAudit{
			Data:       s.Data,
			Gamma:      s.Gamma,
			Layers:     s.Layers,
			AuditTests: s.AuditTests,
			Seed:       s.Seed,
		}, nil
	case "":
		return nil, fmt.Errorf("vnn: analysis spec has no kind")
	default:
		return nil, fmt.Errorf("vnn: unknown analysis kind %q", s.Kind)
	}
}

// properties decodes the spec's property batch.
func (s *AnalysisSpec) properties() ([]Property, error) {
	if len(s.Properties) == 0 {
		return nil, fmt.Errorf("vnn: analysis %q needs properties", s.Kind)
	}
	props := make([]Property, len(s.Properties))
	for i := range s.Properties {
		p, err := s.Properties[i].Property()
		if err != nil {
			return nil, fmt.Errorf("vnn: property %d: %w", i, err)
		}
		props[i] = p
	}
	return props, nil
}

// ValidateFor checks the spec's references against a concrete network:
// property output indices and nominal-point dimensions (via
// PropertySpec.ValidateFor), then every network-dependent rule of the
// built analysis itself (Analysis.Validate — data dimensions, falsified
// outputs, bit ranges). The per-kind rules live in one place, the
// analysis, so the wire layer can never drift from the library.
func (s *AnalysisSpec) ValidateFor(net *Network) error {
	for i := range s.Properties {
		if err := s.Properties[i].ValidateFor(net); err != nil {
			return fmt.Errorf("vnn: property %d: %w", i, err)
		}
	}
	a, err := s.Analysis()
	if err != nil {
		return err
	}
	return a.Validate(net)
}

// FeatureScoreJSON is the wire form of one attribution entry.
type FeatureScoreJSON struct {
	Feature int     `json:"feature"`
	Name    string  `json:"name,omitempty"`
	Score   float64 `json:"score"`
}

// TraceNeuronJSON is the wire form of one neuron's traceability record.
type TraceNeuronJSON struct {
	Layer            int                `json:"layer"`
	Index            int                `json:"index"`
	ActivationRate   float64            `json:"activation_rate"`
	MeanActivation   float64            `json:"mean_activation"`
	TopByWeight      []FeatureScoreJSON `json:"top_by_weight,omitempty"`
	TopByCorrelation []FeatureScoreJSON `json:"top_by_correlation,omitempty"`
	// Condition is "always-active", "always-inactive" or "conditional";
	// empty when no region conditions were computed.
	Condition string `json:"condition,omitempty"`
}

// TraceabilityJSON is the wire form of a traceability finding.
type TraceabilityJSON struct {
	Arch           string            `json:"arch"`
	Neurons        int               `json:"neurons"`
	DeadNeurons    int               `json:"dead_neurons"`
	AlwaysActive   int               `json:"always_active"`
	AlwaysInactive int               `json:"always_inactive"`
	Conditional    int               `json:"conditional"`
	NeuronDetails  []TraceNeuronJSON `json:"neuron_details,omitempty"`
}

// CoverageJSON is the wire form of a coverage finding.
type CoverageJSON struct {
	Tests              int     `json:"tests"`
	Generated          int     `json:"generated"`
	Patterns           int     `json:"patterns"`
	NeuronCoverage     float64 `json:"neuron_coverage"`
	SignCoverage       float64 `json:"sign_coverage"`
	UncoveredNeurons   int     `json:"uncovered_neurons"`
	Conditions         int     `json:"conditions"`
	BranchCombinations string  `json:"branch_combinations"`
	RequiredMCDCTests  int     `json:"required_mcdc_tests"`
}

// QuantPointJSON is the wire form of one bit-width rung.
type QuantPointJSON struct {
	Bits            int          `json:"bits"`
	MaxWeightError  float64      `json:"max_weight_error"`
	DistinctWeights int          `json:"distinct_weights"`
	Fingerprint     string       `json:"fingerprint"`
	CompileMS       float64      `json:"compile_ms"`
	Results         []ResultJSON `json:"results"`
	MaxValueDelta   *float64     `json:"max_value_delta,omitempty"`
	MaxBoundDelta   *float64     `json:"max_bound_delta,omitempty"`
}

// QuantSweepJSON is the wire form of a quantization-sweep finding.
type QuantSweepJSON struct {
	Base   []ResultJSON     `json:"base"`
	Points []QuantPointJSON `json:"points"`
}

// DataViolationJSON is the wire form of one rule failure.
type DataViolationJSON struct {
	SampleIndex int    `json:"sample_index"`
	Rule        string `json:"rule"`
	Reason      string `json:"reason"`
}

// DataValidationJSON is the wire form of a data-validation finding. The
// violation detail list is capped; PerRule always carries full counts.
type DataValidationJSON struct {
	Samples    int                 `json:"samples"`
	Violations int                 `json:"violations"`
	Valid      bool                `json:"valid"`
	PerRule    map[string]int      `json:"per_rule,omitempty"`
	Details    []DataViolationJSON `json:"details,omitempty"`
}

// FalsificationJSON is the wire form of a falsification finding.
type FalsificationJSON struct {
	Value       float64   `json:"value"`
	Best        []float64 `json:"best,omitempty"`
	Output      int       `json:"output"`
	Evaluations int       `json:"evaluations"`
}

// MonitorAuditJSON is the wire form of a runtime-monitoring finding.
type MonitorAuditJSON struct {
	Fingerprint         string  `json:"fingerprint"`
	Gamma               int     `json:"gamma"`
	Layers              []int   `json:"layers"`
	BuildInputs         int     `json:"build_inputs"`
	RejectedUnreachable int     `json:"rejected_unreachable"`
	Patterns            int     `json:"patterns"`
	Audited             int     `json:"audited"`
	Flagged             int     `json:"flagged"`
	FlaggedFraction     float64 `json:"flagged_fraction"`
}

// FindingJSON is the wire form of one Finding: the kind plus exactly one
// populated payload.
type FindingJSON struct {
	Kind           string              `json:"kind"`
	ElapsedMS      float64             `json:"elapsed_ms"`
	Results        []ResultJSON        `json:"results,omitempty"`
	Coverage       *CoverageJSON       `json:"coverage,omitempty"`
	Traceability   *TraceabilityJSON   `json:"traceability,omitempty"`
	QuantSweep     *QuantSweepJSON     `json:"quant_sweep,omitempty"`
	DataValidation *DataValidationJSON `json:"data_validation,omitempty"`
	Falsification  *FalsificationJSON  `json:"falsification,omitempty"`
	Monitor        *MonitorAuditJSON   `json:"monitor,omitempty"`
}

// JSON renders the finding in the shared wire schema.
func (f *Finding) JSON() FindingJSON {
	out := FindingJSON{
		Kind:      f.Kind,
		ElapsedMS: float64(f.Elapsed.Microseconds()) / 1e3,
	}
	if f.Verification != nil {
		out.Results = resultsJSON(f.Verification)
	}
	if f.Coverage != nil {
		c := f.Coverage
		out.Coverage = &CoverageJSON{
			Tests:              c.Suite.Tests(),
			Generated:          len(c.Generated),
			Patterns:           c.Suite.Patterns(),
			NeuronCoverage:     c.Suite.NeuronCoverage(),
			SignCoverage:       c.Suite.SignCoverage(),
			UncoveredNeurons:   len(c.Suite.UncoveredNeurons()),
			Conditions:         c.Conditions,
			BranchCombinations: c.BranchCombinations,
			RequiredMCDCTests:  c.RequiredMCDCTests,
		}
	}
	if f.Traceability != nil {
		out.Traceability = traceabilityJSON(f.Traceability)
	}
	if f.QuantSweep != nil {
		q := f.QuantSweep
		qj := &QuantSweepJSON{Base: resultsJSON(q.Base)}
		for i := range q.Points {
			p := &q.Points[i]
			qj.Points = append(qj.Points, QuantPointJSON{
				Bits:            p.Bits,
				MaxWeightError:  p.Info.MaxWeightError,
				DistinctWeights: p.Info.DistinctWeights,
				Fingerprint:     p.Fingerprint,
				CompileMS:       float64(p.CompileTime.Microseconds()) / 1e3,
				Results:         resultsJSON(p.Results),
				MaxValueDelta:   finiteNonNaNPtr(p.MaxValueDelta),
				MaxBoundDelta:   finiteNonNaNPtr(p.MaxBoundDelta),
			})
		}
		out.QuantSweep = qj
	}
	if f.DataValidation != nil {
		rep := f.DataValidation.Report
		dj := &DataValidationJSON{
			Samples:    rep.Samples,
			Violations: len(rep.Violations),
			Valid:      rep.Valid(),
			PerRule:    rep.PerRule,
		}
		for i, v := range rep.Violations {
			if i >= maxWireViolations {
				break
			}
			dj.Details = append(dj.Details, DataViolationJSON{
				SampleIndex: v.SampleIndex, Rule: v.Rule, Reason: v.Reason,
			})
		}
		out.DataValidation = dj
	}
	if f.Falsification != nil {
		fr := f.Falsification
		out.Falsification = &FalsificationJSON{
			Value: fr.Value, Best: fr.Best, Output: fr.Output, Evaluations: fr.Evaluations,
		}
	}
	if f.Monitor != nil {
		mf := f.Monitor
		out.Monitor = &MonitorAuditJSON{
			Fingerprint:         mf.Fingerprint,
			Gamma:               mf.Gamma,
			Layers:              mf.Layers,
			BuildInputs:         mf.BuildInputs,
			RejectedUnreachable: mf.RejectedUnreachable,
			Patterns:            mf.Patterns,
			Audited:             mf.Audited,
			Flagged:             mf.Flagged,
			FlaggedFraction:     mf.FlaggedFraction,
		}
	}
	return out
}

// traceabilityJSON flattens a traceability report onto the wire.
func traceabilityJSON(rep *TraceabilityReport) *TraceabilityJSON {
	tj := &TraceabilityJSON{
		Arch:        rep.Arch,
		Neurons:     len(rep.Neurons),
		DeadNeurons: len(rep.DeadNeurons()),
	}
	for _, row := range rep.Conditions {
		for _, c := range row {
			switch c {
			case trace.AlwaysActive:
				tj.AlwaysActive++
			case trace.AlwaysInactive:
				tj.AlwaysInactive++
			default:
				tj.Conditional++
			}
		}
	}
	for i := range rep.Neurons {
		n := &rep.Neurons[i]
		nj := TraceNeuronJSON{
			Layer:            n.Layer,
			Index:            n.Index,
			ActivationRate:   n.ActivationRate,
			MeanActivation:   n.MeanActivation,
			TopByWeight:      scoresJSON(n.TopByWeight),
			TopByCorrelation: scoresJSON(n.TopByCorrelation),
		}
		if rep.Conditions != nil {
			nj.Condition = rep.Conditions[n.Layer][n.Index].String()
		}
		tj.NeuronDetails = append(tj.NeuronDetails, nj)
	}
	return tj
}

func scoresJSON(scores []trace.FeatureScore) []FeatureScoreJSON {
	out := make([]FeatureScoreJSON, 0, len(scores))
	for _, s := range scores {
		out = append(out, FeatureScoreJSON{Feature: s.Feature, Name: s.Name, Score: s.Score})
	}
	return out
}

func resultsJSON(results []*Result) []ResultJSON {
	out := make([]ResultJSON, 0, len(results))
	for _, r := range results {
		out = append(out, r.JSON())
	}
	return out
}

// finiteNonNaNPtr boxes v unless it has no JSON representation.
func finiteNonNaNPtr(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

// NewAnalysisReport assembles the shared report document from an Analyze
// batch: every finding under Analyses, with verification results also
// flattened into Results (so consumers of plain verify reports parse
// analysis reports unchanged) and Worst aggregating the formal verdicts
// of the float model (verification findings plus quant-sweep baselines —
// quantized-model verdicts describe a different artifact and are reported
// per point instead). A batch containing no formal verdict at all — only
// coverage, traceability, data validation or falsification — reports
// Worst as "inconclusive": nothing was proved, and a consumer gating on
// "proved" must not mistake an unverified network for a verified one.
func NewAnalysisReport(net *Network, findings []*Finding) Report {
	rep := Report{}
	if net != nil {
		rep.Network = net.Name
		rep.Arch = net.ArchString()
	}
	var formal []*Result
	for _, f := range findings {
		rep.Analyses = append(rep.Analyses, f.JSON())
		formal = append(formal, f.Verification...)
		if f.QuantSweep != nil {
			formal = append(formal, f.QuantSweep.Base...)
		}
	}
	if len(formal) == 0 {
		rep.Worst = Inconclusive.String()
	} else {
		rep.Worst = Worst(formal).String()
	}
	for _, f := range findings {
		for _, r := range f.Verification {
			rep.Results = append(rep.Results, r.JSON())
		}
	}
	return rep
}
