package vnn

import (
	"math"
	"strings"
	"testing"

	"repro/internal/coverage"
	"repro/internal/nn"
)

// emptySuite is a coverage suite over a tiny net with nothing scored —
// neuron coverage 0.
func emptySuite() *CoverageSuite {
	return coverage.NewSuite(&nn.Network{Layers: []*nn.Layer{
		{W: [][]float64{{1}, {-1}}, B: []float64{0, 0}, Act: nn.ReLU},
		{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
	}})
}

func f64(v float64) *float64 { return &v }

func verifyFinding(outcomes ...Outcome) *Finding {
	f := &Finding{Kind: KindVerify}
	for _, o := range outcomes {
		f.Verification = append(f.Verification, &Result{Outcome: o})
	}
	return f
}

// TestGateEvaluate exercises the pure decision logic over synthetic
// findings: every per-kind rule in both polarities, without running a
// single solve.
func TestGateEvaluate(t *testing.T) {
	boolp := func(v bool) *bool { return &v }
	cases := []struct {
		name     string
		gate     GateSpec
		findings []*Finding
		pass     bool
		reason   string // substring of FailReason on rejection
	}{
		{
			name:     "proved passes",
			findings: []*Finding{verifyFinding(Proved, Proved)},
			pass:     true,
		},
		{
			name:     "violated rejects",
			findings: []*Finding{verifyFinding(Proved, Violated)},
			reason:   "violated",
		},
		{
			name:     "inconclusive rejects by default",
			findings: []*Finding{verifyFinding(Inconclusive)},
			reason:   "inconclusive",
		},
		{
			name:     "inconclusive tolerated when not requiring proved",
			gate:     GateSpec{RequireProved: boolp(false)},
			findings: []*Finding{verifyFinding(Inconclusive)},
			pass:     true,
		},
		{
			name:     "violated rejects even without requiring proved",
			gate:     GateSpec{RequireProved: boolp(false)},
			findings: []*Finding{verifyFinding(Violated)},
			reason:   "violated",
		},
		{
			name: "flag rate at threshold passes",
			gate: GateSpec{MaxFlagRate: f64(0.05)},
			findings: []*Finding{{Kind: KindMonitorAudit,
				Monitor: &MonitorFinding{FlaggedFraction: 0.05}}},
			pass: true,
		},
		{
			name: "flag rate above threshold rejects",
			gate: GateSpec{MaxFlagRate: f64(0.05)},
			findings: []*Finding{{Kind: KindMonitorAudit,
				Monitor: &MonitorFinding{FlaggedFraction: 0.051}}},
			reason: "max_flag_rate",
		},
		{
			name: "flag rate informational when unset",
			findings: []*Finding{{Kind: KindMonitorAudit,
				Monitor: &MonitorFinding{FlaggedFraction: 1}}},
			pass: true,
		},
		{
			name: "quant sweep drift within bound passes",
			gate: GateSpec{MaxBoundDrift: f64(0.1)},
			findings: []*Finding{{Kind: KindQuantSweep, QuantSweep: &QuantSweepFinding{
				Base: []*Result{{Outcome: Proved}},
				Points: []QuantPoint{{Bits: 8,
					Results:       []*Result{{Outcome: Proved}},
					MaxBoundDelta: 0.05, MaxValueDelta: math.NaN()}},
			}}},
			pass: true,
		},
		{
			name: "quant sweep drift above bound rejects",
			gate: GateSpec{MaxBoundDrift: f64(0.1)},
			findings: []*Finding{{Kind: KindQuantSweep, QuantSweep: &QuantSweepFinding{
				Base: []*Result{{Outcome: Proved}},
				Points: []QuantPoint{{Bits: 4,
					Results:       []*Result{{Outcome: Proved}},
					MaxBoundDelta: 0.2, MaxValueDelta: math.NaN()}},
			}}},
			reason: "max_bound_drift",
		},
		{
			name: "quant sweep NaN drift is not rejected",
			gate: GateSpec{MaxBoundDrift: f64(0.1), MaxValueDrift: f64(0.1)},
			findings: []*Finding{{Kind: KindQuantSweep, QuantSweep: &QuantSweepFinding{
				Base: []*Result{{Outcome: Proved}},
				Points: []QuantPoint{{Bits: 6,
					Results:       []*Result{{Outcome: Proved}},
					MaxBoundDelta: math.NaN(), MaxValueDelta: math.NaN()}},
			}}},
			pass: true,
		},
		{
			name: "quant sweep violated point rejects",
			findings: []*Finding{{Kind: KindQuantSweep, QuantSweep: &QuantSweepFinding{
				Base: []*Result{{Outcome: Proved}},
				Points: []QuantPoint{{Bits: 4,
					Results:       []*Result{{Outcome: Violated}},
					MaxBoundDelta: math.NaN(), MaxValueDelta: math.NaN()}},
			}}},
			reason: "4-bit model violates",
		},
		{
			name: "quant sweep bad baseline rejects",
			findings: []*Finding{{Kind: KindQuantSweep, QuantSweep: &QuantSweepFinding{
				Base: []*Result{{Outcome: Violated}},
			}}},
			reason: "baseline",
		},
		{
			name: "coverage below floor rejects",
			gate: GateSpec{MinNeuronCoverage: f64(0.9)},
			findings: []*Finding{{Kind: KindCoverage,
				Coverage: &CoverageFinding{Suite: emptySuite()}}},
			reason: "min_neuron_coverage",
		},
		{
			name: "coverage informational when unset",
			findings: []*Finding{{Kind: KindCoverage,
				Coverage: &CoverageFinding{Suite: emptySuite()}}},
			pass: true,
		},
		{
			name: "traceability is informational",
			findings: []*Finding{{Kind: KindTraceability,
				Traceability: &TraceabilityReport{}}},
			pass: true,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := c.gate.Evaluate(c.findings)
			if d.Pass != c.pass {
				t.Fatalf("pass = %v, want %v (%+v)", d.Pass, c.pass, d.Checks)
			}
			if len(d.Checks) != len(c.findings) {
				t.Fatalf("%d checks for %d findings", len(d.Checks), len(c.findings))
			}
			if c.pass {
				if r := d.FailReason(); r != "" {
					t.Fatalf("passing decision has fail reason %q", r)
				}
				return
			}
			if r := d.FailReason(); !strings.Contains(r, c.reason) {
				t.Fatalf("fail reason %q does not mention %q", r, c.reason)
			}
		})
	}
}

// TestGateEvaluateMixed pins that one failing analysis fails the gate
// while the other checks still report individually.
func TestGateEvaluateMixed(t *testing.T) {
	gate := GateSpec{MaxFlagRate: f64(0.1)}
	d := gate.Evaluate([]*Finding{
		verifyFinding(Proved),
		{Kind: KindMonitorAudit, Monitor: &MonitorFinding{FlaggedFraction: 0.5}},
	})
	if d.Pass {
		t.Fatal("gate passed with a failing audit")
	}
	if !d.Checks[0].Pass || d.Checks[1].Pass {
		t.Fatalf("checks: %+v", d.Checks)
	}
	if d.Checks[1].Analysis != 1 || d.Checks[1].Kind != KindMonitorAudit {
		t.Fatalf("check attribution: %+v", d.Checks[1])
	}
}

func TestGateSpecValidate(t *testing.T) {
	verify := AnalysisSpec{Kind: KindVerify, Properties: []PropertySpec{
		{Kind: "at_most", Output: new(int), Threshold: f64(1)},
	}}
	good := GateSpec{Analyses: []AnalysisSpec{verify}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []GateSpec{
		{},
		{Analyses: []AnalysisSpec{{Kind: "nope"}}},
		{Analyses: []AnalysisSpec{verify}, MaxFlagRate: f64(1.5)},
		{Analyses: []AnalysisSpec{verify}, MaxFlagRate: f64(math.NaN())},
		{Analyses: []AnalysisSpec{verify}, MinNeuronCoverage: f64(-0.1)},
		{Analyses: []AnalysisSpec{verify}, MaxBoundDrift: f64(-1)},
		{Analyses: []AnalysisSpec{verify}, TimeoutMS: -1},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Fatalf("case %d: invalid gate validated", i)
		}
	}
}
