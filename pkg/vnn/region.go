package vnn

import (
	"repro/internal/bounds"
	"repro/internal/highway"
)

// The case-study regions of the paper's two safety properties. They live
// here (rather than in internal/core) because a region is half of a
// verification query: callers compile a network against a region and then
// ask properties about it.

// FrontGapClose is the upper end of the normalized front gap considered
// "close ahead" (0.15 × SensorRange = 15 m).
const FrontGapClose = 0.15

// fullFeatureBox returns every normalized feature ranging over [0, 1].
func fullFeatureBox() []Interval {
	box := make([]bounds.Interval, highway.FeatureDim)
	for i := range box {
		box[i] = bounds.Interval{Lo: 0, Hi: 1}
	}
	return box
}

// LeftOccupiedRegion is the input region of the paper's lateral safety
// property: every normalized feature ranges over its full domain except
// that the left neighbor slot is occupied (presence pinned to 1, the
// alongside gap near zero, plausible relative speed). The returned region
// quantifies over every driving situation with a vehicle on the left.
func LeftOccupiedRegion() *Region {
	box := fullFeatureBox()
	pin := func(f int, lo, hi float64) { box[f] = bounds.Interval{Lo: lo, Hi: hi} }
	pin(highway.NeighborFeature(highway.Left, highway.NPPresence), 1, 1)
	// Alongside gap is ~0 by the sensor definition; allow a small band.
	pin(highway.NeighborFeature(highway.Left, highway.NPGap), 0, 0.1)
	// Relative speed within ±MaxRelSpeed but excluding the extremes keeps
	// the region inside what the sensor can actually produce.
	pin(highway.NeighborFeature(highway.Left, highway.NPRelSpeed), 0.1, 0.9)
	return &Region{Box: box}
}

// FrontCloseRegion quantifies over every input with a vehicle close
// ahead: front presence pinned to 1, front gap within [0, FrontGapClose],
// and the front vehicle no faster than the ego (non-positive normalized
// relative speed, i.e. ≤ 0.5 after normalization). This is the region of
// the symmetric longitudinal property "if a vehicle is close ahead, the
// predictor never suggests strong acceleration".
func FrontCloseRegion() *Region {
	box := fullFeatureBox()
	pin := func(f int, lo, hi float64) { box[f] = bounds.Interval{Lo: lo, Hi: hi} }
	pin(highway.NeighborFeature(highway.Front, highway.NPPresence), 1, 1)
	pin(highway.NeighborFeature(highway.Front, highway.NPGap), 0, FrontGapClose)
	pin(highway.NeighborFeature(highway.Front, highway.NPRelSpeed), 0, 0.5)
	return &Region{Box: box}
}
