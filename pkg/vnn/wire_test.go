package vnn_test

import (
	"context"
	"encoding/json"
	"math"
	"testing"

	"repro/pkg/vnn"
)

// TestReportEncoding pins the shared wire schema on the hand-made
// |x0-x1| network: outcomes as strings, bit-exact finite values, and
// non-finite bounds encoded by omission.
func TestReportEncoding(t *testing.T) {
	ctx := context.Background()
	cn, err := vnn.Compile(ctx, absNet(t), unitSquare(), vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := vnn.Verify(ctx, cn,
		vnn.MaxOutput(0),   // proved, value 1
		vnn.AtMost(0, 2.0), // proved with no witness: no value field
	)
	if err != nil {
		t.Fatal(err)
	}
	rep := vnn.NewReport(cn.Net(), results)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back vnn.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Worst != "proved" || back.Network != "absdiff" || len(back.Results) != 2 {
		t.Fatalf("report round trip: %+v", back)
	}
	r0 := back.Results[0]
	if r0.Outcome != "proved" || !r0.Exact || r0.Property == "" {
		t.Fatalf("max result: %+v", r0)
	}
	if r0.Value == nil || *r0.Value != results[0].Value {
		t.Fatalf("value did not survive JSON bit-exactly: %v vs %v", r0.Value, results[0].Value)
	}
	if r0.UpperBound == nil || *r0.UpperBound != results[0].UpperBound {
		t.Fatalf("upper bound mismatch: %v", r0.UpperBound)
	}
	if len(r0.Witness) != 2 {
		t.Fatalf("witness lost: %v", r0.Witness)
	}
	r1 := back.Results[1]
	if r1.Outcome != "proved" {
		t.Fatalf("prove result: %+v", r1)
	}
	// The prove query has LowerBound = -Inf and no witness: both must be
	// absent rather than mangled.
	if r1.LowerBound != nil || r1.Value != nil {
		t.Fatalf("non-finite fields not omitted: %+v", r1)
	}
	if r1.Stats.HiddenNeurons == 0 {
		t.Fatal("stats lost in translation")
	}
}

// TestPropertySpecs pins the wire->Property constructors, including error
// cases a service must reject rather than run.
func TestPropertySpecs(t *testing.T) {
	one := 1
	zero := 0
	thr := 0.5
	good := []vnn.PropertySpec{
		{Kind: "max", Outputs: []int{0}},
		{Kind: "max", Output: &zero},
		{Kind: "min", Output: &zero},
		{Kind: "max_linear", Coeffs: map[string]float64{"0": 2}},
		{Kind: "at_most", Output: &zero, Threshold: &thr},
		{Kind: "linear_at_most", Coeffs: map[string]float64{"0": 1}, Threshold: &thr},
		{Kind: "resilience", X0: []float64{0.5, 0.5}, Output: &zero, Threshold: &thr},
	}
	for i, spec := range good {
		if _, err := spec.Property(); err != nil {
			t.Fatalf("spec %d (%s): %v", i, spec.Kind, err)
		}
	}
	bad := []vnn.PropertySpec{
		{},
		{Kind: "nonsense"},
		{Kind: "max"},
		{Kind: "min"},
		{Kind: "at_most", Output: &one},
		{Kind: "linear_at_most", Threshold: &thr},
		{Kind: "max_linear", Coeffs: map[string]float64{"x": 1}},
		{Kind: "resilience", Output: &one, Threshold: &thr},
	}
	for i, spec := range bad {
		if _, err := spec.Property(); err == nil {
			t.Fatalf("bad spec %d (%q) accepted", i, spec.Kind)
		}
	}

	// The spec answers the same question as the hand-built property.
	ctx := context.Background()
	cn, err := vnn.Compile(ctx, absNet(t), unitSquare(), vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	spec := vnn.PropertySpec{Kind: "max", Outputs: []int{0}}
	p, err := spec.Property()
	if err != nil {
		t.Fatal(err)
	}
	res, err := vnn.VerifyOne(ctx, cn, p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Value-1) > 1e-7 {
		t.Fatalf("spec-built property answered %g, want 1", res.Value)
	}
}

// TestRegionSpecs pins the wire->Region constructors.
func TestRegionSpecs(t *testing.T) {
	named := vnn.RegionSpec{Name: "left_occupied"}
	r, err := named.Region()
	if err != nil {
		t.Fatal(err)
	}
	want := vnn.LeftOccupiedRegion()
	if len(r.Box) != len(want.Box) || r.Box[0] != want.Box[0] {
		t.Fatalf("named region differs: %+v", r.Box[:3])
	}

	explicit := vnn.RegionSpec{
		Box: [][2]float64{{0, 1}, {0, 1}},
		Linear: []vnn.LinearConstraintSpec{
			{Coeffs: map[string]float64{"0": 1, "1": 1}, Sense: "<=", RHS: 1.5},
		},
	}
	r, err = explicit.Region()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Box) != 2 || len(r.Linear) != 1 || r.Linear[0].RHS != 1.5 {
		t.Fatalf("explicit region: %+v", r)
	}

	for i, bad := range []vnn.RegionSpec{
		{},
		{Name: "atlantis"},
		{Name: "left_occupied", Box: [][2]float64{{0, 1}}},
		{Box: [][2]float64{{0, 1}}, Linear: []vnn.LinearConstraintSpec{{Coeffs: map[string]float64{"0": 1}, Sense: "<>", RHS: 0}}},
	} {
		if _, err := bad.Region(); err == nil {
			t.Fatalf("bad region spec %d accepted", i)
		}
	}
}
