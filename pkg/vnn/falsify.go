package vnn

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/attack"
)

// FalsifyOptions tune the gradient-guided falsification pre-pass.
type FalsifyOptions struct {
	// Restarts is the number of random starting points per output; 0
	// means 8.
	Restarts int
	// Steps of PGD per restart; 0 means 60.
	Steps int
	// Seed drives the random restarts.
	Seed int64
}

// FalsifyResult reports the strongest violating input found.
type FalsifyResult struct {
	// Value is the largest output value reached across all outputs — a
	// lower bound on the true maximum (the gap to the verified bound is
	// what only formal analysis can close).
	Value float64
	// Best is the input achieving Value; nil when the region is empty.
	Best []float64
	// Output is the output index achieving Value.
	Output int
	// Evaluations counts forward/backward passes used.
	Evaluations int
}

// Falsify runs the incomplete, fast counterpart of Verify: PGD ascent with
// random restarts that maximizes each of the given outputs over the
// region. A found violation is a definitive counterexample; finding
// nothing proves nothing (run a Verify proof for that). It completes the
// paper's portfolio — formal bounds, threshold proofs, resilience, and
// falsification — behind the one public API.
func Falsify(net *Network, region *Region, outputs []int, opts FalsifyOptions) (*FalsifyResult, error) {
	return FalsifyCtx(context.Background(), net, region, outputs, opts)
}

// FalsifyCtx is Falsify under a context: cancellation is polled at every
// PGD restart boundary, and an interrupted attack returns the strongest
// violating input found so far instead of an error — the same anytime
// contract Verify has. This is the entry point the vnnd service uses, so
// a drain or client disconnect stops falsification work too.
func FalsifyCtx(ctx context.Context, net *Network, region *Region, outputs []int, opts FalsifyOptions) (*FalsifyResult, error) {
	if len(outputs) == 0 {
		return nil, fmt.Errorf("vnn: Falsify needs at least one output index")
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	best := &FalsifyResult{Value: math.Inf(-1), Output: outputs[0]}
	for _, out := range outputs {
		if ctx.Err() != nil {
			break
		}
		res, err := attack.Maximize(net, region, out, rng, attack.Options{
			Restarts: opts.Restarts,
			Steps:    opts.Steps,
			Cancel:   func() bool { return ctx.Err() != nil },
		})
		if err != nil {
			return nil, err
		}
		best.Evaluations += res.Evaluations
		if res.Value > best.Value {
			best.Value = res.Value
			best.Best = res.Best
			best.Output = out
		}
	}
	return best, nil
}
