package vnn

import (
	"context"
	"fmt"
)

// Outcome classifies the verdict of one property query.
type Outcome int

// Verdicts, ordered from best to worst (Worst relies on this order).
const (
	// Proved means the property holds over the whole region (for bound
	// queries: the reported bound is proven tight).
	Proved Outcome = iota
	// Inconclusive means the budget (deadline, cancellation, or node
	// limit) ran out before a verdict. The result still carries the
	// anytime bounds proven up to the interruption.
	Inconclusive
	// Violated means a concrete counterexample input was found.
	Violated
)

// String returns a readable outcome name.
func (o Outcome) String() string {
	switch o {
	case Proved:
		return "proved"
	case Violated:
		return "violated"
	case Inconclusive:
		return "inconclusive"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Result is the anytime answer to one property. Whatever the outcome, the
// proven interval [LowerBound, UpperBound] on the queried quantity is
// sound at the moment the query ended: an interrupted max query still
// reports the best witness found (Value, LowerBound) and the tightest
// proven UpperBound instead of a bare timeout.
type Result struct {
	// Property echoes the property this result answers.
	Property Property
	// Outcome is the verdict; see Outcome.
	Outcome Outcome
	// Exact reports whether the query concluded (no budget interruption).
	Exact bool
	// Value is the best witnessed value: the largest output reached for
	// max queries (smallest for MinOutput), the counterexample's value for
	// violated threshold proofs, meaningless when no witness exists.
	Value float64
	// LowerBound and UpperBound bracket the queried quantity with proven
	// bounds; ±Inf where no finite bound was established.
	LowerBound, UpperBound float64
	// Witness is a concrete input achieving Value (a counterexample for
	// violated proofs); nil when none was found.
	Witness []float64
	// Radius is the certified perturbation radius (ResilienceRadius only).
	Radius float64
	// Iterations counts binary-search steps (ResilienceRadius only).
	Iterations int
	// Stats describes the effort the query took.
	Stats Stats
}

// Verify answers a batch of properties against one compiled network. The
// properties run sequentially in the given order (each may parallelize
// internally per Options); all of them share the compiled encoding, so
// nothing is re-encoded or re-tightened between queries.
//
// The context governs the whole batch: its deadline and cancellation
// reach into every simplex iteration, and once it fires the remaining
// properties return promptly with their interval-analysis anytime bounds
// rather than being skipped. Verify returns an error only for malformed
// queries or an unsolvable encoding — running out of budget is not an
// error, it is an Inconclusive result.
func Verify(ctx context.Context, cn *CompiledNetwork, props ...Property) ([]*Result, error) {
	if len(props) == 0 {
		return nil, fmt.Errorf("vnn: Verify needs at least one property")
	}
	results := make([]*Result, len(props))
	for i, p := range props {
		r, err := p.run(ctx, cn, i)
		if err != nil {
			return nil, fmt.Errorf("vnn: property %d (%s): %w", i, p, err)
		}
		r.Property = p
		results[i] = r
	}
	return results, nil
}

// VerifyOne answers a single property; sugar over Verify.
func VerifyOne(ctx context.Context, cn *CompiledNetwork, prop Property) (*Result, error) {
	rs, err := Verify(ctx, cn, prop)
	if err != nil {
		return nil, err
	}
	return rs[0], nil
}

// Worst aggregates a batch verdict: Violated if any property is violated,
// else Inconclusive if any ran out of budget, else Proved.
func Worst(results []*Result) Outcome {
	worst := Proved
	for _, r := range results {
		if r.Outcome > worst {
			worst = r.Outcome
		}
	}
	return worst
}
