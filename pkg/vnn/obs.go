package vnn

import (
	"fmt"
	"sync"

	"repro/internal/obs"
)

// ProgressSpans bridges the progress Event stream of Verify/Analyze into
// the flight recorder's span model: each (analysis, property) pair that
// emits events gets one child span under parent, carrying the latest
// node count, open-queue size and proven bound as attributes. The
// serving layer chains its Options.Progress through Observe, so the
// solver keeps streaming SSE events exactly as before and the trace view
// is derived from the same stream.
//
// A ProgressSpans built over a nil parent span no-ops, matching the rest
// of the obs package's nil discipline.
type ProgressSpans struct {
	mu     sync.Mutex
	parent *obs.Span
	spans  map[[2]int]*obs.Span
}

// NewProgressSpans returns a bridge producing children of parent.
func NewProgressSpans(parent *obs.Span) *ProgressSpans {
	return &ProgressSpans{parent: parent, spans: make(map[[2]int]*obs.Span)}
}

// Observe folds one progress event into the span tree. Safe for
// concurrent use (parallel per-property solves emit concurrently).
func (ps *ProgressSpans) Observe(ev Event) {
	if ps == nil || ps.parent == nil {
		return
	}
	ps.mu.Lock()
	key := [2]int{ev.Analysis, ev.Property}
	sp, ok := ps.spans[key]
	if !ok {
		sp = ps.parent.Child(fmt.Sprintf("property/%d", ev.Property))
		if ev.Analysis > 0 {
			sp.SetAttr("analysis", ev.Analysis)
		}
		ps.spans[key] = sp
	}
	ps.mu.Unlock()
	sp.SetAttr("nodes", ev.Nodes)
	sp.SetAttr("open", ev.Open)
	sp.SetAttr("bound", ev.Bound)
	if ev.HasIncumbent {
		sp.SetAttr("incumbent", ev.Incumbent)
	}
}

// Close ends every property span (the solve streams no more events).
func (ps *ProgressSpans) Close() {
	if ps == nil {
		return
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for _, sp := range ps.spans {
		sp.End()
	}
	ps.spans = make(map[[2]int]*obs.Span)
}
