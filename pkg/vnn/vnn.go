// Package vnn is the public verification API of this repository: one
// surface through which every analysis of the paper's portfolio — formal
// output bounds, threshold proofs, resilience radii, falsification — runs
// against a trained network.
//
// The API separates the expensive, reusable part of a verification from
// the cheap, per-question part:
//
//   - Compile fixes a network to an input region and performs interval
//     bound propagation, optional LP bound tightening, and the MILP
//     encoding exactly once. The resulting CompiledNetwork is immutable
//     and safe for concurrent reuse: every query works on a clone of the
//     compiled model, never on the shared encoding itself.
//
//   - A small Property algebra states what to check: MaxOutput /
//     MaxOverOutputs / MinOutput objectives, AtMost threshold proofs,
//     general linear output inequalities (LinearAtMost), and
//     ResilienceRadius searches. Properties are plain values; build them
//     anywhere and batch them freely.
//
//   - Verify runs a batch of properties over one CompiledNetwork under a
//     context.Context. The context's deadline and cancellation are
//     threaded all the way down into the branch-and-bound batch loop and
//     the simplex pivot iterations, so Verify returns promptly when the
//     caller gives up — and the Result it returns is an *anytime* answer:
//     an interrupted query still reports the incumbent value and the
//     tightest proven bound at the moment of interruption, never a bare
//     "timeout".
//
// Progress while a query runs is streamed through Options.Progress as
// incumbent/bound/node events, tagged with the index of the property that
// produced them.
//
// A typical session:
//
//	cn, err := vnn.Compile(ctx, net, vnn.LeftOccupiedRegion(), vnn.Options{Tighten: true})
//	results, err := vnn.Verify(ctx, cn,
//	    vnn.MaxOverOutputs(vnn.MuLatOutputs(k)...),
//	    vnn.AtMost(vnn.MuLatOutputs(k)[0], 3.0))
//
// Compiling once and asking many questions is the intended idiom; the
// instrumentation counters in internal/verify let tests assert that no
// re-encoding or re-tightening sneaks back in.
package vnn

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bounds"
	"repro/internal/milp"
	"repro/internal/nn"
	"repro/internal/verify"
)

// Re-exported core types, so callers state regions and read results
// without importing internal packages.
type (
	// Network is a feed-forward ReLU network (see internal/nn).
	Network = nn.Network
	// ForwardScratch is the caller-owned state of the allocation-free
	// serving forwards (Network.ForwardInto and ForwardBatchInto); create
	// one per goroutine with Network.NewScratch.
	ForwardScratch = nn.Scratch
	// Interval is a closed [Lo, Hi] range.
	Interval = bounds.Interval
	// Region is the input set a property quantifies over: a box
	// intersected with optional linear constraints.
	Region = verify.InputRegion
	// LinearConstraint is one linear inequality over network inputs.
	LinearConstraint = verify.LinearConstraint
	// Stats describes the effort a query took.
	Stats = verify.Stats
)

// Options tune compilation and the queries run against the compiled
// network. The zero value is a sound default: no tightening, all cores,
// sequential per-output MILPs.
type Options struct {
	// Tighten enables LP-based bound tightening during Compile (slower
	// preprocessing, smaller search trees for every later query).
	Tighten bool
	// Workers is the branch-and-bound worker count per MILP solve and the
	// tightening fan-out: 0 means GOMAXPROCS, 1 forces the sequential
	// engine. Results are deterministic for any fixed value.
	Workers int
	// Parallel solves independent per-output MILPs concurrently
	// (MaxOverOutputs-style properties).
	Parallel bool
	// MaxNodes bounds branch-and-bound nodes per MILP; 0 means unlimited.
	MaxNodes int
	// Progress, when non-nil, receives streamed incumbent/bound/node
	// events from running queries. Invocations are serialized (even when
	// Parallel runs several solves at once), but may come from different
	// goroutines. The callback must not block; it may trigger the
	// context's cancel function to stop a search early.
	Progress func(Event)
}

// Event is a progress snapshot from a running query: the branch-and-bound
// incumbent, the proven bound, and node counts, tagged with the index of
// the property (within the Verify batch) that produced it.
type Event struct {
	// Property is the index into the Verify props list this event belongs
	// to (0 for single-property calls).
	Property int
	// Analysis is the index into the Analyze batch of the analysis that
	// produced this event (0 for plain Verify calls).
	Analysis int
	// Nodes explored and Open nodes on the queue of the emitting solve.
	Nodes, Open int
	// HasIncumbent reports whether any feasible witness exists yet.
	HasIncumbent bool
	// Incumbent is the best witness objective so far (valid when
	// HasIncumbent); Bound is the proven bound on the optimum.
	Incumbent, Bound float64
	// Elapsed is wall-clock time since the emitting solve started.
	Elapsed time.Duration
}

// CompiledNetwork is a network fixed to one input region with all
// preprocessing — bound propagation, optional LP tightening, MILP
// encoding — done once. It is immutable and safe for concurrent use:
// queries clone the compiled model instead of mutating it. Build one with
// Compile, then answer any number of property queries with Verify.
type CompiledNetwork struct {
	c    *verify.Compiled
	opts Options
}

// compileCalls counts full Compile invocations process-wide. Like the
// verify/bounds pass counters it exists so tests (and the fleet plane)
// can assert deduplication: replicating a compiled artifact between
// nodes must not add a Compile call anywhere.
var compileCalls atomic.Int64

// CompileCalls returns the total number of vnn.Compile invocations in
// this process. Importing a marshaled compiled artifact
// (UnmarshalCompiled) does not count — that is the point of shipping it.
func CompileCalls() int64 { return compileCalls.Load() }

// Compile performs the one-time analysis of net over region. The context
// bounds the whole compilation including LP tightening (a deadline that
// fires mid-tightening stops it early and soundly, so preprocessing can
// no longer consume the entire verification budget).
func Compile(ctx context.Context, net *Network, region *Region, opts Options) (*CompiledNetwork, error) {
	compileCalls.Add(1)
	c, err := verify.Compile(ctx, net, region, verifyOptions(opts, 0))
	if err != nil {
		return nil, err
	}
	return &CompiledNetwork{c: c, opts: opts}, nil
}

// Net returns the compiled network.
func (cn *CompiledNetwork) Net() *Network { return cn.c.Net() }

// Region returns the input region the compilation quantifies over.
func (cn *CompiledNetwork) Region() *Region { return cn.c.Region() }

// OutputBounds returns the proven interval bounds on every output over the
// region — the zero-cost anytime answer available before any MILP runs.
func (cn *CompiledNetwork) OutputBounds() []Interval { return cn.c.OutputBounds() }

// PreActivationBounds returns the proven pre-activation intervals of every
// hidden layer (one row per hidden layer) computed during compilation —
// LP-tightened when the network was compiled with Options.Tighten. The
// rows are read-only views into the compiled state; analyses (e.g.
// traceability interval conditions) consume them instead of re-running
// bound propagation.
func (cn *CompiledNetwork) PreActivationBounds() [][]Interval { return cn.c.PreActivationBounds() }

// CompileTime reports the wall-clock cost of the one-time analysis.
func (cn *CompiledNetwork) CompileTime() time.Duration { return cn.c.CompileTime }

// WithOptions returns a view of the compiled network whose queries run
// under opts. The expensive compiled state is shared, not copied —
// compile-time effects of the original options (tightened bounds) are
// whatever Compile produced — so one cached compilation can serve callers
// that want different worker budgets or progress sinks. This is how the
// verification service attaches per-request options to a cache hit.
func (cn *CompiledNetwork) WithOptions(opts Options) *CompiledNetwork {
	return &CompiledNetwork{c: cn.c, opts: opts}
}

// verifyOptions maps the public options onto the internal engine's,
// wiring the progress stream to a property index. Under Parallel a single
// property runs several MILP coordinators concurrently, so the public
// callback is serialized behind a mutex — callers never see overlapping
// invocations.
func verifyOptions(o Options, propIndex int) verify.Options {
	vo := verify.Options{
		Tighten:  o.Tighten,
		Parallel: o.Parallel,
		Workers:  o.Workers,
		MaxNodes: o.MaxNodes,
	}
	if o.Progress != nil {
		p := o.Progress
		var mu sync.Mutex
		vo.Progress = func(ev milp.Event) {
			mu.Lock()
			defer mu.Unlock()
			p(Event{
				Property:     propIndex,
				Nodes:        ev.Nodes,
				Open:         ev.Open,
				HasIncumbent: ev.HasIncumbent,
				Incumbent:    ev.Incumbent,
				Bound:        ev.Bound,
				Elapsed:      ev.Elapsed,
			})
		}
	}
	return vo
}
