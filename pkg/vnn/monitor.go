// Runtime monitoring: the operation-time pillar of the dependability
// portfolio. A proof quantifies over the certified input region; the
// monitor supervises what actually arrives in operation, flagging inputs
// whose activation pattern the training/coverage dataset never exercised
// (within a Hamming relaxation γ) before their predictions are trusted.
//
// BuildMonitor constructs the monitor against a CompiledNetwork so the
// build inherits the compiled artifact's proven pre-activation bounds:
// any dataset pattern interval analysis proves unreachable over the
// region is rejected at build time (it must come from an input the
// certificate never covered). The MonitorAudit analysis makes the monitor
// a dossier row; the vnnd /v1/infer endpoint serves it online.

package vnn

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/coverage"
	"repro/internal/monitor"
)

// Re-exported monitor types. Aliases, not wrappers: values flow between
// the public API, the engine and the service without conversion.
type (
	// MonitorVerdict is the outcome of one runtime check: OK or
	// out-of-pattern with the offending layer and Hamming distance.
	MonitorVerdict = monitor.Verdict
	// MonitorScratch is the per-goroutine state of the allocation-free
	// checking path (see Monitor.CheckInto); servers pool these.
	MonitorScratch = monitor.Scratch
	// MonitorBatchScratch is the per-goroutine state of the batched
	// checking path (see Monitor.CheckBatchInto); servers keep one per
	// inference shard.
	MonitorBatchScratch = monitor.BatchScratch
	// MonitorBuildStats reports what a monitor build did.
	MonitorBuildStats = monitor.BuildStats
)

// MonitorOptions tune BuildMonitor.
type MonitorOptions struct {
	// Gamma is the Hamming relaxation: an activation pattern within
	// distance Gamma of any remembered pattern (per monitored layer) is
	// accepted. 0 means exact-match monitoring.
	Gamma int
	// Layers selects the hidden ReLU layers to monitor by network layer
	// index; nil means all of them.
	Layers []int
}

// Monitor is a runtime activation-pattern monitor bound to the network of
// the CompiledNetwork it was built from. It is immutable and safe for
// concurrent use; the serving hot path checks through CheckInto with
// pooled scratch, everything else through Check.
type Monitor struct {
	m *monitor.Monitor
	// networkFingerprint identifies the compile workload (network, region,
	// compile options) the monitor belongs to; the wire form carries it so
	// a service never pairs a monitor with the wrong artifact.
	networkFingerprint string
}

// BuildMonitor builds a runtime monitor from the activation patterns data
// exercises, cross-checked against cn's proven pre-activation bounds:
// patterns that interval analysis proves unreachable over the compiled
// region are rejected at build time (see Stats().Rejected). The build is
// deterministic — the same compiled network, dataset order and options
// yield bit-identical pattern sets and fingerprints.
func BuildMonitor(cn *CompiledNetwork, data [][]float64, opts MonitorOptions) (*Monitor, error) {
	m, err := monitor.Build(cn.Net(), data, cn.c.PreActivationBounds(), monitor.Options{
		Gamma:  opts.Gamma,
		Layers: opts.Layers,
	})
	if err != nil {
		return nil, fmt.Errorf("vnn: build monitor: %w", err)
	}
	fp, err := Fingerprint(cn.Net(), cn.Region(), cn.opts)
	if err != nil {
		return nil, err
	}
	return &Monitor{m: m, networkFingerprint: fp}, nil
}

// Check classifies one input: a fused forward pass produces the verdict.
// For the allocation-free form see CheckInto.
func (m *Monitor) Check(x []float64) MonitorVerdict { return m.m.Check(x) }

// NewScratch allocates per-goroutine state for CheckInto.
func (m *Monitor) NewScratch() *MonitorScratch { return m.m.NewScratch() }

// CheckInto is the allocation-free serving path: one fused forward pass
// writes the prediction (bit-identical to Network.ForwardInto, the
// serving kernels) into dst and returns the monitoring verdict, using
// only the state in sc.
func (m *Monitor) CheckInto(dst []float64, sc *MonitorScratch, x []float64) MonitorVerdict {
	return m.m.CheckInto(dst, sc, x)
}

// NewBatchScratch allocates per-goroutine state for CheckBatchInto.
func (m *Monitor) NewBatchScratch() *MonitorBatchScratch { return m.m.NewBatchScratch() }

// CheckBatchInto is the batched serving path: one layer-major forward
// pass predicts and checks every input of the batch, each row and
// verdict bit-identical to CheckInto on that input. dst, xs and verdicts
// must have equal length; sc must come from this monitor's
// NewBatchScratch and must not be used concurrently.
func (m *Monitor) CheckBatchInto(dst [][]float64, sc *MonitorBatchScratch, xs [][]float64, verdicts []MonitorVerdict) {
	m.m.CheckBatchInto(dst, sc, xs, verdicts)
}

// Stats returns the build statistics (inputs scored, patterns stored,
// statically-unreachable patterns rejected).
func (m *Monitor) Stats() MonitorBuildStats { return m.m.Stats() }

// Gamma returns the Hamming relaxation.
func (m *Monitor) Gamma() int { return m.m.Gamma() }

// Layers returns the monitored network layer indices.
func (m *Monitor) Layers() []int { return m.m.Layers() }

// PatternCount returns the total number of stored patterns.
func (m *Monitor) PatternCount() int { return m.m.PatternCount() }

// Fingerprint returns the content hash of the monitor artifact itself:
// identical builds hash identically, any admitted-pattern or γ difference
// changes the hash.
func (m *Monitor) Fingerprint() string { return m.m.Fingerprint() }

// NetworkFingerprint returns the fingerprint of the compile workload the
// monitor was built against (the vnnd cache key of its network).
func (m *Monitor) NetworkFingerprint() string { return m.networkFingerprint }

// MonitorDocJSON is the wire form of a marshaled monitor: the canonical
// monitor document plus the fingerprint of the compile workload it was
// built against, so a service can refuse to pair it with a different
// network.
type MonitorDocJSON struct {
	NetworkFingerprint string          `json:"network_fingerprint"`
	Monitor            json.RawMessage `json:"monitor"`
}

// MarshalMonitor renders the monitor in the shared wire schema. The bytes
// are canonical: two identical builds marshal byte-identically.
func MarshalMonitor(m *Monitor) ([]byte, error) {
	doc, err := m.m.Marshal()
	if err != nil {
		return nil, fmt.Errorf("vnn: marshal monitor: %w", err)
	}
	return json.Marshal(MonitorDocJSON{
		NetworkFingerprint: m.networkFingerprint,
		Monitor:            doc,
	})
}

// UnmarshalMonitor reconstructs a monitor from its wire form, binding it
// to cn. The embedded network fingerprint must match cn's compile
// workload — a monitor describes one certified artifact and must not be
// silently reused against another.
func UnmarshalMonitor(data []byte, cn *CompiledNetwork) (*Monitor, error) {
	var doc MonitorDocJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("vnn: unmarshal monitor: %w", err)
	}
	fp, err := Fingerprint(cn.Net(), cn.Region(), cn.opts)
	if err != nil {
		return nil, err
	}
	if doc.NetworkFingerprint != fp {
		return nil, fmt.Errorf("vnn: monitor belongs to workload %s, not %s", doc.NetworkFingerprint, fp)
	}
	m, err := monitor.Unmarshal(doc.Monitor, cn.Net())
	if err != nil {
		return nil, fmt.Errorf("vnn: unmarshal monitor: %w", err)
	}
	return &Monitor{m: m, networkFingerprint: fp}, nil
}

// MonitorFinding is the runtime-monitoring row of the portfolio: what the
// monitor remembered at build time and how much of freshly generated
// region traffic it flags.
type MonitorFinding struct {
	// Fingerprint is the content hash of the built monitor.
	Fingerprint string
	// Gamma is the Hamming relaxation the monitor was built with.
	Gamma int
	// Layers are the monitored network layer indices.
	Layers []int
	// BuildInputs is the number of dataset rows scored at build time.
	BuildInputs int
	// RejectedUnreachable counts dataset patterns the static bounds
	// cross-check rejected as unreachable over the compiled region.
	RejectedUnreachable int
	// Patterns is the total number of stored patterns.
	Patterns int
	// Audited is the number of coverage-generated probe inputs checked;
	// Flagged of them were out-of-pattern.
	Audited, Flagged int
	// FlaggedFraction is Flagged/Audited (0 when nothing was audited).
	FlaggedFraction float64
	// Monitor is the built monitor, reusable by the caller (e.g. to serve
	// it, or marshal it next to the dossier).
	Monitor *Monitor
}

// MonitorAudit builds a runtime monitor from a dataset and audits it with
// coverage-generated inputs sampled from the compiled region: the
// reported fraction of generated inputs flagged as out-of-pattern
// estimates how much of the region's behaviour space the dataset's
// patterns actually span (a high fraction means operation will see novelty
// the monitor will surface). The explicit seed makes audits reproducible
// across runs and across the service.
type MonitorAudit struct {
	// Data is the dataset the monitor is built from (e.g. the training
	// set); required.
	Data [][]float64
	// Gamma is the Hamming relaxation (see MonitorOptions).
	Gamma int
	// Layers selects monitored layers; nil means all hidden ReLU layers.
	Layers []int
	// AuditTests bounds coverage-guided probe generation; 0 means 1000.
	AuditTests int
	// Seed seeds the probe generator.
	Seed int64
}

// Kind returns KindMonitorAudit.
func (ma *MonitorAudit) Kind() string { return KindMonitorAudit }

// Validate checks the dataset shape and parameter domains.
func (ma *MonitorAudit) Validate(net *Network) error {
	if len(ma.Data) == 0 {
		return fmt.Errorf("monitor audit needs a build dataset")
	}
	if ma.Gamma < 0 {
		return fmt.Errorf("monitor audit gamma %d is negative", ma.Gamma)
	}
	if ma.AuditTests < 0 {
		return fmt.Errorf("monitor audit audit_tests %d is negative", ma.AuditTests)
	}
	relu := make(map[int]bool)
	for _, li := range net.ReLULayers() {
		relu[li] = true
	}
	if len(relu) == 0 {
		return fmt.Errorf("monitor audit needs a network with hidden ReLU layers")
	}
	prev := -1
	for _, li := range ma.Layers {
		if !relu[li] {
			return fmt.Errorf("monitor audit layer %d is not a hidden ReLU layer", li)
		}
		if li <= prev {
			return fmt.Errorf("monitor audit layers must be strictly ascending, got %v", ma.Layers)
		}
		prev = li
	}
	return validateInputDims(net, ma.Data)
}

// Run builds the monitor against the compiled bounds and audits it with
// coverage-generated region inputs.
func (ma *MonitorAudit) Run(ctx context.Context, cn *CompiledNetwork) (*Finding, error) {
	mon, err := BuildMonitor(cn, ma.Data, MonitorOptions{Gamma: ma.Gamma, Layers: ma.Layers})
	if err != nil {
		return nil, err
	}
	st := mon.Stats()
	f := &MonitorFinding{
		Fingerprint:         mon.Fingerprint(),
		Gamma:               mon.Gamma(),
		Layers:              mon.Layers(),
		BuildInputs:         st.Inputs,
		RejectedUnreachable: st.Rejected,
		Patterns:            mon.PatternCount(),
		Monitor:             mon,
	}
	tests := ma.AuditTests
	if tests == 0 {
		tests = 1000
	}
	lo, hi, genOpts := regionSampling(ctx, cn.Region())
	genOpts.MaxTests = tests
	// The probes are the same coverage-improving inputs a Coverage
	// analysis with this seed would generate — the audit measures how much
	// of that freshly exercised behaviour the dataset's patterns span.
	_, probes := coverage.Generate(cn.Net(), lo, hi, coverageSource(ma.Seed), genOpts)
	sc := mon.NewScratch()
	dst := make([]float64, cn.Net().OutputDim())
	for _, x := range probes {
		f.Audited++
		if v := mon.CheckInto(dst, sc, x); !v.OK {
			f.Flagged++
		}
	}
	if f.Audited > 0 {
		f.FlaggedFraction = float64(f.Flagged) / float64(f.Audited)
	}
	return &Finding{Monitor: f}, nil
}
