package vnn_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/lp"
	"repro/pkg/vnn"
)

// TestMarshalNetworkRoundTrip pins the canonical serialization: bytes are
// deterministic for a fixed network, decode inverts encode, and invalid
// payloads are rejected by validation.
func TestMarshalNetworkRoundTrip(t *testing.T) {
	pred := core.NewPredictorNet(2, 6, 2, 11)
	a, err := vnn.MarshalNetwork(pred.Net)
	if err != nil {
		t.Fatal(err)
	}
	b, err := vnn.MarshalNetwork(pred.Net)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("MarshalNetwork is not deterministic")
	}
	back, err := vnn.UnmarshalNetwork(a)
	if err != nil {
		t.Fatal(err)
	}
	c, err := vnn.MarshalNetwork(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(c) {
		t.Fatal("round trip changed the canonical bytes")
	}

	if _, err := vnn.UnmarshalNetwork([]byte("{")); err == nil {
		t.Fatal("truncated JSON accepted")
	}
	// Structurally broken (bias length mismatch) must fail validation.
	if _, err := vnn.UnmarshalNetwork([]byte(
		`{"name":"bad","layers":[{"w":[[1,2]],"b":[0,0],"act":1}]}`)); err == nil {
		t.Fatal("invalid network accepted")
	}
}

// TestFingerprintSensitivity is the cache-keying contract: identical
// workloads hash identically, and ANY perturbation of a weight, a bias,
// the region, or a compile-relevant option changes the hash.
func TestFingerprintSensitivity(t *testing.T) {
	base := func() (*vnn.Network, *vnn.Region) {
		return core.NewPredictorNet(2, 6, 2, 3).Net, vnn.LeftOccupiedRegion()
	}
	net, region := base()
	opts := vnn.Options{Tighten: true}
	fp, err := vnn.Fingerprint(net, region, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Identical workload, separately constructed: identical hash.
	net2, region2 := base()
	fp2, err := vnn.Fingerprint(net2, region2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fp != fp2 {
		t.Fatalf("identical workloads hash differently:\n%s\n%s", fp, fp2)
	}

	seen := map[string]string{fp: "base"}
	check := func(label string, n *vnn.Network, r *vnn.Region, o vnn.Options) {
		t.Helper()
		got, err := vnn.Fingerprint(n, r, o)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if prev, dup := seen[got]; dup {
			t.Fatalf("%s collides with %s: %s", label, prev, got)
		}
		seen[got] = label
	}

	// One-ulp weight perturbation.
	n, r := base()
	n.Layers[0].W[3][2] = math.Nextafter(n.Layers[0].W[3][2], math.Inf(1))
	check("weight ulp", n, r, opts)

	// Bias perturbation.
	n, r = base()
	n.Layers[1].B[0] += 1e-12
	check("bias", n, r, opts)

	// Region box perturbation.
	n, r = base()
	r.Box[4].Hi = math.Nextafter(r.Box[4].Hi, 2)
	check("region box", n, r, opts)

	// Added linear constraint.
	n, r = base()
	r.Linear = append(r.Linear, vnn.LinearConstraint{
		Coeffs: map[int]float64{0: 1, 1: 1}, Sense: lp.LE, RHS: 1.5,
	})
	check("linear constraint", n, r, opts)

	// Same constraint, different RHS.
	n, r = base()
	r.Linear = append(r.Linear, vnn.LinearConstraint{
		Coeffs: map[int]float64{0: 1, 1: 1}, Sense: lp.LE, RHS: 1.25,
	})
	check("linear constraint rhs", n, r, opts)

	// Compile-relevant option toggled.
	n, r = base()
	check("tighten off", n, r, vnn.Options{Tighten: false})

	// Names are metadata, not content: renaming must NOT change the hash.
	n, r = base()
	n.Name = "renamed"
	n.OutputNames[0] = "other"
	got, err := vnn.Fingerprint(n, r, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got != fp {
		t.Fatal("renaming the network changed the fingerprint")
	}
	// Query-time options are not part of the compiled artifact either.
	n, r = base()
	got, err = vnn.Fingerprint(n, r, vnn.Options{Tighten: true, Workers: 7, Parallel: true, MaxNodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got != fp {
		t.Fatal("query-time options changed the fingerprint")
	}
}

// TestFingerprintValidates rejects malformed workloads instead of hashing
// garbage.
func TestFingerprintValidates(t *testing.T) {
	pred := core.NewPredictorNet(1, 4, 1, 1)
	if _, err := vnn.Fingerprint(pred.Net, &vnn.Region{Box: []vnn.Interval{{Lo: 0, Hi: 1}}}, vnn.Options{}); err == nil {
		t.Fatal("region/network dimension mismatch accepted")
	}
}
