package vnn

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/nn"
)

// signNet is a hand-built predictor: hidden ReLU pair computing (x, −x).
// Over the region x ∈ [1, 3] interval analysis proves neuron 0 stably
// active and neuron 1 stably inactive.
func signNet() *nn.Network {
	return &nn.Network{Name: "sign", Layers: []*nn.Layer{
		{W: [][]float64{{1}, {-1}}, B: []float64{0, 0}, Act: nn.ReLU},
		{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
	}}
}

func compileSign(t *testing.T) *CompiledNetwork {
	t.Helper()
	cn, err := Compile(context.Background(), signNet(),
		&Region{Box: []Interval{{Lo: 1, Hi: 3}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return cn
}

func TestBuildMonitorRejectsStaticallyUnreachablePattern(t *testing.T) {
	cn := compileSign(t)
	// x = −2 lies outside the compiled region; its pattern activates the
	// neuron the compiled bounds prove stably inactive, so the build must
	// reject it rather than teach the monitor uncertified behaviour.
	mon, err := BuildMonitor(cn, [][]float64{{2}, {-2}}, MonitorOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st := mon.Stats(); st.Rejected != 1 || st.Inputs != 2 {
		t.Fatalf("stats %+v, want 1 of 2 inputs rejected as unreachable", st)
	}
	if v := mon.Check([]float64{2.5}); !v.OK {
		t.Fatalf("in-region, in-pattern input flagged: %v", v)
	}
	if v := mon.Check([]float64{-2}); v.OK {
		t.Fatalf("rejected pattern accepted at runtime: %v", v)
	}
}

func TestMonitorMarshalRoundTripAndWorkloadBinding(t *testing.T) {
	cn := compileSign(t)
	mon, err := BuildMonitor(cn, [][]float64{{1.5}, {2.5}}, MonitorOptions{Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := MarshalMonitor(mon)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalMonitor(doc, cn)
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != mon.Fingerprint() || back.Gamma() != 1 {
		t.Fatal("round trip changed the monitor")
	}
	if back.NetworkFingerprint() != mon.NetworkFingerprint() {
		t.Fatal("round trip changed the workload binding")
	}
	// A monitor must not attach to a different compile workload.
	other, err := Compile(context.Background(), signNet(),
		&Region{Box: []Interval{{Lo: 0, Hi: 5}}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalMonitor(doc, other); err == nil {
		t.Fatal("monitor attached to a workload with a different fingerprint")
	}
}

func TestMonitorBuildDeterministicAcrossBuilds(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	net := NewNetwork(NetworkConfig{
		Name: "det", InputDim: 4, Hidden: []int{10, 8}, OutputDim: 2,
		HiddenAct: ReLU, OutputAct: Identity,
	}, rng)
	box := make([]Interval, 4)
	for i := range box {
		box[i] = Interval{Lo: -1, Hi: 1}
	}
	cn, err := Compile(context.Background(), net, &Region{Box: box}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data := make([][]float64, 50)
	dataRng := rand.New(rand.NewSource(5))
	for i := range data {
		row := make([]float64, 4)
		for j := range row {
			row[j] = dataRng.Float64()*2 - 1
		}
		data[i] = row
	}
	a, err := BuildMonitor(cn, data, MonitorOptions{Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildMonitor(cn, data, MonitorOptions{Gamma: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("same dataset produced different monitor fingerprints")
	}
	am, _ := MarshalMonitor(a)
	bm, _ := MarshalMonitor(b)
	if !bytes.Equal(am, bm) {
		t.Fatal("same dataset produced different monitor marshals")
	}
}

func TestMonitorAuditAnalysis(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	net := NewNetwork(NetworkConfig{
		Name: "audit", InputDim: 3, Hidden: []int{8, 8}, OutputDim: 1,
		HiddenAct: ReLU, OutputAct: Identity,
	}, rng)
	box := make([]Interval, 3)
	for i := range box {
		box[i] = Interval{Lo: -1, Hi: 1}
	}
	cn, err := Compile(context.Background(), net, &Region{Box: box}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately thin dataset: one corner of the region. Fresh
	// coverage-generated probes should flag plenty of novelty.
	data := [][]float64{{0.9, 0.9, 0.9}, {0.8, 0.9, 0.85}}
	finding, err := AnalyzeOne(context.Background(), cn, &MonitorAudit{
		Data: data, AuditTests: 400, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	mf := finding.Monitor
	if mf == nil || finding.Kind != KindMonitorAudit {
		t.Fatalf("finding %+v, want a monitor_audit payload", finding)
	}
	if mf.Audited == 0 {
		t.Fatal("audit checked no generated inputs")
	}
	if mf.Flagged == 0 || mf.FlaggedFraction <= 0 {
		t.Fatalf("thin dataset audit flagged nothing: %+v", mf)
	}
	if mf.Monitor == nil || mf.Fingerprint != mf.Monitor.Fingerprint() {
		t.Fatal("finding does not carry its built monitor")
	}
	// Reproducibility: the same seed audits the same probes.
	again, err := AnalyzeOne(context.Background(), cn, &MonitorAudit{
		Data: data, AuditTests: 400, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if again.Monitor.Audited != mf.Audited || again.Monitor.Flagged != mf.Flagged {
		t.Fatalf("same seed, different audit: %+v vs %+v", again.Monitor, mf)
	}
	// Wire form round trip.
	fj := finding.JSON()
	if fj.Monitor == nil || fj.Monitor.Flagged != mf.Flagged || fj.Kind != KindMonitorAudit {
		t.Fatalf("wire finding %+v", fj)
	}
	rep := NewAnalysisReport(net, []*Finding{finding})
	if rep.Worst != Inconclusive.String() {
		t.Fatalf("monitor-only report worst = %q, want inconclusive (nothing proved)", rep.Worst)
	}
}

func TestMonitorAuditSpecDecoding(t *testing.T) {
	spec := AnalysisSpec{Kind: KindMonitorAudit, Data: [][]float64{{0.5}}, Gamma: 2, AuditTests: 10, Seed: 1}
	a, err := spec.Analysis()
	if err != nil {
		t.Fatal(err)
	}
	ma, ok := a.(*MonitorAudit)
	if !ok || ma.Gamma != 2 || ma.AuditTests != 10 {
		t.Fatalf("decoded %+v", a)
	}
	if err := spec.ValidateFor(signNet()); err != nil {
		t.Fatalf("ValidateFor: %v", err)
	}
	bad := AnalysisSpec{Kind: KindMonitorAudit}
	if _, err := bad.Analysis(); err == nil {
		t.Fatal("spec without data must fail")
	}
	wrongDim := AnalysisSpec{Kind: KindMonitorAudit, Data: [][]float64{{1, 2}}}
	if err := wrongDim.ValidateFor(signNet()); err == nil {
		t.Fatal("wrong data dimension must fail validation")
	}
	badLayer := AnalysisSpec{Kind: KindMonitorAudit, Data: [][]float64{{1}}, Layers: []int{1}}
	if err := badLayer.ValidateFor(signNet()); err == nil {
		t.Fatal("non-ReLU monitored layer must fail validation")
	}
	// Duplicate/descending layer lists must be a client error (400), not a
	// late Build failure the service maps to 500.
	dupLayer := AnalysisSpec{Kind: KindMonitorAudit, Data: [][]float64{{1}}, Layers: []int{0, 0}}
	if err := dupLayer.ValidateFor(signNet()); err == nil {
		t.Fatal("duplicate monitored layers must fail validation")
	}
}
