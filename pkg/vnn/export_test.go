package vnn

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bounds"
	"repro/internal/lp"
	"repro/internal/verify"
)

func exportNet(t *testing.T) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	return NewNetwork(NetworkConfig{
		Name: "fleet-export", InputDim: 3, Hidden: []int{5, 4}, OutputDim: 2,
		HiddenAct: ReLU, OutputAct: Identity,
	}, rng)
}

func constrainedRegion(dim int) *Region {
	r := unitBoxRegion(dim)
	r.Linear = append(r.Linear, LinearConstraint{
		Coeffs: map[int]float64{0: 1, 1: 1},
		Sense:  lp.LE,
		RHS:    1.5,
		Name:   "budget",
	})
	return r
}

// TestCompiledRoundTrip: marshal → unmarshal reproduces the artifact
// bit-for-bit (bounds, fingerprint, verification answers) without a
// Compile call or a tightening pass.
func TestCompiledRoundTrip(t *testing.T) {
	net := exportNet(t)
	region := constrainedRegion(3)
	cn, err := Compile(context.Background(), net, region, Options{Tighten: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	doc, err := MarshalCompiled(cn)
	if err != nil {
		t.Fatal(err)
	}
	// A second marshal must be byte-identical (canonical form).
	doc2, err := MarshalCompiled(cn)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, doc2) {
		t.Fatal("MarshalCompiled is not deterministic")
	}

	compiles, tightens := CompileCalls(), verify.TightenPasses()
	propagates := bounds.Passes()
	got, fp, err := UnmarshalCompiled(doc)
	if err != nil {
		t.Fatal(err)
	}
	if d := CompileCalls() - compiles; d != 0 {
		t.Fatalf("import performed %d Compile calls", d)
	}
	if d := verify.TightenPasses() - tightens; d != 0 {
		t.Fatalf("import performed %d tightening passes", d)
	}
	// Exactly one plain propagation: the soundness containment check.
	if d := bounds.Passes() - propagates; d != 1 {
		t.Fatalf("import performed %d propagation passes, want 1", d)
	}

	wantFP, err := Fingerprint(net, region, Options{Tighten: true})
	if err != nil {
		t.Fatal(err)
	}
	if fp != wantFP {
		t.Fatalf("imported fingerprint %s, want %s", fp, wantFP)
	}
	if !got.Options().Tighten {
		t.Fatal("imported artifact lost the Tighten option")
	}

	// Bit-identical bound analysis.
	wantPre, gotPre := cn.PreActivationBounds(), got.PreActivationBounds()
	for li := range wantPre {
		for i := range wantPre[li] {
			if wantPre[li][i] != gotPre[li][i] {
				t.Fatalf("layer %d pre bound %d: %+v != %+v", li, i, gotPre[li][i], wantPre[li][i])
			}
		}
	}
	for i, iv := range cn.OutputBounds() {
		if got.OutputBounds()[i] != iv {
			t.Fatalf("output bound %d drifted: %+v != %+v", i, got.OutputBounds()[i], iv)
		}
	}

	// Bit-identical verification answers on the imported artifact.
	want, err := Verify(context.Background(), cn.WithOptions(Options{Workers: 1}), MaxOutput(0), AtMost(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	have, err := Verify(context.Background(), got.WithOptions(Options{Workers: 1}), MaxOutput(0), AtMost(1, 100))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if want[i].Value != have[i].Value || want[i].LowerBound != have[i].LowerBound || want[i].UpperBound != have[i].UpperBound {
			t.Fatalf("result %d drifted: %+v != %+v", i, have[i], want[i])
		}
	}
}

// TestUnmarshalCompiledRejectsTampering: any content change must fail
// the fingerprint re-verification, and bounds widened beyond the plain
// propagation must fail containment even when the fingerprint is left
// intact (bounds are not part of the fingerprint preimage).
func TestUnmarshalCompiledRejectsTampering(t *testing.T) {
	cn, err := Compile(context.Background(), exportNet(t), unitBoxRegion(3), Options{Tighten: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalCompiled(cn)
	if err != nil {
		t.Fatal(err)
	}

	var doc CompiledDocJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}

	mutate := func(name string, f func(d *CompiledDocJSON)) {
		var d CompiledDocJSON
		if err := json.Unmarshal(data, &d); err != nil {
			t.Fatal(err)
		}
		f(&d)
		buf, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := UnmarshalCompiled(buf); err == nil {
			t.Fatalf("%s: tampered document imported cleanly", name)
		}
	}

	mutate("weight", func(d *CompiledDocJSON) {
		d.Network = json.RawMessage(strings.Replace(string(d.Network), `"b":[`, `"b":[0.125,`, 1))
	})
	mutate("region", func(d *CompiledDocJSON) { d.Region.Box[0][1] = 2 })
	mutate("option", func(d *CompiledDocJSON) { d.Tighten = false })
	mutate("claimed fingerprint", func(d *CompiledDocJSON) { d.Fingerprint = "vnn1-deadbeef" })
	mutate("widened bound", func(d *CompiledDocJSON) { d.Pre[0][0][0] -= 1000 })
	mutate("inverted bound", func(d *CompiledDocJSON) { d.Pre[0][0][0], d.Pre[0][0][1] = d.Pre[0][0][1]+1, d.Pre[0][0][0] })
	mutate("dropped layer", func(d *CompiledDocJSON) { d.Post = d.Post[:1] })
}

func TestFingerprintSetHash(t *testing.T) {
	a := FingerprintSetHash("vnn1-aaaa")
	b := FingerprintSetHash("vnn1-aaab")
	if a == b {
		t.Fatal("distinct fingerprints share a set hash")
	}
	if a != FingerprintSetHash("vnn1-aaaa") {
		t.Fatal("set hash is not deterministic")
	}
	if a == ([32]byte{}) {
		t.Fatal("set hash is zero")
	}
}
