// The dependability portfolio API. The paper's certification argument is
// not one analysis but a portfolio (Sec. II, Table I): requirement
// traceability, structural coverage, data validation, formal verification,
// and quantization each contribute one row of the dossier. Analysis is the
// abstraction that makes every row a first-class citizen of the public
// API: an Analysis validates itself against a CompiledNetwork and runs to
// a typed Finding, and Analyze batches any mix of analyses over one
// compiled artifact with the same context/anytime semantics Verify has.
//
//	cn, _ := vnn.Compile(ctx, net, region, opts)
//	findings, _ := vnn.Analyze(ctx, cn,
//	    &vnn.Coverage{MaxTests: 2000, Seed: 1},
//	    &vnn.Traceability{Data: inputs},
//	    &vnn.QuantSweep{Bits: []int{8, 6, 4}, Properties: props},
//	    &vnn.Verification{Properties: props})
//
// Analyses reuse the compiled artifact instead of recomputing it: the
// traceability interval conditions read the compiled pre-activation
// bounds (zero extra propagation passes), coverage generation samples the
// compiled region, and a quantization sweep re-verifies the same
// properties against per-width recompiles that a service can cache and
// deduplicate (see QuantSweep.Compile).
package vnn

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/coverage"
	"repro/internal/dataval"
	"repro/internal/quant"
	"repro/internal/trace"
)

// Analysis kinds, as they appear in Finding.Kind and on the wire
// (AnalysisSpec.Kind, FindingJSON.Kind, per-kind service metrics).
const (
	KindVerify         = "verify"
	KindCoverage       = "coverage"
	KindTraceability   = "traceability"
	KindQuantSweep     = "quant_sweep"
	KindDataValidation = "data_validation"
	KindFalsify        = "falsify"
	KindMonitorAudit   = "monitor_audit"
)

// Analysis is one element of the dependability portfolio: a self-contained
// question about a compiled network that runs to a typed Finding. All
// concrete analyses — Verification, Coverage, Traceability, QuantSweep,
// DataValidation, Falsification — satisfy it; batch any mix through
// Analyze.
type Analysis interface {
	// Kind names the analysis (one of the Kind* constants).
	Kind() string
	// Validate checks the analysis against the network it will run on —
	// dimensions, index ranges, parameter domains — so callers (and the
	// service) can reject a malformed request before any work.
	Validate(net *Network) error
	// Run executes the analysis. The context carries the anytime
	// contract: analyses embedding verification queries return their
	// interval-bound anytime answers when it fires, never a bare error.
	Run(ctx context.Context, cn *CompiledNetwork) (*Finding, error)
}

// Finding is the typed result of one analysis. Kind selects which payload
// field is populated; the wire form is FindingJSON (see Report.Analyses).
type Finding struct {
	// Kind echoes the analysis kind that produced this finding.
	Kind string
	// Elapsed is the wall-clock cost of the analysis.
	Elapsed time.Duration

	// Verification holds property results (KindVerify).
	Verification []*Result
	// Coverage holds the structural-coverage finding (KindCoverage).
	Coverage *CoverageFinding
	// Traceability holds the neuron-to-feature report (KindTraceability).
	Traceability *TraceabilityReport
	// QuantSweep holds the bit-width ladder finding (KindQuantSweep).
	QuantSweep *QuantSweepFinding
	// DataValidation holds the rule-check finding (KindDataValidation).
	DataValidation *DataValidationFinding
	// Falsification holds the attack finding (KindFalsify).
	Falsification *FalsifyResult
	// Monitor holds the runtime-monitoring finding (KindMonitorAudit).
	Monitor *MonitorFinding
}

// Analyze runs a batch of analyses against one compiled network. Every
// analysis is validated before any runs; execution is then sequential in
// the given order (individual analyses may parallelize internally per the
// compile options). The context governs the whole batch exactly as in
// Verify: embedded verification queries return anytime bounds when it
// fires rather than erroring, so an interrupted portfolio still yields a
// usable (if partly inconclusive) dossier.
//
// Progress events from embedded queries are tagged with the index of the
// emitting analysis (Event.Analysis) on top of the property index.
func Analyze(ctx context.Context, cn *CompiledNetwork, analyses ...Analysis) ([]*Finding, error) {
	if len(analyses) == 0 {
		return nil, fmt.Errorf("vnn: Analyze needs at least one analysis")
	}
	for i, a := range analyses {
		if err := a.Validate(cn.Net()); err != nil {
			return nil, fmt.Errorf("vnn: analysis %d (%s): %w", i, a.Kind(), err)
		}
	}
	findings := make([]*Finding, len(analyses))
	for i, a := range analyses {
		acn := cn
		if cn.opts.Progress != nil {
			opts := cn.opts
			idx, p := i, opts.Progress
			opts.Progress = func(ev Event) {
				ev.Analysis = idx
				p(ev)
			}
			acn = cn.WithOptions(opts)
		}
		start := time.Now()
		f, err := a.Run(ctx, acn)
		if err != nil {
			return nil, fmt.Errorf("vnn: analysis %d (%s): %w", i, a.Kind(), err)
		}
		f.Kind = a.Kind()
		f.Elapsed = time.Since(start)
		findings[i] = f
	}
	return findings, nil
}

// AnalyzeOne runs a single analysis; sugar over Analyze.
func AnalyzeOne(ctx context.Context, cn *CompiledNetwork, a Analysis) (*Finding, error) {
	fs, err := Analyze(ctx, cn, a)
	if err != nil {
		return nil, err
	}
	return fs[0], nil
}

// Verification is property verification expressed as an analysis kind: the
// batch Verify query as one row of the portfolio, so a certification run
// can mix formal proofs with coverage, traceability and quantization in a
// single Analyze call.
type Verification struct {
	// Properties is the batch to answer on the shared compilation.
	Properties []Property
}

// Kind returns KindVerify.
func (v *Verification) Kind() string { return KindVerify }

// Validate checks the property batch is non-empty and references only
// outputs the network has.
func (v *Verification) Validate(net *Network) error {
	return validateProperties(net, v.Properties)
}

// validateProperties rejects empty batches and out-of-range output
// references — before any (possibly expensive) sibling analysis runs.
func validateProperties(net *Network, props []Property) error {
	if len(props) == 0 {
		return fmt.Errorf("needs at least one property")
	}
	dim := net.OutputDim()
	for i, p := range props {
		for _, o := range propertyOutputs(p) {
			if o < 0 || o >= dim {
				return fmt.Errorf("property %d (%s) references output %d of %d", i, p, o, dim)
			}
		}
	}
	return nil
}

// Run answers the property batch via Verify.
func (v *Verification) Run(ctx context.Context, cn *CompiledNetwork) (*Finding, error) {
	results, err := Verify(ctx, cn, v.Properties...)
	if err != nil {
		return nil, err
	}
	return &Finding{Verification: results}, nil
}

// CoverageFinding is the structural-coverage row of the portfolio: the
// accumulated suite plus the MC/DC argument constants of the paper's
// Sec. II (branch blow-up, condition-coverage lower bound).
type CoverageFinding struct {
	// Suite accumulates coverage over dataset and generated inputs.
	Suite *CoverageSuite
	// Generated lists the coverage-improving inputs kept by generation
	// (nil when the analysis only scored provided data).
	Generated [][]float64
	// Conditions is the number of ReLU branching conditions.
	Conditions int
	// BranchCombinations is 2^Conditions as a decimal string — the size of
	// the exhaustive branch-coverage space.
	BranchCombinations string
	// RequiredMCDCTests is the MC/DC lower bound on test-suite size.
	RequiredMCDCTests int
}

// Coverage measures structural test coverage of the compiled network over
// its region: dataset inputs are scored first, then (when MaxTests > 0) a
// coverage-guided generator seeded by Seed tops the suite up with inputs
// sampled from the compiled region's box. The explicit seed makes
// generated suites reproducible across runs and across the service.
type Coverage struct {
	// Data are inputs to score before any generation (e.g. the training
	// set); may be nil when MaxTests > 0.
	Data [][]float64
	// MaxTests bounds coverage-guided generation; 0 disables generation
	// (Data must then be non-empty).
	MaxTests int
	// TargetSign stops generation once sign coverage reaches this
	// fraction; 0 means 1.0.
	TargetSign float64
	// Seed seeds the generator's random source.
	Seed int64
}

// Kind returns KindCoverage.
func (c *Coverage) Kind() string { return KindCoverage }

// Validate checks the dataset dimensions and that the analysis has work.
func (c *Coverage) Validate(net *Network) error {
	if len(c.Data) == 0 && c.MaxTests <= 0 {
		return fmt.Errorf("coverage needs data or a max_tests generation budget")
	}
	if c.MaxTests < 0 {
		return fmt.Errorf("coverage max_tests %d is negative", c.MaxTests)
	}
	return validateInputDims(net, c.Data)
}

// Run scores the data and generates additional tests over the region box.
func (c *Coverage) Run(ctx context.Context, cn *CompiledNetwork) (*Finding, error) {
	net := cn.Net()
	suite := coverage.NewSuite(net)
	for _, x := range c.Data {
		if err := ctx.Err(); err != nil {
			break // anytime: report the coverage accumulated so far
		}
		suite.Add(x)
	}
	f := &CoverageFinding{
		Suite:              suite,
		Conditions:         coverage.ReLUConditions(net),
		BranchCombinations: coverage.BranchCombinations(net).String(),
		RequiredMCDCTests:  coverage.RequiredTests(net),
	}
	if c.MaxTests > 0 && ctx.Err() == nil {
		lo, hi, genOpts := regionSampling(ctx, cn.Region())
		genOpts.MaxTests = c.MaxTests
		genOpts.TargetSign = c.TargetSign
		f.Generated = suite.Generate(lo, hi, coverageSource(c.Seed), genOpts)
	}
	return &Finding{Coverage: f}, nil
}

// regionSampling builds the shared setup of every region-sampling
// analysis: the region box as parallel lo/hi slices, cancellation
// (request deadline, server drain) wired into the sampling loop — what
// was scored so far is the anytime answer — and, when the region is a
// box intersected with linear constraints, an Accept filter so results
// are never overstated by out-of-region inputs.
func regionSampling(ctx context.Context, region *Region) (lo, hi []float64, opts coverage.GenerateOptions) {
	lo = make([]float64, len(region.Box))
	hi = make([]float64, len(region.Box))
	for i, iv := range region.Box {
		lo[i], hi[i] = iv.Lo, iv.Hi
	}
	opts.Cancel = func() bool { return ctx.Err() != nil }
	if len(region.Linear) > 0 {
		opts.Accept = func(x []float64) bool { return region.Contains(x, 1e-9) }
	}
	return lo, hi, opts
}

// Traceability computes the neuron-to-feature traceability report over a
// dataset. The interval activation conditions reuse the compiled network's
// already-proven pre-activation bounds — no propagation pass is repeated
// (and under Options.Tighten the conditions inherit the tightened bounds).
type Traceability struct {
	// Data are the inputs activation statistics are computed over.
	Data [][]float64
	// FeatureNames labels attribution lists; defaults to the network's
	// input names (then to x0, x1, ...).
	FeatureNames []string
	// TopK limits attribution lists; 0 means 5.
	TopK int
}

// Kind returns KindTraceability.
func (tr *Traceability) Kind() string { return KindTraceability }

// Validate checks the dataset shape against the network.
func (tr *Traceability) Validate(net *Network) error {
	if len(tr.Data) == 0 {
		return fmt.Errorf("traceability needs at least one data point")
	}
	if n := len(tr.FeatureNames); n != 0 && n != net.InputDim() {
		return fmt.Errorf("traceability has %d feature names for %d inputs", n, net.InputDim())
	}
	return validateInputDims(net, tr.Data)
}

// Run computes the traceability report on the compiled bounds.
func (tr *Traceability) Run(ctx context.Context, cn *CompiledNetwork) (*Finding, error) {
	names := tr.FeatureNames
	if names == nil && len(cn.Net().InputNames) == cn.Net().InputDim() {
		names = cn.Net().InputNames
	}
	rep, err := trace.Analyze(cn.Net(), tr.Data, names, trace.Options{
		TopK:      tr.TopK,
		PreBounds: cn.c.PreActivationBounds(),
	})
	if err != nil {
		return nil, err
	}
	return &Finding{Traceability: rep}, nil
}

// CompileFunc produces a compiled network; QuantSweep calls it once per
// bit-width, passing the workload's already-computed fingerprint so a
// caching implementation need not hash the model again. The default
// ignores the fingerprint and calls Compile; the verification service
// substitutes a fingerprint-keyed cached compile so identical sweeps from
// many clients collapse to one compilation per width.
type CompileFunc func(ctx context.Context, fingerprint string, net *Network, region *Region, opts Options) (*CompiledNetwork, error)

// QuantPoint is one rung of the bit-width ladder.
type QuantPoint struct {
	// Bits is the quantization width.
	Bits int
	// Info reports what quantization did to the weights.
	Info *QuantInfo
	// Fingerprint identifies the quantized compile workload — the key a
	// service caches the recompile under.
	Fingerprint string
	// CompileTime is the build cost of the quantized artifact (whoever
	// paid it; a cached compile reports the original cost).
	CompileTime time.Duration
	// Results answers the sweep's properties on the quantized model.
	Results []*Result
	// MaxValueDelta is the largest |witnessed value − float witnessed
	// value| across properties where both sides have witnesses; NaN when
	// no pair was comparable.
	MaxValueDelta float64
	// MaxBoundDelta is the largest |proven upper bound − float proven
	// upper bound| across properties where both are finite; NaN when no
	// pair was comparable.
	MaxBoundDelta float64
}

// QuantSweepFinding is the quantization row of the portfolio: the float
// baseline plus one QuantPoint per requested width.
type QuantSweepFinding struct {
	// Base answers the properties on the float model (the compiled
	// network the sweep ran against).
	Base []*Result
	// Points holds one entry per bit-width, in request order. The ladder
	// is anytime: when the context expires mid-sweep, Points is
	// truncated to the widths measured before the budget ran out.
	Points []QuantPoint
}

// QuantSweep quantizes the compiled network to each bit-width, recompiles
// the quantized model over the same region and options, and re-verifies
// the same properties — reporting per-width verified bounds and their
// deltas against the float baseline (the paper's concluding remark (ii):
// quantized networks as a route to scalable verification, made
// measurable). Each width costs exactly one compilation; a service
// deduplicates even that via CompileFunc.
type QuantSweep struct {
	// Bits lists the widths to sweep, each in [2, 16].
	Bits []int
	// Properties is the batch re-verified at every width.
	Properties []Property
	// Base, when non-nil, supplies already-computed float-model results
	// for Properties (one per property, in order): the sweep measures
	// deltas against it instead of re-solving the baseline — callers
	// that just answered the same batch on the same compiled network
	// (cmd/table2's width loop) skip its most expensive solve.
	Base []*Result
	// Compile overrides how per-width recompiles are produced; nil means
	// Compile. The verification service injects its fingerprint-keyed
	// cache here.
	Compile CompileFunc
}

// Kind returns KindQuantSweep.
func (q *QuantSweep) Kind() string { return KindQuantSweep }

// Validate checks widths and the property batch.
func (q *QuantSweep) Validate(net *Network) error {
	if len(q.Bits) == 0 {
		return fmt.Errorf("quant sweep needs at least one bit-width")
	}
	for _, b := range q.Bits {
		if b < 2 || b > 16 {
			return fmt.Errorf("quant sweep bit-width %d outside [2, 16]", b)
		}
	}
	if err := validateProperties(net, q.Properties); err != nil {
		return fmt.Errorf("quant sweep: %w", err)
	}
	if q.Base != nil && len(q.Base) != len(q.Properties) {
		return fmt.Errorf("quant sweep has %d baseline results for %d properties", len(q.Base), len(q.Properties))
	}
	return nil
}

// Run walks the bit-width ladder.
func (q *QuantSweep) Run(ctx context.Context, cn *CompiledNetwork) (*Finding, error) {
	compile := q.Compile
	if compile == nil {
		compile = func(ctx context.Context, _ string, net *Network, region *Region, opts Options) (*CompiledNetwork, error) {
			return Compile(ctx, net, region, opts)
		}
	}
	base := q.Base
	if base == nil {
		var err error
		if base, err = Verify(ctx, cn, q.Properties...); err != nil {
			return nil, err
		}
	}
	f := &QuantSweepFinding{Base: base, Points: make([]QuantPoint, 0, len(q.Bits))}
	for _, bits := range q.Bits {
		qnet, info, err := quant.Quantize(cn.Net(), bits)
		if err != nil {
			return nil, err
		}
		fp, err := Fingerprint(qnet, cn.Region(), cn.opts)
		if err != nil {
			return nil, err
		}
		qcn, err := compile(ctx, fp, qnet, cn.Region(), cn.opts)
		if err != nil {
			// Anytime: an expired budget truncates the ladder at this
			// width (a cached-compile waiter gives up with the context's
			// error) — the widths already measured remain a sound,
			// partial finding. A genuine compile failure still errors.
			if ctx.Err() != nil {
				break
			}
			return nil, err
		}
		results, err := Verify(ctx, qcn.WithOptions(cn.opts), q.Properties...)
		if err != nil {
			return nil, err
		}
		pt := QuantPoint{
			Bits:          bits,
			Info:          info,
			Fingerprint:   fp,
			CompileTime:   qcn.CompileTime(),
			Results:       results,
			MaxValueDelta: math.NaN(),
			MaxBoundDelta: math.NaN(),
		}
		for i, r := range results {
			b := base[i]
			if r.Witness != nil && b.Witness != nil {
				if d := math.Abs(r.Value - b.Value); !(d <= pt.MaxValueDelta) { // NaN-aware max
					pt.MaxValueDelta = d
				}
			}
			if !math.IsInf(r.UpperBound, 0) && !math.IsInf(b.UpperBound, 0) {
				if d := math.Abs(r.UpperBound - b.UpperBound); !(d <= pt.MaxBoundDelta) {
					pt.MaxBoundDelta = d
				}
			}
		}
		f.Points = append(f.Points, pt)
	}
	return &Finding{QuantSweep: f}, nil
}

// DataValidationFinding is the specification-validity row of the
// portfolio: the rule-check report plus per-feature statistics.
type DataValidationFinding struct {
	// Report is the violation report of the rule run.
	Report *DataReport
	// Stats summarizes each input feature over the dataset.
	Stats []FeatureStats
}

// DataValidation checks a dataset against declarative validity rules
// (paper Sec. II (C): training data as a specification artifact). It runs
// against the same compiled network as every other analysis so a single
// Analyze call produces the whole dossier, but the network itself is not
// consulted: dataset shape requirements are themselves rules
// (DimensionRule), so a mismatched sample is a reported violation, not a
// request error.
type DataValidation struct {
	// Data is the dataset under validation.
	Data []Sample
	// Rules are the validity conditions; see FiniteRule, RangeRule,
	// DimensionRule, NewDataRule.
	Rules []DataRule
}

// Kind returns KindDataValidation.
func (d *DataValidation) Kind() string { return KindDataValidation }

// Validate checks the analysis has data and rules.
func (d *DataValidation) Validate(net *Network) error {
	if len(d.Data) == 0 {
		return fmt.Errorf("data validation needs at least one sample")
	}
	if len(d.Rules) == 0 {
		return fmt.Errorf("data validation needs at least one rule")
	}
	return nil
}

// Run checks every sample against every rule.
func (d *DataValidation) Run(ctx context.Context, cn *CompiledNetwork) (*Finding, error) {
	return &Finding{DataValidation: &DataValidationFinding{
		Report: dataval.Validate(d.Data, d.Rules),
		Stats:  dataval.Stats(d.Data),
	}}, nil
}

// Falsification runs the gradient-guided attack pre-pass as an analysis:
// PGD with restarts maximizing each output over the compiled region. A
// found violation is a definitive counterexample; finding nothing proves
// nothing (pair it with a Verification analysis for proof).
type Falsification struct {
	// Outputs are the output indices to attack.
	Outputs []int
	// Restarts per output; 0 means 8.
	Restarts int
	// Steps of PGD per restart; 0 means 60.
	Steps int
	// Seed drives the random restarts.
	Seed int64
}

// Kind returns KindFalsify.
func (fa *Falsification) Kind() string { return KindFalsify }

// Validate checks the attacked outputs exist.
func (fa *Falsification) Validate(net *Network) error {
	if len(fa.Outputs) == 0 {
		return fmt.Errorf("falsification needs at least one output index")
	}
	dim := net.OutputDim()
	for _, o := range fa.Outputs {
		if o < 0 || o >= dim {
			return fmt.Errorf("falsification output %d of %d", o, dim)
		}
	}
	if fa.Restarts < 0 || fa.Steps < 0 {
		return fmt.Errorf("falsification restarts/steps must be non-negative")
	}
	return nil
}

// Run attacks the compiled region.
func (fa *Falsification) Run(ctx context.Context, cn *CompiledNetwork) (*Finding, error) {
	res, err := FalsifyCtx(ctx, cn.Net(), cn.Region(), fa.Outputs, FalsifyOptions{
		Restarts: fa.Restarts,
		Steps:    fa.Steps,
		Seed:     fa.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &Finding{Falsification: res}, nil
}

// validateInputDims checks every data row matches the network input width.
func validateInputDims(net *Network, data [][]float64) error {
	dim := net.InputDim()
	for i, x := range data {
		if len(x) != dim {
			return fmt.Errorf("data row %d has dimension %d, network input %d", i, len(x), dim)
		}
	}
	return nil
}
